bin/nbr_bench.ml: Arg Cmd Cmdliner Format List Nbr_core Nbr_runtime Nbr_workload Printf Term
