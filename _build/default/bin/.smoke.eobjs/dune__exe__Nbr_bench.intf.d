bin/nbr_bench.mli:
