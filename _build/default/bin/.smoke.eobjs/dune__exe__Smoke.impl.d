bin/smoke.ml: Format List Nbr_core Nbr_runtime Nbr_workload
