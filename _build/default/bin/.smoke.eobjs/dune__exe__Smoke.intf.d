bin/smoke.mli:
