examples/bounded_memory.ml: List Nbr_core Nbr_runtime Nbr_workload Printf
