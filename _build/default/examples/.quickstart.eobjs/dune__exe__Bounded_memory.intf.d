examples/bounded_memory.mli:
