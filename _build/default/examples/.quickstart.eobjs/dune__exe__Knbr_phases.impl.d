examples/knbr_phases.ml: Array Nbr_core Nbr_ds Nbr_pool Nbr_runtime Nbr_sync Printf
