examples/knbr_phases.mli:
