examples/quickstart.ml: Array Atomic Nbr_core Nbr_ds Nbr_pool Nbr_runtime Nbr_sync Printf
