examples/quickstart.mli:
