examples/scheme_shootout.ml: List Nbr_core Nbr_runtime Nbr_workload Printf Sys
