examples/scheme_shootout.mli:
