lib/core/nbr_core.ml: Debra Hazard_eras Hp Ibr Leaky Limbo_bag Nbr Nbr_base Nbr_plus Nbr_runtime Qsbr Rcu Smr_config Smr_intf Smr_stats Unsafe_free
