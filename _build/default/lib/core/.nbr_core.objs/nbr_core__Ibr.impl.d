lib/core/ibr.ml: Array Limbo_bag Nbr_pool Nbr_runtime Smr_config Smr_stats
