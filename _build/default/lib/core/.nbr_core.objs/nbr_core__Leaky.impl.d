lib/core/leaky.ml: Array Nbr_pool Nbr_runtime Smr_stats
