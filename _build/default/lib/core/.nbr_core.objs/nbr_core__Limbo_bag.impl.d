lib/core/limbo_bag.ml: Array
