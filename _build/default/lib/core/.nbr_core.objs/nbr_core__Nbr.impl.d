lib/core/nbr.ml: Limbo_bag Nbr_base Nbr_runtime Smr_config
