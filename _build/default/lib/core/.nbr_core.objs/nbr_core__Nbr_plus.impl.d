lib/core/nbr_plus.ml: Array Limbo_bag Nbr_base Nbr_runtime Smr_config
