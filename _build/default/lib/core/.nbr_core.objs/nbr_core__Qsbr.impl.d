lib/core/qsbr.ml: Array List Nbr_pool Nbr_runtime Nbr_sync Smr_config Smr_stats
