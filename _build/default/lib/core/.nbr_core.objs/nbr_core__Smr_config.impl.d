lib/core/smr_config.ml:
