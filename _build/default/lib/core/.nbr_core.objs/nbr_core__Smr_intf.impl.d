lib/core/smr_intf.ml: Smr_config Smr_stats
