lib/core/smr_stats.ml: Format
