lib/core/unsafe_free.ml: Array Nbr_pool Nbr_runtime Smr_stats
