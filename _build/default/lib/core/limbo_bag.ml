(** Per-thread limbo bag: a FIFO of retired record slots.

    Entries are addressed by {e absolute position} — a counter of all pushes
    ever made — because NBR+ bookmarks a tail position when it crosses the
    LoWatermark and later reclaims "everything retired before the bookmark"
    (Algorithm 2, lines 14/19).  [sweep] examines the prefix of entries
    older than a bound, frees the unreserved ones and re-appends the
    reserved ones at the tail (they will be re-examined after a later grace
    period, which is safe: an entry is only ever {e more} retired as time
    passes).

    Thread-local: one bag per context, never shared. *)

type t = {
  mutable a : int array;
  mutable head : int;  (** ring index of the oldest entry *)
  mutable n : int;  (** live entries *)
  mutable base : int;  (** absolute position of the oldest entry *)
}

let create ?(capacity = 64) () =
  { a = Array.make (max capacity 1) 0; head = 0; n = 0; base = 0 }

let size t = t.n

(** Absolute position one past the newest entry; a bookmark taken now
    covers exactly the entries pushed so far. *)
let abs_tail t = t.base + t.n

let grow t =
  let cap = Array.length t.a in
  let a' = Array.make (2 * cap) 0 in
  for i = 0 to t.n - 1 do
    a'.(i) <- t.a.((t.head + i) mod cap)
  done;
  t.a <- a';
  t.head <- 0

let push t x =
  if t.n = Array.length t.a then grow t;
  t.a.((t.head + t.n) mod Array.length t.a) <- x;
  t.n <- t.n + 1

let pop_front t =
  if t.n = 0 then invalid_arg "Limbo_bag.pop_front: empty";
  let x = t.a.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.a;
  t.n <- t.n - 1;
  t.base <- t.base + 1;
  x

(** [sweep t ~upto ~keep ~free] examines every entry with absolute position
    [< upto]: reserved entries ([keep e = true]) are re-appended at the
    tail, the rest are freed.  Returns the number freed. *)
let sweep t ~upto ~keep ~free =
  let todo = min t.n (upto - t.base) in
  let freed = ref 0 in
  for _ = 1 to todo do
    let e = pop_front t in
    if keep e then push t e
    else begin
      free e;
      incr freed
    end
  done;
  !freed

let iter f t =
  for i = 0 to t.n - 1 do
    f t.a.((t.head + i) mod Array.length t.a)
  done
