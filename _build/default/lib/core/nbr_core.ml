(** NBR: Neutralization Based Reclamation — core library.

    The paper's contribution ({!Nbr}, {!Nbr_plus}) plus every reclamation
    scheme its evaluation compares against, all implementing
    {!Smr_intf.S} so the data structures in [nbr.ds] run unchanged under
    any of them.

    {!Smr_config} and {!Smr_stats} are the shared knob/metric records;
    {!Limbo_bag} is the per-thread retired-record buffer. *)

module Smr_intf = Smr_intf
module Smr_config = Smr_config
module Smr_stats = Smr_stats
module Limbo_bag = Limbo_bag
module Nbr_base = Nbr_base
module Nbr = Nbr
module Nbr_plus = Nbr_plus
module Debra = Debra
module Qsbr = Qsbr
module Rcu = Rcu
module Ibr = Ibr
module Hp = Hp
module Hazard_eras = Hazard_eras
module Leaky = Leaky
module Unsafe_free = Unsafe_free

(* Compile-time conformance of every scheme to the common signature. *)
module Conformance_check (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module _ : Smr_intf.S = Nbr.Make (Rt)
  module _ : Smr_intf.S = Nbr_plus.Make (Rt)
  module _ : Smr_intf.S = Debra.Make (Rt)
  module _ : Smr_intf.S = Qsbr.Make (Rt)
  module _ : Smr_intf.S = Rcu.Make (Rt)
  module _ : Smr_intf.S = Ibr.Make (Rt)
  module _ : Smr_intf.S = Hp.Make (Rt)
  module _ : Smr_intf.S = Hazard_eras.Make (Rt)
  module _ : Smr_intf.S = Leaky.Make (Rt)
  module _ : Smr_intf.S = Unsafe_free.Make (Rt)
end
