(** Per-scheme reclamation statistics.

    Aggregated across thread contexts by [Smr.stats].  Instrumentation
    only; never read on algorithm hot paths. *)

type t = {
  mutable retires : int;  (** records handed to [retire] *)
  mutable freed : int;  (** records returned to the pool *)
  mutable reclaim_events : int;
      (** full reclamation events (NBR HiWatermark sweeps, HP/IBR scans,
          DEBRA bag rotations, ...) *)
  mutable lo_reclaims : int;  (** NBR+ opportunistic LoWatermark sweeps *)
  mutable restarts : int;
      (** read phases restarted by neutralization or protection failure *)
}

let zero () =
  { retires = 0; freed = 0; reclaim_events = 0; lo_reclaims = 0; restarts = 0 }

let add into from =
  into.retires <- into.retires + from.retires;
  into.freed <- into.freed + from.freed;
  into.reclaim_events <- into.reclaim_events + from.reclaim_events;
  into.lo_reclaims <- into.lo_reclaims + from.lo_reclaims;
  into.restarts <- into.restarts + from.restarts

let pp ppf s =
  Format.fprintf ppf
    "retires=%d freed=%d reclaim_events=%d lo_reclaims=%d restarts=%d"
    s.retires s.freed s.reclaim_events s.lo_reclaims s.restarts
