lib/ds/nbr_ds.ml: Ab_tree Dgt_bst Harris_list Hash_set Lazy_list Skip_list
