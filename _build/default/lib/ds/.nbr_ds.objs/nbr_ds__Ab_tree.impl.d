lib/ds/ab_tree.ml: Array List Nbr_core Nbr_pool Nbr_runtime Nbr_sync
