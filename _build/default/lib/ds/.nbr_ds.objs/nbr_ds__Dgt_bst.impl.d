lib/ds/dgt_bst.ml: List Nbr_core Nbr_pool Nbr_runtime Nbr_sync
