lib/ds/harris_list.ml: List Nbr_core Nbr_pool Nbr_runtime Option
