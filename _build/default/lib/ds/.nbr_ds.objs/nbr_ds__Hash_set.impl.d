lib/ds/hash_set.ml: Array Harris_list List Nbr_core Nbr_pool Nbr_runtime
