lib/ds/lazy_list.ml: List Nbr_core Nbr_pool Nbr_runtime Nbr_sync
