lib/ds/skip_list.ml: Array Hashtbl List Nbr_core Nbr_pool Nbr_runtime Nbr_sync
