(** Lock-free hash set: fixed-size bucket array of Harris lists (the
    shape of Michael's 2002 lock-free hash table).

    An extension beyond the paper's evaluation set, included for two
    reasons: it shows the k-NBR machinery composing (each bucket is an
    independent Harris list, so an operation's read phases restart from
    that bucket's head — the "root" of the structure it traverses), and it
    gives the benchmark suite a short-traversal / high-allocation workload
    profile between the tree and the long lists.

    Buckets share one pool; the bucket count is fixed at creation (no
    resizing — the paper's structures do not resize either, and resizing
    under SMR is its own research topic). *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t) =
struct
  module P = Nbr_pool.Pool.Make (Rt)
  module HL = Harris_list.Make (Rt) (Smr)

  let name = "hash-set"
  let data_fields = HL.data_fields
  let ptr_fields = HL.ptr_fields
  let max_reservations = HL.max_reservations
  let default_buckets = 64

  type t = { buckets : HL.t array }

  let create ?(buckets = default_buckets) pool =
    { buckets = Array.init buckets (fun _ -> HL.create pool) }

  (* Fibonacci hashing: spreads consecutive keys across buckets. *)
  let bucket t k =
    let h = k * 0x27220a95 land max_int in
    t.buckets.(h mod Array.length t.buckets)

  let contains t ctx k = HL.contains (bucket t k) ctx k
  let insert t ctx k = HL.insert (bucket t k) ctx k
  let delete t ctx k = HL.delete (bucket t k) ctx k

  (** Sequential snapshot, sorted (tests only). *)
  let to_list t =
    List.sort compare
      (Array.to_list t.buckets |> List.concat_map HL.to_list)

  let size t = Array.fold_left (fun acc b -> acc + HL.size b) 0 t.buckets
end
