lib/pool/nbr_pool.ml: Pool
