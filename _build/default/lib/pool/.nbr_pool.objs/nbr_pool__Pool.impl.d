lib/pool/pool.ml: Array Atomic Nbr_runtime Nbr_sync Printf
