(** Simulated manual-memory substrate.  See {!Pool.Make}. *)

module Pool = Pool
