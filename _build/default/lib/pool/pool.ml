(** Simulated manual memory: a pool of fixed-shape records.

    OCaml is garbage-collected, so "freeing" a record cannot unmap it.  To
    reproduce an SMR paper we need memory that is explicitly allocated and
    freed, where a slot freed too early gets recycled under a reader's feet
    — i.e. real use-after-free dynamics, minus the segfault.  The pool
    provides exactly that:

    - Records are integer slots into pre-allocated field arrays (an index is
      the "pointer"; following a stale index is always memory-safe, exactly
      like reading jemalloc-recycled memory that was never unmapped — the
      situation the paper's own safety argument leans on).
    - [alloc] pops a per-thread free list (falling back to a bump allocator
      over fresh slots); [free] pushes back and bumps the slot's allocation
      sequence number, so ABA and use-after-free are {e observable}.
    - Lifecycle instrumentation mirrors the paper's five record states
      (§3): we track Free / Live / Retired, count reads of freed slots, and
      maintain the in-use high-water mark that experiment E2 (figures
      4c/4d) reports as "peak memory usage".

    Instrumentation (states, sequence numbers, counters) is deliberately
    kept in plain arrays and stdlib [Atomic]s rather than [Rt.aint]s: it
    must not perturb the simulated cost accounting, because a real
    implementation has no such checks.  Races on the plain arrays are
    benign (they only feed detectors and tests). *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  type aint = Rt.aint

  exception Exhausted

  let nil = -1

  type state = Free | Live | Retired

  type t = {
    capacity : int;
    data_fields : int;
    ptr_fields : int;
    data : aint array array;  (** [data.(f).(slot)] *)
    ptr : aint array array;  (** [ptr.(f).(slot)] *)
    lock : aint array;  (** per-record lock word *)
    (* --- free-space management --- *)
    free_lists : Nbr_sync.Int_vec.t array;  (** per-thread *)
    next_fresh : int Atomic.t;  (** bump allocator over never-used slots *)
    (* --- instrumentation (uncosted) --- *)
    st : int array;  (** 0 = Free, 1 = Live, 2 = Retired *)
    seqno : int array;  (** bumped on each free: ABA/UAF witness *)
    in_use : int Atomic.t;  (** Live + Retired (unreclaimed) slots *)
    peak_in_use : int Atomic.t;
    allocs : int Atomic.t;
    frees : int Atomic.t;
    uaf_reads : int Atomic.t;  (** guarded reads that hit a Free slot *)
    c_alloc : int;  (** simulated cycles per malloc/free fast path *)
    slab_threshold : int;
        (** free-list length beyond which frees take the slow path.
            Models the allocator behaviour the paper holds responsible for
            EBR's throughput collapse (§7): when a delayed thread finally
            releases epochs, every thread frees its swollen limbo bags in
            a burst, overflowing per-thread arenas and hitting the
            allocator's slow paths.  Bounded schemes free in small steady
            batches and stay on the fast path. *)
    c_free_slow : int;  (** extra cycles per slow-path free *)
  }

  let create ?(c_alloc = 30) ?(slab_threshold = 2048) ?(c_free_slow = 150)
      ~capacity ~data_fields ~ptr_fields ~nthreads () =
    if capacity <= 0 then invalid_arg "Pool.create: capacity";
    {
      capacity;
      data_fields;
      ptr_fields;
      data =
        Array.init data_fields (fun _ ->
            Array.init capacity (fun _ -> Rt.make 0));
      ptr =
        Array.init ptr_fields (fun _ ->
            Array.init capacity (fun _ -> Rt.make nil));
      lock = Array.init capacity (fun _ -> Rt.make 0);
      free_lists =
        Array.init nthreads (fun _ -> Nbr_sync.Int_vec.create ~capacity:64 ());
      next_fresh = Atomic.make 0;
      st = Array.make capacity 0;
      seqno = Array.make capacity 0;
      in_use = Atomic.make 0;
      peak_in_use = Atomic.make 0;
      allocs = Atomic.make 0;
      frees = Atomic.make 0;
      uaf_reads = Atomic.make 0;
      c_alloc;
      slab_threshold;
      c_free_slow;
    }

  let capacity t = t.capacity

  (* ---------------- allocation ---------------- *)

  let note_in_use t =
    let v = Atomic.fetch_and_add t.in_use 1 + 1 in
    (* Monotone max; a lost race only under-reports by a transient amount. *)
    if v > Atomic.get t.peak_in_use then Atomic.set t.peak_in_use v

  let alloc t =
    Rt.work t.c_alloc;
    let tid = Rt.self () in
    let fl = t.free_lists.(tid) in
    let slot =
      if not (Nbr_sync.Int_vec.is_empty fl) then Nbr_sync.Int_vec.pop fl
      else begin
        let s = Atomic.fetch_and_add t.next_fresh 1 in
        if s >= t.capacity then raise Exhausted;
        s
      end
    in
    t.st.(slot) <- 1;
    Atomic.incr t.allocs;
    note_in_use t;
    slot

  (** Mark a slot as retired (unlinked, awaiting reclamation).  Called by
      the SMR layer from [retire]; affects instrumentation only. *)
  let note_retired t slot = t.st.(slot) <- 2

  (** Return a slot to the calling thread's free list.  Double frees are a
      programming error and raise. *)
  let free t slot =
    Rt.work t.c_alloc;
    if t.st.(slot) = 0 then
      invalid_arg (Printf.sprintf "Pool.free: double free of slot %d" slot);
    t.st.(slot) <- 0;
    t.seqno.(slot) <- t.seqno.(slot) + 1;
    Atomic.incr t.frees;
    Atomic.decr t.in_use;
    let fl = t.free_lists.(Rt.self ()) in
    (* Burst reclamation overflows the thread's arena: slow path. *)
    if Nbr_sync.Int_vec.length fl > t.slab_threshold then
      Rt.work t.c_free_slow;
    Nbr_sync.Int_vec.push fl slot

  (* ---------------- field access ---------------- *)

  let data_cell t slot f = t.data.(f).(slot)
  let ptr_cell t slot f = t.ptr.(f).(slot)
  let lock_cell t slot = t.lock.(slot)

  let get_data t slot f = Rt.plain_load t.data.(f).(slot)
  let set_data t slot f v = Rt.store t.data.(f).(slot) v
  let get_data_sync t slot f = Rt.load t.data.(f).(slot)
  let cas_data t slot f old v = Rt.cas t.data.(f).(slot) old v

  let get_ptr t slot f = Rt.load t.ptr.(f).(slot)
  let set_ptr t slot f v = Rt.store t.ptr.(f).(slot) v
  let cas_ptr t slot f old v = Rt.cas t.ptr.(f).(slot) old v

  (* ---------------- instrumentation ---------------- *)

  let state t slot =
    match t.st.(slot) with 0 -> Free | 1 -> Live | _ -> Retired

  let seqno t slot = t.seqno.(slot)

  (** Costed lifecycle checks, for protection validation.  Hazard-style
      schemes must verify, after announcing, that the target "has not
      already been unlinked" (paper §2): link re-reading alone is not
      enough for structures where unlinking splices an {e ancestor} edge
      and leaves interior edges intact (DGT delete removes the parent via
      the grandparent, so [p -> leaf] survives the leaf's retirement).
      Real implementations read a mark bit the structure maintains; here
      the pool's lifecycle state plays that role, and the reads are
      charged like the cache-hit mark loads they model. *)
  let live t slot =
    Rt.work 2;
    t.st.(slot) = 1

  (** Allocation stamp with an access charge: lets validators detect
      free-and-recycle (ABA on the slot) between two reads. *)
  let stamp t slot =
    Rt.work 2;
    t.seqno.(slot)

  (** Called by the SMR layer when a guarded dereference lands on [slot];
      counts reads that hit freed memory.  For a sound scheme under the
      exact-delivery (sim) runtime this stays at zero; the [unsafe_free]
      foil drives it up. *)
  let record_read t slot =
    if slot >= 0 && slot < t.capacity && t.st.(slot) = 0 then
      Atomic.incr t.uaf_reads

  type stats = {
    s_allocs : int;
    s_frees : int;
    s_in_use : int;
    s_peak_in_use : int;
    s_uaf_reads : int;
  }

  let stats t =
    {
      s_allocs = Atomic.get t.allocs;
      s_frees = Atomic.get t.frees;
      s_in_use = Atomic.get t.in_use;
      s_peak_in_use = Atomic.get t.peak_in_use;
      s_uaf_reads = Atomic.get t.uaf_reads;
    }

  (** Reset the high-water mark to the current in-use count (called after
      prefill so E2 measures steady-state peaks, not setup). *)
  let reset_peak t = Atomic.set t.peak_in_use (Atomic.get t.in_use)
end
