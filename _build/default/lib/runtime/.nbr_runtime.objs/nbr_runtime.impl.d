lib/runtime/nbr_runtime.ml: Native_rt Runtime_intf Sim_rt
