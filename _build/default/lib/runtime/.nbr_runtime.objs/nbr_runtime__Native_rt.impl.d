lib/runtime/native_rt.ml: Array Atomic Domain Unix
