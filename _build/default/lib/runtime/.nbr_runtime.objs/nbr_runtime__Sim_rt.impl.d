lib/runtime/sim_rt.ml: Array Effect Printf String
