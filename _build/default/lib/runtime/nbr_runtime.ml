(** Execution substrates for the NBR reproduction.

    - {!Runtime_intf}: the signature all algorithms are written against.
    - {!Sim_rt}: deterministic simulated multicore (benchmark figures).
    - {!Native_rt}: real OCaml domains (parallel validation).

    See DESIGN.md §1 and §3 for why two runtimes exist and how the paper's
    signal semantics map onto each. *)

module Runtime_intf = Runtime_intf
module Sim_rt = Sim_rt
module Native_rt = Native_rt

(* Compile-time conformance checks. *)
module _ : Runtime_intf.S = Sim_rt
module _ : Runtime_intf.S = Native_rt
