lib/sync/nbr_sync.ml: Int_vec Rng Spinlock
