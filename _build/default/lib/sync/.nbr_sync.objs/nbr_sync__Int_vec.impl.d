lib/sync/int_vec.ml: Array
