lib/sync/rng.ml:
