lib/sync/spinlock.ml: Nbr_runtime
