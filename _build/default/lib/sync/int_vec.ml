(** Growable int vector (thread-local use only).

    Backs per-thread free lists and limbo bags.  Not thread-safe: each
    instance must be owned by a single thread. *)

type t = { mutable a : int array; mutable n : int }

let create ?(capacity = 16) () = { a = Array.make (max capacity 1) 0; n = 0 }

let length t = t.n
let is_empty t = t.n = 0

let clear t = t.n <- 0

let push t x =
  if t.n = Array.length t.a then begin
    let a' = Array.make (2 * t.n) 0 in
    Array.blit t.a 0 a' 0 t.n;
    t.a <- a'
  end;
  t.a.(t.n) <- x;
  t.n <- t.n + 1

let pop t =
  if t.n = 0 then invalid_arg "Int_vec.pop: empty";
  t.n <- t.n - 1;
  t.a.(t.n)

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Int_vec.get: out of bounds";
  t.a.(i)

let iter f t =
  for i = 0 to t.n - 1 do
    f t.a.(i)
  done

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.a.(i) :: acc) in
  go (t.n - 1) []
