(** Synchronization substrate: PRNG and spinlocks.

    Small building blocks shared by the SMR schemes, the data structures
    and the workload harness. *)

module Rng = Rng
module Spinlock = Spinlock
module Int_vec = Int_vec
