(** SplitMix64 pseudo-random generator.

    Used for workload key generation and operation-mix draws.  Each worker
    thread owns an independent state seeded from [(seed, tid)], so runs are
    deterministic per runtime seed and free of shared-state contention (the
    generator itself must not perturb the concurrency being measured). *)

type t = { mutable s : int }

let golden = 0x1e3779b97f4a7c15 (* 62-bit truncation of 2^64/phi *)

let create seed = { s = (seed * 0x2545f4914f6cdd1d) lxor golden }

(** Generator for worker [tid] of a run seeded with [seed]. *)
let for_thread ~seed ~tid = create ((seed lxor (tid * 0x9e3779b9)) + tid + 1)

let next t =
  let z = t.s + golden in
  t.s <- z;
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14c2ca6afdf2dcef in
  (z lxor (z lsr 31)) land max_int

(** Uniform draw in [\[0, bound)]. Bound must be positive. *)
let below t bound = next t mod bound

(** Uniform float in [\[0, 1)]. *)
let float t = float_of_int (next t land 0xFFFFFFFF) /. 4294967296.0
