lib/workload/nbr_workload.ml: Experiments Harness Runner Table Trial
