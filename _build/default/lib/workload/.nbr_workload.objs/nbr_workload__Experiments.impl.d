lib/workload/experiments.ml: Format Harness List Nbr_core Nbr_runtime Printf Table Trial
