lib/workload/harness.ml: List Nbr_core Nbr_ds Nbr_pool Nbr_runtime Runner
