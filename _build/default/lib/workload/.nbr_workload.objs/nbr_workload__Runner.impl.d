lib/workload/runner.ml: Array Nbr_core Nbr_pool Nbr_runtime Nbr_sync Trial
