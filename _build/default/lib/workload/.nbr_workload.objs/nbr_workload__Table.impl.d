lib/workload/table.ml: List Printf String
