lib/workload/trial.ml: Format Nbr_core
