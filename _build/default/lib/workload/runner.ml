(** Generic trial runner: one scheme × one structure × one runtime.

    Builds the pool, instantiates the scheme, prefills the structure,
    launches the workers, and collects metrics.  The same code drives
    every cell of every figure, so any scheme/structure pair measured is
    measured identically — the property the paper's Setbench harness
    provides.

    Every trial doubles as a correctness check: successful inserts and
    deletes are counted per thread and the structure's final size must
    equal [prefill + inserts - deletes], and the pool must report zero
    committed use-after-free reads. *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t)
    (Ds : sig
       type t

       val name : string
       val data_fields : int
       val ptr_fields : int
       val max_reservations : int
       val create : Nbr_pool.Pool.Make(Rt).t -> t
       val contains : t -> Smr.ctx -> int -> bool
       val insert : t -> Smr.ctx -> int -> bool
       val delete : t -> Smr.ctx -> int -> bool
       val size : t -> int
     end) =
struct
  module P = Nbr_pool.Pool.Make (Rt)

  (* Deterministic prefill: insert a seed-shuffled prefix of the key
     space, sequentially, before the clock starts. *)
  let prefill_keys cfg =
    let a = Array.init cfg.Trial.key_range (fun i -> i) in
    let rng = Nbr_sync.Rng.create (cfg.Trial.seed lxor 0xfeed) in
    for i = Array.length a - 1 downto 1 do
      let j = Nbr_sync.Rng.below rng (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 (min cfg.Trial.prefill cfg.Trial.key_range)

  let run (cfg : Trial.cfg) : Trial.result =
    let n = cfg.nthreads in
    let pool =
      P.create ~capacity:cfg.pool_capacity ~data_fields:Ds.data_fields
        ~ptr_fields:Ds.ptr_fields ~nthreads:n ()
    in
    let smr_cfg =
      { cfg.smr with Nbr_core.Smr_config.max_reservations = Ds.max_reservations }
    in
    let smr = Smr.create pool ~nthreads:n smr_cfg in
    let ds = Ds.create pool in
    let ctxs = Array.init n (fun tid -> Smr.register smr ~tid) in
    Array.iter (fun k -> ignore (Ds.insert ds ctxs.(0) k)) (prefill_keys cfg);
    P.reset_peak pool;
    let inserts = Array.make n 0
    and deletes = Array.make n 0
    and ops = Array.make n 0 in
    let deadline = Rt.now_ns () + cfg.duration_ns in
    Rt.run ~nthreads:n (fun tid ->
        let ctx = ctxs.(tid) in
        let rng = Nbr_sync.Rng.for_thread ~seed:cfg.seed ~tid in
        (* E2's delayed thread: sleep inside an operation (and a read
           phase, for phase-based schemes), holding whatever the scheme
           pins for in-flight operations. *)
        (match cfg.stall with
        | Some s when s.stall_tid = tid ->
            let stalled = ref false in
            Smr.begin_op ctx;
            Smr.read_only ctx (fun () ->
                if not !stalled then begin
                  stalled := true;
                  Rt.stall_ns s.stall_ns
                end);
            Smr.end_op ctx
        | _ -> ());
        let my_ins = ref 0 and my_del = ref 0 and my_ops = ref 0 in
        while Rt.now_ns () < deadline do
          let k = Nbr_sync.Rng.below rng cfg.key_range in
          let p = Nbr_sync.Rng.below rng 100 in
          if p < cfg.ins_pct then begin
            if Ds.insert ds ctx k then incr my_ins
          end
          else if p < cfg.ins_pct + cfg.del_pct then begin
            if Ds.delete ds ctx k then incr my_del
          end
          else ignore (Ds.contains ds ctx k);
          incr my_ops
        done;
        inserts.(tid) <- !my_ins;
        deletes.(tid) <- !my_del;
        ops.(tid) <- !my_ops);
    let total_ops = Array.fold_left ( + ) 0 ops in
    let ins = Array.fold_left ( + ) 0 inserts
    and del = Array.fold_left ( + ) 0 deletes in
    let ps = P.stats pool in
    {
      Trial.scheme = Smr.scheme_name;
      structure = Ds.name;
      runtime = Rt.name;
      cfg;
      total_ops;
      throughput_mops =
        float_of_int total_ops /. (float_of_int cfg.duration_ns /. 1e9) /. 1e6;
      peak_unreclaimed = ps.P.s_peak_in_use;
      final_in_use = ps.P.s_in_use;
      uaf_reads = ps.P.s_uaf_reads;
      signals = Rt.signals_sent ();
      smr_stats = Smr.stats smr;
      final_size = Ds.size ds;
      expected_size = cfg.prefill + ins - del;
    }
end
