test/main.mli:
