test/test_ds_concurrent.ml: Alcotest Fun List Nbr_core Nbr_runtime Nbr_workload Printf
