test/test_ds_sequential.ml: Alcotest Int List Nbr_core Nbr_ds Nbr_pool Nbr_runtime Nbr_sync Set
