test/test_limbo_bag.ml: Alcotest List Nbr_core Observable QCheck QCheck_alcotest
