test/test_native.ml: Alcotest Atomic List Nbr_core Nbr_runtime Nbr_workload Printf
