test/test_per_key.ml: Alcotest Array List Nbr_core Nbr_ds Nbr_pool Nbr_runtime Nbr_sync
