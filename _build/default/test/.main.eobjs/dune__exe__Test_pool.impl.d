test/test_pool.ml: Alcotest Hashtbl List Nbr_pool Nbr_runtime Printf QCheck QCheck_alcotest
