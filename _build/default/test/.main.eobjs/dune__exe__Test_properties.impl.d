test/test_properties.ml: Array List Nbr_core Nbr_pool Nbr_runtime Nbr_sync Nbr_workload QCheck QCheck_alcotest
