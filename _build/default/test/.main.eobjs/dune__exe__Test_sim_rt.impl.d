test/test_sim_rt.ml: Alcotest Array Fun List Nbr_runtime Printf
