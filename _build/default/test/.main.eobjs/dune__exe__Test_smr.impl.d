test/test_smr.ml: Alcotest Array Nbr_core Nbr_pool Nbr_runtime Nbr_sync Printf
