(* Sequential model tests: every data structure, under two reclamation
   schemes, must behave exactly like Set.Make(Int) over long random
   operation traces, and (a,b)-tree structure invariants must hold
   throughout.  These run single-threaded on the simulator, so recycling
   through each scheme's reclamation paths is still exercised. *)

module Sim = Nbr_runtime.Sim_rt
module S = Set.Make (Int)

module type DS_UNDER_TEST = sig
  type t

  val name : string
  val setup : unit -> t * (int -> bool) * (int -> bool) * (int -> bool)
  (* returns (handle, insert, delete, contains) *)

  val to_list : t -> int list
  val check : t -> string option
end

let model_trace (module D : DS_UNDER_TEST) ~ops ~range ~seed () =
  let t, insert, delete, contains = D.setup () in
  let rng = Nbr_sync.Rng.create seed in
  let model = ref S.empty in
  for i = 1 to ops do
    let k = Nbr_sync.Rng.below rng range in
    (match Nbr_sync.Rng.below rng 3 with
    | 0 ->
        let got = insert k and want = not (S.mem k !model) in
        if want then model := S.add k !model;
        if got <> want then
          Alcotest.failf "%s: insert %d returned %b at op %d" D.name k got i
    | 1 ->
        let got = delete k and want = S.mem k !model in
        if want then model := S.remove k !model;
        if got <> want then
          Alcotest.failf "%s: delete %d returned %b at op %d" D.name k got i
    | _ ->
        let got = contains k and want = S.mem k !model in
        if got <> want then
          Alcotest.failf "%s: contains %d returned %b at op %d" D.name k got i);
    if i mod 500 = 0 then begin
      (match D.check t with
      | Some e -> Alcotest.failf "%s: structural violation: %s" D.name e
      | None -> ());
      if D.to_list t <> S.elements !model then
        Alcotest.failf "%s: contents diverged from model at op %d" D.name i
    end
  done;
  if D.to_list t <> S.elements !model then
    Alcotest.failf "%s: final contents diverged" D.name

(* Instantiate each structure under a scheme. *)
module Under
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Sim.aint
              and type pool = Nbr_pool.Pool.Make(Sim).t) =
struct
  module P = Nbr_pool.Pool.Make (Sim)

  let cfg = Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 32

  let make_setup (type a) ~data_fields ~ptr_fields ?(max_reservations = 3)
      ~(create : P.t -> a)
      ~(insert : a -> Smr.ctx -> int -> bool)
      ~(delete : a -> Smr.ctx -> int -> bool)
      ~(contains : a -> Smr.ctx -> int -> bool) () =
    let pool =
      P.create ~capacity:200_000 ~data_fields ~ptr_fields ~nthreads:1 ()
    in
    let smr =
      Smr.create pool ~nthreads:1
        { cfg with Nbr_core.Smr_config.max_reservations }
    in
    let t = create pool in
    let ctx = Smr.register smr ~tid:0 in
    (t, insert t ctx, delete t ctx, contains t ctx)

  module LL = Nbr_ds.Lazy_list.Make (Sim) (Smr)

  module Lazy_list_t : DS_UNDER_TEST = struct
    type t = LL.t

    let name = "lazy-list/" ^ Smr.scheme_name

    let setup () =
      make_setup ~data_fields:LL.data_fields ~ptr_fields:LL.ptr_fields
        ~create:LL.create ~insert:LL.insert ~delete:LL.delete
        ~contains:LL.contains ()

    let to_list = LL.to_list
    let check _ = None
  end

  module DG = Nbr_ds.Dgt_bst.Make (Sim) (Smr)

  module Dgt_t : DS_UNDER_TEST = struct
    type t = DG.t

    let name = "dgt-tree/" ^ Smr.scheme_name

    let setup () =
      make_setup ~data_fields:DG.data_fields ~ptr_fields:DG.ptr_fields
        ~create:DG.create ~insert:DG.insert ~delete:DG.delete
        ~contains:DG.contains ()

    let to_list t = List.sort compare (DG.to_list t)
    let check _ = None
  end

  module HL = Nbr_ds.Harris_list.Make (Sim) (Smr)

  module Harris_t : DS_UNDER_TEST = struct
    type t = HL.t

    let name = "harris-list/" ^ Smr.scheme_name

    let setup () =
      make_setup ~data_fields:HL.data_fields ~ptr_fields:HL.ptr_fields
        ~create:HL.create ~insert:HL.insert ~delete:HL.delete
        ~contains:HL.contains ()

    let to_list = HL.to_list
    let check _ = None
  end

  module AB = Nbr_ds.Ab_tree.Make (Sim) (Smr)

  module Ab_t : DS_UNDER_TEST = struct
    type t = AB.t

    let name = "ab-tree/" ^ Smr.scheme_name

    let setup () =
      make_setup ~data_fields:AB.data_fields ~ptr_fields:AB.ptr_fields
        ~create:AB.create ~insert:AB.insert ~delete:AB.delete
        ~contains:AB.contains ()

    let to_list = AB.to_list
    let check = AB.check
  end

  module HS = Nbr_ds.Hash_set.Make (Sim) (Smr)

  module Hash_t : DS_UNDER_TEST = struct
    type t = HS.t

    let name = "hash-set/" ^ Smr.scheme_name

    let setup () =
      make_setup ~data_fields:HS.data_fields ~ptr_fields:HS.ptr_fields
        ~create:(HS.create ~buckets:8)
        ~insert:HS.insert ~delete:HS.delete ~contains:HS.contains ()

    let to_list = HS.to_list
    let check _ = None
  end

  module SK = Nbr_ds.Skip_list.Make (Sim) (Smr)

  module Skip_t : DS_UNDER_TEST = struct
    type t = SK.t

    let name = "skip-list/" ^ Smr.scheme_name

    let setup () =
      make_setup ~data_fields:SK.data_fields ~ptr_fields:SK.ptr_fields
        ~max_reservations:SK.max_reservations ~create:SK.create
        ~insert:SK.insert ~delete:SK.delete ~contains:SK.contains ()

    let to_list = SK.to_list
    let check = SK.check
  end

  (* Mark-traversing structures are excluded for HP/HE by callers. *)
  let all : (module DS_UNDER_TEST) list =
    [
      (module Lazy_list_t);
      (module Dgt_t);
      (module Harris_t);
      (module Ab_t);
      (module Hash_t);
      (module Skip_t);
    ]

  let no_mark_traversal : (module DS_UNDER_TEST) list =
    [ (module Lazy_list_t); (module Dgt_t); (module Ab_t) ]
end

module Under_nbrp = Under (Nbr_core.Nbr_plus.Make (Sim))
module Under_hp = Under (Nbr_core.Hp.Make (Sim))
module Under_he = Under (Nbr_core.Hazard_eras.Make (Sim))
module Under_debra = Under (Nbr_core.Debra.Make (Sim))

let cases =
  List.concat_map
    (fun (module D : DS_UNDER_TEST) ->
      [
        Alcotest.test_case (D.name ^ " model trace") `Quick
          (model_trace (module D) ~ops:6_000 ~range:128 ~seed:7);
        Alcotest.test_case (D.name ^ " dense keys") `Quick
          (model_trace (module D) ~ops:3_000 ~range:16 ~seed:21);
      ])
    (Under_nbrp.all @ Under_debra.all @ Under_hp.no_mark_traversal
   @ Under_he.no_mark_traversal)

let suite = cases
