(* Unit and property tests for the limbo bag (FIFO with absolute
   positions and reservation-aware sweeps). *)

module B = Nbr_core.Limbo_bag

let test_push_size () =
  let b = B.create ~capacity:2 () in
  Alcotest.(check int) "empty" 0 (B.size b);
  for i = 1 to 100 do
    B.push b i
  done;
  Alcotest.(check int) "hundred" 100 (B.size b);
  Alcotest.(check int) "abs tail" 100 (B.abs_tail b)

let test_sweep_all () =
  let b = B.create () in
  for i = 1 to 10 do
    B.push b i
  done;
  let freed = ref [] in
  let n =
    B.sweep b ~upto:(B.abs_tail b)
      ~keep:(fun _ -> false)
      ~free:(fun e -> freed := e :: !freed)
  in
  Alcotest.(check int) "freed count" 10 n;
  Alcotest.(check (list int)) "FIFO order" (List.init 10 (fun i -> i + 1))
    (List.rev !freed);
  Alcotest.(check int) "empty after" 0 (B.size b)

let test_sweep_keeps_reserved () =
  let b = B.create () in
  for i = 1 to 10 do
    B.push b i
  done;
  let keep e = e mod 2 = 0 in
  let n = B.sweep b ~upto:(B.abs_tail b) ~keep ~free:(fun _ -> ()) in
  Alcotest.(check int) "freed odd ones" 5 n;
  Alcotest.(check int) "kept even ones" 5 (B.size b);
  let kept = ref [] in
  B.iter (fun e -> kept := e :: !kept) b;
  Alcotest.(check (list int)) "kept re-appended in order" [ 2; 4; 6; 8; 10 ]
    (List.rev !kept)

let test_bookmark_sweep () =
  let b = B.create () in
  for i = 1 to 5 do
    B.push b i
  done;
  let bookmark = B.abs_tail b in
  for i = 6 to 10 do
    B.push b i
  done;
  let freed = ref [] in
  let n =
    B.sweep b ~upto:bookmark
      ~keep:(fun _ -> false)
      ~free:(fun e -> freed := e :: !freed)
  in
  Alcotest.(check int) "only pre-bookmark freed" 5 n;
  Alcotest.(check (list int)) "oldest five" [ 1; 2; 3; 4; 5 ] (List.rev !freed);
  Alcotest.(check int) "rest remain" 5 (B.size b)

(* Property: a sweep with bookmark frees exactly the unreserved prefix,
   keeps reserved prefix entries, and never touches post-bookmark pushes. *)
let prop_sweep_model =
  QCheck.Test.make ~count:300 ~name:"limbo bag sweep matches model"
    QCheck.(triple (list small_nat) (list small_nat) (fun1 Observable.int bool))
    (fun (pre, post, keepf) ->
      let keep = QCheck.Fn.apply keepf in
      let b = B.create ~capacity:1 () in
      List.iter (B.push b) pre;
      let bookmark = B.abs_tail b in
      List.iter (B.push b) post;
      let freed = ref [] in
      let n =
        B.sweep b ~upto:bookmark ~keep ~free:(fun e -> freed := e :: !freed)
      in
      let expect_freed = List.filter (fun e -> not (keep e)) pre in
      let expect_kept = List.filter keep pre in
      let remaining = ref [] in
      B.iter (fun e -> remaining := e :: !remaining) b;
      n = List.length expect_freed
      && List.rev !freed = expect_freed
      && List.rev !remaining = post @ expect_kept)

let suite =
  [
    Alcotest.test_case "push and size" `Quick test_push_size;
    Alcotest.test_case "sweep frees all" `Quick test_sweep_all;
    Alcotest.test_case "sweep keeps reserved" `Quick test_sweep_keeps_reserved;
    Alcotest.test_case "bookmark bounds sweep" `Quick test_bookmark_sweep;
    QCheck_alcotest.to_alcotest prop_sweep_model;
  ]
