(* Per-key conservation under concurrency.

   The harness's global check (final size = prefill + inserts - deletes)
   can in principle be fooled by compensating errors (a double-successful
   insert of one key masked by a lost delete of another).  Here every
   worker logs each *successful* update with its key; afterwards, for
   every key independently:

   - successful inserts and deletes must alternate in count:
     |#ins - #del| <= 1,
   - final membership must equal initial membership XOR parity of the
     number of successful updates,
   - #ins - #del must equal final(k) - initial(k).

   Any two successful updates of one key are serialized by the structure
   (locks or CAS on the same record), so these are hard invariants of any
   linearizable execution. *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)

module Check
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Sim.aint
              and type pool = P.t) =
struct
  let run (type a) ~name ~data_fields ~ptr_fields ~(create : P.t -> a)
      ~(insert : a -> Smr.ctx -> int -> bool)
      ~(delete : a -> Smr.ctx -> int -> bool)
      ~(member : a -> int -> bool) () =
    let nthreads = 5 and range = 64 and ops = 3_000 in
    Sim.set_config
      { Sim.default_config with cores = 3; granularity = 1; seed = 23 };
    let pool =
      P.create ~capacity:400_000 ~data_fields ~ptr_fields ~nthreads ()
    in
    let smr =
      Smr.create pool ~nthreads
        (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 32)
    in
    let t = create pool in
    let ctxs = Array.init nthreads (fun tid -> Smr.register smr ~tid) in
    let initial = Array.make range false in
    for k = 0 to range - 1 do
      if k mod 3 = 0 then begin
        ignore (insert t ctxs.(0) k);
        initial.(k) <- true
      end
    done;
    (* Per-thread, per-key success counters (merged after the run). *)
    let ins = Array.make_matrix nthreads range 0 in
    let del = Array.make_matrix nthreads range 0 in
    Sim.run ~nthreads (fun tid ->
        let ctx = ctxs.(tid) in
        let rng = Nbr_sync.Rng.for_thread ~seed:23 ~tid in
        for _ = 1 to ops do
          let k = Nbr_sync.Rng.below rng range in
          if Nbr_sync.Rng.below rng 2 = 0 then begin
            if insert t ctx k then ins.(tid).(k) <- ins.(tid).(k) + 1
          end
          else if delete t ctx k then del.(tid).(k) <- del.(tid).(k) + 1
        done);
    for k = 0 to range - 1 do
      let i = ref 0 and d = ref 0 in
      for tid = 0 to nthreads - 1 do
        i := !i + ins.(tid).(k);
        d := !d + del.(tid).(k)
      done;
      let fin = member t k in
      let init = initial.(k) in
      if abs (!i - !d) > 1 then
        Alcotest.failf "%s key %d: %d inserts vs %d deletes" name k !i !d;
      let expected_fin =
        if (!i + !d) mod 2 = 0 then init else not init
      in
      if fin <> expected_fin then
        Alcotest.failf "%s key %d: membership %b, parity predicts %b" name k
          fin expected_fin;
      let delta = (if fin then 1 else 0) - if init then 1 else 0 in
      if !i - !d <> delta then
        Alcotest.failf "%s key %d: ins-del=%d but membership delta=%d" name k
          (!i - !d) delta
    done
end

module Nbrp = Nbr_core.Nbr_plus.Make (Sim)
module Nbr1 = Nbr_core.Nbr.Make (Sim)
module C_nbrp = Check (Nbrp)
module C_nbr = Check (Nbr1)
module LL = Nbr_ds.Lazy_list.Make (Sim) (Nbrp)
module HL = Nbr_ds.Harris_list.Make (Sim) (Nbrp)
module DG = Nbr_ds.Dgt_bst.Make (Sim) (Nbr1)
module AB = Nbr_ds.Ab_tree.Make (Sim) (Nbrp)

let suite =
  [
    Alcotest.test_case "lazy-list/nbr+ per-key conservation" `Slow
      (C_nbrp.run ~name:"lazy-list" ~data_fields:LL.data_fields
         ~ptr_fields:LL.ptr_fields ~create:LL.create ~insert:LL.insert
         ~delete:LL.delete
         ~member:(fun t k -> List.mem k (LL.to_list t)));
    Alcotest.test_case "harris-list/nbr+ per-key conservation" `Slow
      (C_nbrp.run ~name:"harris-list" ~data_fields:HL.data_fields
         ~ptr_fields:HL.ptr_fields ~create:HL.create ~insert:HL.insert
         ~delete:HL.delete
         ~member:(fun t k -> List.mem k (HL.to_list t)));
    Alcotest.test_case "dgt-tree/nbr per-key conservation" `Slow
      (C_nbr.run ~name:"dgt-tree" ~data_fields:DG.data_fields
         ~ptr_fields:DG.ptr_fields ~create:DG.create ~insert:DG.insert
         ~delete:DG.delete
         ~member:(fun t k -> List.mem k (DG.to_list t)));
    Alcotest.test_case "ab-tree/nbr+ per-key conservation" `Slow
      (C_nbrp.run ~name:"ab-tree" ~data_fields:AB.data_fields
         ~ptr_fields:AB.ptr_fields ~create:AB.create ~insert:AB.insert
         ~delete:AB.delete
         ~member:(fun t k -> List.mem k (AB.to_list t)));
  ]
