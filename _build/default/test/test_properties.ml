(* Property-based tests of the NBR-specific invariants (qcheck over
   randomized schedules on the deterministic simulator). *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)
module NP = Nbr_core.Nbr_plus.Make (Sim)
module N = Nbr_core.Nbr.Make (Sim)
module HE = Nbr_core.Hazard_eras.Make (Sim)

let cfg threshold =
  Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default threshold

(* Lemma 10 as a property: for random thread counts, thresholds,
   reservation patterns and stall schedules, a bounded scheme never holds
   more than live + n*(threshold + R + 1) unreclaimed records.  Threads
   continuously allocate, sometimes briefly reserve-and-hold, retire, and
   may stall mid-phase. *)
let bounded_garbage_nbr_plus =
  QCheck.Test.make ~count:20 ~name:"nbr+ bounded garbage (Lemma 10)"
    QCheck.(
      quad (int_range 2 6) (* threads *)
        (int_range 8 64) (* threshold *)
        (int_range 50 400) (* retires per thread *)
        (int_range 0 3) (* stalled thread count *))
    (fun (n, threshold, iters, stallers) ->
      Sim.set_config
        { Sim.default_config with cores = 4; granularity = 1; seed = n * 131 };
      let pool =
        P.create ~capacity:200_000 ~data_fields:1 ~ptr_fields:1 ~nthreads:n ()
      in
      let smr = NP.create pool ~nthreads:n (cfg threshold) in
      let ctxs = Array.init n (fun tid -> NP.register smr ~tid) in
      Sim.run ~nthreads:n (fun tid ->
          let c = ctxs.(tid) in
          let rng = Nbr_sync.Rng.for_thread ~seed:99 ~tid in
          for i = 1 to iters do
            NP.begin_op c;
            (* Occasionally hold a reservation through a write phase. *)
            if Nbr_sync.Rng.below rng 4 = 0 then begin
              let s = NP.alloc c in
              NP.phase c
                ~read:(fun () -> ((), [| s |]))
                ~write:(fun () -> NP.retire c s)
            end
            else begin
              let s = NP.alloc c in
              NP.retire c s
            end;
            (* A few threads stall mid-run, inside an operation. *)
            if tid < stallers && i = iters / 2 then
              NP.read_only c (fun () -> Sim.stall_ns 2_000_000);
            NP.end_op c
          done);
      let st = P.stats pool in
      let r = Nbr_core.Smr_config.(default.max_reservations) in
      st.P.s_in_use <= n * (threshold + r + 1))

(* The same harness must show unbounded behaviour is *possible* for leaky
   reclamation (sanity check that the property above is not vacuous). *)
let leaky_unbounded =
  QCheck.Test.make ~count:5 ~name:"leaky reclamation exceeds the NBR bound"
    QCheck.(int_range 100 300)
    (fun iters ->
      Sim.set_config
        { Sim.default_config with cores = 4; granularity = 1; seed = 5 };
      let module L = Nbr_core.Leaky.Make (Sim) in
      let n = 4 and threshold = 16 in
      let pool =
        P.create ~capacity:200_000 ~data_fields:1 ~ptr_fields:1 ~nthreads:n ()
      in
      let smr = L.create pool ~nthreads:n (cfg threshold) in
      let ctxs = Array.init n (fun tid -> L.register smr ~tid) in
      Sim.run ~nthreads:n (fun tid ->
          let c = ctxs.(tid) in
          for _ = 1 to iters do
            let s = L.alloc c in
            L.retire c s
          done);
      let st = P.stats pool in
      st.P.s_in_use = n * iters
      && st.P.s_in_use
         > n * (threshold + Nbr_core.Smr_config.(default.max_reservations) + 1))

(* Determinism of whole trials: same seed -> identical results, different
   seed -> (almost certainly) different interleaving observable in ops. *)
module H = Nbr_workload.Harness.Make (Sim)

let trial_deterministic =
  QCheck.Test.make ~count:8 ~name:"sim trials are seed-deterministic"
    QCheck.(pair (int_range 1 1000) (int_range 0 3))
    (fun (seed, which) ->
      let structure = List.nth [ "lazy-list"; "dgt-tree"; "hash-set"; "skip-list" ] which in
      let run () =
        Sim.set_config
          { Sim.default_config with cores = 3; granularity = 1; seed };
        let cfg =
          Nbr_workload.Trial.mk ~nthreads:4 ~duration_ns:120_000 ~key_range:64
            ~seed ()
        in
        let r = H.run ~scheme:"nbr+" ~structure cfg in
        (r.Nbr_workload.Trial.total_ops, r.Nbr_workload.Trial.final_size)
      in
      run () = run ())

(* Rng sanity: below stays in range; for_thread decorrelates threads. *)
let rng_bounds =
  QCheck.Test.make ~count:200 ~name:"rng below stays in bounds"
    QCheck.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Nbr_sync.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Nbr_sync.Rng.below rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ bounded_garbage_nbr_plus; leaky_unbounded; trial_deterministic; rng_bounds ]
