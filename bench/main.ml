(* Benchmark driver: regenerates every table/figure of the paper plus a
   Bechamel micro-benchmark suite of per-operation reclamation costs.

   Usage:
     dune exec bench/main.exe                 # standard scaled suite
     dune exec bench/main.exe -- --quick      # fast sanity pass
     dune exec bench/main.exe -- --only fig3a,fig4c
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --no-micro   # skip Bechamel section

   Figure experiments run on the simulated multicore (DESIGN.md §1);
   micro-benchmarks run single-threaded on the native runtime, measuring
   the per-operation overhead each scheme adds — the "what does a guarded
   read / a retire cost" dimension of the paper's P1/P3 discussion. *)

module E = Nbr_workload.Experiments

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)

module Nat = Nbr_runtime.Native_rt

module Micro
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Nat.aint
              and type pool = Nbr_pool.Pool.Make(Nat).t) =
struct
  module P = Nbr_pool.Pool.Make (Nat)
  module L = Nbr_ds.Lazy_list.Make (Nat) (Smr)

  let state =
    lazy
      (let pool =
         P.create ~capacity:150_000 ~data_fields:L.data_fields
           ~ptr_fields:L.ptr_fields ~nthreads:1 ()
       in
       let smr =
         Smr.create pool ~nthreads:1
           (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
              256)
       in
       let t = L.create pool in
       let ctx = Smr.register smr ~tid:0 in
       for k = 0 to 199 do
         if k mod 2 = 0 then ignore (L.insert t ctx k)
       done;
       (t, ctx))

  let contains_one =
    let i = ref 0 in
    fun () ->
      let t, ctx = Lazy.force state in
      incr i;
      ignore (L.contains t ctx (!i * 7 mod 200))

  (* Pay the pool/structure construction before measurement begins. *)
  let warm () = ignore (Lazy.force state)

  let update_one =
    let i = ref 0 in
    fun () ->
      let t, ctx = Lazy.force state in
      incr i;
      let k = (!i * 13 mod 99 * 2) + 1 in
      if !i land 1 = 0 then ignore (L.insert t ctx k)
      else ignore (L.delete t ctx k)
end

(* The reclaiming schemes worth a per-op cost row; "he" is skipped only
   because its numbers track hp's.  Instantiated off the registry so the
   name → functor table lives in exactly one place. *)
let micro_schemes = [ "nbr"; "nbr+"; "debra"; "qsbr"; "rcu"; "ibr"; "hp" ]

let micro_tests () =
  let open Bechamel in
  let mk name f = Test.make ~name (Staged.stage f) in
  let per_scheme =
    List.map
      (fun name ->
        let e = Nbr_workload.Registry.find_exn name in
        let module S =
          (val e.Nbr_workload.Registry.r_scheme : Nbr_workload.Registry.SCHEME)
        in
        let module M = Micro (S.Make (Nat)) in
        M.warm ();
        ( mk ("contains/" ^ name) M.contains_one,
          mk ("update/" ^ name) M.update_one ))
      micro_schemes
  in
  Test.make_grouped ~name:"micro"
    (List.map fst per_scheme @ List.map snd per_scheme)

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  print_endline "\n## Micro-benchmarks (native runtime, 1 thread, ns/op)";
  print_endline
    "Per-operation cost on a 200-key lazy list: the per-read overhead of \
     each scheme (HP's fenced publishes vs NBR's phase bookkeeping vs EBR's \
     epoch announcements).";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let res = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) res [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Printf.printf "  %-22s %10.1f ns/op\n%!" name est
      | _ -> Printf.printf "  %-22s (no estimate)\n%!" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let only =
    let with_eq =
      List.find_map
        (fun a ->
          if String.length a > 7 && String.sub a 0 7 = "--only=" then
            Some (String.split_on_char ',' (String.sub a 7 (String.length a - 7)))
          else None)
        args
    in
    match with_eq with
    | Some o -> Some o
    | None ->
        let rec pair = function
          | "--only" :: v :: _ -> Some (String.split_on_char ',' v)
          | _ :: rest -> pair rest
          | [] -> None
        in
        pair args
  in
  if has "--list" then begin
    List.iter (fun (id, d, _) -> Printf.printf "%-18s %s\n" id d) E.all;
    exit 0
  end;
  let quick = has "--quick" in
  let selected =
    match only with
    | None -> E.all
    | Some ids -> List.filter (fun (id, _, _) -> List.mem id ids) E.all
  in
  Printf.printf
    "# NBR reproduction benchmarks (%s profile)\n\
     # Simulated 16-core machine; throughput in simulated Mops/s.\n\
     # Shapes (ordering, crossovers, bounded-vs-unbounded memory) are what \
     reproduce\n\
     # the paper; absolute numbers do not — see DESIGN.md / EXPERIMENTS.md.\n\
     %!"
    (if quick then "quick" else "standard");
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, descr, run) ->
      Printf.printf "\n=== %s: %s ===\n%!" id descr;
      let t = Unix.gettimeofday () in
      (match run quick with
      | () -> ()
      | exception Nbr_pool.Pool.Exhausted x ->
          (* An undersized pool (or the leaky scheme running long enough)
             is a diagnosable configuration problem, not a crash: report
             it and let the remaining experiments run. *)
          Format.printf "[%s ABORTED] %a@." id Nbr_pool.Pool.pp_exhausted x;
          E.note_failure
            (Printf.sprintf "%s: pool exhausted (capacity %d)" id
               x.Nbr_pool.Pool.x_capacity));
      Printf.printf "[%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t))
    selected;
  if not (has "--no-micro") then run_micro ();
  let ok = E.summary () in
  Printf.printf "[total %.1fs]\n%!" (Unix.gettimeofday () -. t0);
  if not ok then exit 1
