(* Hot-path microbenchmark driver: the perf-tracking substrate.

   Where bench/main.exe reproduces the paper's figures, this executable
   tracks the *repository's own* hot paths over time, so regressions are
   visible in CI and improvements land as numbers, not adjectives.  It
   measures, per runtime (native wall-clock ns / sim virtual ns):

   - read_path_1t/<scheme>   guarded-dereference cost: ns per [contains]
                             on a 200-key lazy list, single thread
   - read_path_mt/<scheme>   the same at several threads (E1-style
                             contention on the read path)
   - signal_all/n<k>         one signalAll broadcast to k-1 polling victims
   - alloc_free              pool alloc+free fast path, single thread
   - trial_mops/...          runner-level wall-clock trials (native only):
                             the full harness, real domains, real time
   - latency_*               per-operation latency quantiles (p50/p99) from
                             one harness trial with [record_latency] on, plus
                             restarts-per-op quantiles
   - kv_*                    serving-layer service times: get/put p50/p99 and
                             mean ns/request from one closed-loop KV run
                             (nbr+ over hash-set shards); regression-gated

   Output: BENCH_<runtime>.json in --out-dir (default ".").

   Modes:
     micro.exe [--quick] [--runtime native|sim|both] [--out-dir D] [--no-wall]
               [--trace-out FILE]
       --trace-out additionally runs one traced sim trial and writes the
       merged event timeline as Chrome trace-event JSON (load it in
       Perfetto / chrome://tracing); the benchmarks themselves always run
       with tracing off.
     micro.exe --check BASELINE --against CURRENT [--max-ratio R]
       pure file comparison, no benchmarking: exits 1 if any read_path_* or
       alloc_free entry of CURRENT is more than R times its BASELINE value
       (default R = 2.0).  This is the CI bench-smoke gate. *)

module T = Nbr_workload.Trial

(* ------------------------------------------------------------------ *)
(* Benchmarks, generic in the runtime.                                 *)

module RtBench (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)

  let smr_cfg =
    Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 256

  module Read_path
      (Smr : Nbr_core.Smr_intf.S
               with type aint = Rt.aint
                and type pool = Nbr_pool.Pool.Make(Rt).t) =
  struct
    module L = Nbr_ds.Lazy_list.Make (Rt) (Smr)

    (* ns (runtime clock) per [contains] on a 200-key half-full lazy list:
       every probe walks ~50 guarded dereferences, so this is dominated by
       the per-access cost the paper's P1 discussion is about. *)
    let measure ~nthreads ~iters =
      let pool =
        P.create ~capacity:(1024 + (nthreads * 256))
          ~data_fields:L.data_fields ~ptr_fields:L.ptr_fields ~nthreads ()
      in
      let smr = Smr.create pool ~nthreads smr_cfg in
      let ds = L.create pool in
      let ctxs = Array.init nthreads (fun tid -> Smr.register smr ~tid) in
      for k = 0 to 199 do
        if k mod 2 = 0 then ignore (L.insert ds ctxs.(0) k)
      done;
      let elapsed = Array.make nthreads 0 in
      Rt.run ~nthreads (fun tid ->
          let ctx = ctxs.(tid) in
          let t0 = Rt.now_ns () in
          for i = 1 to iters do
            ignore (L.contains ds ctx (i * 7 mod 200))
          done;
          elapsed.(tid) <- Rt.now_ns () - t0);
      float_of_int (Array.fold_left ( + ) 0 elapsed)
      /. float_of_int (nthreads * iters)
  end

  (* One measurement closure per sound scheme, driven off the registry so
     the scheme set lives in exactly one place (lib/workload/registry). *)
  let read_paths =
    List.filter_map
      (fun (e : Nbr_workload.Registry.entry) ->
        if e.r_foil then None
        else
          let module S = (val e.r_scheme : Nbr_workload.Registry.SCHEME) in
          let module RP = Read_path (S.Make (Rt)) in
          Some (e.r_name, RP.measure))
      Nbr_workload.Registry.all

  (* ns per signalAll broadcast (n-1 sends) while the victims poll: the
     sender-side cost of one NBR reclamation event. *)
  let signal_all_ns ~nthreads ~iters =
    let stop = Rt.make 0 in
    let out = ref 0.0 in
    Rt.run ~nthreads (fun tid ->
        if tid = 0 then begin
          let t0 = Rt.now_ns () in
          for _ = 1 to iters do
            for t = 1 to nthreads - 1 do
              Rt.send_signal t
            done
          done;
          out :=
            float_of_int (Rt.now_ns () - t0) /. float_of_int iters;
          Rt.store stop 1
        end
        else
          while Rt.load stop = 0 do
            Rt.poll_t tid;
            Rt.cpu_relax ()
          done);
    !out

  (* Pool fast path: alloc pops the caller's own cache, free pushes it
     back — no contention, no pressure. *)
  let alloc_free_ns ~iters =
    let pool =
      P.create ~capacity:64 ~data_fields:1 ~ptr_fields:1 ~nthreads:1 ()
    in
    let out = ref 0.0 in
    Rt.run ~nthreads:1 (fun _ ->
        let s0 = P.alloc pool in
        P.free pool s0;
        let t0 = Rt.now_ns () in
        for _ = 1 to iters do
          let s = P.alloc pool in
          P.free pool s
        done;
        out := float_of_int (Rt.now_ns () - t0) /. float_of_int iters);
    !out

  (* Contended pool path: every thread runs alloc/free pairs against one
     shared pool.  What this measures is the allocator's shared state —
     occupancy accounting, free-space hand-off — since each thread's
     working set is its own.  The serialization-point number ROADMAP
     item 3 is about. *)
  let alloc_free_mt_ns ~nthreads ~iters =
    let pool =
      P.create
        ~capacity:(nthreads * 64)
        ~data_fields:1 ~ptr_fields:1 ~nthreads ()
    in
    let elapsed = Array.make nthreads 0 in
    Rt.run ~nthreads (fun tid ->
        let s0 = P.alloc pool in
        P.free pool s0;
        let t0 = Rt.now_ns () in
        for _ = 1 to iters do
          let s = P.alloc pool in
          P.free pool s
        done;
        elapsed.(tid) <- Rt.now_ns () - t0);
    float_of_int (Array.fold_left ( + ) 0 elapsed)
    /. float_of_int (nthreads * iters)

  (* Per-size-class fast path: the same owner-magazine alloc/free pair on
     a classed pool, so the handle codec and per-class magazine routing
     are on the measured path.  The two classes differ in field shape
     (narrow list node vs wide tree node) — the per-pair cost should not,
     since neither the codec nor the magazines touch the fields. *)
  let alloc_free_cls_ns ~cls ~iters =
    let pool =
      P.create_classed
        ~classes:
          [|
            {
              Nbr_pool.Pool.cc_capacity = 64;
              cc_data_fields = 1;
              cc_ptr_fields = 1;
            };
            {
              Nbr_pool.Pool.cc_capacity = 64;
              cc_data_fields = 2;
              cc_ptr_fields = 8;
            };
          |]
        ~nthreads:1 ()
    in
    let out = ref 0.0 in
    Rt.run ~nthreads:1 (fun _ ->
        let s0 = P.alloc ~cls pool in
        P.free pool s0;
        let t0 = Rt.now_ns () in
        for _ = 1 to iters do
          let s = P.alloc ~cls pool in
          P.free pool s
        done;
        out := float_of_int (Rt.now_ns () - t0) /. float_of_int iters);
    !out
end

(* Serving-layer tracking run: closed-loop read-heavy traffic against a
   small sharded store, so the recorded quantiles are service times (no
   queueing model) — stable enough to regression-gate. *)
module KvBench (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module K = Nbr_kv.Service.Make (Rt)

  let run ~duration_ns =
    let keyspace = 65_536 in
    let st =
      K.St.create
        (K.St.Cfg.make ~nshards:4 ~keyspace ~scheme:"nbr+" ~nthreads:4 ())
    in
    let traffic = Nbr_workload.Traffic.make ~keyspace () in
    K.run st (K.Cfg.make ~duration_ns ~seed:7 ~prefill:8192 ~traffic ())

  (* Guarded flash-crowd run for the kv_slo/* keys: open-loop arrivals
     with deadlines, admission control and breakers on, so the recorded
     percentages exercise the whole overload-protection path.  Rate and
     deadline are per-runtime — virtual time is exact, wall time needs
     headroom against OS scheduling. *)
  let run_slo ~duration_ns ~rate_rps ~deadline_ns =
    let keyspace = 65_536 in
    let st =
      K.St.create
        (K.St.Cfg.make ~nshards:4 ~keyspace ~scheme:"nbr+" ~nthreads:4 ())
    in
    let traffic =
      Nbr_workload.Traffic.make
        ~shape:
          (Nbr_workload.Traffic.Flash_crowd
             { fc_at_pct = 40; fc_len_pct = 20; fc_mult = 8 })
        ~rate_rps ~keyspace ()
    in
    K.run st
      (K.Cfg.make ~duration_ns ~seed:7 ~prefill:8192
         ~guard:(Nbr_kv.Guard.Cfg.make ~deadline_ns ())
         ~traffic ())
end

module N = RtBench (Nbr_runtime.Native_rt)
module S = RtBench (Nbr_runtime.Sim_rt)
module KV_nat = KvBench (Nbr_runtime.Native_rt)
module KV_sim = KvBench (Nbr_runtime.Sim_rt)
module H_nat = Nbr_workload.Harness.Make (Nbr_runtime.Native_rt)
module H_sim = Nbr_workload.Harness.Make (Nbr_runtime.Sim_rt)

(* ------------------------------------------------------------------ *)
(* Result accumulation and JSON.                                       *)

let results : (string * float) list ref = ref []
let record k v = results := (k, v) :: !results

(* latency_<op>_{p50,p99}_ns entries (restart counts are unitless) from a
   [record_latency] trial, plus console lines so the numbers are visible
   in CI logs without opening the JSON. *)
let record_latency_entries (r : T.result) =
  match r.T.latency with
  | None -> ()
  | Some l ->
      let put name unit_sfx (s : Nbr_obs.Histogram.summary) =
        record
          (Printf.sprintf "latency_%s_p50%s" name unit_sfx)
          s.Nbr_obs.Histogram.s_p50;
        record (Printf.sprintf "latency_%s_p99%s" name unit_sfx) s.s_p99;
        Printf.printf "  latency_%-9s p50 %10.1f  p99 %10.1f  max %d\n%!"
          name s.s_p50 s.s_p99 s.s_max
      in
      put "insert" "_ns" l.T.lat_insert;
      put "delete" "_ns" l.T.lat_delete;
      put "contains" "_ns" l.T.lat_contains;
      put "restarts" "" l.T.lat_restarts

(* Inline vs background-reclaimer tail latency on an update-heavy trial
   (DESIGN.md §12): threshold sweeps leave the hot path, so the update
   p99/p99.9 should drop.  Published as
   reclaim_tail/<mode>/<op>_{p99,p999}_ns; new keys, not
   regression-gated. *)
let record_reclaim_tail run_trial =
  List.iter
    (fun (mode, reclaim) ->
      let r = run_trial reclaim in
      match r.T.latency with
      | None -> ()
      | Some l ->
          let put op (s : Nbr_obs.Histogram.summary) =
            record
              (Printf.sprintf "reclaim_tail/%s/%s_p99_ns" mode op)
              s.Nbr_obs.Histogram.s_p99;
            record
              (Printf.sprintf "reclaim_tail/%s/%s_p999_ns" mode op)
              s.s_p999;
            Printf.printf
              "  reclaim_tail/%s/%-7s p99 %10.1f  p99.9 %10.1f\n%!" mode op
              s.Nbr_obs.Histogram.s_p99 s.s_p999
          in
          put "insert" l.T.lat_insert;
          put "delete" l.T.lat_delete)
    [ ("inline", None); ("reclaim", Some Nbr_reclaim.Reclaimer.On_pressure) ]

(* kv_* entries from one serving-layer run; all ns, lower is better, so
   the ratio gate applies directly (throughput is published inverted as
   mean ns per request).  The p99s ride along under the ungated "kv/"
   prefix: on the native runtime they are dominated by OS scheduling
   noise, far too volatile for a 2x gate on shared CI runners. *)
let record_kv (rep : Nbr_kv.Service.report) =
  let g = rep.Nbr_kv.Service.rep_latency.Nbr_kv.Service.l_get
  and p = rep.Nbr_kv.Service.rep_latency.Nbr_kv.Service.l_put in
  record "kv_get_p50_ns" g.Nbr_obs.Histogram.s_p50;
  record "kv_put_p50_ns" p.Nbr_obs.Histogram.s_p50;
  record "kv_req_ns" (1e6 /. rep.Nbr_kv.Service.rep_throughput_kops);
  record "kv/get_p99_ns" g.s_p99;
  record "kv/put_p99_ns" p.s_p99;
  Printf.printf
    "  kv_get     p50 %10.1f  p99 %10.1f\n  kv_put     p50 %10.1f  p99 \
     %10.1f\n  kv_req_ns      %10.1f\n%!"
    g.Nbr_obs.Histogram.s_p50 g.s_p99 p.Nbr_obs.Histogram.s_p50 p.s_p99
    (1e6 /. rep.Nbr_kv.Service.rep_throughput_kops)

(* kv_slo/* entries from one guarded flash-crowd run.  Only bounded
   percentages sit under the gated prefix: accounted_pct is pinned at
   100 by the ledger invariant and goodput_pct cannot exceed 100, so
   the 2x ratio gate trips only if the guard itself regresses.  The
   latencies and raw counts of an open-loop run are too noisy on shared
   native runners; they ride along ungated under kv/slo_*. *)
let record_kv_slo (rep : Nbr_kv.Service.report) =
  let module G = Nbr_kv.Guard in
  let s = rep.Nbr_kv.Service.rep_slo in
  let accounted =
    if s.G.slo_admitted = 0 then 100.0
    else
      100.0
      *. float_of_int (s.G.slo_completed + s.G.slo_shed + s.G.slo_timed_out)
      /. float_of_int s.G.slo_admitted
  in
  record "kv_slo/accounted_pct" accounted;
  record "kv_slo/goodput_pct" (G.goodput_pct s);
  let g = rep.Nbr_kv.Service.rep_latency.Nbr_kv.Service.l_get in
  record "kv/slo_get_p999_ns" g.Nbr_obs.Histogram.s_p999;
  record "kv/slo_shed" (float_of_int s.G.slo_shed);
  record "kv/slo_timed_out" (float_of_int s.G.slo_timed_out);
  record "kv/slo_retries" (float_of_int s.G.slo_retries);
  Printf.printf
    "  kv_slo     accounted %5.1f%%  goodput %5.1f%%  shed %d  t/o %d  \
     retries %d\n%!"
    accounted (G.goodput_pct s) s.G.slo_shed s.G.slo_timed_out
    s.G.slo_retries

let write_json ~runtime ~mode ~path =
  let oc = open_out path in
  output_string oc "{\n";
  Printf.fprintf oc "  \"schema\": 1,\n";
  Printf.fprintf oc "  \"runtime\": %S,\n" runtime;
  Printf.fprintf oc "  \"mode\": %S,\n" mode;
  output_string oc "  \"results\": {\n";
  let rows = List.rev !results in
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "    %S: %.3f%s\n" k v
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d entries)\n%!" path (List.length rows)

(* Minimal parser for the JSON we emit: every ["key": number] pair.  Not a
   general JSON reader — it only has to read its own output. *)
let read_entries path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let out = ref [] in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    if s.[!i] = '"' then begin
      let j = String.index_from s (!i + 1) '"' in
      let key = String.sub s (!i + 1) (j - !i - 1) in
      let k = ref (j + 1) in
      while !k < len && (s.[!k] = ':' || s.[!k] = ' ') do incr k done;
      if
        !k < len && s.[!k - 1] <> '"'
        && (s.[!k] = '-' || (s.[!k] >= '0' && s.[!k] <= '9'))
      then begin
        let e = ref !k in
        while
          !e < len
          && (s.[!e] = '-' || s.[!e] = '.' || s.[!e] = 'e' || s.[!e] = '+'
             || (s.[!e] >= '0' && s.[!e] <= '9'))
        do
          incr e
        done;
        (match float_of_string_opt (String.sub s !k (!e - !k)) with
        | Some v -> out := (key, v) :: !out
        | None -> ());
        i := !e
      end
      else i := j + 1
    end
    else incr i
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Regression gate (CI): compare two result files.                     *)

(* "kv_" already covers "kv_slo/"; it is listed anyway so the gate's
   coverage of the overload-protection keys survives a future narrowing
   of the serving-layer prefix. *)
let guarded_prefixes =
  [ "read_path_1t/"; "read_path_mt/"; "alloc_free"; "kv_"; "kv_slo/" ]

let check ~baseline ~against ~max_ratio =
  let base = read_entries baseline and cur = read_entries against in
  let guarded k =
    List.exists
      (fun p -> String.length k >= String.length p
                && String.sub k 0 (String.length p) = p)
      guarded_prefixes
  in
  let failures = ref 0 and compared = ref 0 in
  List.iter
    (fun (k, b) ->
      if guarded k && b > 0.0 then
        match List.assoc_opt k cur with
        | None -> ()
        | Some c ->
            incr compared;
            let ratio = c /. b in
            let flag = ratio > max_ratio in
            if flag then incr failures;
            Printf.printf "  %-28s base %10.1f  now %10.1f  x%.2f %s\n" k b c
              ratio
              (if flag then "REGRESSION" else ""))
    base;
  Printf.printf "%d metrics compared against %s, %d regressions (> x%.1f)\n%!"
    !compared baseline !failures max_ratio;
  if !compared = 0 then begin
    print_endline "error: no comparable metrics found";
    exit 2
  end;
  if !failures > 0 then exit 1

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let value flag default =
    let rec go = function
      | f :: v :: _ when f = flag -> v
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  (match (value "--check" "", value "--against" "") with
  | "", _ -> ()
  | baseline, against ->
      if against = "" then begin
        print_endline "error: --check requires --against CURRENT";
        exit 2
      end;
      check ~baseline ~against
        ~max_ratio:(float_of_string (value "--max-ratio" "2.0"));
      exit 0);
  let quick = has "--quick" in
  (* --alloc-only: just the allocator benches (fast enough to run by hand
     when iterating on lib/pool; also how the pre/post rewrite numbers in
     EXPERIMENTS.md were captured). *)
  let alloc_only = has "--alloc-only" in
  let runtime = value "--runtime" "both" in
  let out_dir = value "--out-dir" "." in
  let mode = if quick then "quick" else "standard" in
  let mt_native = 4 in
  let mt_sim = 8 in

  let bench_native () =
    results := [];
    let it_1t = if quick then 20_000 else 200_000 in
    let it_mt = if quick then 4_000 else 40_000 in
    let it_sig = if quick then 2_000 else 20_000 in
    let it_af = if quick then 50_000 else 500_000 in
    Printf.printf "# native runtime (wall-clock ns, %s)\n%!" mode;
    if not alloc_only then begin
      List.iter
        (fun (name, m) ->
          let v = m ~nthreads:1 ~iters:it_1t in
          record (Printf.sprintf "read_path_1t/%s" name) v;
          Printf.printf "  read_path_1t/%-6s %8.1f ns/op\n%!" name v)
        N.read_paths;
      List.iter
        (fun (name, m) ->
          let v = m ~nthreads:mt_native ~iters:it_mt in
          record (Printf.sprintf "read_path_mt/%s" name) v;
          Printf.printf "  read_path_mt/%-6s %8.1f ns/op (t%d)\n%!" name v
            mt_native)
        N.read_paths;
      let v = N.signal_all_ns ~nthreads:mt_native ~iters:it_sig in
      record (Printf.sprintf "signal_all/n%d" mt_native) v;
      Printf.printf "  signal_all/n%d      %8.1f ns/broadcast\n%!" mt_native v
    end;
    let v = N.alloc_free_ns ~iters:it_af in
    record "alloc_free" v;
    Printf.printf "  alloc_free          %8.1f ns/pair\n%!" v;
    let v = N.alloc_free_mt_ns ~nthreads:mt_native ~iters:it_af in
    record (Printf.sprintf "alloc_free_mt/t%d" mt_native) v;
    Printf.printf "  alloc_free_mt/t%d    %8.1f ns/pair\n%!" mt_native v;
    List.iter
      (fun cls ->
        let v = N.alloc_free_cls_ns ~cls ~iters:it_af in
        record (Printf.sprintf "alloc_free/cls%d" cls) v;
        Printf.printf "  alloc_free/cls%d     %8.1f ns/pair\n%!" cls v)
      [ 0; 1 ];
    if (not (has "--no-wall")) && not alloc_only then begin
      (* Runner-level wall-clock trials: the whole harness on real domains.
         Mops/s (higher is better) — reported, not regression-gated. *)
      let dur = if quick then 100_000_000 else 500_000_000 in
      List.iter
        (fun (scheme, structure) ->
          let cfg =
            T.Cfg.make ~nthreads:mt_native ~duration_ns:dur ~key_range:256 ~seed:7
              ~smr:N.smr_cfg ()
          in
          let r = H_nat.run ~scheme ~structure cfg in
          let k =
            Printf.sprintf "trial_mops/%s/%s/t%d" structure scheme mt_native
          in
          record k r.T.throughput_mops;
          record
            (Printf.sprintf "trial_uaf/%s/%s/t%d" structure scheme mt_native)
            (float_of_int r.T.uaf_reads);
          Printf.printf "  %-28s %8.3f Mops/s (uaf=%d)\n%!" k
            r.T.throughput_mops r.T.uaf_reads)
        [ ("nbr", "lazy-list"); ("nbr+", "dgt-tree"); ("ibr", "lazy-list") ]
    end;
    if not alloc_only then begin
      (* Latency quantiles: one short harness trial with per-operation
         histograms on.  Cheap enough to run even in --quick/--no-wall. *)
      let lat_cfg =
        T.Cfg.make ~nthreads:mt_native
          ~duration_ns:(if quick then 50_000_000 else 200_000_000)
          ~key_range:256 ~seed:7 ~smr:N.smr_cfg ~record_latency:true ()
      in
      let r = H_nat.run ~scheme:"nbr" ~structure:"lazy-list" lat_cfg in
      record_latency_entries r;
      (* Retire-heavy tail pair: inline vs background reclaimer. *)
      record_reclaim_tail (fun reclaim ->
          let cfg =
            T.Cfg.make ~nthreads:mt_native
              ~duration_ns:(if quick then 50_000_000 else 200_000_000)
              ~key_range:128 ~ins_pct:50 ~del_pct:50 ~seed:7
              ~smr:(Nbr_core.Smr_config.with_threshold N.smr_cfg 64)
              ?reclaim ~record_latency:true ()
          in
          H_nat.run ~scheme:"nbr+" ~structure:"harris-list" cfg)
    end;
    (* Same duration in quick mode: the run is 100ms of wall time, and a
       shorter one over-weights warmup, skewing quick CI runs against
       the committed standard-mode baseline. *)
    if not alloc_only then record_kv (KV_nat.run ~duration_ns:100_000_000);
    if not alloc_only then
      record_kv_slo
        (KV_nat.run_slo ~duration_ns:100_000_000 ~rate_rps:10_000
           ~deadline_ns:50_000_000);
    write_json ~runtime:"native" ~mode
      ~path:(Filename.concat out_dir "BENCH_native.json")
  in

  let bench_sim () =
    results := [];
    (* Virtual-time results are deterministic; iteration counts only bound
       the wall cost of running the simulation itself. *)
    let it_1t = if quick then 300 else 2_000 in
    let it_mt = if quick then 100 else 500 in
    let it_sig = if quick then 100 else 500 in
    let it_af = if quick then 2_000 else 20_000 in
    Printf.printf "# sim runtime (virtual ns, deterministic, %s)\n%!" mode;
    if not alloc_only then begin
      List.iter
        (fun (name, m) ->
          let v = m ~nthreads:1 ~iters:it_1t in
          record (Printf.sprintf "read_path_1t/%s" name) v;
          Printf.printf "  read_path_1t/%-6s %8.1f ns/op\n%!" name v)
        S.read_paths;
      List.iter
        (fun (name, m) ->
          let v = m ~nthreads:mt_sim ~iters:it_mt in
          record (Printf.sprintf "read_path_mt/%s" name) v;
          Printf.printf "  read_path_mt/%-6s %8.1f ns/op (t%d)\n%!" name v
            mt_sim)
        S.read_paths;
      let v = S.signal_all_ns ~nthreads:mt_sim ~iters:it_sig in
      record (Printf.sprintf "signal_all/n%d" mt_sim) v;
      Printf.printf "  signal_all/n%d      %8.1f ns/broadcast\n%!" mt_sim v
    end;
    let v = S.alloc_free_ns ~iters:it_af in
    record "alloc_free" v;
    Printf.printf "  alloc_free          %8.1f ns/pair\n%!" v;
    let v = S.alloc_free_mt_ns ~nthreads:mt_sim ~iters:(it_af / 4) in
    record (Printf.sprintf "alloc_free_mt/t%d" mt_sim) v;
    Printf.printf "  alloc_free_mt/t%d    %8.1f ns/pair\n%!" mt_sim v;
    List.iter
      (fun cls ->
        let v = S.alloc_free_cls_ns ~cls ~iters:it_af in
        record (Printf.sprintf "alloc_free/cls%d" cls) v;
        Printf.printf "  alloc_free/cls%d     %8.1f ns/pair\n%!" cls v)
      [ 0; 1 ];
    if not alloc_only then begin
      (* Deterministic virtual-time latency quantiles. *)
      let lat_cfg =
        T.Cfg.make ~nthreads:mt_sim ~duration_ns:2_000_000 ~key_range:256 ~seed:7
          ~smr:S.smr_cfg ~record_latency:true ()
      in
      let r = H_sim.run ~scheme:"nbr" ~structure:"lazy-list" lat_cfg in
      record_latency_entries r;
      (* Retire-heavy tail pair: inline vs background reclaimer
         (deterministic in virtual time). *)
      record_reclaim_tail (fun reclaim ->
          let cfg =
            T.Cfg.make ~nthreads:mt_sim ~duration_ns:3_000_000 ~key_range:128
              ~ins_pct:50 ~del_pct:50 ~seed:7
              ~smr:(Nbr_core.Smr_config.with_threshold S.smr_cfg 64)
              ?reclaim ~record_latency:true ()
          in
          H_sim.run ~scheme:"nbr+" ~structure:"harris-list" cfg)
    end;
    if not alloc_only then record_kv (KV_sim.run ~duration_ns:1_000_000);
    if not alloc_only then
      record_kv_slo
        (KV_sim.run_slo ~duration_ns:1_000_000 ~rate_rps:4_000_000
           ~deadline_ns:100_000);
    write_json ~runtime:"sim" ~mode
      ~path:(Filename.concat out_dir "BENCH_sim.json")
  in

  (match runtime with
  | "native" -> bench_native ()
  | "sim" -> bench_sim ()
  | "both" ->
      bench_native ();
      bench_sim ()
  | r ->
      Printf.printf "error: unknown --runtime %s\n" r;
      exit 2);

  (* --trace-out FILE: one traced deterministic sim trial, exported as
     Chrome trace-event JSON.  Runs after the benchmarks so tracing never
     contaminates the numbers above. *)
  (match value "--trace-out" "" with
  | "" -> ()
  | path ->
      Nbr_obs.Trace.enable ~nthreads:4 ();
      let cfg =
        T.Cfg.make ~nthreads:4 ~duration_ns:500_000 ~key_range:128 ~seed:11
          ~smr:(Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 64)
          ()
      in
      let r = H_sim.run ~scheme:"nbr+" ~structure:"lazy-list" cfg in
      let events = List.length (Nbr_obs.Trace.events ()) in
      let oc = open_out path in
      output_string oc (Nbr_obs.Trace.to_chrome_json ());
      close_out oc;
      Nbr_obs.Trace.disable ();
      Printf.printf
        "wrote %s (%d events, %d dropped; traced trial: %.3f Mops/s)\n%!"
        path events (Nbr_obs.Trace.dropped ()) r.T.throughput_mops)
