(* Command-line interface to the reproduction harness.

   Run single experiments or ad-hoc trials with tunable parameters:

     nbr_bench list
     nbr_bench figure fig3a --quick
     nbr_bench trial --scheme nbr+ --structure dgt-tree --threads 32 \
       --range 65536 --ins 50 --del 50 --duration-ms 2 --cores 16
     nbr_bench trial --runtime native --scheme debra --structure lazy-list \
       --threads 4 --duration-ms 500 *)

open Cmdliner

module Sim = Nbr_runtime.Sim_rt
module Nat = Nbr_runtime.Native_rt
module H_sim = Nbr_workload.Harness.Make (Sim)
module H_nat = Nbr_workload.Harness.Make (Nat)
module T = Nbr_workload.Trial
module E = Nbr_workload.Experiments

(* ---------------- list ---------------- *)

let list_cmd =
  let doc = "List available experiments (one per paper table/figure)." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (id, d, _) -> Printf.printf "%-18s %s\n" id d)
            E.all)
      $ const ())

(* ---------------- figure ---------------- *)

let figure_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (see $(b,list)).")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller, faster profile.")
  in
  let run id quick =
    match List.find_opt (fun (i, _, _) -> i = id) E.all with
    | None ->
        Printf.eprintf "unknown experiment %s (try `nbr_bench list')\n" id;
        exit 2
    | Some (_, descr, f) ->
        Printf.printf "=== %s: %s ===\n%!" id descr;
        f quick;
        if not (E.summary ()) then exit 1
  in
  let doc = "Regenerate one paper figure/table." in
  Cmd.v (Cmd.info "figure" ~doc) Term.(const run $ id_arg $ quick_arg)

(* ---------------- trial ---------------- *)

let trial_cmd =
  let scheme =
    Arg.(
      value
      & opt string "nbr+"
      & info [ "scheme" ] ~docv:"S"
          ~doc:"Reclamation scheme: nbr, nbr+, debra, qsbr, rcu, ibr, hp, \
                none.")
  in
  let structure =
    Arg.(
      value
      & opt string "dgt-tree"
      & info [ "structure" ] ~docv:"D"
          ~doc:"Data structure: lazy-list, dgt-tree, harris-list, ab-tree.")
  in
  let runtime =
    Arg.(
      value
      & opt string "sim"
      & info [ "runtime" ] ~doc:"Execution runtime: sim or native.")
  in
  let threads =
    Arg.(value & opt int 16 & info [ "threads" ] ~doc:"Worker threads.")
  in
  let cores =
    Arg.(value & opt int 16 & info [ "cores" ] ~doc:"Simulated cores (sim).")
  in
  let granularity =
    Arg.(
      value & opt int 1
      & info [ "granularity" ]
          ~doc:"Sim cycles between scheduler yields (1 = every access).")
  in
  let quantum =
    Arg.(
      value & opt int 200_000
      & info [ "quantum" ] ~doc:"Sim time-slice length in cycles.")
  in
  let range =
    Arg.(value & opt int 16384 & info [ "range" ] ~doc:"Key range.")
  in
  let ins = Arg.(value & opt int 25 & info [ "ins" ] ~doc:"Insert %.") in
  let del = Arg.(value & opt int 25 & info [ "del" ] ~doc:"Delete %.") in
  let duration_ms =
    Arg.(
      value & opt int 2
      & info [ "duration-ms" ]
          ~doc:"Trial duration in ms (virtual for sim, wall for native).")
  in
  let threshold =
    Arg.(
      value & opt int 512
      & info [ "bag-threshold" ] ~doc:"Limbo bag HiWatermark.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let stall_ms =
    Arg.(
      value & opt int 0
      & info [ "stall-ms" ]
          ~doc:"Stall thread 1 inside an operation for this long (E2).")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:"Install the standard seeded chaos plan (2 stalls, 1 crash, \
                25% delayed signals), arming the watchdog/recovery layer.")
  in
  let churn =
    Arg.(
      value & opt int 0
      & info [ "churn" ] ~docv:"N"
          ~doc:"Dynamic membership: workers (except thread 0) deregister \
                and rejoin every N completed ops.  0 = static.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Record the full event trace and write it as Chrome \
                trace-event JSON (Perfetto-loadable).")
  in
  let reclaim =
    Arg.(
      value & opt string "none"
      & info [ "reclaim" ] ~docv:"POLICY"
          ~doc:"Background reclaimer policy: none (inline reclamation), \
                pressure (watermark-kicked), periodic:NS (sweep every NS \
                nanoseconds), after:N (sweep every N collected retires).")
  in
  let pressure_chaos =
    Arg.(
      value & flag
      & info [ "pressure-chaos" ]
          ~doc:"Install the memory-pressure adversary (chaos plus \
                allocation hogs and a reclaimer stall + crash-with-restart \
                schedule).  Implies a reclaimer; combines with \
                $(b,--reclaim) to pick its policy (default pressure).")
  in
  let run scheme structure runtime threads cores granularity quantum range
      ins del duration_ms threshold seed stall_ms chaos churn trace_out
      reclaim pressure_chaos =
    let duration_ns = duration_ms * 1_000_000 in
    let reclaim =
      let parse = function
        | "none" -> None
        | "pressure" -> Some Nbr_reclaim.Reclaimer.On_pressure
        | s -> (
            match String.index_opt s ':' with
            | Some i -> (
                let k = String.sub s 0 i
                and v = String.sub s (i + 1) (String.length s - i - 1) in
                match (k, int_of_string_opt v) with
                | "periodic", Some ns when ns > 0 ->
                    Some (Nbr_reclaim.Reclaimer.Periodic { interval_ns = ns })
                | "after", Some n when n > 0 ->
                    Some (Nbr_reclaim.Reclaimer.After_n_retires { n })
                | _ ->
                    Printf.eprintf "bad --reclaim policy %s\n" s;
                    exit 2)
            | None ->
                Printf.eprintf "bad --reclaim policy %s\n" s;
                exit 2)
      in
      match (parse reclaim, pressure_chaos) with
      | None, true -> Some Nbr_reclaim.Reclaimer.On_pressure
      | p, _ -> p
    in
    let stall =
      if stall_ms > 0 then
        Some { T.stall_tid = 1; stall_ns = stall_ms * 1_000_000 }
      else None
    in
    let faults =
      if pressure_chaos then
        Some
          (Nbr_fault.Fault_plan.pressure_chaos ~seed ~nthreads:threads
             ~stalls:1 ~crashes:1 ~hogs:2 ~hog_slots:1024
             ~stall_ns:(duration_ns / 8) ~ops_window:100
             ~reclaimer_stall_ns:(duration_ns / 8)
             ~restart_ns:(duration_ns / 4) ())
      else if chaos then
        Some
          (Nbr_fault.Fault_plan.chaos ~seed ~nthreads:threads ~stalls:2
             ~crashes:1 ~stall_ns:(duration_ns / 2) ~ops_window:100
             ~signal:
               {
                 Nbr_fault.Fault_plan.delay_pct = 25;
                 delay_ns = 20_000;
                 drop_pct = 0;
               }
             ())
      else None
    in
    (match faults with
    | Some p -> Format.printf "%a@." Nbr_fault.Fault_plan.pp p
    | None -> ());
    let trace_threads =
      if reclaim <> None then threads + 1 else threads
    in
    if trace_out <> None then
      Nbr_obs.Trace.enable ~capacity:65536 ~nthreads:trace_threads ();
    let cfg =
      T.Cfg.make ~nthreads:threads ~duration_ns ~key_range:range ~ins_pct:ins
        ~del_pct:del
        ~smr:
          (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
             threshold)
        ~seed ?stall ?faults ~churn_ops:churn ?reclaim ()
    in
    let r =
      match runtime with
      | "sim" ->
          Sim.set_config
            { Sim.default_config with cores; seed; granularity; quantum };
          H_sim.run ~scheme ~structure cfg
      | "native" -> H_nat.run ~scheme ~structure cfg
      | other ->
          Printf.eprintf "unknown runtime %s\n" other;
          exit 2
    in
    (match trace_out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Nbr_obs.Trace.to_chrome_json ());
        close_out oc;
        Printf.printf "trace: %d events -> %s (%d dropped)\n"
          (List.length (Nbr_obs.Trace.events ()))
          file
          (Nbr_obs.Trace.dropped ());
        Nbr_obs.Trace.clear ());
    Format.printf "%a@." T.pp_row r;
    Format.printf
      "ops=%d freed=%d retired=%d reclaim_events=%d lo_reclaims=%d \
       final_in_use=%d uaf=%d size=%d/%d valid=%b@."
      r.T.total_ops (Nbr_core.Smr_stats.freed r.T.smr_stats) (Nbr_core.Smr_stats.retires r.T.smr_stats)
      (Nbr_core.Smr_stats.reclaim_events r.T.smr_stats) (Nbr_core.Smr_stats.lo_reclaims r.T.smr_stats) r.T.final_in_use
      r.T.uaf_reads r.T.final_size r.T.expected_size (T.valid r);
    if not (T.valid r) then exit 1
  in
  let doc = "Run one ad-hoc trial with explicit parameters." in
  Cmd.v (Cmd.info "trial" ~doc)
    Term.(
      const run $ scheme $ structure $ runtime $ threads $ cores
      $ granularity $ quantum $ range $ ins $ del $ duration_ms $ threshold
      $ seed $ stall_ms $ chaos $ churn $ trace_out $ reclaim
      $ pressure_chaos)

(* ---------------- main ---------------- *)

let () =
  let doc = "NBR (PPoPP'21) reproduction benchmarks" in
  let info = Cmd.info "nbr_bench" ~version:"1.0.0" ~doc in
  (* [~catch:false] so pool exhaustion reaches us instead of cmdliner's
     generic backtrace: it is an expected outcome of undersized trials
     (or of running the leaky scheme long enough), not a crash. *)
  match Cmd.eval ~catch:false (Cmd.group info [ list_cmd; figure_cmd; trial_cmd ]) with
  | code -> exit code
  | exception Nbr_pool.Pool.Exhausted x ->
      Format.eprintf
        "nbr_bench: %a@.hint: raise the trial's pool capacity, shorten its \
         duration, or pick a reclaiming scheme (this is the expected failure \
         mode of scheme=none).@."
        Nbr_pool.Pool.pp_exhausted x;
      exit 1
  | exception Invalid_argument msg ->
      (* e.g. an unknown scheme/structure name reaching the harness *)
      Format.eprintf "nbr_bench: %s@." msg;
      exit 2
