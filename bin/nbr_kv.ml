(* KV serving-layer driver: sweep reclamation schemes under
   production-shaped traffic and print a per-scheme latency table.

     nbr_kv --schemes all --threads 64 --shards 8 --keys 1048576 \
       --mix read-heavy --shape flash --rate 400000 --duration-ms 2
     nbr_kv --scheme nbr+ --pressure-chaos --reclaim pressure \
       --trace-out kv_trace.json

   Exit status 1 when any run fails validation (set semantics, zero
   committed UAF) or a bounded-garbage scheme exceeds its bound. *)

open Cmdliner
module Sim = Nbr.Runtime.Sim
module Traffic = Nbr.Workload.Traffic

module Run (Rt : Nbr.Runtime.S) = struct
  module K = Nbr.Kv.Service.Make (Rt)

  let one ~scheme ~structure ~nshards ~nthreads ~keyspace ~shard_capacity
      ~threshold ~reclaim ~faults ~guard ~churn ~traffic ~duration_ns ~batch
      ~prefill ~seed =
    let reclaimer_faults =
      match faults with
      | None -> []
      | Some p -> Nbr.Fault.reclaimer_faults p
    in
    let store =
      K.St.create
        (K.St.Cfg.make ~structure ~nshards ~keyspace ?shard_capacity
           ~smr:(Nbr.Scheme.Config.with_threshold Nbr.Scheme.Config.default
                   threshold)
           ?reclaim ~reclaimer_faults ~scheme ~nthreads ())
    in
    K.run store
      (K.Cfg.make ~duration_ns ~batch ~seed ~prefill ?faults ?guard
         ~churn_ops:churn ~traffic ())
end

module Run_sim = Run (Nbr.Runtime.Sim)
module Run_nat = Run (Nbr.Runtime.Native)

module Svc = Nbr.Kv.Service

let us ns = ns /. 1e3

let pp_text_row ppf (r : Svc.report) =
  let g = r.Svc.rep_latency.Svc.l_get and p = r.Svc.rep_latency.Svc.l_put in
  let slo = r.Svc.rep_slo in
  Format.fprintf ppf
    "%-12s %9.1f  %7.1f %8.1f %9.1f  %7.1f %8.1f %9.1f  %3d/%-3d  %5.1f \
     %6d %6d  %s%s%s@."
    r.Svc.rep_scheme r.Svc.rep_throughput_kops
    (us g.Nbr.Obs.Histogram.s_p50)
    (us g.s_p99) (us g.s_p999)
    (us p.Nbr.Obs.Histogram.s_p50)
    (us p.s_p99) (us p.s_p999)
    r.Svc.rep_stats.Nbr.Kv.Store.st_degrades
    r.Svc.rep_stats.Nbr.Kv.Store.st_restores
    (Nbr.Kv.Guard.goodput_pct slo)
    slo.Nbr.Kv.Guard.slo_shed slo.Nbr.Kv.Guard.slo_timed_out
    (if Svc.valid r then "ok" else "INVALID")
    (if Svc.bounded_ok r then "" else " GARBAGE-UNBOUNDED")
    (if Svc.slo_ok r then "" else " LEDGER-BROKEN")

let pp_md_row ppf (r : Svc.report) =
  let g = r.Svc.rep_latency.Svc.l_get and p = r.Svc.rep_latency.Svc.l_put in
  let slo = r.Svc.rep_slo in
  Format.fprintf ppf
    "| %s | %s | %.1f | %.1f | %.1f | %.1f | %.1f | %.1f | %.1f | %d/%d | \
     %.1f | %d | %d | %d | %s |@."
    r.Svc.rep_scheme r.Svc.rep_structure r.Svc.rep_throughput_kops
    (us g.Nbr.Obs.Histogram.s_p50)
    (us g.s_p99) (us g.s_p999)
    (us p.Nbr.Obs.Histogram.s_p50)
    (us p.s_p99) (us p.s_p999)
    r.Svc.rep_stats.Nbr.Kv.Store.st_degrades
    r.Svc.rep_stats.Nbr.Kv.Store.st_restores
    (Nbr.Kv.Guard.goodput_pct slo)
    slo.Nbr.Kv.Guard.slo_shed slo.Nbr.Kv.Guard.slo_timed_out
    slo.Nbr.Kv.Guard.slo_retries
    (if not (Svc.slo_ok r) then "LEDGER-BROKEN"
     else if Svc.valid r then
       if Svc.bounded_ok r then "ok" else "ok, unbounded"
     else "INVALID")

let () =
  let schemes =
    Arg.(
      value
      & opt string "nbr+"
      & info [ "schemes"; "scheme" ] ~docv:"S"
          ~doc:
            "Comma-separated scheme names, or $(b,sound) (the nine safe \
             schemes) or $(b,all) (including the unsafe-free foil).")
  in
  let structure =
    Arg.(
      value
      & opt string "hash-set"
      & info [ "structure" ]
          ~doc:
            "Per-shard structure: hash-set or ab-tree.  Schemes that \
             cannot run hash-set safely (hp, he, ibr) are swept on \
             ab-tree automatically.")
  in
  let runtime =
    Arg.(
      value & opt string "sim"
      & info [ "runtime" ] ~doc:"Execution runtime: sim or native.")
  in
  let shards =
    Arg.(value & opt int 8 & info [ "shards" ] ~doc:"Shard count.")
  in
  let threads =
    Arg.(value & opt int 16 & info [ "threads" ] ~doc:"Worker threads.")
  in
  let cores =
    Arg.(value & opt int 16 & info [ "cores" ] ~doc:"Simulated cores (sim).")
  in
  let granularity =
    Arg.(
      value & opt int 400
      & info [ "granularity" ]
          ~doc:"Sim cycles between scheduler yields.")
  in
  let quantum =
    Arg.(
      value & opt int 300_000
      & info [ "quantum" ] ~doc:"Sim time-slice length in cycles.")
  in
  let keys =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "keys" ] ~doc:"Keyspace size (Zipf support).")
  in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~doc:"Zipfian skew in [0,1).")
  in
  let mix =
    Arg.(
      value & opt string "read-heavy"
      & info [ "mix" ] ~doc:"read-heavy, write-heavy, or scan-heavy.")
  in
  let shape =
    Arg.(
      value & opt string "steady"
      & info [ "shape" ]
          ~doc:
            "Arrival shape: steady, flash (crowd at 40% for 20% of the \
             run), or diurnal (2 cycles, 20% floor).")
  in
  let flash_mult =
    Arg.(
      value & opt int 8
      & info [ "flash-mult" ] ~doc:"Flash-crowd load multiplier.")
  in
  let rate =
    Arg.(
      value & opt int 0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Per-worker open-loop arrival rate (requests/s; virtual \
             time under sim).  0 = closed loop (back-to-back batches, \
             no queueing model).")
  in
  let batch =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~doc:"Max admissions per pipeline turn.")
  in
  let duration_ms =
    Arg.(
      value & opt int 2
      & info [ "duration-ms" ]
          ~doc:"Run duration in ms (virtual for sim, wall for native).")
  in
  let prefill =
    Arg.(
      value & opt int 20_000
      & info [ "prefill" ] ~doc:"Uniform-random put attempts before the clock.")
  in
  let shard_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-capacity" ] ~doc:"Pool slots per shard.")
  in
  let threshold =
    Arg.(
      value & opt int 512
      & info [ "bag-threshold" ] ~doc:"Limbo bag HiWatermark.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let reclaim =
    Arg.(
      value & opt string "none"
      & info [ "reclaim" ] ~docv:"POLICY"
          ~doc:
            "Per-shard background reclaimer policy: none, pressure, \
             periodic:NS, after:N.")
  in
  let pressure_chaos =
    Arg.(
      value & flag
      & info [ "pressure-chaos" ]
          ~doc:
            "Install the memory-pressure adversary (stalls, a crash, \
             allocation hogs, and a reclaimer stall + crash-with-restart \
             schedule on every shard's reclaimer).  Implies a reclaimer \
             (default policy pressure).")
  in
  let guard =
    Arg.(
      value & flag
      & info [ "guard" ]
          ~doc:
            "Enable service-level overload protection: per-request \
             deadlines, bounded-inflight admission control, budgeted \
             retries, and per-shard circuit breakers with a brownout \
             ladder.")
  in
  let deadline_us =
    Arg.(
      value & opt int 200
      & info [ "deadline-us" ]
          ~doc:"Per-request deadline from arrival, in µs (with --guard).")
  in
  let inflight =
    Arg.(
      value & opt int 64
      & info [ "inflight" ]
          ~doc:
            "Per-shard admitted-but-incomplete budget (with --guard); \
             newest arrivals beyond it are shed.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ]
          ~doc:
            "Max extra attempts per request on pool exhaustion (with \
             --guard), behind a global retry budget.")
  in
  let shard_pressure =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-pressure" ] ~docv:"SHARD"
          ~doc:
            "Install the shard-targeted pressure adversary: staggered \
             allocation hogs pin ~3/4 of SHARD's pool, driving its \
             breaker through brownout, open, half-open and reclose.  \
             Implies --guard and a pressure reclaimer.")
  in
  let churn =
    Arg.(
      value & opt int 0
      & info [ "churn" ] ~docv:"N"
          ~doc:
            "Workers (except thread 0) deregister from every shard and \
             rejoin every N completed requests.  0 = static.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the event trace as Chrome trace-event JSON.")
  in
  let md =
    Arg.(
      value & flag
      & info [ "md" ] ~doc:"Emit the result table as Markdown rows.")
  in
  let run schemes structure runtime shards threads cores granularity quantum
      keys theta mix shape flash_mult rate batch duration_ms prefill
      shard_capacity threshold seed reclaim pressure_chaos guard deadline_us
      inflight retries shard_pressure churn trace_out md =
    let duration_ns = duration_ms * 1_000_000 in
    let scheme_list =
      match schemes with
      | "all" -> Nbr.Workload.Registry.all_scheme_names
      | "sound" -> Nbr.Workload.Registry.scheme_names
      | s -> String.split_on_char ',' s |> List.map String.trim
    in
    List.iter
      (fun s ->
        if Nbr.Workload.Registry.find s = None then begin
          Printf.eprintf "unknown scheme %s\n" s;
          exit 2
        end)
      scheme_list;
    let mx =
      match Traffic.mix_of_name mix with
      | Some m -> m
      | None ->
          Printf.eprintf "unknown mix %s\n" mix;
          exit 2
    in
    let shape =
      match shape with
      | "steady" -> Traffic.Steady
      | "flash" ->
          Traffic.Flash_crowd
            { fc_at_pct = 40; fc_len_pct = 20; fc_mult = flash_mult }
      | "diurnal" -> Traffic.Diurnal { d_cycles = 2; d_floor_pct = 20 }
      | s ->
          Printf.eprintf "unknown shape %s\n" s;
          exit 2
    in
    let reclaim =
      let parse = function
        | "none" -> None
        | "pressure" -> Some Nbr.Reclaim.On_pressure
        | s -> (
            match String.index_opt s ':' with
            | Some i -> (
                let k = String.sub s 0 i
                and v = String.sub s (i + 1) (String.length s - i - 1) in
                match (k, int_of_string_opt v) with
                | "periodic", Some ns when ns > 0 ->
                    Some (Nbr.Reclaim.Periodic { interval_ns = ns })
                | "after", Some n when n > 0 ->
                    Some (Nbr.Reclaim.After_n_retires { n })
                | _ ->
                    Printf.eprintf "bad --reclaim policy %s\n" s;
                    exit 2)
            | None ->
                Printf.eprintf "bad --reclaim policy %s\n" s;
                exit 2)
      in
      match (parse reclaim, pressure_chaos || shard_pressure <> None) with
      | None, true -> Some Nbr.Reclaim.On_pressure
      | p, _ -> p
    in
    let faults =
      match shard_pressure with
      | Some sh ->
          (* Hogs sized off the effective shard capacity so the target
             shard's occupancy crosses the guard's unhealthy backstop
             regardless of --shard-capacity / --keys choices. *)
          let eff_cap =
            match shard_capacity with
            | Some c -> c
            | None -> min 262_144 (max 8192 (keys / (2 * shards)))
          in
          Some
            (Nbr.Fault.shard_pressure ~seed ~nthreads:threads ~shard:sh
               ~hogs:3
               ~hog_slots:(eff_cap / 4)
               ~hold_ns:(duration_ns / 4) ())
      | None ->
          if pressure_chaos then
            Some
              (Nbr.Fault.pressure_chaos ~seed ~nthreads:threads ~stalls:1
                 ~crashes:1 ~hogs:2 ~hog_slots:1024
                 ~stall_ns:(duration_ns / 8) ~ops_window:200
                 ~reclaimer_stall_ns:(duration_ns / 8)
                 ~restart_ns:(duration_ns / 4) ())
          else None
    in
    let guard =
      if guard || shard_pressure <> None then
        Some
          (Nbr.Kv.Guard.Cfg.make ~deadline_ns:(deadline_us * 1_000)
             ~inflight ~max_retries:retries ())
      else None
    in
    let traffic =
      Traffic.make ~theta ~mx ~shape ~rate_rps:rate ~keyspace:keys ()
    in
    if trace_out <> None then
      Nbr.Obs.Trace.enable ~capacity:262_144
        ~nthreads:(threads + if reclaim <> None then shards else 0)
        ();
    if md then
      Format.printf
        "| scheme | structure | kreq/s | get p50 | get p99 | get p99.9 | \
         put p50 | put p99 | put p99.9 | degr/rest | goodput%% | shed | \
         t/o | retries | verdict \
         |@.|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|@."
    else
      Format.printf
        "%-12s %9s  %7s %8s %9s  %7s %8s %9s  %7s  %5s %6s %6s@.%-12s %9s  \
         %7s %8s %9s %8s %8s %9s@."
        "scheme" "kreq/s" "get p50" "p99" "p99.9" "put p50" "p99" "p99.9"
        "deg/res" "good%" "shed" "t/o" "" "" "(µs)" "" "" "(µs)" "" "";
    let failed = ref false and exhausted = ref false in
    List.iter
      (fun scheme ->
        (* P5-unsafe pairings sweep on ab-tree instead. *)
        let structure =
          if Nbr.Workload.Registry.supported ~scheme ~structure then
            structure
          else "ab-tree"
        in
        match
          match runtime with
          | "sim" ->
              Sim.set_config
                { Sim.default_config with cores; seed; granularity; quantum };
              Run_sim.one ~scheme ~structure ~nshards:shards
                ~nthreads:threads ~keyspace:keys ~shard_capacity ~threshold
                ~reclaim ~faults ~guard ~churn ~traffic ~duration_ns ~batch
                ~prefill ~seed
          | "native" ->
              Run_nat.one ~scheme ~structure ~nshards:shards
                ~nthreads:threads ~keyspace:keys ~shard_capacity ~threshold
                ~reclaim ~faults ~guard ~churn ~traffic ~duration_ns ~batch
                ~prefill ~seed
          | other ->
              Printf.eprintf "unknown runtime %s\n" other;
              exit 2
        with
        | r ->
            if md then Format.printf "%a" pp_md_row r
            else Format.printf "%a" pp_text_row r;
            if not (Svc.valid r) then failed := true;
            if not (Svc.bounded_ok r) then failed := true;
            if not (Svc.slo_ok r) then failed := true
        | exception Nbr.Pool.Exhausted x ->
            (* One scheme running its pool dry is a result, not a reason
               to abandon the rest of the sweep. *)
            if md then
              Format.printf "| %s | %s | exhausted | | | | | | | | | | | | \
                             FAILED |@."
                scheme structure
            else
              Format.printf "%-12s  exhausted (%a)@." scheme
                Nbr.Pool.pp_exhausted x;
            failed := true;
            exhausted := true)
      scheme_list;
    if !exhausted then
      Format.eprintf
        "hint: raise --shard-capacity, shorten the run, pick a reclaiming \
         scheme, or enable --guard to shed instead of dying.@.";
    (match trace_out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Nbr.Obs.Trace.to_chrome_json ());
        close_out oc;
        Printf.printf "trace: %d events -> %s (%d dropped)\n"
          (List.length (Nbr.Obs.Trace.events ()))
          file
          (Nbr.Obs.Trace.dropped ());
        Nbr.Obs.Trace.clear ());
    if !failed then exit 1
  in
  let doc = "NBR reproduction: sharded KV serving layer" in
  let info = Cmd.info "nbr_kv" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ schemes $ structure $ runtime $ shards $ threads $ cores
      $ granularity $ quantum $ keys $ theta $ mix $ shape $ flash_mult
      $ rate $ batch $ duration_ms $ prefill $ shard_capacity $ threshold
      $ seed $ reclaim $ pressure_chaos $ guard $ deadline_us $ inflight
      $ retries $ shard_pressure $ churn $ trace_out $ md)
  in
  match Cmd.eval ~catch:false (Cmd.v info term) with
  | code -> exit code
  | exception Nbr.Pool.Exhausted x ->
      (* Backstop only: the sweep catches per-cell and keeps going. *)
      Format.eprintf "nbr_kv: %a@." Nbr.Pool.pp_exhausted x;
      exit 1
  | exception Invalid_argument msg ->
      Format.eprintf "nbr_kv: %s@." msg;
      exit 2
