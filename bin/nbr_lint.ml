(* Static analysis driver for the NBR codebase (DESIGN.md §11, §16).

   A thin shell over [Nbr_analysis.Driver]: the concurrency-idiom rules
   (atomic-make, domain-dls, obj-magic, pool-raw-index, missing-mli)
   plus the R1–R4 phase-discipline dataflow rules (read-phase-write,
   unguarded-deref, phase-bracket, write-phase-read) over CFGs and
   per-callee effect summaries.

   Usage: nbr_lint [--github] [--allowlist FILE] [--sarif FILE] DIR...
   Exit status 1 iff any finding is not allowlisted or waived. *)

let () = exit (Nbr_analysis.Driver.main ())
