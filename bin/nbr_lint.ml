(* Concurrency-idiom lint for the NBR codebase (DESIGN.md §11).

   A compiler-libs AST walk over the library sources enforcing the
   idioms the hot paths depend on:

   - [atomic-make]   lib/core and lib/ds must not call [Atomic.make]
                     directly: shared cells go through the runtime
                     ([Rt.make] / [Rt.make_padded]) or [Padded], so the
                     simulator can cost them and contended cells get
                     cache-line isolation.
   - [domain-dls]    [Domain.DLS] is a runtime-layer concern (thread
                     identity); outside lib/runtime it reintroduces the
                     per-dereference lookup PR 2 removed.
   - [obj-magic]     no [Obj.magic] anywhere in lib/.
   - [pool-raw-index] outside lib/pool, no raw cell addressing
                     ([data_cell] / [ptr_cell]): those accessors bypass
                     generation validation, so a stale handle reads the
                     recycled occupant's memory with no detection.  The
                     scheme layer (which implements the validated
                     accessors on top of the cells) and the tagged-link
                     structure are grandfathered in the allowlist.
   - [missing-mli]   every library module carries an interface, or is
                     explicitly grandfathered in the allowlist.

   Usage: nbr_lint [--github] [--allowlist FILE] DIR...
   Exit status 1 iff any finding is not allowlisted.  [--github] emits
   GitHub Actions annotations so findings surface on the PR diff. *)

let github = ref false
let allowlist_file = ref ""
let roots = ref []

(* Allowlist: "rule:path" lines, '#' comments.  Paths are compared after
   normalizing "./" prefixes. *)
let allowlist : (string * string, unit) Hashtbl.t = Hashtbl.create 64

let normalize p =
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let load_allowlist file =
  let ic = open_in file in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line ':' with
         | Some i ->
             let rule = String.sub line 0 i in
             let path =
               normalize
                 (String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)))
             in
             Hashtbl.replace allowlist (rule, path) ()
         | None ->
             Printf.eprintf "nbr_lint: bad allowlist line: %s\n" line;
             exit 2
     done
   with End_of_file -> ());
  close_in ic

let allowed ~rule ~file = Hashtbl.mem allowlist (rule, normalize file)

let errors = ref 0

let report ~rule ~file ~line msg =
  if not (allowed ~rule ~file) then begin
    incr errors;
    if !github then
      Printf.printf "::error file=%s,line=%d::[%s] %s\n" file line rule msg
    else Printf.printf "%s:%d: [%s] %s\n" file line rule msg
  end

(* ------------------------------------------------------------------ *)
(* Identifier rules, as one AST walk per file.                         *)

let path_has_prefix ~prefix file =
  let file = normalize file in
  let n = String.length prefix in
  String.length file >= n && String.sub file 0 n = prefix

let in_core_or_ds file =
  path_has_prefix ~prefix:"lib/core/" file
  || path_has_prefix ~prefix:"lib/ds/" file

let in_runtime file = path_has_prefix ~prefix:"lib/runtime/" file

let check_ident ~file (lid : Longident.t Location.loc) =
  let line = lid.Location.loc.Location.loc_start.Lexing.pos_lnum in
  match Longident.flatten lid.Location.txt with
  | "Obj" :: "magic" :: _ ->
      report ~rule:"obj-magic" ~file ~line
        "Obj.magic defeats the type system; find another way"
  | "Atomic" :: "make" :: _ when in_core_or_ds file ->
      report ~rule:"atomic-make" ~file ~line
        "bare Atomic.make in scheme/structure code: shared cells must go \
         through Rt.make / Rt.make_padded (or Nbr_sync.Padded) so the \
         simulator costs them and hot cells get cache-line isolation"
  | "Domain" :: "DLS" :: _ when not (in_runtime file) ->
      report ~rule:"domain-dls" ~file ~line
        "Domain.DLS outside lib/runtime: thread identity is a runtime \
         concern (use the tid-threaded _t interfaces)"
  | l
    when (match List.rev l with
         | ("data_cell" | "ptr_cell") :: _ -> true
         | _ -> false)
         && not (path_has_prefix ~prefix:"lib/pool/" file) ->
      report ~rule:"pool-raw-index" ~file ~line
        "raw cell addressing bypasses generation validation: go through \
         the scheme's validated accessors (read_data / read_ptr / \
         peek_ptr), or grandfather a deliberate use in the allowlist"
  | _ -> ()

let make_iterator file =
  let open Ast_iterator in
  let expr it e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident lid -> check_ident ~file lid
    | _ -> ());
    default_iterator.expr it e
  in
  let module_expr it m =
    (match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_ident lid -> check_ident ~file lid
    | _ -> ());
    default_iterator.module_expr it m
  in
  let open_description it (o : Parsetree.open_description) =
    check_ident ~file o.Parsetree.popen_expr;
    default_iterator.open_description it o
  in
  { default_iterator with expr; module_expr; open_description }

let lint_file file =
  let ic = open_in file in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let lexbuf = Lexing.from_channel ic in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast ->
      let it = make_iterator file in
      it.Ast_iterator.structure it ast
  | exception exn ->
      report ~rule:"parse" ~file ~line:1
        (Printf.sprintf "failed to parse: %s" (Printexc.to_string exn))

let check_mli file =
  if path_has_prefix ~prefix:"lib/" file && not (Sys.file_exists (file ^ "i"))
  then
    report ~rule:"missing-mli" ~file ~line:1
      "library module without an interface (add a .mli, or grandfather it \
       in the allowlist)"

(* ------------------------------------------------------------------ *)

let rec walk dir f =
  Array.iter
    (fun entry ->
      let p = Filename.concat dir entry in
      if Sys.is_directory p then walk p f
      else if Filename.check_suffix entry ".ml" then f p)
    (let a = Sys.readdir dir in
     Array.sort compare a;
     a)

let () =
  Arg.parse
    [
      ("--github", Arg.Set github, " emit GitHub Actions error annotations");
      ( "--allowlist",
        Arg.Set_string allowlist_file,
        "FILE rule:path exemptions, one per line" );
    ]
    (fun d -> roots := d :: !roots)
    "nbr_lint [--github] [--allowlist FILE] DIR...";
  if !allowlist_file <> "" then load_allowlist !allowlist_file;
  let roots = if !roots = [] then [ "lib" ] else List.rev !roots in
  List.iter
    (fun root ->
      if not (Sys.file_exists root && Sys.is_directory root) then begin
        Printf.eprintf "nbr_lint: no such directory: %s\n" root;
        exit 2
      end;
      walk root (fun file ->
          lint_file file;
          check_mli file))
    roots;
  if !errors > 0 then begin
    Printf.printf "nbr_lint: %d finding(s)\n" !errors;
    exit 1
  end
  else print_endline "nbr_lint: clean"
