(* Development smoke test: every scheme × structure pair on the simulator,
   plus NBR+ on the native runtime, with set-semantics validation. *)

module Sim = Nbr.Runtime.Sim
module Nat = Nbr.Runtime.Native
module H_sim = Nbr.Workload.Harness.Make (Sim)
module H_nat = Nbr.Workload.Harness.Make (Nat)

let check r =
  let ok = Nbr.Workload.Trial.valid r in
  Format.printf "%a%s@." Nbr.Workload.Trial.pp_row r
    (if ok then "" else "  <-- FAILED");
  ok

let () =
  Sim.set_config { Sim.default_config with cores = 4 };
  let ok = ref true in
  let cfg =
    Nbr.Workload.Trial.Cfg.make ~nthreads:6 ~duration_ns:1_500_000 ~key_range:256
      ~smr:(Nbr.Scheme.Config.with_threshold Nbr.Scheme.Config.default 64)
      ()
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun structure ->
          if H_sim.supported ~scheme ~structure then
            ok := check (H_sim.run ~scheme ~structure cfg) && !ok)
        H_sim.structure_names)
    H_sim.scheme_names;
  (* Native spot-checks. *)
  let ncfg = Nbr.Workload.Trial.Cfg.make ~nthreads:4 ~duration_ns:300_000_000 () in
  List.iter
    (fun (s, d) -> ok := check (H_nat.run ~scheme:s ~structure:d ncfg) && !ok)
    [
      ("nbr+", "lazy-list");
      ("nbr+", "dgt-tree");
      ("nbr", "harris-list");
      ("debra", "ab-tree");
      ("hp", "dgt-tree");
    ];
  if !ok then print_endline "smoke OK" else (print_endline "smoke FAILED"; exit 1)
