(* The headline property, live: bounded garbage under a stalled thread.

   Run with:  dune exec examples/bounded_memory.exe

   Experiment E2 of the paper in miniature.  A worker falls asleep in the
   middle of an operation while the rest keep updating a DGT tree.  Under
   DEBRA (epoch-based) the sleeper pins the epoch and unreclaimed memory
   grows with every update; under NBR+ the sleeper is simply neutralized
   when it wakes, and memory stays flat.  Runs on the simulated multicore
   so the stall costs no wall-clock time. *)

module Sim = Nbr.Runtime.Sim
module H = Nbr.Workload.Harness.Make (Sim)
module T = Nbr.Workload.Trial

let measure scheme =
  Sim.set_config { Sim.default_config with cores = 8; seed = 42 };
  let duration_ns = 4_000_000 in
  let cfg =
    T.Cfg.make ~nthreads:8 ~duration_ns ~key_range:4096 ~ins_pct:50 ~del_pct:50
      ~smr:(Nbr.Scheme.Config.with_threshold Nbr.Scheme.Config.default 256)
      ~seed:42
      ~stall:{ T.stall_tid = 1; stall_ns = duration_ns }
      ()
  in
  let r = H.run ~scheme ~structure:"dgt-tree" cfg in
  assert (T.valid r);
  r

let () =
  print_endline
    "One of 8 threads sleeps inside an operation for the whole run;\n\
     the others keep doing 50% inserts / 50% deletes on a DGT tree.\n";
  Printf.printf "%-8s %22s %14s\n" "scheme" "peak unreclaimed recs"
    "throughput";
  let rows =
    List.map (fun s -> (s, measure s)) [ "nbr+"; "nbr"; "ibr"; "hp"; "debra"; "rcu" ]
  in
  List.iter
    (fun (s, r) ->
      Printf.printf "%-8s %22d %11.2f Mops\n" s r.T.peak_unreclaimed
        r.T.throughput_mops)
    rows;
  let peak s = (List.assoc s rows).T.peak_unreclaimed in
  Printf.printf
    "\nDEBRA pinned %dx more garbage than NBR+; NBR+ stayed bounded.\n"
    (peak "debra" / max 1 (peak "nbr+"))
