(* k-NBR in action: multi-phase operations on the Harris list.

   Run with:  dune exec examples/knbr_phases.exe

   The paper's §5.2: structures whose searches perform auxiliary updates
   (Harris's lock-free list unlinks marked nodes while traversing) cannot
   be a single read/write phase.  k-NBR splits each operation into a
   sequence of phases — every auxiliary unlink is its own write phase,
   and each new read phase restarts from the head.  This example runs a
   delete-heavy workload that maximizes marked-node traffic and shows the
   phase machinery working: restarts from neutralization, auxiliary
   unlinks, and full reclamation, on a structure hazard pointers cannot
   handle at all. *)

module Sim = Nbr.Runtime.Sim
module Pool = Nbr.Pool.Make (Sim)
module Smr = Nbr.Scheme.Nbr_plus.Make (Sim)
module HL = Nbr.Ds.Harris_list.Make (Sim) (Smr)

let nthreads = 8

let () =
  Sim.set_config { Sim.default_config with cores = 4; seed = 31 };
  let pool =
    Pool.create ~capacity:500_000 ~data_fields:HL.data_fields
      ~ptr_fields:HL.ptr_fields ~nthreads ()
  in
  let smr =
    Smr.create pool ~nthreads
      (Nbr.Scheme.Config.with_threshold Nbr.Scheme.Config.default 128)
  in
  let l = HL.create pool in
  let ctxs = Array.init nthreads (fun tid -> Smr.register smr ~tid) in
  for k = 0 to 255 do
    ignore (HL.insert l ctxs.(0) k)
  done;
  let ins = Array.make nthreads 0 and del = Array.make nthreads 0 in
  Sim.run ~nthreads (fun tid ->
      let ctx = ctxs.(tid) in
      let rng = Nbr.Rng.for_thread ~seed:31 ~tid in
      for _ = 1 to 3_000 do
        let k = Nbr.Rng.below rng 256 in
        (* Delete-heavy: marked nodes everywhere, constant helping. *)
        if Nbr.Rng.below rng 3 = 0 then begin
          if HL.insert l ctx k then ins.(tid) <- ins.(tid) + 1
        end
        else if HL.delete l ctx k then del.(tid) <- del.(tid) + 1
      done);
  let total a = Array.fold_left ( + ) 0 a in
  let st = Smr.stats smr in
  let ps = Pool.stats pool in
  Printf.printf
    "harris list, %d threads, delete-heavy:\n\
    \  %d inserts, %d deletes, final size %d (consistent: %b)\n\
    \  %d retires -> %d freed; %d neutralization restarts; %d signals\n\
    \  peak unreclaimed %d records; use-after-free reads: %d\n"
    nthreads (total ins) (total del) (HL.size l)
    (HL.size l = 256 + total ins - total del)
    (Nbr.Scheme.Stats.retires st) (Nbr.Scheme.Stats.freed st) (Nbr.Scheme.Stats.restarts st) (Sim.signals_sent ())
    ps.Pool.s_peak_in_use ps.Pool.s_uaf_reads;
  assert (HL.size l = 256 + total ins - total del);
  assert (ps.Pool.s_uaf_reads = 0)
