(* Serve a sharded key-value store through Nbr.Kv — the supported entry
   point for using this library as a serving layer rather than a bare
   data structure.

   Run with:  dune exec examples/kv_service.exe

   The store is 4 hash-set shards over NBR+ reclamation; traffic is
   open-loop read-heavy Zipfian with a flash crowd in the middle of the
   run (offered load jumps 8x for 20% of the trial).  Because workers
   admit requests from a virtual arrival clock, the queueing delay the
   crowd causes lands in the recorded latency — watch the gap between
   p50 and p99.9.  Each shard also gets a background reclaimer kicked by
   its pool's high watermark, so retire processing stays off the request
   path. *)

module Sim = Nbr.Runtime.Sim
module K = Nbr.Kv.Service.Make (Sim)
module Traffic = Nbr.Workload.Traffic

let () =
  Sim.set_config { Sim.default_config with cores = 16; seed = 42 };
  let keyspace = 1 lsl 20 in
  let store =
    K.St.create
      (K.St.Cfg.make ~nshards:4 ~keyspace ~scheme:"nbr+" ~nthreads:16
         ~reclaim:Nbr.Reclaim.On_pressure ())
  in
  let traffic =
    Traffic.make ~theta:0.99 ~mx:Traffic.read_heavy
      ~shape:(Traffic.Flash_crowd { fc_at_pct = 40; fc_len_pct = 20; fc_mult = 8 })
      ~rate_rps:1_000_000 ~keyspace ()
  in
  let report =
    K.run store
      (K.Cfg.make ~duration_ns:2_000_000 ~seed:42 ~prefill:20_000 ~traffic ())
  in
  Format.printf "%a@." Nbr.Kv.Service.pp_report report;
  if not (Nbr.Kv.Service.valid report) then begin
    print_endline "validation FAILED";
    exit 1
  end;
  Printf.printf
    "\n16 workers on 16 simulated cores; %d requests at %.0fk req/s.\n\
     The flash crowd shows up as the p50 -> p99.9 spread: queueing\n\
     delay while the offered load exceeds the service rate.\n"
    report.Nbr.Kv.Service.rep_requests
    report.Nbr.Kv.Service.rep_throughput_kops
