(* Quickstart: a concurrent set with NBR+ reclamation in ~40 lines.

   Run with:  dune exec examples/quickstart.exe

   The recipe, bottom to top:
   1. pick a runtime       (here: real OCaml domains),
   2. create a record pool (the manual-memory arena records live in),
   3. create a reclamation scheme over that pool (NBR+),
   4. create a data structure (lazy list) and per-thread contexts,
   5. hammer it from several domains.

   The native runtime's signal delivery is polling-based, so a reader can
   touch a just-freed slot between its last poll and the delivery that
   restarts it.  Those reads are counted by the pool but never committed —
   the reader is neutralized before it can act on them (DESIGN.md §3).
   Under the simulator (instantaneous delivery) the count is exactly zero;
   see test/ for that assertion.  Because the window is timing-dependent,
   a single native run may or may not report such reads; rather than
   flake, this example retries with a fresh arena until a run closes the
   window, and hard-fails only on what must never happen: a set-semantics
   violation, or the benign window showing up in every single run. *)

module Rt = Nbr.Runtime.Native
module Pool = Nbr.Pool.Make (Rt)
module Smr = Nbr.Scheme.Nbr_plus.Make (Rt)
module List_set = Nbr.Ds.Lazy_list.Make (Rt) (Smr)

let nthreads = 4
let attempts = 12

(* One complete run over a fresh arena: build, prefill, hammer, check.
   Returns the pool stats for the caller to inspect the poll window. *)
let one_run ~seed =
  (* A pool shaped for lazy-list nodes: key + marked flag, one link. *)
  let pool =
    Pool.create ~capacity:1_000_000 ~data_fields:List_set.data_fields
      ~ptr_fields:List_set.ptr_fields ~nthreads ()
  in
  let smr = Smr.create pool ~nthreads Nbr.Scheme.Config.default in
  let set = List_set.create pool in
  let ctxs = Array.init nthreads (fun tid -> Smr.register smr ~tid) in

  (* Prefill from the main thread (tid 0's context). *)
  let prefill = ref 0 in
  for k = 0 to 511 do
    if k mod 2 = 0 && List_set.insert set ctxs.(0) k then incr prefill
  done;

  let hits = Atomic.make 0
  and inserts = Atomic.make 0
  and deletes = Atomic.make 0 in
  Rt.run ~nthreads (fun tid ->
      let ctx = ctxs.(tid) in
      let rng = Nbr.Rng.for_thread ~seed ~tid in
      for _ = 1 to 50_000 do
        let k = Nbr.Rng.below rng 512 in
        match Nbr.Rng.below rng 10 with
        | 0 -> if List_set.insert set ctx k then Atomic.incr inserts
        | 1 -> if List_set.delete set ctx k then Atomic.incr deletes
        | _ -> if List_set.contains set ctx k then Atomic.incr hits
      done);

  (* The invariant that must hold on every run, poll window or not:
     successful updates and the final size agree (no lost or phantom
     element — which is what an SMR bug would corrupt first). *)
  let expected =
    !prefill + Atomic.get inserts - Atomic.get deletes
  in
  let size = List_set.size set in
  if size <> expected then begin
    Printf.eprintf "quickstart: FINAL SIZE %d <> EXPECTED %d — SMR bug!\n"
      size expected;
    exit 1
  end;
  Printf.printf
    "quickstart: %d domains did 200k ops: %d hits, %d+%d updates, size %d ok\n"
    nthreads (Atomic.get hits) (Atomic.get inserts) (Atomic.get deletes) size;
  Pool.stats pool

let () =
  let rec go attempt =
    let stats = one_run ~seed:(2024 + attempt) in
    if stats.Pool.s_uaf_reads = 0 then begin
      Printf.printf
        "memory: %d records live, peak %d unreclaimed, %d recycled through \
         NBR+\nno use-after-free reads, as promised.\n"
        stats.Pool.s_in_use stats.Pool.s_peak_in_use stats.Pool.s_frees;
      exit 0
    end;
    Printf.printf
      "  (%d benign poll-window reads of freed slots, all neutralized \
       before commit — retrying with a fresh arena, %d/%d)\n%!"
      stats.Pool.s_uaf_reads attempt attempts;
    if attempt < attempts then go (attempt + 1)
    else begin
      (* The window is narrow; hitting it [attempts] times in a row means
         something is systematically wrong, not bad luck. *)
      Printf.eprintf
        "quickstart: poll-window reads in every one of %d runs — the \
         window should close most runs; investigate.\n"
        attempts;
      exit 1
    end
  in
  go 1
