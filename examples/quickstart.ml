(* Quickstart: a concurrent set with NBR+ reclamation in ~40 lines.

   Run with:  dune exec examples/quickstart.exe

   The recipe, bottom to top:
   1. pick a runtime       (here: real OCaml domains),
   2. create a record pool (the manual-memory arena records live in),
   3. create a reclamation scheme over that pool (NBR+),
   4. create a data structure (lazy list) and per-thread contexts,
   5. hammer it from several domains.

   The native runtime's signal delivery is polling-based, so a reader can
   touch a just-freed slot between its last poll and the delivery that
   restarts it.  Those reads are {e benign}: the reader is neutralized
   before it can act on the value (DESIGN.md §3).  What a sound scheme
   must never produce is a {e committed} UAF read — one whose read phase
   ran to completion — and that is what this example asserts, on every
   run, via the scheme's own classification ([Smr_stats.committed_uaf]).
   Benign poll-window reads are timing-dependent and merely reported. *)

module Rt = Nbr.Runtime.Native
module Pool = Nbr.Pool.Make (Rt)
module Smr = Nbr.Scheme.Nbr_plus.Make (Rt)
module List_set = Nbr.Ds.Lazy_list.Make (Rt) (Smr)

let nthreads = 4

let () =
  (* A pool shaped for lazy-list nodes: key + marked flag, one link. *)
  let pool =
    Pool.create ~capacity:1_000_000 ~data_fields:List_set.data_fields
      ~ptr_fields:List_set.ptr_fields ~nthreads ()
  in
  let smr = Smr.create pool ~nthreads Nbr.Scheme.Config.default in
  let set = List_set.create pool in
  let ctxs = Array.init nthreads (fun tid -> Smr.register smr ~tid) in

  (* Prefill from the main thread (tid 0's context). *)
  let prefill = ref 0 in
  for k = 0 to 511 do
    if k mod 2 = 0 && List_set.insert set ctxs.(0) k then incr prefill
  done;

  let hits = Atomic.make 0
  and inserts = Atomic.make 0
  and deletes = Atomic.make 0 in
  Rt.run ~nthreads (fun tid ->
      let ctx = ctxs.(tid) in
      let rng = Nbr.Rng.for_thread ~seed:2024 ~tid in
      for _ = 1 to 50_000 do
        let k = Nbr.Rng.below rng 512 in
        match Nbr.Rng.below rng 10 with
        | 0 -> if List_set.insert set ctx k then Atomic.incr inserts
        | 1 -> if List_set.delete set ctx k then Atomic.incr deletes
        | _ -> if List_set.contains set ctx k then Atomic.incr hits
      done);

  (* Set semantics: successful updates and the final size agree (no lost
     or phantom element — which is what an SMR bug would corrupt first). *)
  let expected = !prefill + Atomic.get inserts - Atomic.get deletes in
  let size = List_set.size set in
  if size <> expected then begin
    Printf.eprintf "quickstart: FINAL SIZE %d <> EXPECTED %d — SMR bug!\n" size
      expected;
    exit 1
  end;
  Printf.printf
    "quickstart: %d domains did 200k ops: %d hits, %d+%d updates, size %d ok\n"
    nthreads (Atomic.get hits) (Atomic.get inserts) (Atomic.get deletes) size;

  (* Memory safety: no UAF read ever survived to the end of its phase. *)
  let st = Smr.stats smr in
  let committed = Nbr.Scheme.Stats.committed_uaf st in
  if committed <> 0 then begin
    Printf.eprintf "quickstart: %d COMMITTED use-after-free reads — SMR bug!\n"
      committed;
    exit 1
  end;
  let pstats = Pool.stats pool in
  Printf.printf
    "memory: %d records live, peak %d unreclaimed, %d recycled through NBR+\n"
    pstats.Pool.s_in_use pstats.Pool.s_peak_in_use pstats.Pool.s_frees;
  (match Nbr.Scheme.Stats.benign_uaf st with
  | 0 -> print_endline "no use-after-free reads, as promised."
  | b ->
      Printf.printf
        "no committed use-after-free reads, as promised (%d benign \
         poll-window reads, all neutralized before commit).\n"
        b);
  exit 0
