(* Quickstart: a concurrent set with NBR+ reclamation in ~40 lines.

   Run with:  dune exec examples/quickstart.exe

   The recipe, bottom to top:
   1. pick a runtime       (here: real OCaml domains),
   2. create a record pool (the manual-memory arena records live in),
   3. create a reclamation scheme over that pool (NBR+),
   4. create a data structure (lazy list) and per-thread contexts,
   5. hammer it from several domains. *)

module Rt = Nbr.Runtime.Native
module Pool = Nbr.Pool.Make (Rt)
module Smr = Nbr.Scheme.Nbr_plus.Make (Rt)
module List_set = Nbr.Ds.Lazy_list.Make (Rt) (Smr)

let nthreads = 4

let () =
  (* A pool shaped for lazy-list nodes: key + marked flag, one link. *)
  let pool =
    Pool.create ~capacity:1_000_000 ~data_fields:List_set.data_fields
      ~ptr_fields:List_set.ptr_fields ~nthreads ()
  in
  let smr = Smr.create pool ~nthreads Nbr.Scheme.Config.default in
  let set = List_set.create pool in
  let ctxs = Array.init nthreads (fun tid -> Smr.register smr ~tid) in

  (* Prefill from the main thread (tid 0's context). *)
  for k = 0 to 511 do
    if k mod 2 = 0 then ignore (List_set.insert set ctxs.(0) k)
  done;

  let hits = Atomic.make 0 and updates = Atomic.make 0 in
  Rt.run ~nthreads (fun tid ->
      let ctx = ctxs.(tid) in
      let rng = Nbr.Rng.for_thread ~seed:2024 ~tid in
      for _ = 1 to 50_000 do
        let k = Nbr.Rng.below rng 512 in
        match Nbr.Rng.below rng 10 with
        | 0 -> if List_set.insert set ctx k then Atomic.incr updates
        | 1 -> if List_set.delete set ctx k then Atomic.incr updates
        | _ -> if List_set.contains set ctx k then Atomic.incr hits
      done);

  let stats = Pool.stats pool in
  Printf.printf
    "quickstart: %d domains did 200k ops: %d hits, %d updates\n\
     memory: %d records live, peak %d unreclaimed, %d recycled through NBR+\n"
    nthreads (Atomic.get hits) (Atomic.get updates) stats.Pool.s_in_use
    stats.Pool.s_peak_in_use stats.Pool.s_frees;
  (* The native runtime's signal delivery is polling-based, so a reader
     can touch a just-freed slot between its last poll and the delivery
     that restarts it.  Those reads are counted by the pool but never
     committed — the reader is neutralized before it can act on them
     (DESIGN.md §3).  Under the simulator (instantaneous delivery) the
     count is exactly zero; see test/ for that assertion. *)
  if stats.Pool.s_uaf_reads = 0 then
    print_endline "no use-after-free reads, as promised."
  else
    Printf.printf
      "%d benign poll-window reads of freed slots, all neutralized before \
       commit (see DESIGN.md §3).\n"
      stats.Pool.s_uaf_reads
