(* Compare every reclamation scheme on your workload before committing.

   Run with:  dune exec examples/scheme_shootout.exe -- [list|tree]

   This is the decision most users of an SMR library actually face: given
   a structure and an operation mix, which reclamation scheme should I
   use?  The example sweeps all of them on a simulated 16-core machine at
   32 threads (oversubscribed, like a loaded server) and prints
   throughput, peak memory, and the signal/restart overheads — the P1/P2
   trade-off the paper is about, measured on your own workload shape. *)

module Sim = Nbr.Runtime.Sim
module H = Nbr.Workload.Harness.Make (Sim)
module T = Nbr.Workload.Trial

let () =
  let structure =
    match Sys.argv with
    | [| _; "list" |] -> "lazy-list"
    | [| _; "tree" |] | [| _ |] -> "dgt-tree"
    | [| _; "skiplist" |] -> "skip-list"
    | [| _; "hash" |] -> "hash-set"
    | _ ->
        prerr_endline "usage: scheme_shootout [list|tree|skiplist|hash]";
        exit 2
  in
  let key_range = if structure = "lazy-list" then 512 else 16384 in
  Printf.printf
    "32 threads on 16 simulated cores, %s, %d keys, 25%% ins / 25%% del\n\n"
    structure key_range;
  Printf.printf "%-8s %12s %10s %10s %10s %10s\n" "scheme" "Mops/s" "peak-recs"
    "signals" "restarts" "bounded?";
  List.iter
    (fun scheme ->
      Sim.set_config { Sim.default_config with cores = 16; seed = 9 };
      let cfg =
        T.Cfg.make ~nthreads:32 ~duration_ns:1_500_000 ~key_range ~ins_pct:25
          ~del_pct:25
          ~smr:
            (Nbr.Scheme.Config.with_threshold Nbr.Scheme.Config.default
               256)
          ~seed:9 ()
      in
      if H.supported ~scheme ~structure then begin
        let r = H.run ~scheme ~structure cfg in
        assert (T.valid r);
        Printf.printf "%-8s %12.2f %10d %10d %10d %10s\n" scheme
          r.T.throughput_mops r.T.peak_unreclaimed r.T.signals
          (Nbr.Scheme.Stats.restarts r.T.smr_stats)
          (match scheme with
          | "nbr" | "nbr+" | "ibr" | "hp" | "he" -> "yes"
          | "none" -> "leaks!"
          | _ -> "no")
      end)
    [ "nbr+"; "nbr"; "debra"; "qsbr"; "rcu"; "ibr"; "hp"; "he"; "none" ]
