(* Control-flow graphs over [Parsetree] expressions, for the R3
   phase-bracketing dataflow and the R2 dominance queries (DESIGN.md
   §16).

   One CFG covers one function body.  Lambda literals in the body are
   *not* inlined — each is analyzed as its own function by [Rules] — so
   a node here is either a protocol event (a call whose resolved effects
   include begin/end/phase, as decided by the caller-supplied
   [classify]) or a raise.  Control constructs contribute edges:
   if/match fan out and re-join, while/for loop back, and try adds an
   edge from the try entry plus one from every direct raise in the body
   to the handler.  Exceptions are modeled from *explicit* raises only:
   callee-propagated exceptions (e.g. [Exhausted] escaping an
   allocation) are deliberately out of scope, matching the codebase
   convention that ops do not [Fun.protect] their bracket. *)

type event = Begins | Ends | Phase | Raise

type node = {
  id : int;
  loc : Location.t;
  events : event list;
  mutable preds : int list;
  mutable succs : int list;
}

type t = {
  nodes : node array;
  entry : int;
  exit_ : int;
  raise_exit : int;  (** sink for raises with no enclosing handler *)
}

let has ev n = List.mem ev n.events

(* ------------------------------------------------------------------ *)
(* Construction *)

let build ~(classify : Parsetree.expression -> event list)
    (body : Parsetree.expression) : t =
  let nodes : node list ref = ref [] in
  let count = ref 0 in
  let fresh ?(events = []) loc =
    let id = !count in
    incr count;
    nodes := { id; loc; events; preds = []; succs = [] } :: !nodes;
    id
  in
  let edges : (int * int) list ref = ref [] in
  let link srcs dst = List.iter (fun s -> edges := (s, dst) :: !edges) srcs in
  let entry = fresh Location.none in
  let raise_exit = fresh Location.none in
  (* [go preds raise_sink e] threads control through [e]; returns the
     fall-through predecessors.  An empty result means all paths
     diverge. *)
  let rec go preds raise_sink (e : Parsetree.expression) : int list =
    let open Parsetree in
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
        let p = go preds raise_sink a in
        go p raise_sink b
    | Pexp_let (_, vbs, body) ->
        let p =
          List.fold_left (fun p vb -> go p raise_sink vb.pvb_expr) preds vbs
        in
        go p raise_sink body
    | Pexp_ifthenelse (c, t, eo) ->
        let pc = go preds raise_sink c in
        let pt = go pc raise_sink t in
        let pe = match eo with Some e -> go pc raise_sink e | None -> pc in
        pt @ pe
    | Pexp_match (scrut, cases) ->
        let ps = go preds raise_sink scrut in
        List.concat_map
          (fun c ->
            let pg =
              match c.pc_guard with
              | Some g -> go ps raise_sink g
              | None -> ps
            in
            go pg raise_sink c.pc_rhs)
          cases
    | Pexp_try (body, cases) ->
        (* The handler is reachable from the try entry (any callee may
           raise) and from direct raises inside the body. *)
        let handler = fresh e.pexp_loc in
        link preds handler;
        let pb = go preds handler body in
        let ph =
          List.concat_map (fun c -> go [ handler ] raise_sink c.pc_rhs) cases
        in
        pb @ ph
    | Pexp_while (c, b) ->
        let head = fresh e.pexp_loc in
        link preds head;
        let pc = go [ head ] raise_sink c in
        let pb = go pc raise_sink b in
        link pb head;
        pc
    | Pexp_for (_, lo, hi, _, b) ->
        let p1 = go preds raise_sink lo in
        let p2 = go p1 raise_sink hi in
        let head = fresh e.pexp_loc in
        link p2 head;
        let pb = go [ head ] raise_sink b in
        link pb head;
        [ head ]
    | Pexp_fun _ | Pexp_function _ ->
        (* Lambda literal: its body is a separate function. *)
        preds
    | Pexp_apply (_, args) ->
        let p =
          List.fold_left (fun p (_, a) -> go p raise_sink a) preds args
        in
        let events = classify e in
        if events = [] then p
        else if List.mem Raise events then begin
          let n = fresh ~events e.pexp_loc in
          link p n;
          link [ n ] raise_sink;
          []
        end
        else begin
          let n = fresh ~events e.pexp_loc in
          link p n;
          [ n ]
        end
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) ->
        go preds raise_sink a
    | Pexp_tuple es | Pexp_array es ->
        List.fold_left (fun p x -> go p raise_sink x) preds es
    | Pexp_record (fields, base) ->
        let p =
          match base with Some b -> go preds raise_sink b | None -> preds
        in
        List.fold_left (fun p (_, x) -> go p raise_sink x) p fields
    | Pexp_field (a, _) -> go preds raise_sink a
    | Pexp_setfield (a, _, b) ->
        let p = go preds raise_sink a in
        go p raise_sink b
    | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) ->
        go preds raise_sink a
    | Pexp_open (_, a)
    | Pexp_letmodule (_, _, a)
    | Pexp_letexception (_, a)
    | Pexp_newtype (_, a)
    | Pexp_lazy a ->
        go preds raise_sink a
    | Pexp_assert a ->
        (* Asserts are benign invariants here, not control flow. *)
        go preds raise_sink a
    | Pexp_ident _ | Pexp_constant _ | Pexp_construct (_, None)
    | Pexp_variant (_, None) ->
        preds
    | _ -> preds
  in
  let final = go [ entry ] raise_exit body in
  let exit_ = fresh Location.none in
  link final exit_;
  let arr = Array.make !count { id = 0; loc = Location.none; events = []; preds = []; succs = [] } in
  List.iter (fun n -> arr.(n.id) <- n) !nodes;
  List.iter
    (fun (a, b) ->
      arr.(a).succs <- b :: arr.(a).succs;
      arr.(b).preds <- a :: arr.(b).preds)
    !edges;
  { nodes = arr; entry; exit_; raise_exit }

(* ------------------------------------------------------------------ *)
(* Dominance: classic iterative bit-set computation.  Unreachable nodes
   keep the full set; queries gate on reachability. *)

let dominators (g : t) : bool array array =
  let n = Array.length g.nodes in
  let full () = Array.make n true in
  let dom = Array.init n (fun _ -> full ()) in
  let entry_only = Array.make n false in
  entry_only.(g.entry) <- true;
  dom.(g.entry) <- entry_only;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun node ->
        if node.id <> g.entry && node.preds <> [] then begin
          let nd = full () in
          List.iter
            (fun p ->
              let dp = dom.(p) in
              for i = 0 to n - 1 do
                if not dp.(i) then nd.(i) <- false
              done)
            node.preds;
          nd.(node.id) <- true;
          if nd <> dom.(node.id) then begin
            dom.(node.id) <- nd;
            changed := true
          end
        end)
      g.nodes
  done;
  dom

let reachable (g : t) : bool array =
  let seen = Array.make (Array.length g.nodes) false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit g.nodes.(i).succs
    end
  in
  visit g.entry;
  seen

(* ------------------------------------------------------------------ *)
(* R3 balance dataflow: per node, the set of possible open-op depths on
   entry, as a 3-bit mask over {0, 1, 2+}. *)

type balance_violation =
  | Stray_end of Location.t  (** end_op reachable at depth 0 *)
  | Nested_begin of Location.t  (** begin_op reachable at depth >= 1 *)
  | Open_at_return of Location.t  (** some return path leaves the op open *)
  | Open_at_raise of Location.t  (** some uncaught raise leaves the op open *)

let bit d = 1 lsl min d 2

let shift_mask mask ~begins ~ends =
  if begins && ends then mask
  else if begins then
    (* depth 0 -> 1, 1 -> 2+, 2+ -> 2+ *)
    (if mask land 1 <> 0 then 2 else 0)
    lor if mask land 6 <> 0 then 4 else 0
  else if ends then
    (* depth 1 -> 0; 2+ -> 1 or 2+ (unknown, keep both); 0 is a stray
       end, reported separately, and treated as staying at 0. *)
    (if mask land 2 <> 0 then 1 else 0)
    lor (if mask land 4 <> 0 then 6 else 0)
    lor if mask land 1 <> 0 then 1 else 0
  else mask

let check_balance (g : t) : balance_violation list =
  let n = Array.length g.nodes in
  let in_mask = Array.make n 0 in
  in_mask.(g.entry) <- bit 0;
  let work = Queue.create () in
  Queue.push g.entry work;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    let node = g.nodes.(i) in
    let out =
      shift_mask in_mask.(i) ~begins:(has Begins node) ~ends:(has Ends node)
    in
    List.iter
      (fun s ->
        let m = in_mask.(s) lor out in
        if m <> in_mask.(s) then begin
          in_mask.(s) <- m;
          Queue.push s work
        end)
      node.succs
  done;
  let viols = ref [] in
  (* Anchor "left open" reports on a begin with no matching end in the
     same node (an unbalanced direct begin_op) when one exists; folded
     balanced calls are less likely culprits. *)
  let pick p =
    Array.fold_left
      (fun acc node ->
        match acc with Some _ -> acc | None -> if p node then Some node.loc else None)
      None g.nodes
  in
  let first_begin_loc =
    match pick (fun n -> has Begins n && not (has Ends n)) with
    | Some _ as l -> l
    | None -> pick (has Begins)
  in
  Array.iter
    (fun node ->
      if in_mask.(node.id) <> 0 then begin
        if has Ends node && (not (has Begins node)) && in_mask.(node.id) land 1 <> 0
        then viols := Stray_end node.loc :: !viols;
        if has Begins node && (not (has Ends node)) && in_mask.(node.id) land 6 <> 0
        then viols := Nested_begin node.loc :: !viols
      end)
    g.nodes;
  let open_loc = match first_begin_loc with Some l -> l | None -> Location.none in
  if in_mask.(g.exit_) land 6 <> 0 then
    viols := Open_at_return open_loc :: !viols;
  if in_mask.(g.raise_exit) land 6 <> 0 then
    viols := Open_at_raise open_loc :: !viols;
  List.rev !viols

(* Phase-entry nodes not dominated by any begin node (queried only for
   functions that contain a begin; unreachable nodes are skipped). *)
let unguarded_phases (g : t) : Location.t list =
  let begins =
    Array.to_list g.nodes
    |> List.filter (has Begins)
    |> List.map (fun n -> n.id)
  in
  if begins = [] then []
  else begin
    let dom = dominators g in
    let reach = reachable g in
    Array.to_list g.nodes
    |> List.filter (fun n ->
           has Phase n && (not (has Begins n)) && reach.(n.id)
           && not (List.exists (fun b -> b <> n.id && dom.(n.id).(b)) begins))
    |> List.map (fun n -> n.loc)
  end
