(** Control-flow graphs over [Parsetree] expressions: construction,
    dominance, and the R3 phase-bracketing depth dataflow
    (DESIGN.md §16).

    One CFG covers one function body; lambda literals are opaque (each
    is analyzed as its own function).  Exception edges are modeled from
    explicit raises only, plus a conservative edge from each [try] entry
    to its handler. *)

type event =
  | Begins  (** resolved callee effect includes begin_op *)
  | Ends  (** resolved callee effect includes end_op *)
  | Phase  (** callee enters a read/write phase *)
  | Raise  (** the expression diverges (raise / failwith / ...) *)

type node = {
  id : int;
  loc : Location.t;
  events : event list;
  mutable preds : int list;
  mutable succs : int list;
}

type t = {
  nodes : node array;
  entry : int;
  exit_ : int;
  raise_exit : int;  (** sink for raises with no enclosing handler *)
}

val has : event -> node -> bool

val build :
  classify:(Parsetree.expression -> event list) -> Parsetree.expression -> t
(** [classify] is consulted on every application; returning events for
    an expression materializes a node for it. *)

val dominators : t -> bool array array
(** [dominators g].(n).(d) iff node [d] dominates node [n].  Unreachable
    nodes report the full set; gate queries on {!reachable}. *)

val reachable : t -> bool array

type balance_violation =
  | Stray_end of Location.t  (** end_op reachable at depth 0 *)
  | Nested_begin of Location.t  (** begin_op reachable at depth >= 1 *)
  | Open_at_return of Location.t  (** some return path leaves the op open *)
  | Open_at_raise of Location.t  (** some uncaught raise leaves the op open *)

val check_balance : t -> balance_violation list
(** Fixpoint over per-node sets of possible open-op depths ({0,1,2+}). *)

val unguarded_phases : t -> Location.t list
(** Phase-entry nodes not dominated by any begin node, in a function
    that contains at least one begin.  Empty when the function never
    begins an op (helpers entered from an already-open op are checked
    at their call sites instead). *)
