(* Analysis driver: file walking, parsing, the summary fixpoint, rule
   dispatch, and exemption filtering (DESIGN.md §16).

   [bin/nbr_lint.ml] is a thin shell over [main]; tests call
   [analyze_files] directly on fixture sets. *)

type result = {
  findings : Findings.t list;  (** surviving findings, sorted *)
  suppressed : int;  (** dropped by allowlist or in-source waiver *)
  warnings : string list;  (** allowlist diagnostics *)
}

let parse_file file =
  let ic = open_in file in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let lexbuf = Lexing.from_channel ic in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn -> Error exn

let rec walk dir f =
  Array.iter
    (fun entry ->
      let p = Filename.concat dir entry in
      if Sys.is_directory p then walk p f
      else if Filename.check_suffix entry ".ml" then f p)
    (let a = Sys.readdir dir in
     Array.sort compare a;
     a)

let ml_files_of_dirs dirs =
  let files = ref [] in
  List.iter (fun d -> walk d (fun p -> files := p :: !files)) dirs;
  List.rev !files

let analyze_files ?(allowlist = Findings.Allowlist.empty ())
    ?(allowlist_warnings = []) ?(check_mli = true) (files : string list) :
    result =
  let files = List.map Findings.normalize_path files in
  let parsed, parse_findings =
    List.fold_left
      (fun (ok, bad) file ->
        match parse_file file with
        | Ok ast -> ((file, ast) :: ok, bad)
        | Error exn -> (ok, Idiom.parse_failure ~file exn :: bad))
      ([], []) files
  in
  let parsed = List.rev parsed in
  let sum = Summary.build parsed in
  let waivers = Findings.Waivers.create () in
  let raw = ref parse_findings in
  if check_mli then
    List.iter
      (fun file ->
        match Idiom.check_mli ~file with
        | Some f -> raw := f :: !raw
        | None -> ())
      files;
  List.iter
    (fun (info : Summary.info) ->
      raw := Idiom.check_structure ~file:info.path info.structure @ !raw;
      raw := Rules.check sum info waivers @ !raw)
    sum.Summary.infos;
  let suppressed = ref 0 in
  let kept =
    List.filter
      (fun (f : Findings.t) ->
        let drop =
          Findings.Waivers.waived waivers ~rule:f.rule ~file:f.file
            ~line:f.line
          || Findings.Allowlist.mem allowlist ~rule:f.rule ~file:f.file
        in
        if drop then incr suppressed;
        not drop)
      !raw
  in
  let kept = List.sort_uniq Findings.compare kept in
  { findings = kept; suppressed = !suppressed; warnings = allowlist_warnings }

let analyze_dirs ?allowlist ?allowlist_warnings ?check_mli dirs =
  analyze_files ?allowlist ?allowlist_warnings ?check_mli
    (ml_files_of_dirs dirs)

(* ------------------------------------------------------------------ *)
(* CLI *)

let main () =
  let github = ref false in
  let allowlist_file = ref "" in
  let sarif_file = ref "" in
  let roots = ref [] in
  Arg.parse
    [
      ("--github", Arg.Set github, " emit GitHub Actions error annotations");
      ( "--allowlist",
        Arg.Set_string allowlist_file,
        "FILE rule:path exemptions, one per line" );
      ( "--sarif",
        Arg.Set_string sarif_file,
        "FILE write a SARIF 2.1.0 report (always written, even when clean)" );
    ]
    (fun d -> roots := d :: !roots)
    "nbr_lint [--github] [--allowlist FILE] [--sarif FILE] DIR...";
  let allowlist, warnings =
    if !allowlist_file = "" then (Findings.Allowlist.empty (), [])
    else Findings.Allowlist.load !allowlist_file
  in
  let roots = if !roots = [] then [ "lib" ] else List.rev !roots in
  List.iter
    (fun root ->
      if not (Sys.file_exists root && Sys.is_directory root) then begin
        Printf.eprintf "nbr_lint: no such directory: %s\n" root;
        exit 2
      end)
    roots;
  let result =
    analyze_dirs ~allowlist ~allowlist_warnings:warnings roots
  in
  List.iter (fun w -> Printf.eprintf "nbr_lint: warning: %s\n" w)
    result.warnings;
  List.iter
    (fun f ->
      print_endline
        (if !github then Findings.to_github f else Findings.to_string f))
    result.findings;
  if !sarif_file <> "" then Sarif.write_file !sarif_file result.findings;
  let n = List.length result.findings in
  if n > 0 then begin
    Printf.printf "nbr_lint: %d finding(s)\n" n;
    1
  end
  else begin
    print_endline "nbr_lint: clean";
    0
  end
