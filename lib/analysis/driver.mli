(** Analysis driver: file walking, parsing, summary construction, rule
    dispatch and exemption filtering (DESIGN.md §16).  [bin/nbr_lint.ml]
    is a thin shell over {!main}; tests call {!analyze_files} on fixture
    sets directly. *)

type result = {
  findings : Findings.t list;  (** surviving findings, sorted *)
  suppressed : int;  (** dropped by allowlist or in-source waiver *)
  warnings : string list;  (** allowlist diagnostics *)
}

val analyze_files :
  ?allowlist:Findings.Allowlist.t ->
  ?allowlist_warnings:string list ->
  ?check_mli:bool ->
  string list ->
  result
(** Analyze an explicit set of [.ml] files.  [check_mli] defaults to
    true; fixture suites pass [false]. *)

val analyze_dirs :
  ?allowlist:Findings.Allowlist.t ->
  ?allowlist_warnings:string list ->
  ?check_mli:bool ->
  string list ->
  result

val ml_files_of_dirs : string list -> string list

val main : unit -> int
(** The nbr_lint CLI: parses [--github] / [--allowlist] / [--sarif] and
    directory operands, prints findings, returns the exit status. *)
