(* Findings, allowlists and waivers: the shared reporting engine of the
   static analysis (DESIGN.md §16).

   Every rule — the R1–R4 phase-discipline checks in [Rules] and the
   concurrency-idiom checks in [Idiom] — reports through this module, so
   exemption handling, rendering (plain / GitHub annotations / SARIF)
   and the exit-status decision live in exactly one place. *)

type t = {
  rule : string;  (** kebab-case rule id, e.g. ["read-phase-write"] *)
  file : string;
  line : int;
  col : int;
  msg : string;
}

let v ~rule ~file ~loc msg =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    msg;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.msg

let to_github f =
  Printf.sprintf "::error file=%s,line=%d::[%s] %s" f.file f.line f.rule f.msg

(* ------------------------------------------------------------------ *)
(* Path normalization (shared by the allowlist and the walkers): a file
   must have exactly one spelling, whatever mix of "./", "//" and
   trailing separators the caller used. *)

let normalize_path p =
  let p = String.trim p in
  let n = String.length p in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let c = p.[!i] in
    if c = '/' then begin
      (* Collapse runs of '/' into one; keep a leading '/' (the path may
         be absolute, e.g. a temp dir in the tests). *)
      if Buffer.length buf = 0 then begin
        if !i = 0 then Buffer.add_char buf '/'
      end
      else if Buffer.nth buf (Buffer.length buf - 1) <> '/' then
        Buffer.add_char buf '/';
      incr i
    end
    else if
      c = '.'
      && !i + 1 < n
      && p.[!i + 1] = '/'
      && (Buffer.length buf = 0
         || Buffer.nth buf (Buffer.length buf - 1) = '/')
    then (* Drop "./" segments. *)
      i := !i + 2
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  let s = Buffer.contents buf in
  (* Strip a trailing separator ("lib/ds/" and "lib/ds" are one path). *)
  let l = String.length s in
  if l > 1 && s.[l - 1] = '/' then String.sub s 0 (l - 1) else s

(* ------------------------------------------------------------------ *)
(* Allowlist: "rule:path" lines, '#' comments.  Paths are compared
   normalized, so one file cannot hide under two spellings — a second
   spelling of an existing entry is reported as a warning and dropped. *)

module Allowlist = struct
  type entry = { raw : string; mutable used : bool }
  type nonrec t = (string * string, entry) Hashtbl.t

  let empty () : t = Hashtbl.create 16

  let load file =
    let tbl : t = Hashtbl.create 64 in
    let warnings = ref [] in
    let ic = open_in file in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let lineno = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         incr lineno;
         if line <> "" && line.[0] <> '#' then
           match String.index_opt line ':' with
           | Some i ->
               let rule = String.trim (String.sub line 0 i) in
               let raw =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               let path = normalize_path raw in
               (match Hashtbl.find_opt tbl (rule, path) with
               | Some prior ->
                   warnings :=
                     Printf.sprintf
                       "%s:%d: duplicate allowlist entry %s:%s (already \
                        listed as %s:%s)"
                       file !lineno rule raw rule prior.raw
                     :: !warnings
               | None -> Hashtbl.replace tbl (rule, path) { raw; used = false })
           | None ->
               warnings :=
                 Printf.sprintf "%s:%d: bad allowlist line: %s" file !lineno
                   line
                 :: !warnings
       done
     with End_of_file -> ());
    (tbl, List.rev !warnings)

  let mem tbl ~rule ~file =
    match Hashtbl.find_opt tbl (rule, normalize_path file) with
    | Some e ->
        e.used <- true;
        true
    | None -> false
end

(* ------------------------------------------------------------------ *)
(* In-source waivers: [@nbr.allow rule-id] on an expression (or
   [@@nbr.allow rule-id] on a binding) suppresses findings of that rule
   anchored inside the attributed range.  For deliberate protocol
   departures — fault injection's die-mid-operation paths — where a
   whole-file allowlist entry would mask real bugs. *)

module Waivers = struct
  type span = {
    w_rule : string;
    w_file : string;
    w_start : int;  (** first waived line *)
    w_stop : int;  (** last waived line *)
  }

  type nonrec t = span list ref

  let create () : t = ref []

  (* Accept both [@nbr.allow "phase-bracket"] and the unquoted
     [@nbr.allow phase-bracket] — the latter parses as the application
     of (-) to identifiers, which we render back to kebab-case. *)
  let rule_of_payload (p : Parsetree.payload) =
    let buf = Buffer.create 16 in
    let rec render (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> Buffer.add_string buf s
      | Pexp_ident { txt = Longident.Lident s; _ } -> Buffer.add_string buf s
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Longident.Lident "-"; _ }; _ },
            [ (_, a); (_, b) ] ) ->
          render a;
          Buffer.add_char buf '-';
          render b
      | Pexp_apply (f, args) ->
          render f;
          List.iter
            (fun ((_, a) : Asttypes.arg_label * Parsetree.expression) ->
              Buffer.add_char buf '-';
              render a)
            args
      | _ -> ()
    in
    (match p with
    | Parsetree.PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> render e
    | _ -> ());
    if Buffer.length buf = 0 then None else Some (Buffer.contents buf)

  let note t ~file ~(loc : Location.t) (attr : Parsetree.attribute) =
    if attr.Parsetree.attr_name.Location.txt = "nbr.allow" then
      match rule_of_payload attr.Parsetree.attr_payload with
      | Some w_rule ->
          t :=
            {
              w_rule;
              w_file = file;
              w_start = loc.Location.loc_start.Lexing.pos_lnum;
              w_stop = loc.Location.loc_end.Lexing.pos_lnum;
            }
            :: !t
      | None -> ()

  let waived t ~rule ~file ~line =
    List.exists
      (fun w ->
        w.w_rule = rule && w.w_file = file && line >= w.w_start
        && line <= w.w_stop)
      !t
end
