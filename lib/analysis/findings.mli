(** Findings, allowlists and in-source waivers — the shared reporting
    engine behind every rule of the static analysis (DESIGN.md §16). *)

type t = {
  rule : string;  (** kebab-case rule id, e.g. ["read-phase-write"] *)
  file : string;
  line : int;
  col : int;
  msg : string;
}

val v : rule:string -> file:string -> loc:Location.t -> string -> t
val compare : t -> t -> int

val to_string : t -> string
(** ["file:line: [rule] msg"] — the format asserted byte-for-byte by
    the fixture tests. *)

val to_github : t -> string
(** GitHub Actions [::error] annotation line. *)

val normalize_path : string -> string
(** Canonical spelling of a repo-relative path: drops ["./"] segments,
    collapses ["//"], strips trailing separators. *)

module Allowlist : sig
  type t

  val empty : unit -> t

  val load : string -> t * string list
  (** Parse a ["rule:path"]-per-line allowlist file.  Returns the table
      plus warnings for malformed lines and for entries that collapse to
      a duplicate after path normalization. *)

  val mem : t -> rule:string -> file:string -> bool
  (** Membership under path normalization; marks the entry as used. *)
end

module Waivers : sig
  (** [@nbr.allow rule-id] / [@@nbr.allow rule-id] spans collected while
      walking a file: findings of [rule-id] anchored inside the
      attributed source range are suppressed.  Used for deliberate
      protocol departures (fault injection's die-mid-operation paths)
      where a whole-file allowlist entry would mask real bugs. *)

  type t

  val create : unit -> t
  val note : t -> file:string -> loc:Location.t -> Parsetree.attribute -> unit
  val waived : t -> rule:string -> file:string -> line:int -> bool
end
