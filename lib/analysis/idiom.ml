(* Concurrency-idiom rules (DESIGN.md §11), ported onto the shared
   findings engine so they report, allowlist and emit SARIF exactly
   like the R1–R4 phase rules:

   - [atomic-make]    lib/core and lib/ds must not call [Atomic.make]
                      directly: shared cells go through the runtime
                      ([Rt.make] / [Rt.make_padded]) or [Padded].
   - [domain-dls]     [Domain.DLS] is a runtime-layer concern.
   - [obj-magic]      no [Obj.magic] anywhere in lib/.
   - [pool-raw-index] outside lib/pool, no raw cell addressing
                      ([data_cell] / [ptr_cell]).
   - [missing-mli]    every library module carries an interface, or is
                      explicitly grandfathered in the allowlist.
   - [parse]          the file must parse. *)

let path_has_prefix ~prefix file =
  let file = Findings.normalize_path file in
  let n = String.length prefix in
  String.length file >= n && String.sub file 0 n = prefix

let in_core_or_ds file =
  path_has_prefix ~prefix:"lib/core/" file
  || path_has_prefix ~prefix:"lib/ds/" file

let in_runtime file = path_has_prefix ~prefix:"lib/runtime/" file

let check_ident ~file (lid : Longident.t Location.loc) : Findings.t option =
  let loc = lid.Location.loc in
  let v rule msg = Some (Findings.v ~rule ~file ~loc msg) in
  match Longident.flatten lid.Location.txt with
  | "Obj" :: "magic" :: _ ->
      v "obj-magic" "Obj.magic defeats the type system; find another way"
  | "Atomic" :: "make" :: _ when in_core_or_ds file ->
      v "atomic-make"
        "bare Atomic.make in scheme/structure code: shared cells must go \
         through Rt.make / Rt.make_padded (or Nbr_sync.Padded) so the \
         simulator costs them and hot cells get cache-line isolation"
  | "Domain" :: "DLS" :: _ when not (in_runtime file) ->
      v "domain-dls"
        "Domain.DLS outside lib/runtime: thread identity is a runtime \
         concern (use the tid-threaded _t interfaces)"
  | l
    when (match List.rev l with
         | ("data_cell" | "ptr_cell") :: _ -> true
         | _ -> false)
         && not (path_has_prefix ~prefix:"lib/pool/" file) ->
      v "pool-raw-index"
        "raw cell addressing bypasses generation validation: go through \
         the scheme's validated accessors (read_data / read_ptr / \
         peek_ptr), or grandfather a deliberate use in the allowlist"
  | _ -> None

let check_structure ~file (ast : Parsetree.structure) : Findings.t list =
  let fs = ref [] in
  let note = function Some f -> fs := f :: !fs | None -> () in
  let open Ast_iterator in
  let expr it e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident lid -> note (check_ident ~file lid)
    | _ -> ());
    default_iterator.expr it e
  in
  let module_expr it m =
    (match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_ident lid -> note (check_ident ~file lid)
    | _ -> ());
    default_iterator.module_expr it m
  in
  let open_description it (o : Parsetree.open_description) =
    note (check_ident ~file o.Parsetree.popen_expr);
    default_iterator.open_description it o
  in
  let it = { default_iterator with expr; module_expr; open_description } in
  it.structure it ast;
  List.rev !fs

let line1 file =
  let pos = { Lexing.pos_fname = file; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 } in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = false }

let check_mli ~file : Findings.t option =
  if path_has_prefix ~prefix:"lib/" file && not (Sys.file_exists (file ^ "i"))
  then
    Some
      (Findings.v ~rule:"missing-mli" ~file ~loc:(line1 file)
         "library module without an interface (add a .mli, or grandfather it \
          in the allowlist)")
  else None

let parse_failure ~file exn : Findings.t =
  Findings.v ~rule:"parse" ~file ~loc:(line1 file)
    (Printf.sprintf "failed to parse: %s" (Printexc.to_string exn))

let all_rules =
  [
    "atomic-make"; "domain-dls"; "obj-magic"; "pool-raw-index"; "missing-mli";
    "parse";
  ]
