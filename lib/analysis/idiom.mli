(** Concurrency-idiom rules (atomic-make, domain-dls, obj-magic,
    pool-raw-index, missing-mli, parse) ported onto the shared findings
    engine (DESIGN.md §11, §16). *)

val check_structure : file:string -> Parsetree.structure -> Findings.t list
val check_mli : file:string -> Findings.t option
val parse_failure : file:string -> exn -> Findings.t

val all_rules : string list
(** Rule ids this module can emit, for the SARIF rule table. *)
