(** Static phase-discipline analysis for the NBR protocol
    (DESIGN.md §16), exposed as [Nbr.Analysis].

    A compiler-libs dataflow pass over the library sources proving the
    paper's source-level contract at build time: read phases are pure
    and restartable, every validated dereference sits under an active
    guard, begin_op/end_op bracket every exit, and plain field reads
    stay on locked windows.  Runs as [dune build @lint] via
    [bin/nbr_lint], alongside the older concurrency-idiom rules. *)

module Findings = Findings
module Cfg = Cfg
module Summary = Summary
module Rules = Rules
module Idiom = Idiom
module Sarif = Sarif
module Driver = Driver
