(** Static phase-discipline analysis for the NBR protocol
    (DESIGN.md §16), exposed as [Nbr.Analysis]. *)

module Findings = Findings
module Cfg = Cfg
module Summary = Summary
module Rules = Rules
module Idiom = Idiom
module Sarif = Sarif
module Driver = Driver
