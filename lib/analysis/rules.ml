(* The R1–R4 phase-discipline rules (DESIGN.md §16).

   Client files (data structures, kv, workload, reclaim) are walked
   with a phase-context lattice {Other, Read, Write}: the lambdas of
   [Smr.phase ~read ~write] and [Smr.read_only] switch context, as do
   helpers annotated [@@nbr.read_phase] / [@@nbr.write_phase].  At each
   resolved call site:

   - R1 [read-phase-write]  — impure effects (shared writes, locks,
     alloc/retire/free, op bracketing) in Read context;
   - R2 [unguarded-deref]   — validated accessors (or read-phase
     helpers) in Other context, i.e. with no guard installed; plus the
     CFG dominance query: phase entries on paths not dominated by
     begin_op;
   - R3 [phase-bracket]     — the begin/end depth dataflow over each
     function's CFG, exception edges included;
   - R4 [write-phase-read]  — plain (unvalidated) shared reads in Read
     context; they are legal only on locked/reserved windows (Write)
     or in sequential code (Other).

   SMR-implementation files (schemes, the pool, the shared base) are
   exempt from the client rules — they *implement* the guards — and
   instead get per-scheme-family R2 checks over summary closures:
   NBR/HP/HE/IBR phase entry must install a restart checkpoint,
   NBR-family read_ptr must poll for neutralization, HP/HE/IBR
   read_ptr must publish a reservation *and* validate slot liveness
   (the PR 4 unvalidated-ratchet bug class), and EBR-family begin_op
   must publish an epoch. *)

type phase_ctx = Other | Read | Write

let rule_r1 = "read-phase-write"
let rule_r2 = "unguarded-deref"
let rule_r3 = "phase-bracket"
let rule_r4 = "write-phase-read"

let all_rules = [ rule_r1; rule_r2; rule_r3; rule_r4 ]

let callee_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      String.concat "." (Longident.flatten txt)
  | _ -> "?"

(* ------------------------------------------------------------------ *)
(* Scheme families for the R2 per-scheme checks *)

type family = Neutralization | Hazard | Epoch | Foil | Unknown_family

let family_of_scheme = function
  | "nbr" | "nbr+" -> Neutralization
  | "hp" | "he" | "ibr" -> Hazard
  | "debra" | "qsbr" | "rcu" -> Epoch
  | "none" | "unsafe-free" -> Foil
  | _ -> Unknown_family

let check_scheme (sum : Summary.t) (info : Summary.info) : Findings.t list =
  match info.scheme with
  | None -> []
  | Some s ->
      let fs = ref [] in
      let check fn bit msg =
        match Summary.lookup_fn sum info fn with
        | Some e when e.Summary.closure land bit = 0 ->
            fs :=
              Findings.v ~rule:rule_r2 ~file:info.path ~loc:e.Summary.ent_loc
                (Printf.sprintf "scheme %s: %s %s" s fn msg)
              :: !fs
        | _ -> ()
      in
      (match family_of_scheme s with
      | Neutralization ->
          check "phase" Summary.checkpoint
            "does not install a restart checkpoint";
          check "read_only" Summary.checkpoint
            "does not install a restart checkpoint";
          check "read_ptr" Summary.poll "does not poll for neutralization"
      | Hazard ->
          check "phase" Summary.checkpoint
            "does not install a restart checkpoint";
          check "read_only" Summary.checkpoint
            "does not install a restart checkpoint";
          check "read_ptr" Summary.shared_write
            "does not publish a reservation or era";
          check "read_ptr" Summary.validate
            "publishes without validating slot liveness"
      | Epoch ->
          check "begin_op" Summary.shared_write
            "does not publish an epoch or quiescence announcement"
      | Foil | Unknown_family -> ());
      List.rev !fs

(* ------------------------------------------------------------------ *)
(* Client walk *)

let check (sum : Summary.t) (info : Summary.info)
    (waivers : Findings.Waivers.t) : Findings.t list =
  let open Ast_iterator in
  let fs = ref [] in
  let report ~rule ~loc msg =
    fs := Findings.v ~rule ~file:info.path ~loc msg :: !fs
  in
  let client = not (Summary.is_smr_impl info) in
  let cur = ref Other in
  let with_ctx c f =
    let saved = !cur in
    cur := c;
    f ();
    cur := saved
  in
  let classify (e : Parsetree.expression) : Cfg.event list =
    match Summary.call_effect sum info e with
    | Some (ce, _, _) ->
        let ev = [] in
        let ev = if ce land Summary.begins <> 0 then Cfg.Begins :: ev else ev in
        let ev = if ce land Summary.ends <> 0 then Cfg.Ends :: ev else ev in
        let ev = if ce land Summary.phase <> 0 then Cfg.Phase :: ev else ev in
        let ev = if ce land Summary.raises <> 0 then Cfg.Raise :: ev else ev in
        ev
    | None -> []
  in
  let cfg_check (body : Parsetree.expression) =
    if client then begin
      let g = Cfg.build ~classify body in
      let interesting =
        Array.exists
          (fun n -> Cfg.has Cfg.Begins n || Cfg.has Cfg.Ends n)
          g.Cfg.nodes
      in
      if interesting then begin
        List.iter
          (fun v ->
            match v with
            | Cfg.Stray_end loc ->
                report ~rule:rule_r3 ~loc
                  "end_op with no matching begin_op on this path"
            | Cfg.Nested_begin loc ->
                report ~rule:rule_r3 ~loc
                  "begin_op while an operation is already open"
            | Cfg.Open_at_return loc ->
                report ~rule:rule_r3 ~loc "operation can exit without end_op"
            | Cfg.Open_at_raise loc ->
                report ~rule:rule_r3 ~loc
                  "operation left open on an exception path")
          (Cfg.check_balance g);
        List.iter
          (fun loc ->
            report ~rule:rule_r2 ~loc
              "phase entered on a path not dominated by begin_op")
          (Cfg.unguarded_phases g)
      end
    end
  in
  let node_checks ce (cann : Summary.ann option) name loc =
    if client then
      match !cur with
      | Read -> (
          match cann with
          | Some Summary.Write_phase ->
              report ~rule:rule_r1 ~loc
                (Printf.sprintf "write-phase helper %s called in read phase"
                   name)
          | Some Summary.Read_phase -> ()
          | None ->
              let bad =
                ce
                land (Summary.impure lor Summary.begins lor Summary.ends
                     lor Summary.phase)
              in
              if bad <> 0 then
                report ~rule:rule_r1 ~loc
                  (Printf.sprintf "%s: %s in read phase" name
                     (Summary.pp_bits bad));
              if ce land Summary.plain <> 0 then
                report ~rule:rule_r4 ~loc
                  (Printf.sprintf
                     "%s: plain shared read in read phase (use a validated \
                      accessor)"
                     name))
      | Other -> (
          match cann with
          | Some Summary.Read_phase ->
              report ~rule:rule_r2 ~loc
                (Printf.sprintf "read-phase helper %s called outside any phase"
                   name)
          | Some Summary.Write_phase -> ()
          | None ->
              if ce land Summary.validated <> 0 then
                report ~rule:rule_r2 ~loc
                  (Printf.sprintf "%s: validated dereference outside any phase"
                     name))
      | Write -> ()
  in
  let rec enter_fn (e : Parsetree.expression) =
    let body = Summary.peel_fun e in
    match body.pexp_desc with
    | Pexp_function cases ->
        List.iter
          (fun (c : Parsetree.case) ->
            (match c.pc_guard with Some g -> it.expr it g | None -> ());
            it.expr it c.pc_rhs)
          cases
    | _ ->
        cfg_check body;
        it.expr it body
  and it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          List.iter
            (Findings.Waivers.note waivers ~file:info.path ~loc:e.pexp_loc)
            e.pexp_attributes;
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> enter_fn e
          | Pexp_apply ({ pexp_desc = Pexp_ident _; _ }, args) -> (
              match Summary.call_effect sum info e with
              | Some (ce, _, cann) ->
                  node_checks ce cann (callee_name e) e.pexp_loc;
                  List.iter
                    (fun ((lbl : Asttypes.arg_label), a) ->
                      if Summary.is_function a then
                        if
                          ce land (Summary.phase lor Summary.checkpoint) <> 0
                        then
                          let actx =
                            match lbl with
                            | Labelled "write" -> Write
                            | _ -> Read
                          in
                          with_ctx actx (fun () -> enter_fn a)
                        else enter_fn a
                      else self.expr self a)
                    args
              | None -> Ast_iterator.default_iterator.expr self e)
          | _ -> Ast_iterator.default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          List.iter
            (Findings.Waivers.note waivers ~file:info.path ~loc:vb.pvb_loc)
            vb.pvb_attributes;
          if Summary.is_function vb.pvb_expr then
            let ctx =
              match Summary.ann_of_attrs vb.pvb_attributes with
              | Some Summary.Read_phase -> Read
              | Some Summary.Write_phase -> Write
              | None -> !cur
            in
            with_ctx ctx (fun () -> enter_fn vb.pvb_expr)
          else self.expr self vb.pvb_expr);
    }
  in
  it.structure it info.structure;
  List.rev_append !fs (check_scheme sum info)
