(** The R1–R4 phase-discipline rules (DESIGN.md §16):

    - R1 [read-phase-write] — no shared-memory writes between begin_op /
      the last checkpoint and the protect point (i.e. in Read context);
    - R2 [unguarded-deref] — every validated accessor call is dominated
      by an active guard appropriate to the scheme family;
    - R3 [phase-bracket] — begin_op/end_op balanced on all exits,
      exception edges included;
    - R4 [write-phase-read] — plain (unvalidated) field reads only on
      locked/reserved windows. *)

type phase_ctx = Other | Read | Write

val rule_r1 : string
val rule_r2 : string
val rule_r3 : string
val rule_r4 : string
val all_rules : string list

type family = Neutralization | Hazard | Epoch | Foil | Unknown_family

val family_of_scheme : string -> family
(** Guard lattice per scheme family: Neutralization (nbr, nbr+) needs a
    checkpoint + neutralization poll; Hazard (hp, he, ibr) needs a
    published reservation/era + liveness validation; Epoch (debra, qsbr,
    rcu) needs an epoch announcement at begin_op; Foils (none,
    unsafe-free) are exempt. *)

val check_scheme : Summary.t -> Summary.info -> Findings.t list
(** Per-scheme-family R2 closure checks for SMR-implementation files. *)

val check :
  Summary.t -> Summary.info -> Findings.Waivers.t -> Findings.t list
(** Run all four rules over one file (client rules for structure/service
    code, scheme checks for SMR implementations), collecting
    [@nbr.allow] waivers into [waivers] along the way. *)
