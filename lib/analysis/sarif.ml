(* SARIF 2.1.0 emission (DESIGN.md §16).

   Hand-rolled JSON — the toolchain deliberately has no JSON dependency
   (same choice as the Perfetto trace exporter), and SARIF's subset here
   is small: one run, a rule table, one result per finding with a
   physical location.  Output is accepted by GitHub code scanning. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rule_descriptions =
  [
    ("read-phase-write", "R1: no shared-memory writes in a read phase");
    ("unguarded-deref", "R2: validated dereferences require an active guard");
    ("phase-bracket", "R3: begin_op/end_op balanced on all exits");
    ("write-phase-read", "R4: plain field reads only on locked windows");
    ("atomic-make", "shared cells go through the runtime constructors");
    ("domain-dls", "Domain.DLS is a runtime-layer concern");
    ("obj-magic", "no Obj.magic in library code");
    ("pool-raw-index", "no raw cell addressing outside lib/pool");
    ("missing-mli", "library modules carry interfaces");
    ("parse", "sources must parse");
  ]

let to_string (findings : Findings.t list) =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add
    "  \"$schema\": \
     \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n";
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n    {\n";
  add "      \"tool\": {\n        \"driver\": {\n";
  add "          \"name\": \"nbr_lint\",\n";
  add "          \"informationUri\": \"DESIGN.md\",\n";
  add "          \"rules\": [\n";
  List.iteri
    (fun i (id, desc) ->
      add
        (Printf.sprintf
           "            {\"id\": \"%s\", \"shortDescription\": {\"text\": \
            \"%s\"}}%s\n"
           (escape id) (escape desc)
           (if i = List.length rule_descriptions - 1 then "" else ",")))
    rule_descriptions;
  add "          ]\n        }\n      },\n";
  add "      \"results\": [\n";
  let n = List.length findings in
  List.iteri
    (fun i (f : Findings.t) ->
      add "        {\n";
      add (Printf.sprintf "          \"ruleId\": \"%s\",\n" (escape f.rule));
      add "          \"level\": \"error\",\n";
      add
        (Printf.sprintf "          \"message\": {\"text\": \"%s\"},\n"
           (escape f.msg));
      add "          \"locations\": [\n            {\n";
      add "              \"physicalLocation\": {\n";
      add
        (Printf.sprintf
           "                \"artifactLocation\": {\"uri\": \"%s\"},\n"
           (escape f.file));
      add
        (Printf.sprintf
           "                \"region\": {\"startLine\": %d, \"startColumn\": \
            %d}\n"
           f.line (max 1 (f.col + 1)));
      add "              }\n            }\n          ]\n";
      add (Printf.sprintf "        }%s\n" (if i = n - 1 then "" else ","));
      ())
    findings;
  add "      ]\n    }\n  ]\n}\n";
  Buffer.contents buf

let write_file path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string findings))
