(** SARIF 2.1.0 emission for the static analysis — hand-rolled JSON (the
    toolchain carries no JSON dependency), accepted by GitHub code
    scanning (DESIGN.md §16). *)

val to_string : Findings.t list -> string
val write_file : string -> Findings.t list -> unit
