(* Per-function effect summaries: the interprocedural substrate of the
   R1–R4 rules (DESIGN.md §16).

   Every function in the analyzed file set gets two effect bitmasks:

   - [exposed] — the effects a *caller* observes.  Effects that run
     inside a phase-combinator lambda ([Smr.phase ~read ~write],
     [Smr.read_only], [Rt.checkpoint]) are masked out, because the
     combinator establishes the guard internally: calling a complete
     operation from plain code is effect-free from the protocol's point
     of view.  Helpers annotated [@@nbr.read_phase] /
     [@@nbr.write_phase] export their full effects — the annotation is
     a *requirement on the caller* to provide the guard.
   - [closure] — the unmasked transitive union, used by the R2 scheme
     checks (does [read_ptr]'s implementation validate liveness? does
     [phase] install a checkpoint?).

   Effects come from a curated table of protocol builtins (Smr / Pool /
   Rt / Atomic / Spinlock), keyed by a canonicalized module name; local
   aliases ([module P = Nbr_pool.Pool.Make (Rt)]) and functor
   parameters ([(Smr : Nbr_core.Smr_intf.S with ...)]) are resolved to
   those tables, other analyzed files are resolved to their computed
   summaries, and everything else is benign.  Thread-local mutation
   (refs, record fields, arrays) is benign by codebase convention:
   shared state only lives behind Rt cells, Atomics and the pool. *)

(* ------------------------------------------------------------------ *)
(* Effect bits *)

let shared_write = 1 (* Atomic.set / CAS / Rt stores / pool mutation *)
let lock = 2
let alloc = 4
let retire = 8
let free = 16
let validated = 32 (* validated dereference (read_ptr / read_data / ...) *)
let plain = 64 (* plain read of a shared cell: Rt.load / P.get_data *)
let poll = 128 (* neutralization poll *)
let begins = 256
let ends = 512
let phase = 1024 (* enters a read/write phase *)
let checkpoint = 2048
let validate = 4096 (* slot liveness / stamp validation *)
let raises = 8192 (* unconditionally diverges *)

let impure = shared_write lor lock lor alloc lor retire lor free

let pp_bits b =
  let names =
    [
      (shared_write, "shared-write");
      (lock, "lock");
      (alloc, "alloc");
      (retire, "retire");
      (free, "free");
      (validated, "validated-deref");
      (plain, "plain-deref");
      (poll, "poll");
      (begins, "begin_op");
      (ends, "end_op");
      (phase, "phase");
      (checkpoint, "checkpoint");
      (validate, "validate");
    ]
  in
  List.filter_map (fun (bit, n) -> if b land bit <> 0 then Some n else None) names
  |> String.concat "+"

type ann = Read_phase | Write_phase

type entry = {
  exposed : int;
  closure : int;
  ann : ann option;
  ent_loc : Location.t;
}

(* ------------------------------------------------------------------ *)
(* Builtin effect tables, keyed by canonical module name. *)

let smr_table = function
  | "begin_op" -> begins
  | "end_op" -> ends
  | "phase" | "read_only" -> phase
  | "read_root" | "read_ptr" | "read_raw" | "read_data" | "peek_ptr" ->
      validated
  | "alloc" -> alloc
  | "retire" -> retire
  | "on_pressure" | "collect_handoffs" | "hand_off" | "adopt_orphans"
  | "register" | "deregister" | "set_offload" | "create" ->
      shared_write
  | _ -> 0

let pool_table = function
  | "get_data" | "get_ptr" | "get_key" -> plain
  | "set_data" | "set_ptr" | "set_key" | "flush_thread" | "set_watermarks"
  | "set_generation_check" ->
      shared_write
  | "free" -> free lor shared_write
  | "alloc" -> alloc
  | "read_data" | "read_ptr" | "read_root" -> validated
  | "live" | "stamp" -> validate
  | _ -> 0

let rt_table = function
  | "load" | "plain_load" -> plain
  | "store" | "cas" | "faa" | "xchg" | "send_signal" | "set_restartable_t"
  | "drain_signals_t" ->
      shared_write
  | "poll_t" | "consume_pending_t" -> poll
  | "checkpoint" -> checkpoint
  | _ -> 0

let atomic_table = function
  | "set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr" | "decr"
    ->
      shared_write
  | _ -> 0

let lock_table = function
  | "lock" | "unlock" | "try_lock" -> lock lor shared_write
  | _ -> 0

let builtin_bits canon name =
  match canon with
  | "Smr" -> Some (smr_table name)
  | "Pool" -> Some (pool_table name)
  | "Rt" -> Some (rt_table name)
  | "Atomic" -> Some (atomic_table name)
  | "Lock" -> Some (lock_table name)
  | _ -> None

(* Instrumentation modules whose computed summaries must not leak
   effects into client code: counters and trace rings are benign by
   design even where they CAS. *)
let benign_modules = [ "Smr_stats"; "Trace"; "Smr_config" ]

(* Canonical name for the last segment of a module path (after
   dropping functor applications). *)
let canon_of_segment = function
  | "Pool" -> Some "Pool"
  | "Runtime_intf" | "Sim_rt" | "Native_rt" -> Some "Rt"
  | "Smr_intf" -> Some "Smr"
  | "Spinlock" -> Some "Lock"
  | "Atomic" -> Some "Atomic"
  | _ -> None

(* Fallback for module names we cannot resolve structurally, e.g.
   [let module Smr = S.Make (Rt)] where [S] is a first-class scheme
   module from the registry: bind by conventional name. *)
let canon_by_convention = function
  | "Smr" -> Some "Smr"
  | "Rt" -> Some "Rt"
  | "P" -> Some "Pool"
  | "Lock" -> Some "Lock"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Resolution environment *)

type target =
  | Builtin of string  (** canonical builtin-table name *)
  | File of string  (** module name of another analyzed file *)
  | Benign

type info = {
  path : string;
  modname : string;
  structure : Parsetree.structure;
  locals : (string, target) Hashtbl.t;
      (** module aliases + functor params; supports shadowing *)
  fns : (string, entry) Hashtbl.t;
      (** flat table of every binding in the file, incl. local lets *)
  mutable includes : string list;
  mutable scheme : string option;  (** [scheme_name] literal, if any *)
  mutable verb_defs : string list;
      (** protocol verbs the file defines (identifies SMR impls) *)
}

type t = { infos : info list; by_mod : (string, info) Hashtbl.t }

let protocol_verbs =
  [ "begin_op"; "end_op"; "phase"; "read_only"; "read_ptr"; "read_data";
    "alloc"; "retire" ]

let flatten_longident l = Longident.flatten l

(* Innermost module path of a module expression: peels functors,
   applications, constraints. *)
let rec mod_path (m : Parsetree.module_expr) =
  match m.pmod_desc with
  | Pmod_ident { txt; _ } -> Some (flatten_longident txt)
  | Pmod_apply (f, _) -> mod_path f
  | Pmod_constraint (m, _) -> mod_path m
  | _ -> None

let drop_makes segs =
  List.filter (fun s -> s <> "Make" && s <> "Make2") segs

let is_benign_mod m = List.mem m benign_modules

(* Resolve a module-path's last meaningful segment to a target. *)
let target_of_segments (t : t) ?(local : (string, target) Hashtbl.t option)
    segs =
  match List.rev (drop_makes segs) with
  | [] -> Benign
  | last :: _ -> (
      let local_hit =
        match local with
        | Some tbl -> Hashtbl.find_opt tbl last
        | None -> None
      in
      match local_hit with
      | Some tgt -> tgt
      | None -> (
          match canon_of_segment last with
          | Some c -> Builtin c
          | None ->
              if is_benign_mod last then Benign
              else if Hashtbl.mem t.by_mod last then File last
              else
                (match canon_by_convention last with
                | Some c -> Builtin c
                | None -> Benign)))

(* Target for a functor-parameter signature path: drop the trailing
   signature name ("S", "S_gen", ...) then canonicalize. *)
let target_of_sigpath (t : t) segs =
  match List.rev segs with
  | _sig :: rest -> target_of_segments t (List.rev rest)
  | [] -> Benign

let rec target_of_modtype (t : t) (mty : Parsetree.module_type) =
  match mty.pmty_desc with
  | Pmty_ident { txt; _ } -> target_of_sigpath t (flatten_longident txt)
  | Pmty_with (m, _) -> target_of_modtype t m
  | _ -> Benign

let target_of_modexpr (t : t) (info : info) (m : Parsetree.module_expr) =
  match mod_path m with
  | Some segs -> target_of_segments t ~local:info.locals segs
  | None -> Benign

(* ------------------------------------------------------------------ *)
(* Call resolution *)

type resolution =
  | R_bits of int  (** builtin / benign: exposed = closure *)
  | R_entry of entry  (** a summarized function *)
  | R_raise

let raise_like = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let lookup_fn (t : t) (info : info) name =
  match Hashtbl.find_opt info.fns name with
  | Some e -> Some e
  | None ->
      List.find_map
        (fun m ->
          match Hashtbl.find_opt t.by_mod m with
          | Some i -> Hashtbl.find_opt i.fns name
          | None -> None)
        info.includes

let resolve_ident (t : t) (info : info) (lid : Longident.t) : resolution =
  let segs = flatten_longident lid in
  match List.rev segs with
  | [] -> R_bits 0
  | name :: rev_mods -> (
      let mods = List.rev rev_mods in
      if mods = [] then
        if List.mem name raise_like then R_raise
        else
          match lookup_fn t info name with
          | Some e -> R_entry e
          | None -> R_bits 0
      else
        match target_of_segments t ~local:info.locals mods with
        | Builtin c -> (
            match builtin_bits c name with
            | Some b -> R_bits b
            | None -> R_bits 0)
        | File m -> (
            match Hashtbl.find_opt t.by_mod m with
            | Some i -> (
                match Hashtbl.find_opt i.fns name with
                | Some e -> R_entry e
                | None -> R_bits 0)
            | None -> R_bits 0)
        | Benign -> R_bits 0)

(* Effects a call site observes (exposed, closure, callee annotation). *)
let call_effect (t : t) (info : info) (e : Parsetree.expression) :
    (int * int * ann option) option =
  match e.Parsetree.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match resolve_ident t info txt with
      | R_bits b -> Some (b, b, None)
      | R_entry en -> Some (en.exposed, en.closure, en.ann)
      | R_raise -> Some (raises, raises, None))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Walking: compute (exposed, closure) of an expression. *)

let ann_of_attrs (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.Location.txt with
      | "nbr.read_phase" -> Some Read_phase
      | "nbr.write_phase" -> Some Write_phase
      | _ -> None)
    attrs

let rec is_function (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> is_function e
  | _ -> false

(* Peel the parameter chain off a function literal, returning the body
   (the [Pexp_function] case-list form keeps its cases as "body"
   handled by the effect walker). *)
let rec peel_fun (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_fun body
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> peel_fun e
  | _ -> e

(* Structure-level [module Smr = Nbr_core.Nbr_plus.Make (Sim)]: resolve
   structurally, then fall back to the bound-name convention — scheme
   functors are not in the canonical-segment table, but a module *named*
   Smr/Rt/P/Lock is filling the codebase's conventional role. *)
let str_module_target t info ~name segs =
  match target_of_segments t ~local:info.locals segs with
  | Benign -> (
      match canon_by_convention name with
      | Some c -> Builtin c
      | None -> Benign)
  | tgt -> tgt

let rec effects_of (t : t) (info : info) (e : Parsetree.expression) : int * int
    =
  let open Parsetree in
  let join (a, b) (c, d) = (a lor c, b lor d) in
  let seq es = List.fold_left (fun acc x -> join acc (effects_of t info x)) (0, 0) es in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      (* Eta-reduced aliases ([let read_ptr = B.read_ptr]) and callbacks
         passed by name carry the referent's effects. *)
      match resolve_ident t info txt with
      | R_entry en -> (en.exposed, en.closure)
      | R_bits b -> (b, b)
      | R_raise -> (0, 0))
  | Pexp_apply (({ pexp_desc = Pexp_ident _; _ } as _f), args) -> (
      match call_effect t info e with
      | Some (ce, cc, _ann) ->
          let mask_lambdas = ce land (phase lor checkpoint) <> 0 in
          List.fold_left
            (fun acc (_, a) ->
              let ae, ac = effects_of t info a in
              let ae = if mask_lambdas && is_function a then 0 else ae in
              join acc (ae, ac))
            (ce, cc) args
      | None -> seq (List.map snd args))
  | Pexp_apply (f, args) -> seq (f :: List.map snd args)
  | Pexp_fun (_, default, _, body) ->
      let d = match default with Some d -> effects_of t info d | None -> (0, 0) in
      join d (effects_of t info body)
  | Pexp_function cases -> cases_effects t info cases
  | Pexp_let (_, vbs, body) ->
      let acc =
        List.fold_left
          (fun acc vb ->
            if is_function vb.pvb_expr then begin
              (* Local function: summarized under its own name, effects
                 observed at its call sites. *)
              record_binding t info vb;
              acc
            end
            else join acc (effects_of t info vb.pvb_expr))
          (0, 0) vbs
      in
      join acc (effects_of t info body)
  | Pexp_letmodule ({ txt = Some name; _ }, mexpr, body) ->
      let tgt = target_of_modexpr t info mexpr in
      let tgt =
        match tgt with
        | Benign -> (
            match canon_by_convention name with
            | Some c -> Builtin c
            | None -> Benign)
        | _ -> tgt
      in
      Hashtbl.add info.locals name tgt;
      walk_module_bindings t info mexpr;
      let r = effects_of t info body in
      Hashtbl.remove info.locals name;
      r
  | Pexp_letmodule ({ txt = None; _ }, mexpr, body) ->
      walk_module_bindings t info mexpr;
      effects_of t info body
  | Pexp_sequence (a, b) -> join (effects_of t info a) (effects_of t info b)
  | Pexp_ifthenelse (c, th, el) ->
      let acc = join (effects_of t info c) (effects_of t info th) in
      (match el with Some e -> join acc (effects_of t info e) | None -> acc)
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
      join (effects_of t info s) (cases_effects t info cases)
  | Pexp_while (c, b) -> join (effects_of t info c) (effects_of t info b)
  | Pexp_for (_, a, b, _, body) ->
      join (join (effects_of t info a) (effects_of t info b))
        (effects_of t info body)
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> effects_of t info a
  | Pexp_tuple es | Pexp_array es -> seq es
  | Pexp_record (fields, base) ->
      let acc = match base with Some b -> effects_of t info b | None -> (0, 0) in
      List.fold_left (fun acc (_, x) -> join acc (effects_of t info x)) acc fields
  | Pexp_field (a, _) -> effects_of t info a
  | Pexp_setfield (a, _, b) ->
      (* Record-field mutation is thread-local by codebase convention. *)
      join (effects_of t info a) (effects_of t info b)
  | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) | Pexp_newtype (_, a)
  | Pexp_open (_, a) | Pexp_lazy a | Pexp_assert a | Pexp_letexception (_, a)
    ->
      effects_of t info a
  | _ -> (0, 0)

and cases_effects t info cases =
  List.fold_left
    (fun acc (c : Parsetree.case) ->
      let acc =
        match c.pc_guard with
        | Some g ->
            let a, b = effects_of t info g in
            (fst acc lor a, snd acc lor b)
        | None -> acc
      in
      let a, b = effects_of t info c.pc_rhs in
      (fst acc lor a, snd acc lor b))
    (0, 0) cases

and record_binding t info (vb : Parsetree.value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = name; _ }
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt = name; _ }; _ }, _) ->
      let ann = ann_of_attrs vb.pvb_attributes in
      let body = peel_fun vb.pvb_expr in
      let exposed, closure = effects_of t info body in
      (* Unannotated functions mask phase-internal effects (done by the
         walker); annotated helpers export everything — the caller owes
         them the guard. *)
      let exposed = if ann <> None then closure else exposed in
      Hashtbl.replace info.fns name
        { exposed; closure; ann; ent_loc = vb.pvb_loc }
  | _ -> ()

and walk_module_bindings t info (m : Parsetree.module_expr) =
  match m.pmod_desc with
  | Pmod_structure items -> walk_structure t info items
  | Pmod_functor (param, body) ->
      (match param with
      | Named ({ txt = Some name; _ }, mty) ->
          Hashtbl.add info.locals name (target_of_modtype t mty)
      | _ -> ());
      walk_module_bindings t info body
  | Pmod_constraint (m, _) -> walk_module_bindings t info m
  | _ -> ()

and walk_structure t info (items : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              (* Track scheme_name and protocol-verb definitions for
                 file classification. *)
              (match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } ->
                  (if name = "scheme_name" then
                     match (peel_fun vb.pvb_expr).pexp_desc with
                     | Pexp_constant (Pconst_string (s, _, _)) ->
                         info.scheme <- Some s
                     | _ -> ());
                  if
                    List.mem name protocol_verbs
                    && not (List.mem name info.verb_defs)
                  then info.verb_defs <- name :: info.verb_defs
              | _ -> ());
              if is_function vb.pvb_expr then record_binding t info vb
              else begin
                record_binding t info vb;
                ignore (effects_of t info vb.pvb_expr)
              end)
            vbs
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_structure _ | Pmod_functor _ | Pmod_constraint _ ->
              (match mod_path pmb_expr with
              | Some segs ->
                  Hashtbl.replace info.locals name
                    (str_module_target t info ~name segs)
              | None -> ());
              walk_module_bindings t info pmb_expr
          | _ -> (
              match mod_path pmb_expr with
              | Some segs ->
                  Hashtbl.replace info.locals name
                    (str_module_target t info ~name segs)
              | None -> ()))
      | Pstr_include { pincl_mod; _ } -> (
          match mod_path pincl_mod with
          | Some segs -> (
              match target_of_segments t ~local:info.locals segs with
              | File m ->
                  if not (List.mem m info.includes) then
                    info.includes <- m :: info.includes
              | _ -> ())
          | None -> ())
      | _ -> ())
    items

(* ------------------------------------------------------------------ *)
(* Whole-set analysis: iterate until the cross-file summaries are
   stable (bounded — effects only grow). *)

let modname_of_path p =
  Filename.basename p |> Filename.remove_extension |> String.capitalize_ascii

let build (files : (string * Parsetree.structure) list) : t =
  let infos =
    List.map
      (fun (path, structure) ->
        {
          path;
          modname = modname_of_path path;
          structure;
          locals = Hashtbl.create 16;
          fns = Hashtbl.create 64;
          includes = [];
          scheme = None;
          verb_defs = [];
        })
      files
  in
  let by_mod = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace by_mod i.modname i) infos;
  let t = { infos; by_mod } in
  let snapshot () =
    List.map
      (fun i ->
        Hashtbl.fold (fun k e acc -> (k, e.exposed, e.closure) :: acc) i.fns [])
      infos
  in
  let prev = ref [] in
  let pass = ref 0 in
  let continue_ = ref true in
  while !continue_ && !pass < 5 do
    incr pass;
    List.iter
      (fun i ->
        Hashtbl.reset i.locals;
        i.includes <- [];
        walk_structure t i i.structure)
      infos;
    let s = snapshot () in
    if s = !prev then continue_ := false else prev := s
  done;
  t

let is_smr_impl (i : info) =
  i.scheme <> None || List.length i.verb_defs >= 3
