(** Per-function effect summaries — the interprocedural substrate of
    the R1–R4 phase-discipline rules (DESIGN.md §16).

    Each function gets two effect bitmasks: [exposed] (what a caller
    observes; effects inside phase-combinator lambdas are masked
    because the combinator provides the guard) and [closure] (the
    unmasked transitive union, used by the per-scheme R2 checks).
    Protocol builtins (Smr / Pool / Rt / Atomic / Spinlock) come from a
    curated table; module aliases, functor parameters and first-class
    module unpacks are resolved to it; other analyzed files resolve to
    their computed summaries; everything else is benign. *)

(** {1 Effect bits} *)

val shared_write : int
val lock : int
val alloc : int
val retire : int
val free : int
val validated : int
val plain : int
val poll : int
val begins : int
val ends : int
val phase : int
val checkpoint : int
val validate : int
val raises : int

val impure : int
(** The read-phase-purity mask: shared writes, locking, allocation,
    retirement, frees. *)

val pp_bits : int -> string
(** Human-readable ["a+b+c"] rendering of a mask, for messages. *)

type ann = Read_phase | Write_phase

type entry = {
  exposed : int;
  closure : int;
  ann : ann option;
  ent_loc : Location.t;
}

type target = Builtin of string | File of string | Benign

type info = {
  path : string;
  modname : string;
  structure : Parsetree.structure;
  locals : (string, target) Hashtbl.t;
  fns : (string, entry) Hashtbl.t;
  mutable includes : string list;
  mutable scheme : string option;
  mutable verb_defs : string list;
}

type t = { infos : info list; by_mod : (string, info) Hashtbl.t }

val build : (string * Parsetree.structure) list -> t
(** Compute summaries for a set of parsed files, iterating the
    cross-file fixpoint to stability. *)

val call_effect :
  t -> info -> Parsetree.expression -> (int * int * ann option) option
(** [(exposed, closure, callee annotation)] for an application node
    whose head is an identifier; [None] for anything else. *)

val ann_of_attrs : Parsetree.attributes -> ann option
val is_function : Parsetree.expression -> bool
val peel_fun : Parsetree.expression -> Parsetree.expression

val is_smr_impl : info -> bool
(** Files that implement the SMR protocol (define [scheme_name] or
    several protocol verbs) are checked by the per-scheme R2 rules
    instead of the client-side rules. *)

val lookup_fn : t -> info -> string -> entry option
(** Resolve a bare function name in [info]'s scope (local table, then
    includes). *)
