(* See certificate.mli.  The decision array is the payload; everything
   else is provenance that lets a replayer reconstruct the simulator
   configuration the schedule was found under.  Encoding is a single
   human-readable line so certificates can be pasted into test sources,
   bug reports and CI logs. *)

type t = {
  c_strategy : string;
  c_nthreads : int;
  c_cores : int;
  c_granularity : int;
  c_seed : int;
  c_decisions : int array;
}

let magic = "nbr-cert/1"

(* Run-length encoding: "4x0,1,3x2" = [|0;0;0;0;1;2;2;2|].  Decision
   sequences are dominated by long runs of the default choice (index of
   the fiber that ran last), so this keeps even thousand-step schedules
   to a few dozen bytes. *)
let encode_decisions d =
  let b = Buffer.create 64 in
  let n = Array.length d in
  let i = ref 0 in
  while !i < n do
    let v = d.(!i) in
    let j = ref !i in
    while !j < n && d.(!j) = v do
      incr j
    done;
    if Buffer.length b > 0 then Buffer.add_char b ',';
    let run = !j - !i in
    if run > 1 then Buffer.add_string b (Printf.sprintf "%dx%d" run v)
    else Buffer.add_string b (string_of_int v);
    i := !j
  done;
  Buffer.contents b

let bad s = invalid_arg ("Certificate.of_string: malformed certificate: " ^ s)

let decode_decisions s =
  if s = "" then [||]
  else begin
    let out = ref [] in
    let total = ref 0 in
    List.iter
      (fun tok ->
        let run, v =
          match String.index_opt tok 'x' with
          | None -> (1, int_of_string tok)
          | Some i ->
              ( int_of_string (String.sub tok 0 i),
                int_of_string (String.sub tok (i + 1) (String.length tok - i - 1))
              )
        in
        if run < 1 then bad s;
        out := (run, v) :: !out;
        total := !total + run)
      (String.split_on_char ',' s);
    let a = Array.make !total 0 in
    let i = ref !total in
    List.iter
      (fun (run, v) ->
        for _ = 1 to run do
          decr i;
          a.(!i) <- v
        done)
      !out;
    a
  end

let to_string t =
  Printf.sprintf "%s;%s;%d;%d;%d;%d;%s" magic t.c_strategy t.c_nthreads
    t.c_cores t.c_granularity t.c_seed
    (encode_decisions t.c_decisions)

let of_string s =
  match String.split_on_char ';' (String.trim s) with
  | [ m; strategy; nthreads; cores; granularity; seed; decisions ]
    when m = magic -> (
      try
        {
          c_strategy = strategy;
          c_nthreads = int_of_string nthreads;
          c_cores = int_of_string cores;
          c_granularity = int_of_string granularity;
          c_seed = int_of_string seed;
          c_decisions = decode_decisions decisions;
        }
      with Failure _ -> bad s)
  | _ -> bad s

let equal a b =
  a.c_strategy = b.c_strategy
  && a.c_nthreads = b.c_nthreads
  && a.c_cores = b.c_cores
  && a.c_granularity = b.c_granularity
  && a.c_seed = b.c_seed
  && a.c_decisions = b.c_decisions
