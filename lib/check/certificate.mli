(** Replayable schedule certificates.

    Under the simulator's pluggable schedule controller
    ({!Nbr_runtime.Sim_rt.set_schedule_controller}) an execution is a
    pure function of its decision sequence: at step [k] the controller is
    shown the unfinished fibers (sorted by id) and picks an index, and
    the runnable set at step [k+1] is determined by the first [k] picks.
    A certificate is that decision sequence plus the simulator
    provenance needed to reconstruct the run — thread count, simulated
    cores, scheduling granularity and jitter seed.

    The string form is a single line, safe to embed in test sources and
    CI logs:

    {v nbr-cert/1;dfs;2;2;1;24397;41x0,1,57x1,14x0 v}

    [Explore.replay] feeds the decisions back through a controller and
    reproduces the violating execution deterministically. *)

type t = {
  c_strategy : string;
      (** which search produced it ("dfs", "pct", ...); informational *)
  c_nthreads : int;
  c_cores : int;  (** simulated cores ([Sim_rt.config.cores]) *)
  c_granularity : int;  (** scheduling granularity at discovery time *)
  c_seed : int;  (** simulator jitter seed at discovery time *)
  c_decisions : int array;
      (** index into the id-sorted unfinished-fiber array, per step *)
}

val to_string : t -> string
(** One-line encoding; decisions are run-length encoded. *)

val of_string : string -> t
(** Inverse of {!to_string} (leading/trailing whitespace tolerated).
    Raises [Invalid_argument] on malformed input. *)

val equal : t -> t -> bool
