(* See explore.mli.  Both searches drive the simulator through
   Sim_rt.set_schedule_controller and reduce every schedule to its
   decision-index sequence, which is what makes a violation found by any
   strategy replayable by the same [replay] function. *)

module Sim = Nbr_runtime.Sim_rt

type report = {
  r_schedules : int;
  r_violation : (string * Certificate.t) option;
}

let mk_cert ~strategy ~nthreads decisions =
  let c = Sim.get_config () in
  {
    Certificate.c_strategy = strategy;
    c_nthreads = nthreads;
    c_cores = c.Sim.cores;
    c_granularity = c.Sim.granularity;
    c_seed = c.Sim.seed;
    c_decisions = decisions;
  }

(* Install [pick] around one execution of [run].  The controller is
   process-global simulator state, so it must never leak past the
   schedule it was built for. *)
let with_controller pick run =
  Sim.set_schedule_controller (Some pick);
  Fun.protect ~finally:(fun () -> Sim.set_schedule_controller None) run

(* The uncontrolled scheduler continues the running fiber until it
   yields; the controlled default mirrors that — continue the fiber that
   ran last if it is still unfinished, else fall back to the lowest id.
   Defaults cost no preemption, so a schedule's preemption count is the
   number of non-default decisions in it. *)
let default_idx ~last ~(runnable : int array) =
  let d = ref 0 in
  Array.iteri (fun i id -> if id = last then d := i) runnable;
  !d

(* ------------------------------------------------------------------ *)
(* Bounded exhaustive DFS (stateless model checking with a preemption
   bound).  The search state is one schedule prefix, held in four
   parallel vectors (one entry per decision level):

     chosen    the decision replayed at this level
     dflt      the default index computed when the level was first hit
     width     |runnable| at this level
     next_alt  next alternative index to try on backtrack; [width] when
               exhausted (or when the preemption budget barred branching)

   Each iteration re-executes from scratch, replaying [chosen] for the
   prefix and extending with defaults beyond it (recording alternatives
   as it goes), then backtracks to the deepest level with an untried
   alternative.  Re-execution is sound because the simulator is a pure
   function of the decision sequence. *)

module Vec = Nbr_sync.Int_vec

(* Advance [c] to the next alternative at a level, skipping the default
   (the default was the original choice, not an alternative). *)
let rec next_alt_from ~dflt ~width c =
  if c >= width then width
  else if c = dflt then next_alt_from ~dflt ~width (c + 1)
  else c

let dfs ?(preemption_bound = 2) ?(max_schedules = 5000) ~nthreads ~run () =
  let chosen = Vec.create () in
  let dflt = Vec.create () in
  let width = Vec.create () in
  let next_alt = Vec.create () in
  let truncate v n =
    while Vec.length v > n do
      ignore (Vec.pop v)
    done
  in
  let schedules = ref 0 in
  let violation = ref None in
  let exhausted = ref false in
  while !violation = None && (not !exhausted) && !schedules < max_schedules do
    incr schedules;
    let prefix = Vec.length chosen in
    let preempts = ref 0 in
    for i = 0 to prefix - 1 do
      if Vec.get chosen i <> Vec.get dflt i then incr preempts
    done;
    let step = ref 0 in
    let pick ~last ~runnable =
      let s = !step in
      incr step;
      if s < prefix then Vec.get chosen s
      else begin
        let d = default_idx ~last ~runnable in
        let k = Array.length runnable in
        Vec.push chosen d;
        Vec.push dflt d;
        Vec.push width k;
        (* Branch here later only while the preemption budget holds. *)
        let first_alt =
          if !preempts < preemption_bound && k > 1 then
            next_alt_from ~dflt:d ~width:k 0
          else k
        in
        Vec.push next_alt first_alt;
        d
      end
    in
    (match with_controller pick run with
    | None -> ()
    | Some msg ->
        violation :=
          Some
            ( msg,
              mk_cert ~strategy:"dfs" ~nthreads
                (Array.init (Vec.length chosen) (Vec.get chosen)) ));
    if !violation = None then begin
      (* Backtrack: deepest level with an untried alternative. *)
      let lvl = ref (Vec.length chosen - 1) in
      let found = ref false in
      while (not !found) && !lvl >= 0 do
        let d = Vec.get dflt !lvl and k = Vec.get width !lvl in
        let c = next_alt_from ~dflt:d ~width:k (Vec.get next_alt !lvl) in
        if c < k then begin
          found := true;
          truncate chosen !lvl;
          truncate dflt (!lvl + 1);
          truncate width (!lvl + 1);
          truncate next_alt (!lvl + 1);
          Vec.push chosen c;
          (* [chosen] now diverges from the default at [lvl]: one
             preemption, consumed from the budget on the next replay. *)
          ignore (Vec.pop next_alt);
          Vec.push next_alt (c + 1)
        end
        else decr lvl
      done;
      if not !found then exhausted := true
    end
  done;
  { r_schedules = !schedules; r_violation = !violation }

(* ------------------------------------------------------------------ *)
(* PCT-style randomized swarm (Burckhardt et al., ASPLOS'10).  Each
   schedule draws random per-fiber priorities and [depth - 1] change
   points over a step horizon; at every step the highest-priority
   runnable fiber runs, and at a change point the current leader is
   demoted below everyone.  A single schedule finds any bug of depth d
   with probability >= 1/(n * horizon^(d-1)); the swarm runs many seeds.
   Decisions are recorded as plain indices, so a PCT discovery replays
   through the same certificate machinery as a DFS one.  *)

let pct_pick ~rng ~nthreads ~depth ~horizon =
  let prio = Array.init nthreads (fun _ -> Nbr_sync.Rng.below rng 1_000_000) in
  let change = Array.init (max 0 (depth - 1)) (fun _ -> Nbr_sync.Rng.below rng horizon) in
  let floor = ref (-1) in
  let step = ref 0 in
  fun ~last:_ ~(runnable : int array) ->
    let s = !step in
    incr step;
    let leader () =
      let best = ref 0 in
      Array.iteri
        (fun i id -> if prio.(id) > prio.(runnable.(!best)) then best := i)
        runnable;
      !best
    in
    if Array.exists (fun c -> c = s) change then begin
      let l = runnable.(leader ()) in
      prio.(l) <- !floor;
      decr floor
    end;
    leader ()

let pct ?(depth = 3) ?(horizon = 2000) ?(schedules = 32) ?(seed = 1) ~nthreads
    ~run () =
  let schedules_run = ref 0 in
  let violation = ref None in
  let s = ref 0 in
  while !violation = None && !s < schedules do
    let rng = Nbr_sync.Rng.for_thread ~seed ~tid:!s in
    let trace = Vec.create () in
    let inner = pct_pick ~rng ~nthreads ~depth ~horizon in
    let pick ~last ~runnable =
      let i = inner ~last ~runnable in
      Vec.push trace i;
      i
    in
    incr schedules_run;
    (match with_controller pick run with
    | None -> ()
    | Some msg ->
        violation :=
          Some
            ( msg,
              mk_cert ~strategy:"pct" ~nthreads
                (Array.init (Vec.length trace) (Vec.get trace)) ));
    incr s
  done;
  { r_schedules = !schedules_run; r_violation = !violation }

(* ------------------------------------------------------------------ *)

let replay (cert : Certificate.t) ~run =
  let d = cert.Certificate.c_decisions in
  let n = Array.length d in
  let step = ref 0 in
  let pick ~last ~runnable =
    let s = !step in
    incr step;
    if s < n then d.(s) else default_idx ~last ~runnable
  in
  with_controller pick run
