(** Schedule exploration for the deterministic simulator.

    Every entry point drives one scenario thunk [run] repeatedly, each
    time under a different schedule imposed through
    {!Nbr_runtime.Sim_rt.set_schedule_controller}.  The thunk owns the
    whole trial: it configures the simulator ([Sim_rt.set_config]),
    builds pool/scheme/structure, calls [Sim_rt.run], and returns
    [Some description] if the execution violated a property (typically a
    {!Sanitizer} finding) or [None] if it was clean.  It must be
    self-contained and deterministic given a schedule: exploration
    re-executes it from scratch once per schedule.

    A found violation comes with a {!Certificate.t}; {!replay} feeds the
    certificate's decisions back and deterministically reproduces the
    same execution — the property the negative tests assert
    byte-for-byte.

    Simulator-only: controllers hook the single-domain discrete-event
    scheduler, so none of this applies to the native runtime. *)

type report = {
  r_schedules : int;  (** schedules actually executed *)
  r_violation : (string * Certificate.t) option;
      (** first violation found: the thunk's description plus the
          replayable schedule; [None] if every schedule was clean *)
}

val dfs :
  ?preemption_bound:int ->
  ?max_schedules:int ->
  nthreads:int ->
  run:(unit -> string option) ->
  unit ->
  report
(** Bounded exhaustive search: enumerate decision sequences by
    depth-first backtracking, branching to a non-default fiber only
    while the schedule's preemption count stays within
    [preemption_bound] (default 2 — most concurrency bugs need very few
    preemptions).  Defaults continue the previously-running fiber, so
    the first schedule is the sequential one.  Stops at the first
    violation, at exhaustion of the bounded space, or after
    [max_schedules] (default 5000) executions.  Intended for tiny
    scripted scenarios; state explosion makes it unsuitable for whole
    trials. *)

val pct :
  ?depth:int ->
  ?horizon:int ->
  ?schedules:int ->
  ?seed:int ->
  nthreads:int ->
  run:(unit -> string option) ->
  unit ->
  report
(** Randomized swarm in the style of PCT (probabilistic concurrency
    testing): each schedule draws per-fiber priorities and [depth - 1]
    priority-demotion points over a [horizon] of steps from a seeded
    generator, then always runs the highest-priority runnable fiber.
    Runs [schedules] independent schedules (seeds [seed], [seed]+1, ...)
    and stops at the first violation.  Scales to full trials, at the
    price of probabilistic rather than exhaustive coverage. *)

val replay : Certificate.t -> run:(unit -> string option) -> string option
(** Re-execute [run] under the certificate's decision sequence,
    returning the thunk's own verdict.  Decisions past the recorded
    sequence (possible when the scenario diverges, e.g. replaying a
    violation certificate against fixed code) fall back to the default
    continue-last choice. *)
