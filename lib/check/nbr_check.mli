(** Analysis suite for the NBR reproduction (DESIGN.md §11).

    Three tools over the deterministic simulator:

    - {!Explore} — schedule exploration: bounded-exhaustive DFS with a
      preemption bound for tiny scripted scenarios, PCT-style randomized
      swarm for whole trials;
    - {!Certificate} — compact replayable schedule certificates, the
      currency between a search that found a violation and the
      regression test that re-runs it deterministically;
    - {!Sanitizer} — an online protocol checker subscribed to the trace
      stream, flagging use-after-free accesses, unguarded reads,
      incomplete writers' handshakes, unbalanced operations and
      garbage-bound violations as they happen.

    The source-level companion lives in {!Nbr_analysis} (driven by
    [bin/nbr_lint.ml] / [dune build @lint]): the two attack the same
    protocol from opposite ends — the sanitizer observes one executed
    schedule, the static rules over-approximate all of them.  See
    DESIGN.md §16 for the cross-validation story. *)

module Certificate = Certificate
module Explore = Explore
module Sanitizer = Sanitizer
