(* See sanitizer.mli.  One online checker subscribed to the trace
   stream.  All state is plain (the simulator delivers events
   synchronously from a single domain); the checker never emits events
   itself, so re-entrancy is not a concern. *)

module Trace = Nbr_obs.Trace

type family = Neutralization | Epoch | Interval | Hazard | Unsafe

let family_of_scheme = function
  | "nbr" | "nbr+" -> Neutralization
  | "debra" | "qsbr" | "rcu" -> Epoch
  | "ibr" | "he" -> Interval
  | "hp" -> Hazard
  | "none" | "unsafe-free" -> Unsafe
  | s -> invalid_arg ("Sanitizer.family_of_scheme: unknown scheme " ^ s)

let family_name = function
  | Neutralization -> "neutralization"
  | Epoch -> "epoch"
  | Interval -> "interval"
  | Hazard -> "hazard"
  | Unsafe -> "unsafe"

type config = { family : family; nthreads : int; garbage_bound : int option }

type violation = {
  v_rule : string;
  v_tid : int;
  v_ns : int;
  v_detail : string;
  v_context : string list;
}

(* Slot lifecycle model, rebuilt from Alloc_slot/Retire/Free_slot.
   Slots never seen in an Alloc_slot (e.g. allocated during pre-run
   prefill, which emits outside any fiber) stay unknown and are never
   flagged. *)
type slot_state = Live | Retired | Freed

let context_depth = 16
let max_recorded = 200

type t = {
  cfg : config;
  slots : (int, slot_state) Hashtbl.t;
  mutable retired_count : int;  (** retired, not yet freed *)
  mutable garbage_latched : bool;
  in_op : bool array;
  in_scope : bool array;  (** Checkpoint_set .. Reservation_publish *)
  handed : bool array;
      (** tid was handed foreign garbage at least once (orphan parcel or
          reclaimer handoff) — the only licence for an async sweep *)
  pending_sig : bool array array;  (** [sender].[victim] *)
  accessed_after : bool array array;
      (** victim performed a guarded access after [sender]'s still
          unobserved signal *)
  ring : string array;  (** last [context_depth] events, formatted *)
  mutable ring_next : int;
  mutable viols : violation list;  (** newest first *)
  mutable nviols : int;
}

let fmt_event (e : Trace.event) =
  Printf.sprintf "%d t%d %s a=%d b=%d" e.Trace.e_ns e.e_tid
    (Trace.kind_name e.e_kind) e.e_a e.e_b

let context t =
  let n = min t.ring_next context_depth in
  List.init n (fun i ->
      t.ring.((t.ring_next - n + i) mod context_depth))

let record t ~rule ~tid ~ns detail =
  t.nviols <- t.nviols + 1;
  if t.nviols <= max_recorded then
    t.viols <-
      { v_rule = rule; v_tid = tid; v_ns = ns; v_detail = detail;
        v_context = context t }
      :: t.viols

let slot_state t s = Hashtbl.find_opt t.slots s

let on_event t (e : Trace.event) =
  let tid = e.Trace.e_tid and ns = e.e_ns in
  let in_range i = i >= 0 && i < t.cfg.nthreads in
  t.ring.(t.ring_next mod context_depth) <- fmt_event e;
  t.ring_next <- t.ring_next + 1;
  match e.e_kind with
  | Trace.Alloc_slot -> Hashtbl.replace t.slots e.e_a Live
  | Trace.Retire ->
      (match slot_state t e.e_a with
      | Some Retired -> () (* pool dedups, but stay robust *)
      | _ ->
          Hashtbl.replace t.slots e.e_a Retired;
          t.retired_count <- t.retired_count + 1);
      (match t.cfg.garbage_bound with
      | Some b when t.retired_count > b && not t.garbage_latched ->
          t.garbage_latched <- true;
          record t ~rule:"garbage_bound" ~tid ~ns
            (Printf.sprintf "%d records retired-unreclaimed, bound %d"
               t.retired_count b)
      | _ -> ())
  | Trace.Free_slot ->
      (match slot_state t e.e_a with
      | Some Retired -> t.retired_count <- t.retired_count - 1
      | _ -> ());
      Hashtbl.replace t.slots e.e_a Freed
  | Trace.Access ->
      (* Keys are generational handles, so the lifecycle table is
         generation-aware by construction: a recycled slot's new
         incarnation is a different key, and an access through the old
         handle still finds the Freed entry — no seqno heuristics. *)
      (if slot_state t e.e_a = Some Freed then
         record t ~rule:"uaf_access" ~tid ~ns
           (Printf.sprintf "guarded read through stale handle %d (record freed)"
              e.e_a));
      (if
         t.cfg.family = Neutralization
         && in_range tid
         && t.in_op.(tid)
         && not t.in_scope.(tid)
       then
         record t ~rule:"unguarded_access" ~tid ~ns
           (Printf.sprintf
              "read of slot %d outside a checkpointed read phase" e.e_a));
      if in_range tid then
        for s = 0 to t.cfg.nthreads - 1 do
          if t.pending_sig.(s).(tid) then t.accessed_after.(s).(tid) <- true
        done
  | Trace.Begin_op ->
      if in_range tid then begin
        if t.in_op.(tid) then
          record t ~rule:"unbalanced_op" ~tid ~ns
            "begin_op while already inside an operation";
        t.in_op.(tid) <- true
      end
  | Trace.End_op ->
      if in_range tid then begin
        if not t.in_op.(tid) then
          record t ~rule:"unbalanced_op" ~tid ~ns
            "end_op without a matching begin_op";
        t.in_op.(tid) <- false;
        t.in_scope.(tid) <- false
      end
  | Trace.Checkpoint_set -> if in_range tid then t.in_scope.(tid) <- true
  | Trace.Reservation_publish ->
      if in_range tid then t.in_scope.(tid) <- false
  | Trace.Neutralized ->
      if in_range tid then begin
        t.in_scope.(tid) <- false;
        for s = 0 to t.cfg.nthreads - 1 do
          t.pending_sig.(s).(tid) <- false
        done
      end
  | Trace.Signal_sent ->
      if in_range tid && in_range e.e_a then begin
        t.pending_sig.(tid).(e.e_a) <- true;
        t.accessed_after.(tid).(e.e_a) <- false
      end
  | Trace.Signal_delivered | Trace.Signal_consumed ->
      if in_range tid then
        for s = 0 to t.cfg.nthreads - 1 do
          t.pending_sig.(s).(tid) <- false
        done
  | Trace.Reclaim ->
      (* e_a = records freed by this reclamation event.  Freeing while a
         victim of our own unobserved signal kept accessing means the
         writers' handshake did not do its job (dropped signal, or a
         hole in the protocol). *)
      if e.e_a > 0 && in_range tid then
        for v = 0 to t.cfg.nthreads - 1 do
          if t.pending_sig.(tid).(v) && t.accessed_after.(tid).(v) then begin
            record t ~rule:"handshake_incomplete" ~tid ~ns
              (Printf.sprintf
                 "reclaimed %d records while t%d kept accessing after an \
                  unobserved neutralization signal"
                 e.e_a v);
            (* One report per broken handshake, not per subsequent sweep. *)
            t.pending_sig.(tid).(v) <- false
          end
        done
  | Trace.Orphan_adopted ->
      if in_range tid then t.handed.(tid) <- true
  | Trace.Handoff_collect ->
      if in_range tid then t.handed.(tid) <- true
  | Trace.Async_sweep ->
      (* Every family: sweeping limbo bags off the operation path is
         legitimate only for a thread that owns what it sweeps — and an
         async sweeper owns nothing it was not handed through the orphan
         or reclaimer-handoff channels. *)
      if e.e_a > 0 && in_range tid && not t.handed.(tid) then
        record t ~rule:"foreign_sweep" ~tid ~ns
          (Printf.sprintf
             "async sweep freed %d records on a thread never handed a \
              limbo bag"
             e.e_a)
  | Trace.Stale_handle ->
      (* A generation-validated access caught a stale handle before any
         data crossed over.  Foil schemes race reclamation on purpose;
         restart-capable families (neutralization, hazard, interval)
         tolerate the race by construction — detection is their graceful
         path, the access never yields live data.  Epoch-family grace
         periods, though, make it impossible for a record to be freed
         while any thread is inside an operation: a stale validated read
         under an open op there means protection failed. *)
      if
        t.cfg.family = Epoch && in_range tid && t.in_op.(tid)
      then
        record t ~rule:"stale_handle" ~tid ~ns
          (Printf.sprintf
             "validated read caught stale handle %d (slot generation now \
              %d) under epoch protection"
             e.e_a e.e_b)
  | Trace.Restart | Trace.Bag_push | Trace.Bag_sweep | Trace.Pool_starvation
  | Trace.Pool_overflow | Trace.Fault_action | Trace.Heartbeat_timeout
  | Trace.Peer_declared_dead | Trace.Watermark_high | Trace.Watermark_low
  | Trace.Bag_handoff | Trace.Degrade | Trace.Restore
  | Trace.Handshake_timeout | Trace.Admission_shed | Trace.Request_timeout
  | Trace.Request_retry | Trace.Breaker_open | Trace.Breaker_half_open
  | Trace.Breaker_close | Trace.Brownout ->
      ()

let attach cfg =
  if cfg.nthreads < 1 then invalid_arg "Sanitizer.attach: nthreads";
  let t =
    {
      cfg;
      slots = Hashtbl.create 256;
      retired_count = 0;
      garbage_latched = false;
      in_op = Array.make cfg.nthreads false;
      in_scope = Array.make cfg.nthreads false;
      handed = Array.make cfg.nthreads false;
      pending_sig =
        Array.init cfg.nthreads (fun _ -> Array.make cfg.nthreads false);
      accessed_after =
        Array.init cfg.nthreads (fun _ -> Array.make cfg.nthreads false);
      ring = Array.make context_depth "";
      ring_next = 0;
      viols = [];
      nviols = 0;
    }
  in
  if not (Trace.enabled ()) then Trace.enable ~nthreads:cfg.nthreads ();
  Trace.set_verbose true;
  Trace.subscribe (Some (on_event t));
  t

let detach t =
  Trace.subscribe None;
  Trace.set_verbose false;
  for tid = 0 to t.cfg.nthreads - 1 do
    if t.in_op.(tid) then
      record t ~rule:"unbalanced_op" ~tid ~ns:0
        "thread still inside an operation at detach"
  done

let violations t = List.rev t.viols
let total_violations t = t.nviols

let violation_to_string v =
  Printf.sprintf "[%s] t%d@%dns: %s" v.v_rule v.v_tid v.v_ns v.v_detail

let pp_violation ppf v =
  Format.fprintf ppf "%s@." (violation_to_string v);
  List.iter (fun l -> Format.fprintf ppf "    | %s@." l) v.v_context
