(** Online SMR-protocol sanitizer.

    Subscribes to the observability trace stream ({!Nbr_obs.Trace})
    and checks per-event, as the execution runs, that the reclamation
    protocol is being honoured.  It rebuilds a model of every record's
    lifecycle (allocated → retired → freed) from the pool's fine-grained
    events and applies family-specific happens-before rules:

    - [uaf_access] — a guarded read hit a record the model knows is
      freed (the paper's safety property, all families);
    - [unguarded_access] — neutralization family only: a guarded read
      outside a checkpointed read phase (after the reservations were
      published, or before the checkpoint), where a signal could no
      longer restart the reader;
    - [handshake_incomplete] — a reclaimer freed records while a victim
      of its own still-unobserved neutralization signal kept performing
      guarded accesses: the writers' handshake (paper Assumption 4)
      failed, as it does under injected signal drops;
    - [unbalanced_op] — [begin_op]/[end_op] nesting errors, including
      threads still inside an operation at {!detach};
    - [garbage_bound] — the global retired-unreclaimed count exceeded
      the configured bound (the paper's P2, latched once per run);
    - [foreign_sweep] — every family: an async ([Async_sweep]) sweep by
      a thread that was never handed a limbo bag through the
      orphan-parcel or reclaimer-handoff channels — i.e. it swept
      garbage it neither owns nor legitimately adopted.

    Violations carry the last few trace events as context and render to
    deterministic strings, which is what lets certificate-replay tests
    compare two runs byte-for-byte.

    Simulator-only as an exact tool: {!Nbr_obs.Trace.subscribe} is
    called synchronously from [emit], which reflects true event order
    only under the single-domain simulator.  Attaching enables the
    trace's verbose tier ({!Nbr_obs.Trace.set_verbose}), so the
    fine-grained events exist while — and only while — a checker wants
    them. *)

type family = Neutralization | Epoch | Interval | Hazard | Unsafe

val family_of_scheme : string -> family
(** Map an {!Nbr_core.Smr_intf.S.scheme_name} ("nbr", "debra", "hp",
    ...) to its rule family.  Raises [Invalid_argument] for unknown
    names. *)

val family_name : family -> string

type config = {
  family : family;
  nthreads : int;
  garbage_bound : int option;
      (** flag [garbage_bound] when retired-unreclaimed exceeds this;
          [None] disables the rule (e.g. for deliberately leaky runs) *)
}

type violation = {
  v_rule : string;
  v_tid : int;  (** thread the violating event belongs to *)
  v_ns : int;  (** virtual timestamp of the violating event *)
  v_detail : string;
  v_context : string list;  (** trailing event window, oldest first *)
}

type t

val attach : config -> t
(** Create a checker and subscribe it to the trace stream (enabling the
    trace for [nthreads] if not already enabled, and switching the
    verbose tier on).  At most one subscriber exists; attaching replaces
    any previous one. *)

val detach : t -> unit
(** Unsubscribe, switch the verbose tier back off, and run end-of-run
    checks (threads still inside an operation).  The checker's findings
    remain readable afterwards. *)

val violations : t -> violation list
(** Findings in detection order (capped at 200; see
    {!total_violations}). *)

val total_violations : t -> int
(** Total detections, including any past the recording cap. *)

val violation_to_string : violation -> string
(** Deterministic one-line rendering (rule, thread, virtual time,
    detail) — stable across replays of the same schedule. *)

val pp_violation : Format.formatter -> violation -> unit
(** {!violation_to_string} plus the captured event context. *)
