(** DEBRA: distributed epoch-based reclamation (Brown, PODC'15).

    The fastest known EBR variant and the paper's strongest baseline.
    Threads announce (epoch, quiescent-bit) pairs; the global epoch
    advances when every thread is either quiescent or has announced the
    current epoch, and the advance scan is {e amortized} — each operation
    checks only a few threads, resuming where it left off.  Each thread
    keeps three limbo bags indexed by epoch mod 3: on observing a new
    epoch [e], everything retired in epoch [e-2] is freed wholesale, with
    no per-record scan.

    Not bounded: a thread stalled inside an operation pins the epoch, all
    bags grow without limit, and when the stall ends the backlog is freed
    in a burst — the "delayed thread vulnerability" the paper blames for
    DEBRA's throughput collapse at high thread counts (§7). *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type t = {
    pool : P.t;
    n : int;
    cfg : Smr_config.t;
    epoch : Rt.aint;
    announce : Rt.aint array;  (** (epoch lsl 1) lor quiescent-bit *)
    lc : L.t;
    done_stats : Smr_stats.t;
    mutable ctxs : ctx option array;
    mutable offload : Smr_intf.Offload.t option;
  }

  and ctx = {
    b : t;
    tid : int;
    bags : Limbo_bag.t array;  (** three, indexed by epoch mod 3 *)
    st : Smr_stats.t;
    mutable local_epoch : int;
    mutable check_next : int;  (** next thread index in the advance scan *)
    mutable checked : int;  (** threads validated for the current epoch *)
  }

  let scheme_name = "debra"
  let bounded_garbage = false

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    {
      pool;
      n = nthreads;
      cfg;
      (* Padded: global epoch + per-thread SWMR announcements (see
         Nbr_base.create for the false-sharing rationale). *)
      epoch = Rt.make_padded 0;
      announce = Array.init nthreads (fun _ -> Rt.make_padded 1 (* quiescent *));
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
      offload = None;
    }

  let set_offload b o = b.offload <- o

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c =
      {
        b;
        tid;
        bags = Array.init 3 (fun _ -> Limbo_bag.create ());
        st = Smr_stats.zero ();
        local_epoch = 0;
        check_next = 0;
        checked = 0;
      }
    in
    b.ctxs.(tid) <- Some c;
    c

  let free_bag c bag =
    let freed =
      Limbo_bag.sweep bag ~upto:(Limbo_bag.abs_tail bag)
        ~keep:(fun _ -> false)
        ~free:(fun slot -> P.free c.b.pool slot)
    in
    if freed > 0 then begin
      Smr_stats.add_freed c.st freed;
      Smr_stats.add_reclaim_events c.st 1;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Reclaim freed (Limbo_bag.size bag)
    end

  let buffered c =
    Limbo_bag.size c.bags.(0) + Limbo_bag.size c.bags.(1)
    + Limbo_bag.size c.bags.(2)

  (* Bag label for a record buffered now.  The {e global} epoch re-read
     at push time, not [local_epoch]: an active thread only pins the
     global to [local_epoch + 1], so by retire time the unlink may have
     happened one epoch after our announcement.  A record labelled [l] is
     freed only once the epoch reaches [l + 2], an advance every reader
     that could still hold it (announced [<= l]) blocks — labelling with
     the stale local epoch frees exactly one epoch too early for readers
     announced at [local_epoch + 1].  The generation-aware pool detector
     caught this as reads through freed-and-recycled slots. *)
  let retire_label c = Rt.load c.b.epoch mod 3

  (* Departed/crashed threads' retires go into our current retire bag:
     retired "now" from the epoch discipline's point of view, which only
     delays their release — never frees early. *)
  let adopt_orphans c =
    let n =
      L.adopt c.b.lc ~tid:c.tid ~push:(fun slot ->
          Limbo_bag.push c.bags.(retire_label c) slot)
    in
    if n > 0 then Smr_stats.note_garbage c.st (buffered c)

  (* Limbo-bag externalization (DESIGN.md §12).  All three epoch bags are
     flattened into the handoff parcel; the collector re-buffers them in
     its own current retire bag — retired "now" from the epoch
     discipline's point of view, so release is only ever delayed, exactly
     the orphan-adoption argument above. *)

  let limbo_size c = buffered c

  let export_bag c =
    let slots = ref [] in
    Array.iter
      (fun bag ->
        ignore
          (Limbo_bag.sweep bag ~upto:(Limbo_bag.abs_tail bag)
             ~keep:(fun _ -> false)
             ~free:(fun s -> slots := s :: !slots)))
      c.bags;
    L.push_handoff c.b.lc ~origin:c.tid !slots;
    List.length !slots

  let hand_off c = export_bag c

  let maybe_offload c =
    match c.b.offload with
    | None -> false
    | Some o ->
        let count = buffered c in
        count > 0
        && Smr_intf.Offload.try_accept o ~tid:c.tid ~ns:(Rt.now_ns ()) ~count
        &&
        (ignore (export_bag c);
         true)

  let collect_handoffs c =
    let n =
      L.take_handoffs c.b.lc ~push:(fun slot ->
          Limbo_bag.push c.bags.(retire_label c) slot)
    in
    if n > 0 then begin
      Smr_stats.note_garbage c.st (buffered c);
      match c.b.offload with
      | Some o ->
          Smr_intf.Offload.note_collected o ~tid:c.tid ~ns:(Rt.now_ns ())
            ~count:n
      | None ->
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Handoff_collect n 0
    end;
    n

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      (* Quiescent announcement: a departed thread must never pin the
         epoch. *)
      Rt.store c.b.announce.(c.tid) ((c.local_epoch lsl 1) lor 1);
      let slots = ref [] in
      Array.iter
        (fun bag ->
          ignore
            (Limbo_bag.sweep bag ~upto:(Limbo_bag.abs_tail bag)
               ~keep:(fun _ -> false)
               ~free:(fun s -> slots := s :: !slots)))
        c.bags;
      L.push_parcel c.b.lc ~origin:c.tid !slots;
      L.with_stats_lock c.b.lc (fun () -> Smr_stats.add c.b.done_stats c.st);
      c.b.ctxs.(c.tid) <- None
    end

  (* leaveQstate *)
  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0;
    let e = Rt.load c.b.epoch in
    if e <> c.local_epoch then begin
      (* Entering epoch [e]: records retired in epoch [e-2] (bag index
         (e+1) mod 3) are safe — every thread is in e-1 or e. *)
      free_bag c c.bags.((e + 1) mod 3);
      c.local_epoch <- e;
      c.check_next <- 0;
      c.checked <- 0
    end;
    Rt.store c.b.announce.(c.tid) (e lsl 1);
    (* Amortized advance scan: DEBRA's low per-operation overhead comes
       from checking only a couple of threads per op, resuming where the
       previous op left off. *)
    let quota = ref (max 1 (c.b.cfg.Smr_config.epoch_freq / 8)) in
    let blocked = ref false in
    while (not !blocked) && !quota > 0 && c.checked < c.b.n do
      let j = c.check_next in
      let a = Rt.load c.b.announce.(j) in
      if a land 1 = 1 || a lsr 1 >= e then begin
        c.check_next <- (j + 1) mod c.b.n;
        c.checked <- c.checked + 1
      end
      else blocked := true;
      decr quota
    done;
    if c.checked >= c.b.n then begin
      if Rt.cas c.b.epoch e (e + 1) then begin
        (* Adopt the epoch we just created while still ahead of any
           protected read of this op: re-announcing keeps our retire
           labels at the current global epoch (instead of one behind,
           which would pin their release an extra epoch), and entering
           [e+1] releases its two-epochs-back bag right away. *)
        free_bag c c.bags.((e + 2) mod 3);
        c.local_epoch <- e + 1;
        c.check_next <- 0;
        Rt.store c.b.announce.(c.tid) ((e + 1) lsl 1)
      end;
      c.checked <- 0
    end

  (* enterQstate *)
  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0;
    Rt.store c.b.announce.(c.tid) ((c.local_epoch lsl 1) lor 1);
    if L.has_orphans c.b.lc && L.is_active c.b.lc c.tid then adopt_orphans c

  (* Pool-pressure flush.  While this thread is inside an operation its
     own announcement pins the global epoch to at most [local_epoch + 1],
     so at most one bag (records retired two epochs back) can be released
     no matter how hard we try — EBR's degradation under pressure is
     structural.  Best effort: run the advance scan in full (not
     amortized) and release that bag if the epoch moved.  [local_epoch]
     and our announcement are deliberately left alone: re-announcing a
     newer epoch mid-operation would un-pin records we may still be
     traversing. *)
  let on_pressure c =
    let e = Rt.load c.b.epoch in
    let ok = ref true in
    for j = 0 to c.b.n - 1 do
      if !ok then begin
        let a = Rt.load c.b.announce.(j) in
        if not (a land 1 = 1 || a lsr 1 >= e) then ok := false
      end
    done;
    if !ok then ignore (Rt.cas c.b.epoch e (e + 1));
    let e' = Rt.load c.b.epoch in
    if e' <> c.local_epoch then
      (* Never a current retire target: our own announcement keeps
         [e' <= local_epoch + 1], so the freed index [(e'+1) mod 3] is
         neither [local_epoch mod 3] nor [(local_epoch + 1) mod 3] — the
         two bags [retire_label] can select mid-operation. *)
      free_bag c c.bags.((e' + 1) mod 3)

  let alloc ?cls c =
    P.alloc ~on_pressure:(fun () -> on_pressure c) ?cls c.b.pool

  let retire c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1;
    Limbo_bag.push c.bags.(retire_label c) slot;
    let g = buffered c in
    Smr_stats.note_garbage c.st g;
    (* DEBRA frees by epoch, not by threshold — but a backlog past the
       sweep threshold (a pinned epoch, or simple retire pressure) is
       worth shedding to the reclaimer, whose begin_op cadence both
       drains it and helps the epoch advance. *)
    if g >= c.b.cfg.Smr_config.bag_threshold then ignore (maybe_offload c)

  (* EBR has no phase discipline: both phases run unguarded, never
     restart — so any UAF read commits at phase completion. *)
  let phase c ~read ~write =
    let payload, _recs = read () in
    Smr_stats.uaf_commit c.st;
    write payload

  let read_only c f =
    let r = f () in
    Smr_stats.uaf_commit c.st;
    r

  let read_root c root =
    let v = Rt.load root in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_ptr c ~src ~field =
    let v = Rt.load (P.ptr_cell c.b.pool src field) in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_raw _c cell = Rt.load cell

  (* Epoch protection means a record reachable inside an operation cannot
     be freed, so [Stale] is unreachable for correct use; if it does show
     up (a misuse the sanitizer's [stale_handle] rule convicts), consume
     the memory as the unprotected read it is. *)
  let read_data c ~src ~field =
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let peek_ptr c ~src ~field =
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
