(** Hazard Eras (Ramalhete & Correia, SPAA'17).

    The scheme that seeded the interval-based family the paper benchmarks
    (IBR descends from it, WFE builds on it; §2).  Hazard-pointer shaped,
    but slots publish {e eras} instead of pointers: every record carries
    birth and retire eras; a dereference publishes the current global era
    in one of the thread's era slots (validating that the era did not move
    during the read, like HP's re-read); a record may be freed only if no
    published era falls within its [birth, retire] lifetime.

    Compared to {!Ibr} (2GEIBR) a thread pins a set of discrete eras
    rather than one interval — cheaper when an operation dereferences few
    records, and a slot-for-slot drop-in for HP code.  Like HP and IBR it
    cannot protect traversals through unlinked records (the paper's P5
    objection): [read_raw] only ratchets the era and is unsafe for
    mark-traversing structures, which the benchmarks never pair it with.

    Bounded: a stalled thread pins at most its published eras' records. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type t = {
    pool : P.t;
    n : int;
    cfg : Smr_config.t;
    window : int;
    era : Rt.aint;
    slots : Rt.aint array array;  (** published eras; -1 = empty *)
    birth : Rt.aint array;
    retire_era : Rt.aint array;
    lc : L.t;
    done_stats : Smr_stats.t;
    mutable ctxs : ctx option array;
    mutable offload : Smr_intf.Offload.t option;
  }

  and ctx = {
    b : t;
    tid : int;
    bag : Limbo_bag.t;
    st : Smr_stats.t;
    mutable hpi : int;
    mutable alloc_count : int;
    scratch : int array;  (** collected eras at reclamation *)
  }

  let scheme_name = "he"
  let bounded_garbage = true
  let empty_slot = -1

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    let window = cfg.Smr_config.max_reservations + 2 in
    {
      pool;
      n = nthreads;
      cfg;
      window;
      (* Padded era + per-thread SWMR era slots; per-record birth/retire
         stamps stay unpadded (capacity-sized, accessed with the record). *)
      era = Rt.make_padded 1;
      slots =
        Array.init nthreads (fun _ ->
            Array.init window (fun _ -> Rt.make_padded empty_slot));
      birth = Array.init (P.capacity pool) (fun _ -> Rt.make 0);
      retire_era = Array.init (P.capacity pool) (fun _ -> Rt.make 0);
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
      offload = None;
    }

  let set_offload b o = b.offload <- o

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c =
      {
        b;
        tid;
        bag = Limbo_bag.create ();
        st = Smr_stats.zero ();
        hpi = 0;
        alloc_count = 0;
        scratch = Array.make (b.n * b.window) 0;
      }
    in
    b.ctxs.(tid) <- Some c;
    c

  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0

  (* Orphan birth/retire eras live in the t-level metadata arrays, so the
     slots alone carry everything the era sweep needs. *)
  let adopt_orphans c =
    let n =
      L.adopt c.b.lc ~tid:c.tid ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then Smr_stats.note_garbage c.st (Limbo_bag.size c.bag)

  (* Limbo-bag externalization (DESIGN.md §12).  Birth/retire eras live in
     the t-level metadata arrays, so handed-off slots carry everything the
     collector's era sweep needs — the orphan-parcel argument. *)

  let limbo_size c = Limbo_bag.size c.bag

  let export_bag c =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_handoff c.b.lc ~origin:c.tid !slots;
    List.length !slots

  let hand_off c = export_bag c

  let maybe_offload c =
    match c.b.offload with
    | None -> false
    | Some o ->
        let count = Limbo_bag.size c.bag in
        count > 0
        && Smr_intf.Offload.try_accept o ~tid:c.tid ~ns:(Rt.now_ns ()) ~count
        &&
        (ignore (export_bag c);
         true)

  let collect_handoffs c =
    let n =
      L.take_handoffs c.b.lc ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then begin
      Smr_stats.note_garbage c.st (Limbo_bag.size c.bag);
      match c.b.offload with
      | Some o ->
          Smr_intf.Offload.note_collected o ~tid:c.tid ~ns:(Rt.now_ns ())
            ~count:n
      | None ->
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Handoff_collect n 0
    end;
    n

  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0;
    let sl = c.b.slots.(c.tid) in
    for i = 0 to c.b.window - 1 do
      Rt.store sl.(i) empty_slot
    done;
    if L.has_orphans c.b.lc && L.is_active c.b.lc c.tid then adopt_orphans c

  (* Retract [tid]'s published eras so they stop pinning records. *)
  let retract_published b tid =
    let sl = b.slots.(tid) in
    for i = 0 to b.window - 1 do
      Rt.store sl.(i) empty_slot
    done

  let orphan_ctx b ~into (vc : ctx) =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep vc.bag ~upto:(Limbo_bag.abs_tail vc.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_parcel b.lc ~origin:vc.tid !slots;
    Smr_stats.add into vc.st;
    b.ctxs.(vc.tid) <- None

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      retract_published c.b c.tid;
      L.with_stats_lock c.b.lc (fun () ->
          orphan_ctx c.b ~into:c.b.done_stats c)
    end

  (* Crash watchdog (see [Lifecycle]): HE is bounded, so it takes part in
     recovery — a peer frozen past the death threshold is claimed, its
     era slots cleared and its bag orphaned.  No signals to re-send. *)
  let watchdog c =
    L.scan c.b.lc ~self:c.tid ~timeout_ns:c.b.cfg.Smr_config.wd_timeout_ns
      ~rounds:c.b.cfg.Smr_config.wd_rounds
      ~on_round:(fun ~peer:_ ~round:_ -> ())
      ~reap:(fun v ->
        P.flush_thread c.b.pool ~tid:v;
        retract_published c.b v;
        match c.b.ctxs.(v) with
        | None -> ()
        | Some vc -> orphan_ctx c.b ~into:c.st vc)

  let alloc_with ?cls c ~on_pressure =
    let slot = P.alloc ~on_pressure ?cls c.b.pool in
    c.alloc_count <- c.alloc_count + 1;
    if c.alloc_count mod c.b.cfg.Smr_config.epoch_freq = 0 then
      ignore (Rt.faa c.b.era 1);
    (* Era metadata is per slot, dense across size-classes/generations. *)
    Rt.store c.b.birth.(P.uid c.b.pool slot) (Rt.load c.b.era);
    slot

  (* Protect-by-era: publish the current era in the next rotation slot,
     then read; if the era moved during the read, republish and re-read —
     the value finally returned was read under a published covering era.
     Like HP, the era covers the target only if the target was still
     linked when the era was published: a record born and retired entirely
     inside our operation can be reached through a stale interior edge
     with every published era outside its lifetime, so the target's
     lifecycle state must be validated too (see Hp.protect_from). *)
  exception Validation_failed

  let protected_read c cell =
    let sl = c.b.slots.(c.tid) in
    let i = c.hpi in
    c.hpi <- (c.hpi + 1) mod c.b.window;
    let rec go prev_e tries =
      if tries > 64 then raise Rt.Neutralized;
      let v = Rt.load cell in
      let e = Rt.load c.b.era in
      if e = prev_e then
        if v < 0 || P.live c.b.pool v then v
        else begin
          (* Target already unlinked: behave like a failed protection. *)
          raise Validation_failed
        end
      else begin
        ignore (Rt.xchg sl.(i) e) (* fenced publish, as in HP *);
        go e (tries + 1)
      end
    in
    let e0 = Rt.load c.b.era in
    ignore (Rt.xchg sl.(i) e0);
    match go e0 0 with
    | v ->
        if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
        v
    | exception Validation_failed -> raise Rt.Neutralized

  let read_root c root = protected_read c root
  let read_ptr c ~src ~field = protected_read c (P.ptr_cell c.b.pool src field)

  (* Unlinked-record traversal cannot be protected by eras; unsafe with
     mark-traversing structures (never benchmarked together). *)
  let read_raw _c cell = Rt.load cell

  (* Data reads only ever target records the traversal just protected by
     era; a [Stale] result means protection was lost — abort the read
     phase like a failed validation rather than consume recycled
     memory. *)
  let read_data c ~src ~field =
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale _ ->
        Smr_stats.note_uaf c.st;
        raise Rt.Neutralized

  let peek_ptr c ~src ~field =
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale _ ->
        Smr_stats.note_uaf c.st;
        raise Rt.Neutralized

  let phase c ~read ~write =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          if !attempts > 1 then Smr_stats.uaf_abort c.st;
          let payload, _recs = read () in
          Smr_stats.uaf_commit c.st;
          write payload)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  let read_only c f =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          if !attempts > 1 then Smr_stats.uaf_abort c.st;
          let r = f () in
          Smr_stats.uaf_commit c.st;
          r)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  (* Era scan + sweep — the threshold-crossing body of [retire], also run
     threshold-free under pool pressure.  Safe mid-operation: our own
     published eras are part of the scan, pinning anything we might still
     dereference. *)
  let flush c =
    watchdog c;
    if Limbo_bag.size c.bag > 0 then begin
      let k = ref 0 in
      for t = 0 to c.b.n - 1 do
        for i = 0 to c.b.window - 1 do
          let e = Rt.load c.b.slots.(t).(i) in
          if e >= 0 then begin
            c.scratch.(!k) <- e;
            incr k
          end
        done
      done;
      let pinned s =
        let u = P.uid c.b.pool s in
        let birth = Rt.plain_load c.b.birth.(u) in
        let death = Rt.plain_load c.b.retire_era.(u) in
        let hit = ref false in
        for j = 0 to !k - 1 do
          if (not !hit) && c.scratch.(j) >= birth && c.scratch.(j) <= death
          then hit := true
        done;
        !hit
      in
      let freed =
        Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag) ~keep:pinned
          ~free:(fun s -> P.free c.b.pool s)
      in
      Smr_stats.add_freed c.st freed;
      Smr_stats.add_reclaim_events c.st 1;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Reclaim freed
          (Limbo_bag.size c.bag)
    end

  let on_pressure = flush
  let alloc ?cls c = alloc_with ?cls c ~on_pressure:(fun () -> flush c)

  let retire c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1;
    Rt.store c.b.retire_era.(P.uid c.b.pool slot) (Rt.load c.b.era);
    Limbo_bag.push c.bag slot;
    if Limbo_bag.size c.bag >= c.b.cfg.Smr_config.bag_threshold then
      if not (maybe_offload c) then flush c;
    let g = Limbo_bag.size c.bag in
    Smr_stats.note_garbage c.st g

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
