(** Hazard pointers (Michael, TPDS'04).

    Every dereference announces the target in a single-writer multi-reader
    hazard slot with a fenced publish (the paper models this with [xchg],
    whose implicit fence is cheaper than [mfence]; we do the same), then
    validates that the link it was read from is unchanged — in our
    structures every unlink modifies the link that was followed, so an
    unchanged link proves the target is not yet retired and the
    announcement was made in time.  Validation failure aborts the read
    phase through the checkpoint (the "restart" obligation HP imposes on
    data structures, paper §2/§5.3).

    Hazard slots rotate through a window of [max_reservations + 2], which
    preserves hand-over-hand protection for list/tree traversals and keeps
    the reservations passed to [phase]'s write stage protected.

    Bounded: at most (window × threads) records can be pinned. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type t = {
    pool : P.t;
    n : int;
    cfg : Smr_config.t;
    window : int;
    hazards : Rt.aint array array;  (** [hazards.(tid).(i)] *)
    lc : L.t;
    done_stats : Smr_stats.t;
    mutable ctxs : ctx option array;
    mutable offload : Smr_intf.Offload.t option;
  }

  and ctx = {
    b : t;
    tid : int;
    bag : Limbo_bag.t;
    st : Smr_stats.t;
    mutable hpi : int;  (** rotation index *)
    scratch : int array;
  }

  let scheme_name = "hp"
  let bounded_garbage = true
  let max_validate_retries = 64

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    let window = cfg.Smr_config.max_reservations + 2 in
    {
      pool;
      n = nthreads;
      cfg;
      window;
      (* Padded: hazard slots are stored (with a fence) on every guarded
         dereference by their owner and scanned by every reclaimer — the
         single most write-hot SWMR cells of any scheme here. *)
      hazards =
        Array.init nthreads (fun _ ->
            Array.init window (fun _ -> Rt.make_padded P.nil));
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
      offload = None;
    }

  let set_offload b o = b.offload <- o

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c =
      {
        b;
        tid;
        bag = Limbo_bag.create ();
        st = Smr_stats.zero ();
        hpi = 0;
        scratch = Array.make (b.n * b.window) 0;
      }
    in
    b.ctxs.(tid) <- Some c;
    c

  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0

  let adopt_orphans c =
    let n =
      L.adopt c.b.lc ~tid:c.tid ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then Smr_stats.note_garbage c.st (Limbo_bag.size c.bag)

  (* Limbo-bag externalization (DESIGN.md §12).  Records in the bag carry
     no per-record metadata beyond the slot itself: the collector's hazard
     scan pins by slot id, so handing the bag over is exactly the
     orphan-parcel argument. *)

  let limbo_size c = Limbo_bag.size c.bag

  let export_bag c =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_handoff c.b.lc ~origin:c.tid !slots;
    List.length !slots

  let hand_off c = export_bag c

  let maybe_offload c =
    match c.b.offload with
    | None -> false
    | Some o ->
        let count = Limbo_bag.size c.bag in
        count > 0
        && Smr_intf.Offload.try_accept o ~tid:c.tid ~ns:(Rt.now_ns ()) ~count
        &&
        (ignore (export_bag c);
         true)

  let collect_handoffs c =
    let n =
      L.take_handoffs c.b.lc ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then begin
      Smr_stats.note_garbage c.st (Limbo_bag.size c.bag);
      match c.b.offload with
      | Some o ->
          Smr_intf.Offload.note_collected o ~tid:c.tid ~ns:(Rt.now_ns ())
            ~count:n
      | None ->
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Handoff_collect n 0
    end;
    n

  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0;
    let hz = c.b.hazards.(c.tid) in
    for i = 0 to c.b.window - 1 do
      Rt.store hz.(i) P.nil
    done;
    if L.has_orphans c.b.lc && L.is_active c.b.lc c.tid then adopt_orphans c

  (* Retract [tid]'s hazard slots so they stop pinning records. *)
  let retract_published b tid =
    let hz = b.hazards.(tid) in
    for i = 0 to b.window - 1 do
      Rt.store hz.(i) P.nil
    done

  let orphan_ctx b ~into (vc : ctx) =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep vc.bag ~upto:(Limbo_bag.abs_tail vc.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_parcel b.lc ~origin:vc.tid !slots;
    Smr_stats.add into vc.st;
    b.ctxs.(vc.tid) <- None

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      retract_published c.b c.tid;
      L.with_stats_lock c.b.lc (fun () ->
          orphan_ctx c.b ~into:c.b.done_stats c)
    end

  (* Crash watchdog (see [Lifecycle]): HP is bounded, so it takes part in
     recovery — a peer frozen past the death threshold is claimed, its
     hazard slots cleared and its bag orphaned.  No signals to re-send. *)
  let watchdog c =
    L.scan c.b.lc ~self:c.tid ~timeout_ns:c.b.cfg.Smr_config.wd_timeout_ns
      ~rounds:c.b.cfg.Smr_config.wd_rounds
      ~on_round:(fun ~peer:_ ~round:_ -> ())
      ~reap:(fun v ->
        P.flush_thread c.b.pool ~tid:v;
        retract_published c.b v;
        match c.b.ctxs.(v) with
        | None -> ()
        | Some vc -> orphan_ctx c.b ~into:c.st vc)

  (* Announce-and-validate: publish [target] read from [cell], then check
     that [cell] still holds it, that the target has not been unlinked,
     and that the slot was not recycled under us.  The link re-read alone
     is insufficient for structures whose unlink splices an ancestor edge
     (DGT delete leaves the interior parent->leaf edge intact while both
     records retire) — the "check whether the record has already been
     unlinked" obligation the paper ascribes to HP (§2).  Failure aborts
     the read phase through the checkpoint. *)
  let protect_from c cell =
    let hz = c.b.hazards.(c.tid) in
    let slot = c.hpi in
    c.hpi <- (c.hpi + 1) mod c.b.window;
    let rec go tries =
      let p = Rt.load cell in
      if p < 0 then p
      else begin
        let s0 = P.stamp c.b.pool p in
        ignore (Rt.xchg hz.(slot) p) (* fenced publish *);
        let p' = Rt.load cell in
        if p = p' && P.live c.b.pool p && P.stamp c.b.pool p = s0 then begin
          if P.record_read c.b.pool p then Smr_stats.note_uaf c.st;
          p
        end
        else if tries >= max_validate_retries then raise Rt.Neutralized
        else go (tries + 1)
      end
    in
    go 0

  let read_root c root = protect_from c root
  let read_ptr c ~src ~field = protect_from c (P.ptr_cell c.b.pool src field)

  (* Data reads only ever target records the traversal just protected, so
     a [Stale] result means the protection race was lost after all (the
     validation window of [protect_from] closed on a copy) — abort the
     read phase like any failed validation rather than consume recycled
     memory. *)
  let read_data c ~src ~field =
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale _ ->
        Smr_stats.note_uaf c.st;
        raise Rt.Neutralized

  let peek_ptr c ~src ~field =
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale _ ->
        Smr_stats.note_uaf c.st;
        raise Rt.Neutralized

  (* HP cannot protect through a mark-tagged word (it does not know the
     encoding) — the P5 limitation the paper describes.  Structures that
     need [read_raw] (Harris list, traversal over marked nodes) must not be
     paired with HP; the benchmarks never do. *)
  let read_raw _c cell = Rt.load cell

  (* The reservations passed by the data structure are the last few records
     it protected; the rotation window is sized so they are still live, so
     the write phase needs no further publication. *)
  let phase c ~read ~write =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          if !attempts > 1 then Smr_stats.uaf_abort c.st;
          let payload, _recs = read () in
          Smr_stats.uaf_commit c.st;
          write payload)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  let read_only c f =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          if !attempts > 1 then Smr_stats.uaf_abort c.st;
          let r = f () in
          Smr_stats.uaf_commit c.st;
          r)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  let mem_sorted a n x =
    let rec go lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if a.(mid) = x then true
        else if a.(mid) < x then go (mid + 1) hi
        else go lo mid
    in
    go 0 n

  (* Hazard scan + sweep — the threshold-crossing body of [retire], also
     run threshold-free under pool pressure.  Own hazards are skipped, as
     in the retire-time scan: records in our bag were retired by us and
     are never touched again, whatever our hazard slots still point at. *)
  let flush c =
    watchdog c;
    if Limbo_bag.size c.bag > 0 then begin
      let k = ref 0 in
      for t = 0 to c.b.n - 1 do
        if t <> c.tid then
          for i = 0 to c.b.window - 1 do
            let v = Rt.load c.b.hazards.(t).(i) in
            if v >= 0 then begin
              c.scratch.(!k) <- v;
              incr k
            end
          done
      done;
      let a = Array.sub c.scratch 0 !k in
      Array.sort compare a;
      Array.blit a 0 c.scratch 0 !k;
      let freed =
        Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag)
          ~keep:(fun s -> mem_sorted c.scratch !k s)
          ~free:(fun s -> P.free c.b.pool s)
      in
      Smr_stats.add_freed c.st freed;
      Smr_stats.add_reclaim_events c.st 1;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Reclaim freed
          (Limbo_bag.size c.bag)
    end

  let on_pressure = flush
  let alloc ?cls c = P.alloc ~on_pressure:(fun () -> flush c) ?cls c.b.pool

  let retire c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1;
    Limbo_bag.push c.bag slot;
    if Limbo_bag.size c.bag >= c.b.cfg.Smr_config.bag_threshold then
      if not (maybe_offload c) then flush c;
    let g = Limbo_bag.size c.bag in
    Smr_stats.note_garbage c.st g

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
