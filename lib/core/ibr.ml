(** 2GEIBR: two-global-epoch interval-based reclamation (Wen et al.,
    PPoPP'18) — the IBR variant the paper benchmarks.

    Every record carries two eras of metadata: the global era at
    allocation (birth) and at retirement.  Every thread announces an
    interval [lower, upper]: [lower] is the era at operation start and
    [upper] is ratcheted up to the current era at {e every dereference of a
    new record} — the per-read overhead the paper charges against P1/P3.
    A reclaimer frees a record iff its [birth, retire] interval intersects
    no announced interval.

    Bounded: a stalled thread pins a fixed interval, so only records whose
    lifetime overlaps it leak — everything born after the stall reclaims
    normally.

    Era protection shares HP's structure obligation (paper P5): the
    ratcheted upper bound only covers records reached through links that
    are re-read from {e live} sources.  A thread descheduled mid-traversal
    can wake inside a retired (but still pinned) record whose frozen link
    points at a record born {e after} the sleeper's announced upper bound —
    by then already swept, and no amount of ratcheting resurrects it.
    [read_ptr] therefore validates its source whenever the ratchet fires
    and aborts the read phase through the checkpoint, exactly like HP's
    announce-and-validate; and structures that traverse mark-tagged links
    of unlinked records ([read_raw]: Harris list and its hash-set buckets)
    are never paired with IBR, as with HP/HE. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type t = {
    pool : P.t;
    n : int;
    cfg : Smr_config.t;
    era : Rt.aint;
    lo : Rt.aint array;
    hi : Rt.aint array;
    birth : Rt.aint array;  (** per-record metadata (real algorithm state) *)
    retire_era : Rt.aint array;
    lc : L.t;
    done_stats : Smr_stats.t;
    mutable ctxs : ctx option array;
    mutable offload : Smr_intf.Offload.t option;
  }

  and ctx = {
    b : t;
    tid : int;
    bag : Limbo_bag.t;
    st : Smr_stats.t;
    mutable cached_hi : int;
    mutable alloc_count : int;
    (* interval snapshot scratch for reclamation *)
    slo : int array;
    shi : int array;
  }

  let scheme_name = "ibr"
  let bounded_garbage = true

  let inactive_lo = max_int
  let inactive_hi = -1

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    {
      pool;
      n = nthreads;
      cfg;
      (* Padded: the era is bumped on retires and read per dereference;
         lo/hi are per-thread SWMR interval bounds scanned by reclaimers.
         The per-record birth/retire stamps below stay unpadded — they are
         capacity-sized and accessed with the record, not contended rows. *)
      era = Rt.make_padded 1;
      lo = Array.init nthreads (fun _ -> Rt.make_padded inactive_lo);
      hi = Array.init nthreads (fun _ -> Rt.make_padded inactive_hi);
      birth = Array.init (P.capacity pool) (fun _ -> Rt.make 0);
      retire_era = Array.init (P.capacity pool) (fun _ -> Rt.make 0);
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
      offload = None;
    }

  let set_offload b o = b.offload <- o

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c =
      {
        b;
        tid;
        bag = Limbo_bag.create ();
        st = Smr_stats.zero ();
        cached_hi = 0;
        alloc_count = 0;
        slo = Array.make b.n inactive_lo;
        shi = Array.make b.n inactive_hi;
      }
    in
    b.ctxs.(tid) <- Some c;
    c

  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0;
    let e = Rt.load c.b.era in
    Rt.store c.b.lo.(c.tid) e;
    Rt.store c.b.hi.(c.tid) e;
    c.cached_hi <- e

  (* Orphan birth/retire eras live in the t-level metadata arrays, so the
     slots alone carry everything the interval sweep needs. *)
  let adopt_orphans c =
    let n =
      L.adopt c.b.lc ~tid:c.tid ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then Smr_stats.note_garbage c.st (Limbo_bag.size c.bag)

  (* Limbo-bag externalization (DESIGN.md §12).  Birth/retire eras live in
     the t-level metadata arrays, so handed-off slots carry everything the
     collector's interval sweep needs — the orphan-parcel argument. *)

  let limbo_size c = Limbo_bag.size c.bag

  let export_bag c =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_handoff c.b.lc ~origin:c.tid !slots;
    List.length !slots

  let hand_off c = export_bag c

  let maybe_offload c =
    match c.b.offload with
    | None -> false
    | Some o ->
        let count = Limbo_bag.size c.bag in
        count > 0
        && Smr_intf.Offload.try_accept o ~tid:c.tid ~ns:(Rt.now_ns ()) ~count
        &&
        (ignore (export_bag c);
         true)

  let collect_handoffs c =
    let n =
      L.take_handoffs c.b.lc ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then begin
      Smr_stats.note_garbage c.st (Limbo_bag.size c.bag);
      match c.b.offload with
      | Some o ->
          Smr_intf.Offload.note_collected o ~tid:c.tid ~ns:(Rt.now_ns ())
            ~count:n
      | None ->
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Handoff_collect n 0
    end;
    n

  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0;
    Rt.store c.b.lo.(c.tid) inactive_lo;
    Rt.store c.b.hi.(c.tid) inactive_hi;
    if L.has_orphans c.b.lc && L.is_active c.b.lc c.tid then adopt_orphans c

  (* Retract [tid]'s announced interval so it stops pinning records. *)
  let retract_published b tid =
    Rt.store b.lo.(tid) inactive_lo;
    Rt.store b.hi.(tid) inactive_hi

  let orphan_ctx b ~into (vc : ctx) =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep vc.bag ~upto:(Limbo_bag.abs_tail vc.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_parcel b.lc ~origin:vc.tid !slots;
    Smr_stats.add into vc.st;
    b.ctxs.(vc.tid) <- None

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      retract_published c.b c.tid;
      L.with_stats_lock c.b.lc (fun () ->
          orphan_ctx c.b ~into:c.b.done_stats c)
    end

  (* Crash watchdog (see [Lifecycle]): IBR is bounded, so it takes part
     in recovery — a peer frozen past the death threshold is claimed, its
     interval retracted and its bag orphaned.  No signals to re-send. *)
  let watchdog c =
    L.scan c.b.lc ~self:c.tid ~timeout_ns:c.b.cfg.Smr_config.wd_timeout_ns
      ~rounds:c.b.cfg.Smr_config.wd_rounds
      ~on_round:(fun ~peer:_ ~round:_ -> ())
      ~reap:(fun v ->
        P.flush_thread c.b.pool ~tid:v;
        retract_published c.b v;
        match c.b.ctxs.(v) with
        | None -> ()
        | Some vc -> orphan_ctx c.b ~into:c.st vc)

  (* Interval scan + sweep — the threshold-crossing body of [retire],
     also run threshold-free under pool pressure.  Safe mid-operation:
     our own announced interval is part of the scan, so anything we might
     still dereference stays pinned. *)
  let flush c =
    watchdog c;
    if Limbo_bag.size c.bag > 0 then begin
      for t = 0 to c.b.n - 1 do
        c.slo.(t) <- Rt.load c.b.lo.(t);
        c.shi.(t) <- Rt.load c.b.hi.(t)
      done;
      let pinned s =
        let u = P.uid c.b.pool s in
        let birth = Rt.plain_load c.b.birth.(u) in
        let death = Rt.plain_load c.b.retire_era.(u) in
        let hit = ref false in
        for t = 0 to c.b.n - 1 do
          if (not !hit) && birth <= c.shi.(t) && death >= c.slo.(t) then
            hit := true
        done;
        !hit
      in
      let freed =
        Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag) ~keep:pinned
          ~free:(fun s -> P.free c.b.pool s)
      in
      Smr_stats.add_freed c.st freed;
      Smr_stats.add_reclaim_events c.st 1;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Reclaim freed
          (Limbo_bag.size c.bag)
    end

  let on_pressure = flush

  let alloc ?cls c =
    let slot = P.alloc ~on_pressure:(fun () -> flush c) ?cls c.b.pool in
    c.alloc_count <- c.alloc_count + 1;
    if c.alloc_count mod c.b.cfg.Smr_config.epoch_freq = 0 then
      ignore (Rt.faa c.b.era 1);
    (* Era metadata is per {e slot}, not per handle: [uid] keeps the
       arrays dense across size-classes and generations. *)
    Rt.store c.b.birth.(P.uid c.b.pool slot) (Rt.load c.b.era);
    slot

  let retire c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1;
    Rt.store c.b.retire_era.(P.uid c.b.pool slot) (Rt.load c.b.era);
    Limbo_bag.push c.bag slot;
    if Limbo_bag.size c.bag >= c.b.cfg.Smr_config.bag_threshold then
      if not (maybe_offload c) then flush c;
    let g = Limbo_bag.size c.bag in
    Smr_stats.note_garbage c.st g

  (* IBR imposes the same restart obligation on structures as HP: a
     dereference that cannot be revalidated aborts the read phase through
     the checkpoint (see [guarded_read]). *)
  let phase c ~read ~write =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          if !attempts > 1 then Smr_stats.uaf_abort c.st;
          let payload, _recs = read () in
          Smr_stats.uaf_commit c.st;
          write payload)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  let read_only c f =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          if !attempts > 1 then Smr_stats.uaf_abort c.st;
          let r = f () in
          Smr_stats.uaf_commit c.st;
          r)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  (* The 2GE per-dereference protocol (Wen et al., fig. 4): read the
     pointer, then check that the global era still equals the announced
     upper bound; if not, extend the announcement and re-read.  The value
     finally returned was read while [hi = era], so its birth era is
     covered by the announced interval.

     That induction has a second leg: the re-read only proves anything if
     the cell reflects the current structure.  When the ratchet fires, the
     era moved while we held the cell — potentially a whole deschedule, in
     which [src] itself may have been retired.  Its links are then frozen
     stale copies: they can point at a record born after our old upper
     bound that a sweep (correctly) never saw as pinned and has already
     freed, and re-reading the frozen cell just returns the same dangling
     value.  So a fired ratchet validates that the source is still live,
     and aborts the read phase through the checkpoint when it is not —
     HP's validation obligation, surfacing in IBR only on the era-moved
     slow path.  ([src] is [-1] for the root: structure heads are never
     retired, so their cells are always current and need no validation;
     an int sentinel rather than an option keeps the per-read fast path
     allocation-free.) *)
  let guarded_read c cell ~src =
    let rec loop () =
      let v = Rt.load cell in
      let e = Rt.plain_load c.b.era in
      if e <> c.cached_hi then begin
        Rt.store c.b.hi.(c.tid) e;
        c.cached_hi <- e;
        (* [unsafe_ibr_no_validate] is ablation A3: skipping this check
           reintroduces the PR 4 frozen-link unsoundness, which the
           schedule-explorer regression re-finds from a certificate. *)
        if
          src >= 0
          && (not c.b.cfg.Smr_config.unsafe_ibr_no_validate)
          && not (P.live c.b.pool src)
        then raise Rt.Neutralized;
        loop ()
      end
      else v
    in
    let v = loop () in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_root c root = guarded_read c root ~src:(-1)

  let read_ptr c ~src ~field =
    guarded_read c (P.ptr_cell c.b.pool src field) ~src

  (* Interval protection covers targets of guarded dereferences, so data
     reads of an already-covered record need no ratchet.  A [Stale]
     result is the frozen-link unsoundness surfacing (possible only with
     ablation A3, or through the paper's P5-style misuse): the foil-like
     honest behaviour is to consume the recycled memory and let
     [record_read] convict the access — which is exactly what the
     stored-certificate regression replays. *)
  let read_data c ~src ~field =
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let peek_ptr c ~src ~field =
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  (* Mark-tagged links are read out of unlinked records (Harris traversal),
     where no liveness validation is possible — the P5 limitation, exactly
     as for HP/HE.  Structures that need [read_raw] are never paired with
     IBR; the ratchet is kept so the announced interval stays monotone. *)
  let read_raw c cell =
    let rec loop () =
      let v = Rt.load cell in
      let e = Rt.plain_load c.b.era in
      if e <> c.cached_hi then begin
        Rt.store c.b.hi.(c.tid) e;
        c.cached_hi <- e;
        loop ()
      end
      else v
    in
    loop ()

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
