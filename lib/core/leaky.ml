(** The "none" baseline: never reclaim.

    Retired records are abandoned; allocation always takes fresh slots from
    the pool.  This is the paper's leaky upper-bound on throughput (no
    reclamation costs at all) and the foil for the E2 memory experiments
    (its footprint grows linearly with updates). *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type t = {
    pool : P.t;
    lc : L.t;
    done_stats : Smr_stats.t;
    mutable ctxs : ctx option array;
  }

  and ctx = { b : t; tid : int; st : Smr_stats.t }

  let scheme_name = "none"
  let bounded_garbage = false

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    {
      pool;
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
    }

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c = { b; tid; st = Smr_stats.zero () } in
    b.ctxs.(tid) <- Some c;
    c

  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0

  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0

  (* Nothing to adopt into: abandoned records leak by design, and a
     departing thread buffers nothing, so no parcels are ever pushed. *)
  let adopt_orphans _ = ()

  (* No limbo bags, so externalization is vacuous: nothing to hand off
     and nothing a reclaimer could collect. *)
  let set_offload _ _ = ()
  let limbo_size _ = 0
  let hand_off _ = 0
  let collect_handoffs _ = 0

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      L.with_stats_lock c.b.lc (fun () -> Smr_stats.add c.b.done_stats c.st);
      c.b.ctxs.(c.tid) <- None
    end

  (* Nothing to flush: abandoned records are gone for good, which is the
     point of the baseline — under pool pressure it simply exhausts. *)
  let on_pressure _ = ()
  let alloc ?cls c = P.alloc ?cls c.b.pool

  let retire c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1;
    (* Every retire is garbage forever. *)
    Smr_stats.note_garbage c.st (Smr_stats.retires c.st)

  (* No neutralization, so a phase never restarts: any UAF read it made
     is committed when the phase completes (which is immediately). *)
  let phase c ~read ~write =
    let payload, _recs = read () in
    Smr_stats.uaf_commit c.st;
    write payload

  let read_only c f =
    let r = f () in
    Smr_stats.uaf_commit c.st;
    r

  let read_root c root =
    let v = Rt.load root in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_ptr c ~src ~field =
    let v = Rt.load (P.ptr_cell c.b.pool src field) in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_raw _c cell = Rt.load cell

  (* Nothing is ever freed, so a handle can never go stale here; the
     match is for interface parity with schemes that can race
     reclamation. *)
  let read_data c ~src ~field =
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let peek_ptr c ~src ~field =
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
