(** Thread lifecycle and crash recovery, shared by every scheme.

    PR 1's chaos plans crash threads mid-operation, orphaning their
    announcements, reservation rows and limbo bags; until now nothing
    ever recovered that memory, so one crash silently turned every
    bounded-garbage scheme into a leaky one.  This module is the common
    machinery behind the two recovery paths of DEBRA+-style robustness
    (Brown, PODC'17):

    - {e graceful leave} ([Smr_intf.S.deregister]): the departing thread
      publishes its buffered retires as {e orphan parcels} on a
      lock-free Treiber stack; any live thread adopts and drains them on
      a later [end_op]/[on_pressure] ([Smr_intf.S.adopt_orphans]).
    - {e crash detection} ({!scan}): schemes with a reclamation scan
      piggyback a watchdog on it.  Every thread's runtime heartbeat
      ({!Rt.heartbeat}) is a monotone counter advanced at each delivery
      point; a peer whose heartbeat stays frozen through exponentially
      spaced escalation rounds is declared dead — one watchdog wins the
      claim CAS, clears the victim's published rows (scheme-specific),
      drains its bag into orphan parcels, and folds its stats away.

    A claimed thread that turns out to be alive (a stall longer than the
    watchdog threshold) is {e expelled}: its next [begin_op] raises
    {!Smr_intf.Expelled} before it can touch shared state, so the claim
    is never racing a live owner through an operation.  The watchdog
    threshold ([Smr_config.wd_timeout_ns], escalated [wd_rounds] times)
    is therefore chosen an order of magnitude above any injected stall.

    Determinism: in the simulator heartbeats are exact and every scan
    step is a charged access of the single-domain scheduler, so watchdog
    verdicts — and the chaos trials built on them — replay bit-for-bit
    from a seed.  Natively the heartbeat reads are stale-tolerant plain
    loads; staleness only delays a verdict. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  type parcel = { origin : int; slots : int list }
  (** A dead or departed thread's buffered retires.  The records are
      already marked Retired in the pool; adopters re-buffer them as
      their own and free them through their normal sweeps. *)

  (* Per-thread lifecycle states.  Transitions:
       active --CAS(watchdog)--> claimed --> reaped --register--> active
       active --CAS(owner)----> departed --register--> active      *)
  let st_active = 0
  let st_claimed = 1
  let st_reaped = 2
  let st_departed = 3

  type t = {
    n : int;
    orphans : parcel Nbr_sync.Treiber.t;
    handoffs : parcel Nbr_sync.Treiber.t;
        (** limbo bags exported by live workers for the background
            reclaimer.  A separate channel from [orphans] on purpose:
            orphans are anyone's to adopt on the next [end_op], while a
            handoff is addressed to whoever plays the reclaimer role —
            workers must not race it for parcels they just shed. *)
    state : Rt.aint array;  (** padded per-thread lifecycle state *)
    stats_lock : Rt.aint;  (** guards [done_stats] folds (cold paths only) *)
    (* Watchdog freshness bookkeeping.  Plain host arrays written by
       whichever thread runs a scan: races lose an observation at worst,
       which delays a verdict; the claim CAS above is the only
       irreversible step and it is properly serialized. *)
    hb_seen : int array;
    hb_seen_at : int array;  (** 0 = not yet observed *)
    round : int array;
  }

  let create ~nthreads =
    {
      n = nthreads;
      orphans = Nbr_sync.Treiber.create ();
      handoffs = Nbr_sync.Treiber.create ();
      state = Array.init nthreads (fun _ -> Rt.make_padded st_active);
      stats_lock = Rt.make_padded 0;
      hb_seen = Array.make nthreads 0;
      hb_seen_at = Array.make nthreads 0;
      round = Array.make nthreads 0;
    }

  (* Called by [register]: make the slot live (again) and forget stale
     watchdog bookkeeping from a previous occupant. *)
  let reset_slot l tid =
    l.hb_seen.(tid) <- 0;
    l.hb_seen_at.(tid) <- 0;
    l.round.(tid) <- 0;
    Rt.store l.state.(tid) st_active

  let is_active l tid = Rt.load l.state.(tid) = st_active

  (** The expulsion check at the top of every [begin_op].  Gated on
      fault injection being active: claims only ever happen under an
      installed fault decider, so fault-free runs (every benchmark) pay
      one not-taken branch.  Raising {e before} the operation touches
      any shared state is what makes a mistaken claim of a live-but-slow
      thread safe: the victim retires instead of racing its reaper. *)
  let check_self l tid =
    if Rt.fault_injection_active () && not (is_active l tid) then
      raise Smr_intf.Expelled

  (** CAS-out for a graceful leave; false means a watchdog claimed us
      first and owns our state — the caller must touch nothing. *)
  let depart l tid = Rt.cas l.state.(tid) st_active st_departed

  (* done_stats folds come from deregistering owners and from [stats]
     readers — concurrent under churn, never on a hot path. *)
  let with_stats_lock l f =
    while not (Rt.cas l.stats_lock 0 1) do
      Rt.cpu_relax ()
    done;
    Fun.protect ~finally:(fun () -> Rt.store l.stats_lock 0) f

  let push_parcel l ~origin slots =
    if slots <> [] then begin
      (* Treiber cells are stdlib atomics (uncosted); charge the sim a
         CAS-sized publish like the pool's overflow path does. *)
      Rt.work 20;
      Nbr_sync.Treiber.push l.orphans { origin; slots }
    end

  (* One stdlib atomic load: cheap enough for every [end_op]. *)
  let has_orphans l = not (Nbr_sync.Treiber.is_empty l.orphans)

  let push_handoff l ~origin slots =
    if slots <> [] then begin
      Rt.work 20;
      Nbr_sync.Treiber.push l.handoffs { origin; slots }
    end

  let has_handoffs l = not (Nbr_sync.Treiber.is_empty l.handoffs)

  (** Drain every handed-off parcel into the collector via [push] (one
      call per record); returns the number collected.  Same re-accounting
      contract as {!adopt} — the collector owns the records from here on
      and frees them through its normal sweeps. *)
  let take_handoffs l ~push =
    let total = ref 0 in
    let rec go () =
      match Nbr_sync.Treiber.pop l.handoffs with
      | None -> ()
      | Some p ->
          Rt.work 20;
          List.iter push p.slots;
          total := !total + List.length p.slots;
          go ()
    in
    go ();
    !total

  (** Drain every parcel into the adopter via [push] (one call per
      record); returns the number adopted.  The adopter must re-account
      the records as its own buffered garbage — orphans count against
      the adopter's bound, which is exactly what the strengthened chaos
      test checks. *)
  let adopt l ~tid ~push =
    let total = ref 0 in
    let rec go () =
      match Nbr_sync.Treiber.pop l.orphans with
      | None -> ()
      | Some p ->
          Rt.work 20;
          List.iter push p.slots;
          let k = List.length p.slots in
          total := !total + k;
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Orphan_adopted p.origin k;
          go ()
    in
    go ();
    !total

  (** The watchdog scan, piggybacked on the reclamation path of every
      bounded-garbage scheme (and only those: DEBRA/QSBR/RCU keep their
      unbounded-foil role in the chaos suite).  For each active peer:
      record heartbeat freshness; once frozen past
      [timeout_ns * 2^round], escalate — emit [Heartbeat_timeout], run
      [on_round] (NBR re-sends its neutralization signal here), bump the
      round; frozen past [timeout_ns * 2^rounds], claim and [reap].
      Runs only under an installed fault decider (see {!check_self}). *)
  let scan l ~self ~timeout_ns ~rounds ~on_round ~reap =
    if Rt.fault_injection_active () then
      for t = 0 to l.n - 1 do
        if t <> self && is_active l t then begin
          let h = Rt.heartbeat t in
          let now = Rt.now_ns () in
          if h <> l.hb_seen.(t) || l.hb_seen_at.(t) = 0 then begin
            l.hb_seen.(t) <- h;
            l.hb_seen_at.(t) <- now;
            l.round.(t) <- 0
          end
          else begin
            let age = now - l.hb_seen_at.(t) in
            let r = l.round.(t) in
            if r < rounds then begin
              if age > timeout_ns lsl r then begin
                if !Nbr_obs.Trace.on then
                  Nbr_obs.Trace.emit ~tid:self ~ns:now
                    Nbr_obs.Trace.Heartbeat_timeout t r;
                on_round ~peer:t ~round:r;
                l.round.(t) <- r + 1
              end
            end
            else if age > timeout_ns lsl rounds then
              if Rt.cas l.state.(t) st_active st_claimed then begin
                if !Nbr_obs.Trace.on then
                  Nbr_obs.Trace.emit ~tid:self ~ns:(Rt.now_ns ())
                    Nbr_obs.Trace.Peer_declared_dead t h;
                reap t;
                Rt.store l.state.(t) st_reaped
              end
          end
        end
      done

  (** Whether [t]'s heartbeat has been frozen longer than [timeout_ns]
      as of the last {!scan} observations: such a peer is not executing,
      so a pending signal will reach it before its next access and a
      broadcast handshake need not wait for its acknowledgement. *)
  let looks_stale l t ~timeout_ns =
    l.hb_seen_at.(t) > 0
    && Rt.heartbeat t = l.hb_seen.(t)
    && Rt.now_ns () - l.hb_seen_at.(t) > timeout_ns
end
