(** Thread lifecycle and crash recovery, shared by every scheme.

    PR 1's chaos plans crash threads mid-operation, orphaning their
    announcements, reservation rows and limbo bags; this module is the
    common machinery behind the two recovery paths of DEBRA+-style
    robustness (Brown, PODC'17): {e graceful leave} (the departing
    thread publishes its buffered retires as orphan parcels for live
    threads to adopt) and {e crash detection} (a heartbeat watchdog
    piggybacked on the reclamation scan claims frozen peers, reaps their
    published state, and orphans their bags).

    A claimed thread that turns out to be alive is {e expelled}: its
    next [begin_op] raises {!Smr_intf.Expelled} before it touches shared
    state, so a claim never races a live owner through an operation.

    Determinism: under the simulator heartbeats are exact and every scan
    step is a charged access of the single-domain scheduler, so watchdog
    verdicts replay bit-for-bit from a seed.  See lifecycle.ml for the
    full protocol narrative and state machine. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) : sig
  type parcel = { origin : int; slots : int list }
  (** A dead or departed thread's buffered retires.  The records are
      already marked Retired in the pool; adopters re-buffer them as
      their own and free them through their normal sweeps. *)

  type t

  val create : nthreads:int -> t

  val reset_slot : t -> int -> unit
  (** Called by [register]: make the slot live (again) and forget stale
      watchdog bookkeeping from a previous occupant. *)

  val is_active : t -> int -> bool
  (** The thread holds its slot: neither departed, claimed nor reaped. *)

  val check_self : t -> int -> unit
  (** The expulsion check at the top of every [begin_op]: raises
      {!Smr_intf.Expelled} if a watchdog claimed this thread.  Gated on
      [Rt.fault_injection_active], so fault-free runs pay one not-taken
      branch. *)

  val depart : t -> int -> bool
  (** CAS-out for a graceful leave; [false] means a watchdog claimed us
      first and owns our state — the caller must touch nothing. *)

  val with_stats_lock : t -> (unit -> 'a) -> 'a
  (** Serialize [done_stats] folds (deregistering owners and [stats]
      readers — cold paths only). *)

  val push_parcel : t -> origin:int -> int list -> unit
  (** Publish a departing/reaped thread's buffered retires as an orphan
      parcel (no-op on the empty list). *)

  val has_orphans : t -> bool
  (** One stdlib atomic load: cheap enough for every [end_op]. *)

  val adopt : t -> tid:int -> push:(int -> unit) -> int
  (** Drain every parcel into the adopter via [push] (one call per
      record); returns the number adopted.  The adopter must re-account
      the records as its own buffered garbage — orphans count against
      the adopter's bound. *)

  val push_handoff : t -> origin:int -> int list -> unit
  (** Export a live worker's limbo bag for the background reclaimer
      (no-op on the empty list).  Unlike {!push_parcel}, the records go
      to a dedicated handoff channel that only the reclaimer role (or an
      explicit end-of-trial drainer) consumes via {!take_handoffs} —
      workers never race it for parcels they just shed. *)

  val has_handoffs : t -> bool
  (** One stdlib atomic load. *)

  val take_handoffs : t -> push:(int -> unit) -> int
  (** Drain every handed-off parcel into the collector via [push] (one
      call per record); returns the number collected.  Same
      re-accounting contract as {!adopt}: the collector owns the records
      from here on and frees them through its normal sweeps. *)

  val scan :
    t ->
    self:int ->
    timeout_ns:int ->
    rounds:int ->
    on_round:(peer:int -> round:int -> unit) ->
    reap:(int -> unit) ->
    unit
  (** The watchdog scan, piggybacked on the reclamation path of every
      bounded-garbage scheme.  For each active peer: record heartbeat
      freshness; once frozen past [timeout_ns * 2^round], escalate —
      emit [Heartbeat_timeout], run [on_round] (NBR re-sends its
      neutralization signal here), bump the round; frozen past
      [timeout_ns * 2^rounds], claim the peer and run [reap].  Runs only
      under an installed fault decider (see {!check_self}). *)

  val looks_stale : t -> int -> timeout_ns:int -> bool
  (** Whether the peer's heartbeat has been frozen longer than
      [timeout_ns] as of the last {!scan} observations: such a peer is
      not executing, so a pending signal will reach it before its next
      access and a broadcast handshake need not wait for its
      acknowledgement. *)
end
