(** Per-thread limbo bag: a FIFO of retired record slots.

    Entries are addressed by {e absolute position} — a counter of all
    pushes ever made — because NBR+ bookmarks a tail position when it
    crosses the LoWatermark and later reclaims "everything retired
    before the bookmark" (Algorithm 2, lines 14/19).  {!sweep} examines
    the prefix of entries older than a bound, frees the unreserved ones
    and re-appends the reserved ones at the tail (they will be
    re-examined after a later grace period, which is safe: an entry is
    only ever {e more} retired as time passes).

    Thread-local: one bag per context, never shared.  The background
    reclaimer (DESIGN.md §12) never touches a worker's bag directly —
    externalization flattens bags into handoff parcels on the owner's
    own retire path. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh empty bag; the backing ring (default 64 entries) grows by
    doubling as needed. *)

val size : t -> int
(** Live entries currently buffered. *)

val abs_tail : t -> int
(** Absolute position one past the newest entry; a bookmark taken now
    covers exactly the entries pushed so far. *)

val push : t -> int -> unit
(** Append a retired slot at the tail. *)

val pop_front : t -> int
(** Remove and return the oldest entry.  Raises [Invalid_argument] when
    empty. *)

val sweep : t -> upto:int -> keep:(int -> bool) -> free:(int -> unit) -> int
(** [sweep t ~upto ~keep ~free] examines every entry with absolute
    position [< upto]: reserved entries ([keep e = true]) are
    re-appended at the tail, the rest are passed to [free].  Returns the
    number freed. *)

val iter : (int -> unit) -> t -> unit
(** Visit every live entry, oldest first, without disturbing the bag. *)
