(** NBR: Neutralization Based Reclamation (paper Algorithm 1).

    Each thread buffers unlinked records in its limbo bag; when the bag
    reaches the threshold the thread sends a neutralizing signal to every
    other thread ([signalAll]), then scans all reservations and frees every
    unreserved record in its bag.  Readers respond to signals by restarting
    their read phase; writers are protected by the reservations they
    published before becoming non-restartable.

    This is the baseline version: every reclamation event costs n-1
    signals, so a collective round of reclamation costs O(n²) signals —
    the bottleneck NBR+ removes (§5). *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module B = Nbr_base.Make (Rt)

  type aint = B.aint
  type pool = B.pool
  type t = B.t
  type ctx = B.ctx

  let scheme_name = "nbr"
  let bounded_garbage = true

  let create = B.create
  let register = B.register
  let deregister = B.deregister
  let adopt_orphans = B.adopt_orphans
  let begin_op = B.begin_op
  let end_op = B.end_op
  let alloc = B.alloc
  let phase = B.phase
  let read_only = B.read_only
  let read_root = B.read_root
  let read_ptr = B.read_ptr
  let read_raw = B.read_raw
  let read_data = B.read_data
  let peek_ptr = B.peek_ptr
  let stats = B.stats
  let ctx_stats = B.ctx_stats
  let on_pressure = B.flush
  let set_offload = B.set_offload
  let limbo_size = B.limbo_size
  let hand_off = B.hand_off
  let collect_handoffs = B.collect_handoffs

  (* Algorithm 1, lines 14–20 — with the threshold crossing first offered
     to the background reclaimer: an accepted handoff replaces the whole
     signalAll + scan with one channel push. *)
  let retire (c : ctx) slot =
    B.note_retired c slot;
    let open Smr_config in
    if Limbo_bag.size c.bag >= c.b.cfg.bag_threshold then
      if not (B.maybe_offload c) then begin
        B.broadcast c;
        B.reclaim_freeable c ~upto:(Limbo_bag.abs_tail c.bag);
        Smr_stats.add_reclaim_events c.st 1
      end;
    B.bag_push c slot
end
