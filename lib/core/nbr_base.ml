(** Shared machinery of NBR and NBR+ (Algorithm 1 of the paper).

    Contains everything except the [retire] policy, which is where the two
    schemes differ: reservations, the restartable flag discipline, the
    reader–reclaimer and writers' handshakes, [signalAll] and
    [reclaimFreeable].  {!Nbr.Make} and {!Nbr_plus.Make} instantiate this
    base and plug in Algorithm 1's and Algorithm 2's [retire]. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type t = {
    pool : P.t;
    n : int;
    cfg : Smr_config.t;
    reservations : Rt.aint array array;
        (** [reservations.(tid).(i)]: swmr announcement slots (line 5). *)
    announce_ts : Rt.aint array;
        (** NBR+ per-thread even/odd broadcast timestamps (Algorithm 2);
            allocated here so the base can stay scheme-agnostic. *)
    done_stats : Smr_stats.t;  (** folded in from finished contexts *)
    mutable ctxs : ctx option array;
  }

  and ctx = {
    b : t;
    tid : int;
    bag : Limbo_bag.t;
    scratch : int array;  (** collected reservations, sorted in place *)
    st : Smr_stats.t;
    (* NBR+ LoWatermark state (unused by plain NBR): *)
    scan_ts : int array;
    mutable first_lo : bool;
    mutable bookmark : int;
    mutable retires_since_scan : int;
  }

  let create pool ~nthreads cfg =
    {
      pool;
      n = nthreads;
      cfg;
      (* Padded cells: each thread's SWMR slots are written on every
         [end_read] and scanned by every reclaimer — unpadded, eight
         threads' worth of [Atomic.t] blocks pack into one cache line and
         every publication invalidates every reader's line. *)
      reservations =
        Array.init nthreads (fun _ ->
            Array.init cfg.Smr_config.max_reservations (fun _ ->
                Rt.make_padded P.nil));
      announce_ts = Array.init nthreads (fun _ -> Rt.make_padded 0);
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
    }

  let register b ~tid =
    let c =
      {
        b;
        tid;
        bag = Limbo_bag.create ~capacity:(b.cfg.Smr_config.bag_threshold + 8) ();
        scratch = Array.make (b.n * b.cfg.Smr_config.max_reservations) 0;
        st = Smr_stats.zero ();
        scan_ts = Array.make b.n 0;
        first_lo = true;
        bookmark = 0;
        retires_since_scan = 0;
      }
    in
    b.ctxs.(tid) <- Some c;
    c

  (* ------------------------------------------------------------------ *)
  (* Read/write phase protocol (Algorithm 1, lines 6–13).                *)

  let begin_read c =
    let res = c.b.reservations.(c.tid) in
    for i = 0 to Array.length res - 1 do
      Rt.store res.(i) P.nil
    done;
    (* Signals sent while we held no pointers need no action (the paper's
       "quiescent/preamble" handler case). *)
    Rt.drain_signals_t c.tid;
    (* CAS(&restartable,0,1): the RMW orders the flag before any
       subsequent read of shared records (paper line 8 discussion). *)
    Rt.set_restartable_t c.tid true

  let end_read c recs =
    let res = c.b.reservations.(c.tid) in
    let r = Array.length recs in
    assert (r <= Array.length res);
    for i = 0 to r - 1 do
      Rt.store res.(i) recs.(i)
    done;
    (* CAS(&restartable,1,0): fence broadcasting the reservations before
       the thread becomes non-restartable (paper line 12 discussion). *)
    Rt.set_restartable_t c.tid false;
    if !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
        Nbr_obs.Trace.Reservation_publish r 0;
    (* Polling runtimes: a signal that arrived before the publication
       completed may have been missed by the sender's scan; restart (no
       shared write has happened yet, so this is always legal).  The
       [unsafe_end_read] knob disables this for ablation A2. *)
    if
      (not c.b.cfg.Smr_config.unsafe_end_read)
      && Rt.consume_pending_t c.tid
    then raise Rt.Neutralized

  (* A replay entering the checkpoint body again: between the Neutralized
     event of the aborted attempt and the Reservation_publish of the next
     successful one, which is what puts the four timeline events of a
     neutralized reader in causal order. *)
  let note_attempt c attempts =
    if attempts > 1 then begin
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Restart
          (attempts - 1) 0
    end

  let phase c ~read ~write =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          note_attempt c !attempts;
          begin_read c;
          let payload, recs = read () in
          end_read c recs;
          write payload)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  let read_only c f =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          note_attempt c !attempts;
          begin_read c;
          let r = f () in
          end_read c [||];
          r)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  (* ------------------------------------------------------------------ *)
  (* Guarded traversal.                                                  *)

  (* [poll_t c.tid] rather than [poll ()]: the context already knows its
     tid, so the per-dereference DLS lookup the argless form pays in the
     native runtime disappears from the hottest path in the system. *)

  let read_root c root =
    Rt.poll_t c.tid;
    let v = Rt.load root in
    if v >= 0 then P.record_read c.b.pool v;
    v

  let read_ptr c ~src ~field =
    Rt.poll_t c.tid;
    let v = Rt.load (P.ptr_cell c.b.pool src field) in
    if v >= 0 then P.record_read c.b.pool v;
    v

  let read_raw c cell =
    Rt.poll_t c.tid;
    Rt.load cell

  (* ------------------------------------------------------------------ *)
  (* Reclamation (Algorithm 1, lines 14–24).                             *)

  let signal_all c =
    for t = 0 to c.b.n - 1 do
      if t <> c.tid then Rt.send_signal t
    done

  (* Collect every other thread's reservations into [c.scratch], sorted;
     returns the count.  Scanned *after* signalling (writers' handshake
     step 3). *)
  let collect_reservations c =
    let k = ref 0 in
    for t = 0 to c.b.n - 1 do
      if t <> c.tid then begin
        let res = c.b.reservations.(t) in
        for i = 0 to Array.length res - 1 do
          let v = Rt.load res.(i) in
          if v >= 0 then begin
            c.scratch.(!k) <- v;
            incr k
          end
        done
      end
    done;
    let a = Array.sub c.scratch 0 !k in
    Array.sort compare a;
    Array.blit a 0 c.scratch 0 !k;
    !k

  let mem_sorted a n x =
    let rec go lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if a.(mid) = x then true
        else if a.(mid) < x then go (mid + 1) hi
        else go lo mid
    in
    go 0 n

  (* Free every unreserved record retired before absolute bag position
     [upto]. *)
  let reclaim_freeable c ~upto =
    let k = collect_reservations c in
    let before = Limbo_bag.size c.bag in
    let freed =
      Limbo_bag.sweep c.bag ~upto
        ~keep:(fun slot -> mem_sorted c.scratch k slot)
        ~free:(fun slot -> P.free c.b.pool slot)
    in
    Smr_stats.add_freed c.st freed;
    if !Nbr_obs.Trace.on then begin
      let ns = Rt.now_ns () in
      Nbr_obs.Trace.emit ~tid:c.tid ~ns Nbr_obs.Trace.Bag_sweep before
        (before - freed);
      Nbr_obs.Trace.emit ~tid:c.tid ~ns Nbr_obs.Trace.Reclaim freed
        (Limbo_bag.size c.bag)
    end

  (* ------------------------------------------------------------------ *)

  let begin_op _c = ()
  let end_op _c = ()

  (* Threshold-independent reclamation event, for pool pressure: a full
     broadcast + sweep regardless of bag size (Algorithm 1's HiWatermark
     body, run early).  Legal wherever [alloc] is: the caller is
     non-restartable, holds no locks inside the SMR layer, and never
     touches records it has retired. *)
  let flush c =
    if Limbo_bag.size c.bag > 0 then begin
      signal_all c;
      reclaim_freeable c ~upto:(Limbo_bag.abs_tail c.bag);
      Smr_stats.add_reclaim_events c.st 1
    end

  let alloc c = P.alloc ~on_pressure:(fun () -> flush c) c.b.pool

  let note_retired c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1

  (* Record the bounded-garbage high-water mark after a bag push. *)
  let note_buffered c n = Smr_stats.note_garbage c.st n

  (* Buffer an unlinked record: the tail of both schemes' [retire]. *)
  let bag_push c slot =
    Limbo_bag.push c.bag slot;
    let n = Limbo_bag.size c.bag in
    if !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Bag_push
        slot n;
    note_buffered c n

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    Smr_stats.add acc b.done_stats;
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
