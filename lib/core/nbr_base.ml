(** Shared machinery of NBR and NBR+ (Algorithm 1 of the paper).

    Contains everything except the [retire] policy, which is where the two
    schemes differ: reservations, the restartable flag discipline, the
    reader–reclaimer and writers' handshakes, [signalAll] and
    [reclaimFreeable].  {!Nbr.Make} and {!Nbr_plus.Make} instantiate this
    base and plug in Algorithm 1's and Algorithm 2's [retire]. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type t = {
    pool : P.t;
    n : int;
    cfg : Smr_config.t;
    reservations : Rt.aint array array;
        (** [reservations.(tid).(i)]: swmr announcement slots (line 5). *)
    announce_ts : Rt.aint array;
        (** NBR+ per-thread even/odd broadcast timestamps (Algorithm 2);
            allocated here so the base can stay scheme-agnostic. *)
    lc : L.t;  (** thread lifecycle: orphan parcels + crash watchdog *)
    done_stats : Smr_stats.t;  (** folded in from finished contexts *)
    mutable ctxs : ctx option array;
    mutable offload : Smr_intf.Offload.t option;
        (** background-reclamation switchboard; None = inline only *)
  }

  and ctx = {
    b : t;
    tid : int;
    bag : Limbo_bag.t;
    scratch : int array;  (** collected reservations, sorted in place *)
    st : Smr_stats.t;
    (* Handshake snapshots (one slot per peer), scratch for [broadcast]: *)
    hs_seen0 : int array;
    hs_hb0 : int array;
    (* NBR+ LoWatermark state (unused by plain NBR): *)
    scan_ts : int array;
    mutable first_lo : bool;
    mutable bookmark : int;
    mutable retires_since_scan : int;
  }

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    {
      pool;
      n = nthreads;
      cfg;
      (* Padded cells: each thread's SWMR slots are written on every
         [end_read] and scanned by every reclaimer — unpadded, eight
         threads' worth of [Atomic.t] blocks pack into one cache line and
         every publication invalidates every reader's line. *)
      reservations =
        Array.init nthreads (fun _ ->
            Array.init cfg.Smr_config.max_reservations (fun _ ->
                Rt.make_padded P.nil));
      announce_ts = Array.init nthreads (fun _ -> Rt.make_padded 0);
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
      offload = None;
    }

  let set_offload b o = b.offload <- o

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c =
      {
        b;
        tid;
        bag = Limbo_bag.create ~capacity:(b.cfg.Smr_config.bag_threshold + 8) ();
        scratch = Array.make (b.n * b.cfg.Smr_config.max_reservations) 0;
        st = Smr_stats.zero ();
        hs_seen0 = Array.make b.n 0;
        hs_hb0 = Array.make b.n 0;
        scan_ts = Array.make b.n 0;
        first_lo = true;
        bookmark = 0;
        retires_since_scan = 0;
      }
    in
    b.ctxs.(tid) <- Some c;
    c

  (* ------------------------------------------------------------------ *)
  (* Read/write phase protocol (Algorithm 1, lines 6–13).                *)

  let begin_read c =
    let res = c.b.reservations.(c.tid) in
    for i = 0 to Array.length res - 1 do
      Rt.store res.(i) P.nil
    done;
    (* Signals sent while we held no pointers need no action (the paper's
       "quiescent/preamble" handler case). *)
    Rt.drain_signals_t c.tid;
    (* CAS(&restartable,0,1): the RMW orders the flag before any
       subsequent read of shared records (paper line 8 discussion). *)
    Rt.set_restartable_t c.tid true;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
        Nbr_obs.Trace.Checkpoint_set 0 0

  let end_read c recs =
    let res = c.b.reservations.(c.tid) in
    let r = Array.length recs in
    assert (r <= Array.length res);
    for i = 0 to r - 1 do
      Rt.store res.(i) recs.(i)
    done;
    (* CAS(&restartable,1,0): fence broadcasting the reservations before
       the thread becomes non-restartable (paper line 12 discussion). *)
    Rt.set_restartable_t c.tid false;
    if !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
        Nbr_obs.Trace.Reservation_publish r 0;
    (* Polling runtimes: a signal that arrived before the publication
       completed may have been missed by the sender's scan; restart (no
       shared write has happened yet, so this is always legal).  The
       [unsafe_end_read] knob disables this for ablation A2. *)
    if
      (not c.b.cfg.Smr_config.unsafe_end_read)
      && Rt.consume_pending_t c.tid
    then raise Rt.Neutralized;
    (* The phase completed: any UAF reads it performed were acted on. *)
    Smr_stats.uaf_commit c.st

  (* A replay entering the checkpoint body again: between the Neutralized
     event of the aborted attempt and the Reservation_publish of the next
     successful one, which is what puts the four timeline events of a
     neutralized reader in causal order. *)
  let note_attempt c attempts =
    if attempts > 1 then begin
      (* The previous attempt was neutralized: its UAF reads (if any)
         were poll-window reads whose value was discarded — benign. *)
      Smr_stats.uaf_abort c.st;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Restart
          (attempts - 1) 0
    end

  let phase c ~read ~write =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          note_attempt c !attempts;
          begin_read c;
          let payload, recs = read () in
          end_read c recs;
          write payload)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  let read_only c f =
    let attempts = ref 0 in
    let out =
      Rt.checkpoint (fun () ->
          incr attempts;
          note_attempt c !attempts;
          begin_read c;
          let r = f () in
          end_read c [||];
          r)
    in
    Smr_stats.add_restarts c.st (!attempts - 1);
    out

  (* ------------------------------------------------------------------ *)
  (* Guarded traversal.                                                  *)

  (* [poll_t c.tid] rather than [poll ()]: the context already knows its
     tid, so the per-dereference DLS lookup the argless form pays in the
     native runtime disappears from the hottest path in the system. *)

  let read_root c root =
    Rt.poll_t c.tid;
    let v = Rt.load root in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_ptr c ~src ~field =
    Rt.poll_t c.tid;
    match P.read_ptr c.b.pool src field with
    | P.Value v ->
        if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
        v
    | P.Stale _ ->
        (* The source record was freed under us — only possible in the
           native poll window (exact delivery in the sim neutralizes us
           first).  We are restartable by protocol, so abandon the read
           phase instead of traversing recycled memory; the restart
           bookkeeping classifies the detected read as benign. *)
        Smr_stats.note_uaf c.st;
        raise Rt.Neutralized

  (* Validated read-phase reads of non-pointer state (keys, marks,
     structural predicates): same staleness discipline as [read_ptr],
     minus the target protection — nothing is dereferenced. *)

  let read_data c ~src ~field =
    Rt.poll_t c.tid;
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale _ ->
        Smr_stats.note_uaf c.st;
        raise Rt.Neutralized

  let peek_ptr c ~src ~field =
    Rt.poll_t c.tid;
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale _ ->
        Smr_stats.note_uaf c.st;
        raise Rt.Neutralized

  let read_raw c cell =
    Rt.poll_t c.tid;
    Rt.load cell

  (* ------------------------------------------------------------------ *)
  (* Reclamation (Algorithm 1, lines 14–24).                             *)

  let signal_all c =
    for t = 0 to c.b.n - 1 do
      if t <> c.tid then Rt.send_signal t
    done

  (* ------------------------------------------------------------------ *)
  (* Crash recovery (see [Lifecycle]): reap a peer declared dead by the
     watchdog, and confirm broadcasts when signal delivery is suspect.   *)

  (* Retract [tid]'s published protection so it stops pinning records:
     reservations to nil, and a dead broadcaster's announce_ts rounded up
     to even so NBR+ LoWatermark scanners never treat its aborted
     broadcast as forever in-flight. *)
  let retract_published b tid =
    let res = b.reservations.(tid) in
    for i = 0 to Array.length res - 1 do
      Rt.store res.(i) P.nil
    done;
    let v = Rt.load b.announce_ts.(tid) in
    if v land 1 = 1 then Rt.store b.announce_ts.(tid) (v + 1)

  (* Drain [vc]'s limbo bag into an orphan parcel and fold its stats into
     [st] (the claimer's own, single-writer).  The records stay Retired
     in the pool; adopters re-buffer and free them through their sweeps. *)
  let orphan_ctx b ~into vc =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep vc.bag ~upto:(Limbo_bag.abs_tail vc.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_parcel b.lc ~origin:vc.tid !slots;
    Smr_stats.add into vc.st;
    b.ctxs.(vc.tid) <- None

  let reap_peer c victim =
    (* Reclaim the dead thread's magazines along with its bags. *)
    P.flush_thread c.b.pool ~tid:victim;
    retract_published c.b victim;
    match c.b.ctxs.(victim) with
    | None -> ()
    | Some vc -> orphan_ctx c.b ~into:c.st vc

  let watchdog c =
    L.scan c.b.lc ~self:c.tid ~timeout_ns:c.b.cfg.Smr_config.wd_timeout_ns
      ~rounds:c.b.cfg.Smr_config.wd_rounds
      ~on_round:(fun ~peer ~round:_ -> Rt.send_signal peer)
      ~reap:(fun v -> reap_peer c v)

  (* Wait until every live, executing peer has observed *some* signal
     since our pre-broadcast snapshot.  Any observation after the
     snapshot suffices: the observing thread restarts (or re-checks at
     end_read) after our retires were unlinked, which is all the
     handshake needs — the handler does not care who signalled.  Peers
     whose heartbeat freezes are dropped from the wait: a frozen peer is
     not executing, so its pending signal is delivered before its next
     access regardless (and the watchdog will deal with it if it stays
     frozen).  Peers that keep executing without observing — dropped
     signals — get escalating re-sends, then we give up: total wait is
     bounded by [wd_timeout_ns * 2^wd_rounds].

     The wait itself is exponential-backoff polling, not a busy spin:
     each unproductive check doubles a stall (capped at an eighth of the
     base timeout), so a writer stuck behind a slow acknowledger yields
     the core/fiber instead of burning it.  Giving up is itself an
     escalation: each still-unacked peer gets a [Handshake_timeout]
     event and one final watchdog scan — by now its heartbeat has been
     frozen through every backoff round, so a genuinely dead reader is
     claimed and reaped right here rather than wedging each subsequent
     broadcast for the full bounded wait. *)
  let confirm_broadcast c =
    let timeout = c.b.cfg.Smr_config.wd_timeout_ns in
    let rounds = c.b.cfg.Smr_config.wd_rounds in
    let t0 = Rt.now_ns () in
    let round = ref 0 in
    let backoff = ref 100 in
    let backoff_cap = max 100 (timeout / 8) in
    let unacked = ref [] in
    for t = c.b.n - 1 downto 0 do
      if
        t <> c.tid
        && L.is_active c.b.lc t
        && not (L.looks_stale c.b.lc t ~timeout_ns:timeout)
      then unacked := t :: !unacked
    done;
    let give_up = ref false in
    while (not !give_up) && !unacked <> [] do
      let late = Rt.now_ns () - t0 > timeout in
      unacked :=
        List.filter
          (fun t ->
            Rt.signals_seen t <= c.hs_seen0.(t)
            && not (late && Rt.heartbeat t = c.hs_hb0.(t)))
          !unacked;
      if !unacked <> [] then begin
        let age = Rt.now_ns () - t0 in
        if age > timeout lsl !round then
          if !round >= rounds then give_up := true
          else begin
            List.iter
              (fun t ->
                if !Nbr_obs.Trace.on then
                  Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
                    Nbr_obs.Trace.Heartbeat_timeout t !round;
                Rt.send_signal t)
              !unacked;
            incr round;
            backoff := 100
          end
        else begin
          (* Acknowledge peers' signals (and advance our own heartbeat)
             before sleeping, so two concurrently-confirming writers
             unblock each other; we are non-restartable here, so this
             only consumes. *)
          Rt.poll_t c.tid;
          Rt.stall_ns !backoff;
          backoff := min (2 * !backoff) backoff_cap
        end
      end
    done;
    if !give_up then begin
      Smr_stats.add_handshake_timeouts c.st (List.length !unacked);
      List.iter
        (fun t ->
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Handshake_timeout t rounds)
        !unacked;
      L.scan c.b.lc ~self:c.tid ~timeout_ns:timeout ~rounds
        ~on_round:(fun ~peer ~round:_ -> Rt.send_signal peer)
        ~reap:(fun v -> reap_peer c v)
    end

  (* [signal_all], upgraded: runs the crash watchdog first, and — only
     when a fault decider is installed, i.e. delivery is suspect — the
     blocking confirmation above.  Fault-free runs keep the paper's
     wait-free fire-and-forget broadcast. *)
  let broadcast c =
    watchdog c;
    if Rt.fault_injection_active () then begin
      for t = 0 to c.b.n - 1 do
        c.hs_seen0.(t) <- Rt.signals_seen t;
        c.hs_hb0.(t) <- Rt.heartbeat t
      done;
      signal_all c;
      confirm_broadcast c
    end
    else signal_all c

  (* Collect every other thread's reservations into [c.scratch], sorted;
     returns the count.  Scanned *after* signalling (writers' handshake
     step 3). *)
  let collect_reservations c =
    let k = ref 0 in
    for t = 0 to c.b.n - 1 do
      if t <> c.tid then begin
        let res = c.b.reservations.(t) in
        for i = 0 to Array.length res - 1 do
          let v = Rt.load res.(i) in
          if v >= 0 then begin
            c.scratch.(!k) <- v;
            incr k
          end
        done
      end
    done;
    let a = Array.sub c.scratch 0 !k in
    Array.sort compare a;
    Array.blit a 0 c.scratch 0 !k;
    !k

  let mem_sorted a n x =
    let rec go lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if a.(mid) = x then true
        else if a.(mid) < x then go (mid + 1) hi
        else go lo mid
    in
    go 0 n

  (* Free every unreserved record retired before absolute bag position
     [upto]. *)
  let reclaim_freeable c ~upto =
    let k = collect_reservations c in
    let before = Limbo_bag.size c.bag in
    let freed =
      Limbo_bag.sweep c.bag ~upto
        ~keep:(fun slot -> mem_sorted c.scratch k slot)
        ~free:(fun slot -> P.free c.b.pool slot)
    in
    Smr_stats.add_freed c.st freed;
    if !Nbr_obs.Trace.on then begin
      let ns = Rt.now_ns () in
      Nbr_obs.Trace.emit ~tid:c.tid ~ns Nbr_obs.Trace.Bag_sweep before
        (before - freed);
      Nbr_obs.Trace.emit ~tid:c.tid ~ns Nbr_obs.Trace.Reclaim freed
        (Limbo_bag.size c.bag)
    end

  (* ------------------------------------------------------------------ *)

  (* Record the bounded-garbage high-water mark after a bag push. *)
  let note_buffered c n = Smr_stats.note_garbage c.st n

  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0

  (* Re-buffer departed/crashed threads' retires as our own: they free
     through our normal sweeps and count against *our* garbage bound. *)
  let adopt_orphans c =
    let n =
      L.adopt c.b.lc ~tid:c.tid ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then note_buffered c (Limbo_bag.size c.bag)

  (* ------------------------------------------------------------------ *)
  (* Limbo-bag externalization (DESIGN.md §12): the whole bag is drained
     into a lifecycle handoff parcel, exactly like [orphan_ctx] drains a
     dead thread's bag — flattened slot lists are conservatively safe
     because adopters re-buffer them as freshly retired. *)

  let limbo_size c = Limbo_bag.size c.bag

  let export_bag c =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_handoff c.b.lc ~origin:c.tid !slots;
    List.length !slots

  let hand_off c = export_bag c

  (* Retire-path gate: offer the full bag to the reclaimer.  [false]
     means sweep inline — no offload installed, degraded, or the channel
     is backlogged (which flips the degrade switch as a side effect). *)
  let maybe_offload c =
    match c.b.offload with
    | None -> false
    | Some o ->
        let count = Limbo_bag.size c.bag in
        count > 0
        && Smr_intf.Offload.try_accept o ~tid:c.tid ~ns:(Rt.now_ns ()) ~count
        &&
        (ignore (export_bag c);
         true)

  let collect_handoffs c =
    let n =
      L.take_handoffs c.b.lc ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then begin
      note_buffered c (Limbo_bag.size c.bag);
      match c.b.offload with
      | Some o ->
          Smr_intf.Offload.note_collected o ~tid:c.tid ~ns:(Rt.now_ns ())
            ~count:n
      | None ->
          (* End-of-trial drain with the switchboard already gone: still
             emit the collection so the sanitizer's foreign-sweep credit
             and the trace timeline stay complete. *)
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Handoff_collect n 0
    end;
    n

  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0;
    (* One stdlib atomic load on the hot path; the active check guards a
       thread resuming after an [Expelled] verdict from adopting. *)
    if L.has_orphans c.b.lc && L.is_active c.b.lc c.tid then adopt_orphans c

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      retract_published c.b c.tid;
      L.with_stats_lock c.b.lc (fun () ->
          orphan_ctx c.b ~into:c.b.done_stats c)
    end
  (* else: a watchdog claimed us first and owns all of this state. *)

  (* Threshold-independent reclamation event, for pool pressure: a full
     broadcast + sweep regardless of bag size (Algorithm 1's HiWatermark
     body, run early).  Legal wherever [alloc] is: the caller is
     non-restartable, holds no locks inside the SMR layer, and never
     touches records it has retired. *)
  let flush c =
    if Limbo_bag.size c.bag > 0 then begin
      broadcast c;
      reclaim_freeable c ~upto:(Limbo_bag.abs_tail c.bag);
      Smr_stats.add_reclaim_events c.st 1
    end
    else watchdog c

  let alloc ?cls c = P.alloc ~on_pressure:(fun () -> flush c) ?cls c.b.pool

  let note_retired c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1

  (* Buffer an unlinked record: the tail of both schemes' [retire]. *)
  let bag_push c slot =
    Limbo_bag.push c.bag slot;
    let n = Limbo_bag.size c.bag in
    if !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Bag_push
        slot n;
    note_buffered c n

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
