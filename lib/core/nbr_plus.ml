(** NBR+: NBR with opportunistic reclamation (paper Algorithm 2).

    The insight: one thread's reclamation event neutralizes {e everyone},
    so during the resulting {e relaxed grace period} (RGP) every record
    already in any limbo bag becomes either reserved or safe.  A thread
    whose bag has crossed the LoWatermark therefore bookmarks its bag tail,
    snapshots everyone's broadcast timestamps, and waits: if it later
    observes some other thread's timestamp complete a full begin/end cycle
    (even → even, +2), an RGP has elapsed and it may free everything up to
    its bookmark {e without sending a single signal}.  Only a thread whose
    bag fills to the HiWatermark pays for a broadcast of its own.

    Timestamp parity: a thread increments its [announceTS] to an odd value
    before broadcasting and to an even value after (lines 7–9).

    Implementation note (parity round-up): Algorithm 2's check
    [announceTS ≥ scanTS + 2] is taken with the snapshot rounded up to the
    next even value.  For an odd snapshot (a broadcast was mid-flight when
    we bookmarked), [+2] alone would accept the completion of that same
    in-flight broadcast — whose earlier signals may predate our bookmark —
    plus the {e beginning} of the next; rounding up demands a broadcast
    that began strictly after the bookmark, which is what the safety
    argument (Lemma 9) actually needs. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module B = Nbr_base.Make (Rt)

  type aint = B.aint
  type pool = B.pool
  type t = B.t
  type ctx = B.ctx

  let scheme_name = "nbr+"
  let bounded_garbage = true

  let create = B.create
  let register = B.register
  let deregister = B.deregister
  let adopt_orphans = B.adopt_orphans
  let begin_op = B.begin_op
  let end_op = B.end_op
  let phase = B.phase
  let read_only = B.read_only
  let read_root = B.read_root
  let read_ptr = B.read_ptr
  let read_raw = B.read_raw
  let read_data = B.read_data
  let peek_ptr = B.peek_ptr
  let stats = B.stats
  let ctx_stats = B.ctx_stats
  let set_offload = B.set_offload
  let limbo_size = B.limbo_size
  let hand_off = B.hand_off
  let collect_handoffs = B.collect_handoffs

  let cleanup (c : ctx) =
    c.first_lo <- true;
    c.retires_since_scan <- 0

  (* Pool-pressure flush: a full HiWatermark-style broadcast, with the
     announce-timestamp parity kept up so peers waiting at their
     LoWatermark can count this RGP towards their own signal-free
     reclamation. *)
  let on_pressure (c : ctx) =
    if Limbo_bag.size c.bag > 0 then begin
      ignore (Rt.faa c.b.announce_ts.(c.tid) 1) (* odd: broadcasting  *);
      B.broadcast c;
      ignore (Rt.faa c.b.announce_ts.(c.tid) 1) (* even: RGP complete *);
      B.reclaim_freeable c ~upto:(Limbo_bag.abs_tail c.bag);
      Smr_stats.add_reclaim_events c.st 1;
      cleanup c
    end
    else B.watchdog c

  let alloc ?cls (c : ctx) =
    B.P.alloc ~on_pressure:(fun () -> on_pressure c) ?cls c.b.pool

  (* Algorithm 2, lines 5–26. *)
  let retire (c : ctx) slot =
    B.note_retired c slot;
    let open Smr_config in
    let cfg = c.b.cfg in
    let size = Limbo_bag.size c.bag in
    if size >= cfg.bag_threshold then begin
      (* HiWatermark — first offered to the background reclaimer: an
         accepted handoff costs one channel push where an RGP of our own
         costs n-1 signals.  The bookmark state resets either way. *)
      if B.maybe_offload c then cleanup c
      else begin
        ignore (Rt.faa c.b.announce_ts.(c.tid) 1) (* odd: broadcasting  *);
        B.broadcast c;
        ignore (Rt.faa c.b.announce_ts.(c.tid) 1) (* even: RGP complete *);
        B.reclaim_freeable c ~upto:(Limbo_bag.abs_tail c.bag);
        Smr_stats.add_reclaim_events c.st 1;
        cleanup c
      end
    end
    else if size >= cfg.lo_watermark then begin
      if c.first_lo then begin
        (* First retire past the LoWatermark: bookmark and snapshot
           (lines 13–16), rounding odd timestamps up — see note above. *)
        c.bookmark <- Limbo_bag.abs_tail c.bag;
        for t = 0 to c.b.n - 1 do
          let v = Rt.load c.b.announce_ts.(t) in
          c.scan_ts.(t) <- v + (v land 1)
        done;
        c.first_lo <- false;
        c.retires_since_scan <- 0
      end
      else begin
        (* Amortized RGP scan (footnote c). *)
        c.retires_since_scan <- c.retires_since_scan + 1;
        if c.retires_since_scan >= cfg.scan_period then begin
          c.retires_since_scan <- 0;
          let rgp = ref false in
          let t = ref 0 in
          while (not !rgp) && !t < c.b.n do
            if
              !t <> c.tid
              && Rt.load c.b.announce_ts.(!t) >= c.scan_ts.(!t) + 2
            then rgp := true;
            incr t
          done;
          if !rgp then begin
            B.reclaim_freeable c ~upto:c.bookmark;
            Smr_stats.add_lo_reclaims c.st 1;
            cleanup c
          end
        end
      end
    end;
    B.bag_push c slot
end
