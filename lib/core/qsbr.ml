(** QSBR: quiescent-state-based reclamation.

    Threads flip a per-thread counter odd at operation start and even at
    operation end, so an even value means "currently quiescent" and any
    change means "passed through a quiescent state".  A thread whose
    retire buffer fills snapshots all counters and parks the buffer; a
    parked buffer is freed once every other thread has either quiesced
    since the snapshot or is currently quiescent.

    Not bounded: a thread stalled {e inside} an operation freezes its odd
    counter and blocks every parked buffer behind it. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type parked = { snap : int array; recs : Nbr_sync.Int_vec.t }

  type t = {
    pool : P.t;
    n : int;
    cfg : Smr_config.t;
    qs : Rt.aint array;
    lc : L.t;
    done_stats : Smr_stats.t;
    mutable ctxs : ctx option array;
    mutable offload : Smr_intf.Offload.t option;
  }

  and ctx = {
    b : t;
    tid : int;
    mutable current : Nbr_sync.Int_vec.t;
    mutable parked : parked list;
    st : Smr_stats.t;
  }

  let scheme_name = "qsbr"
  let bounded_garbage = false

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    {
      pool;
      n = nthreads;
      cfg;
      (* Padded per-thread quiescence counters: bumped by their owner on
         every operation, scanned by every reclaimer. *)
      qs = Array.init nthreads (fun _ -> Rt.make_padded 0);
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
      offload = None;
    }

  let set_offload b o = b.offload <- o

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c =
      {
        b;
        tid;
        current = Nbr_sync.Int_vec.create ();
        parked = [];
        st = Smr_stats.zero ();
      }
    in
    b.ctxs.(tid) <- Some c;
    c

  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0;
    ignore (Rt.faa c.b.qs.(c.tid) 1) (* odd: active *)

  let grace_elapsed c (p : parked) =
    let ok = ref true in
    for t = 0 to c.b.n - 1 do
      if !ok && t <> c.tid then begin
        let v = Rt.load c.b.qs.(t) in
        (* Safe if currently quiescent, or advanced since the snapshot. *)
        if v land 1 = 1 && v = p.snap.(t) then ok := false
      end
    done;
    !ok

  let try_collect c =
    let ready, waiting = List.partition (grace_elapsed c) c.parked in
    List.iter
      (fun p ->
        Nbr_sync.Int_vec.iter (fun slot -> P.free c.b.pool slot) p.recs;
        Smr_stats.add_freed c.st (Nbr_sync.Int_vec.length p.recs);
        Smr_stats.add_reclaim_events c.st 1;
        if !Nbr_obs.Trace.on then
          Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
            Nbr_obs.Trace.Reclaim
            (Nbr_sync.Int_vec.length p.recs)
            0)
      ready;
    c.parked <- waiting

  (* Pool-pressure flush: park the current buffer regardless of the
     threshold and collect everything whose grace period has elapsed.  A
     peer stalled inside an operation still blocks every buffer parked
     behind its frozen counter — QSBR's structural degradation. *)
  let on_pressure c =
    if Nbr_sync.Int_vec.length c.current > 0 then begin
      let snap = Array.init c.b.n (fun t -> Rt.load c.b.qs.(t)) in
      c.parked <- { snap; recs = c.current } :: c.parked;
      c.current <- Nbr_sync.Int_vec.create ()
    end;
    try_collect c

  let alloc ?cls c = P.alloc ~on_pressure:(fun () -> on_pressure c) ?cls c.b.pool

  let buffered c =
    Nbr_sync.Int_vec.length c.current
    + List.fold_left
        (fun acc p -> acc + Nbr_sync.Int_vec.length p.recs)
        0 c.parked

  (* Orphans join our current (unparked) buffer: they get a fresh
     snapshot when it parks, which only delays their release. *)
  let adopt_orphans c =
    let n =
      L.adopt c.b.lc ~tid:c.tid ~push:(fun slot ->
          Nbr_sync.Int_vec.push c.current slot)
    in
    if n > 0 then Smr_stats.note_garbage c.st (buffered c)

  (* Limbo-bag externalization (DESIGN.md §12).  The collector re-buffers
     handed-off records in its own current buffer, which parks under a
     fresh counter snapshot — release is only ever delayed, the
     orphan-adoption argument above. *)

  let limbo_size c = buffered c

  (* Retire-path export: the current (unparked) buffer only — parked
     buffers already have their snapshots and are one [try_collect] from
     freedom, so shipping them would restart their grace periods. *)
  let export_current c =
    let slots = ref [] in
    Nbr_sync.Int_vec.iter (fun s -> slots := s :: !slots) c.current;
    c.current <- Nbr_sync.Int_vec.create ();
    L.push_handoff c.b.lc ~origin:c.tid !slots;
    List.length !slots

  let hand_off c =
    let slots = ref [] in
    Nbr_sync.Int_vec.iter (fun s -> slots := s :: !slots) c.current;
    List.iter
      (fun p -> Nbr_sync.Int_vec.iter (fun s -> slots := s :: !slots) p.recs)
      c.parked;
    c.current <- Nbr_sync.Int_vec.create ();
    c.parked <- [];
    L.push_handoff c.b.lc ~origin:c.tid !slots;
    List.length !slots

  let maybe_offload c =
    match c.b.offload with
    | None -> false
    | Some o ->
        let count = Nbr_sync.Int_vec.length c.current in
        count > 0
        && Smr_intf.Offload.try_accept o ~tid:c.tid ~ns:(Rt.now_ns ()) ~count
        &&
        (ignore (export_current c);
         true)

  let collect_handoffs c =
    let n =
      L.take_handoffs c.b.lc ~push:(fun slot ->
          Nbr_sync.Int_vec.push c.current slot)
    in
    if n > 0 then begin
      Smr_stats.note_garbage c.st (buffered c);
      match c.b.offload with
      | Some o ->
          Smr_intf.Offload.note_collected o ~tid:c.tid ~ns:(Rt.now_ns ())
            ~count:n
      | None ->
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Handoff_collect n 0
    end;
    n

  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0;
    ignore (Rt.faa c.b.qs.(c.tid) 1) (* even: quiescent *);
    if L.has_orphans c.b.lc && L.is_active c.b.lc c.tid then adopt_orphans c

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      (* Leave the counter even: a departed thread is forever quiescent
         and must never block a peer's grace period. *)
      if Rt.load c.b.qs.(c.tid) land 1 = 1 then
        ignore (Rt.faa c.b.qs.(c.tid) 1);
      let slots = ref [] in
      Nbr_sync.Int_vec.iter (fun s -> slots := s :: !slots) c.current;
      List.iter
        (fun p -> Nbr_sync.Int_vec.iter (fun s -> slots := s :: !slots) p.recs)
        c.parked;
      c.current <- Nbr_sync.Int_vec.create ();
      c.parked <- [];
      L.push_parcel c.b.lc ~origin:c.tid !slots;
      L.with_stats_lock c.b.lc (fun () -> Smr_stats.add c.b.done_stats c.st);
      c.b.ctxs.(c.tid) <- None
    end

  let retire c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1;
    Nbr_sync.Int_vec.push c.current slot;
    if
      Nbr_sync.Int_vec.length c.current >= c.b.cfg.Smr_config.bag_threshold
      && not (maybe_offload c)
    then begin
      let snap = Array.init c.b.n (fun t -> Rt.load c.b.qs.(t)) in
      c.parked <- { snap; recs = c.current } :: c.parked;
      c.current <- Nbr_sync.Int_vec.create ();
      try_collect c
    end;
    let g = buffered c in
    Smr_stats.note_garbage c.st g

  (* No neutralization, no restarts: UAF reads commit at phase end. *)
  let phase c ~read ~write =
    let payload, _recs = read () in
    Smr_stats.uaf_commit c.st;
    write payload

  let read_only c f =
    let r = f () in
    Smr_stats.uaf_commit c.st;
    r

  let read_root c root =
    let v = Rt.load root in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_ptr c ~src ~field =
    let v = Rt.load (P.ptr_cell c.b.pool src field) in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_raw _c cell = Rt.load cell

  (* Grace periods mean a record reachable inside an operation cannot be
     freed, so [Stale] is unreachable for correct use; if it does show up
     (a misuse the sanitizer's [stale_handle] rule convicts), consume the
     memory as the unprotected read it is. *)
  let read_data c ~src ~field =
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let peek_ptr c ~src ~field =
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
