(** RCU-flavoured epoch reclamation (the IBR benchmark's "RCU" baseline).

    Readers announce the global epoch on entry and withdraw on exit;
    retired records are stamped with the epoch at retire time; a reclaimer
    bumps the global epoch and frees records stamped strictly before the
    minimum announced epoch.  Equivalent to classic EBR without DEBRA's
    amortized scanning or bag rotation.

    Not bounded: a reader stalled inside an operation pins the minimum
    epoch. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  let idle = max_int

  type t = {
    pool : P.t;
    n : int;
    cfg : Smr_config.t;
    epoch : Rt.aint;
    ann : Rt.aint array;
    retire_ep : int array;  (** per-slot retire epoch (thread-owned writes) *)
    lc : L.t;
    done_stats : Smr_stats.t;
    mutable ctxs : ctx option array;
    mutable offload : Smr_intf.Offload.t option;
  }

  and ctx = { b : t; tid : int; bag : Limbo_bag.t; st : Smr_stats.t }

  let scheme_name = "rcu"
  let bounded_garbage = false

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    {
      pool;
      n = nthreads;
      cfg;
      (* Padded: the global epoch is bumped by every reclaimer while every
         reader loads it, and the per-thread announcements are SWMR cells
         scanned by all reclaimers — classic false-sharing hot spots. *)
      epoch = Rt.make_padded 1;
      ann = Array.init nthreads (fun _ -> Rt.make_padded idle);
      retire_ep = Array.make (P.capacity pool) 0;
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
      offload = None;
    }

  let set_offload b o = b.offload <- o

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c = { b; tid; bag = Limbo_bag.create (); st = Smr_stats.zero () } in
    b.ctxs.(tid) <- Some c;
    c

  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0;
    Rt.store c.b.ann.(c.tid) (Rt.load c.b.epoch)

  (* Orphan retire epochs live in the t-level [retire_ep] array, so the
     slots alone carry everything the sweep predicate needs. *)
  let adopt_orphans c =
    let n =
      L.adopt c.b.lc ~tid:c.tid ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then Smr_stats.note_garbage c.st (Limbo_bag.size c.bag)

  (* Limbo-bag externalization (DESIGN.md §12).  Retire epochs live in the
     t-level [retire_ep] array, so handed-off slots carry everything the
     collector's sweep predicate needs — the orphan-parcel argument. *)

  let limbo_size c = Limbo_bag.size c.bag

  let export_bag c =
    let slots = ref [] in
    ignore
      (Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag)
         ~keep:(fun _ -> false)
         ~free:(fun s -> slots := s :: !slots));
    L.push_handoff c.b.lc ~origin:c.tid !slots;
    List.length !slots

  let hand_off c = export_bag c

  let maybe_offload c =
    match c.b.offload with
    | None -> false
    | Some o ->
        let count = Limbo_bag.size c.bag in
        count > 0
        && Smr_intf.Offload.try_accept o ~tid:c.tid ~ns:(Rt.now_ns ()) ~count
        &&
        (ignore (export_bag c);
         true)

  let collect_handoffs c =
    let n =
      L.take_handoffs c.b.lc ~push:(fun slot -> Limbo_bag.push c.bag slot)
    in
    if n > 0 then begin
      Smr_stats.note_garbage c.st (Limbo_bag.size c.bag);
      match c.b.offload with
      | Some o ->
          Smr_intf.Offload.note_collected o ~tid:c.tid ~ns:(Rt.now_ns ())
            ~count:n
      | None ->
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Handoff_collect n 0
    end;
    n

  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0;
    Rt.store c.b.ann.(c.tid) idle;
    if L.has_orphans c.b.lc && L.is_active c.b.lc c.tid then adopt_orphans c

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      (* Withdraw the announcement: a departed reader must not pin the
         minimum epoch. *)
      Rt.store c.b.ann.(c.tid) idle;
      let slots = ref [] in
      ignore
        (Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag)
           ~keep:(fun _ -> false)
           ~free:(fun s -> slots := s :: !slots));
      L.push_parcel c.b.lc ~origin:c.tid !slots;
      L.with_stats_lock c.b.lc (fun () -> Smr_stats.add c.b.done_stats c.st);
      c.b.ctxs.(c.tid) <- None
    end

  (* Bump the epoch and free everything retired strictly before the
     minimum announced epoch — the threshold-crossing body of [retire],
     also run threshold-free under pool pressure.  Our own announcement
     participates in the minimum, so records retired during the current
     operation stay pinned (conservative and safe mid-operation). *)
  let flush c =
    if Limbo_bag.size c.bag > 0 then begin
      ignore (Rt.faa c.b.epoch 1);
      let min_ann = ref max_int in
      for t = 0 to c.b.n - 1 do
        let a = Rt.load c.b.ann.(t) in
        if a < !min_ann then min_ann := a
      done;
      let freed =
        Limbo_bag.sweep c.bag ~upto:(Limbo_bag.abs_tail c.bag)
          ~keep:(fun s -> c.b.retire_ep.(P.uid c.b.pool s) >= !min_ann)
          ~free:(fun s -> P.free c.b.pool s)
      in
      Smr_stats.add_freed c.st freed;
      Smr_stats.add_reclaim_events c.st 1;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Reclaim freed
          (Limbo_bag.size c.bag)
    end

  let on_pressure = flush
  let alloc ?cls c = P.alloc ~on_pressure:(fun () -> flush c) ?cls c.b.pool

  let retire c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1;
    c.b.retire_ep.(P.uid c.b.pool slot) <- Rt.load c.b.epoch;
    Limbo_bag.push c.bag slot;
    if Limbo_bag.size c.bag >= c.b.cfg.Smr_config.bag_threshold then
      if not (maybe_offload c) then flush c;
    let g = Limbo_bag.size c.bag in
    Smr_stats.note_garbage c.st g

  (* No neutralization, no restarts: UAF reads commit at phase end. *)
  let phase c ~read ~write =
    let payload, _recs = read () in
    Smr_stats.uaf_commit c.st;
    write payload

  let read_only c f =
    let r = f () in
    Smr_stats.uaf_commit c.st;
    r

  let read_root c root =
    let v = Rt.load root in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_ptr c ~src ~field =
    let v = Rt.load (P.ptr_cell c.b.pool src field) in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_raw _c cell = Rt.load cell

  (* Grace periods mean a record reachable inside an operation cannot be
     freed, so [Stale] is unreachable for correct use; if it does show up
     (a misuse the sanitizer's [stale_handle] rule convicts), consume the
     memory as the unprotected read it is. *)
  let read_data c ~src ~field =
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let peek_ptr c ~src ~field =
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
