(** Tuning knobs shared by all reclamation schemes.

    One record serves every scheme so the harness can sweep parameters
    uniformly; each scheme reads the fields that concern it and ignores
    the rest. *)

type t = {
  bag_threshold : int;
      (** Retired records a thread buffers before triggering a
          reclamation event (the paper's HiWatermark; 32k in their
          experiments, scaled down here with the structure sizes).  With
          a background reclaimer attached (DESIGN.md §12) the crossing
          exports the bag instead of sweeping inline. *)
  lo_watermark : int;
      (** NBR+ LoWatermark: bag size at which a thread starts watching
          for relaxed grace periods (paper suggests 1/2 or 1/4 of the
          bag). *)
  scan_period : int;
      (** NBR+ footnote (c): scan announceTS only every [scan_period]
          retires while at the LoWatermark, to amortize cache misses. *)
  max_reservations : int;
      (** R: records a thread may reserve per write phase.  2 suffices
          for the lazy list, 3 for DGT / Harris / (a,b)-tree (paper
          §6). *)
  epoch_freq : int;
      (** IBR/HE: allocations between global-era bumps; DEBRA:
          amortization of the epoch-advance scan (checks epoch_freq/8
          threads per begin_op, so the default of 16 gives DEBRA its
          characteristic two-load per-operation overhead). *)
  wd_timeout_ns : int;
      (** Crash-recovery watchdog base interval: a peer whose runtime
          heartbeat stays frozen longer than this triggers escalation
          (trace event + NBR signal re-send); frozen past
          [wd_timeout_ns * 2^wd_rounds] the peer is declared dead and
          its state reaped (see [Lifecycle]).  Must sit well above any
          legitimate pause — the chaos plans stall threads for up to
          ~100µs, so the default of 150µs escalating to a 600µs death
          threshold never expels a merely-stalled thread there.  Only
          consulted while a fault decider is installed. *)
  wd_rounds : int;
      (** Escalation rounds before the watchdog declares a frozen peer
          dead (exponential back-off: round [r] fires at
          [wd_timeout_ns * 2^r]). *)
  unsafe_end_read : bool;
      (** Ablation A2 (never enable in real use): skip the
          pending-signal check that closes the reservation-publication
          race in polling runtimes (see
          [Runtime_intf.consume_pending_t]).  With this on, a signal
          that lands between a reader's last poll and its reservation
          publish can be missed by both sides, re-opening the
          use-after-free window the writers' handshake exists to
          close. *)
  unsafe_ibr_no_validate : bool;
      (** Ablation A3 (never enable in real use): revert the PR 4 IBR
          fix — skip the source-liveness validation [Ibr.guarded_read]
          performs when the era ratchet fires.  With this on, a reader
          descheduled mid-traversal can wake inside a retired record
          whose frozen link reaches a record born after its announced
          upper bound and already freed.  Exists so the schedule
          explorer (lib/check) can re-find that bug from a certificate
          as a regression. *)
  unsafe_no_generation_check : bool;
      (** Ablation A4 (never enable in real use): disable the pool's
          generational-handle validation — validated reads never fail
          with [Stale] and hand back whatever occupies the recycled
          slot, exactly the pre-generational clamping behaviour.  The
          stale-detection counters keep running, so the sanitizer can
          still observe the use-after-free this re-opens; exists so the
          schedule explorer can re-find a stale-handle UAF from a
          stored certificate. *)
}

val default : t
(** 512-entry bags, LoWatermark at half, 3 reservations — the scale the
    experiments run at (see DESIGN.md §5 for the mapping from the
    paper's sizes). *)

val with_threshold : t -> int -> t
(** [with_threshold c n] sets [bag_threshold] to [n] and [lo_watermark]
    to [n/2], the paper's recommended ratio. *)
