(** The common interface of all safe-memory-reclamation schemes.

    Data structures are written once against this signature and instantiated
    with any scheme (NBR, NBR+, DEBRA, QSBR, RCU, IBR, HP, leaky...).  The
    operation protocol mirrors the paper's Figure 1/2b:

    {v
      begin_op ctx;
      ... preamble: globals, allocation ...
      phase ctx
        ~read:(fun () -> (* Φread: traverse via read_root/read_ptr      *)
                         (payload, [| reserved records ... |]))
        ~write:(fun payload -> (* Φwrite: locks, validation, updates,
                                  access only to reserved records       *) ...);
      end_op ctx
    v}

    [phase] encapsulates the whole neutralization discipline: it
    checkpoints ([sigsetjmp]), runs the read phase restartably, publishes
    the reservations with the fenced flag flip of Algorithm 1 (lines
    11–12), and runs the write phase non-restartably.  k-NBR structures
    (Harris list, (a,b)-tree) simply invoke [phase] several times per
    operation; each read phase must then re-traverse from the root
    (paper §5.2).

    Schemes without phases implement [phase] as plain function application,
    so the same data-structure code runs under every scheme.  For HP,
    [read_ptr] performs the announce/fence/validate dance and aborts the
    read phase (via the checkpoint) when validation fails. *)

(** Shared state of the limbo-bag externalization protocol: one record
    per scheme instance, linking the workers' retire paths to whichever
    thread plays the background-reclaimer role.

    The protocol (DESIGN.md §12): a worker whose bag crosses the sweep
    threshold first offers it here ({!Offload.try_accept}); accepted bags
    travel through the lifecycle handoff channel and are collected,
    re-accounted and swept by the reclaimer off the operation path.  The
    record doubles as the degradation switch — when the reclaimer stalls,
    crashes, or falls behind (channel backlog beyond [max_backlog]),
    acceptance flips off and every scheme is automatically back to plain
    inline reclamation; a recovered reclaimer flips it back on.

    All fields are stdlib atomics on the instrumentation side of the
    cost model: the decisions they drive (who sweeps) are part of the
    modelled algorithm, but the flags themselves model cheap
    always-cached loads, like the pool's counters. *)
module Offload = struct
  type t = {
    reclaimer : int;  (** tid of the reclaimer role *)
    enabled : bool Atomic.t;  (** false = degraded: sweep inline *)
    backlog : int Atomic.t;  (** records sitting in the handoff channel *)
    max_backlog : int;  (** degrade threshold on [backlog] *)
    handed : int Atomic.t;  (** total records ever accepted *)
    collected : int Atomic.t;  (** total records the reclaimer adopted *)
    degrades : int Atomic.t;
    restores : int Atomic.t;
  }

  let create ?(max_backlog = 1024) ~reclaimer () =
    if max_backlog < 1 then invalid_arg "Offload.create: max_backlog";
    {
      reclaimer;
      enabled = Atomic.make true;
      backlog = Atomic.make 0;
      max_backlog;
      handed = Atomic.make 0;
      collected = Atomic.make 0;
      degrades = Atomic.make 0;
      restores = Atomic.make 0;
    }

  (* Worker side: may this bag of [count] records go to the reclaimer
     instead of an inline sweep?  A backlog past [max_backlog] means the
     reclaimer has fallen behind its drain rate (or is stalled or dead):
     the first worker to notice flips the degrade switch — once, with a
     trace event — and everyone sweeps inline until a restore. *)
  let try_accept o ~tid ~ns ~count =
    if not (Atomic.get o.enabled) then false
    else if Atomic.get o.backlog > o.max_backlog then begin
      if Atomic.compare_and_set o.enabled true false then begin
        Atomic.incr o.degrades;
        if !Nbr_obs.Trace.on then
          Nbr_obs.Trace.emit ~tid ~ns Nbr_obs.Trace.Degrade 0
            (Atomic.get o.backlog)
      end;
      false
    end
    else begin
      let b = Atomic.fetch_and_add o.backlog count + count in
      ignore (Atomic.fetch_and_add o.handed count);
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid ~ns Nbr_obs.Trace.Bag_handoff count b;
      true
    end

  (* Reclaimer side (or the end-of-trial drainer): [count] records just
     left the channel and became the caller's own garbage. *)
  let note_collected o ~tid ~ns ~count =
    if count > 0 then begin
      let b = Atomic.fetch_and_add o.backlog (-count) - count in
      ignore (Atomic.fetch_and_add o.collected count);
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid ~ns Nbr_obs.Trace.Handoff_collect count b
    end

  (* Explicit degrade, for faults targeting the reclaimer itself (it
     knows it is about to crash or stall) — reason code 1, against the
     workers' backlog-detected reason 0. *)
  let degrade o ~tid ~ns =
    if Atomic.compare_and_set o.enabled true false then begin
      Atomic.incr o.degrades;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid ~ns Nbr_obs.Trace.Degrade 1
          (Atomic.get o.backlog)
    end

  let restore o ~tid ~ns =
    if Atomic.compare_and_set o.enabled false true then begin
      Atomic.incr o.restores;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid ~ns Nbr_obs.Trace.Restore
          (Atomic.get o.backlog) 0
    end

  let degraded o = not (Atomic.get o.enabled)
end

exception Expelled
(** Raised by {!S.begin_op} when the calling thread was declared dead by a
    peer's crash-recovery watchdog while it was frozen (stalled or
    descheduled past the watchdog threshold) and its SMR state has been
    reaped.  The context is unusable from then on: the thread must stop,
    or rejoin with a fresh {!S.register}.  Raised before the operation
    touches any shared state, so a mistaken claim of a live-but-slow
    thread never races its reaper through an operation.  Only possible
    while fault injection is active (see [Lifecycle.check_self]). *)

module type S = sig
  type aint
  type pool
  type t
  type ctx

  val scheme_name : string

  val bounded_garbage : bool
  (** Whether the scheme bounds unreclaimed records in the presence of
      stalled threads (the paper's P2; tested in the E2 suite). *)

  val create : pool -> nthreads:int -> Smr_config.t -> t
  (** One instance per data structure; [nthreads] worker contexts may
      register. *)

  val register : t -> tid:int -> ctx
  (** The context for worker [tid]; must be called by each worker (or
      before the run) before its first operation on this instance.
      Calling it again after {!deregister} (or after an {!Expelled}
      verdict) re-joins with a fresh context — the dynamic-membership
      path exercised by the churn workloads. *)

  val deregister : ctx -> unit
  (** Graceful leave.  Retracts the thread's published protection state
      (reservations, hazard/era slots, epoch announcements), hands its
      buffered retires to the scheme's orphan stack for any live thread
      to adopt, and folds its statistics into the instance aggregate.
      The context must not be used afterwards; the same [tid] may
      {!register} again later.  If a crash-recovery watchdog claimed the
      thread first, this is a no-op (the reaper owns the state). *)

  val adopt_orphans : ctx -> unit
  (** Drain any orphan parcels (buffered retires of departed or crashed
      threads) into the calling thread's own limbo state, where they are
      reclaimed by its normal sweeps and counted against {e its} garbage
      bound.  Called automatically from [end_op] when orphans are
      pending; exposed for explicit end-of-run draining. *)

  (** {1 Limbo-bag externalization}

      The background-reclamation hooks (DESIGN.md §12).  With an
      {!Offload} installed, a worker whose bag crosses the sweep
      threshold exports it through the lifecycle handoff channel instead
      of sweeping inline — when the offload record accepts; otherwise
      (no offload, or degraded) [retire] behaves exactly as before.
      Foil schemes that buffer nothing ([none], [unsafe-free]) implement
      these as no-ops returning 0. *)

  val set_offload : t -> Offload.t option -> unit
  (** Install (or with [None] remove) the externalization switchboard.
      Installed by the reclaimer role at startup, removed when it leaves;
      racing workers see either behaviour, both safe. *)

  val limbo_size : ctx -> int
  (** Records currently buffered in the calling thread's limbo state. *)

  val hand_off : ctx -> int
  (** Unconditionally export the calling thread's buffered retires to
      the handoff channel (no threshold or acceptance check, no trace
      accounting beyond the channel's); returns the number exported.
      For tests and explicit shed-before-leave paths — the retire path
      uses the internal, {!Offload.try_accept}-gated variant. *)

  val collect_handoffs : ctx -> int
  (** Drain the handoff channel into the calling thread's own limbo
      state (re-accounted as its garbage, freed by its normal sweeps)
      and credit the offload record; returns the number collected.  The
      reclaimer's main verb, also used by the end-of-trial drainer. *)

  (** {1 Operation lifecycle} *)

  val begin_op : ctx -> unit
  val end_op : ctx -> unit

  val alloc : ?cls:int -> ctx -> int
  (** Allocate a record from pool size-class [cls] (default 0), applying
      scheme hooks (e.g. IBR birth eras).  Legal in the preamble and in
      write phases; never in a read phase. *)

  val retire : ctx -> int -> unit
  (** Hand an {e unlinked} record to the scheme.  May trigger reclamation
      (and, for NBR/NBR+, neutralization signals).  The caller must not
      touch the record afterwards. *)

  val on_pressure : ctx -> unit
  (** Reclamation flush for pool pressure: free whatever the scheme can
      free {e right now}, ignoring thresholds and amortization — NBR
      broadcasts and sweeps, epoch schemes attempt a full (non-amortized)
      epoch advance, QSBR parks and collects.  Invoked by the pool's
      graceful-exhaustion retry loop (each scheme's [alloc] passes it to
      [Pool.alloc ?on_pressure]), so it must be legal wherever [alloc] is
      — preamble or write phase — and must not itself allocate.  Schemes
      that pin memory through a stalled peer can only shed what that peer
      does not pin: this is exactly the degradation the chaos suite
      measures. *)

  (** {1 Phases} *)

  val phase : ctx -> read:(unit -> 'a * int array) -> write:('a -> 'b) -> 'b
  (** Run one Φread/Φwrite pair.  [read] must obey the paper's read-phase
      rules (§4.1): traverse shared records only through {!read_root} /
      {!read_ptr} / field reads, no shared writes, no allocation, no
      locks — it can be abandoned and replayed at any moment.  Its result
      array lists every record the write phase will access (at most
      [max_reservations]).  [write] runs exactly once per successful read
      phase and must only access reserved records (plus records it
      allocates). *)

  val read_only : ctx -> (unit -> 'a) -> 'a
  (** A degenerate phase for operations with no write phase (contains):
      equivalent to [phase ~read:(fun () -> (f (), [||])) ~write:Fun.id]. *)

  (** {1 Guarded traversal} *)

  val read_root : ctx -> aint -> int
  (** Dereference an entry-point cell (e.g. the anchor's child pointer). *)

  val read_ptr : ctx -> src:int -> field:int -> int
  (** Follow pointer field [field] of record [src] (which must have been
      obtained through guarded traversal in the current read phase).  This
      is the delivery/poll point of the neutralization discipline and the
      protect point of HP-style schemes. *)

  val read_raw : ctx -> aint -> int
  (** Guarded load of a shared word that is not a plain record pointer —
      e.g. a mark-tagged link in the Harris list, where the slot id and the
      mark share the word.  A delivery/poll point like {!read_ptr}, but
      hazard-pointer schemes cannot publish protection through it: this is
      precisely the paper's P5 limitation of HP with structures that
      traverse marked nodes, and the benchmarks never pair HP with such
      structures. *)

  val read_data : ctx -> src:int -> field:int -> int
  (** Read data field [field] of record [src] inside a read phase.  The
      generation-validated counterpart of a plain [Pool.get_data]: the
      scheme decides what a [Stale] result means for its protocol —
      restartable schemes (NBR family; HP/HE after failed validation)
      abandon the read phase, epoch-based schemes whose guarantees make
      staleness impossible treat it as the benign poll-window read it
      is, and foil schemes consume the recycled memory knowingly.
      Structures use this for every key/mark read along an unvalidated
      traversal. *)

  val peek_ptr : ctx -> src:int -> field:int -> int
  (** Read pointer field [field] of record [src] as a {e value}, without
      following it: no protection is published for the target and no
      poll point is crossed for it.  For structural predicates on the
      current record ("is this node a leaf?") where the target is never
      dereferenced.  Validates [src] like {!read_data}. *)

  (** {1 Introspection} *)

  val stats : t -> Smr_stats.t
  (** Aggregate statistics across every registered context (plus finished
      ones).  Allocates; never call on a hot path. *)

  val ctx_stats : ctx -> Smr_stats.t
  (** The calling thread's own live statistics record (not a copy): the
      workload harness reads per-operation deltas from it — e.g. the
      restart count of the operation just completed — without the
      allocation or cross-thread traffic of {!stats}. *)
end
