(** Per-scheme reclamation statistics.

    Aggregated across thread contexts by [Smr.stats].  Instrumentation
    only; never read on algorithm hot paths. *)

type t = {
  mutable retires : int;  (** records handed to [retire] *)
  mutable freed : int;  (** records returned to the pool *)
  mutable reclaim_events : int;
      (** full reclamation events (NBR HiWatermark sweeps, HP/IBR scans,
          DEBRA bag rotations, ...) *)
  mutable lo_reclaims : int;  (** NBR+ opportunistic LoWatermark sweeps *)
  mutable restarts : int;
      (** read phases restarted by neutralization or protection failure *)
  mutable max_garbage : int;
      (** high-water mark of the records this thread had handed to
          [retire] but not yet returned to the pool — the per-thread
          bounded-garbage metric of the chaos suite (E2's P2 check).
          Aggregation takes the max, not the sum: the invariant is a bound
          on each thread's buffer, and the worst thread is what a stalled
          or crashed peer inflates. *)
}

let zero () =
  {
    retires = 0;
    freed = 0;
    reclaim_events = 0;
    lo_reclaims = 0;
    restarts = 0;
    max_garbage = 0;
  }

let retires s = s.retires
let freed s = s.freed
let reclaim_events s = s.reclaim_events
let lo_reclaims s = s.lo_reclaims
let restarts s = s.restarts
let max_garbage s = s.max_garbage
let add_retires s n = s.retires <- s.retires + n
let add_freed s n = s.freed <- s.freed + n
let add_reclaim_events s n = s.reclaim_events <- s.reclaim_events + n
let add_lo_reclaims s n = s.lo_reclaims <- s.lo_reclaims + n
let add_restarts s n = s.restarts <- s.restarts + n
let note_garbage s n = if n > s.max_garbage then s.max_garbage <- n

let add into from =
  into.retires <- into.retires + from.retires;
  into.freed <- into.freed + from.freed;
  into.reclaim_events <- into.reclaim_events + from.reclaim_events;
  into.lo_reclaims <- into.lo_reclaims + from.lo_reclaims;
  into.restarts <- into.restarts + from.restarts;
  into.max_garbage <- max into.max_garbage from.max_garbage

let pp ppf s =
  Format.fprintf ppf
    "retires=%d freed=%d reclaim_events=%d lo_reclaims=%d restarts=%d \
     max_garbage=%d"
    s.retires s.freed s.reclaim_events s.lo_reclaims s.restarts s.max_garbage
