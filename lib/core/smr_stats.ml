(** Per-scheme reclamation statistics.

    Aggregated across thread contexts by [Smr.stats].  Instrumentation
    only; never read on algorithm hot paths. *)

type t = {
  mutable retires : int;  (** records handed to [retire] *)
  mutable freed : int;  (** records returned to the pool *)
  mutable reclaim_events : int;
      (** full reclamation events (NBR HiWatermark sweeps, HP/IBR scans,
          DEBRA bag rotations, ...) *)
  mutable lo_reclaims : int;  (** NBR+ opportunistic LoWatermark sweeps *)
  mutable restarts : int;
      (** read phases restarted by neutralization or protection failure *)
  mutable max_garbage : int;
      (** high-water mark of the records this thread had handed to
          [retire] but not yet returned to the pool — the per-thread
          bounded-garbage metric of the chaos suite (E2's P2 check).
          Aggregation takes the max, not the sum: the invariant is a bound
          on each thread's buffer, and the worst thread is what a stalled
          or crashed peer inflates. *)
  mutable uaf_reads : int;  (** guarded dereferences that hit a Free slot *)
  mutable uaf_benign : int;
      (** the subset of [uaf_reads] whose read phase was subsequently
          neutralized/restarted, i.e. whose value was never acted on —
          the native poll-window reads DESIGN.md §3 argues are
          counted-but-never-committed *)
  mutable uaf_pending : int;
      (** UAF reads of the phase currently in flight, not yet classified;
          folded into [uaf_benign] on restart, dropped on phase
          completion (= committed) *)
  mutable handshake_timeouts : int;
      (** bounded-wait broadcast handshakes that gave up on a peer after
          all escalation rounds — a per-shard health signal the service
          guard's circuit breakers consume *)
}

let zero () =
  {
    retires = 0;
    freed = 0;
    reclaim_events = 0;
    lo_reclaims = 0;
    restarts = 0;
    max_garbage = 0;
    uaf_reads = 0;
    uaf_benign = 0;
    uaf_pending = 0;
    handshake_timeouts = 0;
  }

let retires s = s.retires
let freed s = s.freed
let reclaim_events s = s.reclaim_events
let lo_reclaims s = s.lo_reclaims
let restarts s = s.restarts
let max_garbage s = s.max_garbage
let add_retires s n = s.retires <- s.retires + n
let add_freed s n = s.freed <- s.freed + n
let add_reclaim_events s n = s.reclaim_events <- s.reclaim_events + n
let add_lo_reclaims s n = s.lo_reclaims <- s.lo_reclaims + n
let add_restarts s n = s.restarts <- s.restarts + n
let note_garbage s n = if n > s.max_garbage then s.max_garbage <- n
let handshake_timeouts s = s.handshake_timeouts

let add_handshake_timeouts s n =
  s.handshake_timeouts <- s.handshake_timeouts + n

let uaf_reads s = s.uaf_reads
let benign_uaf s = s.uaf_benign
let committed_uaf s = s.uaf_reads - s.uaf_benign - s.uaf_pending

let note_uaf s =
  s.uaf_reads <- s.uaf_reads + 1;
  s.uaf_pending <- s.uaf_pending + 1

let uaf_abort s =
  s.uaf_benign <- s.uaf_benign + s.uaf_pending;
  s.uaf_pending <- 0

let uaf_commit s = s.uaf_pending <- 0

let add into from =
  into.retires <- into.retires + from.retires;
  into.freed <- into.freed + from.freed;
  into.reclaim_events <- into.reclaim_events + from.reclaim_events;
  into.lo_reclaims <- into.lo_reclaims + from.lo_reclaims;
  into.restarts <- into.restarts + from.restarts;
  into.max_garbage <- max into.max_garbage from.max_garbage;
  into.uaf_reads <- into.uaf_reads + from.uaf_reads;
  into.uaf_benign <- into.uaf_benign + from.uaf_benign;
  into.uaf_pending <- into.uaf_pending + from.uaf_pending;
  into.handshake_timeouts <- into.handshake_timeouts + from.handshake_timeouts

let pp ppf s =
  Format.fprintf ppf
    "retires=%d freed=%d reclaim_events=%d lo_reclaims=%d restarts=%d \
     max_garbage=%d uaf=%d (benign=%d pending=%d) hs_timeouts=%d"
    s.retires s.freed s.reclaim_events s.lo_reclaims s.restarts s.max_garbage
    s.uaf_reads s.uaf_benign s.uaf_pending s.handshake_timeouts
