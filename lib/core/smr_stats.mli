(** Per-scheme reclamation statistics.

    Aggregated across thread contexts by each scheme's [stats];
    instrumentation only, never read on algorithm hot paths.  The record
    is abstract: schemes bump counters through the [add_*]/[note_garbage]
    mutators below and everyone else reads through the accessors, so the
    set of writers is greppable and the representation can change without
    touching readers. *)

type t

val zero : unit -> t
(** A fresh all-zero statistics record. *)

val add : t -> t -> unit
(** [add into from] folds [from] into [into]: counters sum,
    [max_garbage] takes the max (the bounded-garbage invariant is
    per-thread; the worst thread is what a stalled peer inflates). *)

val pp : Format.formatter -> t -> unit

(** {1 Read accessors} *)

val retires : t -> int
(** Records handed to [retire]. *)

val freed : t -> int
(** Records returned to the pool. *)

val reclaim_events : t -> int
(** Full reclamation events (NBR HiWatermark sweeps, HP/IBR scans, DEBRA
    bag rotations, ...). *)

val lo_reclaims : t -> int
(** NBR+ opportunistic LoWatermark sweeps. *)

val restarts : t -> int
(** Read phases restarted by neutralization or protection failure. *)

val max_garbage : t -> int
(** High-water mark of records handed to [retire] but not yet returned
    to the pool by this thread — the per-thread bounded-garbage metric of
    the chaos suite (E2's P2 check). *)

(** {1 Mutators (scheme implementations only)} *)

val add_retires : t -> int -> unit
val add_freed : t -> int -> unit
val add_reclaim_events : t -> int -> unit
val add_lo_reclaims : t -> int -> unit
val add_restarts : t -> int -> unit

val note_garbage : t -> int -> unit
(** [note_garbage t n] raises [max_garbage t] to [n] if [n] is larger. *)
