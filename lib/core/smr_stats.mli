(** Per-scheme reclamation statistics.

    Aggregated across thread contexts by each scheme's [stats];
    instrumentation only, never read on algorithm hot paths.  The record
    is abstract: schemes bump counters through the [add_*]/[note_garbage]
    mutators below and everyone else reads through the accessors, so the
    set of writers is greppable and the representation can change without
    touching readers. *)

type t

val zero : unit -> t
(** A fresh all-zero statistics record. *)

val add : t -> t -> unit
(** [add into from] folds [from] into [into]: counters sum,
    [max_garbage] takes the max (the bounded-garbage invariant is
    per-thread; the worst thread is what a stalled peer inflates). *)

val pp : Format.formatter -> t -> unit

(** {1 Read accessors} *)

val retires : t -> int
(** Records handed to [retire]. *)

val freed : t -> int
(** Records returned to the pool. *)

val reclaim_events : t -> int
(** Full reclamation events (NBR HiWatermark sweeps, HP/IBR scans, DEBRA
    bag rotations, ...). *)

val lo_reclaims : t -> int
(** NBR+ opportunistic LoWatermark sweeps. *)

val restarts : t -> int
(** Read phases restarted by neutralization or protection failure. *)

val max_garbage : t -> int
(** High-water mark of records handed to [retire] but not yet returned
    to the pool by this thread — the per-thread bounded-garbage metric of
    the chaos suite (E2's P2 check). *)

val handshake_timeouts : t -> int
(** Bounded-wait broadcast handshakes that gave up on a peer after all
    escalation rounds (one count per unacknowledged peer per broadcast).
    A wedged-writer symptom; the service guard's circuit breakers read
    it as a shard health signal. *)

val uaf_reads : t -> int
(** Guarded dereferences that landed on a Free slot (total). *)

val benign_uaf : t -> int
(** The subset of {!uaf_reads} whose read phase was subsequently
    neutralized/restarted: the value read was never acted on.  Under the
    polling native runtime a sound scheme may accrue these in the window
    between a reader's last poll and the neutralization that aborts it
    (DESIGN.md §3) — counted, never committed. *)

val committed_uaf : t -> int
(** {!uaf_reads} minus the benign ones and minus any still-unclassified
    in-flight phase reads: UAF reads whose enclosing phase completed, so
    the dangling value could have been acted on.  Zero for every sound
    scheme on both runtimes — the invariant [examples/quickstart.ml]
    asserts. *)

(** {1 Mutators (scheme implementations only)} *)

val add_retires : t -> int -> unit
val add_freed : t -> int -> unit
val add_reclaim_events : t -> int -> unit
val add_lo_reclaims : t -> int -> unit
val add_restarts : t -> int -> unit
val add_handshake_timeouts : t -> int -> unit

val note_garbage : t -> int -> unit
(** [note_garbage t n] raises [max_garbage t] to [n] if [n] is larger. *)

val note_uaf : t -> unit
(** A guarded dereference hit a Free slot; classification is pending
    until the enclosing read phase restarts ({!uaf_abort}) or completes
    ({!uaf_commit}).  Schemes without restartable phases (the EBR family,
    the unsafe foils) follow each [note_uaf] with an immediate
    {!uaf_commit}: with no neutralization there is nothing to undo the
    read, so it is committed by definition. *)

val uaf_abort : t -> unit
(** The in-flight read phase restarted: its pending UAF reads were
    benign. *)

val uaf_commit : t -> unit
(** The in-flight read phase completed: its pending UAF reads are
    committed (they stay in {!uaf_reads} and never enter
    {!benign_uaf}). *)
