(** The unsafe foil: free immediately on retire, with no protection.

    Exists to {e demonstrate} the problem SMR solves: under concurrency,
    readers dereference freed (and recycled) slots, which the pool's
    instrumentation counts as use-after-free reads, and pointer CAS can
    succeed spuriously (ABA).  Tests use this scheme — in small, bounded
    scenarios only — to show that the detectors fire here and stay silent
    under NBR.  Never use it for anything else: traversals over recycled
    slots may not terminate. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)
  module L = Lifecycle.Make (Rt)

  type aint = Rt.aint
  type pool = P.t

  type t = {
    pool : P.t;
    lc : L.t;
    done_stats : Smr_stats.t;
    mutable ctxs : ctx option array;
  }

  and ctx = { b : t; tid : int; st : Smr_stats.t }

  let scheme_name = "unsafe-free"
  let bounded_garbage = true (* trivially: nothing is ever buffered *)

  let create pool ~nthreads cfg =
    P.set_generation_check pool (not cfg.Smr_config.unsafe_no_generation_check);
    {
      pool;
      lc = L.create ~nthreads;
      done_stats = Smr_stats.zero ();
      ctxs = Array.make nthreads None;
    }

  let register b ~tid =
    L.reset_slot b.lc tid;
    let c = { b; tid; st = Smr_stats.zero () } in
    b.ctxs.(tid) <- Some c;
    c

  let begin_op c =
    L.check_self c.b.lc c.tid;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Begin_op 0
        0

  let end_op c =
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:c.tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.End_op 0 0

  (* Records are freed at retire, so nothing is ever buffered and no
     parcels are ever pushed. *)
  let adopt_orphans _ = ()

  (* Nothing is ever buffered, so externalization is vacuous. *)
  let set_offload _ _ = ()
  let limbo_size _ = 0
  let hand_off _ = 0
  let collect_handoffs _ = 0

  let deregister c =
    if L.depart c.b.lc c.tid then begin
      (* Hand the departing thread's magazine caches back to the depot:
         an abandoned magazine would strand up to a magazine's worth of
         free slots per size class.  Safe here: we won the depart CAS, so
         no watchdog owns this tid's state. *)
      P.flush_thread c.b.pool ~tid:c.tid;
      L.with_stats_lock c.b.lc (fun () -> Smr_stats.add c.b.done_stats c.st);
      c.b.ctxs.(c.tid) <- None
    end

  (* Nothing is ever buffered; [max_garbage] stays 0. *)
  let on_pressure _ = ()
  let alloc ?cls c = P.alloc ?cls c.b.pool

  let retire c slot =
    P.note_retired c.b.pool slot;
    Smr_stats.add_retires c.st 1;
    (* Racing retires of one record are among the bugs this foil exists
       to exhibit: the second free arrives through a now-stale handle and
       the generation check rejects it — record the detection and keep
       the foil running so the other detectors get their chance. *)
    match P.free c.b.pool slot with
    | () -> Smr_stats.add_freed c.st 1
    | exception Invalid_argument _ -> Smr_stats.note_uaf c.st

  (* No protection and no restarts: every UAF read is committed — the
     behaviour the detectors (and the sanitizer's negative tests) exist
     to flag. *)
  let phase c ~read ~write =
    let payload, _recs = read () in
    Smr_stats.uaf_commit c.st;
    write payload

  let read_only c f =
    let r = f () in
    Smr_stats.uaf_commit c.st;
    r

  let read_root c root =
    let v = Rt.load root in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_ptr c ~src ~field =
    let v = Rt.load (P.ptr_cell c.b.pool src field) in
    if v >= 0 && P.record_read c.b.pool v then Smr_stats.note_uaf c.st;
    v

  let read_raw _c cell = Rt.load cell

  (* A [Stale] result is the whole point of this foil: consume the
     recycled memory and let the detectors count the committed UAF. *)
  let read_data c ~src ~field =
    match P.read_data c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let peek_ptr c ~src ~field =
    match P.read_ptr c.b.pool src field with
    | P.Value v -> v
    | P.Stale v ->
        if P.record_read c.b.pool src then Smr_stats.note_uaf c.st;
        v

  let ctx_stats (c : ctx) = c.st

  let stats b =
    let acc = Smr_stats.zero () in
    L.with_stats_lock b.lc (fun () -> Smr_stats.add acc b.done_stats);
    Array.iter (function None -> () | Some c -> Smr_stats.add acc c.st) b.ctxs;
    acc
end
