(** Relaxed (a,b)-tree with copy-on-write nodes and multi-phase updates.

    Stands in for the lock-free ABTree of Brown's dissertation (ch. 8) in
    the paper's E3 experiments.  What E3 actually exercises is the k-NBR
    pattern — operations made of {e several} read/write phases, each read
    phase restarting from the root — and this structure has exactly that
    shape while staying lock-based (which NBR supports and DEBRA+ does
    not):

    - Leaves hold up to [b] keys; internal nodes route through up to [b]
      children.  Nodes are immutable once published (except a [marked]
      tombstone): every update builds a replacement node and swings one
      parent pointer under the parent's lock, then retires the old node —
      so {e every} update allocates and retires, making the tree a
      reclamation stress test.
    - An insert into a full leaf splits it into a height-increasing
      degree-2 router ("weight violation" in Brown's terms); a delete may
      leave an empty leaf ("degree violation").  Violations are repaired by
      {e separate} read/write phases that re-descend from the root —
      absorbing the router into its parent, or pruning the empty leaf —
      precisely the CAS-generator / wrap-up decomposition of §5.2.

    At most 3 records are reserved per write phase (grandparent, parent,
    victim), matching the paper's count for the ABTree (§6).

    Record layout (with branching factor [b]): data0..data(b-1) = keys,
    data b = size, data b+1 = marked; ptr0..ptr(b-1) = children.  A node is
    a leaf iff child0 = nil; internal routing keys live in key[1..size-1]
    (child i covers keys in [key i, key (i+1))). *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t) =
struct
  module P = Nbr_pool.Pool.Make (Rt)
  module Lock = Spinlock.Make (Rt)

  let b = 8
  let name = "ab-tree"

  let data_fields = b + 2
  let ptr_fields = b
  let max_reservations = 3

  let f_size = b
  let f_marked = b + 1

  type t = { pool : P.t; anchor : int }

  (** The anchor is a permanent degree-1 internal node above the real root;
      replacing the root subtree means swinging [anchor.child0] under the
      anchor's lock. *)
  let create pool =
    let anchor = P.alloc pool in
    let empty = P.alloc pool in
    P.set_data pool anchor f_size 1;
    P.set_data pool empty f_size 0;
    P.set_ptr pool anchor 0 empty;
    { pool; anchor }

  (* Write-phase field reads: the node is locked / reserved, so the handle
     cannot go stale under a sound scheme. *)
  let size_of t s = min (max (P.get_data t.pool s f_size) 0) b
  let marked t s = P.get_data t.pool s f_marked = 1
  let key_at t s i = P.get_data t.pool s i
  let is_leaf t s = P.get_ptr t.pool s 0 = P.nil

  (* Read-phase variants: generation-validated, so a stale handle fails
     through the scheme's own policy instead of routing the descent (or
     deciding membership) by a recycled occupant's fields. *)
  let rsize_of ctx s = min (max (Smr.read_data ctx ~src:s ~field:f_size) 0) b
  [@@nbr.read_phase]

  let rkey_at ctx s i = Smr.read_data ctx ~src:s ~field:i [@@nbr.read_phase]

  let ris_leaf ctx s = Smr.peek_ptr ctx ~src:s ~field:0 = P.nil
  [@@nbr.read_phase]

  (* Child index for key [k] at internal node [s]: the largest [i] with
     [i = 0 || key i <= k]. *)
  let route t s k =
    let m = size_of t s in
    let i = ref 0 in
    for j = 1 to m - 1 do
      if key_at t s j <= k then i := j
    done;
    !i

  let rroute ctx s k =
    let m = rsize_of ctx s in
    let i = ref 0 in
    for j = 1 to m - 1 do
      if rkey_at ctx s j <= k then i := j
    done;
    !i
  [@@nbr.read_phase]

  (* Position of [k] in leaf [s], or -1. *)
  let leaf_find t s k =
    let m = size_of t s in
    let pos = ref (-1) in
    for j = 0 to m - 1 do
      if key_at t s j = k then pos := j
    done;
    !pos

  let rleaf_find ctx s k =
    let m = rsize_of ctx s in
    let pos = ref (-1) in
    for j = 0 to m - 1 do
      if rkey_at ctx s j = k then pos := j
    done;
    !pos
  [@@nbr.read_phase]

  (* ---------------- node construction (write phases only) -------------- *)

  let new_leaf t ctx keys n =
    let s = Smr.alloc ctx in
    for j = 0 to n - 1 do
      P.set_data t.pool s j keys.(j)
    done;
    P.set_data t.pool s f_size n;
    P.set_data t.pool s f_marked 0;
    for j = 0 to b - 1 do
      P.set_ptr t.pool s j P.nil
    done;
    s

  let new_internal t ctx keys children n =
    let s = Smr.alloc ctx in
    for j = 0 to n - 1 do
      P.set_data t.pool s j keys.(j);
      P.set_ptr t.pool s j children.(j)
    done;
    P.set_data t.pool s f_size n;
    P.set_data t.pool s f_marked 0;
    for j = n to b - 1 do
      P.set_ptr t.pool s j P.nil
    done;
    s

  (* Tombstone a node inside the critical section; the actual [retire]
     must happen only after every lock is released — retiring a locked
     record would let the reclaimer free (and the allocator recycle) a slot
     whose lock word is still held. *)
  let mark t s = P.set_data t.pool s f_marked 1

  (* ---------------- search ---------------- *)

  (* Φread: descend to the leaf for [k], tracking grandparent and parent
     (the anchor serves as both for shallow trees). *)
  let descend t ctx k =
    let gp = ref t.anchor and gdir = ref 0 in
    let p = ref t.anchor and pdir = ref 0 in
    let n = ref (Smr.read_ptr ctx ~src:t.anchor ~field:0) in
    while not (ris_leaf ctx !n) do
      gp := !p;
      gdir := !pdir;
      p := !n;
      pdir := rroute ctx !n k;
      n := Smr.read_ptr ctx ~src:!n ~field:!pdir
    done;
    (!gp, !gdir, !p, !pdir, !n)
  [@@nbr.read_phase]

  let contains t ctx k =
    Smr.begin_op ctx;
    let r =
      Smr.read_only ctx (fun () ->
          let _, _, _, _, leaf = descend t ctx k in
          rleaf_find ctx leaf k >= 0)
    in
    Smr.end_op ctx;
    r

  (* ---------------- repair phases (k-NBR wrap-up) ---------------- *)

  (* One repair attempt: re-descend towards [k]; if the path crosses a
     degree-2 router absorbable into its (non-anchor, non-full) parent, or
     an empty leaf, fix it in a write phase.  Returns true when another
     pass might find more work. *)
  type violation =
    | Clean
    | Absorb of int * int * int * int * int  (** gp, gdir, p, pdir, router *)
    | Prune of int * int * int * int * int  (** gp, gdir, p, pdir, leaf *)

  let find_violation t ctx k =
    let gp = ref t.anchor and gdir = ref 0 in
    let p = ref t.anchor and pdir = ref 0 in
    let n = ref (Smr.read_ptr ctx ~src:t.anchor ~field:0) in
    let v = ref Clean in
    while !v = Clean && not (ris_leaf ctx !n) do
      let m = rsize_of ctx !n in
      if m = 2 && !p <> t.anchor && rsize_of ctx !p < b then
        v := Absorb (!gp, !gdir, !p, !pdir, !n)
      else begin
        gp := !p;
        gdir := !pdir;
        p := !n;
        pdir := rroute ctx !n k;
        n := Smr.read_ptr ctx ~src:!n ~field:!pdir
      end
    done;
    (if
       !v = Clean && ris_leaf ctx !n
       && rsize_of ctx !n = 0
       && !p <> t.anchor
     then v := Prune (!gp, !gdir, !p, !pdir, !n));
    !v
  [@@nbr.read_phase]

  (* Lock [cells] in order; return false (after unlocking) if [valid]
     fails. *)
  let with_locks t cells ~valid ~body =
    List.iter (fun s -> Lock.lock (P.lock_cell t.pool s)) cells;
    let ok = valid () in
    let r = if ok then Some (body ()) else None in
    List.iter (fun s -> Lock.unlock (P.lock_cell t.pool s)) (List.rev cells);
    r

  let scratch_keys () = Array.make (b + 1) 0
  let scratch_children () = Array.make (b + 1) P.nil

  (* Absorb router [r] (size 2) into parent [p] at child position [pdir],
     replacing [p] by a copy with both of [r]'s children.  [p] gains one
     child; requires p.size < b. *)
  let do_absorb t ctx (gp, gdir, p, pdir, r) =
    Smr.phase ctx
      ~read:(fun () -> ((), [| gp; p; r |]))
      ~write:(fun () ->
        (* [r] must be locked too: its children are copied into the
           replacement, and leaf operations under [r] swing r's child
           edges under r's lock — without holding it the copy could
           capture a just-retired child, leaving a retired node
           reachable. *)
        with_locks t [ gp; p; r ]
          ~valid:(fun () ->
            (not (marked t gp))
            && (not (marked t p))
            && (not (marked t r))
            && P.get_ptr t.pool gp gdir = p
            && P.get_ptr t.pool p pdir = r
            && size_of t r = 2
            && size_of t p < b
            && not (is_leaf t r))
          ~body:(fun () ->
            let m = size_of t p in
            let keys = scratch_keys () and children = scratch_children () in
            let w = ref 0 in
            for j = 0 to m - 1 do
              if j = pdir then begin
                (* Splice r's two children in place of r; r's routing key
                   separates them. *)
                keys.(!w) <- key_at t p j;
                children.(!w) <- P.get_ptr t.pool r 0;
                incr w;
                keys.(!w) <- key_at t r 1;
                children.(!w) <- P.get_ptr t.pool r 1;
                incr w
              end
              else begin
                keys.(!w) <- key_at t p j;
                children.(!w) <- P.get_ptr t.pool p j;
                incr w
              end
            done;
            let p' = new_internal t ctx keys children !w in
            P.set_ptr t.pool gp gdir p';
            mark t p;
            mark t r;
            [ p; r ])
        |> function
        | None -> false
        | Some victims ->
            List.iter (Smr.retire ctx) victims;
            true)

  (* Prune empty leaf [leaf] out of parent [p]: copy [p] without that
     child; if [p] would drop to one child, replace [p] by its surviving
     child instead. *)
  let do_prune t ctx (gp, gdir, p, pdir, leaf) =
    Smr.phase ctx
      ~read:(fun () -> ((), [| gp; p; leaf |]))
      ~write:(fun () ->
        with_locks t [ gp; p ]
          ~valid:(fun () ->
            (not (marked t gp))
            && (not (marked t p))
            && (not (marked t leaf))
            && P.get_ptr t.pool gp gdir = p
            && P.get_ptr t.pool p pdir = leaf
            && is_leaf t leaf
            && size_of t leaf = 0
            && size_of t p >= 2)
          ~body:(fun () ->
            let m = size_of t p in
            if m = 2 then begin
              let sibling = P.get_ptr t.pool p (1 - pdir) in
              P.set_ptr t.pool gp gdir sibling;
              mark t p;
              mark t leaf;
              [ p; leaf ]
            end
            else begin
              let keys = scratch_keys () and children = scratch_children () in
              let w = ref 0 in
              for j = 0 to m - 1 do
                if j <> pdir then begin
                  keys.(!w) <- key_at t p j;
                  children.(!w) <- P.get_ptr t.pool p j;
                  incr w
                end
              done;
              (* Child 0's routing key is unused; normalise it. *)
              let p' = new_internal t ctx keys children !w in
              P.set_ptr t.pool gp gdir p';
              mark t p;
              mark t leaf;
              [ p; leaf ]
            end)
        |> function
        | None -> false
        | Some victims ->
            List.iter (Smr.retire ctx) victims;
            true)

  let max_repair_passes = 8

  let repair t ctx k =
    let pass = ref 0 in
    let continue_ = ref true in
    while !continue_ && !pass < max_repair_passes do
      incr pass;
      let v =
        Smr.read_only ctx (fun () -> find_violation t ctx k)
      in
      match v with
      | Clean -> continue_ := false
      | Absorb (a1, a2, a3, a4, a5) ->
          ignore (do_absorb t ctx (a1, a2, a3, a4, a5))
      | Prune (a1, a2, a3, a4, a5) ->
          ignore (do_prune t ctx (a1, a2, a3, a4, a5))
    done

  (* ---------------- updates ---------------- *)

  type 'a outcome = Done of 'a | Again

  let insert t ctx k =
    Smr.begin_op ctx;
    let split = ref false in
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            let _, _, p, pdir, leaf = descend t ctx k in
            ((p, pdir, leaf), [| p; leaf |]))
          ~write:(fun (p, pdir, leaf) ->
            if leaf_find t leaf k >= 0 then Done false
            else
              match
                with_locks t [ p ]
                  ~valid:(fun () ->
                    (not (marked t p))
                    && (not (marked t leaf))
                    && P.get_ptr t.pool p pdir = leaf
                    && leaf_find t leaf k < 0)
                  ~body:(fun () ->
                    let m = size_of t leaf in
                    let keys = scratch_keys () in
                    (* Merge k into the sorted keys. *)
                    let w = ref 0 and placed = ref false in
                    for j = 0 to m - 1 do
                      let kj = key_at t leaf j in
                      if (not !placed) && k < kj then begin
                        keys.(!w) <- k;
                        incr w;
                        placed := true
                      end;
                      keys.(!w) <- kj;
                      incr w
                    done;
                    if not !placed then begin
                      keys.(!w) <- k;
                      incr w
                    end;
                    if m < b then begin
                      let leaf' = new_leaf t ctx keys !w in
                      P.set_ptr t.pool p pdir leaf';
                      mark t leaf;
                      false (* no split *)
                    end
                    else begin
                      (* Overfull: split into two leaves under a fresh
                         degree-2 router (height-increasing; repaired by
                         a later absorb phase). *)
                      let total = !w in
                      let lo = (total + 1) / 2 in
                      let l1 = new_leaf t ctx keys lo in
                      let l2 =
                        new_leaf t ctx (Array.sub keys lo (total - lo))
                          (total - lo)
                      in
                      let rkeys = [| 0; keys.(lo) |] in
                      let router = new_internal t ctx rkeys [| l1; l2 |] 2 in
                      P.set_ptr t.pool p pdir router;
                      mark t leaf;
                      true
                    end)
              with
              | None -> Again
              | Some did_split ->
                  Smr.retire ctx leaf;
                  split := did_split;
                  Done true)
      in
      match out with Done r -> r | Again -> attempt ()
    in
    let r = attempt () in
    if r && !split then repair t ctx k;
    Smr.end_op ctx;
    r

  let delete t ctx k =
    Smr.begin_op ctx;
    let emptied = ref false in
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            let _, _, p, pdir, leaf = descend t ctx k in
            ((p, pdir, leaf), [| p; leaf |]))
          ~write:(fun (p, pdir, leaf) ->
            if leaf_find t leaf k < 0 then Done false
            else
              match
                with_locks t [ p ]
                  ~valid:(fun () ->
                    (not (marked t p))
                    && (not (marked t leaf))
                    && P.get_ptr t.pool p pdir = leaf
                    && leaf_find t leaf k >= 0)
                  ~body:(fun () ->
                    let m = size_of t leaf in
                    let keys = scratch_keys () in
                    let w = ref 0 in
                    for j = 0 to m - 1 do
                      let kj = key_at t leaf j in
                      if kj <> k then begin
                        keys.(!w) <- kj;
                        incr w
                      end
                    done;
                    let leaf' = new_leaf t ctx keys !w in
                    P.set_ptr t.pool p pdir leaf';
                    mark t leaf;
                    !w = 0)
              with
              | None -> Again
              | Some now_empty ->
                  Smr.retire ctx leaf;
                  emptied := now_empty;
                  Done true)
      in
      match out with Done r -> r | Again -> attempt ()
    in
    let r = attempt () in
    if r && !emptied then repair t ctx k;
    Smr.end_op ctx;
    r

  (* ---------------- sequential helpers (tests only) ---------------- *)

  let to_list t =
    let rec go s acc =
      if s = P.nil then acc
      else if is_leaf t s then begin
        let m = size_of t s in
        let acc = ref acc in
        for j = m - 1 downto 0 do
          acc := key_at t s j :: !acc
        done;
        !acc
      end
      else begin
        let m = size_of t s in
        let acc = ref acc in
        for j = m - 1 downto 0 do
          acc := go (P.get_ptr t.pool s j) !acc
        done;
        !acc
      end
    in
    go (P.get_ptr t.pool t.anchor 0) []

  let size t = List.length (to_list t)

  (** Structural checks for tests: sorted leaves, router ranges respected,
      sizes within bounds.  Returns an error description if violated. *)
  let check t =
    let err = ref None in
    let note m = if !err = None then err := Some m in
    let rec go s lo hi =
      if s <> P.nil then begin
        let m = size_of t s in
        if is_leaf t s then begin
          for j = 0 to m - 1 do
            let kj = key_at t s j in
            if j > 0 && key_at t s (j - 1) >= kj then note "leaf unsorted";
            if kj < lo || kj >= hi then note "leaf key out of range"
          done
        end
        else begin
          if m < 1 || m > b then note "internal size out of bounds";
          for j = 0 to m - 1 do
            let l = if j = 0 then lo else key_at t s j in
            let h = if j = m - 1 then hi else key_at t s (j + 1) in
            if j > 0 && j < m - 1 && key_at t s j >= key_at t s (j + 1) then
              note "routers unsorted";
            go (P.get_ptr t.pool s j) l h
          done
        end
      end
    in
    go (P.get_ptr t.pool t.anchor 0) min_int max_int;
    !err
end
