(** External binary search tree with lock-free searches and lock-based,
    validated updates — in the style of David, Guerraoui and Trigonakis'
    BST-TK (ASPLOS'15), the "DGT" tree of the paper's E1 experiments.

    Leaves hold the set's keys; internal nodes are routers (keys < router
    go left, ≥ router go right).  Searches descend with no synchronization
    at all.  Insert locks the leaf's parent, validates the edge, and swings
    it to a freshly built router-with-two-leaves.  Delete locks grandparent
    and parent, validates both edges, and splices the parent out (the leaf
    and the router retire).

    This is exactly the optimistic pattern the paper calls NBR-compatible
    and DEBRA+-incompatible (§5.2): a thread holding locks is by
    construction in its write phase and can never be neutralized.  At most
    3 records are reserved per operation (grandparent, parent, leaf), the
    figure the paper reports for DGT (§6).

    Sentinel structure: a root router with key [max_int] whose left child
    is a leaf with key [min_int] and whose right child is a leaf with key
    [max_int]; real keys live strictly between, so every reachable leaf has
    a parent, every parent a grandparent (the root never needs one because
    its direct leaves — the sentinels — are never deleted).

    Record layout: data0 = key, data1 = marked; ptr0 = left, ptr1 = right.
    A node is a leaf iff both children are nil. *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t) =
struct
  module P = Nbr_pool.Pool.Make (Rt)
  module Lock = Spinlock.Make (Rt)

  let name = "dgt-tree"

  let data_fields = 2
  let ptr_fields = 2
  let max_reservations = 3

  let f_key = 0
  let f_marked = 1

  type t = { pool : P.t; root : int }

  let create pool =
    let root = P.alloc pool in
    let l = P.alloc pool in
    let r = P.alloc pool in
    P.set_data pool root f_key max_int;
    P.set_data pool l f_key min_int;
    P.set_data pool r f_key max_int;
    P.set_ptr pool root 0 l;
    P.set_ptr pool root 1 r;
    { pool; root }

  (* Write-phase field reads: the node is locked / reserved, so the
     handle cannot go stale under a sound scheme. *)
  let key t s = P.get_data t.pool s f_key
  let marked t s = P.get_data t.pool s f_marked = 1
  let is_leaf t s = P.get_ptr t.pool s 0 = P.nil

  (* Read-phase variants: generation-validated, so a stale handle fails
     through the scheme's own policy instead of routing the descent by a
     recycled occupant's key. *)
  let rkey ctx s = Smr.read_data ctx ~src:s ~field:f_key [@@nbr.read_phase]
  let rdir ctx s k = (if k < rkey ctx s then 0 else 1) [@@nbr.read_phase]

  let ris_leaf ctx s = Smr.peek_ptr ctx ~src:s ~field:0 = P.nil
  [@@nbr.read_phase]

  (* Φread: descend to the leaf for [k], tracking grandparent and parent.
     Returns (gparent, gdir, parent, pdir, leaf). The root is its own
     grandparent for depth-1 leaves; those leaves are sentinels and are
     never deleted, so the slot is never dereferenced in that case. *)
  let search t ctx k =
    let gp = ref t.root and gdir = ref 0 in
    let p = ref t.root and pdir = ref (rdir ctx t.root k) in
    let l = ref (Smr.read_ptr ctx ~src:t.root ~field:!pdir) in
    while not (ris_leaf ctx !l) do
      gp := !p;
      gdir := !pdir;
      p := !l;
      pdir := rdir ctx !l k;
      l := Smr.read_ptr ctx ~src:!l ~field:!pdir
    done;
    (!gp, !gdir, !p, !pdir, !l)
  [@@nbr.read_phase]

  let contains t ctx k =
    Smr.begin_op ctx;
    let r =
      Smr.read_only ctx (fun () ->
          let _, _, _, _, l = search t ctx k in
          rkey ctx l = k)
    in
    Smr.end_op ctx;
    r

  type 'a outcome = Done of 'a | Retry

  let insert t ctx k =
    Smr.begin_op ctx;
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            let _, _, p, pdir, l = search t ctx k in
            ((p, pdir, l), [| p; l |]))
          ~write:(fun (p, pdir, l) ->
            if key t l = k then Done false
            else begin
              let pl = P.lock_cell t.pool p in
              Lock.lock pl;
              if marked t p || P.get_ptr t.pool p pdir <> l then begin
                Lock.unlock pl;
                Retry
              end
              else begin
                (* Replace the leaf edge by router(max k lk) over the two
                   leaves, ordered by key. *)
                let lk = key t l in
                let leaf = Smr.alloc ctx in
                P.set_data t.pool leaf f_key k;
                P.set_data t.pool leaf f_marked 0;
                P.set_ptr t.pool leaf 0 P.nil;
                P.set_ptr t.pool leaf 1 P.nil;
                let router = Smr.alloc ctx in
                P.set_data t.pool router f_key (max k lk);
                P.set_data t.pool router f_marked 0;
                if k < lk then begin
                  P.set_ptr t.pool router 0 leaf;
                  P.set_ptr t.pool router 1 l
                end
                else begin
                  P.set_ptr t.pool router 0 l;
                  P.set_ptr t.pool router 1 leaf
                end;
                P.set_ptr t.pool p pdir router;
                Lock.unlock pl;
                Done true
              end
            end)
      in
      match out with Done r -> r | Retry -> attempt ()
    in
    let r = attempt () in
    Smr.end_op ctx;
    r

  let delete t ctx k =
    Smr.begin_op ctx;
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            let gp, gdir, p, pdir, l = search t ctx k in
            ((gp, gdir, p, pdir, l), [| gp; p; l |]))
          ~write:(fun (gp, gdir, p, pdir, l) ->
            if key t l <> k then Done false
            else begin
              let gpl = P.lock_cell t.pool gp in
              let pl = P.lock_cell t.pool p in
              Lock.lock gpl;
              Lock.lock pl;
              if
                marked t gp || marked t p
                || P.get_ptr t.pool gp gdir <> p
                || P.get_ptr t.pool p pdir <> l
              then begin
                Lock.unlock pl;
                Lock.unlock gpl;
                Retry
              end
              else begin
                (* Splice the router [p] out: its other child replaces it
                   under [gp]. *)
                let sibling = P.get_ptr t.pool p (1 - pdir) in
                P.set_data t.pool p f_marked 1;
                P.set_data t.pool l f_marked 1;
                P.set_ptr t.pool gp gdir sibling;
                Lock.unlock pl;
                Lock.unlock gpl;
                Smr.retire ctx p;
                Smr.retire ctx l;
                Done true
              end
            end)
      in
      match out with Done r -> r | Retry -> attempt ()
    in
    let r = attempt () in
    Smr.end_op ctx;
    r

  (** Sequential key list (tests only). *)
  let to_list t =
    let rec go s acc =
      if s = P.nil then acc
      else if is_leaf t s then begin
        let k = P.get_data t.pool s f_key in
        if k = min_int || k = max_int then acc else k :: acc
      end
      else go (P.get_ptr t.pool s 0) (go (P.get_ptr t.pool s 1) acc)
    in
    go t.root []

  let size t = List.length (to_list t)
end
