(** Harris lock-free linked list (DISC'01), integrated with k-NBR.

    The paper's "incompatible pattern" made compatible (§5.2, Algorithm 3):
    Harris searches perform {e auxiliary updates} — physically unlinking
    logically-deleted (marked) nodes they encounter — so an operation
    cannot be a single Φread/Φwrite pair.  Following the paper, each
    auxiliary unlink is its own write phase, after which the operation
    starts a {e fresh read phase from the head}; the final insert/delete is
    a last write phase.  One marked node is unlinked per write phase,
    keeping the reservation count at the 3 the paper reports for this
    structure.

    A node's mark lives in the low bit of its [next] word (slot id in the
    remaining bits), so traversal reads links with [Smr.read_raw] — the
    mark-tagged access hazard-pointer schemes cannot protect, which is why
    the paper (and our benches) pair this structure only with k-NBR(+),
    DEBRA and leaky reclamation.

    Record layout: data0 = key; ptr0 = next (tagged). *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t) =
struct
  module P = Nbr_pool.Pool.Make (Rt)

  let name = "harris-list"

  let data_fields = 1
  let ptr_fields = 1
  let max_reservations = 3

  let f_key = 0
  let f_next = 0

  (* Tagged link encoding. *)
  let enc slot mark = (slot lsl 1) lor mark
  let dec_slot e = e asr 1
  let is_marked e = e land 1 = 1

  type t = { pool : P.t; head : int; tail : int }

  let create pool =
    let head = P.alloc pool and tail = P.alloc pool in
    P.set_data pool head f_key min_int;
    P.set_data pool tail f_key max_int;
    P.set_ptr pool head f_next (enc tail 0);
    P.set_ptr pool tail f_next (enc P.nil 0);
    { pool; head; tail }

  (* Write-phase key read: the window is reserved, so the handle cannot
     go stale under a sound scheme. *)
  let key t s = P.get_data t.pool s f_key
  let next_cell t s = P.ptr_cell t.pool s f_next

  (* Read-phase key read: generation-validated.  The tagged links
     themselves must stay raw ([read_raw] on the cell, instrumented via
     [record_read]) — but a key compare through a stale handle would
     route the traversal by the recycled occupant's key, so it goes
     through the scheme's validated path. *)
  let rkey ctx s = Smr.read_data ctx ~src:s ~field:f_key [@@nbr.read_phase]

  (* What a read phase discovers: either the target window, or a marked
     node that must be unlinked first (one auxiliary update per phase). *)
  type found =
    | Window of int * int  (** pred (unmarked link to curr), curr ≥ key *)
    | Marked of int * int * int  (** pred, marked curr, its successor *)

  (* Φread: walk from the head; stop at the first marked node or at the
     window for [k].  Reads links through [read_raw] and records the
     dereference for the pool's UAF instrumentation. *)
  let traverse t ctx k =
    let pred = ref t.head in
    let pe = ref (Smr.read_raw ctx (next_cell t t.head)) in
    (* head is never marked *)
    let curr = ref (dec_slot !pe) in
    let result = ref None in
    while !result = None do
      if P.record_read t.pool !curr then
        Nbr_core.Smr_stats.note_uaf (Smr.ctx_stats ctx);
      let ce = Smr.read_raw ctx (next_cell t !curr) in
      if is_marked ce then result := Some (Marked (!pred, !curr, dec_slot ce))
      else if rkey ctx !curr >= k then result := Some (Window (!pred, !curr))
      else begin
        pred := !curr;
        curr := dec_slot ce
      end
    done;
    Option.get !result
  [@@nbr.read_phase]

  (* Membership traversal: skips marked nodes without helping (Harris's
     wait-free search; it may walk through unlinked records). *)
  let contains t ctx k =
    Smr.begin_op ctx;
    let r =
      Smr.read_only ctx (fun () ->
          let curr = ref (dec_slot (Smr.read_raw ctx (next_cell t t.head))) in
          while rkey ctx !curr < k do
            if P.record_read t.pool !curr then
              Nbr_core.Smr_stats.note_uaf (Smr.ctx_stats ctx);
            curr := dec_slot (Smr.read_raw ctx (next_cell t !curr))
          done;
          rkey ctx !curr = k
          && not (is_marked (Smr.read_raw ctx (next_cell t !curr))))
    in
    Smr.end_op ctx;
    r

  type 'a outcome = Done of 'a | Again

  (* One auxiliary write phase: unlink a marked node, then force a fresh
     read phase from the head (k-NBR rule: every new Φread forgets all
     pointers and restarts from the root). *)
  let unlink_phase t ctx pred curr succ =
    if Rt.cas (next_cell t pred) (enc curr 0) (enc succ 0) then
      Smr.retire ctx curr;
    Again

  let insert t ctx k =
    Smr.begin_op ctx;
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            match traverse t ctx k with
            | Window (pred, curr) as w -> (w, [| pred; curr |])
            | Marked (pred, curr, succ) as m -> (m, [| pred; curr; succ |]))
          ~write:(function
            | Marked (pred, curr, succ) -> unlink_phase t ctx pred curr succ
            | Window (pred, curr) ->
                if key t curr = k then Done false
                else begin
                  let node = Smr.alloc ctx in
                  P.set_data t.pool node f_key k;
                  P.set_ptr t.pool node f_next (enc curr 0);
                  if Rt.cas (next_cell t pred) (enc curr 0) (enc node 0) then
                    Done true
                  else begin
                    (* Never published: plain free, no grace period needed. *)
                    P.free t.pool node;
                    Again
                  end
                end)
      in
      match out with Done r -> r | Again -> attempt ()
    in
    let r = attempt () in
    Smr.end_op ctx;
    r

  let delete t ctx k =
    Smr.begin_op ctx;
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            match traverse t ctx k with
            | Window (pred, curr) as w -> (w, [| pred; curr |])
            | Marked (pred, curr, succ) as m -> (m, [| pred; curr; succ |]))
          ~write:(function
            | Marked (pred, curr, succ) -> unlink_phase t ctx pred curr succ
            | Window (pred, curr) ->
                if key t curr <> k then Done false
                else begin
                  let ce = Rt.load (next_cell t curr) in
                  if is_marked ce then Again (* another deleter won *)
                  else if
                    (* Logical deletion: mark curr's next word. *)
                    Rt.cas (next_cell t curr) ce (enc (dec_slot ce) 1)
                  then begin
                    (* Physical unlink; on failure a later traversal will
                       clean up (auxiliary phase). *)
                    if
                      Rt.cas (next_cell t pred) (enc curr 0)
                        (enc (dec_slot ce) 0)
                    then Smr.retire ctx curr;
                    Done true
                  end
                  else Again
                end)
      in
      match out with Done r -> r | Again -> attempt ()
    in
    let r = attempt () in
    Smr.end_op ctx;
    r

  (** Sequential snapshot of unmarked keys (tests only). *)
  let to_list t =
    let rec go s acc =
      if s = t.tail then List.rev acc
      else
        let e = P.get_ptr t.pool s f_next in
        let k = P.get_data t.pool s f_key in
        let acc = if is_marked e then acc else k :: acc in
        go (dec_slot e) acc
    in
    go (dec_slot (P.get_ptr t.pool t.head f_next)) []

  let size t = List.length (to_list t)
end
