(** Lazy concurrent list-based set (Heller et al., OPODIS'05).

    The paper's representative list workload (E1, figures 3b/6).  Sorted
    singly-linked list with sentinel head/tail; wait-free [contains];
    [insert]/[delete] traverse optimistically, then lock the target window
    ⟨pred, curr⟩ and validate.  Deletion is lazy: mark [curr], then
    physically unlink.

    SMR integration is the paper's Figure 2b, verbatim: the traversal is
    the read phase, ⟨pred, curr⟩ are the (two) reserved records, and
    everything from lock acquisition on is the write phase.  Operations
    never span phases, so plain NBR/NBR+ applies (the "compatible
    pattern", §5.2).

    Record layout: data0 = key, data1 = marked; ptr0 = next. *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t) =
struct
  module P = Nbr_pool.Pool.Make (Rt)
  module Lock = Spinlock.Make (Rt)

  let name = "lazy-list"

  let data_fields = 2
  let ptr_fields = 1
  let max_reservations = 2

  let f_key = 0
  let f_marked = 1
  let f_next = 0

  type t = { pool : P.t; head : int; tail : int }

  (** Sentinels are allocated outside any operation and never retired. *)
  let create pool =
    let head = P.alloc pool and tail = P.alloc pool in
    P.set_data pool head f_key min_int;
    P.set_data pool tail f_key max_int;
    P.set_ptr pool head f_next tail;
    P.set_ptr pool tail f_next P.nil;
    { pool; head; tail }

  (* Write-phase field reads: the window is locked and reserved /
     protected, so the handle cannot go stale under a sound scheme. *)
  let key t s = P.get_data t.pool s f_key
  let marked t s = P.get_data t.pool s f_marked = 1

  (* Read-phase variants: generation-validated, so a stale handle fails
     through the scheme's own policy (NBR restarts via [Neutralized],
     epoch schemes consume-and-count) instead of yielding the recycled
     occupant's fields as if they were [s]'s. *)
  let rkey ctx s = Smr.read_data ctx ~src:s ~field:f_key [@@nbr.read_phase]

  let rmarked ctx s = Smr.read_data ctx ~src:s ~field:f_marked = 1
  [@@nbr.read_phase]

  (* Φread: locate the window ⟨pred, curr⟩ with key pred < k ≤ key curr. *)
  let search t ctx k =
    let pred = ref t.head in
    let curr = ref (Smr.read_ptr ctx ~src:t.head ~field:f_next) in
    while rkey ctx !curr < k do
      pred := !curr;
      curr := Smr.read_ptr ctx ~src:!curr ~field:f_next
    done;
    (!pred, !curr)
  [@@nbr.read_phase]

  let contains t ctx k =
    Smr.begin_op ctx;
    let r =
      Smr.read_only ctx (fun () ->
          let _, curr = search t ctx k in
          rkey ctx curr = k && not (rmarked ctx curr))
    in
    Smr.end_op ctx;
    r

  (* Φwrite helper: lock the window and validate it is still intact. *)
  let lock_window t pred curr =
    Lock.lock (P.lock_cell t.pool pred);
    Lock.lock (P.lock_cell t.pool curr);
    (not (marked t pred))
    && (not (marked t curr))
    && P.get_ptr t.pool pred f_next = curr

  let unlock_window t pred curr =
    Lock.unlock (P.lock_cell t.pool curr);
    Lock.unlock (P.lock_cell t.pool pred)

  type 'a outcome = Done of 'a | Retry

  let insert t ctx k =
    Smr.begin_op ctx;
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            let pred, curr = search t ctx k in
            ((pred, curr), [| pred; curr |]))
          ~write:(fun (pred, curr) ->
            if not (lock_window t pred curr) then begin
              unlock_window t pred curr;
              Retry
            end
            else if key t curr = k then begin
              unlock_window t pred curr;
              Done false
            end
            else begin
              let node = Smr.alloc ctx in
              P.set_data t.pool node f_key k;
              P.set_data t.pool node f_marked 0;
              P.set_ptr t.pool node f_next curr;
              P.set_ptr t.pool pred f_next node;
              unlock_window t pred curr;
              Done true
            end)
      in
      match out with Done r -> r | Retry -> attempt ()
    in
    let r = attempt () in
    Smr.end_op ctx;
    r

  let delete t ctx k =
    Smr.begin_op ctx;
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            let pred, curr = search t ctx k in
            ((pred, curr), [| pred; curr |]))
          ~write:(fun (pred, curr) ->
            if not (lock_window t pred curr) then begin
              unlock_window t pred curr;
              Retry
            end
            else if key t curr <> k then begin
              unlock_window t pred curr;
              Done false
            end
            else begin
              (* Logical then physical deletion. *)
              P.set_data t.pool curr f_marked 1;
              let succ = P.get_ptr t.pool curr f_next in
              P.set_ptr t.pool pred f_next succ;
              unlock_window t pred curr;
              Smr.retire ctx curr;
              Done true
            end)
      in
      match out with Done r -> r | Retry -> attempt ()
    in
    let r = attempt () in
    Smr.end_op ctx;
    r

  (** Sequential snapshot of the set contents (tests/debugging only; not
      linearizable under concurrency). *)
  let to_list t =
    let rec go s acc =
      if s = t.tail then List.rev acc
      else
        let k = P.get_data t.pool s f_key in
        let nxt = P.get_ptr t.pool s f_next in
        go nxt (if P.get_data t.pool s f_marked = 1 then acc else k :: acc)
    in
    go (P.get_ptr t.pool t.head f_next) []

  (** Number of unmarked elements (sequential use only). *)
  let size t = List.length (to_list t)
end
