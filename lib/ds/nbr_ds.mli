(** Concurrent set data structures, parameterized over runtime and SMR
    scheme.

    - {!Lazy_list}: lock-based sorted list (single read/write phase).
    - {!Dgt_bst}: external BST with lock-free searches, lock-based updates
      (single read/write phase, 3 reservations).
    - {!Harris_list}: lock-free list traversing marked nodes (k-NBR).
    - {!Ab_tree}: relaxed (a,b)-tree with copy-on-write nodes (k-NBR).
    - {!Hash_set}: lock-free hash set of Harris-list buckets (extension).
    - {!Skip_list}: optimistic skiplist, up to 17 reservations (extension).

    {!Spinlock} (test-and-test-and-set over runtime cells) lives here with
    its only users, keeping [nbr.sync] free of runtime dependencies. *)

module Spinlock = Spinlock
module Lazy_list = Lazy_list
module Dgt_bst = Dgt_bst
module Harris_list = Harris_list
module Ab_tree = Ab_tree
module Hash_set = Hash_set
module Skip_list = Skip_list
