(** Optimistic skiplist with lock-free searches and validated, lock-based
    updates (in the spirit of Herlihy, Lev, Luchangco and Shavit's lazy
    skiplist, simplified to single-phase updates).

    An extension beyond the paper's evaluation set, included because it
    stresses a dimension the other structures do not: updates reserve up
    to [2·max_level + 1] records (all predecessors and successors across
    levels plus the victim), an order of magnitude more than the 2–3 of
    the paper's structures — exercising NBR's assumption that reservations
    stay far below the limbo-bag threshold (paper §6).

    Design: searches descend with no synchronization; an update locks the
    union of predecessors (deduplicated, in increasing-key order — which
    level order gives us for free — so lock acquisition follows a global
    order and cannot deadlock) plus the victim, validates every level's
    link and mark, and performs the whole multi-level splice inside one
    write phase.  Node levels are a deterministic geometric function of
    the key, which keeps executions reproducible.

    Record layout (max_level L = 8): data0 = key, data1 = marked,
    data2 = top level (1..L); ptr0..ptr(L-1) = next-by-level. *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t) =
struct
  module P = Nbr_pool.Pool.Make (Rt)
  module Lock = Spinlock.Make (Rt)

  let max_level = 8
  let name = "skip-list"
  let data_fields = 3
  let ptr_fields = max_level
  let max_reservations = (2 * max_level) + 1

  let f_key = 0
  let f_marked = 1
  let f_top = 2

  type t = { pool : P.t; head : int; tail : int }

  let create pool =
    let head = P.alloc pool and tail = P.alloc pool in
    P.set_data pool head f_key min_int;
    P.set_data pool tail f_key max_int;
    P.set_data pool head f_top max_level;
    P.set_data pool tail f_top max_level;
    for lvl = 0 to max_level - 1 do
      P.set_ptr pool head lvl tail;
      P.set_ptr pool tail lvl P.nil
    done;
    { pool; head; tail }

  (* Write-phase field reads: the record is locked / reserved, so the
     handle cannot go stale under a sound scheme. *)
  let key t s = P.get_data t.pool s f_key
  let marked t s = P.get_data t.pool s f_marked = 1

  (* Read-phase variants: generation-validated, so a stale handle fails
     through the scheme's own policy instead of routing the descent by a
     recycled occupant's key. *)
  let rkey ctx s = Smr.read_data ctx ~src:s ~field:f_key [@@nbr.read_phase]

  let rmarked ctx s = Smr.read_data ctx ~src:s ~field:f_marked = 1
  [@@nbr.read_phase]

  let rtop ctx s = Smr.read_data ctx ~src:s ~field:f_top [@@nbr.read_phase]

  (* Deterministic geometric level: P(level > i) = 2^-i. *)
  let level_of k =
    let h =
      let z = (k + 0x9e3779b9) * 0x45d9f3b land max_int in
      (z lxor (z lsr 16)) * 0x45d9f3b land max_int
    in
    let rec go l h =
      if l >= max_level || h land 1 = 1 then l else go (l + 1) (h lsr 1)
    in
    go 1 h

  (* Φread: collect the per-level window.  [preds.(l)] is the rightmost
     node with key < k at level l; [succs.(l)] its successor. *)
  let find t ctx k preds succs =
    let pred = ref t.head in
    for lvl = max_level - 1 downto 0 do
      let curr = ref (Smr.read_ptr ctx ~src:!pred ~field:lvl) in
      while rkey ctx !curr < k do
        pred := !curr;
        curr := Smr.read_ptr ctx ~src:!pred ~field:lvl
      done;
      preds.(lvl) <- !pred;
      succs.(lvl) <- !curr
    done
  [@@nbr.read_phase]

  let contains t ctx k =
    Smr.begin_op ctx;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.tail in
    let r =
      Smr.read_only ctx (fun () ->
          find t ctx k preds succs;
          rkey ctx succs.(0) = k && not (rmarked ctx succs.(0)))
    in
    Smr.end_op ctx;
    r

  (* Lock the given records in increasing-key order, skipping duplicates.
     Returns the list actually locked (for unlock). *)
  let lock_unique t nodes =
    let sorted = List.sort_uniq compare nodes in
    (* increasing slot id is NOT key order; sort by key instead (ids are
       arbitrary).  Keys are distinct across live distinct nodes. *)
    let by_key =
      List.sort (fun a b -> compare (key t a) (key t b)) sorted
    in
    List.iter (fun s -> Lock.lock (P.lock_cell t.pool s)) by_key;
    by_key

  let unlock_all t locked =
    List.iter (fun s -> Lock.unlock (P.lock_cell t.pool s)) (List.rev locked)

  type 'a outcome = Done of 'a | Retry

  let reservations preds succs extra tl =
    let r = Array.make ((2 * tl) + (if extra >= 0 then 1 else 0)) 0 in
    for l = 0 to tl - 1 do
      r.(2 * l) <- preds.(l);
      r.((2 * l) + 1) <- succs.(l)
    done;
    if extra >= 0 then r.((2 * tl)) <- extra;
    r

  let insert t ctx k =
    Smr.begin_op ctx;
    let tl = level_of k in
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.tail in
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            find t ctx k preds succs;
            ((), reservations preds succs (-1) tl))
          ~write:(fun () ->
            if key t succs.(0) = k then
              if marked t succs.(0) then Retry (* deletion in flight *)
              else Done false
            else begin
              let to_lock = Array.to_list (Array.sub preds 0 tl) in
              let locked = lock_unique t to_lock in
              let valid = ref true in
              for lvl = 0 to tl - 1 do
                if
                  marked t preds.(lvl)
                  || marked t succs.(lvl)
                  || P.get_ptr t.pool preds.(lvl) lvl <> succs.(lvl)
                then valid := false
              done;
              if not !valid then begin
                unlock_all t locked;
                Retry
              end
              else begin
                let node = Smr.alloc ctx in
                P.set_data t.pool node f_key k;
                P.set_data t.pool node f_marked 0;
                P.set_data t.pool node f_top tl;
                for lvl = 0 to tl - 1 do
                  P.set_ptr t.pool node lvl succs.(lvl)
                done;
                for lvl = tl to max_level - 1 do
                  P.set_ptr t.pool node lvl P.nil
                done;
                (* Bottom-up: the node becomes logically present when its
                   level-0 link is published. *)
                for lvl = 0 to tl - 1 do
                  P.set_ptr t.pool preds.(lvl) lvl node
                done;
                unlock_all t locked;
                Done true
              end
            end)
      in
      match out with Done r -> r | Retry -> attempt ()
    in
    let r = attempt () in
    Smr.end_op ctx;
    r

  let delete t ctx k =
    Smr.begin_op ctx;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.tail in
    let rec attempt () =
      let out =
        Smr.phase ctx
          ~read:(fun () ->
            find t ctx k preds succs;
            let victim = succs.(0) in
            let tl =
              if rkey ctx victim = k then
                min max_level (max 1 (rtop ctx victim))
              else 1
            in
            ((victim, tl), reservations preds succs victim tl))
          ~write:(fun (victim, tl) ->
            if key t victim <> k then Done false
            else if marked t victim then Done false
            else begin
              let to_lock = victim :: Array.to_list (Array.sub preds 0 tl) in
              let locked = lock_unique t to_lock in
              let valid = ref (not (marked t victim)) in
              for lvl = 0 to tl - 1 do
                if
                  marked t preds.(lvl)
                  || P.get_ptr t.pool preds.(lvl) lvl <> victim
                then valid := false
              done;
              (* The victim must be linked at exactly its levels by these
                 preds; a concurrent insert above cannot happen (levels
                 are fixed at creation). *)
              if not !valid then begin
                unlock_all t locked;
                Retry
              end
              else begin
                P.set_data t.pool victim f_marked 1;
                for lvl = tl - 1 downto 0 do
                  P.set_ptr t.pool preds.(lvl) lvl
                    (P.get_ptr t.pool victim lvl)
                done;
                unlock_all t locked;
                Smr.retire ctx victim;
                Done true
              end
            end)
      in
      match out with Done r -> r | Retry -> attempt ()
    in
    let r = attempt () in
    Smr.end_op ctx;
    r

  (** Sequential snapshot via level 0 (tests only). *)
  let to_list t =
    let rec go s acc =
      if s = t.tail then List.rev acc
      else
        let acc =
          if P.get_data t.pool s f_marked = 1 then acc else key t s :: acc
        in
        go (P.get_ptr t.pool s 0) acc
    in
    go (P.get_ptr t.pool t.head 0) []

  let size t = List.length (to_list t)

  (** Structural check: every level sorted, every upper-level node present
      at level 0 (tests only, quiescent state). *)
  let check t =
    let err = ref None in
    let note m = if !err = None then err := Some m in
    let level0 = Hashtbl.create 64 in
    let rec walk0 s =
      if s <> t.tail then begin
        Hashtbl.replace level0 s ();
        walk0 (P.get_ptr t.pool s 0)
      end
    in
    walk0 (P.get_ptr t.pool t.head 0);
    for lvl = 0 to max_level - 1 do
      let rec walk s last =
        if s <> t.tail && s <> P.nil then begin
          let k = key t s in
          if k <= last then note "level unsorted";
          if lvl > 0 && not (Hashtbl.mem level0 s) then
            note "upper-level node missing at level 0";
          walk (P.get_ptr t.pool s lvl) k
        end
      in
      walk (P.get_ptr t.pool t.head lvl) min_int
    done;
    !err
end
