(** Test-and-test-and-set spinlocks over runtime atomic cells.

    Locks guard the write phases of the lock-based structures (lazy list,
    DGT tree, (a,b)-tree).  They operate on any [Rt.aint] — typically a
    per-record lock word in the {!Nbr_pool.Pool} — so one implementation
    serves both runtimes.

    NBR interplay: locks may only be taken in a write phase (the thread is
    non-restartable there), so a lock holder can never be neutralized while
    holding a lock — the deadlock that rules out DEBRA+ for these
    structures (paper §1) cannot happen by construction.  A debug assertion
    in [lock] enforces the discipline. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  let unlocked = 0

  let locked_by tid = tid + 1

  (** [try_lock cell] attempts to acquire; never blocks. *)
  let try_lock cell = Rt.cas cell unlocked (locked_by (Rt.self ()))

  (** [lock cell] spins until acquired.  Must not be called while the
      calling thread is restartable (read phase). *)
  let lock cell =
    assert (not (Rt.is_restartable ()));
    let me = locked_by (Rt.self ()) in
    let rec go spins =
      if Rt.cas cell unlocked me then ()
      else begin
        (* Test-and-TAS: spin on plain loads before retrying the RMW. *)
        let rec wait n =
          if n > 0 && Rt.plain_load cell <> unlocked then begin
            Rt.cpu_relax ();
            wait (n - 1)
          end
        in
        wait (min spins 64);
        go (spins * 2)
      end
    in
    go 4

  (** [unlock cell] releases; the caller must hold the lock. *)
  let unlock cell =
    assert (Rt.plain_load cell = locked_by (Rt.self ()));
    Rt.store cell unlocked

  (** Whether the lock is currently held by anyone (validation aid). *)
  let is_locked cell = Rt.plain_load cell <> unlocked
end
