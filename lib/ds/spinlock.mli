(** Test-and-test-and-set spinlocks over runtime atomic cells.

    Locks guard the write phases of the lock-based structures (lazy list,
    DGT tree, (a,b)-tree).  They operate on any [Rt.aint] — typically a
    per-record lock word in the {!Nbr_pool.Pool} — so one implementation
    serves both runtimes.

    NBR interplay: locks may only be taken in a write phase (the thread is
    non-restartable there), so a lock holder can never be neutralized while
    holding a lock — the deadlock that rules out DEBRA+ for these
    structures (paper §1) cannot happen by construction.  A debug assertion
    in [lock] enforces the discipline; the static analyzer (DESIGN.md §16,
    rule R1) enforces it at build time. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) : sig
  val unlocked : int
  (** The released lock word (0). *)

  val locked_by : int -> int
  (** [locked_by tid] is the lock word recording [tid] as holder. *)

  val try_lock : Rt.aint -> bool
  (** [try_lock cell] attempts to acquire; never blocks. *)

  val lock : Rt.aint -> unit
  (** [lock cell] spins until acquired.  Must not be called while the
      calling thread is restartable (read phase). *)

  val unlock : Rt.aint -> unit
  (** [unlock cell] releases; the caller must hold the lock. *)

  val is_locked : Rt.aint -> bool
  (** Whether the lock is currently held by anyone (validation aid). *)
end
