(** Deterministic fault schedules for chaos trials.

    A plan is data, not behaviour: per-thread lists of faults anchored to
    operation indices, plus an optional signal-fate policy.  The trial
    runner ({!Nbr_workload.Runner}) interprets thread faults between
    operations, and installs the signal policy into the runtime via
    [Rt.set_signal_fault]; the SMR schemes under test run unmodified.
    Everything is derived from one seed through {!Nbr_sync.Rng}, so a
    chaos trial is as replayable as a clean one.

    The fault vocabulary matches the adversities the paper's robustness
    argument (E2, §7) is about:

    - {e stalls} — a thread stops mid-operation for a long time, as if
      descheduled: the scenario where epoch schemes pin unbounded garbage
      and bounded schemes (NBR/HP/IBR) keep reclaiming;
    - {e crashes} — a thread dies inside an operation, never calling
      [end_op]: its reservations/announcements stay published forever,
      turning the stall scenario permanent;
    - {e allocation hogs} — a thread grabs a burst of slots and sits on
      them, manufacturing pool pressure to drive the graceful-exhaustion
      path;
    - {e signal faults} — neutralization signals are delivered late or
      (optionally) lost, probing NBR's dependence on the paper's
      Assumption 4 and POSIX delivery guarantees;
    - {e reclaimer faults} — the background reclaimer role (see
      {!Nbr_reclaim.Reclaimer}) stalls or crashes mid-trial, probing the
      degrade-to-inline fallback and the restore path (DESIGN.md §12). *)

type thread_fault =
  | Stall of { at_op : int; ns : int }
      (** stop for [ns] simulated/wall nanoseconds after completing
          operation [at_op], while {e inside} the next operation's read
          phase (the paper's delayed-thread scenario) *)
  | Crash of { at_op : int }
      (** after [at_op] operations, enter an operation and never return:
          no [end_op], reservations and limbo bag orphaned *)
  | Hog of { at_op : int; slots : int; ns : int }
      (** after [at_op] operations, allocate [slots] pool slots directly,
          hold them for [ns], then free them — induced pool pressure *)
  | Shard_hog of { at_op : int; shard : int; slots : int; ns : int }
      (** like [Hog], but aimed at one shard of a sharded store: the
          slots come from that shard's pool, so the pressure (and any
          breaker trip) lands on a known shard.  Interpreters without
          shards (the single-pool trial runner) treat it as [Hog]. *)

type reclaimer_fault =
  | R_stall of { at_iter : int; ns : int }
      (** after [at_iter] reclaimer loop iterations, sleep [ns] without
          draining — handoffs pile up until workers degrade to inline *)
  | R_crash of { at_iter : int; restart_ns : int }
      (** after [at_iter] iterations, deregister and go dark; come back
          after [restart_ns] (negative = never restart) *)

type signal_fault = {
  delay_pct : int;  (** % of signals whose handler runs late *)
  delay_ns : int;  (** how late *)
  drop_pct : int;
      (** % of signals lost outright.  POSIX forbids this for
          [pthread_kill]; non-zero values are for demonstrating what the
          guarantee buys (expect UAF reads), like the [unsafe_end_read]
          ablation — keep 0 in safety-asserting tests. *)
}

type t = {
  seed : int;
  threads : thread_fault list array;  (** per tid, sorted by trigger op *)
  signals : signal_fault option;
  reclaimer : reclaimer_fault list;  (** sorted by trigger iteration *)
}

let none ~nthreads =
  {
    seed = 0;
    threads = Array.make nthreads [];
    signals = None;
    reclaimer = [];
  }

let fault_op = function
  | Stall { at_op; _ } | Crash { at_op } | Hog { at_op; _ }
  | Shard_hog { at_op; _ } ->
      at_op

(* Orders a thread's fault list for the runner: by trigger op, and for a
   tie a Crash fires after anything else at the same index — a thread that
   both stalls and crashes at op [k] should suffer the stall first, since
   the crash is terminal (faults after it are unreachable). *)
let fault_rank = function
  | Stall _ -> 0
  | Hog _ | Shard_hog _ -> 1
  | Crash _ -> 2

let sort_faults l =
  List.sort
    (fun a b ->
      match compare (fault_op a) (fault_op b) with
      | 0 -> compare (fault_rank a) (fault_rank b)
      | c -> c)
    l

(** Seeded chaos: [stalls] stalled threads and [crashes] crashed threads,
    each triggered at a random operation index in [\[1, ops_window\]].
    Victims are drawn without replacement {e within} each fault kind but
    the pool resets between kinds, so one thread can draw both a stall and
    a crash — the paper's worst case of a delayed thread that then dies.
    Thread 0 is never a victim, so every plan leaves at least one thread
    running to completion.  Stall durations are uniform in
    [\[stall_ns, 2*stall_ns)].  Per-thread fault lists are ordered by
    trigger op with crashes last on ties (a crash is terminal).  [signal]
    installs a signal-fate policy (delays stress Assumption 4 but remain
    safe; drops are opt-in and unsafe by design). *)
let chaos ~seed ~nthreads ?(stalls = 2) ?(crashes = 1) ?(stall_ns = 50_000)
    ?(ops_window = 100) ?signal () =
  if nthreads < 2 then invalid_arg "Fault_plan.chaos: nthreads must be >= 2";
  let rng = Nbr_sync.Rng.create (seed lxor 0x5eed_fa17) in
  let threads = Array.make nthreads [] in
  let victims () = List.init (nthreads - 1) (fun i -> i + 1) in
  let avail = ref (victims ()) in
  let draw_victim () =
    match !avail with
    | [] -> None
    | l ->
        let tid = List.nth l (Nbr_sync.Rng.below rng (List.length l)) in
        avail := List.filter (fun x -> x <> tid) l;
        Some tid
  in
  let at () = 1 + Nbr_sync.Rng.below rng (max 1 ops_window) in
  for _ = 1 to stalls do
    match draw_victim () with
    | None -> ()
    | Some tid ->
        let ns = stall_ns + Nbr_sync.Rng.below rng (max 1 stall_ns) in
        threads.(tid) <- Stall { at_op = at (); ns } :: threads.(tid)
  done;
  (* Fresh victim pool: a stalled thread may also crash. *)
  avail := victims ();
  for _ = 1 to crashes do
    match draw_victim () with
    | None -> ()
    | Some tid -> threads.(tid) <- Crash { at_op = at () } :: threads.(tid)
  done;
  Array.iteri (fun i l -> threads.(i) <- sort_faults l) threads;
  { seed; threads; signals = signal; reclaimer = [] }

let reclaimer_fault_iter = function
  | R_stall { at_iter; _ } | R_crash { at_iter; _ } -> at_iter

(** Pressure chaos: the reclaim experiment's adversary.  A [chaos] base
    (stalled + crashed workers), plus [hogs] allocation-hog bursts to
    manufacture pool pressure, plus a reclaimer schedule: one stall long
    enough to trip the backlog detector, then a crash with a restart
    after [restart_ns] ([restart_ns < 0] keeps it dead, the permanent
    degradation case).  Everything is seed-derived except the reclaimer
    schedule, which is fixed so the degrade → restore sequence the CI
    smoke asserts on is present in every plan. *)
let pressure_chaos ~seed ~nthreads ?(stalls = 1) ?(crashes = 1) ?(hogs = 1)
    ?(hog_slots = 32) ?(stall_ns = 50_000) ?(ops_window = 100)
    ?(reclaimer_stall_ns = 200_000) ?(restart_ns = 400_000) ?signal () =
  let base = chaos ~seed ~nthreads ~stalls ~crashes ~stall_ns ~ops_window ?signal () in
  let rng = Nbr_sync.Rng.create (seed lxor 0x9e55_0e5a) in
  let threads = Array.copy base.threads in
  for _ = 1 to hogs do
    if nthreads > 1 then begin
      let tid = 1 + Nbr_sync.Rng.below rng (nthreads - 1) in
      let at_op = 1 + Nbr_sync.Rng.below rng (max 1 ops_window) in
      threads.(tid) <-
        sort_faults (Hog { at_op; slots = hog_slots; ns = stall_ns } :: threads.(tid))
    end
  done;
  let reclaimer =
    [
      R_stall { at_iter = 50; ns = reclaimer_stall_ns };
      R_crash { at_iter = 150; restart_ns };
    ]
  in
  { base with threads; reclaimer }

(** Shard pressure: the slo-chaos adversary.  A fixed (not seed-drawn)
    schedule of overlapping [Shard_hog] bursts, all aimed at one shard:
    hog [i] fires from thread [1 + i mod (nthreads-1)] at op
    [start_op + i*stagger_ops] and holds [hold_ns], so the target
    shard's pool occupancy stays above its watermark across several
    consecutive service health polls (tripping its breaker up the
    brownout ladder and open), then drains completely (letting the
    half-open probes succeed and the breaker close).  The schedule is
    fixed so the open → half-open → close round-trip the CI smoke
    asserts on is present in every plan; [seed] is recorded for replay
    bookkeeping only.  Thread 0 never hogs, so requests keep flowing. *)
let shard_pressure ~seed ~nthreads ~shard ?(hogs = 3) ?(hog_slots = 48)
    ?(start_op = 20) ?(stagger_ops = 15) ?(hold_ns = 300_000) () =
  if nthreads < 2 then
    invalid_arg "Fault_plan.shard_pressure: nthreads must be >= 2";
  if shard < 0 then invalid_arg "Fault_plan.shard_pressure: shard";
  let threads = Array.make nthreads [] in
  for i = 0 to hogs - 1 do
    let tid = 1 + (i mod (nthreads - 1)) in
    let at_op = start_op + (i * stagger_ops) in
    threads.(tid) <-
      Shard_hog { at_op; shard; slots = hog_slots; ns = hold_ns }
      :: threads.(tid)
  done;
  Array.iteri (fun i l -> threads.(i) <- sort_faults l) threads;
  { seed; threads; signals = None; reclaimer = [] }

let reclaimer_faults t = t.reclaimer
let has_reclaimer_faults t = t.reclaimer <> []

let faults_for t tid =
  if tid >= 0 && tid < Array.length t.threads then t.threads.(tid) else []

let crashed_tids t =
  let acc = ref [] in
  Array.iteri
    (fun tid l ->
      if List.exists (function Crash _ -> true | _ -> false) l then
        acc := tid :: !acc)
    t.threads;
  List.rev !acc

let stalled_tids t =
  let acc = ref [] in
  Array.iteri
    (fun tid l ->
      if List.exists (function Stall _ -> true | _ -> false) l then
        acc := tid :: !acc)
    t.threads;
  List.rev !acc

(** Whether the plan can lose signals — the one injected fault that makes
    committed UAF reads legitimately possible (chaos tests relax the
    zero-UAF assertion only under this). *)
let injects_drops t =
  match t.signals with Some { drop_pct; _ } -> drop_pct > 0 | None -> false

let has_thread_faults t = Array.exists (fun l -> l <> []) t.threads

(* SplitMix-style avalanche, so the fate of signal [k] from [sender] to
   [target] is a pure function of (plan seed, k, sender, target) — stable
   across runs in the deterministic simulator. *)
let mix a b =
  let z = (a lxor (b * 0x9e3779b9)) + 0x1e3779b97f4a7c15 in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14c2ca6afdf2dcef in
  (z lxor (z lsr 31)) land max_int

(** The decider to install with [Rt.set_signal_fault], or [None] if the
    plan leaves signals alone.  Call once per trial: the returned closure
    numbers sends with a private counter. *)
let fate_fn t =
  match t.signals with
  | None -> None
  | Some sf ->
      let count = Atomic.make 0 in
      Some
        (fun ~sender ~target ->
          let k = Atomic.fetch_and_add count 1 in
          let r = mix t.seed (mix k (mix sender target)) mod 100 in
          if r < sf.drop_pct then Nbr_runtime.Runtime_intf.Sig_drop
          else if r < sf.drop_pct + sf.delay_pct then
            Nbr_runtime.Runtime_intf.Sig_delay sf.delay_ns
          else Nbr_runtime.Runtime_intf.Sig_deliver)

let pp_thread_fault ppf = function
  | Stall { at_op; ns } -> Format.fprintf ppf "stall@%d(%dns)" at_op ns
  | Crash { at_op } -> Format.fprintf ppf "crash@%d" at_op
  | Hog { at_op; slots; ns } ->
      Format.fprintf ppf "hog@%d(%d slots,%dns)" at_op slots ns
  | Shard_hog { at_op; shard; slots; ns } ->
      Format.fprintf ppf "shard%d-hog@%d(%d slots,%dns)" shard at_op slots ns

let pp_reclaimer_fault ppf = function
  | R_stall { at_iter; ns } -> Format.fprintf ppf "r-stall@%d(%dns)" at_iter ns
  | R_crash { at_iter; restart_ns } ->
      if restart_ns < 0 then Format.fprintf ppf "r-crash@%d(final)" at_iter
      else Format.fprintf ppf "r-crash@%d(back in %dns)" at_iter restart_ns

let pp ppf t =
  Format.fprintf ppf "plan{seed=%d" t.seed;
  Array.iteri
    (fun tid l ->
      if l <> [] then begin
        Format.fprintf ppf "; t%d:" tid;
        List.iteri
          (fun i f ->
            if i > 0 then Format.fprintf ppf ",";
            pp_thread_fault ppf f)
          l
      end)
    t.threads;
  (match t.signals with
  | None -> ()
  | Some { delay_pct; delay_ns; drop_pct } ->
      Format.fprintf ppf "; signals: delay %d%%(%dns) drop %d%%" delay_pct
        delay_ns drop_pct);
  if t.reclaimer <> [] then begin
    Format.fprintf ppf "; reclaimer:";
    List.iteri
      (fun i f ->
        if i > 0 then Format.fprintf ppf ",";
        pp_reclaimer_fault ppf f)
      t.reclaimer
  end;
  Format.fprintf ppf "}"
