(** Deterministic fault schedules for chaos trials.

    A plan is data, not behaviour: per-thread lists of faults anchored
    to operation indices, plus an optional signal-fate policy.  The
    trial runner ({!Nbr_workload.Runner}) interprets thread faults
    between operations and installs the signal policy into the runtime
    via [Rt.set_signal_fault]; the SMR schemes under test run
    unmodified.  Everything is derived from one seed through
    {!Nbr_sync.Rng}, so a chaos trial is as replayable as a clean one.

    The fault vocabulary matches the adversities the paper's robustness
    argument (E2, §7) is about: stalls (delayed threads pinning
    garbage), crashes (the stall made permanent), allocation hogs
    (manufactured pool pressure), signal faults (late or lost
    neutralization signals, probing Assumption 4), and reclaimer faults
    (the background reclaimer role stalling or crashing, probing the
    degrade-to-inline fallback — DESIGN.md §12). *)

type thread_fault =
  | Stall of { at_op : int; ns : int }
      (** stop for [ns] simulated/wall nanoseconds after completing
          operation [at_op], while {e inside} the next operation's read
          phase (the paper's delayed-thread scenario) *)
  | Crash of { at_op : int }
      (** after [at_op] operations, enter an operation and never return:
          no [end_op], reservations and limbo bag orphaned *)
  | Hog of { at_op : int; slots : int; ns : int }
      (** after [at_op] operations, allocate [slots] pool slots
          directly, hold them for [ns], then free them — induced pool
          pressure *)
  | Shard_hog of { at_op : int; shard : int; slots : int; ns : int }
      (** like [Hog], but aimed at one shard of a sharded store: the
          slots come from that shard's pool, so the pressure (and any
          circuit-breaker trip) lands on a known shard.  Interpreters
          without shards (the single-pool trial runner) treat it as
          [Hog]. *)

type reclaimer_fault =
  | R_stall of { at_iter : int; ns : int }
      (** after [at_iter] reclaimer loop iterations, sleep [ns] without
          draining — handoffs pile up until workers degrade to inline *)
  | R_crash of { at_iter : int; restart_ns : int }
      (** after [at_iter] iterations, deregister and go dark; come back
          after [restart_ns] (negative = never restart) *)

type signal_fault = {
  delay_pct : int;  (** % of signals whose handler runs late *)
  delay_ns : int;  (** how late *)
  drop_pct : int;
      (** % of signals lost outright.  POSIX forbids this for
          [pthread_kill]; non-zero values are for demonstrating what the
          guarantee buys (expect UAF reads) — keep 0 in safety-asserting
          tests. *)
}

type t = {
  seed : int;
  threads : thread_fault list array;  (** per tid, sorted by trigger op *)
  signals : signal_fault option;
  reclaimer : reclaimer_fault list;  (** sorted by trigger iteration *)
}

val none : nthreads:int -> t
(** The empty plan: no thread faults, signals untouched. *)

val chaos :
  seed:int ->
  nthreads:int ->
  ?stalls:int ->
  ?crashes:int ->
  ?stall_ns:int ->
  ?ops_window:int ->
  ?signal:signal_fault ->
  unit ->
  t
(** Seeded chaos: [stalls] stalled threads and [crashes] crashed
    threads, each triggered at a random operation index in
    [\[1, ops_window\]].  Victims are drawn without replacement {e
    within} each fault kind but the pool resets between kinds, so one
    thread can draw both a stall and a crash.  Thread 0 is never a
    victim, so every plan leaves at least one thread running to
    completion.  Per-thread fault lists are ordered by trigger op with
    crashes last on ties (a crash is terminal).  Raises
    [Invalid_argument] when [nthreads < 2]. *)

val pressure_chaos :
  seed:int ->
  nthreads:int ->
  ?stalls:int ->
  ?crashes:int ->
  ?hogs:int ->
  ?hog_slots:int ->
  ?stall_ns:int ->
  ?ops_window:int ->
  ?reclaimer_stall_ns:int ->
  ?restart_ns:int ->
  ?signal:signal_fault ->
  unit ->
  t
(** The reclaim experiment's adversary: a {!chaos} base plus [hogs]
    allocation-hog bursts for pool pressure, plus a fixed reclaimer
    schedule — a stall long enough to trip the backlog detector, then a
    crash that restarts after [restart_ns] ([restart_ns < 0] keeps the
    reclaimer dead: the permanent degradation case). *)

val shard_pressure :
  seed:int ->
  nthreads:int ->
  shard:int ->
  ?hogs:int ->
  ?hog_slots:int ->
  ?start_op:int ->
  ?stagger_ops:int ->
  ?hold_ns:int ->
  unit ->
  t
(** The slo-chaos adversary: a fixed schedule of [hogs] overlapping
    {!Shard_hog} bursts aimed at [shard], staggered [stagger_ops]
    operations apart from [start_op] and each held for [hold_ns].  The
    target shard's pool occupancy stays high across several consecutive
    service health polls — walking its circuit breaker up the brownout
    ladder and open — then drains completely so half-open probes succeed
    and the breaker closes.  Fixed (not seed-drawn) so the traced
    open → half-open → close round-trip is present in every plan; [seed]
    is recorded for bookkeeping.  Thread 0 never hogs.  Raises
    [Invalid_argument] when [nthreads < 2] or [shard < 0]. *)

val faults_for : t -> int -> thread_fault list
(** The (sorted) fault list for one thread; [] out of range. *)

val reclaimer_faults : t -> reclaimer_fault list
(** The reclaimer's fault schedule, sorted by trigger iteration. *)

val reclaimer_fault_iter : reclaimer_fault -> int
(** The loop iteration a reclaimer fault triggers at. *)

val has_reclaimer_faults : t -> bool

val fault_op : thread_fault -> int
(** The operation index a fault triggers at (the runner's cursor key). *)

val crashed_tids : t -> int list
val stalled_tids : t -> int list

val injects_drops : t -> bool
(** Whether the plan can lose signals — the one injected fault that
    makes committed UAF reads legitimately possible (chaos tests relax
    the zero-UAF assertion only under this). *)

val has_thread_faults : t -> bool

val fate_fn :
  t -> (sender:int -> target:int -> Nbr_runtime.Runtime_intf.signal_fate) option
(** The decider to install with [Rt.set_signal_fault], or [None] if the
    plan leaves signals alone.  Call once per trial: the returned
    closure numbers sends with a private counter, and the fate of signal
    [k] from [sender] to [target] is a pure function of
    (plan seed, k, sender, target). *)

val pp_thread_fault : Format.formatter -> thread_fault -> unit
val pp_reclaimer_fault : Format.formatter -> reclaimer_fault -> unit
val pp : Format.formatter -> t -> unit
