(* Service-level overload protection (DESIGN.md §15).

   One [Guard.t] fronts a sharded store with four composed mechanisms:

   - per-request deadlines, derived from the request's *arrival* time
     and enforced twice — at admission and again immediately before
     shard execution — so a backlog converts into explicit [Timed_out]
     completions instead of an unbounded latency tail;
   - admission control: a bounded per-shard inflight budget with a
     reject-newest shed policy (the request that finds the budget full
     is the one refused), each shed traced;
   - retry with capped exponential backoff + deterministic jitter for
     transiently-failed requests (pool starvation mid-batch), behind a
     retry budget proportional to completions so retries cannot
     amplify an overload;
   - per-shard circuit breakers fed by health signals the stack already
     publishes (pool watermark excursions, offload degradation,
     handshake timeouts, [Exhausted]), with a brownout ladder — shed
     scans first, then writes, reads last — before fully opening, and
     probe-limited half-open recovery.

   The module is runtime-free: every entry point takes [~now] (the
   caller's [Rt.now_ns ()]) and [~tid], so one implementation serves
   both the deterministic simulator and the native runtime, and the
   breaker state machine is directly drivable from unit tests.  Shared
   state is a handful of atomics; transitions go through CAS so exactly
   one racing worker performs (and traces) each one.

   The ledger invariant the reports validate: every admitted request is
   exactly one of completed / shed / timed-out.  A disabled guard (no
   [Cfg]) still keeps the ledger — admission always proceeds and
   failures propagate as before — so accounting holds for guarded and
   unguarded runs alike. *)

type cls = Read | Write | Scan

let cls_code = function Read -> 0 | Write -> 1 | Scan -> 2

let cls_of_op (op : Nbr_workload.Traffic.op) =
  match op with
  | Nbr_workload.Traffic.Get _ -> Read
  | Put _ | Delete _ -> Write
  | Scan _ -> Scan

module Cfg = struct
  type t = {
    deadline_ns : int;
    inflight : int;  (** per-shard admitted-but-incomplete budget *)
    max_retries : int;  (** extra attempts per request *)
    retry_budget_pct : int;  (** retries allowed as % of completions *)
    backoff_ns : int;  (** base backoff before the first retry *)
    backoff_cap_ns : int;
    unhealthy_for : int;  (** consecutive bad polls per ladder rung *)
    recover_for : int;  (** consecutive good polls to step back down *)
    open_ns : int;  (** open-state cooldown before half-open *)
    probes : int;  (** half-open probe budget (all must succeed) *)
  }

  let make ?(deadline_ns = 200_000) ?(inflight = 64) ?(max_retries = 2)
      ?(retry_budget_pct = 10) ?(backoff_ns = 1_000)
      ?(backoff_cap_ns = 16_000) ?(unhealthy_for = 2) ?(recover_for = 2)
      ?(open_ns = 50_000) ?(probes = 4) () =
    if deadline_ns < 1 then invalid_arg "Guard.Cfg.make: deadline_ns < 1";
    if inflight < 1 then invalid_arg "Guard.Cfg.make: inflight < 1";
    if max_retries < 0 then invalid_arg "Guard.Cfg.make: max_retries < 0";
    if retry_budget_pct < 0 || retry_budget_pct > 100 then
      invalid_arg "Guard.Cfg.make: retry_budget_pct not in [0,100]";
    if backoff_ns < 1 || backoff_cap_ns < backoff_ns then
      invalid_arg "Guard.Cfg.make: backoff";
    if unhealthy_for < 1 || recover_for < 1 then
      invalid_arg "Guard.Cfg.make: ladder streaks must be >= 1";
    if open_ns < 1 then invalid_arg "Guard.Cfg.make: open_ns < 1";
    if probes < 1 then invalid_arg "Guard.Cfg.make: probes < 1";
    {
      deadline_ns;
      inflight;
      max_retries;
      retry_budget_pct;
      backoff_ns;
      backoff_cap_ns;
      unhealthy_for;
      recover_for;
      open_ns;
      probes;
    }
end

(* ------------------------------------------------------------------ *)
(* The per-shard breaker: closed with a brownout level (0 healthy,
   1 shed scans, 2 shed writes too), open (3: shed everything, wait out
   the cooldown), half-open (4: a bounded number of probe requests).
   All transitions are CAS-guarded on the state word, so concurrent
   workers observing the same evidence race to a single transition. *)

module Breaker = struct
  type transition =
    | Brownout_to of int  (** ladder moved (up or down) to this level *)
    | Opened
    | Half_opened
    | Reclosed

  type t = {
    bu_for : int;
    br_for : int;
    b_open_ns : int;
    b_probes : int;
    state : int Atomic.t;  (** 0..2 closed level / 3 open / 4 half-open *)
    since : int Atomic.t;  (** timestamp of the last open *)
    bad : int Atomic.t;  (** consecutive unhealthy polls *)
    good : int Atomic.t;
    probes_left : int Atomic.t;
    probe_ok : int Atomic.t;
  }

  let create ?(unhealthy_for = 2) ?(recover_for = 2) ?(open_ns = 50_000)
      ?(probes = 4) () =
    {
      bu_for = max 1 unhealthy_for;
      br_for = max 1 recover_for;
      b_open_ns = max 1 open_ns;
      b_probes = max 1 probes;
      state = Atomic.make 0;
      since = Atomic.make 0;
      bad = Atomic.make 0;
      good = Atomic.make 0;
      probes_left = Atomic.make 0;
      probe_ok = Atomic.make 0;
    }

  let of_cfg (c : Cfg.t) =
    create ~unhealthy_for:c.Cfg.unhealthy_for ~recover_for:c.Cfg.recover_for
      ~open_ns:c.Cfg.open_ns ~probes:c.Cfg.probes ()

  let state_code t = Atomic.get t.state

  let move t ~from ~to_ = Atomic.compare_and_set t.state from to_

  (* One health poll.  Only drives the closed-state ladder: once open,
     recovery is time- and probe-driven, not poll-driven. *)
  let note_health t ~now ~healthy =
    let s = Atomic.get t.state in
    if s >= 3 then None
    else if healthy then begin
      Atomic.set t.bad 0;
      let g = 1 + Atomic.fetch_and_add t.good 1 in
      if s > 0 && g >= t.br_for then begin
        Atomic.set t.good 0;
        if move t ~from:s ~to_:(s - 1) then Some (Brownout_to (s - 1))
        else None
      end
      else None
    end
    else begin
      Atomic.set t.good 0;
      let b = 1 + Atomic.fetch_and_add t.bad 1 in
      if b >= t.bu_for then begin
        Atomic.set t.bad 0;
        if s = 2 then
          if move t ~from:2 ~to_:3 then begin
            Atomic.set t.since now;
            Some Opened
          end
          else None
        else if move t ~from:s ~to_:(s + 1) then Some (Brownout_to (s + 1))
        else None
      end
      else None
    end

  (* Hard trip: [Exhausted] (or any equally terminal evidence) skips the
     ladder.  From half-open it also re-opens (a probe window in which
     the pool still starves has failed by definition). *)
  let trip t ~now =
    let s = Atomic.get t.state in
    if s <> 3 && move t ~from:s ~to_:3 then begin
      Atomic.set t.since now;
      Atomic.set t.bad 0;
      Atomic.set t.good 0;
      Some Opened
    end
    else None

  type admission = Proceed | Probe | Reject

  (* Reads are the last class shed: level 1 sheds scans, level 2 also
     writes, and only a fully-open breaker refuses reads. *)
  let rec take_probe t =
    let p = Atomic.get t.probes_left in
    if p > 0 then
      if Atomic.compare_and_set t.probes_left p (p - 1) then true
      else take_probe t
    else false

  let admit t ~now ~cls =
    match Atomic.get t.state with
    | 0 -> (Proceed, None)
    | 1 -> ((if cls = Scan then Reject else Proceed), None)
    | 2 -> ((if cls = Read then Proceed else Reject), None)
    | 3 ->
        if
          now - Atomic.get t.since >= t.b_open_ns
          && move t ~from:3 ~to_:4
        then begin
          Atomic.set t.probe_ok 0;
          Atomic.set t.probes_left (t.b_probes - 1);
          (* this request is the first probe *)
          (Probe, Some Half_opened)
        end
        else (Reject, None)
    | _ -> ((if take_probe t then Probe else Reject), None)

  (* A probe admission that never executed (deadline fired first) says
     nothing about shard health: hand the token back. *)
  let return_probe t = Atomic.incr t.probes_left

  let note_probe t ~now ~ok =
    if Atomic.get t.state <> 4 then None
    else if ok then begin
      let k = 1 + Atomic.fetch_and_add t.probe_ok 1 in
      if k >= t.b_probes && move t ~from:4 ~to_:0 then begin
        Atomic.set t.bad 0;
        Atomic.set t.good 0;
        Some Reclosed
      end
      else None
    end
    else if move t ~from:4 ~to_:3 then begin
      Atomic.set t.since now;
      Some Opened
    end
    else None
end

(* ------------------------------------------------------------------ *)

type slo = {
  slo_on : bool;
  slo_admitted : int;
  slo_completed : int;
  slo_shed : int;
  slo_timed_out : int;
  slo_retries : int;
  slo_exhausted : int;  (** [Exhausted] raises absorbed by the guard *)
  slo_opens : int;
  slo_half_opens : int;
  slo_closes : int;
  slo_brownouts : int;
}

let slo_ok s =
  s.slo_admitted = s.slo_completed + s.slo_shed + s.slo_timed_out

let goodput_pct s =
  if s.slo_admitted = 0 then 100.0
  else 100.0 *. float_of_int s.slo_completed /. float_of_int s.slo_admitted

let pp_slo ppf s =
  Format.fprintf ppf
    "admitted=%d completed=%d shed=%d timed_out=%d retries=%d exhausted=%d \
     opens=%d half_opens=%d closes=%d brownouts=%d goodput=%.1f%%%s"
    s.slo_admitted s.slo_completed s.slo_shed s.slo_timed_out s.slo_retries
    s.slo_exhausted s.slo_opens s.slo_half_opens s.slo_closes s.slo_brownouts
    (goodput_pct s)
    (if slo_ok s then "" else "  LEDGER-BROKEN")

type t = {
  cfg : Cfg.t;
  on : bool;
  breakers : Breaker.t array;
  inflight : int Atomic.t array;
  admitted : int Atomic.t;
  completed : int Atomic.t;
  shed : int Atomic.t;
  timed_out : int Atomic.t;
  retries : int Atomic.t;
  exhausted : int Atomic.t;
  opens : int Atomic.t;
  half_opens : int Atomic.t;
  closes : int Atomic.t;
  brownouts : int Atomic.t;
}

let disabled_cfg = Cfg.make ()

let create ?cfg ~nshards () =
  if nshards < 1 then invalid_arg "Guard.create: nshards < 1";
  let on, cfg =
    match cfg with None -> (false, disabled_cfg) | Some c -> (true, c)
  in
  {
    cfg;
    on;
    breakers = Array.init nshards (fun _ -> Breaker.of_cfg cfg);
    inflight = Array.init nshards (fun _ -> Atomic.make 0);
    admitted = Atomic.make 0;
    completed = Atomic.make 0;
    shed = Atomic.make 0;
    timed_out = Atomic.make 0;
    retries = Atomic.make 0;
    exhausted = Atomic.make 0;
    opens = Atomic.make 0;
    half_opens = Atomic.make 0;
    closes = Atomic.make 0;
    brownouts = Atomic.make 0;
  }

let enabled t = t.on
let deadline_ns t = t.cfg.Cfg.deadline_ns
let breaker t ~shard = t.breakers.(shard)

let emit ~tid ~now k a b =
  if !Nbr_obs.Trace.on then Nbr_obs.Trace.emit ~tid ~ns:now k a b

let note_transition t ~tid ~now ~shard = function
  | None -> ()
  | Some (Breaker.Brownout_to l) ->
      Atomic.incr t.brownouts;
      emit ~tid ~now Nbr_obs.Trace.Brownout shard l
  | Some Breaker.Opened ->
      Atomic.incr t.opens;
      emit ~tid ~now Nbr_obs.Trace.Breaker_open shard t.cfg.Cfg.unhealthy_for
  | Some Breaker.Half_opened ->
      Atomic.incr t.half_opens;
      emit ~tid ~now Nbr_obs.Trace.Breaker_half_open shard t.cfg.Cfg.probes
  | Some Breaker.Reclosed ->
      Atomic.incr t.closes;
      emit ~tid ~now Nbr_obs.Trace.Breaker_close shard t.cfg.Cfg.probes

(* Health heuristic over the signals the stack already publishes.  The
   occupancy backstop fires near capacity even when no watermarks are
   configured (no background reclaimer), so an unguarded-by-reclaim
   store still browns out before it exhausts. *)
let healthy_of ~occupancy ~capacity ~pressured ~degraded ~hs_timed_out =
  (not pressured) && (not degraded) && (not hs_timed_out)
  && (capacity <= 0 || occupancy < capacity - (capacity / 4))

let poll t ~now ~tid ~shard ~healthy =
  if t.on then
    note_transition t ~tid ~now ~shard
      (Breaker.note_health t.breakers.(shard) ~now ~healthy)

let shed_one t ~now ~tid ~shard ~cls =
  Atomic.incr t.shed;
  emit ~tid ~now Nbr_obs.Trace.Admission_shed shard (cls_code cls)

let timeout_one t ~now ~tid ~shard ~arrival =
  Atomic.incr t.timed_out;
  emit ~tid ~now Nbr_obs.Trace.Request_timeout shard
    (now - arrival - t.cfg.Cfg.deadline_ns)

type admission = Admitted of { probe : bool } | Rejected

(* Admission: deadline first (a request already past its deadline is
   [Timed_out], never silently dropped), then the inflight budget
   (reject-newest), then the shard breaker. *)
let admit t ~now ~tid ~shard ~cls ~arrival =
  Atomic.incr t.admitted;
  if not t.on then Admitted { probe = false }
  else if now - arrival > t.cfg.Cfg.deadline_ns then begin
    timeout_one t ~now ~tid ~shard ~arrival;
    Rejected
  end
  else begin
    let infl = t.inflight.(shard) in
    if Atomic.get infl >= t.cfg.Cfg.inflight then begin
      shed_one t ~now ~tid ~shard ~cls;
      Rejected
    end
    else begin
      let verdict, tr = Breaker.admit t.breakers.(shard) ~now ~cls in
      note_transition t ~tid ~now ~shard tr;
      match verdict with
      | Breaker.Reject ->
          shed_one t ~now ~tid ~shard ~cls;
          Rejected
      | Breaker.Proceed ->
          Atomic.incr infl;
          Admitted { probe = false }
      | Breaker.Probe ->
          Atomic.incr infl;
          Admitted { probe = true }
    end
  end

(* Deadline recheck at the head of shard execution: queueing between
   admission and execution may have eaten the whole budget.  Returns
   false when the request was completed as [Timed_out] here. *)
let pre_exec t ~now ~tid ~shard ~arrival ~probe =
  if not t.on then true
  else if now - arrival > t.cfg.Cfg.deadline_ns then begin
    timeout_one t ~now ~tid ~shard ~arrival;
    Atomic.decr t.inflight.(shard);
    if probe then Breaker.return_probe t.breakers.(shard);
    false
  end
  else true

let complete t ~now ~tid ~shard ~probe =
  Atomic.incr t.completed;
  if t.on then begin
    Atomic.decr t.inflight.(shard);
    if probe then
      note_transition t ~tid ~now ~shard
        (Breaker.note_probe t.breakers.(shard) ~now ~ok:true)
  end

(* Final failure after the retry budget is spent: accounted by where
   the clock stands — past-deadline failures are timeouts, the rest are
   sheds.  A failed probe re-opens the breaker. *)
let fail t ~now ~tid ~shard ~cls ~arrival ~probe =
  if t.on then begin
    Atomic.decr t.inflight.(shard);
    if probe then
      note_transition t ~tid ~now ~shard
        (Breaker.note_probe t.breakers.(shard) ~now ~ok:false)
  end;
  if t.on && now - arrival > t.cfg.Cfg.deadline_ns then
    timeout_one t ~now ~tid ~shard ~arrival
  else begin
    Atomic.incr t.shed;
    emit ~tid ~now Nbr_obs.Trace.Admission_shed shard (cls_code cls)
  end

(* An admitted request its worker can never execute (the worker was
   expelled or crashed mid-batch): completed as shed so the ledger
   still balances — the alternative is a silently lost request. *)
let forfeit t ~now ~tid ~shard ~cls ~probe =
  if t.on then begin
    Atomic.decr t.inflight.(shard);
    if probe then Breaker.return_probe t.breakers.(shard)
  end;
  shed_one t ~now ~tid ~shard ~cls

let note_exhausted t ~now ~tid ~shard =
  Atomic.incr t.exhausted;
  if t.on then
    note_transition t ~tid ~now ~shard
      (Breaker.trip t.breakers.(shard) ~now)

(* SplitMix-style avalanche for backoff jitter: deterministic in the
   simulator (a pure function of tid/shard/attempt/arrival), decorrelated
   enough that colliding retries spread out. *)
let mix a b =
  let z = (a lxor (b * 0x9e3779b9)) + 0x1e3779b97f4a7c15 in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14c2ca6afdf2dcef in
  (z lxor (z lsr 31)) land max_int

(* [Some delay_ns] if this request may retry: attempts under the cap,
   the global retry budget (a fraction of completions, plus a small
   floor so cold starts can retry at all) not exhausted, and the
   backed-off attempt still lands inside the deadline. *)
let retry t ~now ~tid ~shard ~arrival ~attempt =
  if (not t.on) || attempt > t.cfg.Cfg.max_retries then None
  else begin
    let budget =
      (Atomic.get t.completed * t.cfg.Cfg.retry_budget_pct / 100) + 4
    in
    if Atomic.get t.retries >= budget then None
    else begin
      let base =
        min t.cfg.Cfg.backoff_cap_ns
          (t.cfg.Cfg.backoff_ns lsl (attempt - 1))
      in
      let jitter = mix (mix tid shard) (mix attempt arrival) mod (1 + (base / 2)) in
      let delay = base + jitter in
      if now + delay - arrival > t.cfg.Cfg.deadline_ns then None
      else begin
        Atomic.incr t.retries;
        emit ~tid ~now Nbr_obs.Trace.Request_retry shard attempt;
        Some delay
      end
    end
  end

let snapshot t =
  {
    slo_on = t.on;
    slo_admitted = Atomic.get t.admitted;
    slo_completed = Atomic.get t.completed;
    slo_shed = Atomic.get t.shed;
    slo_timed_out = Atomic.get t.timed_out;
    slo_retries = Atomic.get t.retries;
    slo_exhausted = Atomic.get t.exhausted;
    slo_opens = Atomic.get t.opens;
    slo_half_opens = Atomic.get t.half_opens;
    slo_closes = Atomic.get t.closes;
    slo_brownouts = Atomic.get t.brownouts;
  }
