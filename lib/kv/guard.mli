(** Service-level overload protection for the sharded KV pipeline
    (DESIGN.md §15): per-request deadlines, bounded-inflight admission
    control with reject-newest shedding, budgeted retry with capped
    exponential backoff + jitter, and per-shard circuit breakers with a
    brownout ladder (shed scans first, then writes, reads last) before
    fully opening.

    Runtime-free: every entry point takes [~now] (the caller's
    [Rt.now_ns ()]) and [~tid], so one implementation serves the
    deterministic simulator and the native runtime, and the breaker
    state machine is directly drivable from unit tests.  All shared
    state is atomics; transitions are CAS-guarded so exactly one racing
    worker performs (and traces) each one.

    The ledger invariant reports validate ({!slo_ok}): every admitted
    request is {e exactly one} of completed / shed / timed-out.  A
    guard created without a [Cfg] is disabled — admission always
    proceeds, failures propagate to the caller — but still keeps the
    ledger, so guarded and unguarded runs share accounting. *)

type cls = Read | Write | Scan
(** Request class for shed policy: gets are [Read], puts and deletes
    [Write], scans [Scan]. *)

val cls_code : cls -> int
(** 0 / 1 / 2 — the [b] argument of [Admission_shed] trace events. *)

val cls_of_op : Nbr_workload.Traffic.op -> cls

module Cfg : sig
  type t = {
    deadline_ns : int;
    inflight : int;  (** per-shard admitted-but-incomplete budget *)
    max_retries : int;  (** extra attempts per request *)
    retry_budget_pct : int;  (** retries allowed as % of completions *)
    backoff_ns : int;  (** base backoff before the first retry *)
    backoff_cap_ns : int;
    unhealthy_for : int;  (** consecutive bad polls per ladder rung *)
    recover_for : int;  (** consecutive good polls to step back down *)
    open_ns : int;  (** open-state cooldown before half-open *)
    probes : int;  (** half-open probe budget (all must succeed) *)
  }

  val make :
    ?deadline_ns:int ->
    ?inflight:int ->
    ?max_retries:int ->
    ?retry_budget_pct:int ->
    ?backoff_ns:int ->
    ?backoff_cap_ns:int ->
    ?unhealthy_for:int ->
    ?recover_for:int ->
    ?open_ns:int ->
    ?probes:int ->
    unit ->
    t
  (** Defaults: 200 µs deadline, 64 inflight per shard, 2 retries with
      a 10% budget, 1 µs base backoff capped at 16 µs, 2-poll ladder
      rungs, 50 µs open cooldown, 4 probes.  Raises [Invalid_argument]
      on non-positive or out-of-range values. *)
end

(** The per-shard breaker state machine, exposed for deterministic unit
    tests.  States: closed at brownout level 0–2 (level 1 sheds scans,
    level 2 also writes; reads always pass while closed), open (3, shed
    everything until the cooldown elapses), half-open (4, a bounded
    number of probe requests that must {e all} succeed to reclose). *)
module Breaker : sig
  type transition =
    | Brownout_to of int  (** ladder moved (up or down) to this level *)
    | Opened
    | Half_opened
    | Reclosed

  type t

  val create :
    ?unhealthy_for:int ->
    ?recover_for:int ->
    ?open_ns:int ->
    ?probes:int ->
    unit ->
    t

  val state_code : t -> int
  (** 0..2 = closed at that brownout level, 3 = open, 4 = half-open. *)

  val note_health : t -> now:int -> healthy:bool -> transition option
  (** One health poll.  [unhealthy_for] consecutive bad polls climb one
      ladder rung (level 2 → open); [recover_for] consecutive good polls
      step back down.  Ignored while open or half-open — recovery there
      is time- and probe-driven. *)

  type admission = Proceed | Probe | Reject

  val admit : t -> now:int -> cls:cls -> admission * transition option
  (** Class-gated admission.  An open breaker whose cooldown has elapsed
      moves to half-open here (the winning request becomes the first
      probe). *)

  val note_probe : t -> now:int -> ok:bool -> transition option
  (** Probe outcome in half-open: all [probes] successes reclose; any
      failure re-opens and restarts the cooldown. *)

  val return_probe : t -> unit
  (** Hand back a probe token whose request never executed (deadline
      fired first) — it said nothing about shard health. *)

  val trip : t -> now:int -> transition option
  (** Hard trip ([Exhausted]): straight to open from any state. *)
end

(** {1 Reporting} *)

type slo = {
  slo_on : bool;
  slo_admitted : int;
  slo_completed : int;
  slo_shed : int;
  slo_timed_out : int;
  slo_retries : int;
  slo_exhausted : int;  (** [Exhausted] raises absorbed by the guard *)
  slo_opens : int;
  slo_half_opens : int;
  slo_closes : int;
  slo_brownouts : int;
}
(** Runtime-independent, so sim and native sweeps share reporting. *)

val slo_ok : slo -> bool
(** The request ledger balances: admitted = completed + shed +
    timed-out.  No loss, no double-count. *)

val goodput_pct : slo -> float
(** Completed as a percentage of admitted (100 when nothing arrived). *)

val pp_slo : Format.formatter -> slo -> unit

(** {1 The guard} *)

type t

val create : ?cfg:Cfg.t -> nshards:int -> unit -> t
(** Without [?cfg] the guard is disabled: a pure ledger (admission
    always proceeds, no deadlines, no breakers, failures propagate). *)

val enabled : t -> bool
val deadline_ns : t -> int

val breaker : t -> shard:int -> Breaker.t
(** The shard's breaker (tests and introspection). *)

val healthy_of :
  occupancy:int ->
  capacity:int ->
  pressured:bool ->
  degraded:bool ->
  hs_timed_out:bool ->
  bool
(** The health heuristic over signals the stack already publishes:
    healthy iff not in a watermark excursion, offload not degraded, no
    fresh handshake timeout, and occupancy below ~3/4 capacity (the
    backstop for pools without watermarks). *)

val poll : t -> now:int -> tid:int -> shard:int -> healthy:bool -> unit
(** Feed one health observation to [shard]'s breaker; traces and counts
    any resulting transition. *)

type admission = Admitted of { probe : bool } | Rejected

val admit :
  t -> now:int -> tid:int -> shard:int -> cls:cls -> arrival:int -> admission
(** Admission for a request that arrived at [arrival]: deadline first
    (late arrivals complete as timed-out here), then the per-shard
    inflight budget (reject-newest), then the breaker.  [Rejected]
    requests are already fully accounted and traced.  Keep the [probe]
    flag with the request — {!complete} / {!fail} need it. *)

val pre_exec :
  t -> now:int -> tid:int -> shard:int -> arrival:int -> probe:bool -> bool
(** Deadline recheck immediately before shard execution; [false] means
    the request just completed as timed-out (inflight released, probe
    token returned) and must not execute. *)

val complete : t -> now:int -> tid:int -> shard:int -> probe:bool -> unit
(** Successful completion: releases inflight; a successful probe feeds
    the half-open breaker. *)

val fail :
  t ->
  now:int ->
  tid:int ->
  shard:int ->
  cls:cls ->
  arrival:int ->
  probe:bool ->
  unit
(** Final failure after the retry budget: accounted as timed-out if the
    deadline has passed, shed otherwise; a failed probe re-opens the
    breaker. *)

val forfeit :
  t -> now:int -> tid:int -> shard:int -> cls:cls -> probe:bool -> unit
(** An admitted request its worker can never execute (worker expelled or
    crashed mid-batch): completed as shed so the ledger still
    balances. *)

val note_exhausted : t -> now:int -> tid:int -> shard:int -> unit
(** The shard's pool raised [Exhausted] under this request: hard-trips
    the breaker and counts the absorption. *)

val retry :
  t -> now:int -> tid:int -> shard:int -> arrival:int -> attempt:int ->
  int option
(** [Some delay_ns] if attempt [attempt] (1-based) may retry after that
    backoff: under the per-request cap, inside the global retry budget
    (a fraction of completions plus a small floor), and the delayed
    attempt still lands within the deadline.  Counts and traces the
    retry. *)

val snapshot : t -> slo
