(* The request pipeline over a sharded store (DESIGN.md §14), fronted
   by the overload guard (DESIGN.md §15).

   Each worker runs an open-loop serving loop: a virtual arrival clock
   advances by shape-modulated exponential gaps (Traffic.next_gap_ns),
   and each turn the worker admits every request whose arrival time has
   passed (up to [batch]), groups the admissions by destination shard,
   and executes shard by shard.  Response latency is measured from
   *arrival* to completion, so when a flash crowd drives the offered
   load past the service rate, the growing admission backlog shows up
   directly in the p99.9 tail — the queueing behaviour a closed loop
   (rate 0: admit [batch] back-to-back, arrival = now) cannot exhibit.

   With a guard configured, admission additionally enforces per-request
   deadlines (late arrivals complete as timed-out), a bounded per-shard
   inflight budget (reject-newest shedding), and per-shard circuit
   breakers fed by a health poll before every shard batch; execution
   rechecks the deadline, absorbs [Pool.Exhausted] into a budgeted
   backoff-retry loop, and hard-trips the shard's breaker when the pool
   truly starves.  The guard keeps the request ledger either way: every
   admitted request ends as exactly one of completed / shed / timed-out
   ([Guard.slo_ok]), including requests a mid-batch expulsion forfeits.

   Fault plans, churn, per-shard background reclamation and tracing all
   compose exactly as in the trial runner: thread faults fire between
   batches (shard-targeted hogs land on their shard's pool), churn
   cycles registration on every shard, reclaimer faults drive the
   offload degrade → restore round-trip at the service level. *)

type latency = {
  l_get : Nbr_obs.Histogram.summary;
  l_put : Nbr_obs.Histogram.summary;
  l_del : Nbr_obs.Histogram.summary;
  l_scan : Nbr_obs.Histogram.summary;
}

type report = {
  rep_scheme : string;
  rep_structure : string;
  rep_runtime : string;
  rep_nshards : int;
  rep_nthreads : int;
  rep_requests : int;  (** completed requests (the goodput) *)
  rep_throughput_kops : float;  (** thousand completed requests per second *)
  rep_latency : latency;  (** arrival → completion, queueing included *)
  rep_stats : Store.stats;
  rep_slo : Guard.slo;  (** request ledger + guard counters *)
  rep_garbage_bound : int;
  rep_expected_size : int;  (** prefill + successful puts − deletes *)
  rep_signal_faults : bool;
  rep_foil : bool;
  rep_bounded_claim : bool;
}

(* Set semantics must hold everywhere; committed UAF must be zero for
   every sound scheme; counted-but-uncommitted UAF reads additionally
   zero under the simulator's exact delivery (unless signal faults were
   injected).  Foils are exempt from the UAF clauses — consuming freed
   memory is what they are for. *)
let valid r =
  r.rep_stats.Store.st_size = r.rep_expected_size
  && (r.rep_foil
     || r.rep_stats.Store.st_committed_uaf = 0
        && (r.rep_runtime <> "sim"
           || r.rep_stats.Store.st_uaf_reads = 0
           || r.rep_signal_faults))

(* The paper's P2 at the service level: worst per-shard per-thread
   garbage stays under the shard bound.  Only meaningful for schemes
   that claim it; vacuously true otherwise. *)
let bounded_ok r =
  (not r.rep_bounded_claim)
  || r.rep_stats.Store.st_max_garbage <= r.rep_garbage_bound

(* The guard's ledger invariant: every admitted request is exactly one
   of completed / shed / timed-out.  Holds for unguarded runs too (the
   disabled guard still counts), except when an [Exhausted] escape
   aborted the run mid-flight — which the drivers report separately. *)
let slo_ok r = Guard.slo_ok r.rep_slo

let pp_latency_line ppf (name, (s : Nbr_obs.Histogram.summary)) =
  Format.fprintf ppf
    "%-6s n=%-9d p50=%-9.0f p90=%-9.0f p99=%-9.0f p99.9=%-9.0f max=%d@."
    name s.Nbr_obs.Histogram.s_count s.s_p50 s.s_p90 s.s_p99 s.s_p999
    s.s_max

let pp_report ppf r =
  Format.fprintf ppf
    "%s/%s on %s: %d shards, %d workers, %d reqs, %.1f kreq/s%s%s%s@."
    r.rep_scheme r.rep_structure r.rep_runtime r.rep_nshards r.rep_nthreads
    r.rep_requests r.rep_throughput_kops
    (if valid r then "" else "  INVALID")
    (if bounded_ok r then "" else "  GARBAGE-UNBOUNDED")
    (if slo_ok r then "" else "  LEDGER-BROKEN");
  pp_latency_line ppf ("get", r.rep_latency.l_get);
  pp_latency_line ppf ("put", r.rep_latency.l_put);
  pp_latency_line ppf ("delete", r.rep_latency.l_del);
  pp_latency_line ppf ("scan", r.rep_latency.l_scan);
  Format.fprintf ppf "slo: %a@." Guard.pp_slo r.rep_slo;
  Format.fprintf ppf
    "size=%d expected=%d uaf=%d committed=%d max_garbage=%d bound=%d \
     degrades=%d restores=%d@."
    r.rep_stats.Store.st_size r.rep_expected_size
    r.rep_stats.Store.st_uaf_reads r.rep_stats.Store.st_committed_uaf
    r.rep_stats.Store.st_max_garbage r.rep_garbage_bound
    r.rep_stats.Store.st_degrades r.rep_stats.Store.st_restores

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module St = Store.Make (Rt)

  module Cfg = struct
    type t = {
      duration_ns : int;
      traffic : Nbr_workload.Traffic.t;
      batch : int;  (** max admissions per pipeline turn *)
      seed : int;
      prefill : int;  (** uniform-random put attempts before the clock *)
      faults : Nbr_fault.Fault_plan.t option;
      churn_ops : int;  (** per-worker requests between churn cycles; 0 = off *)
      guard : Guard.Cfg.t option;  (** overload protection; [None] = off *)
    }

    let make ?(duration_ns = 2_000_000) ?(batch = 32) ?(seed = 1)
        ?(prefill = 0) ?faults ?(churn_ops = 0) ?guard ~traffic () =
      if batch < 1 then invalid_arg "Kv.Service.Cfg.make: batch < 1";
      if duration_ns < 1 then
        invalid_arg "Kv.Service.Cfg.make: duration_ns < 1";
      if prefill < 0 then invalid_arg "Kv.Service.Cfg.make: prefill < 0";
      { duration_ns; traffic; batch; seed; prefill; faults; churn_ops; guard }
  end

  let hidx_of (op : Nbr_workload.Traffic.op) =
    match op with
    | Nbr_workload.Traffic.Get _ -> 0
    | Put _ -> 1
    | Delete _ -> 2
    | Scan _ -> 3

  let run (st : St.t) (cfg : Cfg.t) : report =
    let n = St.nthreads st in
    let nshards = St.nshards st in
    let reclaim_on = St.reclaim_on st in
    let total = n + if reclaim_on then nshards else 0 in
    let tr = cfg.Cfg.traffic in
    let g = Guard.create ?cfg:cfg.Cfg.guard ~nshards () in
    let guard_on = Guard.enabled g in
    (* Deterministic prefill, before the clock: uniform keys so every
       shard starts with comparable occupancy. *)
    let pf_rng = Nbr_sync.Rng.create (cfg.Cfg.seed lxor 0xbeef) in
    let prefilled = ref 0 in
    let ks = St.keyspace st in
    for _ = 1 to cfg.Cfg.prefill do
      if St.put st ~tid:0 (Nbr_sync.Rng.below pf_rng ks) then
        incr prefilled
    done;
    St.reset_peaks st;
    let thread_faults =
      match cfg.Cfg.faults with
      | None -> false
      | Some p ->
          Nbr_fault.Fault_plan.has_thread_faults p
          || Nbr_fault.Fault_plan.has_reclaimer_faults p
    in
    (* Same decider discipline as the trial runner: a plan that faults
       threads but leaves signals alone still installs a pass-through
       decider, because [Rt.fault_injection_active] is what arms the
       schemes' watchdog machinery. *)
    (match cfg.Cfg.faults with
    | None -> ()
    | Some p -> (
        match Nbr_fault.Fault_plan.fate_fn p with
        | Some _ as f -> Rt.set_signal_fault f
        | None ->
            if thread_faults then
              Rt.set_signal_fault
                (Some
                   (fun ~sender:_ ~target:_ ->
                     Nbr_runtime.Runtime_intf.Sig_deliver))));
    Fun.protect ~finally:(fun () -> Rt.set_signal_fault None) @@ fun () ->
    let reqs = Array.make n 0
    and puts_ok = Array.make n 0
    and dels_ok = Array.make n 0 in
    (* Per-worker latency histograms (single-writer), merged after the
       run: 0/1/2/3 = get/put/delete/scan arrival→completion. *)
    let hists =
      Array.init n (fun _ ->
          Array.init 4 (fun _ -> Nbr_obs.Histogram.create ()))
    in
    let workers_done = Atomic.make 0 in
    let t0 = Rt.now_ns () in
    let deadline = t0 + cfg.Cfg.duration_ns in
    let dur_f = float_of_int cfg.Cfg.duration_ns in
    let open_loop = Nbr_workload.Traffic.open_loop tr in
    Rt.run ~nthreads:total (fun tid ->
        if tid >= n then St.run_reclaimer st (tid - n)
        else begin
          let rng = Nbr_sync.Rng.for_thread ~seed:cfg.Cfg.seed ~tid in
          let faults =
            ref
              (match cfg.Cfg.faults with
              | None -> []
              | Some p -> Nbr_fault.Fault_plan.faults_for p tid)
          in
          let crashed = ref false in
          let arrival = ref (Rt.now_ns ()) in
          let buckets = Array.make nshards [] in
          (* Worker-local execution cursor, so a mid-batch expulsion can
             forfeit exactly the admitted-but-unexecuted requests. *)
          let pending = ref [] in
          let pending_shard = ref 0 in
          let current = ref None in
          (* Last-seen cumulative handshake-timeout count per shard (own
             context, single-writer): a fresh timeout is a health strike. *)
          let hs_seen = Array.make nshards 0 in
          let my_reqs = ref 0
          and my_puts = ref 0
          and my_dels = ref 0 in
          let h = hists.(tid) in
          (* One request on shard [s]: deadline recheck, then execute
             with [Exhausted] absorbed into the budgeted retry loop
             (guarded runs only — unguarded runs keep the raise). *)
          let exec_entry s a op probe =
            let cls = Guard.cls_of_op op in
            if
              Guard.pre_exec g ~now:(Rt.now_ns ()) ~tid ~shard:s ~arrival:a
                ~probe
            then begin
              let attempt = ref 0 in
              let finished = ref false in
              while not !finished do
                match St.exec_on st ~tid ~shard:s op with
                | ok ->
                    (match op with
                    | Nbr_workload.Traffic.Put _ ->
                        if ok > 0 then incr my_puts
                    | Nbr_workload.Traffic.Delete _ ->
                        if ok > 0 then incr my_dels
                    | _ -> ());
                    let fin = Rt.now_ns () in
                    Nbr_obs.Histogram.record h.(hidx_of op) (fin - a);
                    Guard.complete g ~now:fin ~tid ~shard:s ~probe;
                    incr my_reqs;
                    current := None;
                    finished := true;
                    if
                      cfg.Cfg.churn_ops > 0 && tid > 0
                      && !my_reqs mod cfg.Cfg.churn_ops = 0
                    then St.churn st ~tid
                | exception St.P.Exhausted x ->
                    Guard.note_exhausted g ~now:(Rt.now_ns ()) ~tid ~shard:s;
                    if not guard_on then raise (St.P.Exhausted x);
                    incr attempt;
                    (match
                       Guard.retry g ~now:(Rt.now_ns ()) ~tid ~shard:s
                         ~arrival:a ~attempt:!attempt
                     with
                    | Some delay -> Rt.stall_ns delay
                    | None ->
                        Guard.fail g ~now:(Rt.now_ns ()) ~tid ~shard:s ~cls
                          ~arrival:a ~probe;
                        current := None;
                        finished := true)
              done
            end
            else current := None
          in
          let forfeit_all () =
            let now = Rt.now_ns () in
            let forfeit_one s (_, op, probe) =
              Guard.forfeit g ~now ~tid ~shard:s
                ~cls:(Guard.cls_of_op op) ~probe
            in
            (match !current with
            | Some (s, e) -> forfeit_one s e
            | None -> ());
            current := None;
            List.iter (forfeit_one !pending_shard) !pending;
            pending := [];
            Array.iteri
              (fun s l ->
                List.iter (forfeit_one s) l;
                buckets.(s) <- [])
              buckets
          in
          while (not !crashed) && Rt.now_ns () < deadline do
            try
              (match !faults with
              | f :: rest
                when Nbr_fault.Fault_plan.fault_op f <= !my_reqs -> (
                  faults := rest;
                  if !Nbr_obs.Trace.on then
                    Nbr_obs.Trace.emit ~tid ~ns:(Rt.now_ns ())
                      Nbr_obs.Trace.Fault_action
                      (match f with
                      | Nbr_fault.Fault_plan.Stall _ -> 0
                      | Nbr_fault.Fault_plan.Crash _ -> 1
                      | Nbr_fault.Fault_plan.Hog _ -> 2
                      | Nbr_fault.Fault_plan.Shard_hog _ -> 3)
                      !my_reqs;
                  match f with
                  | Nbr_fault.Fault_plan.Stall { ns; _ } ->
                      St.stall st ~tid ns
                  | Nbr_fault.Fault_plan.Crash _ ->
                      St.crash st ~tid;
                      crashed := true
                  | Nbr_fault.Fault_plan.Hog { slots; ns; _ } ->
                      St.hog st ~slots ~ns
                  | Nbr_fault.Fault_plan.Shard_hog { shard; slots; ns; _ }
                    ->
                      St.hog_on st ~shard ~slots ~ns)
              | _ -> ());
              if not !crashed then begin
                let now = Rt.now_ns () in
                (* Closed loop: no arrival process, issue back-to-back. *)
                if not open_loop then arrival := now;
                let admitted = ref 0 in
                while !arrival <= now && !admitted < cfg.Cfg.batch do
                  let op = Nbr_workload.Traffic.draw_op tr rng in
                  let s = St.shard_of_op st op in
                  (match
                     Guard.admit g ~now ~tid ~shard:s
                       ~cls:(Guard.cls_of_op op) ~arrival:!arrival
                   with
                  | Guard.Admitted { probe } ->
                      buckets.(s) <- (!arrival, op, probe) :: buckets.(s)
                  | Guard.Rejected -> ());
                  incr admitted;
                  if open_loop then begin
                    let frac =
                      Float.min 1.0
                        (Float.max 0.0
                           (float_of_int (!arrival - t0) /. dur_f))
                    in
                    arrival :=
                      !arrival
                      + Nbr_workload.Traffic.next_gap_ns tr rng ~frac
                  end
                done;
                if !admitted = 0 && not guard_on then begin
                  (* No arrival due yet: charge the poll and yield so
                     virtual time advances toward the next arrival. *)
                  Rt.work 64;
                  Rt.cpu_relax ()
                end
                else begin
                  for s = 0 to nshards - 1 do
                    (* Health poll before each shard batch — and on idle
                       turns too, so brownout ladders decay and breakers
                       progress while a shard gets no traffic. *)
                    if guard_on then begin
                      let cur = St.hs_timeouts st ~tid ~shard:s in
                      let fresh = cur > hs_seen.(s) in
                      hs_seen.(s) <- cur;
                      let hl = St.health st ~shard:s in
                      Guard.poll g ~now:(Rt.now_ns ()) ~tid ~shard:s
                        ~healthy:
                          (Guard.healthy_of
                             ~occupancy:hl.Store.h_occupancy
                             ~capacity:hl.Store.h_capacity
                             ~pressured:hl.Store.h_pressured
                             ~degraded:hl.Store.h_degraded
                             ~hs_timed_out:fresh)
                    end;
                    match buckets.(s) with
                    | [] -> ()
                    | l ->
                        buckets.(s) <- [];
                        pending := List.rev l;
                        pending_shard := s;
                        let continue_ = ref true in
                        while !continue_ do
                          match !pending with
                          | [] -> continue_ := false
                          | ((a, op, probe) as e) :: rest ->
                              pending := rest;
                              current := Some (s, e);
                              exec_entry s a op probe
                        done
                  done;
                  if !admitted = 0 then begin
                    Rt.work 64;
                    Rt.cpu_relax ()
                  end
                end
              end
            with Nbr_core.Smr_intf.Expelled ->
              (* A watchdog reaped this thread while it was frozen; its
                 contexts are gone on every shard.  Stop, like a crash —
                 completed requests all committed first, and everything
                 still admitted is forfeited (shed) so the ledger keeps
                 balancing. *)
              forfeit_all ();
              crashed := true
          done;
          if !crashed then forfeit_all ();
          if
            (not !crashed)
            && (thread_faults || cfg.Cfg.churn_ops > 0 || reclaim_on)
          then St.drain st ~tid;
          (* Last worker out (crashed or not) releases the per-shard
             reclaimers; they drain what is left and leave. *)
          if
            reclaim_on
            && Atomic.fetch_and_add workers_done 1 + 1 = n
          then St.stop_reclaimers st;
          reqs.(tid) <- !my_reqs;
          puts_ok.(tid) <- !my_puts;
          dels_ok.(tid) <- !my_dels
        end);
    let total_reqs = Array.fold_left ( + ) 0 reqs in
    let puts = Array.fold_left ( + ) 0 puts_ok
    and dels = Array.fold_left ( + ) 0 dels_ok in
    let merged = Array.init 4 (fun _ -> Nbr_obs.Histogram.create ()) in
    Array.iter
      (Array.iteri (fun i hh ->
           Nbr_obs.Histogram.merge_into ~into:merged.(i) hh))
      hists;
    let scfg = St.cfg st in
    {
      rep_scheme = scfg.St.Cfg.scheme;
      rep_structure = scfg.St.Cfg.structure;
      rep_runtime = Rt.name;
      rep_nshards = nshards;
      rep_nthreads = n;
      rep_requests = total_reqs;
      rep_throughput_kops =
        float_of_int total_reqs /. (dur_f /. 1e9) /. 1e3;
      rep_latency =
        {
          l_get = Nbr_obs.Histogram.summary merged.(0);
          l_put = Nbr_obs.Histogram.summary merged.(1);
          l_del = Nbr_obs.Histogram.summary merged.(2);
          l_scan = Nbr_obs.Histogram.summary merged.(3);
        };
      rep_stats = St.stats st;
      rep_slo = Guard.snapshot g;
      rep_garbage_bound = St.garbage_bound st;
      rep_expected_size = !prefilled + puts - dels;
      rep_signal_faults =
        (match cfg.Cfg.faults with
        | None -> false
        | Some p -> p.Nbr_fault.Fault_plan.signals <> None);
      rep_foil = St.foil st;
      rep_bounded_claim = St.bounded_claim st;
    }
  end
