(** The request pipeline over a sharded {!Store}: open-loop workers
    admit Zipfian traffic from a virtual arrival clock, group admissions
    by destination shard, execute per-shard batches, and record
    arrival→completion latency into log-linear histograms — so a flash
    crowd that outruns the service rate shows up directly in the p99.9
    tail.  Fault plans, churn, per-shard background reclamation and
    tracing compose exactly as in the trial runner.

    With a {!Guard.Cfg} configured, admission enforces per-request
    deadlines, a bounded per-shard inflight budget (reject-newest
    shedding) and per-shard circuit breakers; execution rechecks
    deadlines, absorbs [Pool.Exhausted] into a budgeted backoff-retry
    loop, and the report carries the request ledger ({!slo_ok}:
    admitted = completed + shed + timed-out). *)

type latency = {
  l_get : Nbr_obs.Histogram.summary;
  l_put : Nbr_obs.Histogram.summary;
  l_del : Nbr_obs.Histogram.summary;
  l_scan : Nbr_obs.Histogram.summary;
}

type report = {
  rep_scheme : string;
  rep_structure : string;
  rep_runtime : string;
  rep_nshards : int;
  rep_nthreads : int;
  rep_requests : int;  (** completed requests (the goodput) *)
  rep_throughput_kops : float;
      (** thousand completed requests per second *)
  rep_latency : latency;  (** arrival → completion, queueing included *)
  rep_stats : Store.stats;
  rep_slo : Guard.slo;  (** request ledger + guard counters *)
  rep_garbage_bound : int;
  rep_expected_size : int;  (** prefill + successful puts − deletes *)
  rep_signal_faults : bool;
  rep_foil : bool;
  rep_bounded_claim : bool;
}
(** Runtime-independent, so sim and native sweeps share reporting
    code. *)

val valid : report -> bool
(** Set semantics ([size = expected]); zero committed UAF for sound
    schemes; zero counted UAF reads additionally required under the
    simulator's exact delivery unless signal faults were injected. *)

val bounded_ok : report -> bool
(** The paper's P2 at the service level: worst per-shard per-thread
    garbage within the shard bound.  Vacuously true for schemes that do
    not claim bounded garbage. *)

val slo_ok : report -> bool
(** The guard's request ledger balances: every admitted request ended
    as exactly one of completed / shed / timed-out.  Holds for
    unguarded runs too (the disabled guard still counts), except when
    an [Exhausted] escape aborted the run mid-flight. *)

val pp_report : Format.formatter -> report -> unit

module Make (Rt : Nbr_runtime.Runtime_intf.S) : sig
  module St : module type of Store.Make (Rt)

  module Cfg : sig
    type t = {
      duration_ns : int;
      traffic : Nbr_workload.Traffic.t;
      batch : int;  (** max admissions per pipeline turn *)
      seed : int;
      prefill : int;  (** uniform-random put attempts before the clock *)
      faults : Nbr_fault.Fault_plan.t option;
      churn_ops : int;
          (** per-worker requests between churn cycles; 0 = off *)
      guard : Guard.Cfg.t option;
          (** overload protection; [None] = off (queue without bound) *)
    }

    val make :
      ?duration_ns:int ->
      ?batch:int ->
      ?seed:int ->
      ?prefill:int ->
      ?faults:Nbr_fault.Fault_plan.t ->
      ?churn_ops:int ->
      ?guard:Guard.Cfg.t ->
      traffic:Nbr_workload.Traffic.t ->
      unit ->
      t
    (** Defaults: 2 ms, batch 32, seed 1, no prefill, no faults, no
        churn, no guard. *)
  end

  val run : St.t -> Cfg.t -> report
  (** Prefill, then [Rt.run] with the store's workers plus (if
      configured) one reclaimer fiber/domain per shard.  The store must
      have been created with the same worker count it is served with. *)
end
