(* Sharded key-value store over the DS + SMR + pool stack (DESIGN.md §14).

   Each shard owns one structure instance (hash-set or (a,b)-tree) over
   its own pool and its own instance of the selected reclamation scheme,
   so shards share nothing: keys are routed by a multiplicative hash
   distinct from the structures' internal bucket hash.  The scheme is
   picked at runtime by name through {!Nbr_workload.Registry}; its module
   types are erased behind per-shard closure records, so one [t] can hold
   any of the ten schemes without functorizing every caller.

   Thread model: worker tids [0, nthreads) register with every shard (a
   request for any key may land on any shard).  With background
   reclamation enabled, shard [i] additionally gets its own reclaimer
   role at tid [nthreads + i], wired to that shard's pool watermarks —
   the serving-layer analogue of the trial runner's single reclaimer. *)

(* Aggregated per-store counters: runtime-independent (plain ints), so
   reports from different runtimes share one type. *)
type stats = {
  st_size : int;
  st_in_use : int;
  st_peak_in_use : int;
  st_uaf_reads : int;
  st_committed_uaf : int;
  st_max_garbage : int;
  st_peak_garbage : int;
  st_pressure_events : int;
  st_alloc_retries : int;
  st_restarts : int;
  st_degrades : int;
  st_restores : int;
  st_handshake_timeouts : int;
}

(* Cheap per-shard health snapshot for the service guard's breakers:
   a few atomic loads, no allocation beyond the record. *)
type health = {
  h_occupancy : int;
  h_capacity : int;
  h_pressured : bool;  (** pool inside its high-watermark excursion *)
  h_degraded : bool;  (** offload switchboard fell back to inline *)
}

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module P = Nbr_pool.Pool.Make (Rt)

  module Cfg = struct
    type t = {
      scheme : string;
      structure : string;  (** ["hash-set"] or ["ab-tree"] *)
      nshards : int;
      nthreads : int;  (** worker threads; tids in [0, nthreads) *)
      keyspace : int;  (** keys are in [0, keyspace) *)
      shard_capacity : int;  (** pool slots per shard *)
      smr : Nbr_core.Smr_config.t;
      reclaim : Nbr_reclaim.Reclaimer.policy option;
          (** per-shard background reclaimer role + pool watermarks *)
      reclaimer_faults : Nbr_fault.Fault_plan.reclaimer_fault list;
          (** fault schedule applied to {e every} shard's reclaimer *)
    }

    let structures = [ "hash-set"; "ab-tree" ]

    let make ?(structure = "hash-set") ?(nshards = 8)
        ?(keyspace = 1 lsl 20) ?shard_capacity
        ?(smr = Nbr_core.Smr_config.default) ?reclaim
        ?(reclaimer_faults = []) ~scheme ~nthreads () =
      if nshards < 1 then invalid_arg "Kv.Store.Cfg.make: nshards < 1";
      if nthreads < 1 then invalid_arg "Kv.Store.Cfg.make: nthreads < 1";
      if keyspace < 2 then invalid_arg "Kv.Store.Cfg.make: keyspace < 2";
      if not (List.mem structure structures) then
        invalid_arg
          ("Kv.Store.Cfg.make: unknown structure " ^ structure
         ^ " (kv shards are hash-set or ab-tree)");
      ignore (Nbr_workload.Registry.find_exn scheme);
      if not (Nbr_workload.Registry.supported ~scheme ~structure) then
        invalid_arg
          ("Kv.Store.Cfg.make: " ^ scheme ^ " cannot run " ^ structure
         ^ " safely (paper P5); use ab-tree");
      let shard_capacity =
        match shard_capacity with
        | Some c ->
            if c < 256 then
              invalid_arg "Kv.Store.Cfg.make: shard_capacity < 256";
            c
        | None ->
            (* Sized for the live set a Zipfian run actually touches,
               not the whole keyspace; clamped because sim pool cells
               are the memory cost of a big run.  Heavy drivers pass it
               explicitly. *)
            min 262_144 (max 8192 (keyspace / (2 * nshards)))
      in
      {
        scheme;
        structure;
        nshards;
        nthreads;
        keyspace;
        shard_capacity;
        smr;
        reclaim;
        reclaimer_faults;
      }
  end

  (* One shard, module types erased: every closure already knows its
     scheme, structure, pool and contexts. *)
  type shard = {
    sh_contains : tid:int -> int -> bool;
    sh_insert : tid:int -> int -> bool;
    sh_delete : tid:int -> int -> bool;
    sh_size : unit -> int;
    sh_stall : tid:int -> int -> unit;
    sh_crash : tid:int -> unit;
    sh_hog : slots:int -> ns:int -> unit;
    sh_churn : tid:int -> unit;
    sh_drain : tid:int -> unit;
    sh_reclaimer_run : unit -> unit;
    sh_reclaimer_stop : unit -> unit;
    sh_offload_counts : unit -> int * int;
    sh_health : unit -> health;
    sh_hs_timeouts : tid:int -> int;
    sh_pool_stats : unit -> P.stats;
    sh_smr_stats : unit -> Nbr_core.Smr_stats.t;
    sh_reset_peak : unit -> unit;
    sh_bound : int;
    sh_bounded_claim : bool;
  }

  type t = { cfg : Cfg.t; shards : shard array; foil : bool }

  let build_shard (cfg : Cfg.t) ~total ~tid_reclaimer
      (module S : Nbr_workload.Registry.SCHEME) : shard =
    let module Smr = S.Make (Rt) in
    let module Build
        (Ds : sig
           type t

           val data_fields : int
           val ptr_fields : int
           val max_reservations : int
           val create : P.t -> t
           val contains : t -> Smr.ctx -> int -> bool
           val insert : t -> Smr.ctx -> int -> bool
           val delete : t -> Smr.ctx -> int -> bool
           val size : t -> int
         end) =
    struct
      module R = Nbr_reclaim.Reclaimer.Make (Rt) (Smr)

      let shard () =
        let pool =
          P.create ~capacity:cfg.shard_capacity ~data_fields:Ds.data_fields
            ~ptr_fields:Ds.ptr_fields ~nthreads:total ()
        in
        let smr_cfg =
          {
            cfg.smr with
            Nbr_core.Smr_config.max_reservations = Ds.max_reservations;
          }
        in
        let smr = Smr.create pool ~nthreads:total smr_cfg in
        let ds = Ds.create pool in
        let ctxs =
          Array.init cfg.nthreads (fun tid -> Smr.register smr ~tid)
        in
        let recl =
          match cfg.reclaim with
          | None -> None
          | Some policy ->
              let r =
                R.create ~policy
                  ~max_backlog:
                    (max 64 (2 * smr_cfg.Nbr_core.Smr_config.bag_threshold))
                  ~faults:cfg.reclaimer_faults smr ~tid:tid_reclaimer
              in
              (* Same hysteresis as the trial runner: high crossing kicks
                 the shard's reclaimer well before on_pressure territory. *)
              let cap = cfg.shard_capacity in
              P.set_watermarks pool ~lo:(cap / 2)
                ~hi:(cap - (cap / 4))
                ~on_high:(fun () -> R.kick r);
              Some r
        in
        {
          sh_contains = (fun ~tid k -> Ds.contains ds ctxs.(tid) k);
          sh_insert = (fun ~tid k -> Ds.insert ds ctxs.(tid) k);
          sh_delete = (fun ~tid k -> Ds.delete ds ctxs.(tid) k);
          sh_size = (fun () -> Ds.size ds);
          sh_stall =
            (fun ~tid ns ->
              (* E2's delayed thread, at the serving layer: pause inside
                 a read phase on this shard, pinning whatever the scheme
                 pins for in-flight operations. *)
              let ctx = ctxs.(tid) in
              let stalled = ref false in
              Smr.begin_op ctx;
              Smr.read_only ctx (fun () ->
                  if not !stalled then begin
                    stalled := true;
                    Rt.stall_ns ns
                  end);
              Smr.end_op ctx);
          sh_crash =
            (fun ~tid ->
              (* Die mid-operation: enter but never leave. *)
              (Smr.begin_op ctxs.(tid) [@nbr.allow phase-bracket]));
          sh_hog =
            (fun ~slots ~ns ->
              (* Manufactured pool pressure against this shard: raw
                 slots, no reclamation flush — the hog is the adversary,
                 not an SMR client. *)
              let held = ref [] in
              (try
                 for _ = 1 to slots do
                   held := P.alloc pool :: !held
                 done
               with P.Exhausted _ -> ());
              Rt.stall_ns ns;
              List.iter (fun s -> P.free pool s) !held);
          sh_churn =
            (fun ~tid ->
              Smr.deregister ctxs.(tid);
              ctxs.(tid) <- Smr.register smr ~tid);
          sh_drain =
            (fun ~tid ->
              ignore (Smr.collect_handoffs ctxs.(tid));
              Smr.adopt_orphans ctxs.(tid);
              Smr.on_pressure ctxs.(tid));
          sh_reclaimer_run =
            (fun () -> match recl with Some r -> R.run r | None -> ());
          sh_reclaimer_stop =
            (fun () -> match recl with Some r -> R.stop r | None -> ());
          sh_offload_counts =
            (fun () ->
              match recl with
              | None -> (0, 0)
              | Some r ->
                  let o = R.offload r in
                  ( Atomic.get o.Nbr_core.Smr_intf.Offload.degrades,
                    Atomic.get o.Nbr_core.Smr_intf.Offload.restores ));
          sh_health =
            (fun () ->
              {
                h_occupancy = P.occupancy pool;
                h_capacity = cfg.shard_capacity;
                h_pressured = P.pressured pool;
                h_degraded =
                  (match recl with
                  | None -> false
                  | Some r ->
                      not
                        (Atomic.get
                           (R.offload r).Nbr_core.Smr_intf.Offload.enabled));
              });
          sh_hs_timeouts =
            (fun ~tid ->
              (* Own-context read: cheap and single-writer, the same
                 idiom the trial runner uses for restart deltas. *)
              Nbr_core.Smr_stats.handshake_timeouts
                (Smr.ctx_stats ctxs.(tid)));
          sh_pool_stats = (fun () -> P.stats pool);
          sh_smr_stats = (fun () -> Smr.stats smr);
          sh_reset_peak = (fun () -> P.reset_peak pool);
          sh_bound =
            (* The trial runner's bound with the live-set term scaled to
               one shard's share of the keyspace (capped by capacity:
               the pool cannot hold more).  See Trial.garbage_bound. *)
            (smr_cfg.Nbr_core.Smr_config.bag_threshold
            + (total * Ds.max_reservations)
            + (2 * min (cfg.keyspace / cfg.nshards) cfg.shard_capacity)
            + 64);
          sh_bounded_claim = Smr.bounded_garbage;
        }
    end in
    match cfg.structure with
    | "hash-set" ->
        let module B = Build (struct
          module H = Nbr_ds.Hash_set.Make (Rt) (Smr)

          type t = H.t

          let data_fields = H.data_fields
          let ptr_fields = H.ptr_fields
          let max_reservations = H.max_reservations

          let create pool =
            (* Buckets sized to keep chains short at shard occupancy. *)
            H.create ~buckets:(max 64 (cfg.shard_capacity / 128)) pool

          let contains = H.contains
          let insert = H.insert
          let delete = H.delete
          let size = H.size
        end) in
        B.shard ()
    | "ab-tree" ->
        let module B = Build (Nbr_ds.Ab_tree.Make (Rt) (Smr)) in
        B.shard ()
    | s -> invalid_arg ("Kv.Store: unknown structure " ^ s)

  let create (cfg : Cfg.t) =
    let entry = Nbr_workload.Registry.find_exn cfg.scheme in
    let total =
      cfg.nthreads
      + (match cfg.reclaim with None -> 0 | Some _ -> cfg.nshards)
    in
    let shards =
      Array.init cfg.nshards (fun i ->
          build_shard cfg ~total ~tid_reclaimer:(cfg.nthreads + i)
            entry.Nbr_workload.Registry.r_scheme)
    in
    { cfg; shards; foil = entry.Nbr_workload.Registry.r_foil }

  let cfg t = t.cfg
  let nshards t = t.cfg.Cfg.nshards
  let nthreads t = t.cfg.Cfg.nthreads
  let keyspace t = t.cfg.Cfg.keyspace
  let reclaim_on t = t.cfg.Cfg.reclaim <> None
  let foil t = t.foil
  let bounded_claim t = t.shards.(0).sh_bounded_claim

  (* Key → shard routing: a SplitMix64-style finalizer, deliberately
     different from the hash-set's internal Fibonacci bucket hash so
     shard choice and bucket choice stay independent. *)
  let shard_of t k =
    let h = k lxor (k lsr 33) in
    let h = h * 0x2545f4914f6cdd1d land max_int in
    let h = h lxor (h lsr 29) in
    h mod t.cfg.Cfg.nshards

  let get t ~tid k = t.shards.(shard_of t k).sh_contains ~tid k
  let put t ~tid k = t.shards.(shard_of t k).sh_insert ~tid k
  let delete t ~tid k = t.shards.(shard_of t k).sh_delete ~tid k

  (* Shard-local scan: [len] membership probes starting at [k], all
     against [k]'s shard — the single-partition leg of a scatter-gather
     range read on a hash-partitioned store.  Returns the hit count. *)
  let scan t ~tid k len =
    let sh = t.shards.(shard_of t k) in
    let hits = ref 0 in
    for i = 0 to len - 1 do
      if sh.sh_contains ~tid ((k + i) mod t.cfg.Cfg.keyspace) then incr hits
    done;
    !hits

  let shard_of_op t (op : Nbr_workload.Traffic.op) =
    match op with
    | Get k | Put k | Delete k | Scan (k, _) -> shard_of t k

  (* Execute [op] on shard [shard] (which must be [shard_of_op t op] —
     the batching pipeline groups requests per shard before executing).
     Returns 1 for a successful update / present key, else 0; scans
     return their hit count. *)
  let exec_on t ~tid ~shard (op : Nbr_workload.Traffic.op) =
    let sh = t.shards.(shard) in
    match op with
    | Get k -> if sh.sh_contains ~tid k then 1 else 0
    | Put k -> if sh.sh_insert ~tid k then 1 else 0
    | Delete k -> if sh.sh_delete ~tid k then 1 else 0
    | Scan (k, len) ->
        let hits = ref 0 in
        for i = 0 to len - 1 do
          if sh.sh_contains ~tid ((k + i) mod t.cfg.Cfg.keyspace) then
            incr hits
        done;
        !hits

  let size t =
    Array.fold_left (fun acc sh -> acc + sh.sh_size ()) 0 t.shards

  (* Fault / lifecycle verbs the service pipeline composes.  Stalls and
     crashes target shard 0: the victim holds (or abandons) an in-flight
     operation on one shard, and — faults being the only time this
     matters — the armed watchdogs of {e every} shard can reap the
     frozen thread via its stopped heartbeat. *)
  let stall t ~tid ns = t.shards.(0).sh_stall ~tid ns
  let crash t ~tid = t.shards.(0).sh_crash ~tid
  let hog t ~slots ~ns = t.shards.(0).sh_hog ~slots ~ns

  (* Shard-targeted pressure (the slo-chaos adversary): same hog, but
     the caller picks the victim shard, so a specific breaker trips. *)
  let hog_on t ~shard ~slots ~ns =
    t.shards.(shard mod t.cfg.Cfg.nshards).sh_hog ~slots ~ns

  let health t ~shard = t.shards.(shard).sh_health ()
  let shard_capacity t = t.cfg.Cfg.shard_capacity
  let hs_timeouts t ~tid ~shard = t.shards.(shard).sh_hs_timeouts ~tid
  let churn t ~tid = Array.iter (fun sh -> sh.sh_churn ~tid) t.shards
  let drain t ~tid = Array.iter (fun sh -> sh.sh_drain ~tid) t.shards
  let run_reclaimer t i = t.shards.(i).sh_reclaimer_run ()

  let stop_reclaimers t =
    Array.iter (fun sh -> sh.sh_reclaimer_stop ()) t.shards

  let reset_peaks t = Array.iter (fun sh -> sh.sh_reset_peak ()) t.shards

  let garbage_bound t =
    Array.fold_left (fun acc sh -> max acc sh.sh_bound) 0 t.shards

  let stats t =
    Array.fold_left
      (fun acc sh ->
        let ps = sh.sh_pool_stats () in
        let ss = sh.sh_smr_stats () in
        let d, r = sh.sh_offload_counts () in
        {
          st_size = acc.st_size + sh.sh_size ();
          st_in_use = acc.st_in_use + ps.P.s_in_use;
          st_peak_in_use = acc.st_peak_in_use + ps.P.s_peak_in_use;
          st_uaf_reads = acc.st_uaf_reads + ps.P.s_uaf_reads;
          st_committed_uaf =
            acc.st_committed_uaf + Nbr_core.Smr_stats.committed_uaf ss;
          st_max_garbage =
            max acc.st_max_garbage (Nbr_core.Smr_stats.max_garbage ss);
          st_peak_garbage = max acc.st_peak_garbage ps.P.s_peak_garbage;
          st_pressure_events =
            acc.st_pressure_events + ps.P.s_pressure_events;
          st_alloc_retries = acc.st_alloc_retries + ps.P.s_alloc_retries;
          st_restarts = acc.st_restarts + Nbr_core.Smr_stats.restarts ss;
          st_degrades = acc.st_degrades + d;
          st_restores = acc.st_restores + r;
          st_handshake_timeouts =
            acc.st_handshake_timeouts
            + Nbr_core.Smr_stats.handshake_timeouts ss;
        })
      {
        st_size = 0;
        st_in_use = 0;
        st_peak_in_use = 0;
        st_uaf_reads = 0;
        st_committed_uaf = 0;
        st_max_garbage = 0;
        st_peak_garbage = 0;
        st_pressure_events = 0;
        st_alloc_retries = 0;
        st_restarts = 0;
        st_degrades = 0;
        st_restores = 0;
        st_handshake_timeouts = 0;
      }
      t.shards
end
