(** Sharded key-value store over the DS + SMR + pool stack: each shard
    owns one structure instance (hash-set or (a,b)-tree) over its own
    pool and its own instance of the reclamation scheme selected by name
    through {!Nbr_workload.Registry}.  Scheme module types are erased
    behind per-shard closures, so one [t] holds any of the ten schemes.

    Thread model: worker tids [0, nthreads) register with every shard;
    with background reclamation on, shard [i] gets its own reclaimer
    role at tid [nthreads + i] wired to that shard's pool watermarks
    (run it from {!run_reclaimer} inside [Rt.run]). *)

type stats = {
  st_size : int;
  st_in_use : int;
  st_peak_in_use : int;
  st_uaf_reads : int;
  st_committed_uaf : int;
  st_max_garbage : int;  (** worst per-shard per-thread high-water *)
  st_peak_garbage : int;  (** worst per-shard pool-wide high-water *)
  st_pressure_events : int;
  st_alloc_retries : int;
  st_restarts : int;
  st_degrades : int;  (** offload degrade events across shards *)
  st_restores : int;
  st_handshake_timeouts : int;
      (** bounded-wait handshakes that gave up (summed over shards) *)
}
(** Aggregated per-store counters — runtime-independent, so reports
    from different runtimes share one type. *)

type health = {
  h_occupancy : int;
  h_capacity : int;
  h_pressured : bool;  (** pool inside its high-watermark excursion *)
  h_degraded : bool;  (** offload switchboard fell back to inline *)
}
(** Cheap per-shard health snapshot (a few atomic loads) — the signal
    set the service guard's circuit breakers poll. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) : sig
  module P : module type of Nbr_pool.Pool.Make (Rt)

  module Cfg : sig
    type t = {
      scheme : string;
      structure : string;  (** ["hash-set"] or ["ab-tree"] *)
      nshards : int;
      nthreads : int;  (** worker threads; tids in [0, nthreads) *)
      keyspace : int;  (** keys are in [0, keyspace) *)
      shard_capacity : int;  (** pool slots per shard *)
      smr : Nbr_core.Smr_config.t;
      reclaim : Nbr_reclaim.Reclaimer.policy option;
          (** per-shard background reclaimer role + pool watermarks *)
      reclaimer_faults : Nbr_fault.Fault_plan.reclaimer_fault list;
          (** fault schedule applied to {e every} shard's reclaimer *)
    }

    val make :
      ?structure:string ->
      ?nshards:int ->
      ?keyspace:int ->
      ?shard_capacity:int ->
      ?smr:Nbr_core.Smr_config.t ->
      ?reclaim:Nbr_reclaim.Reclaimer.policy ->
      ?reclaimer_faults:Nbr_fault.Fault_plan.reclaimer_fault list ->
      scheme:string ->
      nthreads:int ->
      unit ->
      t
    (** Defaults: hash-set shards, 8 of them, a 2²⁰-key keyspace, a
        shard capacity of half the shard's keyspace share (clamped to
        [8192, 256K] slots — heavy drivers pass it explicitly), default
        SMR config,
        no background reclamation.  Raises [Invalid_argument] on
        unknown scheme/structure names and on paper-P5-unsafe pairings
        (hp/he/ibr shards must be ab-tree). *)
  end

  type t

  val create : Cfg.t -> t
  (** Builds every shard: pools, scheme instances, structures, worker
      contexts, and (if configured) per-shard reclaimers. *)

  val cfg : t -> Cfg.t
  val nshards : t -> int
  val nthreads : t -> int
  val keyspace : t -> int
  val reclaim_on : t -> bool

  val foil : t -> bool
  (** Whether the configured scheme is a deliberately unsound baseline
      (unsafe-free) — validation skips the UAF assertions for foils. *)

  val bounded_claim : t -> bool
  (** Whether the scheme declares the paper's P2 bounded-garbage
      property. *)

  (** {1 Request path} *)

  val shard_of : t -> int -> int
  (** Key → shard routing (a SplitMix64-style finalizer, independent of
      the hash-set's internal bucket hash). *)

  val get : t -> tid:int -> int -> bool
  val put : t -> tid:int -> int -> bool
  val delete : t -> tid:int -> int -> bool

  val scan : t -> tid:int -> int -> int -> int
  (** [scan t ~tid k len]: [len] membership probes starting at [k], all
      against [k]'s shard — the single-partition leg of a scatter-gather
      range read on a hash-partitioned store.  Returns the hit count. *)

  val shard_of_op : t -> Nbr_workload.Traffic.op -> int

  val exec_on : t -> tid:int -> shard:int -> Nbr_workload.Traffic.op -> int
  (** Execute one request on shard [shard] (which must be its
      [shard_of_op] — the batching pipeline groups per shard first).
      Returns 1 for a successful update / present key, else 0; scans
      return their hit count.  May raise {!Nbr_core.Smr_intf.Expelled}
      under fault injection, like any structure operation. *)

  val size : t -> int
  (** Total keys across shards.  Quiescent callers only. *)

  (** {1 Fault & lifecycle verbs} (composed by the service pipeline) *)

  val stall : t -> tid:int -> int -> unit
  (** Pause inside a read phase on shard 0 for the given nanoseconds —
      E2's delayed thread at the serving layer. *)

  val crash : t -> tid:int -> unit
  (** Enter an operation on shard 0 and never leave; the caller must
      stop using [tid] afterwards. *)

  val hog : t -> slots:int -> ns:int -> unit
  (** Manufactured pool pressure against shard 0. *)

  val hog_on : t -> shard:int -> slots:int -> ns:int -> unit
  (** Manufactured pool pressure against a chosen shard (the slo-chaos
      adversary: the pressure, and any breaker trip, lands on a known
      shard).  [shard] is taken modulo the shard count. *)

  val churn : t -> tid:int -> unit
  (** Deregister and immediately re-register [tid] on every shard,
      orphaning its buffered retires for survivors to adopt. *)

  val drain : t -> tid:int -> unit
  (** End-of-run drain on every shard: collect stranded handoffs, adopt
      orphans, flush. *)

  val run_reclaimer : t -> int -> unit
  (** The role body for shard [i]'s reclaimer; no-op when reclamation
      is off. *)

  val stop_reclaimers : t -> unit
  val reset_peaks : t -> unit

  (** {1 Introspection} *)

  val health : t -> shard:int -> health
  (** One shard's current health signals.  Safe from any thread; cheap
      enough to poll once per shard batch. *)

  val shard_capacity : t -> int

  val hs_timeouts : t -> tid:int -> shard:int -> int
  (** Cumulative handshake timeouts recorded by [tid]'s own context on
      [shard] — single-writer, so cheap to poll; callers diff
      successive reads to detect fresh timeouts. *)

  val garbage_bound : t -> int
  (** Worst per-shard bounded-garbage cap (the trial runner's formula
      with the live-set term scaled to one shard's keyspace share). *)

  val stats : t -> stats
  (** Aggregated across shards.  Allocates; not for hot paths. *)
end
