(** The public face of the NBR reproduction.

    One curated namespace over the internal libraries, organized the way
    a user builds things up (see examples/quickstart.ml):

    + pick a runtime: {!Runtime.Native} (OCaml domains) or
      {!Runtime.Sim} (deterministic simulated multicore);
    + create a {!Pool} of records over it;
    + create a reclamation {!Scheme} over the pool ({!Scheme.Nbr_plus}
      is the paper's contribution; nine baselines ride along);
    + instantiate a data structure from {!Ds} — or drive whole
      scheme × structure × runtime sweeps through {!Workload};
    + optionally watch it run through {!Obs} (event traces, latency
      histograms) and stress it through {!Fault}.

    Application code should depend on this module alone; the underlying
    [nbr.*] libraries remain reachable for tests and internal tools but
    make no stability promise. *)

(** Execution substrates: {!Runtime.S} is the signature every algorithm
    is written against; all functors below take one of its two
    implementations. *)
module Runtime = struct
  module type S = Nbr_runtime.Runtime_intf.S

  (** The signature module itself, for [signal_fate] and other auxiliary
      types referenced in {!S}. *)
  module Intf = Nbr_runtime.Runtime_intf

  module Sim = Nbr_runtime.Sim_rt
  module Native = Nbr_runtime.Native_rt
end

(** Simulated manual memory: records as integer slots with explicit
    alloc/free, observable use-after-free, and graceful exhaustion. *)
module Pool = Nbr_pool.Pool

(** Safe-memory-reclamation schemes, each a functor over {!Runtime.S}
    producing an implementation of {!Scheme.S}. *)
module Scheme = struct
  module type S = Nbr_core.Smr_intf.S

  module Config = Nbr_core.Smr_config
  module Stats = Nbr_core.Smr_stats

  module Nbr = Nbr_core.Nbr  (** the paper's Algorithm 1 *)

  module Nbr_plus = Nbr_core.Nbr_plus  (** Algorithm 2 (use this one) *)

  module Debra = Nbr_core.Debra
  module Qsbr = Nbr_core.Qsbr
  module Rcu = Nbr_core.Rcu
  module Ibr = Nbr_core.Ibr
  module Hp = Nbr_core.Hp
  module Hazard_eras = Nbr_core.Hazard_eras
  module Leaky = Nbr_core.Leaky
  module Unsafe_free = Nbr_core.Unsafe_free
end

(** Concurrent set data structures, functors over a runtime and a
    scheme: {!Ds.Lazy_list}, {!Ds.Dgt_bst}, {!Ds.Harris_list},
    {!Ds.Ab_tree}, {!Ds.Hash_set}, {!Ds.Skip_list}. *)
module Ds = Nbr_ds

(** The benchmark/validation harness: {!Workload.Trial} configs and
    results, {!Workload.Registry} (the scheme-name → functor table),
    {!Workload.Traffic} (Zipfian production-shaped load),
    {!Workload.Harness} (scheme × structure matrix),
    {!Workload.Experiments} (the paper's figures), {!Workload.Table}. *)
module Workload = Nbr_workload

(** The serving layer (DESIGN.md §14), and the supported entry point for
    building a service on this stack: {!Kv.Store.Make} shards a
    key-value store across per-shard structure × scheme × pool
    instances, {!Kv.Service.Make} drives it with {!Workload.Traffic}
    through a batching request pipeline that records arrival→completion
    latency — flash crowds, fault plans, churn and per-shard background
    reclamation all compose.  See examples/kv_service.ml. *)
module Kv = Nbr_kv

(** Observability: {!Obs.Trace} (flag-gated event rings, Chrome
    trace-event export) and {!Obs.Histogram} (log-bucket latency
    quantiles).  See DESIGN.md §10. *)
module Obs = Nbr_obs

(** Deterministic fault plans: stalls, crashes, pool hogs, dropped or
    delayed neutralization signals, and reclaimer-role faults
    ({!Fault.pressure_chaos} bundles them into the memory-pressure
    adversary). *)
module Fault = Nbr_fault.Fault_plan

(** Background reclamation (DESIGN.md §12): a dedicated reclaimer role
    — native domain or sim fiber, same interface — that drains limbo
    bags off the hot path, driven by {!Reclaim.policy} (periodic,
    retire-count, or watermark pressure).  Workers degrade to inline
    reclamation when the reclaimer stalls or crashes and restore when
    it returns.  Usually engaged by passing [?reclaim] to
    {!Workload.Trial.Cfg.make}; [Reclaim.Make] is the standalone functor. *)
module Reclaim = Nbr_reclaim.Reclaimer

(** Analysis suite: {!Check.Explore} (schedule-exploring model checker
    over the simulator), {!Check.Sanitizer} (online SMR-protocol
    checker on the trace stream), {!Check.Certificate} (replayable
    schedule certificates).  See DESIGN.md §11. *)
module Check = Nbr_check

(** Static phase-discipline analysis (DESIGN.md §16): compiler-libs
    dataflow over per-callee effect summaries, checking the four
    protocol rules (R1 read-phase purity, R2 guarded dereference, R3
    phase bracketing, R4 write-phase coverage) plus the concurrency
    idiom rules, with SARIF output.  Drives [bin/nbr_lint] /
    [dune build @lint]. *)
module Analysis = Nbr_analysis

(** SplitMix64 PRNG, the repo-wide randomness source. *)
module Rng = Nbr_sync.Rng
