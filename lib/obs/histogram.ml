(* See histogram.mli for the contract.  Bucket [i] holds values whose
   two's-complement bit length is [i]: bucket 0 is {0}, bucket i covers
   [2^(i-1), 2^i).  63 buckets span every non-negative OCaml int, so
   [record] never range-checks; quantiles are read back as the geometric
   midpoint of the crossing bucket, giving the usual <= 2x relative error
   of log2 histograms — plenty for p50/p99 latency triage, and constant
   memory no matter how many samples land. *)

type t = {
  counts : int array;  (** [counts.(bits v)] *)
  mutable n : int;
  mutable sum : int;
  mutable vmax : int;
  mutable vmin : int;
}

let buckets = 63

let create () =
  { counts = Array.make buckets 0; n = 0; sum = 0; vmax = 0; vmin = max_int }

let bucket_of v =
  (* bit length of v: 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... *)
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let record t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.vmax then t.vmax <- v;
  if v < t.vmin then t.vmin <- v

let count t = t.n

let merge_into ~into t =
  for i = 0 to buckets - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done;
  into.n <- into.n + t.n;
  into.sum <- into.sum + t.sum;
  if t.vmax > into.vmax then into.vmax <- t.vmax;
  if t.vmin < into.vmin then into.vmin <- t.vmin

(* Midpoint (geometric mean) of bucket [b]'s value range, clamped to the
   observed extrema so tiny histograms don't report values never seen. *)
let bucket_mid t b =
  let v =
    if b = 0 then 0.0
    else begin
      let lo = float_of_int (1 lsl (b - 1)) in
      lo *. sqrt 2.0
    end
  in
  let v = Float.min v (float_of_int t.vmax) in
  if t.vmin < max_int then Float.max v (float_of_int t.vmin) else v

let quantile t q =
  if t.n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else if rank > t.n then t.n else rank in
    let acc = ref 0 and b = ref 0 and out = ref (float_of_int t.vmax) in
    let found = ref false in
    while (not !found) && !b < buckets do
      acc := !acc + t.counts.(!b);
      if !acc >= rank then begin
        out := bucket_mid t !b;
        found := true
      end;
      incr b
    done;
    !out
  end

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
  s_max : int;
}

let summary t =
  {
    s_count = t.n;
    s_mean = (if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n);
    s_p50 = quantile t 0.50;
    s_p90 = quantile t 0.90;
    s_p99 = quantile t 0.99;
    s_p999 = quantile t 0.999;
    s_max = t.vmax;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%d" s.s_count
    s.s_mean s.s_p50 s.s_p90 s.s_p99 s.s_p999 s.s_max
