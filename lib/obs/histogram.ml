(* See histogram.mli for the contract.  Log-linear layout (HdrHistogram's
   trick at its coarsest useful setting): values 0..7 get one exact bucket
   each; every octave [2^o, 2^(o+1)) above that is split into 4 linear
   sub-buckets of width 2^(o-2), indexed by the two bits below the leading
   one.  244 buckets span every non-negative OCaml int, so [record] never
   range-checks; quantiles read back as the arithmetic midpoint of the
   crossing sub-bucket, bounding relative error by 1/8 — against the <= 2x
   error of the old 1-bucket-per-octave layout, which collapsed p50 and
   p99 onto the same value whenever an operation's latencies fit inside
   one octave (the flat entries ROADMAP item 3 calls out). *)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable vmax : int;
  mutable vmin : int;
}

(* 8 exact buckets + 4 sub-buckets for each octave 3..61 (the top octave
   of a 63-bit non-negative int). *)
let buckets = 8 + (4 * 59)

let create () =
  { counts = Array.make buckets 0; n = 0; sum = 0; vmax = 0; vmin = max_int }

let bucket_of v =
  if v < 8 then v
  else begin
    (* b = floor(log2 v) >= 3; the two bits below the leading one pick
       the linear sub-bucket inside octave [2^b, 2^(b+1)). *)
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    let b = bits v 0 - 1 in
    let sub = (v lsr (b - 2)) land 3 in
    8 + ((b - 3) * 4) + sub
  end

let record t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.vmax then t.vmax <- v;
  if v < t.vmin then t.vmin <- v

let count t = t.n

let merge_into ~into t =
  for i = 0 to buckets - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done;
  into.n <- into.n + t.n;
  into.sum <- into.sum + t.sum;
  if t.vmax > into.vmax then into.vmax <- t.vmax;
  if t.vmin < into.vmin then into.vmin <- t.vmin

(* Arithmetic midpoint of bucket [b]'s value range, clamped to the
   observed extrema so tiny histograms don't report values never seen. *)
let bucket_mid t b =
  let v =
    if b < 8 then float_of_int b
    else begin
      let o = ((b - 8) / 4) + 3 in
      let s = (b - 8) mod 4 in
      let w = 1 lsl (o - 2) in
      let lo = (1 lsl o) + (s * w) in
      float_of_int lo +. (float_of_int (w - 1) /. 2.0)
    end
  in
  let v = Float.min v (float_of_int t.vmax) in
  if t.vmin < max_int then Float.max v (float_of_int t.vmin) else v

let quantile t q =
  if t.n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else if rank > t.n then t.n else rank in
    let acc = ref 0 and b = ref 0 and out = ref (float_of_int t.vmax) in
    let found = ref false in
    while (not !found) && !b < buckets do
      acc := !acc + t.counts.(!b);
      if !acc >= rank then begin
        out := bucket_mid t !b;
        found := true
      end;
      incr b
    done;
    !out
  end

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
  s_max : int;
}

let summary t =
  {
    s_count = t.n;
    s_mean = (if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n);
    s_p50 = quantile t 0.50;
    s_p90 = quantile t 0.90;
    s_p99 = quantile t 0.99;
    s_p999 = quantile t 0.999;
    s_max = t.vmax;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%d" s.s_count
    s.s_mean s.s_p50 s.s_p90 s.s_p99 s.s_p999 s.s_max
