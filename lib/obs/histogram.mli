(** Log-linear histogram for latency-scale integers: 4 linear
    sub-buckets per power-of-two octave (values 0..7 exact).

    Fixed memory (244 buckets covering every non-negative int), O(1)
    [record] with no allocation — safe to call once per operation on the
    measurement path.  Quantiles come back as the arithmetic midpoint of
    the sub-bucket the rank falls in (<= 1/8 relative error — fine
    enough that p50 and p99 separate even when an operation's latencies
    all fall inside one octave), clamped to the exact observed min/max.

    Single-writer: one histogram per thread, merged after the run with
    {!merge_into}.  Never share one instance across concurrent writers. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** [record t v] counts sample [v] (negative values clamp to 0). *)

val count : t -> int
(** Samples recorded so far. *)

val merge_into : into:t -> t -> unit
(** Fold a (finished) per-thread histogram into an aggregate. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: estimated value at that rank, [0.0]
    when empty. *)

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
  s_max : int;  (** exact, not bucketed *)
}

val summary : t -> summary
val pp_summary : Format.formatter -> summary -> unit
