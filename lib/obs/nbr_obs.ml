(** Observability substrate: flag-gated event tracing ({!Trace}) and
    log-bucket latency histograms ({!Histogram}).

    Depends only on [nbr.sync]; the runtimes, schemes, pool and workload
    all emit into it, and {!Nbr.Obs} re-exports it as the user-facing
    configuration surface.  See DESIGN.md §10. *)

module Trace = Trace
module Histogram = Histogram
