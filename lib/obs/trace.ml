(* See trace.mli.  Hot-path shape: each worker owns one ring (struct of
   plain int arrays, the whole record padded so two writers never share a
   cache line), writes are [idx <- next mod cap] stores plus one mutable
   increment — no allocation, no atomics, drop-oldest by construction.
   The [on] flag is a plain ref: emission sites guard with [if !Trace.on]
   so a disabled trace costs exactly one load and a not-taken branch,
   mirroring the [faults_active] idiom of the native runtime.

   PR 5 adds a second tier: [fine] gates the protocol-event firehose
   (per-dereference accesses, per-slot alloc/retire/free, op and
   checkpoint boundaries) that the online sanitizer consumes.  Keeping it
   separate means the coarse timeline consumers (Perfetto export, the CI
   chaos assertions) never have their rings flooded by per-access events
   unless a checker asked for them. *)

type kind =
  | Signal_sent
  | Signal_delivered
  | Signal_consumed
  | Neutralized
  | Restart
  | Reservation_publish
  | Reclaim
  | Bag_push
  | Bag_sweep
  | Pool_starvation
  | Pool_overflow
  | Fault_action
  | Heartbeat_timeout
  | Peer_declared_dead
  | Orphan_adopted
  | Alloc_slot
  | Free_slot
  | Retire
  | Access
  | Begin_op
  | End_op
  | Checkpoint_set
  | Watermark_high
  | Watermark_low
  | Bag_handoff
  | Handoff_collect
  | Async_sweep
  | Degrade
  | Restore
  | Handshake_timeout
  | Stale_handle
  | Admission_shed
  | Request_timeout
  | Request_retry
  | Breaker_open
  | Breaker_half_open
  | Breaker_close
  | Brownout

let kind_code = function
  | Signal_sent -> 0
  | Signal_delivered -> 1
  | Signal_consumed -> 2
  | Neutralized -> 3
  | Restart -> 4
  | Reservation_publish -> 5
  | Reclaim -> 6
  | Bag_push -> 7
  | Bag_sweep -> 8
  | Pool_starvation -> 9
  | Pool_overflow -> 10
  | Fault_action -> 11
  | Heartbeat_timeout -> 12
  | Peer_declared_dead -> 13
  | Orphan_adopted -> 14
  | Alloc_slot -> 15
  | Free_slot -> 16
  | Retire -> 17
  | Access -> 18
  | Begin_op -> 19
  | End_op -> 20
  | Checkpoint_set -> 21
  | Watermark_high -> 22
  | Watermark_low -> 23
  | Bag_handoff -> 24
  | Handoff_collect -> 25
  | Async_sweep -> 26
  | Degrade -> 27
  | Restore -> 28
  | Handshake_timeout -> 29
  | Stale_handle -> 30
  | Admission_shed -> 31
  | Request_timeout -> 32
  | Request_retry -> 33
  | Breaker_open -> 34
  | Breaker_half_open -> 35
  | Breaker_close -> 36
  | Brownout -> 37

let kind_of_code = function
  | 0 -> Signal_sent
  | 1 -> Signal_delivered
  | 2 -> Signal_consumed
  | 3 -> Neutralized
  | 4 -> Restart
  | 5 -> Reservation_publish
  | 6 -> Reclaim
  | 7 -> Bag_push
  | 8 -> Bag_sweep
  | 9 -> Pool_starvation
  | 10 -> Pool_overflow
  | 11 -> Fault_action
  | 12 -> Heartbeat_timeout
  | 13 -> Peer_declared_dead
  | 14 -> Orphan_adopted
  | 15 -> Alloc_slot
  | 16 -> Free_slot
  | 17 -> Retire
  | 18 -> Access
  | 19 -> Begin_op
  | 20 -> End_op
  | 21 -> Checkpoint_set
  | 22 -> Watermark_high
  | 23 -> Watermark_low
  | 24 -> Bag_handoff
  | 25 -> Handoff_collect
  | 26 -> Async_sweep
  | 27 -> Degrade
  | 28 -> Restore
  | 29 -> Handshake_timeout
  | 30 -> Stale_handle
  | 31 -> Admission_shed
  | 32 -> Request_timeout
  | 33 -> Request_retry
  | 34 -> Breaker_open
  | 35 -> Breaker_half_open
  | 36 -> Breaker_close
  | 37 -> Brownout
  | _ -> Stale_handle

let kind_name = function
  | Signal_sent -> "signal_sent"
  | Signal_delivered -> "signal_delivered"
  | Signal_consumed -> "signal_consumed"
  | Neutralized -> "neutralized"
  | Restart -> "restart"
  | Reservation_publish -> "reservation_publish"
  | Reclaim -> "reclaim"
  | Bag_push -> "bag_push"
  | Bag_sweep -> "bag_sweep"
  | Pool_starvation -> "pool_starvation"
  | Pool_overflow -> "pool_overflow"
  | Fault_action -> "fault_action"
  | Heartbeat_timeout -> "heartbeat_timeout"
  | Peer_declared_dead -> "peer_declared_dead"
  | Orphan_adopted -> "orphan_adopted"
  | Alloc_slot -> "alloc_slot"
  | Free_slot -> "free_slot"
  | Retire -> "retire"
  | Access -> "access"
  | Begin_op -> "begin_op"
  | End_op -> "end_op"
  | Checkpoint_set -> "checkpoint_set"
  | Watermark_high -> "watermark_high"
  | Watermark_low -> "watermark_low"
  | Bag_handoff -> "bag_handoff"
  | Handoff_collect -> "handoff_collect"
  | Async_sweep -> "async_sweep"
  | Degrade -> "degrade"
  | Restore -> "restore"
  | Handshake_timeout -> "handshake_timeout"
  | Stale_handle -> "stale_handle"
  | Admission_shed -> "admission_shed"
  | Request_timeout -> "request_timeout"
  | Request_retry -> "request_retry"
  | Breaker_open -> "breaker_open"
  | Breaker_half_open -> "breaker_half_open"
  | Breaker_close -> "breaker_close"
  | Brownout -> "brownout"

type event = { e_ns : int; e_tid : int; e_seq : int; e_kind : kind; e_a : int; e_b : int }

(* One per thread; single writer.  [next] counts every event ever emitted
   to this ring, so [next - cap] (when positive) is the dropped count and
   [next mod cap] the write cursor. *)
type ring = {
  r_kind : int array;
  r_ns : int array;
  r_a : int array;
  r_b : int array;
  mutable next : int;
}

let mk_ring cap =
  Nbr_sync.Padded.copy_as_padded
    {
      r_kind = Array.make cap 0;
      r_ns = Array.make cap 0;
      r_a = Array.make cap 0;
      r_b = Array.make cap 0;
      next = 0;
    }

let on = ref false
let verbose = ref false
let fine = ref false
let rings : ring array ref = ref [||]
let cap = ref 0

(* Online subscriber (the protocol sanitizer).  Called synchronously from
   [emit], i.e. in true emission order under the single-domain simulator;
   under the native runtime concurrent emitters call it unsynchronized,
   so online checkers are a sim-runtime tool. *)
let sub : (event -> unit) option ref = ref None

let refresh_fine () = fine := !on && !verbose

let default_capacity = 8192

let enable ?(capacity = default_capacity) ~nthreads () =
  if nthreads < 1 then invalid_arg "Trace.enable: nthreads";
  if capacity < 1 then invalid_arg "Trace.enable: capacity";
  cap := capacity;
  rings := Array.init nthreads (fun _ -> mk_ring capacity);
  on := true;
  refresh_fine ()

let disable () =
  on := false;
  refresh_fine ()

let clear () =
  on := false;
  rings := [||];
  cap := 0;
  refresh_fine ()

let enabled () = !on

let set_verbose b =
  verbose := b;
  refresh_fine ()

let subscribe f = sub := f

let emit ~tid ~ns k a b =
  let rs = !rings in
  if tid >= 0 && tid < Array.length rs then begin
    let r = Array.unsafe_get rs tid in
    let c = !cap in
    let i = r.next mod c in
    Array.unsafe_set r.r_kind i (kind_code k);
    Array.unsafe_set r.r_ns i ns;
    Array.unsafe_set r.r_a i a;
    Array.unsafe_set r.r_b i b;
    r.next <- r.next + 1;
    match !sub with
    | None -> ()
    | Some f ->
        f { e_ns = ns; e_tid = tid; e_seq = r.next - 1; e_kind = k; e_a = a; e_b = b }
  end

let dropped () =
  Array.fold_left
    (fun acc r -> acc + max 0 (r.next - !cap))
    0 !rings

(* ------------------------------------------------------------------ *)
(* Merge: per-ring order is program order (single writer); across rings
   we sort by timestamp, breaking ties by (tid, per-ring sequence) so the
   merged timeline is deterministic and never reorders one thread's
   events against themselves. *)

let events () =
  let out = ref [] in
  Array.iteri
    (fun tid r ->
      let c = !cap in
      let n = min r.next c in
      let oldest = r.next - n in
      for i = 0 to n - 1 do
        let seq = oldest + i in
        let idx = seq mod c in
        out :=
          {
            e_ns = r.r_ns.(idx);
            e_tid = tid;
            e_seq = seq;
            e_kind = kind_of_code r.r_kind.(idx);
            e_a = r.r_a.(idx);
            e_b = r.r_b.(idx);
          }
          :: !out
      done)
    !rings;
  let a = Array.of_list !out in
  Array.sort
    (fun x y ->
      if x.e_ns <> y.e_ns then compare x.e_ns y.e_ns
      else if x.e_tid <> y.e_tid then compare x.e_tid y.e_tid
      else compare x.e_seq y.e_seq)
    a;
  Array.to_list a

(* ------------------------------------------------------------------ *)
(* Exports. *)

let to_text () =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%12d t%-3d %-20s a=%d b=%d\n" e.e_ns e.e_tid
           (kind_name e.e_kind) e.e_a e.e_b))
    (events ());
  Buffer.contents b

(* Chrome trace-event format (the JSON Object Format variant), loadable
   in Perfetto / chrome://tracing.  Every event is an instant event
   ([ph:"i"], thread scope); [ts] is microseconds as a float, which keeps
   ns resolution for any plausible trial length. *)
let to_chrome_json () =
  let b = Buffer.create 16384 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun e ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"name\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"a\":%d,\"b\":%d}}"
           (kind_name e.e_kind)
           (float_of_int e.e_ns /. 1000.0)
           e.e_tid e.e_a e.e_b))
    (events ());
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b
