(** Flag-gated event tracing: per-thread rings, merged timelines, Chrome
    trace-event export.

    The repository's layers (runtimes, schemes, pool, workload) emit
    typed events here from their interesting transitions — signal
    traffic, neutralizations, read-phase restarts, reservation
    publications, reclamation sweeps, pool pressure, injected faults.
    Each worker thread writes to its own fixed-capacity ring
    (drop-oldest, no allocation, no atomics, cache-line padded), so
    tracing a run perturbs it as little as possible; a disabled trace
    costs emission sites exactly one plain load of {!on} and a not-taken
    branch.

    Protocol: call {!enable} before the run (it sizes one ring per
    thread), run, then read {!events} / {!to_chrome_json} /
    {!to_text}.  Timestamps are the runtime's [now_ns] — virtual in the
    simulator (deterministic timelines), CLOCK_MONOTONIC natively — and
    are passed in by the emitter, which keeps this library independent
    of the runtimes it observes. *)

type kind =
  | Signal_sent  (** a = target tid *)
  | Signal_delivered  (** a = pending count observed *)
  | Signal_consumed  (** a = signals consumed without restart *)
  | Neutralized  (** restartable victim aborts to its checkpoint *)
  | Restart  (** a read phase re-enters after an abort; a = attempt # *)
  | Reservation_publish  (** a = records published *)
  | Reclaim  (** a = records freed, b = records still pinned *)
  | Bag_push  (** a = slot, b = bag size after push *)
  | Bag_sweep  (** a = entries examined *)
  | Pool_starvation
      (** allocator entered the pressure retry loop; a = slots in use,
          b = retired-but-unreclaimed slots *)
  | Pool_overflow  (** a = slot rerouted to the shared overflow stack *)
  | Fault_action  (** a = 0 stall / 1 crash / 2 hog (fault-plan actions) *)
  | Heartbeat_timeout
      (** writer's handshake wait on a peer exceeded one backoff round;
          a = peer tid, b = backoff attempt # *)
  | Peer_declared_dead
      (** watchdog gave up on a frozen peer and adopted its state;
          a = peer tid, b = heartbeat value observed frozen *)
  | Orphan_adopted
      (** a live thread adopted an orphan parcel; a = origin tid,
          b = records adopted *)
  | Alloc_slot  (** fine: pool slot allocated; a = slot *)
  | Free_slot  (** fine: pool slot freed; a = slot *)
  | Retire  (** fine: slot retired (unlinked, awaiting reclamation); a = slot *)
  | Access
      (** fine: guarded dereference of a record; a = slot,
          b = pool state observed (0 free / 1 live / 2 retired) *)
  | Begin_op  (** fine: scheme [begin_op] — operation protection starts *)
  | End_op  (** fine: scheme [end_op] — operation protection retracted *)
  | Checkpoint_set
      (** fine: NBR-family read-phase checkpoint armed (begin_read):
          reservations cleared, thread restartable *)
  | Watermark_high
      (** pool occupancy crossed the high watermark (background reclaim
          requested); a = slots in use, b = high watermark *)
  | Watermark_low
      (** occupancy fell back below the low watermark; a = slots in use,
          b = low watermark *)
  | Bag_handoff
      (** a worker exported its limbo bag to the reclaimer's handoff
          channel instead of sweeping inline; a = slots handed,
          b = channel backlog after *)
  | Handoff_collect
      (** the reclaimer (or a post-trial drainer) adopted handed-off
          parcels as its own garbage; a = slots collected,
          b = channel backlog after *)
  | Async_sweep
      (** one background reclamation pass completed; a = records freed,
          b = channel backlog after *)
  | Degrade
      (** schemes fall back to inline reclamation; a = 0 backlog over
          threshold / 1 reclaimer fault, b = channel backlog *)
  | Restore
      (** background reclamation resumed after a degrade; a = channel
          backlog at restore *)
  | Handshake_timeout
      (** a bounded-wait broadcast handshake gave up on a peer after all
          escalation rounds; a = peer tid, b = rounds waited *)
  | Stale_handle
      (** fine: a generation-validated access went through a stale
          handle (its record was freed, possibly recycled);
          a = handle, b = the slot's current generation *)
  | Admission_shed
      (** the service guard rejected a request at admission (inflight
          budget full, shard browned out, or breaker open);
          a = shard, b = op class (0 read / 1 write / 2 scan) *)
  | Request_timeout
      (** an admitted request exceeded its deadline and completed as
          [Timed_out]; a = shard, b = lateness in ns *)
  | Request_retry
      (** a transiently-failed request is being retried after backoff;
          a = shard, b = attempt # (1-based) *)
  | Breaker_open
      (** a shard circuit breaker tripped fully open; a = shard,
          b = consecutive unhealthy polls observed *)
  | Breaker_half_open
      (** an open breaker let its cooldown elapse and entered half-open
          (probe) state; a = shard, b = probe budget *)
  | Breaker_close
      (** a half-open breaker's probes succeeded and it closed;
          a = shard, b = probe successes *)
  | Brownout
      (** a shard moved along the brownout ladder; a = shard,
          b = new level (0 healthy / 1 shed scans / 2 shed writes) *)

val kind_name : kind -> string

type event = {
  e_ns : int;  (** runtime timestamp, ns *)
  e_tid : int;
  e_seq : int;  (** per-thread emission index (absolute, monotone) *)
  e_kind : kind;
  e_a : int;
  e_b : int;
}

val on : bool ref
(** The gate.  Emission sites must check [!on] {e before} computing
    timestamps or arguments:
    [if !Trace.on then Trace.emit ~tid ~ns:(now_ns ()) Reclaim freed 0].
    Treat as read-only outside this module — {!enable} / {!disable} flip
    it. *)

val fine : bool ref
(** Second-tier gate for the protocol-event firehose ({!Alloc_slot},
    {!Free_slot}, {!Retire}, {!Access}, {!Stale_handle}, {!Begin_op},
    {!End_op}, {!Checkpoint_set}): true iff tracing is enabled {e and} verbose mode
    is on.  Emission sites for fine-grained events guard with [!fine]
    instead of [!on], so coarse timeline consumers (Perfetto export, CI
    trace assertions) never have their rings flooded by per-access
    events unless a checker asked for them via {!set_verbose}.  Treat as
    read-only outside this module. *)

val set_verbose : bool -> unit
(** Turn the fine-grained event tier on or off (persists across
    {!enable} / {!disable}; default off).  The protocol sanitizer sets
    this while attached. *)

val enable : ?capacity:int -> nthreads:int -> unit -> unit
(** Allocate one ring of [capacity] events (default 8192) per thread and
    start recording.  Replaces any previous rings. *)

val disable : unit -> unit
(** Stop recording; the rings stay readable. *)

val clear : unit -> unit
(** Stop recording and drop the rings. *)

val enabled : unit -> bool

val emit : tid:int -> ns:int -> kind -> int -> int -> unit
(** Record one event in [tid]'s ring (drop-oldest past capacity; no-op
    for out-of-range tids).  Single-writer: only thread [tid] may call
    this with its own id. *)

val subscribe : (event -> unit) option -> unit
(** Install (or with [None] remove) an online subscriber called
    synchronously from {!emit} with every recorded event.  Under the
    single-domain simulator the callbacks arrive in exact emission
    order — the substrate for the online protocol sanitizer
    ([Nbr_check.Sanitizer]).  Under the native runtime emitters call it
    concurrently and unsynchronized, so online checking is a
    sim-runtime tool.  At most one subscriber; the callback must not
    call {!emit}. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around, across all threads. *)

val events : unit -> event list
(** The merged timeline: all surviving events sorted by timestamp, ties
    broken by (tid, per-thread order) — deterministic, and never
    reorders one thread's events against each other. *)

val to_text : unit -> string
(** Compact fixed-width text timeline (one event per line), for tests
    and terminal inspection. *)

val to_chrome_json : unit -> string
(** The merged timeline as Chrome trace-event JSON (instant events,
    [ts] in microseconds) — load the file in Perfetto or
    chrome://tracing. *)
