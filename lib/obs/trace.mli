(** Flag-gated event tracing: per-thread rings, merged timelines, Chrome
    trace-event export.

    The repository's layers (runtimes, schemes, pool, workload) emit
    typed events here from their interesting transitions — signal
    traffic, neutralizations, read-phase restarts, reservation
    publications, reclamation sweeps, pool pressure, injected faults.
    Each worker thread writes to its own fixed-capacity ring
    (drop-oldest, no allocation, no atomics, cache-line padded), so
    tracing a run perturbs it as little as possible; a disabled trace
    costs emission sites exactly one plain load of {!on} and a not-taken
    branch.

    Protocol: call {!enable} before the run (it sizes one ring per
    thread), run, then read {!events} / {!to_chrome_json} /
    {!to_text}.  Timestamps are the runtime's [now_ns] — virtual in the
    simulator (deterministic timelines), CLOCK_MONOTONIC natively — and
    are passed in by the emitter, which keeps this library independent
    of the runtimes it observes. *)

type kind =
  | Signal_sent  (** a = target tid *)
  | Signal_delivered  (** a = pending count observed *)
  | Signal_consumed  (** a = signals consumed without restart *)
  | Neutralized  (** restartable victim aborts to its checkpoint *)
  | Restart  (** a read phase re-enters after an abort; a = attempt # *)
  | Reservation_publish  (** a = records published *)
  | Reclaim  (** a = records freed, b = records still pinned *)
  | Bag_push  (** a = slot, b = bag size after push *)
  | Bag_sweep  (** a = entries examined *)
  | Pool_starvation
      (** allocator entered the pressure retry loop; a = slots in use,
          b = retired-but-unreclaimed slots *)
  | Pool_overflow  (** a = slot rerouted to the shared overflow stack *)
  | Fault_action  (** a = 0 stall / 1 crash / 2 hog (fault-plan actions) *)
  | Heartbeat_timeout
      (** writer's handshake wait on a peer exceeded one backoff round;
          a = peer tid, b = backoff attempt # *)
  | Peer_declared_dead
      (** watchdog gave up on a frozen peer and adopted its state;
          a = peer tid, b = heartbeat value observed frozen *)
  | Orphan_adopted
      (** a live thread adopted an orphan parcel; a = origin tid,
          b = records adopted *)

val kind_name : kind -> string

type event = {
  e_ns : int;  (** runtime timestamp, ns *)
  e_tid : int;
  e_seq : int;  (** per-thread emission index (absolute, monotone) *)
  e_kind : kind;
  e_a : int;
  e_b : int;
}

val on : bool ref
(** The gate.  Emission sites must check [!on] {e before} computing
    timestamps or arguments:
    [if !Trace.on then Trace.emit ~tid ~ns:(now_ns ()) Reclaim freed 0].
    Treat as read-only outside this module — {!enable} / {!disable} flip
    it. *)

val enable : ?capacity:int -> nthreads:int -> unit -> unit
(** Allocate one ring of [capacity] events (default 8192) per thread and
    start recording.  Replaces any previous rings. *)

val disable : unit -> unit
(** Stop recording; the rings stay readable. *)

val clear : unit -> unit
(** Stop recording and drop the rings. *)

val enabled : unit -> bool

val emit : tid:int -> ns:int -> kind -> int -> int -> unit
(** Record one event in [tid]'s ring (drop-oldest past capacity; no-op
    for out-of-range tids).  Single-writer: only thread [tid] may call
    this with its own id. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around, across all threads. *)

val events : unit -> event list
(** The merged timeline: all surviving events sorted by timestamp, ties
    broken by (tid, per-thread order) — deterministic, and never
    reorders one thread's events against each other. *)

val to_text : unit -> string
(** Compact fixed-width text timeline (one event per line), for tests
    and terminal inspection. *)

val to_chrome_json : unit -> string
(** The merged timeline as Chrome trace-event JSON (instant events,
    [ts] in microseconds) — load the file in Perfetto or
    chrome://tracing. *)
