(** Simulated manual memory: a pool of fixed-shape records behind
    generational handles.

    OCaml is garbage-collected, so "freeing" a record cannot unmap it.  To
    reproduce an SMR paper we need memory that is explicitly allocated and
    freed, where a slot freed too early gets recycled under a reader's feet
    — i.e. real use-after-free dynamics, minus the segfault.  The pool
    provides exactly that, structured the way production slab allocators
    are:

    - Records live in {e size-classes}: each class has its own slot width
      (data/ptr field counts) and its own pre-allocated field arrays, so a
      process hosting several structures does not pay the widest layout
      everywhere.
    - A record is named by a {e generational handle}: one immutable int
      packing [(generation, class, index)] (see {!Handle}).  [free] bumps
      the slot's generation, so every handle minted before the free is
      {e detectably stale}: validated accessors return {!Stale} (and emit a
      [Stale_handle] trace event) instead of silently reading recycled
      memory.  This is the version-counter substrate VBR
      (Sheffi/Herlihy/Petrank, arXiv 2107.13843) builds reclamation out
      of.
    - Allocation is two-level, per Bonwick's magazine design: each thread
      caches up to a magazine of ready handles per class (padded,
      single-owner — the fast path touches no shared state), backed by a
      lock-free global depot (Treiber stacks of full and empty magazines).
      Steady-state [alloc]/[free] is fence-free; magazines move to and
      from the depot in batches.

    Lifecycle instrumentation mirrors the paper's five record states (§3):
    we track Free / Live / Retired, count reads of freed or stale slots,
    and maintain per-class and total in-use high-water marks that
    experiment E2 (figures 4c/4d) reports as "peak memory usage".
    Instrumentation (states, generations, counters) is deliberately kept
    in plain arrays, per-thread padded records and stdlib [Atomic]s rather
    than [Rt.aint]s: it must not perturb the simulated cost accounting.
    Occupancy deltas are accumulated per thread and published to the
    shared per-class counters every {!occ_batch} operations; {!stats}
    folds the residuals back in, so quiescent readings are exact and
    concurrent readings are within [occ_batch * nthreads] of exact.

    Exhaustion is {e graceful}: [alloc] first invokes the caller-supplied
    reclamation flush ([?on_pressure]), announces itself as starving
    (which reroutes concurrent frees to a shared per-class overflow stack
    any thread can pop), and retries with exponential backoff before
    giving up with an {!Exhausted} diagnosis.  See DESIGN.md
    "Fault model". *)

type exhausted_info = {
  x_capacity : int;
  x_in_use : int;  (** Live + Retired slots at the moment of failure *)
  x_garbage : int;  (** Retired-but-unreclaimed slots *)
  x_allocs : int;
  x_frees : int;
  x_attempts : int;  (** pressure-loop retries performed before giving up *)
}

exception Exhausted of exhausted_info
(** Raised by [alloc] only after the pressure retry loop fails — shared by
    every [Make] instance so CLI entry points can catch it uniformly. *)

let pp_exhausted ppf x =
  Format.fprintf ppf
    "pool exhausted: capacity=%d in_use=%d garbage=%d allocs=%d frees=%d \
     (gave up after %d reclamation-flush retries)"
    x.x_capacity x.x_in_use x.x_garbage x.x_allocs x.x_frees x.x_attempts

(** Handle packing: [(generation lsl 28) lor (class lsl 24) lor index].

    24 index bits (16M slots per class), 4 class bits (16 classes), and
    the generation above them.  The whole handle must survive the Harris
    list's mark-tagging ([h lsl 1]) inside OCaml's 63-bit int and stay
    non-negative, so generations are capped at 33 bits (handles < 2^61);
    a slot's generation wraps after 2^33 frees, at which point a handle
    held across all of them would alias — the same astronomically-remote
    wraparound every epoch/era scheme lives with.  [nil] (-1) is not a
    packable handle and never collides with one. *)
module Handle = struct
  let index_bits = 24
  let class_bits = 4
  let gen_shift = index_bits + class_bits
  let index_mask = (1 lsl index_bits) - 1
  let class_mask = (1 lsl class_bits) - 1
  let gen_mask = (1 lsl 33) - 1
  let max_classes = 1 lsl class_bits
  let max_capacity = 1 lsl index_bits

  let pack ~cls ~index ~gen =
    (gen lsl gen_shift) lor (cls lsl index_bits) lor index

  let index h = h land index_mask
  let cls h = (h lsr index_bits) land class_mask
  let gen h = h lsr gen_shift
end

type class_spec = {
  cc_capacity : int;
  cc_data_fields : int;
  cc_ptr_fields : int;
}

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  type aint = Rt.aint

  exception Exhausted = Exhausted

  let nil = -1

  type state = Free | Live | Retired

  (** Result of a generation-validated read.  [Stale] carries what the
      memory at the (recycled) address holds {e now} — never the data the
      handle's record held: foil schemes that knowingly race reclamation
      consume it, sound schemes treat [Stale] as a restart/failure
      signal. *)
  type read_result = Value of int | Stale of int

  (** Handles per magazine.  A full magazine is the unit of transfer
      between a thread's cache and the global depot. *)
  let mag_size = 32

  (** Fresh slots grabbed from the bump allocator per refill: half a
      magazine, so two threads racing the end of a class split it. *)
  let fresh_batch = mag_size / 2

  (** Per-thread occupancy deltas are published to the shared per-class
      counter every this many net operations (see module doc). *)
  let occ_batch = 8

  type mag = { slots : int array; mutable n : int }

  let new_mag () =
    Nbr_sync.Padded.copy_as_padded { slots = Array.make mag_size 0; n = 0 }

  (* Single-writer per-(class, thread) hot counters; padded so one
     thread's allocation rate never invalidates another's line. *)
  type tstat = {
    mutable t_allocs : int;
    mutable t_frees : int;
    mutable t_occ_delta : int;  (** unpublished +allocs −frees *)
    mutable t_frees_run : int;  (** consecutive frees since last alloc *)
  }

  type cls = {
    c_id : int;
    c_base : int;  (** flat-uid prefix: sum of preceding class capacities *)
    c_capacity : int;
    c_data_fields : int;
    c_ptr_fields : int;
    c_data : aint array array;  (** [c_data.(f).(index)] *)
    c_ptr : aint array array;
    c_lock : aint array;
    c_st : int array;  (** 0 = Free, 1 = Live, 2 = Retired *)
    c_gen : int array;  (** current generation; bumped on each free *)
    c_next_fresh : int Atomic.t;  (** bump allocator over never-used slots *)
    c_mags : mag Atomic.t array;
        (** per-thread magazine, detachable: {!flush_thread} (graceful
            leave, or a watchdog reaping a dead peer) exchanges the
            magazine out and flushes it to the depot, so a departed
            thread's cached handles are adopted, not leaked.  The owner
            re-reads the cell at every operation; the race window against
            a falsely-declared-dead owner waking {e mid-operation} is the
            same one [Lifecycle]'s reaping already documents and bounds. *)
    c_depot_full : mag Nbr_sync.Treiber.t;
        (** magazines with handles (full in steady state; partial ones
            arrive from {!flush_thread} and starvation flushes) *)
    c_depot_empty : mag Nbr_sync.Treiber.t;  (** recycled empty shells *)
    c_overflow : int Nbr_sync.Treiber.t;
        (** starvation hand-off: single handles, pushed by frees while
            any allocator is starving, popped by the pressure loop *)
    c_tstats : tstat array;
    c_in_use : int Atomic.t;  (** published Live + Retired slots *)
    c_peak_in_use : int Atomic.t;
    c_garbage : int Atomic.t;  (** Retired (unreclaimed); exact *)
    c_peak_garbage : int Atomic.t;
  }

  type t = {
    classes : cls array;
    total_capacity : int;
    nthreads : int;
    mutable gen_check : bool;
        (** ablation A4 ([Smr_config.unsafe_no_generation_check]) sets
            this false: validated reads stop failing with [Stale] and
            hand back recycled memory, pre-rewrite style.  Detection
            counters keep running either way. *)
    starving : int Atomic.t;
        (** threads currently inside the exhaustion retry loop.  While
            non-zero, frees are rerouted to the class overflow stack so
            that capacity released by {e any} thread can satisfy the
            starving ones (magazines are single-owner and invisible
            across threads). *)
    (* --- occupancy watermarks (background-reclamation trigger) --- *)
    mutable wm_lo : int;
    mutable wm_hi : int;  (** [max_int] = watermarks disabled *)
    mutable wm_hook : (unit -> unit) option;
    wm_state : int Atomic.t;  (** 1 while occupancy is above the high mark *)
    wm_trips : int Atomic.t;
    (* --- instrumentation (uncosted, shared slow-path counters) --- *)
    peak_total : int Atomic.t;  (** high-water mark of total occupancy *)
    pressure_events : int Atomic.t;
    alloc_retries : int Atomic.t;
    uaf_reads : int Atomic.t;
        (** generation-validation misses: guarded accesses through a
            stale handle (freed, or freed-and-recycled) *)
    depot_exchanges : int Atomic.t;  (** magazine pushes/pops at the depot *)
    c_alloc : int;  (** simulated cycles per malloc/free fast path *)
    slab_threshold : int;
        (** consecutive frees beyond which further frees take the slow
            path.  Models the allocator behaviour the paper holds
            responsible for EBR's throughput collapse (§7): when a
            delayed thread finally releases epochs, every thread frees
            its swollen limbo bags in a burst, overflowing per-thread
            arenas and hitting the allocator's slow paths.  Bounded
            schemes free in small steady batches and stay fast. *)
    c_free_slow : int;  (** extra cycles per slow-path free / depot trip *)
  }

  let mk_class ~nthreads ~base ~id spec =
    if spec.cc_capacity <= 0 || spec.cc_capacity > Handle.max_capacity then
      invalid_arg "Pool.create: class capacity";
    let cap = spec.cc_capacity in
    {
      c_id = id;
      c_base = base;
      c_capacity = cap;
      c_data_fields = spec.cc_data_fields;
      c_ptr_fields = spec.cc_ptr_fields;
      c_data =
        Array.init spec.cc_data_fields (fun _ ->
            Array.init cap (fun _ -> Rt.make 0));
      c_ptr =
        Array.init spec.cc_ptr_fields (fun _ ->
            Array.init cap (fun _ -> Rt.make nil));
      c_lock = Array.init cap (fun _ -> Rt.make 0);
      c_st = Array.make cap 0;
      c_gen = Array.make cap 0;
      c_next_fresh = Atomic.make 0;
      c_mags = Array.init nthreads (fun _ -> Atomic.make (new_mag ()));
      c_depot_full = Nbr_sync.Treiber.create ();
      c_depot_empty = Nbr_sync.Treiber.create ();
      c_overflow = Nbr_sync.Treiber.create ();
      c_tstats =
        Array.init nthreads (fun _ ->
            Nbr_sync.Padded.copy_as_padded
              { t_allocs = 0; t_frees = 0; t_occ_delta = 0; t_frees_run = 0 });
      c_in_use = Nbr_sync.Padded.make_atomic 0;
      c_peak_in_use = Nbr_sync.Padded.make_atomic 0;
      c_garbage = Nbr_sync.Padded.make_atomic 0;
      c_peak_garbage = Nbr_sync.Padded.make_atomic 0;
    }

  let create_classed ?(c_alloc = 30) ?(slab_threshold = 2048)
      ?(c_free_slow = 150) ~classes ~nthreads () =
    if Array.length classes = 0 || Array.length classes > Handle.max_classes
    then invalid_arg "Pool.create_classed: need 1..16 classes";
    let base = ref 0 in
    let cls =
      Array.mapi
        (fun id spec ->
          let c = mk_class ~nthreads ~base:!base ~id spec in
          base := !base + spec.cc_capacity;
          c)
        classes
    in
    {
      classes = cls;
      total_capacity = !base;
      nthreads;
      gen_check = true;
      starving = Atomic.make 0;
      wm_lo = 0;
      wm_hi = max_int;
      wm_hook = None;
      wm_state = Atomic.make 0;
      wm_trips = Atomic.make 0;
      peak_total = Atomic.make 0;
      pressure_events = Atomic.make 0;
      alloc_retries = Atomic.make 0;
      uaf_reads = Atomic.make 0;
      depot_exchanges = Atomic.make 0;
      c_alloc;
      slab_threshold;
      c_free_slow;
    }

  let create ?c_alloc ?slab_threshold ?c_free_slow ~capacity ~data_fields
      ~ptr_fields ~nthreads () =
    if capacity <= 0 then invalid_arg "Pool.create: capacity";
    create_classed ?c_alloc ?slab_threshold ?c_free_slow
      ~classes:
        [|
          {
            cc_capacity = capacity;
            cc_data_fields = data_fields;
            cc_ptr_fields = ptr_fields;
          };
        |]
      ~nthreads ()

  let capacity t = t.total_capacity
  let nclasses t = Array.length t.classes
  let class_capacity t i = t.classes.(i).c_capacity
  let set_generation_check t b = t.gen_check <- b

  (* ---------------- handle decoding ---------------- *)

  (* [addr] maps {e any} int onto a real (class, index) address: a handle
     that does not name one — [nil], a truncated mark-tag word, garbage
     read from recycled memory — collapses onto class 0 / index 0.  This
     is the never-unmapped-arena semantics of DESIGN.md §3: dereferencing
     a dangling address reads {e some} arena memory and returns garbage,
     it never faults.  Only the peek tier (cell accessors, [Stale]
     payloads) goes through the collapse; validated accessors reject such
     handles as [Stale] first, which is the whole point of the
     generational rewrite. *)
  let addr t h =
    let c =
      let ci = Handle.cls h in
      if h < 0 || ci >= Array.length t.classes then t.classes.(0)
      else t.classes.(ci)
    in
    let i = Handle.index h in
    if i >= c.c_capacity then (c, 0) else (c, i)

  (** A handle is valid iff it names a class/index that exists and its
      packed generation matches the slot's current one.  Every [free]
      bumps the generation, so validity implies the record this handle
      was minted for has not been freed since. *)
  let valid t h =
    h >= 0
    && Handle.cls h < Array.length t.classes
    &&
    let c = t.classes.(Handle.cls h) in
    let i = Handle.index h in
    i < c.c_capacity && c.c_gen.(i) = Handle.gen h

  (** Stable flat index in [0, capacity): per-record metadata arrays
      (IBR/HE birth eras, RCU retire epochs) index by this, so they stay
      dense across size-classes and survive generation bumps. *)
  let uid t h =
    let c, i = addr t h in
    c.c_base + i

  let note_stale t h =
    Atomic.incr t.uaf_reads;
    if !Nbr_obs.Trace.fine then begin
      let c, i = addr t h in
      Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
        Nbr_obs.Trace.Stale_handle h c.c_gen.(i)
    end

  (* ---------------- occupancy accounting ---------------- *)

  (* Monotone max via CAS loop (the PR 2 lost-update fix, now applied per
     class and to the total): two racing threads may both read a stale
     peak, and a plain store would let the smaller writer land last,
     permanently under-reporting the high-water mark E2 reads. *)
  let rec note_peak cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then note_peak cell v

  (** Published total occupancy across classes (within
      [occ_batch * nthreads] of exact while threads are running). *)
  let occupancy t =
    Array.fold_left (fun acc c -> acc + Atomic.get c.c_in_use) 0 t.classes

  let exact_class_in_use c =
    Array.fold_left
      (fun acc (ts : tstat) -> acc + ts.t_occ_delta)
      (Atomic.get c.c_in_use) c.c_tstats

  let exact_in_use t =
    Array.fold_left (fun acc c -> acc + exact_class_in_use c) 0 t.classes

  let garbage_total t =
    Array.fold_left (fun acc c -> acc + Atomic.get c.c_garbage) 0 t.classes

  let sum_tstats t f =
    Array.fold_left
      (fun acc c ->
        Array.fold_left (fun acc ts -> acc + f ts) acc c.c_tstats)
      0 t.classes

  (* ---------------- occupancy watermarks ---------------- *)

  let set_watermarks t ~lo ~hi ~on_high =
    if lo < 0 || hi <= lo || hi > t.total_capacity then
      invalid_arg "Pool.set_watermarks: need 0 <= lo < hi <= capacity";
    t.wm_lo <- lo;
    t.wm_hi <- hi;
    t.wm_hook <- Some on_high

  let clear_watermarks t =
    t.wm_lo <- 0;
    t.wm_hi <- max_int;
    t.wm_hook <- None;
    Atomic.set t.wm_state 0

  let wm_kick t = match t.wm_hook with None -> () | Some f -> f ()

  let pressured t = Atomic.get t.wm_state = 1

  (* Crossing detection is a single CAS-guarded state bit per direction:
     exactly one thread observes each upward crossing (emits the event,
     calls the hook), and re-arming waits for total occupancy across all
     classes to fall below the {e low} mark, so an occupancy hovering
     around [wm_hi] does not spam the reclaimer (standard hysteresis).
     Checked at occupancy-publication boundaries, so crossings are
     detected within [occ_batch] operations of the mark. *)
  let wm_note_high t v =
    if
      v >= t.wm_hi
      && Atomic.get t.wm_state = 0
      && Atomic.compare_and_set t.wm_state 0 1
    then begin
      Atomic.incr t.wm_trips;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Watermark_high v t.wm_hi;
      wm_kick t
    end

  let wm_note_low t =
    if Atomic.get t.wm_state = 1 then
      let v = occupancy t in
      if v <= t.wm_lo && Atomic.compare_and_set t.wm_state 1 0 then
        if !Nbr_obs.Trace.on then
          Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
            Nbr_obs.Trace.Watermark_low v t.wm_lo

  (** Fold a +/-1 occupancy change into the thread's unpublished delta;
      publish (one fetch-and-add on the class counter, peak CAS loops,
      watermark checks) every [occ_batch] net operations.  The fast path
      in steady state is two plain field writes. *)
  let bump_occ t c (ts : tstat) d =
    let nd = ts.t_occ_delta + d in
    if nd >= occ_batch || nd <= -occ_batch then begin
      ts.t_occ_delta <- 0;
      let v = Atomic.fetch_and_add c.c_in_use nd + nd in
      if nd > 0 then begin
        note_peak c.c_peak_in_use v;
        let total = occupancy t in
        note_peak t.peak_total total;
        wm_note_high t total
      end
      else wm_note_low t
    end
    else ts.t_occ_delta <- nd

  (** Publish a thread's residual delta unconditionally (pressure paths,
      thread departure): shared counters converge to exact. *)
  let publish_occ t c (ts : tstat) =
    let nd = ts.t_occ_delta in
    if nd <> 0 then begin
      ts.t_occ_delta <- 0;
      let v = Atomic.fetch_and_add c.c_in_use nd + nd in
      if nd > 0 then begin
        note_peak c.c_peak_in_use v;
        let total = occupancy t in
        note_peak t.peak_total total;
        wm_note_high t total
      end
      else wm_note_low t
    end

  (* ---------------- allocation ---------------- *)

  let max_pressure_attempts = 8

  let depot_trip t =
    Atomic.incr t.depot_exchanges;
    Rt.work t.c_free_slow

  (* Refill the (empty) installed magazine: a full magazine from the
     depot, else a batch of never-used slots from the bump allocator.
     Returns one handle and leaves the rest cached. *)
  let refill t c tid =
    match Nbr_sync.Treiber.pop c.c_depot_full with
    | Some m ->
        depot_trip t;
        let old = Atomic.exchange c.c_mags.(tid) m in
        Nbr_sync.Treiber.push c.c_depot_empty old;
        m.n <- m.n - 1;
        Some m.slots.(m.n)
    | None ->
        if Atomic.get c.c_next_fresh >= c.c_capacity then None
        else begin
          let s0 = Atomic.fetch_and_add c.c_next_fresh fresh_batch in
          let got = min fresh_batch (c.c_capacity - s0) in
          if got <= 0 then None
          else begin
            let mag = Atomic.get c.c_mags.(tid) in
            for k = 1 to got - 1 do
              let i = s0 + k in
              mag.slots.(mag.n) <-
                Handle.pack ~cls:c.c_id ~index:i ~gen:c.c_gen.(i);
              mag.n <- mag.n + 1
            done;
            Some (Handle.pack ~cls:c.c_id ~index:s0 ~gen:c.c_gen.(s0))
          end
        end

  let alloc ?(on_pressure = fun () -> ()) ?(cls = 0) t =
    Rt.work t.c_alloc;
    let tid = Rt.self () in
    let c = t.classes.(cls) in
    let ts = c.c_tstats.(tid) in
    ts.t_frees_run <- 0;
    let h =
      let mag = Atomic.get c.c_mags.(tid) in
      if mag.n > 0 then begin
        mag.n <- mag.n - 1;
        mag.slots.(mag.n)
      end
      else
        match refill t c tid with
        | Some h -> h
        | None ->
            (* Pressure path: announce starvation (rerouting concurrent
               frees to the shared overflow stack), ask the caller to
               flush its reclamation scheme, and retry with exponential
               backoff.  Only when [max_pressure_attempts] rounds of
               flush+backoff produce nothing do we conclude the pool is
               genuinely exhausted. *)
            (* Last nudge before the expensive machinery: a healthy
               background reclaimer woken here can turn the first
               flush+backoff round into a hit. *)
            publish_occ t c ts;
            wm_kick t;
            Atomic.incr t.starving;
            Atomic.incr t.pressure_events;
            if !Nbr_obs.Trace.on then
              Nbr_obs.Trace.emit ~tid ~ns:(Rt.now_ns ())
                Nbr_obs.Trace.Pool_starvation (exact_in_use t)
                (garbage_total t);
            Fun.protect ~finally:(fun () -> Atomic.decr t.starving)
            @@ fun () ->
            let rec retry attempt =
              Atomic.incr t.alloc_retries;
              on_pressure ();
              match Nbr_sync.Treiber.pop c.c_overflow with
              | Some h -> h
              | None -> (
                  match refill t c tid with
                  | Some h -> h
                  | None ->
                      if attempt >= max_pressure_attempts then
                        raise
                          (Exhausted
                             {
                               x_capacity = t.total_capacity;
                               x_in_use = exact_in_use t;
                               x_garbage = garbage_total t;
                               x_allocs = sum_tstats t (fun s -> s.t_allocs);
                               x_frees = sum_tstats t (fun s -> s.t_frees);
                               x_attempts = attempt;
                             })
                      else begin
                        (* 2µs, 4µs, ... — gives competing threads
                           (native) or fibers (sim) room to release
                           capacity. *)
                        Rt.stall_ns (1000 lsl attempt);
                        retry (attempt + 1)
                      end)
            in
            retry 1
    in
    c.c_st.(Handle.index h) <- 1;
    ts.t_allocs <- ts.t_allocs + 1;
    bump_occ t c ts 1;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Alloc_slot h
        (Handle.gen h);
    h

  (** Mark a record as retired (unlinked, awaiting reclamation).  Called
      by the SMR layer from [retire]; affects instrumentation only.  A
      stale handle (the record was already freed out from under the
      caller) is counted and ignored — retiring it again would corrupt
      the garbage accounting of the slot's {e current} occupant. *)
  let note_retired t h =
    if not (valid t h) then note_stale t h
    else begin
      let c, i = addr t h in
      if c.c_st.(i) <> 2 then begin
        c.c_st.(i) <- 2;
        let g = Atomic.fetch_and_add c.c_garbage 1 + 1 in
        note_peak c.c_peak_garbage g;
        if !Nbr_obs.Trace.fine then
          Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
            Nbr_obs.Trace.Retire h g
      end
    end

  (* Flush the thread's (full) magazine to the depot and install an empty
     shell, recycled from the depot when possible so steady-state frees
     allocate nothing. *)
  let flush_mag t c tid mag =
    depot_trip t;
    let shell =
      match Nbr_sync.Treiber.pop c.c_depot_empty with
      | Some m -> m
      | None -> new_mag ()
    in
    Atomic.set c.c_mags.(tid) shell;
    Nbr_sync.Treiber.push c.c_depot_full mag;
    shell

  (** Return a record to the allocator.  The handle dies here: the slot's
      generation is bumped (every outstanding copy of [h] becomes
      detectably stale) and a re-minted next-generation handle goes to
      the calling thread's magazine — or, while any allocator is
      starving, to the shared overflow stack, so the freed capacity is
      visible across threads.  Stale and double frees are a programming
      error and raise. *)
  let free t h =
    Rt.work t.c_alloc;
    if not (valid t h) then
      invalid_arg
        (Printf.sprintf "Pool.free: stale or double free of handle %d" h);
    let c, i = addr t h in
    let ts = c.c_tstats.(Rt.self ()) in
    if c.c_st.(i) = 2 then ignore (Atomic.fetch_and_add c.c_garbage (-1));
    c.c_st.(i) <- 0;
    let g = (Handle.gen h + 1) land Handle.gen_mask in
    c.c_gen.(i) <- g;
    let h' = Handle.pack ~cls:c.c_id ~index:i ~gen:g in
    ts.t_frees <- ts.t_frees + 1;
    bump_occ t c ts (-1);
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
        Nbr_obs.Trace.Free_slot h g;
    if Atomic.get t.starving > 0 then begin
      (* Cross-thread hand-off is an allocator slow path. *)
      Rt.work t.c_free_slow;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Pool_overflow h' 0;
      Nbr_sync.Treiber.push c.c_overflow h'
    end
    else begin
      (* Burst reclamation overflows the thread's arena: slow path. *)
      ts.t_frees_run <- ts.t_frees_run + 1;
      if ts.t_frees_run > t.slab_threshold then Rt.work t.c_free_slow;
      let tid = Rt.self () in
      let mag = Atomic.get c.c_mags.(tid) in
      let mag = if mag.n >= mag_size then flush_mag t c tid mag else mag in
      mag.slots.(mag.n) <- h';
      mag.n <- mag.n + 1
    end

  (** Flush a thread's magazines (every class) to the depot: called by
      the thread itself on graceful leave, or by a watchdog adopting a
      reaped peer's cached capacity.  Also publishes the thread's
      residual occupancy deltas so the shared counters converge. *)
  let flush_thread t ~tid =
    Array.iter
      (fun c ->
        let m = Atomic.exchange c.c_mags.(tid) (new_mag ()) in
        if m.n > 0 then begin
          depot_trip t;
          Nbr_sync.Treiber.push c.c_depot_full m
        end
        else Nbr_sync.Treiber.push c.c_depot_empty m;
        publish_occ t c c.c_tstats.(tid))
      t.classes

  (** Magazine fill of a thread's cache for one class (tests only). *)
  let magazine_fill t ~cls ~tid = (Atomic.get t.classes.(cls).c_mags.(tid)).n

  (* ---------------- field access ---------------- *)

  (* Three tiers (DESIGN.md §13):

     - {e validated} reads ([read_data] / [read_ptr] / [read_data_sync])
       check the handle's generation and fail with [Stale] — carrying
       the recycled memory's current contents — instead of handing back
       another record's data as if it were live.  The SMR layer's
       guarded read paths use these.
     - {e plain} accessors ([get_data] / [set_ptr] / ...) are for write
       phases and sequential code, where the record is reserved /
       protected and staleness is impossible for a sound scheme.  They
       still validate: a miss (foil schemes racing reclamation, a
       falsely-reaped thread resuming mid-write) is counted, traced, and
       then applied to the recycled memory — memory-safe, observable,
       never a crash.
     - {e cell} accessors ([data_cell] / [ptr_cell] / [lock_cell]) are
       address-of: they name the memory itself for CAS loops, spinlocks
       and the Harris list's raw tagged-word traversal, and perform no
       generation check.  Uses are instrumented at the call sites via
       {!record_read}.

     The pre-rewrite index-clamping guard ([deref]) is gone: handles
     carry their class and index, so there is no out-of-range index to
     clamp — only stale generations, which are detected, not papered
     over. *)

  let check t h =
    if t.gen_check && not (valid t h) then note_stale t h

  let data_cell t h f =
    let c, i = addr t h in
    c.c_data.(f).(i)

  let ptr_cell t h f =
    let c, i = addr t h in
    c.c_ptr.(f).(i)

  let lock_cell t h =
    let c, i = addr t h in
    c.c_lock.(i)

  (* A validated read that caught a stale handle: with the check on it
     fails gracefully ([Stale], traced as such but NOT as an [Access] —
     no freed data crossed over, so the sanitizer stays clean); with the
     A4 ablation the stale value {e commits}, which is a raw access to
     freed memory and is traced as one so the sanitizer's [uaf_access]
     rule can convict it. *)
  let stale_read t h st v =
    note_stale t h;
    if t.gen_check then Stale v
    else begin
      if !Nbr_obs.Trace.fine then
        Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Access h st;
      Value v
    end

  let read_data t h f =
    let c, i = addr t h in
    let v = Rt.plain_load c.c_data.(f).(i) in
    if valid t h then Value v else stale_read t h c.c_st.(i) v

  let read_data_sync t h f =
    let c, i = addr t h in
    let v = Rt.load c.c_data.(f).(i) in
    if valid t h then Value v else stale_read t h c.c_st.(i) v

  let read_ptr t h f =
    let c, i = addr t h in
    let v = Rt.load c.c_ptr.(f).(i) in
    if valid t h then Value v else stale_read t h c.c_st.(i) v

  let get_data t h f =
    check t h;
    let c, i = addr t h in
    Rt.plain_load c.c_data.(f).(i)

  let get_data_sync t h f =
    check t h;
    let c, i = addr t h in
    Rt.load c.c_data.(f).(i)

  let get_ptr t h f =
    check t h;
    let c, i = addr t h in
    Rt.load c.c_ptr.(f).(i)

  let set_data t h f v =
    check t h;
    let c, i = addr t h in
    Rt.store c.c_data.(f).(i) v

  let set_ptr t h f v =
    check t h;
    let c, i = addr t h in
    Rt.store c.c_ptr.(f).(i) v

  let cas_data t h f old v =
    check t h;
    let c, i = addr t h in
    Rt.cas c.c_data.(f).(i) old v

  let cas_ptr t h f old v =
    check t h;
    let c, i = addr t h in
    Rt.cas c.c_ptr.(f).(i) old v

  (* ---------------- instrumentation ---------------- *)

  (** Lifecycle state of the record a handle names: [Free] if the handle
      is stale (the record it was minted for is gone, whatever occupies
      the slot now). *)
  let state t h =
    if not (valid t h) then Free
    else
      let c, i = addr t h in
      match c.c_st.(i) with 0 -> Free | 1 -> Live | _ -> Retired

  (** Current generation of the slot a handle names (uncosted).  Equal to
      [Handle.gen h] iff the handle is still valid; bumped by each
      [free], so it is the ABA/UAF witness the tests read. *)
  let seqno t h =
    let c, i = addr t h in
    c.c_gen.(i)

  (** Costed lifecycle checks, for protection validation.  Hazard-style
      schemes must verify, after announcing, that the target "has not
      already been unlinked" (paper §2): link re-reading alone is not
      enough for structures where unlinking splices an {e ancestor} edge
      and leaves interior edges intact.  Real implementations read a mark
      bit the structure maintains; here the handle's generation plays
      that role, and the reads are charged like the cache-hit mark loads
      they model. *)
  let live t h =
    Rt.work 2;
    valid t h
    &&
    let c, i = addr t h in
    c.c_st.(i) = 1

  (** Current slot generation with an access charge: lets validators
      detect free-and-recycle (ABA on the slot) between two reads. *)
  let stamp t h =
    Rt.work 2;
    let c, i = addr t h in
    c.c_gen.(i)

  (** Called by the SMR layer when a guarded dereference lands on [h];
      counts reads through stale handles (freed, or freed-and-recycled —
      the generation comparison catches both, where the pre-rewrite
      state heuristic missed recycled slots) and returns whether this
      read was one, so the scheme can classify it committed vs benign in
      its own stats.  [nil] and other non-handles are address-of-nothing
      and not counted, as before.  For a sound scheme under the
      exact-delivery (sim) runtime this stays at zero; the [unsafe_free]
      foil drives it up. *)
  let record_read t h =
    let uaf = h >= 0 && not (valid t h) in
    if uaf then Atomic.incr t.uaf_reads;
    if h >= 0 && !Nbr_obs.Trace.fine then begin
      let c, i = addr t h in
      Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
        Nbr_obs.Trace.Access h c.c_st.(i)
    end;
    uaf

  type stats = {
    s_allocs : int;
    s_frees : int;
    s_in_use : int;
    s_peak_in_use : int;
    s_garbage : int;
    s_peak_garbage : int;
    s_pressure_events : int;
    s_alloc_retries : int;
    s_uaf_reads : int;
    s_wm_trips : int;
    s_depot_exchanges : int;
  }

  (* Exact at quiescence: shared counters plus per-thread residuals.  The
     published peak can trail the exact occupancy by up to one batch per
     thread, so reading stats folds the current exact value into the
     persistent peak — a reported peak never decays below any occupancy a
     previous [stats] call observed. *)
  let stats t =
    let in_use = exact_in_use t in
    note_peak t.peak_total in_use;
    {
      s_allocs = sum_tstats t (fun s -> s.t_allocs);
      s_frees = sum_tstats t (fun s -> s.t_frees);
      s_in_use = in_use;
      s_peak_in_use = Atomic.get t.peak_total;
      s_garbage = garbage_total t;
      s_peak_garbage =
        Array.fold_left
          (fun acc c -> acc + Atomic.get c.c_peak_garbage)
          0 t.classes;
      s_pressure_events = Atomic.get t.pressure_events;
      s_alloc_retries = Atomic.get t.alloc_retries;
      s_uaf_reads = Atomic.get t.uaf_reads;
      s_wm_trips = Atomic.get t.wm_trips;
      s_depot_exchanges = Atomic.get t.depot_exchanges;
    }

  type class_stats = {
    k_capacity : int;
    k_in_use : int;
    k_peak_in_use : int;
    k_garbage : int;
    k_peak_garbage : int;
    k_allocs : int;
    k_frees : int;
  }

  let class_stats t i =
    let c = t.classes.(i) in
    let in_use = exact_class_in_use c in
    note_peak c.c_peak_in_use in_use;
    {
      k_capacity = c.c_capacity;
      k_in_use = in_use;
      k_peak_in_use = Atomic.get c.c_peak_in_use;
      k_garbage = Atomic.get c.c_garbage;
      k_peak_garbage = Atomic.get c.c_peak_garbage;
      k_allocs =
        Array.fold_left (fun acc ts -> acc + ts.t_allocs) 0 c.c_tstats;
      k_frees = Array.fold_left (fun acc ts -> acc + ts.t_frees) 0 c.c_tstats;
    }

  (** Reset the high-water marks to the current values (called after
      prefill so E2 measures steady-state peaks, not setup). *)
  let reset_peak t =
    Array.iter
      (fun c ->
        Atomic.set c.c_peak_in_use (exact_class_in_use c);
        Atomic.set c.c_peak_garbage (Atomic.get c.c_garbage))
      t.classes;
    Atomic.set t.peak_total (exact_in_use t)
end
