(** Simulated manual memory: a pool of fixed-shape records.

    OCaml is garbage-collected, so "freeing" a record cannot unmap it.  To
    reproduce an SMR paper we need memory that is explicitly allocated and
    freed, where a slot freed too early gets recycled under a reader's feet
    — i.e. real use-after-free dynamics, minus the segfault.  The pool
    provides exactly that:

    - Records are integer slots into pre-allocated field arrays (an index is
      the "pointer"; following a stale index is always memory-safe, exactly
      like reading jemalloc-recycled memory that was never unmapped — the
      situation the paper's own safety argument leans on).
    - [alloc] pops a per-thread free list (falling back to a bump allocator
      over fresh slots); [free] pushes back and bumps the slot's allocation
      sequence number, so ABA and use-after-free are {e observable}.
    - Lifecycle instrumentation mirrors the paper's five record states
      (§3): we track Free / Live / Retired, count reads of freed slots, and
      maintain the in-use high-water mark that experiment E2 (figures
      4c/4d) reports as "peak memory usage".

    Instrumentation (states, sequence numbers, counters) is deliberately
    kept in plain arrays and stdlib [Atomic]s rather than [Rt.aint]s: it
    must not perturb the simulated cost accounting, because a real
    implementation has no such checks.  Races on the plain arrays are
    benign (they only feed detectors and tests).

    Exhaustion is {e graceful}: [alloc] first invokes the caller-supplied
    reclamation flush ([?on_pressure]), announces itself as starving (which
    reroutes concurrent frees to a shared overflow stack any thread can
    pop), and retries with exponential backoff before giving up with an
    {!Exhausted} diagnosis.  See DESIGN.md "Fault model". *)

type exhausted_info = {
  x_capacity : int;
  x_in_use : int;  (** Live + Retired slots at the moment of failure *)
  x_garbage : int;  (** Retired-but-unreclaimed slots *)
  x_allocs : int;
  x_frees : int;
  x_attempts : int;  (** pressure-loop retries performed before giving up *)
}

exception Exhausted of exhausted_info
(** Raised by [alloc] only after the pressure retry loop fails — shared by
    every [Make] instance so CLI entry points can catch it uniformly. *)

let pp_exhausted ppf x =
  Format.fprintf ppf
    "pool exhausted: capacity=%d in_use=%d garbage=%d allocs=%d frees=%d \
     (gave up after %d reclamation-flush retries)"
    x.x_capacity x.x_in_use x.x_garbage x.x_allocs x.x_frees x.x_attempts

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  type aint = Rt.aint

  exception Exhausted = Exhausted

  let nil = -1

  type state = Free | Live | Retired

  type t = {
    capacity : int;
    data_fields : int;
    ptr_fields : int;
    data : aint array array;  (** [data.(f).(slot)] *)
    ptr : aint array array;  (** [ptr.(f).(slot)] *)
    lock : aint array;  (** per-record lock word *)
    (* --- free-space management --- *)
    free_lists : Nbr_sync.Int_vec.t array;  (** per-thread *)
    next_fresh : int Atomic.t;  (** bump allocator over never-used slots *)
    (* --- pool-pressure degradation --- *)
    starving : int Atomic.t;
        (** threads currently inside the exhaustion retry loop.  While
            non-zero, frees are rerouted to [overflow] so that capacity
            released by {e any} thread can satisfy the starving ones
            (per-thread free lists are single-owner and invisible across
            threads). *)
    overflow : int Nbr_sync.Treiber.t;
        (** shared free stack, lock-free.  This path only runs while some
            thread is starving — exactly when a lock would be worst: a
            descheduled lock holder would block every thread trying to
            donate or claim capacity.  Treiber push/pop keep the hand-off
            non-blocking; the cost of the cross-thread transfer is still
            modelled explicitly with [Rt.work c_free_slow]. *)
    (* --- occupancy watermarks (background-reclamation trigger) --- *)
    mutable wm_lo : int;
    mutable wm_hi : int;  (** [max_int] = watermarks disabled *)
    mutable wm_hook : (unit -> unit) option;
        (** called (outside any lock) on each high-watermark crossing and
            on pressure-path entry: a cheap nudge for a background
            reclaimer, never a reclamation pass itself *)
    wm_state : int Atomic.t;  (** 1 while occupancy is above the high mark *)
    wm_trips : int Atomic.t;  (** high-watermark crossings *)
    (* --- instrumentation (uncosted) --- *)
    st : int array;  (** 0 = Free, 1 = Live, 2 = Retired *)
    seqno : int array;  (** bumped on each free: ABA/UAF witness *)
    in_use : int Atomic.t;  (** Live + Retired (unreclaimed) slots *)
    peak_in_use : int Atomic.t;
    garbage : int Atomic.t;  (** Retired (unreclaimed) slots *)
    peak_garbage : int Atomic.t;
        (** high-water mark of [garbage]: the bounded-garbage invariant of
            the E2 suite is a cap on this, independent of live-set size *)
    allocs : int Atomic.t;
    frees : int Atomic.t;
    pressure_events : int Atomic.t;  (** allocs that entered the retry loop *)
    alloc_retries : int Atomic.t;  (** total retry iterations across them *)
    uaf_reads : int Atomic.t;  (** guarded reads that hit a Free slot *)
    c_alloc : int;  (** simulated cycles per malloc/free fast path *)
    slab_threshold : int;
        (** free-list length beyond which frees take the slow path.
            Models the allocator behaviour the paper holds responsible for
            EBR's throughput collapse (§7): when a delayed thread finally
            releases epochs, every thread frees its swollen limbo bags in
            a burst, overflowing per-thread arenas and hitting the
            allocator's slow paths.  Bounded schemes free in small steady
            batches and stay on the fast path. *)
    c_free_slow : int;  (** extra cycles per slow-path free *)
  }

  let create ?(c_alloc = 30) ?(slab_threshold = 2048) ?(c_free_slow = 150)
      ~capacity ~data_fields ~ptr_fields ~nthreads () =
    if capacity <= 0 then invalid_arg "Pool.create: capacity";
    {
      capacity;
      data_fields;
      ptr_fields;
      data =
        Array.init data_fields (fun _ ->
            Array.init capacity (fun _ -> Rt.make 0));
      ptr =
        Array.init ptr_fields (fun _ ->
            Array.init capacity (fun _ -> Rt.make nil));
      lock = Array.init capacity (fun _ -> Rt.make 0);
      free_lists =
        Array.init nthreads (fun _ -> Nbr_sync.Int_vec.create ~capacity:64 ());
      next_fresh = Atomic.make 0;
      starving = Atomic.make 0;
      overflow = Nbr_sync.Treiber.create ();
      wm_lo = 0;
      wm_hi = max_int;
      wm_hook = None;
      wm_state = Atomic.make 0;
      wm_trips = Atomic.make 0;
      st = Array.make capacity 0;
      seqno = Array.make capacity 0;
      in_use = Atomic.make 0;
      peak_in_use = Atomic.make 0;
      garbage = Atomic.make 0;
      peak_garbage = Atomic.make 0;
      allocs = Atomic.make 0;
      frees = Atomic.make 0;
      pressure_events = Atomic.make 0;
      alloc_retries = Atomic.make 0;
      uaf_reads = Atomic.make 0;
      c_alloc;
      slab_threshold;
      c_free_slow;
    }

  let capacity t = t.capacity

  (* ---------------- occupancy watermarks ---------------- *)

  let set_watermarks t ~lo ~hi ~on_high =
    if lo < 0 || hi <= lo || hi > t.capacity then
      invalid_arg "Pool.set_watermarks: need 0 <= lo < hi <= capacity";
    t.wm_lo <- lo;
    t.wm_hi <- hi;
    t.wm_hook <- Some on_high

  let clear_watermarks t =
    t.wm_lo <- 0;
    t.wm_hi <- max_int;
    t.wm_hook <- None;
    Atomic.set t.wm_state 0

  let wm_kick t = match t.wm_hook with None -> () | Some f -> f ()

  (* Crossing detection is a single CAS-guarded state bit per direction:
     exactly one thread observes each upward crossing (emits the event,
     calls the hook), and re-arming waits for occupancy to fall below the
     {e low} mark, so an occupancy hovering around [wm_hi] does not spam
     the reclaimer (standard hysteresis). *)
  let wm_note_high t v =
    if
      v >= t.wm_hi
      && Atomic.get t.wm_state = 0
      && Atomic.compare_and_set t.wm_state 0 1
    then begin
      Atomic.incr t.wm_trips;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Watermark_high v t.wm_hi;
      wm_kick t
    end

  let wm_note_low t =
    if
      Atomic.get t.wm_state = 1
      && Atomic.get t.in_use <= t.wm_lo
      && Atomic.compare_and_set t.wm_state 1 0
    then
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Watermark_low (Atomic.get t.in_use) t.wm_lo

  (* ---------------- allocation ---------------- *)

  (* Monotone max via CAS loop.  The old load-then-store version had a
     lost-update race: two threads could both read a stale peak and the
     smaller writer could land last, permanently under-reporting the
     high-water mark that the E2 bounded-garbage acceptance checks read. *)
  let rec note_peak cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then note_peak cell v

  let note_in_use t =
    let v = Atomic.fetch_and_add t.in_use 1 + 1 in
    note_peak t.peak_in_use v;
    wm_note_high t v

  (* Cheap sources, in order: the caller's own free list, then the bump
     allocator over never-used slots. *)
  let try_fast t tid =
    let fl = t.free_lists.(tid) in
    if not (Nbr_sync.Int_vec.is_empty fl) then Some (Nbr_sync.Int_vec.pop fl)
    else if Atomic.get t.next_fresh < t.capacity then begin
      let s = Atomic.fetch_and_add t.next_fresh 1 in
      if s < t.capacity then Some s else None
    end
    else None

  let try_overflow t = Nbr_sync.Treiber.pop t.overflow

  let max_pressure_attempts = 8

  let alloc ?(on_pressure = fun () -> ()) t =
    Rt.work t.c_alloc;
    let tid = Rt.self () in
    let slot =
      match try_fast t tid with
      | Some s -> s
      | None ->
          (* Pressure path: announce starvation (rerouting concurrent frees
             to the shared overflow stack), ask the caller to flush its
             reclamation scheme, and retry with exponential backoff.  Only
             when [max_pressure_attempts] rounds of flush+backoff produce
             nothing do we conclude the pool is genuinely exhausted. *)
          (* Last nudge before the expensive machinery: a healthy
             background reclaimer woken here can turn the first
             flush+backoff round into a hit. *)
          wm_kick t;
          Atomic.incr t.starving;
          Atomic.incr t.pressure_events;
          if !Nbr_obs.Trace.on then
            Nbr_obs.Trace.emit ~tid ~ns:(Rt.now_ns ())
              Nbr_obs.Trace.Pool_starvation (Atomic.get t.in_use)
              (Atomic.get t.garbage);
          Fun.protect ~finally:(fun () -> Atomic.decr t.starving) @@ fun () ->
          let rec retry attempt =
            Atomic.incr t.alloc_retries;
            on_pressure ();
            match try_overflow t with
            | Some s -> s
            | None -> (
                match try_fast t tid with
                | Some s -> s
                | None ->
                    if attempt >= max_pressure_attempts then
                      raise
                        (Exhausted
                           {
                             x_capacity = t.capacity;
                             x_in_use = Atomic.get t.in_use;
                             x_garbage = Atomic.get t.garbage;
                             x_allocs = Atomic.get t.allocs;
                             x_frees = Atomic.get t.frees;
                             x_attempts = attempt;
                           })
                    else begin
                      (* 2µs, 4µs, ... — gives competing threads (native)
                         or fibers (sim) room to release capacity. *)
                      Rt.stall_ns (1000 lsl attempt);
                      retry (attempt + 1)
                    end)
          in
          retry 1
    in
    t.st.(slot) <- 1;
    Atomic.incr t.allocs;
    note_in_use t;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid ~ns:(Rt.now_ns ()) Nbr_obs.Trace.Alloc_slot slot
        t.seqno.(slot);
    slot

  (** Mark a slot as retired (unlinked, awaiting reclamation).  Called by
      the SMR layer from [retire]; affects instrumentation only. *)
  let note_retired t slot =
    if t.st.(slot) <> 2 then begin
      t.st.(slot) <- 2;
      let g = Atomic.fetch_and_add t.garbage 1 + 1 in
      note_peak t.peak_garbage g;
      if !Nbr_obs.Trace.fine then
        Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Retire slot g
    end

  (** Return a slot to a free list: the calling thread's own, or — while
      any allocator is starving — the shared overflow stack, so the freed
      capacity is visible across threads.  Double frees are a programming
      error and raise. *)
  let free t slot =
    Rt.work t.c_alloc;
    if t.st.(slot) = 0 then
      invalid_arg (Printf.sprintf "Pool.free: double free of slot %d" slot);
    if t.st.(slot) = 2 then Atomic.decr t.garbage;
    t.st.(slot) <- 0;
    t.seqno.(slot) <- t.seqno.(slot) + 1;
    Atomic.incr t.frees;
    Atomic.decr t.in_use;
    wm_note_low t;
    if !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
        Nbr_obs.Trace.Free_slot slot t.seqno.(slot);
    if Atomic.get t.starving > 0 then begin
      (* Cross-thread hand-off is an allocator slow path. *)
      Rt.work t.c_free_slow;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Pool_overflow slot 0;
      Nbr_sync.Treiber.push t.overflow slot
    end
    else begin
      let fl = t.free_lists.(Rt.self ()) in
      (* Burst reclamation overflows the thread's arena: slow path. *)
      if Nbr_sync.Int_vec.length fl > t.slab_threshold then
        Rt.work t.c_free_slow;
      Nbr_sync.Int_vec.push fl slot
    end

  (* ---------------- field access ---------------- *)

  (* Stale-index dereference guard.  In a polling runtime a reader may, in
     the window between its last poll and the neutralization that aborts
     it, follow a pointer value read from a freed-and-recycled slot —
     including [nil] (a recycled leaf's child).  Real hardware reads the
     never-unmapped arena at a garbage offset and returns garbage; we do
     the same by redirecting any out-of-range index to slot 0.  The value
     read is garbage either way and is never committed: the pending
     neutralization (sent before the free) restarts the phase at the next
     poll or at [end_read] (DESIGN.md §3).  Read-side accessors use the
     guard; write-side accessors stay strict, because writers only touch
     validated, reserved records. *)
  let deref t slot = if slot >= 0 && slot < t.capacity then slot else 0

  let data_cell t slot f = t.data.(f).(deref t slot)
  let ptr_cell t slot f = t.ptr.(f).(deref t slot)
  let lock_cell t slot = t.lock.(slot)

  let get_data t slot f = Rt.plain_load t.data.(f).(deref t slot)
  let set_data t slot f v = Rt.store t.data.(f).(slot) v
  let get_data_sync t slot f = Rt.load t.data.(f).(deref t slot)
  let cas_data t slot f old v = Rt.cas t.data.(f).(slot) old v

  let get_ptr t slot f = Rt.load t.ptr.(f).(deref t slot)
  let set_ptr t slot f v = Rt.store t.ptr.(f).(slot) v
  let cas_ptr t slot f old v = Rt.cas t.ptr.(f).(slot) old v

  (* ---------------- instrumentation ---------------- *)

  let state t slot =
    match t.st.(slot) with 0 -> Free | 1 -> Live | _ -> Retired

  let seqno t slot = t.seqno.(slot)

  (** Costed lifecycle checks, for protection validation.  Hazard-style
      schemes must verify, after announcing, that the target "has not
      already been unlinked" (paper §2): link re-reading alone is not
      enough for structures where unlinking splices an {e ancestor} edge
      and leaves interior edges intact (DGT delete removes the parent via
      the grandparent, so [p -> leaf] survives the leaf's retirement).
      Real implementations read a mark bit the structure maintains; here
      the pool's lifecycle state plays that role, and the reads are
      charged like the cache-hit mark loads they model. *)
  let live t slot =
    Rt.work 2;
    t.st.(deref t slot) = 1 && slot >= 0

  (** Allocation stamp with an access charge: lets validators detect
      free-and-recycle (ABA on the slot) between two reads. *)
  let stamp t slot =
    Rt.work 2;
    t.seqno.(deref t slot)

  (** Called by the SMR layer when a guarded dereference lands on [slot];
      counts reads that hit freed memory and returns whether this read
      was one (so the scheme can classify it committed vs benign in its
      own stats).  For a sound scheme under the exact-delivery (sim)
      runtime this stays at zero; the [unsafe_free] foil drives it up. *)
  let record_read t slot =
    let in_range = slot >= 0 && slot < t.capacity in
    let uaf = in_range && t.st.(slot) = 0 in
    if uaf then Atomic.incr t.uaf_reads;
    if in_range && !Nbr_obs.Trace.fine then
      Nbr_obs.Trace.emit ~tid:(Rt.self ()) ~ns:(Rt.now_ns ())
        Nbr_obs.Trace.Access slot t.st.(slot);
    uaf

  type stats = {
    s_allocs : int;
    s_frees : int;
    s_in_use : int;
    s_peak_in_use : int;
    s_garbage : int;
    s_peak_garbage : int;
    s_pressure_events : int;
    s_alloc_retries : int;
    s_uaf_reads : int;
    s_wm_trips : int;
  }

  let stats t =
    {
      s_allocs = Atomic.get t.allocs;
      s_frees = Atomic.get t.frees;
      s_in_use = Atomic.get t.in_use;
      s_peak_in_use = Atomic.get t.peak_in_use;
      s_garbage = Atomic.get t.garbage;
      s_peak_garbage = Atomic.get t.peak_garbage;
      s_pressure_events = Atomic.get t.pressure_events;
      s_alloc_retries = Atomic.get t.alloc_retries;
      s_uaf_reads = Atomic.get t.uaf_reads;
      s_wm_trips = Atomic.get t.wm_trips;
    }

  (** Reset the high-water marks to the current values (called after
      prefill so E2 measures steady-state peaks, not setup). *)
  let reset_peak t =
    Atomic.set t.peak_in_use (Atomic.get t.in_use);
    Atomic.set t.peak_garbage (Atomic.get t.garbage)
end
