(** Simulated manual memory: a pool of fixed-shape records.

    OCaml is garbage-collected, so "freeing" a record cannot unmap it.
    The pool provides explicitly allocated and freed memory where a slot
    freed too early gets recycled under a reader's feet — real
    use-after-free dynamics, minus the segfault.  Records are integer
    slots into pre-allocated field arrays; following a stale index is
    always memory-safe, exactly like reading jemalloc-recycled memory
    that was never unmapped (the situation the paper's own safety
    argument leans on).

    Exhaustion is graceful: [alloc] invokes the caller-supplied
    reclamation flush, announces itself as starving (rerouting concurrent
    frees to a shared overflow stack), and retries with exponential
    backoff before giving up with {!Exhausted}.  See DESIGN.md
    "Fault model". *)

type exhausted_info = {
  x_capacity : int;
  x_in_use : int;  (** Live + Retired slots at the moment of failure *)
  x_garbage : int;  (** Retired-but-unreclaimed slots *)
  x_allocs : int;
  x_frees : int;
  x_attempts : int;  (** pressure-loop retries performed before giving up *)
}

exception Exhausted of exhausted_info
(** Raised by [alloc] only after the pressure retry loop fails — shared
    by every {!Make} instance so CLI entry points can catch it
    uniformly. *)

val pp_exhausted : Format.formatter -> exhausted_info -> unit

module Make (Rt : Nbr_runtime.Runtime_intf.S) : sig
  type aint = Rt.aint

  exception Exhausted of exhausted_info
  (** Alias of the top-level {!exception-Exhausted}. *)

  type t
  (** A pool instance.  All mutation goes through the functions below;
      the representation (field arrays, free lists, instrumentation
      counters) is private to the implementation. *)

  val nil : int
  (** The null "pointer" (-1). *)

  val create :
    ?c_alloc:int ->
    ?slab_threshold:int ->
    ?c_free_slow:int ->
    capacity:int ->
    data_fields:int ->
    ptr_fields:int ->
    nthreads:int ->
    unit ->
    t
  (** [c_alloc] is the simulated cycle cost of the malloc/free fast
      path; frees past [slab_threshold] entries on a thread's free list
      (burst reclamation overflowing its arena) and cross-thread
      hand-offs pay [c_free_slow] extra. *)

  val capacity : t -> int

  (** {1 Occupancy watermarks}

      A memory-pressure early-warning line for background reclamation:
      when occupancy (Live + Retired slots) crosses [hi], the pool emits
      a [Watermark_high] trace event and calls [on_high] — once per
      excursion, re-armed only after occupancy falls back below [lo]
      (hysteresis), and again on each entry to the allocation pressure
      path.  The hook must be cheap and non-blocking (typically an
      atomic nudge waking a reclaimer); it runs on whichever thread
      crossed the mark and must never reclaim inline itself. *)

  val set_watermarks : t -> lo:int -> hi:int -> on_high:(unit -> unit) -> unit
  (** Requires [0 <= lo < hi <= capacity]; raises [Invalid_argument]
      otherwise.  Replaces any previous watermark configuration. *)

  val clear_watermarks : t -> unit
  (** Disable watermark tracking and drop the hook. *)

  (** {1 Lifecycle} *)

  val alloc : ?on_pressure:(unit -> unit) -> t -> int
  (** Allocate a slot: the caller's own free list, then fresh slots, and
      under exhaustion the pressure loop — announce starvation, call
      [on_pressure] (the SMR scheme's flush), retry with backoff, and
      raise {!Exhausted} only when repeated flushes yield nothing. *)

  val note_retired : t -> int -> unit
  (** Mark a slot retired (unlinked, awaiting reclamation).  Called by
      the SMR layer from [retire]; affects instrumentation only. *)

  val free : t -> int -> unit
  (** Return a slot to a free list: the calling thread's own, or — while
      any allocator is starving — the shared overflow stack, so freed
      capacity is visible across threads.  Double frees raise
      [Invalid_argument]. *)

  (** {1 Field access}

      Read-side accessors redirect out-of-range indices to slot 0 (the
      never-unmapped-arena semantics of DESIGN.md §3); write-side
      accessors stay strict, because writers only touch validated,
      reserved records. *)

  val data_cell : t -> int -> int -> aint
  val ptr_cell : t -> int -> int -> aint
  val lock_cell : t -> int -> aint
  val get_data : t -> int -> int -> int
  val set_data : t -> int -> int -> int -> unit
  val get_data_sync : t -> int -> int -> int
  val cas_data : t -> int -> int -> int -> int -> bool
  val get_ptr : t -> int -> int -> int
  val set_ptr : t -> int -> int -> int -> unit
  val cas_ptr : t -> int -> int -> int -> int -> bool

  (** {1 Instrumentation} *)

  type state = Free | Live | Retired

  val state : t -> int -> state

  val seqno : t -> int -> int
  (** Allocation stamp, bumped on each free: the ABA/UAF witness. *)

  val live : t -> int -> bool
  (** Costed lifecycle check for protection validation (hazard-style
      schemes): whether the slot is currently Live.  Charged like the
      cache-hit mark load it models. *)

  val stamp : t -> int -> int
  (** {!seqno} with an access charge: lets validators detect
      free-and-recycle (ABA on the slot) between two reads. *)

  val record_read : t -> int -> bool
  (** Called by the SMR layer when a guarded dereference lands on a
      slot; counts reads that hit freed memory (and, when fine-grained
      tracing is on, emits an [Access] event).  Returns [true] iff this
      read hit a Free slot, so the scheme can classify it committed vs
      benign in its own {!Nbr_core.Smr_stats}.  Zero hits for a sound
      scheme under the exact-delivery (sim) runtime. *)

  type stats = {
    s_allocs : int;
    s_frees : int;
    s_in_use : int;
    s_peak_in_use : int;
    s_garbage : int;
    s_peak_garbage : int;
    s_pressure_events : int;
    s_alloc_retries : int;
    s_uaf_reads : int;
    s_wm_trips : int;  (** high-watermark crossings (see above) *)
  }

  val stats : t -> stats

  val reset_peak : t -> unit
  (** Reset the high-water marks to the current values (called after
      prefill so E2 measures steady-state peaks, not setup). *)
end
