(** Simulated manual memory: a pool of fixed-shape records behind
    generational handles.

    OCaml is garbage-collected, so "freeing" a record cannot unmap it.
    The pool provides explicitly allocated and freed memory where a slot
    freed too early gets recycled under a reader's feet — real
    use-after-free dynamics, minus the segfault.  A record is named by a
    {e generational handle}: one immutable int packing
    [(generation, size_class, index)] (see {!Handle}).  [free] bumps the
    slot's generation, so every previously-minted handle becomes
    {e detectably stale}: validated accessors return {!Make.Stale}
    (carrying what the recycled memory holds {e now}, never the dead
    record's data) instead of silently reading another record — the
    version-counter substrate VBR (arXiv 2107.13843) builds reclamation
    out of.

    Records live in {e size-classes} (per-class slot widths and
    capacities), and allocation is two-level in the Bonwick magazine
    style: a per-thread, padded magazine of ready handles per class,
    backed by a lock-free depot of full/empty magazines, so steady-state
    [alloc]/[free] touches only thread-local state.

    Exhaustion is graceful: [alloc] invokes the caller-supplied
    reclamation flush, announces itself as starving (rerouting concurrent
    frees to a shared per-class overflow stack), and retries with
    exponential backoff before giving up with {!Exhausted}.  See DESIGN.md
    "Fault model" and §13 "Pool architecture". *)

type exhausted_info = {
  x_capacity : int;
  x_in_use : int;  (** Live + Retired slots at the moment of failure *)
  x_garbage : int;  (** Retired-but-unreclaimed slots *)
  x_allocs : int;
  x_frees : int;
  x_attempts : int;  (** pressure-loop retries performed before giving up *)
}

exception Exhausted of exhausted_info
(** Raised by [alloc] only after the pressure retry loop fails — shared
    by every {!Make} instance so CLI entry points can catch it
    uniformly. *)

val pp_exhausted : Format.formatter -> exhausted_info -> unit

(** Handle packing: [(generation lsl 28) lor (size_class lsl 24) lor index].
    24 index bits, 4 class bits, 33 generation bits — handles stay below
    2^61 so they survive mark-tagging ([h lsl 1]) in OCaml's 63-bit int.
    Handles are opaque to well-behaved clients; the codec is exposed for
    tests and for the Harris list's tagged-word encoding. *)
module Handle : sig
  val index_bits : int
  val class_bits : int
  val gen_shift : int
  val gen_mask : int
  val max_classes : int
  val max_capacity : int
  val pack : cls:int -> index:int -> gen:int -> int
  val index : int -> int
  val cls : int -> int
  val gen : int -> int
end

type class_spec = {
  cc_capacity : int;  (** slots in this class (1 .. 2^24) *)
  cc_data_fields : int;
  cc_ptr_fields : int;
}

module Make (Rt : Nbr_runtime.Runtime_intf.S) : sig
  type aint = Rt.aint

  exception Exhausted of exhausted_info
  (** Alias of the top-level {!exception-Exhausted}. *)

  type t
  (** A pool instance.  All mutation goes through the functions below;
      the representation (field arrays, magazines, depots,
      instrumentation counters) is private to the implementation. *)

  val nil : int
  (** The null "pointer" (-1).  Never a packable handle. *)

  (** Result of a generation-validated read: [Stale] means the handle's
      record was freed; the payload is the recycled memory's current
      contents (for foil schemes that knowingly race reclamation — sound
      schemes treat [Stale] as a restart/failure signal). *)
  type read_result = Value of int | Stale of int

  val create :
    ?c_alloc:int ->
    ?slab_threshold:int ->
    ?c_free_slow:int ->
    capacity:int ->
    data_fields:int ->
    ptr_fields:int ->
    nthreads:int ->
    unit ->
    t
  (** Single-size-class pool (class 0).  [c_alloc] is the simulated cycle
      cost of the malloc/free fast path; frees past [slab_threshold]
      consecutive frees (burst reclamation overflowing a thread's arena),
      cross-thread hand-offs and depot exchanges pay [c_free_slow]
      extra. *)

  val create_classed :
    ?c_alloc:int ->
    ?slab_threshold:int ->
    ?c_free_slow:int ->
    classes:class_spec array ->
    nthreads:int ->
    unit ->
    t
  (** Multi-size-class pool: one {!class_spec} per class, at most
      {!Handle.max_classes}. *)

  val capacity : t -> int
  (** Total capacity across all classes. *)

  val nclasses : t -> int
  val class_capacity : t -> int -> int

  val valid : t -> int -> bool
  (** Whether a handle's packed generation matches its slot's current
      one, i.e. the record it names has not been freed. *)

  val uid : t -> int -> int
  (** Stable flat index in [0, capacity) for the slot a handle names:
      per-record metadata arrays (IBR/HE birth eras, RCU retire epochs)
      index by this so they stay dense across size-classes. *)

  val set_generation_check : t -> bool -> unit
  (** Ablation A4 ([Smr_config.unsafe_no_generation_check]): with the
      check off, validated reads never return [Stale] and hand back
      recycled memory pre-rewrite style.  Detection counters still run. *)

  (** {1 Occupancy watermarks}

      A memory-pressure early-warning line for background reclamation:
      when total occupancy across classes (Live + Retired slots) crosses
      [hi], the pool emits a [Watermark_high] trace event and calls
      [on_high] — once per excursion, re-armed only after occupancy falls
      back below [lo] (hysteresis), and again on each entry to the
      allocation pressure path.  Occupancy is published in per-thread
      batches, so crossings are detected within a small slop (batch ×
      threads) of the mark.  The hook must be cheap and non-blocking
      (typically an atomic nudge waking a reclaimer); it runs on
      whichever thread crossed the mark and must never reclaim inline
      itself. *)

  val set_watermarks : t -> lo:int -> hi:int -> on_high:(unit -> unit) -> unit
  (** Requires [0 <= lo < hi <= capacity]; raises [Invalid_argument]
      otherwise.  Replaces any previous watermark configuration. *)

  val clear_watermarks : t -> unit
  (** Disable watermark tracking and drop the hook. *)

  val occupancy : t -> int
  (** Published total occupancy (slots in use) across all size classes.
      Occupancy is published in per-thread batches, so the value may
      trail the exact count by a small slop (batch × threads).  Cheap —
      one atomic load per class — and safe from any thread; intended as
      a health signal for admission control and circuit breakers. *)

  val pressured : t -> bool
  (** True while the pool sits in the high-watermark excursion (occupancy
      crossed [hi] and has not yet fallen back below [lo]).  Always false
      when no watermarks are configured.  One atomic load. *)

  (** {1 Lifecycle} *)

  val alloc : ?on_pressure:(unit -> unit) -> ?cls:int -> t -> int
  (** Allocate a record from size-class [cls] (default 0) and return its
      handle: the thread's magazine, then a depot/fresh refill, and under
      exhaustion the pressure loop — announce starvation, call
      [on_pressure] (the SMR scheme's flush), retry with backoff, and
      raise {!Exhausted} only when repeated flushes yield nothing. *)

  val note_retired : t -> int -> unit
  (** Mark a record retired (unlinked, awaiting reclamation).  Called by
      the SMR layer from [retire]; affects instrumentation only.  Stale
      handles are counted and ignored. *)

  val free : t -> int -> unit
  (** Return a record to the allocator.  Bumps the slot's generation
      (all outstanding handles become stale) and caches the re-minted
      handle in the thread's magazine — or, while any allocator is
      starving, pushes it to the shared per-class overflow stack so the
      capacity is visible across threads.  Stale and double frees raise
      [Invalid_argument]. *)

  val flush_thread : t -> tid:int -> unit
  (** Flush a thread's magazines (every class) to the depot and publish
      its residual occupancy deltas: called by the thread itself on
      graceful leave, or by a watchdog adopting a reaped peer's cached
      capacity so departed threads' magazines are never leaked. *)

  val magazine_fill : t -> cls:int -> tid:int -> int
  (** Number of handles in a thread's magazine for one class (tests). *)

  (** {1 Field access}

      Three tiers (DESIGN.md §13): {e validated} reads
      ([read_data]/[read_ptr]/[read_data_sync]) check the generation and
      return [Stale] rather than another record's data; {e plain}
      accessors ([get_]/[set_]/[cas_]) are for write phases and
      sequential code where the record is reserved — a generation miss is
      counted and traced, then applied to the recycled memory
      (memory-safe, observable, never a crash); {e cell} accessors are
      address-of for CAS loops, spinlocks and raw tagged-word traversals,
      with no generation check — call sites instrument via
      {!record_read}.  The pre-rewrite index-clamping accessors are
      gone. *)

  val read_data : t -> int -> int -> read_result
  val read_data_sync : t -> int -> int -> read_result
  val read_ptr : t -> int -> int -> read_result
  val data_cell : t -> int -> int -> aint
  val ptr_cell : t -> int -> int -> aint
  val lock_cell : t -> int -> aint
  val get_data : t -> int -> int -> int
  val set_data : t -> int -> int -> int -> unit
  val get_data_sync : t -> int -> int -> int
  val cas_data : t -> int -> int -> int -> int -> bool
  val get_ptr : t -> int -> int -> int
  val set_ptr : t -> int -> int -> int -> unit
  val cas_ptr : t -> int -> int -> int -> int -> bool

  (** {1 Instrumentation} *)

  type state = Free | Live | Retired

  val state : t -> int -> state
  (** Lifecycle state of the record a handle names; [Free] for a stale
      handle (whatever occupies the slot now, the named record is gone). *)

  val seqno : t -> int -> int
  (** Current generation of the slot a handle names, bumped on each
      free: the ABA/UAF witness.  Equals [Handle.gen h] iff [valid]. *)

  val live : t -> int -> bool
  (** Costed lifecycle check for protection validation (hazard-style
      schemes): whether the handle is valid and its record currently
      Live.  Charged like the cache-hit mark load it models. *)

  val stamp : t -> int -> int
  (** {!seqno} with an access charge: lets validators detect
      free-and-recycle (ABA on the slot) between two reads. *)

  val record_read : t -> int -> bool
  (** Called by the SMR layer when a guarded dereference lands on a
      handle; counts reads through stale handles (freed, or
      freed-and-recycled — the generation catches both) and, when
      fine-grained tracing is on, emits an [Access] event.  Returns
      [true] iff this read was stale, so the scheme can classify it
      committed vs benign in its own {!Nbr_core.Smr_stats}.  [nil] is
      not counted.  Zero hits for a sound scheme under the
      exact-delivery (sim) runtime. *)

  type stats = {
    s_allocs : int;
    s_frees : int;
    s_in_use : int;
    s_peak_in_use : int;
    s_garbage : int;
    s_peak_garbage : int;
    s_pressure_events : int;
    s_alloc_retries : int;
    s_uaf_reads : int;
    s_wm_trips : int;  (** high-watermark crossings (see above) *)
    s_depot_exchanges : int;  (** magazine pushes/pops at the depot *)
  }

  val stats : t -> stats
  (** Totals across classes; exact at quiescence (per-thread residual
      deltas are folded in). *)

  type class_stats = {
    k_capacity : int;
    k_in_use : int;
    k_peak_in_use : int;
    k_garbage : int;
    k_peak_garbage : int;
    k_allocs : int;
    k_frees : int;
  }

  val class_stats : t -> int -> class_stats

  val reset_peak : t -> unit
  (** Reset the high-water marks to the current values (called after
      prefill so E2 measures steady-state peaks, not setup). *)
end
