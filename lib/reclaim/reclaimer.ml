(** The background reclaimer role (DESIGN.md §12).

    One extra participant — a domain under the native runtime, a fiber
    under the simulator, the same code either way — that drains the
    limbo-bag handoff channel so workers' retire paths stay allocation-
    and sweep-free.  A worker whose bag crosses the sweep threshold
    exports it through {!Nbr_core.Smr_intf.Offload} instead of sweeping
    inline; the reclaimer collects the exported bags, re-accounts them
    as its own garbage, and sweeps them with the scheme's ordinary
    pressure flush, off every operation's critical path.

    The reclaimer is an ordinary scheme client: it registers a context,
    brackets each drain in [begin_op]/[end_op] (so its announcements
    participate in epochs — under DEBRA/RCU its quiescence pulses
    actively {e help} the epoch advance), adopts orphans like any other
    member, and answers neutralization handshakes through its poll
    point.

    Graceful degradation is clock-free: nobody watches the reclaimer.
    If it stalls, dies, or merely falls behind, the handoff channel's
    backlog grows past [max_backlog] and the next worker to cross its
    threshold flips the offload switch off — every scheme is instantly
    back to plain inline reclamation, correct if slower.  A recovered
    reclaimer drains the backlog and flips the switch back on.  Faults
    targeting the reclaimer itself ({!Nbr_fault.Fault_plan.reclaimer_fault})
    are interpreted inside {!Make.run}, mirroring how the trial runner
    interprets worker faults. *)

type policy =
  | Periodic of { interval_ns : int }
      (** sweep collected garbage every [interval_ns] (runtime clock) *)
  | After_n_retires of { n : int }
      (** sweep once [n] records have been collected since the last sweep *)
  | On_pressure
      (** sweep when the pool's high watermark fired ({!Make.kick}) or a
          drain just collected something — the default: idle reclaimers
          stay quiet, pressured pools are served immediately *)

let pp_policy ppf = function
  | Periodic { interval_ns } -> Format.fprintf ppf "periodic(%dns)" interval_ns
  | After_n_retires { n } -> Format.fprintf ppf "after(%d)" n
  | On_pressure -> Format.fprintf ppf "on-pressure"

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t) =
struct
  module Offload = Nbr_core.Smr_intf.Offload

  type t = {
    smr : Smr.t;
    tid : int;  (** the extra tid the reclaimer runs as (= worker count) *)
    policy : policy;
    offload : Offload.t;
    faults : Nbr_fault.Fault_plan.reclaimer_fault list;
    slice_ns : int;  (** idle sleep per loop iteration *)
    stop_flag : bool Atomic.t;
    kicked : bool Atomic.t;  (** pool watermark hook pending *)
    iters : int Atomic.t;
    sweeps : int Atomic.t;
  }

  let create ?(policy = On_pressure) ?(max_backlog = 1024) ?(faults = [])
      ?(slice_ns = 2_000) smr ~tid =
    (match policy with
    | Periodic { interval_ns } when interval_ns <= 0 ->
        invalid_arg "Reclaimer.create: interval_ns must be positive"
    | After_n_retires { n } when n <= 0 ->
        invalid_arg "Reclaimer.create: n must be positive"
    | _ -> ());
    {
      smr;
      tid;
      policy;
      offload = Offload.create ~max_backlog ~reclaimer:tid ();
      faults;
      slice_ns;
      stop_flag = Atomic.make false;
      kicked = Atomic.make false;
      iters = Atomic.make 0;
      sweeps = Atomic.make 0;
    }

  let offload t = t.offload
  let iterations t = Atomic.get t.iters
  let sweeps t = Atomic.get t.sweeps

  (* Pool high-watermark hook: must be cheap and non-blocking (it runs on
     the allocating worker), so it only sets a flag the loop consumes. *)
  let kick t = Atomic.set t.kicked true

  let stop t = Atomic.set t.stop_flag true

  (* One guarded drain: collect whatever workers exported, and decide —
     by policy — whether to sweep it now.  The begin/end bracket makes
     the reclaimer a first-class scheme member for this step: epoch
     schemes see its announcement (and its quiescence helps them
     advance), NBR peers can reserve against it, orphan parcels of
     crashed workers get adopted on its end_op like anyone else's. *)
  let drain_once t ctx ~last_sweep_ns ~since_sweep =
    Smr.begin_op ctx;
    let collected = Smr.collect_handoffs ctx in
    since_sweep := !since_sweep + collected;
    let now = Rt.now_ns () in
    let due =
      match t.policy with
      | Periodic { interval_ns } -> now - !last_sweep_ns >= interval_ns
      | After_n_retires { n } -> !since_sweep >= n
      | On_pressure -> collected > 0 || Atomic.exchange t.kicked false
    in
    if due && Smr.limbo_size ctx > 0 then begin
      let st = Smr.ctx_stats ctx in
      let f0 = Nbr_core.Smr_stats.freed st in
      Smr.on_pressure ctx;
      let freed = Nbr_core.Smr_stats.freed st - f0 in
      Atomic.incr t.sweeps;
      last_sweep_ns := now;
      since_sweep := 0;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:t.tid ~ns:(Rt.now_ns ())
          Nbr_obs.Trace.Async_sweep freed
          (Atomic.get t.offload.Offload.backlog)
    end;
    Smr.end_op ctx

  (* The role body: call from the extra thread of [Rt.run].  Returns when
     {!stop} has been observed (after a final drain) or when a
     never-restart crash fault fires. *)
  let run t =
    Smr.set_offload t.smr (Some t.offload);
    let ctx = ref (Some (Smr.register t.smr ~tid:t.tid)) in
    let faults = ref t.faults in
    let last_sweep_ns = ref (Rt.now_ns ()) in
    let since_sweep = ref 0 in
    let dead = ref false in
    let re_register () = ctx := Some (Smr.register t.smr ~tid:t.tid) in
    while (not !dead) && not (Atomic.get t.stop_flag) do
      let i = Atomic.fetch_and_add t.iters 1 + 1 in
      (* Answer pending neutralization signals even while idle: the
         bounded-wait handshake counts us among its peers. *)
      Rt.poll_t t.tid;
      (match !faults with
      | f :: rest when Nbr_fault.Fault_plan.reclaimer_fault_iter f <= i -> (
          faults := rest;
          match f with
          | Nbr_fault.Fault_plan.R_stall { ns; _ } ->
              (* Go dark without draining: the backlog piles up and the
                 workers' own detector flips the degrade switch — no
                 component watches the reclaimer's clock. *)
              Rt.stall_ns ns
          | Nbr_fault.Fault_plan.R_crash { restart_ns; _ } ->
              (* Announce the death (reason 1) so workers stop exporting
                 immediately instead of filling the channel first, then
                 orphan our collected-but-unswept garbage for them. *)
              Offload.degrade t.offload ~tid:t.tid ~ns:(Rt.now_ns ());
              (match !ctx with
              | Some c ->
                  Smr.deregister c;
                  ctx := None
              | None -> ());
              if restart_ns < 0 then begin
                Smr.set_offload t.smr None;
                dead := true
              end
              else begin
                Rt.stall_ns restart_ns;
                re_register ()
              end)
      | _ -> ());
      if not !dead then begin
        (match !ctx with
        | None -> re_register ()
        | Some _ -> ());
        (match !ctx with
        | Some c -> (
            try drain_once t c ~last_sweep_ns ~since_sweep
            with Nbr_core.Smr_intf.Expelled ->
              (* A worker's watchdog reaped us during a stall; our state
                 is orphaned already — rejoin fresh next iteration. *)
              ctx := None)
        | None -> ());
        (* Recovery: once the backlog is back under half the degrade
           threshold, re-open the channel.  CAS-guarded inside restore,
           so a healthy run never emits spurious Restore events. *)
        if
          Offload.degraded t.offload
          && Atomic.get t.offload.Offload.backlog
             <= t.offload.Offload.max_backlog / 2
        then Offload.restore t.offload ~tid:t.tid ~ns:(Rt.now_ns ());
        Rt.stall_ns t.slice_ns
      end
    done;
    (* Graceful exit: drain what is still in flight, hand the switch
       back to inline mode, and leave like any other member. *)
    if not !dead then begin
      (match !ctx with
      | Some c ->
          (try
             Smr.begin_op c;
             ignore (Smr.collect_handoffs c);
             Smr.on_pressure c;
             Smr.end_op c
           with Nbr_core.Smr_intf.Expelled -> ctx := None)
      | None -> ());
      Smr.set_offload t.smr None;
      match !ctx with Some c -> Smr.deregister c | None -> ()
    end
end
