(** The background reclaimer role (DESIGN.md §12): a dedicated
    participant — domain under the native runtime, fiber under the
    simulator — that drains the limbo-bag handoff channel so workers'
    retire paths stay sweep-free, with clock-free graceful degradation
    to inline reclamation when it stalls, crashes, or falls behind. *)

type policy =
  | Periodic of { interval_ns : int }
      (** sweep collected garbage every [interval_ns] (runtime clock) *)
  | After_n_retires of { n : int }
      (** sweep once [n] records have been collected since the last
          sweep *)
  | On_pressure
      (** sweep when the pool's high watermark fired ({!Make.kick}) or a
          drain just collected something — the default *)

val pp_policy : Format.formatter -> policy -> unit

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t) : sig
  type t

  val create :
    ?policy:policy ->
    ?max_backlog:int ->
    ?faults:Nbr_fault.Fault_plan.reclaimer_fault list ->
    ?slice_ns:int ->
    Smr.t ->
    tid:int ->
    t
  (** A reclaimer for one scheme instance, to run as thread [tid] (by
      convention the extra thread: worker count [n], with
      [Rt.run ~nthreads:(n + 1)]).  [max_backlog] is the handoff-channel
      occupancy past which workers declare the reclaimer behind and
      degrade to inline sweeps; [faults] is the plan's reclaimer
      schedule; [slice_ns] the idle sleep per loop iteration.  Raises
      [Invalid_argument] on a non-positive policy parameter. *)

  val run : t -> unit
  (** The role body: register, then loop — poll signals, interpret
      faults, collect handoffs under a [begin_op]/[end_op] bracket,
      sweep per policy (emitting [Async_sweep]), restore the offload
      switch once a degraded channel has drained — until {!stop} is
      observed (then: final drain, offload uninstalled, deregister) or a
      never-restart crash fault fires. *)

  val kick : t -> unit
  (** Pool high-watermark hook: flags pressure for the next loop
      iteration.  Cheap and non-blocking — safe to install as
      [Pool.set_watermarks ~on_high]. *)

  val stop : t -> unit
  (** Ask {!run} to finish (drain, uninstall, deregister, return). *)

  val offload : t -> Nbr_core.Smr_intf.Offload.t
  (** The switchboard {!run} installs — for tests and end-of-trial
      accounting (degrades/restores/handed/collected counters). *)

  val iterations : t -> int
  (** Loop iterations completed so far. *)

  val sweeps : t -> int
  (** Async sweeps performed so far. *)
end
