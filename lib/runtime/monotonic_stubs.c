/* CLOCK_MONOTONIC for the native runtime.
 *
 * Unix.gettimeofday is wall-clock: NTP can step it backwards, and its
 * microsecond granularity loses the very ns-scale deltas the delayed-signal
 * maturity checks and the benchmark harness measure.  clock_gettime with
 * CLOCK_MONOTONIC is the clock the paper's own harness (and every SMR
 * benchmark) uses.
 *
 * Returned as a tagged OCaml int: 62 bits of nanoseconds wrap after ~146
 * years of uptime, which is not a concern.  [noalloc] keeps the call free
 * of GC interaction so it is safe on the hot path.
 */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value nbr_monotonic_now_ns(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
