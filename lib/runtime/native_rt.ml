(** Native runtime: real OCaml domains, polling-based neutralization.

    This is the "runs on actual parallel hardware" implementation of
    {!Runtime_intf.S}.  POSIX signals cannot be used for neutralization in
    OCaml (long-jumping out of an asynchronous handler would corrupt the
    runtime), so signals become per-thread monotone counters that the SMR
    layer consumes at {!poll_t} points — the top of every guarded dereference
    and the tail of [end_read].  When a pending signal is observed by a
    restartable thread, {!Neutralized} unwinds to the innermost
    {!checkpoint}, which replays the read phase: the [siglongjmp] of the
    paper, minus the asynchrony.

    Safety under asynchrony-minus: between a victim's last poll and its next
    access there is a window in which a reclaimer may free a record the
    victim is about to read.  This is harmless here because records live in
    a GC-backed {!Pool} whose memory is never unmapped (exactly the
    jemalloc situation the paper relies on), pointer fields always hold
    in-bounds slot indices, and no value read in the window can be
    committed: every subsequent dereference polls and the phase-closing
    [end_read] polls after its fence, so the operation restarts before it
    returns a result or performs any shared write.  See DESIGN.md §3.

    Hot-path layout: each thread's signal state lives in one
    cache-line-padded {!tstate} record so a reclaimer bombing thread [i]
    never invalidates the line thread [j] polls ([Atomic.t] blocks allocated
    back to back otherwise pack ~8 per 64-byte line).  [poll] on the
    fault-free path is a single plain flag load, one [Atomic.get] and a
    compare — the [delayed]-list drain hides behind [faults_active], set
    only while a fault decider is installed, and trace emission behind
    [Nbr_obs.Trace.on], checked only on the rare signal-observed branch.
    The delivery points take the caller's tid as an argument so the SMR
    layer (which already knows its tid from the operation context) skips
    the [Domain.DLS] lookup that otherwise costs more than the poll
    itself. *)

let name = "native"

(* ------------------------------------------------------------------ *)

type aint = int Atomic.t

let make v = Atomic.make v
let make_padded v = Nbr_sync.Padded.copy_as_padded (Atomic.make v)
let load = Atomic.get
let plain_load = Atomic.get
let store = Atomic.set

let cas a expected desired = Atomic.compare_and_set a expected desired
let faa a d = Atomic.fetch_and_add a d
let xchg a v = Atomic.exchange a v

(* ------------------------------------------------------------------ *)
(* Thread identity. *)

let tid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let self () = Domain.DLS.get tid_key

let n_threads = ref 1
let nthreads () = !n_threads

(* ------------------------------------------------------------------ *)
(* Signals. *)

exception Neutralized

(* All mutable signal state of one thread, one padded block per thread so
   threads never share a cache line through this structure.  The atomics
   inside are padded too: the record fields are just pointers, and without
   padding the pointed-to [Atomic.t] blocks (allocated together) would
   still false-share.

   [last_seen] is only touched by the owning thread.  [restartable] is
   per-thread too, but written with a fenced exchange to match the paper's
   Algorithm 1 (lines 8/12): the RMW orders reservation publication before
   the flag flip. *)
type tstate = {
  pending : int Atomic.t;
  restartable : bool Atomic.t;
  delayed : int list Atomic.t;
      (** fault-injected in-flight signals: maturity timestamps (ns) *)
  mutable last_seen : int;
  mutable hb : int;
      (** progress heartbeat, bumped per poll.  Plain field on the
          thread's own padded line: the owner's increment is one store
          with no fence, and the watchdog's cross-domain read tolerates
          staleness (a monotone counter read late only delays
          detection). *)
}

let mk_tstate () =
  Nbr_sync.Padded.copy_as_padded
    {
      pending = Nbr_sync.Padded.make_atomic 0;
      restartable = Nbr_sync.Padded.make false;
      delayed = Nbr_sync.Padded.make [];
      last_seen = 0;
      hb = 0;
    }

(* Sized at [run]; index = tid. *)
let tstates : tstate array ref = ref [||]
let sigs_sent = Atomic.make 0

let signals_sent () = Atomic.get sigs_sent

(* ------------------------------------------------------------------ *)
(* Fault injection: delayed signals are parked per victim as a list of
   maturity timestamps (ns); the victim promotes matured entries into its
   pending counter at each poll.  A Treiber-style CAS list keeps senders
   lock-free; the victim drains with exchange.

   [faults_active] gates the whole machinery out of the hot path: it is a
   plain ref read first in [poll_t], so fault-free runs (every benchmark,
   most tests) pay one predictable not-taken branch instead of an atomic
   list inspection per poll.  The flag is raised {e before} the decider is
   installed and stays raised after the decider is removed (already-parked
   delayed signals must still mature and drain); [run] resets it. *)

let fault_fn :
    (sender:int -> target:int -> Runtime_intf.signal_fate) option ref =
  ref None

let faults_active = ref false
let sigs_dropped = Atomic.make 0

let set_signal_fault f =
  (match f with Some _ -> faults_active := true | None -> ());
  fault_fn := f

let signals_dropped () = Atomic.get sigs_dropped

let rec push_delayed cell at =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (at :: old)) then push_delayed cell at

external monotonic_now_ns : unit -> int = "nbr_monotonic_now_ns" [@@noalloc]

let now_ns = monotonic_now_ns

(* Move delayed entries into [pending]: all of them when [all], otherwise
   only those whose maturity has passed (unmatured ones are re-parked). *)
let promote_delayed ~all s =
  if Atomic.get s.delayed <> [] then begin
    let entries = Atomic.exchange s.delayed [] in
    let now = now_ns () in
    let promoted = ref 0 in
    List.iter
      (fun at ->
        if all || at <= now then incr promoted else push_delayed s.delayed at)
      entries;
    if !promoted > 0 then ignore (Atomic.fetch_and_add s.pending !promoted)
  end

let send_signal t =
  let ts = !tstates in
  if t >= 0 && t < Array.length ts then begin
    Atomic.incr sigs_sent;
    if !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit
        ~tid:(Domain.DLS.get tid_key)
        ~ns:(now_ns ()) Nbr_obs.Trace.Signal_sent t 0;
    let s = Array.unsafe_get ts t in
    match !fault_fn with
    | None -> Atomic.incr s.pending
    | Some decide -> (
        match decide ~sender:(Domain.DLS.get tid_key) ~target:t with
        | Runtime_intf.Sig_deliver -> Atomic.incr s.pending
        | Runtime_intf.Sig_drop -> Atomic.incr sigs_dropped
        | Runtime_intf.Sig_delay ns -> push_delayed s.delayed (now_ns () + ns))
  end

(* ------------------------------------------------------------------ *)
(* tid-threaded fast paths.  The bounds check keeps calls from outside
   [run] (setup code, single-threaded benches) safe no-ops; inside [run]
   it is one predictable compare against an in-register length. *)

let set_restartable_t t b =
  let ts = !tstates in
  if t < Array.length ts then
    ignore (Atomic.exchange (Array.unsafe_get ts t).restartable b)

let poll_t t =
  let ts = !tstates in
  if t < Array.length ts then begin
    let s = Array.unsafe_get ts t in
    s.hb <- s.hb + 1;
    (* Matured fault-delayed signals become pending now; unmatured ones
       stay parked (the handler must not run before the delay elapses). *)
    if !faults_active then promote_delayed ~all:false s;
    let v = Atomic.get s.pending in
    if v > s.last_seen then begin
      s.last_seen <- v;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:t ~ns:(now_ns ())
          Nbr_obs.Trace.Signal_delivered v 0;
      if Atomic.get s.restartable then begin
        if !Nbr_obs.Trace.on then
          Nbr_obs.Trace.emit ~tid:t ~ns:(now_ns ()) Nbr_obs.Trace.Neutralized
            v 0;
        raise Neutralized
      end
    end
  end

let consume_pending_t t =
  let ts = !tstates in
  if t < Array.length ts then begin
    let s = Array.unsafe_get ts t in
    (* In-flight delayed signals were sent before this check: [end_read]
       must observe them (and restart) or the publication race re-opens —
       late delivery must not look like no signal. *)
    if !faults_active then promote_delayed ~all:true s;
    let v = Atomic.get s.pending in
    if v > s.last_seen then begin
      s.last_seen <- v;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:t ~ns:(now_ns ())
          Nbr_obs.Trace.Signal_consumed v 0;
      true
    end
    else false
  end
  else false

let drain_signals_t t =
  let ts = !tstates in
  if t < Array.length ts then begin
    let s = Array.unsafe_get ts t in
    if !faults_active then promote_delayed ~all:true s;
    let v = Atomic.get s.pending in
    if v > s.last_seen && !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit ~tid:t ~ns:(now_ns ()) Nbr_obs.Trace.Signal_consumed
        v 1;
    s.last_seen <- v
  end

(* Cross-thread progress readouts for the crash-recovery watchdog: plain
   reads of another thread's padded counters.  Both are monotone and
   stale-tolerant — a value the hardware has not propagated yet reads
   like a slow peer and only delays the watchdog's verdict. *)

let heartbeat t =
  let ts = !tstates in
  if t >= 0 && t < Array.length ts then (Array.unsafe_get ts t).hb else 0

let signals_seen t =
  let ts = !tstates in
  if t >= 0 && t < Array.length ts then (Array.unsafe_get ts t).last_seen
  else 0

let fault_injection_active () = !fault_fn <> None

let is_restartable () =
  let t = self () in
  let ts = !tstates in
  t < Array.length ts && Atomic.get (Array.unsafe_get ts t).restartable

let checkpoint f =
  let rec go () = try f () with Neutralized -> go () in
  go ()

(* ------------------------------------------------------------------ *)
(* Time ([now_ns] is defined above, with the fault machinery). *)

let stall_ns ns = Unix.sleepf (float_of_int ns /. 1e9)
let cpu_relax () = Domain.cpu_relax ()
let work _ = ()

(* ------------------------------------------------------------------ *)

let running = ref false

let run ~nthreads:n body =
  if n < 1 then invalid_arg "Native_rt.run: nthreads must be >= 1";
  if !running then invalid_arg "Native_rt.run: not reentrant";
  running := true;
  n_threads := n;
  tstates := Array.init n (fun _ -> mk_tstate ());
  faults_active := !fault_fn <> None;
  Atomic.set sigs_sent 0;
  Atomic.set sigs_dropped 0;
  let failure : exn option Atomic.t = Atomic.make None in
  let wrap tid () =
    Domain.DLS.set tid_key tid;
    try body tid
    with e -> ignore (Atomic.compare_and_set failure None (Some e))
  in
  let domains = Array.init (n - 1) (fun i -> Domain.spawn (wrap (i + 1))) in
  wrap 0 ();
  Array.iter Domain.join domains;
  Domain.DLS.set tid_key 0;
  n_threads := 1;
  tstates := [||];
  running := false;
  match Atomic.get failure with None -> () | Some e -> raise e
