(** Native runtime: real OCaml domains, polling-based neutralization.

    This is the "runs on actual parallel hardware" implementation of
    {!Runtime_intf.S}.  POSIX signals cannot be used for neutralization in
    OCaml (long-jumping out of an asynchronous handler would corrupt the
    runtime), so signals become per-thread monotone counters that the SMR
    layer consumes at {!poll} points — the top of every guarded dereference
    and the tail of [end_read].  When a pending signal is observed by a
    restartable thread, {!Neutralized} unwinds to the innermost
    {!checkpoint}, which replays the read phase: the [siglongjmp] of the
    paper, minus the asynchrony.

    Safety under asynchrony-minus: between a victim's last poll and its next
    access there is a window in which a reclaimer may free a record the
    victim is about to read.  This is harmless here because records live in
    a GC-backed {!Pool} whose memory is never unmapped (exactly the
    jemalloc situation the paper relies on), pointer fields always hold
    in-bounds slot indices, and no value read in the window can be
    committed: every subsequent dereference polls and the phase-closing
    [end_read] polls after its fence, so the operation restarts before it
    returns a result or performs any shared write.  See DESIGN.md §3. *)

let name = "native"

(* ------------------------------------------------------------------ *)

type aint = int Atomic.t

let make v = Atomic.make v
let load = Atomic.get
let plain_load = Atomic.get
let store = Atomic.set

let cas a expected desired = Atomic.compare_and_set a expected desired
let faa a d = Atomic.fetch_and_add a d
let xchg a v = Atomic.exchange a v

(* ------------------------------------------------------------------ *)
(* Thread identity. *)

let tid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let self () = Domain.DLS.get tid_key

let n_threads = ref 1
let nthreads () = !n_threads

(* ------------------------------------------------------------------ *)
(* Signals. *)

exception Neutralized

(* Sized at [run]; index = tid.  [last_seen] cells are only touched by
   their owning thread.  [restartable] is per-thread too, but written with
   a fenced exchange to match the paper's Algorithm 1 (lines 8/12): the
   RMW orders reservation publication before the flag flip. *)
let pending : int Atomic.t array ref = ref [||]
let restartable : bool Atomic.t array ref = ref [||]
let last_seen : int array ref = ref [||]
let sigs_sent = Atomic.make 0

let signals_sent () = Atomic.get sigs_sent

(* ------------------------------------------------------------------ *)
(* Fault injection: delayed signals are parked per victim as a list of
   maturity timestamps (ns); the victim promotes matured entries into its
   pending counter at each poll.  A Treiber-style CAS list keeps senders
   lock-free; the victim drains with exchange. *)

let delayed : int list Atomic.t array ref = ref [||]

let fault_fn :
    (sender:int -> target:int -> Runtime_intf.signal_fate) option ref =
  ref None

let sigs_dropped = Atomic.make 0
let set_signal_fault f = fault_fn := f
let signals_dropped () = Atomic.get sigs_dropped

let rec push_delayed cell at =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (at :: old)) then push_delayed cell at

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Move delayed entries into [pending]: all of them when [all], otherwise
   only those whose maturity has passed (unmatured ones are re-parked). *)
let promote_delayed ~all t =
  let d = !delayed in
  if t < Array.length d && Atomic.get d.(t) <> [] then begin
    let entries = Atomic.exchange d.(t) [] in
    let now = now_ns () in
    let promoted = ref 0 in
    List.iter
      (fun at ->
        if all || at <= now then incr promoted else push_delayed d.(t) at)
      entries;
    if !promoted > 0 then ignore (Atomic.fetch_and_add (!pending).(t) !promoted)
  end

let send_signal t =
  let p = !pending in
  if t >= 0 && t < Array.length p then begin
    Atomic.incr sigs_sent;
    match !fault_fn with
    | None -> Atomic.incr p.(t)
    | Some decide -> (
        match decide ~sender:(Domain.DLS.get tid_key) ~target:t with
        | Runtime_intf.Sig_deliver -> Atomic.incr p.(t)
        | Runtime_intf.Sig_drop -> Atomic.incr sigs_dropped
        | Runtime_intf.Sig_delay ns -> push_delayed (!delayed).(t) (now_ns () + ns))
  end

let set_restartable b =
  let t = self () in
  let r = !restartable in
  if t < Array.length r then ignore (Atomic.exchange r.(t) b)

let is_restartable () =
  let t = self () in
  let r = !restartable in
  t < Array.length r && Atomic.get r.(t)

let poll () =
  let t = self () in
  let p = !pending in
  if t < Array.length p then begin
    (* Matured fault-delayed signals become pending now; unmatured ones
       stay parked (the handler must not run before the delay elapses). *)
    promote_delayed ~all:false t;
    let v = Atomic.get p.(t) in
    if v > (!last_seen).(t) then begin
      (!last_seen).(t) <- v;
      if Atomic.get (!restartable).(t) then raise Neutralized
    end
  end

let consume_pending () =
  let t = self () in
  let p = !pending in
  if t < Array.length p then begin
    (* In-flight delayed signals were sent before this check: [end_read]
       must observe them (and restart) or the publication race re-opens —
       late delivery must not look like no signal. *)
    promote_delayed ~all:true t;
    let v = Atomic.get p.(t) in
    if v > (!last_seen).(t) then begin
      (!last_seen).(t) <- v;
      true
    end
    else false
  end
  else false

let drain_signals () =
  let t = self () in
  let p = !pending in
  if t < Array.length p then begin
    promote_delayed ~all:true t;
    (!last_seen).(t) <- Atomic.get p.(t)
  end

let checkpoint f =
  let rec go () = try f () with Neutralized -> go () in
  go ()

(* ------------------------------------------------------------------ *)
(* Time ([now_ns] is defined above, with the fault machinery). *)

let stall_ns ns = Unix.sleepf (float_of_int ns /. 1e9)
let cpu_relax () = Domain.cpu_relax ()
let work _ = ()

(* ------------------------------------------------------------------ *)

let running = ref false

let run ~nthreads:n body =
  if n < 1 then invalid_arg "Native_rt.run: nthreads must be >= 1";
  if !running then invalid_arg "Native_rt.run: not reentrant";
  running := true;
  n_threads := n;
  pending := Array.init n (fun _ -> Atomic.make 0);
  restartable := Array.init n (fun _ -> Atomic.make false);
  last_seen := Array.make n 0;
  delayed := Array.init n (fun _ -> Atomic.make []);
  Atomic.set sigs_sent 0;
  Atomic.set sigs_dropped 0;
  let failure : exn option Atomic.t = Atomic.make None in
  let wrap tid () =
    Domain.DLS.set tid_key tid;
    try body tid
    with e -> ignore (Atomic.compare_and_set failure None (Some e))
  in
  let domains = Array.init (n - 1) (fun i -> Domain.spawn (wrap (i + 1))) in
  wrap 0 ();
  Array.iter Domain.join domains;
  Domain.DLS.set tid_key 0;
  n_threads := 1;
  pending := [||];
  restartable := [||];
  last_seen := [||];
  delayed := [||];
  running := false;
  match Atomic.get failure with None -> () | Some e -> raise e
