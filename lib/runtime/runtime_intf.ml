(** Execution-substrate signature.

    NBR (Singh, Brown, Mashtizadeh, PPoPP'21) is specified against a raw
    shared-memory multiprocessor with POSIX signals and
    [sigsetjmp]/[siglongjmp].  None of those can be used directly from OCaml
    (asynchronously long-jumping out of an OCaml signal handler would corrupt
    the runtime), so every algorithm in this repository is written against
    this signature instead, and we provide two implementations:

    - {!Sim_rt}: a deterministic discrete-event simulation of a multicore
      machine.  Every shared-memory access is a scheduling point, signals are
      delivered before the target's next shared access (the paper's
      Assumption 4, exactly), and time is virtual cycles under a calibrated
      cost model.  This is what the benchmark figures run on, because it can
      simulate the paper's 192-thread machine on this container's single
      core.
    - {!Native_rt}: real OCaml domains.  Signals become per-thread monotone
      counters consumed by {!S.poll_t}; neutralization is an exception
      unwinding to the nearest {!S.checkpoint}.

    The unit of "shared memory" is the atomic integer cell {!aint}.  All
    shared state in the repository — record fields in the pool, reservation
    arrays, epochs, locks — is made of [aint]s, which is what lets the
    simulator interleave and cost every access. *)

type signal_fate =
  | Sig_deliver  (** normal delivery (the default when no fault is set) *)
  | Sig_delay of int
      (** deliver, but only after this many nanoseconds: the handler does
          not run until the delay matures.  The signal stays {e visible} to
          {!S.consume_pending_t} from the moment it is sent — delivery is
          late, the kernel's bookkeeping is not — so NBR's [end_read]
          re-check (the writers' handshake closer) still observes it and
          the discipline stays safe; what the delay stresses is Assumption
          4: readers keep traversing (and may read freed slots,
          uncommitted) until the late handler or the next phase boundary
          stops them. *)
  | Sig_drop
      (** the signal is lost entirely — never delivered, never visible.
          POSIX guarantees this cannot happen to [pthread_kill]; injecting
          it shows what NBR's safety argument buys from that guarantee
          (use-after-free becomes possible, as with
          [Smr_config.unsafe_end_read]).  Schemes that do not use signals
          are unaffected. *)
(** Fault-injected fate of one neutralization signal (see
    {!S.set_signal_fault}). *)

module type S = sig
  val name : string
  (** Human-readable runtime name ("sim" or "native"). *)

  (** {1 Shared atomic cells} *)

  type aint
  (** A shared integer cell.  All operations are sequentially consistent
      (matching OCaml's [Atomic] and close enough to the paper's x86-TSO
      reasoning; the paper's explicit-fence subtleties are modelled by cost,
      not by weak ordering). *)

  val make : int -> aint

  val make_padded : int -> aint
  (** Like {!make}, but the cell is guaranteed not to share a cache line
      with any other runtime-allocated cell.  Use it for SWMR announcement
      slots written on hot paths by one thread and scanned by reclaimers —
      reservation rows, broadcast timestamps, epoch/era announcements,
      hazard slots — where false sharing would bill every writer for its
      neighbours' traffic.  Natively this pads the heap block to whole
      cache lines (the [Atomic.make_contended] of OCaml ≥ 5.2, via
      {!Nbr_sync.Padded} on the pinned 5.1 toolchain); in the simulator it
      is identical to {!make}, because the cost model tracks coherence
      ownership per cell, never packing two cells into one line. *)

  val load : aint -> int

  val plain_load : aint -> int
  (** A cheaper, non-serializing read.  Same value semantics as {!load} in
      both runtimes; in the simulator it is charged as a plain load rather
      than a synchronising one.  Use it where the C implementation would use
      an ordinary (non-[volatile]) read, e.g. reading your own reservation
      slots. *)

  val store : aint -> int -> unit
  val cas : aint -> int -> int -> bool
  val faa : aint -> int -> int
  val xchg : aint -> int -> int

  (** {1 Threads} *)

  val self : unit -> int
  (** Id of the calling worker thread, [0 .. nthreads-1].  Only valid inside
      the body passed to {!run} (or during setup, where it returns 0). *)

  val nthreads : unit -> int
  (** Number of worker threads of the current {!run}, 1 during setup. *)

  (** {1 Neutralization signals}

      The paper's signal machinery, distilled: a reclaimer
      {!send_signal}s a victim; the victim's "handler" runs before its next
      shared-memory access ({!Sim_rt}) or at its next {!poll_t}
      ({!Native_rt}); the handler restarts the victim's current read phase
      — by raising {!Neutralized}, caught by the innermost {!checkpoint} —
      iff the victim is restartable.

      All delivery-point operations take the calling thread's id
      explicitly ([poll_t] and friends below).  PR 2 introduced these as
      fast paths next to argless wrappers; the wrappers cost a
      {!Domain.DLS} lookup per call in the native runtime and every
      caller already threads its tid, so the wrappers are gone and the
      [_t] forms are the API. *)

  exception Neutralized
  (** The [siglongjmp] analogue.  Raised at a delivery point when the thread
      is restartable.  Never caught by library code except in
      {!checkpoint}. *)

  val checkpoint : (unit -> 'a) -> 'a
  (** [checkpoint f] is the [sigsetjmp] analogue: runs [f], and re-runs it
      from scratch whenever it is aborted by {!Neutralized}.  Nesting is
      allowed (k-NBR); an abort restarts the innermost live checkpoint.
      [f] must obey the paper's read-phase rules (no locks held, no
      allocation, no writes to shared memory before the thread becomes
      non-restartable) so that abandoning it mid-flight is harmless. *)

  val is_restartable : unit -> bool
  (** The calling thread's restartable flag (handlers and assertions). *)

  val send_signal : int -> unit
  (** [send_signal t] sends a neutralization signal to thread [t] (the
      [pthread_kill] analogue).  Charged with the kernel-crossing cost in the
      simulator.  Signals coalesce like POSIX signals: what is guaranteed is
      that [t] executes a handler after the send and before its next
      dereference of a shared record. *)

  (** {2 Delivery points (tid-threaded)}

      Each function takes the calling thread's id explicitly: the SMR
      layer already holds it in its per-thread context, and discovering
      it afresh — a {!Domain.DLS} lookup in the native runtime — would be
      charged on {e every guarded dereference}.  [t] {b must} be the
      calling thread's id (the one {!self} would return): passing another
      thread's id reads and writes that thread's single-writer state and
      voids the discipline. *)

  val poll_t : int -> unit
  (** A signal-delivery point for the calling thread [t].  In
      {!Native_rt} this is where pending signals are consumed (raising
      {!Neutralized} when restartable); in {!Sim_rt} every shared access
      is already a delivery point and [poll_t] is free.  The SMR layer
      calls this at the top of every guarded dereference and in
      [end_read].  When no fault decider is installed this must cost one
      plain flag check plus one load-compare of the thread's pending
      counter — the paper's "no per-access overhead" claim lives or dies
      here. *)

  val consume_pending_t : int -> bool
  (** Mark the calling thread [t]'s pending signals handled and report
      whether there were any, without restarting.  NBR's [end_read] calls
      this right after the fenced flag flip: in a polling runtime a
      signal that arrived before the thread's reservations were published
      would otherwise be missed by both sides (the reclaimer's scan
      preceded the publication, and the thread is no longer restartable),
      so [end_read] restarts the phase itself — legal, since no shared
      write has happened yet.  In the delivery-exact simulator such
      signals are already delivered at the flag-flip access, so this
      always returns [false] there. *)

  val set_restartable_t : int -> bool -> unit
  (** Set the calling thread [t]'s restartable flag.  Implements the
      fenced transitions of Algorithm 1 lines 8 and 12: the flag change
      is a sequentially-consistent read-modify-write, so reservations
      published before [set_restartable_t t false] are visible to any
      thread that subsequently observes the thread as non-restartable,
      and no read of a shared record can be reordered before
      [set_restartable_t t true]. *)

  val drain_signals_t : int -> unit
  (** Consume any signals pending for the calling thread [t] without
      restarting, regardless of the restartable flag.  Used when
      (re-)entering a read phase: the thread holds no shared pointers
      yet, so signals sent earlier need no action — this is the "handler
      runs while quiescent" case of the paper. *)

  val signals_sent : unit -> int
  (** Total signals sent since the current {!run} began (for the O(n) vs
      O(n²) ablation).  Counts sends, including delayed and dropped ones. *)

  (** {2 Cross-thread progress observation}

      The two readouts below are the raw material of the crash-recovery
      watchdog (see [Nbr_core.Lifecycle]): unlike the [_t] family they
      take {e any} thread's id and may be called by {e other} threads.
      Both are monotone counters read without synchronisation — a stale
      value is indistinguishable from a slow peer and merely delays
      detection, never causes a false "alive" verdict to persist. *)

  val heartbeat : int -> int
  (** [heartbeat t] is a monotone progress counter for thread [t],
      advanced by the runtime every time [t] passes a delivery point
      (every shared access in the simulator, every {!poll_t} natively).
      A value frozen across a watchdog interval means [t] has not
      executed any guarded step in that interval: it is stalled, crashed,
      or descheduled.  Returns 0 for out-of-range ids or outside
      {!run}. *)

  val signals_seen : int -> int
  (** [signals_seen t]: how many signal observations thread [t] has made
      (handler deliveries plus [consume_pending_t]/[drain_signals_t]
      consumptions).  A reclaimer snapshots this before {!send_signal}
      and knows its signal reached [t] once the counter advances — the
      confirmation step of the watchdog's blocking handshake, sound
      because [t]'s reservation publication precedes its observation
      bump in program order.  Returns 0 for out-of-range ids. *)

  val fault_injection_active : unit -> bool
  (** Whether a signal-fate decider is currently installed
      ({!set_signal_fault}).  The SMR layer uses it to gate the blocking
      handshake: with no decider, delivery is reliable by construction
      and the wait-free fire-and-forget broadcast needs no
      confirmation. *)

  (** {1 Fault injection}

      Hooks for the chaos harness ([lib/fault]): deterministic adversity —
      late or lost signals — injected underneath the SMR layer, which runs
      unmodified.  No fault is active unless explicitly installed. *)

  val set_signal_fault :
    (sender:int -> target:int -> signal_fate) option -> unit
  (** Install (or clear, with [None]) the decider consulted on every
      {!send_signal}.  The decider must be cheap and, for reproducible sim
      runs, deterministic in its inputs and call order.  Cleared
      automatically by {!run} completing is {e not} guaranteed — callers
      pair installation with removal. *)

  val signals_dropped : unit -> int
  (** Signals discarded by an installed {!set_signal_fault} decider since
      the current {!run} began. *)

  (** {1 Time} *)

  val now_ns : unit -> int
  (** Monotonic time in nanoseconds — virtual in the simulator,
      [CLOCK_MONOTONIC] in the native runtime.  Trial durations,
      throughput and delayed-signal maturity are measured with this;
      implementations must never use a wall clock (NTP-steppable,
      non-monotonic, and short of precision at ns scale). *)

  val stall_ns : int -> unit
  (** Stop making progress for the given duration (the "stalled thread" of
      experiment E2).  The thread does not reach a delivery point while
      stalled, exactly like a descheduled pthread. *)

  val cpu_relax : unit -> unit
  (** Spin-wait hint (PAUSE analogue). *)

  val work : int -> unit
  (** Charge [n] cycles of thread-local computation to the calling thread in
      the simulator; a no-op natively.  Lets workloads model per-operation
      local work. *)

  (** {1 Execution} *)

  val run : nthreads:int -> (int -> unit) -> unit
  (** [run ~nthreads body] executes [body tid] on [nthreads] concurrent
      threads and returns when all complete.  Shared state ([aint]s, pools,
      SMR instances) must be created before [run] by the orchestrating
      (setup) code; creating more during the run is allowed. *)
end
