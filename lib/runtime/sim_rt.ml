(** Deterministic simulated-multicore runtime.

    This module implements {!Runtime_intf.S} as a discrete-event simulation:
    worker "threads" are cooperative fibers (OCaml 5 effects) scheduled by
    virtual time, and every shared-memory access is charged cycles under a
    small cost model (cache-coherence misses on ownership transfer, dearer
    read-modify-writes, kernel-crossing costs for signals, context-switch
    and time-slice modelling for oversubscription).

    Why it exists: the paper evaluates on a 4-socket, 192-hardware-thread
    Xeon; this container has one core.  The simulator reproduces the
    {e mechanisms} the paper's results hinge on — per-read fence costs (HP),
    reclamation bursts caused by delayed threads (EBR variants), O(n) vs
    O(n²) signal counts (NBR vs NBR+), stalled threads pinning garbage —
    at any thread count, deterministically.

    Signal semantics: a victim fiber checks its pending-signal counter
    inline at {e every} shared-memory access, before performing the access,
    and (when restartable) aborts to the innermost {!checkpoint} by raising
    {!Neutralized}.  Because the simulation runs on a single domain, the
    deliver-then-access sequence is atomic, giving the paper's Assumption 4
    exactly: a signal is always delivered before the victim's next
    dereference of a shared record.

    Scheduling granularity: fibers yield to the scheduler after accumulating
    [granularity] cycles of charged work (default: every access).  Larger
    granularity coarsens interleaving (several accesses execute atomically)
    but does not weaken signal delivery, which is checked per access
    regardless.  Tests run at granularity 1; large benchmark sweeps may use a
    coarser setting for speed.

    The simulator is single-domain and not reentrant: one {!run} at a time. *)

type config = {
  cores : int;  (** simulated hardware threads *)
  ghz : float;  (** cycles per nanosecond, for {!now_ns} *)
  granularity : int;  (** cycles of work between scheduler yields *)
  quantum : int;  (** cycles per time slice when oversubscribed *)
  ctx_switch : int;  (** cycles charged per involuntary context switch *)
  c_plain_load : int;  (** cache-hit plain load *)
  c_load : int;  (** cache-hit synchronising load *)
  c_store : int;  (** store to an owned line *)
  c_atomic : int;  (** CAS/FAA/XCHG on an owned line (incl. fence) *)
  c_miss : int;  (** extra cycles when the line is owned elsewhere *)
  c_signal_send : int;  (** pthread_kill: kernel crossing on the sender *)
  c_signal_handle : int;  (** handler entry on the victim *)
  c_setjmp : int;  (** sigsetjmp checkpoint cost *)
  c_longjmp : int;  (** siglongjmp + restart cost *)
  jitter : int;  (** max extra cycles added per access, from a seeded prng *)
  seed : int;  (** jitter prng seed *)
}

let default_config =
  {
    cores = 16;
    ghz = 2.1;
    granularity = 1;
    quantum = 200_000;
    ctx_switch = 3_000;
    c_plain_load = 2;
    c_load = 4;
    c_store = 8;
    c_atomic = 20;
    c_miss = 90;
    c_signal_send = 2_500;
    c_signal_handle = 1_200;
    c_setjmp = 30;
    c_longjmp = 120;
    jitter = 8;
    seed = 0x5eed;
  }

let cfg = ref default_config
let set_config c = cfg := c
let get_config () = !cfg

exception Stuck of string
(** Raised by {!run} when the event budget is exhausted — a watchdog against
    livelocked workloads (default: unlimited). *)

let max_events = ref 0
let set_max_events n = max_events := n

(* Pluggable schedule controller (the lib/check explorer).  When
   installed, every scheduling decision — which runnable fiber resumes
   next — is delegated to the controller instead of the virtual-clock
   min-heap: it is shown the ids of all unfinished fibers (sorted by id)
   plus the id of the fiber that ran last ([-1] initially) and returns an
   {e index} into that array.  Because the runnable set at step [k] is a
   deterministic function of the first [k] decisions, a schedule is fully
   described by its decision-index sequence, which is what makes
   certificates replayable across search strategies.  Out-of-range
   returns are clamped to 0.  Virtual clocks still advance (timestamps,
   deadlines and watchdogs stay meaningful) but no longer drive
   scheduling. *)
let sched_ctl : (last:int -> runnable:int array -> int) option ref = ref None
let set_schedule_controller f = sched_ctl := f

let name = "sim"

(* ------------------------------------------------------------------ *)
(* Shared cells with an ownership tag for the coherence approximation: *)
(* [owner] is the tid of the last writer, [owner_shared] once a remote *)
(* thread has read the line, [owner_fresh] before any access.          *)

let owner_shared = -2
let owner_fresh = -3

type aint = { mutable v : int; mutable owner : int }

(* ------------------------------------------------------------------ *)
(* Fibers.                                                             *)

exception Neutralized

type _ Effect.t += Yield : unit Effect.t

type fiber = {
  id : int;
  mutable clock : int;  (** virtual cycles consumed *)
  mutable acc : int;  (** cycles since last yield *)
  mutable qacc : int;  (** cycles in current time slice *)
  mutable pending : int;  (** signals sent to this fiber *)
  mutable delivered : int;  (** signals already handled *)
  mutable hb : int;  (** progress heartbeat: bumped per delivery point *)
  mutable seen : int;  (** signal observations (deliveries + consumes) *)
  mutable delayed : int list;
      (** fault-injected in-flight signals: the clock values at which each
          matures into [pending].  Written by senders, promoted by the
          victim — single-domain, so unsynchronized access is safe. *)
  mutable restartable : bool;
  mutable finished : bool;
  mutable kont : (unit, unit) Effect.Deep.continuation option;
}

let mk_fiber id =
  {
    id;
    clock = 0;
    acc = 0;
    qacc = 0;
    pending = 0;
    delivered = 0;
    hb = 0;
    seen = 0;
    delayed = [];
    restartable = false;
    finished = id < 0;
    kont = None;
  }

let cur : fiber ref = ref (mk_fiber (-1))
let fibers : fiber array ref = ref [||]
let live = ref 0
let n_threads = ref 1
let sigs_sent = ref 0
let events = ref 0

let in_fiber () = (!cur).id >= 0
let self () = if in_fiber () then (!cur).id else 0
let nthreads () = !n_threads
let signals_sent () = !sigs_sent
let total_events () = !events

(* Fault injection (lib/fault): decides the fate of each signal sent. *)
let fault_fn :
    (sender:int -> target:int -> Runtime_intf.signal_fate) option ref =
  ref None

let sigs_dropped = ref 0
let set_signal_fault f = fault_fn := f
let signals_dropped () = !sigs_dropped

(* SplitMix-style jitter: cheap enough for the per-access hot path. *)
let jit_state = ref 0x1e3779b97f4a7c15

let jitter_cycles () =
  let c = !cfg in
  if c.jitter = 0 then 0
  else begin
    let z = !jit_state + 0x1e3779b97f4a7c15 in
    jit_state := z;
    let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
    let z = z lxor (z lsr 27) in
    (z land max_int) mod c.jitter
  end

(* ------------------------------------------------------------------ *)
(* The charge / yield / deliver prologue executed before every access. *)

(* Promote fault-delayed signals whose maturity clock has passed into the
   ordinary pending count.  Cheap when no fault is active (list empty). *)
let promote_matured f =
  match f.delayed with
  | [] -> ()
  | ds ->
      let matured, inflight = List.partition (fun at -> at <= f.clock) ds in
      if matured <> [] then begin
        f.delayed <- inflight;
        f.pending <- f.pending + List.length matured
      end

(* Virtual-clock timestamp of a fiber, in ns (what [now_ns] returns for
   the current fiber). *)
let fiber_ns f = int_of_float (float_of_int f.clock /. !cfg.ghz)

let deliver_pending f =
  promote_matured f;
  if f.pending > f.delivered then begin
    f.seen <- f.seen + (f.pending - f.delivered);
    f.delivered <- f.pending;
    f.clock <- f.clock + !cfg.c_signal_handle;
    if !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit ~tid:f.id ~ns:(fiber_ns f)
        Nbr_obs.Trace.Signal_delivered f.pending 0;
    if f.restartable then begin
      f.clock <- f.clock + !cfg.c_longjmp;
      if !Nbr_obs.Trace.on then
        Nbr_obs.Trace.emit ~tid:f.id ~ns:(fiber_ns f)
          Nbr_obs.Trace.Neutralized f.pending 0;
      raise Neutralized
    end
  end

let maybe_slice_end f =
  let c = !cfg in
  if f.qacc >= c.quantum then begin
    f.qacc <- 0;
    let l = !live in
    if l > c.cores then
      (* Round-robin: after a quantum, wait for the other runnable threads
         to take their slices, plus a context-switch cost.  This is where
         oversubscription hurts, and where a descheduled thread delays
         epoch advancement for the EBR family. *)
      f.clock <- f.clock + c.ctx_switch + (c.quantum * (l - c.cores) / c.cores)
  end

(* Yield first when the slice is up (so lower-clock fibers run), then
   deliver pending signals; the caller performs the access immediately
   after, with nothing in between. *)
let prologue cost =
  let f = !cur in
  if f.id >= 0 then begin
    let cost = cost + jitter_cycles () in
    f.hb <- f.hb + 1;
    f.clock <- f.clock + cost;
    f.acc <- f.acc + cost;
    f.qacc <- f.qacc + cost;
    maybe_slice_end f;
    if f.acc >= !cfg.granularity then begin
      f.acc <- 0;
      Effect.perform Yield
    end;
    deliver_pending f
  end

(* ------------------------------------------------------------------ *)
(* Atomic cells.                                                       *)

let make v = { v; owner = owner_fresh }

(* Padding is a real-hardware concern; the sim's cost model is per-cell
   (ownership tags), so contended and uncontended cells are already
   distinct and padding would change nothing. *)
let make_padded = make

let load_cost a base =
  let f = !cur in
  if a.owner = f.id || a.owner = owner_shared || a.owner = owner_fresh then
    base
  else begin
    a.owner <- owner_shared;
    base + !cfg.c_miss
  end

let write_cost a base =
  let f = !cur in
  let c =
    if a.owner = f.id || a.owner = owner_fresh then base
    else base + !cfg.c_miss
  in
  a.owner <- f.id;
  c

let load a =
  if in_fiber () then prologue (load_cost a !cfg.c_load);
  a.v

let plain_load a =
  if in_fiber () then prologue (load_cost a !cfg.c_plain_load);
  a.v

let store a v =
  if in_fiber () then prologue (write_cost a !cfg.c_store);
  a.v <- v

let cas a expected desired =
  if in_fiber () then prologue (write_cost a !cfg.c_atomic);
  if a.v = expected then begin
    a.v <- desired;
    true
  end
  else false

let faa a d =
  if in_fiber () then prologue (write_cost a !cfg.c_atomic);
  let old = a.v in
  a.v <- old + d;
  old

let xchg a v =
  if in_fiber () then prologue (write_cost a !cfg.c_atomic);
  let old = a.v in
  a.v <- v;
  old

(* ------------------------------------------------------------------ *)
(* Neutralization.                                                     *)

let set_restartable_t _ b =
  (* Charged like an atomic RMW: the paper uses CAS/XCHG here purely for
     its fence (Algorithm 1, lines 8 and 12). *)
  if in_fiber () then prologue !cfg.c_atomic;
  (!cur).restartable <- b

let is_restartable () = (!cur).restartable

let send_signal t =
  if in_fiber () then prologue !cfg.c_signal_send;
  incr sigs_sent;
  if !Nbr_obs.Trace.on then
    Nbr_obs.Trace.emit ~tid:(self ())
      ~ns:(if in_fiber () then fiber_ns !cur else 0)
      Nbr_obs.Trace.Signal_sent t 0;
  let fs = !fibers in
  if t >= 0 && t < Array.length fs then begin
    let v = fs.(t) in
    match !fault_fn with
    | None -> v.pending <- v.pending + 1
    | Some decide -> (
        match decide ~sender:(self ()) ~target:t with
        | Runtime_intf.Sig_deliver -> v.pending <- v.pending + 1
        | Runtime_intf.Sig_drop -> incr sigs_dropped
        | Runtime_intf.Sig_delay ns ->
            (* Maturity is measured on the victim's clock: per-fiber clocks
               are loosely synchronized by the min-heap scheduler, and the
               victim is the one that must not see the handler early. *)
            let at = v.clock + int_of_float (float_of_int ns *. !cfg.ghz) in
            v.delayed <- at :: v.delayed)
  end

(* The delivery points take the caller's tid to keep the signature aligned
   with the native runtime, where the argument saves a DLS lookup; the sim
   has no DLS (the current fiber is a ref), so the tid is ignored and
   charged nothing. *)

let poll_t _ =
  (* Every access is already a delivery point; polling is free here. *)
  ()

let consume_pending_t _ =
  (* Deliveries happen inline at every access; by the time a fiber runs
     straight-line code after an access, nothing can be pending — unless a
     fault delayed delivery.  An in-flight delayed signal was {e sent}
     before this point, so [end_read] must treat it exactly like the
     polling runtimes treat an undelivered pending signal: report it (the
     caller restarts), or the reservation-publication race re-opens. *)
  let f = !cur in
  if f.id < 0 then false
  else begin
    let had = f.delayed <> [] || f.pending > f.delivered in
    f.delayed <- [];
    f.delivered <- f.pending;
    if had then f.seen <- f.seen + 1;
    if had && !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit ~tid:f.id ~ns:(fiber_ns f)
        Nbr_obs.Trace.Signal_consumed f.pending 0;
    had
  end

let drain_signals_t _ =
  let f = !cur in
  if f.id >= 0 then begin
    let had = f.delayed <> [] || f.pending > f.delivered in
    if had && !Nbr_obs.Trace.on then
      Nbr_obs.Trace.emit ~tid:f.id ~ns:(fiber_ns f)
        Nbr_obs.Trace.Signal_consumed f.pending 1;
    f.delayed <- [];
    f.delivered <- f.pending;
    if had then f.seen <- f.seen + 1
  end

(* Cross-thread progress readouts for the crash-recovery watchdog.  The
   reads are charged like plain loads of a remote line; values are exact
   here (single domain), which is what makes watchdog verdicts — and the
   chaos trials built on them — deterministic in sim. *)

let heartbeat t =
  if in_fiber () then prologue (!cfg).c_plain_load;
  let fs = !fibers in
  if t >= 0 && t < Array.length fs then fs.(t).hb else 0

let signals_seen t =
  if in_fiber () then prologue (!cfg).c_plain_load;
  let fs = !fibers in
  if t >= 0 && t < Array.length fs then fs.(t).seen else 0

let fault_injection_active () = !fault_fn <> None

let checkpoint f =
  if in_fiber () then prologue !cfg.c_setjmp;
  let rec go () = try f () with Neutralized -> go () in
  go ()

(* ------------------------------------------------------------------ *)
(* Time.                                                               *)

let now_ns () =
  let f = !cur in
  if f.id >= 0 then int_of_float (float_of_int f.clock /. !cfg.ghz) else 0

let stall_ns ns =
  let f = !cur in
  if f.id >= 0 then begin
    f.clock <- f.clock + int_of_float (float_of_int ns *. !cfg.ghz);
    f.acc <- 0;
    f.qacc <- 0;
    Effect.perform Yield;
    deliver_pending f
  end

let cpu_relax () = if in_fiber () then prologue 6
let work cycles = if in_fiber () then prologue cycles

(* ------------------------------------------------------------------ *)
(* Scheduler: a binary min-heap of runnable fibers keyed by clock.     *)

module Heap = struct
  type t = { mutable a : fiber array; mutable n : int }

  let create cap = { a = Array.make (max cap 1) (mk_fiber (-1)); n = 0 }
  let lt x y = x.clock < y.clock || (x.clock = y.clock && x.id < y.id)

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let push h f =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) h.a.(0) in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- f;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    let up = ref true in
    while !up && !i > 0 do
      let p = (!i - 1) / 2 in
      if lt h.a.(!i) h.a.(p) then begin
        swap h !i p;
        i := p
      end
      else up := false
    done

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let down = ref true in
    while !down do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.n && lt h.a.(l) h.a.(!m) then m := l;
      if r < h.n && lt h.a.(r) h.a.(!m) then m := r;
      if !m <> !i then begin
        swap h !i !m;
        i := !m
      end
      else down := false
    done;
    top
end

let run ~nthreads:n body =
  if n < 1 then invalid_arg "Sim_rt.run: nthreads must be >= 1";
  let c = !cfg in
  jit_state := 0x1e3779b97f4a7c15 lxor c.seed;
  sigs_sent := 0;
  sigs_dropped := 0;
  events := 0;
  n_threads := n;
  let fs = Array.init n mk_fiber in
  (* Oversubscribed: only [cores] threads can really start at once; the
     rest begin after earlier waves have had a slice (round-robin).
     Without this, every thread would run its first quantum
     "simultaneously", overcommitting the machine at start-up. *)
  if n > c.cores then
    Array.iter
      (fun f -> f.clock <- f.id / c.cores * (c.quantum + c.ctx_switch))
      fs;
  fibers := fs;
  live := n;
  let heap = Heap.create (2 * n) in
  let failure : exn option ref = ref None in
  let resume_one f =
    let open Effect.Deep in
    cur := f;
    (match f.kont with
    | Some k ->
        f.kont <- None;
        continue k ()
    | None ->
        (* First activation of this fiber. *)
        match_with
          (fun () -> body f.id)
          ()
          {
            retc =
              (fun () ->
                f.finished <- true;
                decr live);
            exnc =
              (fun e ->
                f.finished <- true;
                decr live;
                if !failure = None then failure := Some e);
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Yield ->
                    Some (fun (k : (a, unit) continuation) -> f.kont <- Some k)
                | _ -> None);
          });
    cur := mk_fiber (-1)
  in
  let stuck_msg () =
    String.concat "; "
      (Array.to_list
         (Array.map
            (fun g ->
              Printf.sprintf "t%d clock=%d fin=%b restartable=%b" g.id g.clock
                g.finished g.restartable)
            fs))
  in
  let budget_blown () =
    incr events;
    if !max_events > 0 && !events > !max_events then begin
      failure := Some (Stuck (stuck_msg ()));
      true
    end
    else false
  in
  (match !sched_ctl with
  | None ->
      Array.iter (fun f -> Heap.push heap f) fs;
      while heap.Heap.n > 0 && !failure = None do
        let f = Heap.pop heap in
        if not f.finished then
          if not (budget_blown ()) then begin
            resume_one f;
            if not f.finished then Heap.push heap f
          end
      done
  | Some pick ->
      (* Controlled mode: gather the unfinished fibers in id order and ask
         the controller which one runs.  Single-domain and effect-driven,
         so the execution is a pure function of the decision sequence. *)
      let buf = Array.make n (-1) in
      let last = ref (-1) in
      let running = ref true in
      while !running && !failure = None do
        let k = ref 0 in
        Array.iter
          (fun f ->
            if not f.finished then begin
              buf.(!k) <- f.id;
              incr k
            end)
          fs;
        if !k = 0 then running := false
        else if not (budget_blown ()) then begin
          let runnable = Array.sub buf 0 !k in
          let idx = pick ~last:!last ~runnable in
          let idx = if idx < 0 || idx >= !k then 0 else idx in
          let f = fs.(runnable.(idx)) in
          last := f.id;
          resume_one f
        end
      done);
  fibers := [||];
  n_threads := 1;
  match !failure with None -> () | Some e -> raise e
