(** Synchronization substrate: PRNG, cache-line padding, lock-free stack,
    thread-local vectors.

    Runtime-independent building blocks, below {!Nbr_runtime} in the
    dependency order (the native runtime itself uses {!Padded} for its
    per-thread signal state).  The runtime-parametric spinlock lives in
    [nbr.ds] with its users. *)

module Rng = Rng
module Int_vec = Int_vec
module Padded = Padded
module Treiber = Treiber
