(** Cache-line-isolated heap blocks and atomic cells.

    OCaml boxes every [Atomic.t] in its own two-word heap block, and blocks
    allocated together (e.g. by [Array.init]) end up adjacent in the minor
    heap and stay adjacent after promotion.  Per-thread cells allocated
    that way — signal counters, restartable flags, reservation slots —
    therefore pack eight to a cache line, and every write by one thread
    invalidates the line under seven others: textbook false sharing, and
    exactly the cross-thread cache traffic an SMR benchmark is supposed to
    measure rather than manufacture.

    [copy_as_padded] is the classic fix (the [multicore-magic] /
    [Saturn] idiom): re-allocate the block with its size rounded up to a
    whole number of cache lines, so no two padded blocks can share a line.
    On OCaml ≥ 5.2 the stdlib offers [Atomic.make_contended] with the same
    intent; this module is the fallback for the 5.1 toolchain pinned here,
    and the single place to swap the stdlib primitive in when the pin
    moves.

    Padding is a {e layout} property, invisible to program semantics: the
    atomic primitives operate on field 0 of the block regardless of its
    size, and the GC scans the [Val_unit]-initialised padding words
    harmlessly.  The simulated runtime models cache-coherence cost per
    {e cell} (ownership tags), not per line, so it needs no padding —
    {!Sim_rt.make_padded} is plain [make]. *)

(** Cache line size in words: 64 bytes on every x86-64/arm64 this targets.
    Padded blocks are rounded up to two lines (128 bytes) to also defeat
    adjacent-line prefetcher sharing, matching [Atomic.make_contended]. *)
let cache_line_words = 8

let padded_words = 2 * cache_line_words

(** [copy_as_padded v] returns a copy of the boxed value [v] whose heap
    block is padded to [padded_words] words, so it shares no cache line
    with any other padded (or smaller) block.  Unboxed values (ints,
    constant constructors) are returned unchanged — they have no block to
    pad.  Only safe for blocks whose fields the GC may scan (records,
    tuples, atomics, arrays of boxed/immediate values): exactly the shapes
    used here. *)
let copy_as_padded (type a) (v : a) : a =
  let r = Obj.repr v in
  if Obj.is_int r then v
  else begin
    let size = Obj.size r in
    if size >= padded_words || Obj.tag r >= Obj.no_scan_tag then v
    else begin
      (* [Obj.new_block] initialises scannable fields to [()], so the
         padding words are valid values for the GC. *)
      let b = Obj.new_block (Obj.tag r) padded_words in
      for i = 0 to size - 1 do
        Obj.set_field b i (Obj.field r i)
      done;
      Obj.obj b
    end
  end

(** A fresh atomic integer cell on its own cache line(s). *)
let make_atomic (v : int) : int Atomic.t = copy_as_padded (Atomic.make v)

(** A fresh atomic boolean cell on its own cache line(s). *)
let make_bool (v : bool) : bool Atomic.t = copy_as_padded (Atomic.make v)

(** A fresh padded atomic of any content type (e.g. the delayed-signal
    lists of the fault layer). *)
let make (v : 'a) : 'a Atomic.t = copy_as_padded (Atomic.make v)
