(** Treiber stack: a lock-free LIFO over an atomic cons-list head.

    Replaces the mutex-guarded overflow stack on the pool's
    starvation path: frees rerouted cross-thread during pool pressure
    must not serialise behind a lock that the (possibly descheduled)
    holder is in no hurry to release — lock-freedom is exactly the
    property the pressure path needs, since it runs while other threads
    are stalled by construction (E2, chaos plans).

    The classic ABA hazard of Treiber stacks does not exist here: nodes
    are immutable OCaml cons cells compared by physical identity, and a
    popped cell can never be re-CASed into the head by a stale push,
    because pushes allocate fresh cells and the GC keeps any cell a racing
    pop still references alive (the "GC solves ABA" argument).

    Uses stdlib [Atomic] rather than [Rt.aint]: like the pool's other
    free-space bookkeeping, its cost is modelled explicitly by the
    caller ([Rt.work c_free_slow]), not by the simulator's per-access
    accounting. *)

type 'a t = 'a list Atomic.t

let create () : 'a t = Padded.make []

let rec push (t : 'a t) x =
  let old = Atomic.get t in
  if not (Atomic.compare_and_set t old (x :: old)) then begin
    Domain.cpu_relax ();
    push t x
  end

let rec pop (t : 'a t) =
  match Atomic.get t with
  | [] -> None
  | x :: rest as old ->
      if Atomic.compare_and_set t old rest then Some x
      else begin
        Domain.cpu_relax ();
        pop t
      end

let is_empty (t : 'a t) = Atomic.get t = []

(** O(n); diagnostics and tests only. *)
let length (t : 'a t) = List.length (Atomic.get t)
