(** Experiment definitions: one entry per table/figure of the paper.

    Every experiment runs on the simulated multicore (see DESIGN.md §1 for
    the substitution argument and §5 for the scale mapping).  The paper's
    4-socket Xeon (192 hardware threads) is modelled as a 16-core machine;
    thread sweeps run past the core count so the oversubscription regime
    (paper P4) is exercised.  Structure sizes are scaled with the machine
    (documented per figure); every trial validates set semantics and
    use-after-free freedom, so each figure doubles as a system test.

    Throughput is reported in simulated Mops/s: absolute values are not
    comparable to the paper's hardware, the {e shape} — ordering,
    crossovers, bounded-vs-unbounded memory — is what reproduces. *)

module Sim = Nbr_runtime.Sim_rt
module H = Harness.Make (Sim)

type profile = { duration_ns : int; threads : int list; seeds : int list }

let std_profile =
  {
    duration_ns = 1_600_000;
    threads = [ 4; 8; 16; 24; 32; 48; 64 ];
    seeds = [ 1 ];
  }

let quick_profile =
  { duration_ns = 500_000; threads = [ 4; 16; 32 ]; seeds = [ 1 ] }

let sim_cores = 16

let base_sim_config =
  {
    Sim.default_config with
    cores = sim_cores;
    granularity = 400 (* several accesses per scheduler yield; delivery
                         is still checked at every access *);
    quantum = 300_000
    (* ~0.14 ms at 2.1 GHz.  When oversubscribed, a preempted thread parks
       for (threads/cores - 1) slices — several park/run cycles per trial,
       so the epoch delays this causes for the EBR family (the paper's
       "delayed thread vulnerability") and the resulting reclamation
       bursts land inside the measurement window. *);
  }

(* The scheme lineups of the paper's figures. *)
let e1_schemes = [ "nbr+"; "debra"; "qsbr"; "rcu"; "ibr"; "hp"; "none" ]
let e3_schemes = [ "nbr+"; "nbr"; "debra"; "none" ]

(* The three workload profiles of §7. *)
let workloads = [ ("50i-50d", 50, 50); ("25i-25d", 25, 25); ("5i-5d", 5, 5) ]

let validated = ref 0
let failures = ref 0

(** Record an out-of-band failure (e.g. a driver catching pool
    exhaustion) so it still fails the run via {!summary}. *)
let note_failure msg =
  incr failures;
  Format.printf "VALIDATION FAILURE: %s@." msg

let run_point ~scheme ~structure ~profile ~key_range ~smr_threshold ~nthreads
    ~ins ~del ?stall () =
  let tput = ref 0.0 and peak = ref 0 and sigs = ref 0 in
  List.iter
    (fun seed ->
      Sim.set_config { base_sim_config with seed };
      let cfg =
        Trial.Cfg.make ~nthreads ~duration_ns:profile.duration_ns ~key_range
          ~ins_pct:ins ~del_pct:del
          ~smr:
            (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
               smr_threshold)
          ~seed ?stall ()
      in
      let r = H.run ~scheme ~structure cfg in
      incr validated;
      if not (Trial.valid r) then begin
        incr failures;
        Format.printf "VALIDATION FAILURE: %a@." Trial.pp_row r
      end;
      tput := !tput +. r.throughput_mops;
      peak := max !peak r.peak_unreclaimed;
      sigs := !sigs + r.signals)
    profile.seeds;
  let n = List.length profile.seeds in
  (!tput /. float_of_int n, !peak, !sigs / n)

(* ------------------------------------------------------------------ *)
(* E1: throughput sweeps (figures 3a, 3b, 5a, 5b, 6a, 6b).             *)

let throughput_sweep ?(mixes = workloads) ~title ~structure ~schemes
    ~key_range ~smr_threshold profile =
  List.iter
    (fun (wname, ins, del) ->
      let rows =
        List.map
          (fun nthreads ->
            let cells =
              List.map
                (fun scheme ->
                  if not (H.supported ~scheme ~structure) then (scheme, "n/a")
                  else
                    let t, _, _ =
                      run_point ~scheme ~structure ~profile ~key_range
                        ~smr_threshold ~nthreads ~ins ~del ()
                    in
                    (scheme, Table.f3 t))
                schemes
            in
            (string_of_int nthreads, cells))
          profile.threads
      in
      Table.print_matrix
        ~title:
          (Printf.sprintf "%s | %s | %s | size=%d (Mops/s, simulated)" title
             structure wname key_range)
        ~col_header:"threads" ~cols:schemes ~rows
        ~cell:(fun cells c ->
          match List.assoc_opt c cells with Some v -> v | None -> "-"))
    mixes

let fig3a quick =
  let p = if quick then quick_profile else std_profile in
  throughput_sweep
    ~title:"fig3a: DGT tree throughput (paper: 2M keys, 192 hw threads)"
    ~structure:"dgt-tree" ~schemes:e1_schemes ~key_range:65536
    ~smr_threshold:512 p

let fig3b quick =
  let p = if quick then quick_profile else std_profile in
  throughput_sweep
    ~title:"fig3b: lazy list throughput (paper: 20K keys)"
    ~structure:"lazy-list" ~schemes:e1_schemes
    ~key_range:(if quick then 512 else 2048)
    ~smr_threshold:256 p

let fig5a quick =
  let p = if quick then quick_profile else std_profile in
  throughput_sweep
    ~title:"fig5a: DGT tree, large size (paper: 20M keys)"
    ~structure:"dgt-tree" ~schemes:e1_schemes ~key_range:262144
    ~smr_threshold:512 p

let fig5b quick =
  let p = if quick then quick_profile else std_profile in
  throughput_sweep
    ~title:"fig5b: DGT tree, small size / high contention (paper: 20K keys)"
    ~structure:"dgt-tree" ~schemes:e1_schemes ~key_range:2048
    ~smr_threshold:256 p

let fig6a quick =
  let p = if quick then quick_profile else std_profile in
  throughput_sweep
    ~title:"fig6a: lazy list, moderate size (paper: 20K keys)"
    ~structure:"lazy-list" ~schemes:e1_schemes
    ~key_range:(if quick then 512 else 2048)
    ~smr_threshold:256 p

let fig6b quick =
  let p = if quick then quick_profile else std_profile in
  throughput_sweep
    ~title:"fig6b: lazy list, tiny size / extreme contention (paper: 200 keys)"
    ~structure:"lazy-list" ~schemes:e1_schemes ~key_range:200 ~smr_threshold:64
    p

(* ------------------------------------------------------------------ *)
(* E3: k-NBR on multi-phase structures (figures 4a, 4b).               *)

let fig4a quick =
  let p = if quick then quick_profile else std_profile in
  let mixes = [ ("50i-50d", 50, 50) ] in
  throughput_sweep ~mixes
    ~title:
      "fig4a: (a,b)-tree with k-NBR, low contention (paper: 2M) and high \
       contention (paper: 200)"
    ~structure:"ab-tree" ~schemes:e3_schemes ~key_range:65536
    ~smr_threshold:512 p;
  throughput_sweep ~mixes
    ~title:"fig4a (high contention): (a,b)-tree, 200 keys"
    ~structure:"ab-tree" ~schemes:e3_schemes ~key_range:200 ~smr_threshold:64 p

let fig4b quick =
  let p = if quick then quick_profile else std_profile in
  let mixes = [ ("50i-50d", 50, 50) ] in
  throughput_sweep ~mixes
    ~title:
      "fig4b: Harris list with k-NBR, low contention (paper: 20K) and high \
       contention (paper: 200)"
    ~structure:"harris-list" ~schemes:e3_schemes
    ~key_range:(if quick then 512 else 2048)
    ~smr_threshold:256 p;
  throughput_sweep ~mixes
    ~title:"fig4b (high contention): Harris list, 200 keys"
    ~structure:"harris-list" ~schemes:e3_schemes ~key_range:200
    ~smr_threshold:64 p

(* ------------------------------------------------------------------ *)
(* E2: peak unreclaimed memory with and without a stalled thread       *)
(* (figures 4c, 4d).                                                   *)

let memory_experiment ~title ~stalled quick =
  let p = if quick then quick_profile else std_profile in
  let duration = p.duration_ns * 4 in
  let schemes = [ "nbr+"; "nbr"; "debra"; "qsbr"; "rcu"; "ibr"; "hp" ] in
  let rows =
    List.map
      (fun nthreads ->
        let cells =
          List.map
            (fun scheme ->
              Sim.set_config { base_sim_config with seed = 7 };
              let stall =
                if stalled then
                  Some { Trial.stall_tid = 1; stall_ns = duration }
                else None
              in
              let cfg =
                Trial.Cfg.make ~nthreads ~duration_ns:duration ~key_range:65536
                  ~ins_pct:50 ~del_pct:50
                  ~smr:
                    (Nbr_core.Smr_config.with_threshold
                       Nbr_core.Smr_config.default 512)
                  ~seed:7 ?stall ()
              in
              let r = H.run ~scheme ~structure:"dgt-tree" cfg in
              incr validated;
              if not (Trial.valid r) then begin
                incr failures;
                Format.printf "VALIDATION FAILURE: %a@." Trial.pp_row r
              end;
              (scheme, string_of_int r.peak_unreclaimed))
            schemes
        in
        (string_of_int nthreads, cells))
      p.threads
  in
  Table.print_matrix ~title ~col_header:"threads" ~cols:schemes ~rows
    ~cell:(fun cells c ->
      match List.assoc_opt c cells with Some v -> v | None -> "-")

let fig4c quick =
  memory_experiment
    ~title:
      "fig4c: peak unreclaimed records, DGT tree 50i-50d, one thread STALLED \
       inside an operation (paper fig 4c: DEBRA/RCU grow, bounded schemes \
       stay flat)"
    ~stalled:true quick

let fig4d quick =
  memory_experiment
    ~title:
      "fig4d: peak unreclaimed records, DGT tree 50i-50d, no stalled thread"
    ~stalled:false quick

(* ------------------------------------------------------------------ *)
(* E2-chaos: bounded-garbage invariant under a seeded fault schedule    *)
(* (stalls + a crash + delayed signals — the adversity §7 argues about).*)

(* Which schemes claim P2 (bounded garbage).  Mirrors each scheme's
   [bounded_garbage] flag; the harness is string-keyed so the flag is
   restated here. *)
let claims_bounded = function
  | "nbr" | "nbr+" | "ibr" | "hp" | "he" -> true
  | _ -> false

let chaos quick =
  let p = if quick then quick_profile else std_profile in
  let nthreads = 8 in
  let duration = p.duration_ns * 4 in
  (* Small key range: high churn per key keeps retire rates up, and keeps
     the interval-pinning slack in [Trial.garbage_bound] small enough that
     an epoch scheme tracking the crashed thread's *duration* visibly
     crosses it. *)
  let key_range = 128 in
  let schemes =
    [ "nbr+"; "nbr"; "ibr"; "hp"; "he"; "debra"; "qsbr"; "rcu"; "none" ]
  in
  let seeds = if quick then [ 11 ] else [ 11; 12; 13 ] in
  print_newline ();
  print_endline
    "## E2-chaos (§7): bounded-garbage invariant under a seeded fault plan";
  print_endline
    "   faults: 2 threads stalled at random ops, 1 thread crashed mid-op";
  print_endline
    "   (no end_op: announcements/reservations orphaned), 25% of signals";
  print_endline
    "   delivered 20us late.  Schemes claiming P2 must keep max per-thread";
  print_endline
    "   garbage under the bound; epoch schemes are expected to blow past it.";
  List.iter
    (fun seed ->
      let plan =
        Nbr_fault.Fault_plan.chaos ~seed ~nthreads ~stalls:2 ~crashes:1
          ~stall_ns:(duration / 2) ~ops_window:200
          ~signal:
            {
              Nbr_fault.Fault_plan.delay_pct = 25;
              delay_ns = 20_000;
              drop_pct = 0;
            }
          ()
      in
      Format.printf "@.seed %d: %a@." seed Nbr_fault.Fault_plan.pp plan;
      Printf.printf "%-8s %-12s %12s %8s %10s %9s  %s\n" "scheme" "structure"
        "max_garbage" "bound" "peak_garb" "pressure" "verdict";
      List.iter
        (fun scheme ->
          let structure =
            (* HP/HE cannot run mark-traversing structures (P5). *)
            if H.supported ~scheme ~structure:"harris-list" then "harris-list"
            else "lazy-list"
          in
          Sim.set_config { base_sim_config with seed };
          let cfg =
            Trial.Cfg.make ~nthreads ~duration_ns:duration ~key_range ~ins_pct:50
              ~del_pct:50
              ~smr:
                (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
                   64)
              ~seed ~faults:plan ()
          in
          let r = H.run ~scheme ~structure cfg in
          incr validated;
          if not (Trial.valid r) then begin
            incr failures;
            Format.printf "VALIDATION FAILURE: %a@." Trial.pp_row r
          end;
          let bound = Trial.garbage_bound cfg in
          let mg = Nbr_core.Smr_stats.max_garbage r.smr_stats in
          let verdict =
            if claims_bounded scheme then
              if mg <= bound then "bounded (P2 holds)"
              else begin
                (* A bounded scheme exceeding the bound is a real failure
                   of the reproduction, not an expected degradation. *)
                incr failures;
                "BOUND VIOLATION"
              end
            else if mg > bound then "grew past bound (expected: no P2)"
            else "under bound (no P2 claim)"
          in
          Printf.printf "%-8s %-12s %12d %8d %10d %9d  %s\n%!" scheme structure
            mg bound r.peak_garbage r.pressure_events verdict)
        schemes)
    seeds

(* ------------------------------------------------------------------ *)
(* E2-churn: dynamic membership — workers leave and rejoin mid-trial.   *)

(* One churn trial: run, validate, count lifecycle trace events, and
   check the garbage bound for P2 schemes (orphans count against the
   adopter, so the bound covers them).  Returns (max_garbage, bound,
   orphans adopted, watchdog deaths, worst escalation round). *)
let churn_trial ~scheme ~structure ~nthreads ~duration ~key_range ~seed
    ?faults ~churn_ops () =
  Sim.set_config { base_sim_config with seed };
  Nbr_obs.Trace.enable ~nthreads ();
  let cfg =
    Trial.Cfg.make ~nthreads ~duration_ns:duration ~key_range ~ins_pct:50
      ~del_pct:50
      ~smr:(Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 64)
      ~seed ?faults ~churn_ops ()
  in
  let r = H.run ~scheme ~structure cfg in
  let adopted = ref 0 and deaths = ref 0 and worst_round = ref 0 in
  List.iter
    (fun e ->
      match e.Nbr_obs.Trace.e_kind with
      | Nbr_obs.Trace.Orphan_adopted -> adopted := !adopted + e.Nbr_obs.Trace.e_b
      | Nbr_obs.Trace.Peer_declared_dead -> incr deaths
      | Nbr_obs.Trace.Heartbeat_timeout ->
          worst_round := max !worst_round e.Nbr_obs.Trace.e_b
      | _ -> ())
    (Nbr_obs.Trace.events ());
  Nbr_obs.Trace.clear ();
  incr validated;
  if not (Trial.valid r) then begin
    incr failures;
    Format.printf "VALIDATION FAILURE: %a@." Trial.pp_row r
  end;
  let bound = Trial.garbage_bound cfg in
  let mg = Nbr_core.Smr_stats.max_garbage r.smr_stats in
  if claims_bounded scheme && mg > bound then begin
    incr failures;
    Format.printf "VALIDATION FAILURE: %s/%s churn max_garbage %d > bound %d@."
      scheme structure mg bound
  end;
  (mg, bound, !adopted, !deaths, !worst_round)

let churn quick =
  let p = if quick then quick_profile else std_profile in
  let nthreads = 8 in
  let duration = p.duration_ns * 4 in
  let key_range = 128 in
  let schemes =
    [ "nbr+"; "nbr"; "ibr"; "hp"; "he"; "debra"; "qsbr"; "rcu"; "none" ]
  in
  let seeds = if quick then [ 21 ] else [ 21; 22 ] in
  print_newline ();
  print_endline
    "## E2-churn: dynamic membership (join/leave) across all schemes";
  print_endline
    "   Every worker but thread 0 deregisters and immediately re-registers";
  print_endline
    "   each 64 completed ops, orphaning its buffered retires for survivors";
  print_endline
    "   to adopt.  Set semantics must hold, P2 schemes must keep max garbage";
  print_endline
    "   under the bound counting orphans, and — with no faults injected —";
  print_endline
    "   the watchdog must never fire (a leaving thread is not a dead one).";
  List.iter
    (fun seed ->
      Printf.printf "\nseed %d (churn only):\n" seed;
      Printf.printf "%-8s %-12s %12s %8s %8s %7s  %s\n" "scheme" "structure"
        "max_garbage" "bound" "adopted" "deaths" "verdict";
      List.iter
        (fun scheme ->
          let structure =
            if H.supported ~scheme ~structure:"harris-list" then "harris-list"
            else "lazy-list"
          in
          let mg, bound, adopted, deaths, _ =
            churn_trial ~scheme ~structure ~nthreads ~duration ~key_range
              ~seed ~churn_ops:64 ()
          in
          (* No fault plan ⇒ the watchdog is disarmed; any death here means
             lifecycle state leaked across a clean deregister. *)
          if deaths > 0 then begin
            incr failures;
            Format.printf
              "VALIDATION FAILURE: %s spurious watchdog death under pure churn@."
              scheme
          end;
          let verdict =
            if claims_bounded scheme then
              if mg <= bound then "bounded (P2 holds)" else "BOUND VIOLATION"
            else "no P2 claim"
          in
          Printf.printf "%-8s %-12s %12d %8d %8d %7d  %s\n%!" scheme structure
            mg bound adopted deaths verdict)
        schemes)
    seeds;
  (* Churn composed with the chaos plan: leavers, stallers and a crasher
     at once.  The watchdog may now legitimately declare stalled threads
     dead; what must still hold is the garbage bound (orphans included)
     and that no writer wedges on the handshake — every escalation stays
     within the configured round budget. *)
  let wd_rounds = Nbr_core.Smr_config.default.Nbr_core.Smr_config.wd_rounds in
  List.iter
    (fun seed ->
      let plan =
        Nbr_fault.Fault_plan.chaos ~seed ~nthreads ~stalls:2 ~crashes:1
          ~stall_ns:(duration / 2) ~ops_window:200
          ~signal:
            {
              Nbr_fault.Fault_plan.delay_pct = 25;
              delay_ns = 20_000;
              drop_pct = 0;
            }
          ()
      in
      Format.printf "@.seed %d (churn + chaos): %a@." seed
        Nbr_fault.Fault_plan.pp plan;
      Printf.printf "%-8s %-12s %12s %8s %8s %7s %6s  %s\n" "scheme"
        "structure" "max_garbage" "bound" "adopted" "deaths" "rounds"
        "verdict";
      List.iter
        (fun scheme ->
          let structure =
            if H.supported ~scheme ~structure:"harris-list" then "harris-list"
            else "lazy-list"
          in
          let mg, bound, adopted, deaths, worst_round =
            churn_trial ~scheme ~structure ~nthreads ~duration ~key_range
              ~seed ~faults:plan ~churn_ops:64 ()
          in
          if worst_round > wd_rounds then begin
            incr failures;
            Format.printf
              "VALIDATION FAILURE: %s handshake escalated to round %d (budget %d)@."
              scheme worst_round wd_rounds
          end;
          let verdict =
            if claims_bounded scheme then
              if mg <= bound then "bounded (P2 holds)" else "BOUND VIOLATION"
            else if mg > bound then "grew past bound (expected: no P2)"
            else "under bound (no P2 claim)"
          in
          Printf.printf "%-8s %-12s %12d %8d %8d %7d %6d  %s\n%!" scheme
            structure mg bound adopted deaths worst_round verdict)
        schemes)
    (if quick then [ 31 ] else [ 31; 32 ])

(* ------------------------------------------------------------------ *)
(* A1: signal-count ablation — NBR's O(n²) vs NBR+'s O(n) (paper §5).  *)

let ablation_signals quick =
  let p = if quick then quick_profile else std_profile in
  let rows =
    List.map
      (fun nthreads ->
        let cells =
          List.concat_map
            (fun scheme ->
              let t, _, sigs =
                run_point ~scheme ~structure:"dgt-tree" ~profile:p
                  ~key_range:16384 ~smr_threshold:128 ~nthreads ~ins:50
                  ~del:50 ()
              in
              [
                (scheme ^ ":sig", string_of_int sigs);
                (scheme ^ ":Mops", Table.f3 t);
              ])
            [ "nbr"; "nbr+" ]
        in
        (string_of_int nthreads, cells))
      p.threads
  in
  Table.print_matrix
    ~title:
      "A1 (§5): signals sent per trial and throughput, NBR vs NBR+ — the \
       motivation for NBR+ (same reclamation, far fewer signals)"
    ~col_header:"threads"
    ~cols:[ "nbr:sig"; "nbr:Mops"; "nbr+:sig"; "nbr+:Mops" ]
    ~rows
    ~cell:(fun cells c ->
      match List.assoc_opt c cells with Some v -> v | None -> "-")

(* ------------------------------------------------------------------ *)
(* EXT: structures beyond the paper's evaluation set.                  *)

let ext_structures quick =
  let p = if quick then quick_profile else std_profile in
  let mixes = [ ("25i-25d", 25, 25) ] in
  throughput_sweep ~mixes
    ~title:
      "EXT: hash set (Harris-list buckets) — short traversals, high \
       allocation churn"
    (* No ibr: hash-set buckets are Harris lists, whose mark-tagged
       traversal era protection cannot cover (see Harness.unsupported). *)
    ~structure:"hash-set" ~schemes:[ "nbr+"; "nbr"; "debra"; "qsbr"; "none" ]
    ~key_range:16384 ~smr_threshold:256 p;
  throughput_sweep ~mixes
    ~title:
      "EXT: optimistic skiplist — up to 17 reservations per update (NBR's \
       R << bag-size assumption stress)"
    ~structure:"skip-list"
    ~schemes:[ "nbr+"; "nbr"; "debra"; "qsbr"; "rcu"; "ibr"; "none" ]
    ~key_range:16384 ~smr_threshold:256 p;
  throughput_sweep ~mixes
    ~title:"EXT: hazard eras (HE) vs HP vs interval (IBR) on the DGT tree"
    ~structure:"dgt-tree" ~schemes:[ "nbr+"; "hp"; "he"; "ibr" ]
    ~key_range:65536 ~smr_threshold:512 p

(* ------------------------------------------------------------------ *)
(* A2: the end_read publication fence (§4.3, lines 11-12).             *)

module Nat = Nbr_runtime.Native_rt
module HN = Harness.Make (Nat)

let ablation_fences quick =
  (* The race this protocol closes only exists in the polling (native)
     runtime: a reclaimer's signal can land between a reader's last poll
     and its reservation publish, and be missed by both sides unless
     end_read re-checks after its fenced flag flip.  We run the same
     workload with the check on and off and report window reads of freed
     slots plus end-state validity.  On a machine with few cores the
     window is narrow, so zeroes in the unsafe row mean "didn't manifest
     here", not "safe" — the simulator can't show this at all because its
     delivery is exact. *)
  print_newline ();
  print_endline
    "## A2 (§4.3): end_read publication-race check on/off (native runtime)";
  Printf.printf "%-10s %12s %12s %10s\n" "mode" "uaf-reads" "ops" "valid";
  List.iter
    (fun (label, unsafe) ->
      let smr =
        {
          (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 64)
          with
          Nbr_core.Smr_config.unsafe_end_read = unsafe;
        }
      in
      let cfg =
        Trial.Cfg.make ~nthreads:6
          ~duration_ns:(if quick then 150_000_000 else 600_000_000)
          ~key_range:64 ~ins_pct:40 ~del_pct:40 ~smr ~seed:3 ()
      in
      let r = HN.run ~scheme:"nbr+" ~structure:"lazy-list" cfg in
      (* Only the safe configuration counts towards the validation gate. *)
      if not unsafe then begin
        incr validated;
        if not (Trial.valid r) then incr failures
      end;
      Printf.printf "%-10s %12d %12d %10b\n%!" label r.uaf_reads r.total_ops
        (r.final_size = r.expected_size))
    [ ("safe", false); ("unsafe", true) ]

(* ------------------------------------------------------------------ *)
(* E-reclaim: background reclamation (DESIGN.md §12).  Two parts:      *)
(* tail latency inline vs reclaimer on an update-heavy workload, then  *)
(* the pressure-chaos adversary (hogs + worker stalls/crash + a        *)
(* reclaimer stall and crash-with-restart) across every scheme — no    *)
(* exhaustion, P2 bounds indifferent to the reclaimer's fate, and the  *)
(* degrade → restore cycle visible in the trace.                       *)

let reclaim quick =
  let nthreads = 8 in
  let key_range = 128 in
  print_newline ();
  print_endline "## E-reclaim (DESIGN.md §12): background reclaimer role";
  (* -- Part 1: update-heavy tail latency, inline vs healthy reclaimer.
     Threshold sweeps leave the hot path, so the p99/p99.9 of update
     operations (which pay for inline sweeps) should drop. *)
  let lat_duration = if quick then 1_000_000 else 3_200_000 in
  let lat_schemes = if quick then [ "nbr+" ] else [ "nbr+"; "ibr"; "hp" ] in
  print_endline
    "   Part 1 — update-op tail latency (sim-virtual ns), inline vs reclaimer:";
  Printf.printf "   %-8s %-9s %10s %12s %10s %12s\n" "scheme" "mode" "ins p99"
    "ins p99.9" "del p99" "del p99.9";
  List.iter
    (fun scheme ->
      List.iter
        (fun (mode, reclaim) ->
          Sim.set_config { base_sim_config with seed = 31 };
          let cfg =
            Trial.Cfg.make ~nthreads ~duration_ns:lat_duration ~key_range
              ~ins_pct:50 ~del_pct:50
              ~smr:
                (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
                   64)
              ~seed:31 ?reclaim ~record_latency:true ()
          in
          let r = H.run ~scheme ~structure:"harris-list" cfg in
          incr validated;
          if not (Trial.valid r) then begin
            incr failures;
            Format.printf "VALIDATION FAILURE: %a@." Trial.pp_row r
          end;
          match r.latency with
          | None -> note_failure (scheme ^ ": latency recording lost")
          | Some l ->
              Printf.printf "   %-8s %-9s %10.0f %12.0f %10.0f %12.0f\n%!"
                scheme mode l.Trial.lat_insert.Nbr_obs.Histogram.s_p99
                l.Trial.lat_insert.Nbr_obs.Histogram.s_p999
                l.Trial.lat_delete.Nbr_obs.Histogram.s_p99
                l.Trial.lat_delete.Nbr_obs.Histogram.s_p999)
        [ ("inline", None); ("reclaim", Some Nbr_reclaim.Reclaimer.On_pressure) ])
    lat_schemes;
  (* -- Part 2: pressure-chaos.  The full adversary; every scheme must
     finish without exhaustion, P2 claimants must hold their bound, and
     the reclaimer's crash-with-restart must trace degrade → restore. *)
  let duration = if quick then 1_600_000 else 3_200_000 in
  let seeds = if quick then [ 41 ] else [ 41; 42 ] in
  print_endline
    "   Part 2 — pressure-chaos: 2 allocation hogs, 1 worker stall, 1 worker";
  print_endline
    "   crash, reclaimer stalled then crashed-with-restart.  Expect: zero";
  print_endline
    "   exhaustion, P2 bounds hold, trace shows degrade -> restore.";
  List.iter
    (fun seed ->
      let plan =
        Nbr_fault.Fault_plan.pressure_chaos ~seed ~nthreads ~stalls:1
          ~crashes:1 ~hogs:2 ~hog_slots:1024 ~stall_ns:(duration / 8)
          ~ops_window:200 ~reclaimer_stall_ns:(duration / 8)
          ~restart_ns:(duration / 4) ()
      in
      Format.printf "@.seed %d: %a@." seed Nbr_fault.Fault_plan.pp plan;
      Printf.printf "%-12s %-12s %12s %8s %9s %8s %8s  %s\n" "scheme"
        "structure" "max_garbage" "bound" "degrades" "restores" "pressure"
        "verdict";
      List.iter
        (fun scheme ->
          let structure =
            if H.supported ~scheme ~structure:"harris-list" then "harris-list"
            else "lazy-list"
          in
          Sim.set_config { base_sim_config with seed };
          let pool_capacity =
            (* Bounded-garbage claimants (and the free-on-retire foil)
               get a pool tight enough that the hogs are felt.  Epoch
               schemes keep the roomy default: a crashed worker pins
               their epoch and their garbage is unbounded by design —
               the paper's point, not a robustness failure to induce. *)
            if claims_bounded scheme || scheme = "unsafe-free" then Some 4096
            else None
          in
          let cfg =
            Trial.Cfg.make ~nthreads ~duration_ns:duration ~key_range ~ins_pct:50
              ~del_pct:50
              ~smr:
                (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
                   64)
              ~seed ~faults:plan ?pool_capacity
              ~reclaim:Nbr_reclaim.Reclaimer.On_pressure ()
          in
          Nbr_obs.Trace.enable ~capacity:131072 ~nthreads:(nthreads + 1) ();
          (match H.run ~scheme ~structure cfg with
          | exception e ->
              Nbr_obs.Trace.disable ();
              Nbr_obs.Trace.clear ();
              note_failure
                (Printf.sprintf "%s/%s pressure-chaos raised %s" scheme
                   structure (Printexc.to_string e))
          | r ->
              Nbr_obs.Trace.disable ();
              let evs = Nbr_obs.Trace.events () in
              Nbr_obs.Trace.clear ();
              incr validated;
              (* The unsafe-free foil exists to commit UAF; only set
                 semantics are required of it here. *)
              let semantics_ok =
                if scheme = "unsafe-free" then
                  r.Trial.final_size = r.Trial.expected_size
                else Trial.valid r
              in
              if not semantics_ok then begin
                incr failures;
                Format.printf "VALIDATION FAILURE: %a@." Trial.pp_row r
              end;
              let count k =
                List.length
                  (List.filter (fun e -> e.Nbr_obs.Trace.e_kind = k) evs)
              in
              let degrades = count Nbr_obs.Trace.Degrade
              and restores = count Nbr_obs.Trace.Restore in
              (* The fixed reclaimer schedule crashes with a restart, so
                 every scheme must round-trip degrade -> restore. *)
              if degrades = 0 || restores = 0 then
                note_failure
                  (Printf.sprintf
                     "%s/%s: degrade/restore cycle missing (%d degrades, %d \
                      restores)"
                     scheme structure degrades restores);
              let bound = Trial.garbage_bound cfg in
              let mg = Nbr_core.Smr_stats.max_garbage r.Trial.smr_stats in
              let verdict =
                if claims_bounded scheme then
                  if mg <= bound then "bounded (P2 holds)"
                  else begin
                    incr failures;
                    "BOUND VIOLATION"
                  end
                else "no P2 claim"
              in
              Printf.printf "%-12s %-12s %12d %8d %9d %8d %8d  %s\n%!" scheme
                structure mg bound degrades restores r.Trial.pressure_events
                verdict))
        H.scheme_names)
    seeds

(* ------------------------------------------------------------------ *)
(* U1: usability — reclamation-specific lines of code (paper §5.3).    *)

let usability _quick =
  print_newline ();
  print_endline "## U1 (§5.3): reclamation-specific integration effort";
  print_endline
    "Paper: NBR needed ~10 extra lines vs ~30 for HP in lazylist+DGT.";
  print_endline
    "Ours (calls a data structure must add per scheme, lazy list):";
  print_endline
    "  debra: 2 (begin_op/end_op)                      [paper: simplest]";
  print_endline
    "  nbr/nbr+: 2 + 1 phase split + reservation array [paper: ~10 lines]";
  print_endline
    "  hp: per-dereference protect + validate + restart [paper: ~30 lines]";
  print_endline
    "In this codebase the phase protocol is factored into Smr.phase, so the \
     counts show up as: DEBRA-style schemes ignore the reservation argument; \
     NBR needs the reservation array at each phase boundary; HP additionally \
     turns every pointer read into read_ptr (see lib/ds/lazy_list.ml).";
  flush stdout

(* ------------------------------------------------------------------ *)

let all : (string * string * (bool -> unit)) list =
  [
    ("fig3a", "DGT tree throughput, 3 workloads (E1)", fig3a);
    ("fig3b", "lazy list throughput, 3 workloads (E1)", fig3b);
    ("fig4a", "(a,b)-tree k-NBR throughput (E3)", fig4a);
    ("fig4b", "Harris list k-NBR throughput (E3)", fig4b);
    ("fig4c", "peak memory with stalled thread (E2)", fig4c);
    ("fig4d", "peak memory without stalled thread (E2)", fig4d);
    ("chaos", "bounded garbage under seeded fault plans (E2-chaos)", chaos);
    ("churn", "dynamic join/leave, alone and composed with chaos (E2-churn)",
     churn);
    ( "reclaim",
      "background reclaimer: tail latency + pressure-chaos (DESIGN.md s.12)",
      reclaim );
    ("fig5a", "DGT tree, large size (appendix B)", fig5a);
    ("fig5b", "DGT tree, small size (appendix B)", fig5b);
    ("fig6a", "lazy list, moderate size (appendix B)", fig6a);
    ("fig6b", "lazy list, tiny size (appendix B)", fig6b);
    ("ext_structures", "extension: hash set, skiplist, hazard eras",
     ext_structures);
    ("ablation_signals", "NBR vs NBR+ signal counts (§5)", ablation_signals);
    ("ablation_fences", "end_read publication-race check on/off (§4.3)",
     ablation_fences);
    ("usability", "integration effort comparison (§5.3)", usability);
  ]

let summary () =
  Printf.printf
    "\n[experiments] %d trials run, %d validation failures (expect 0)\n%!"
    !validated !failures;
  !failures = 0
