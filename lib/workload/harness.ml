(** The scheme × structure registry for one runtime.

    Instantiates every reclamation scheme against every data structure and
    exposes uniform [run] entry points keyed by name, so experiment
    definitions (and the CLI) can express figures as data. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module For_scheme
      (Smr : Nbr_core.Smr_intf.S
               with type aint = Rt.aint
                and type pool = Nbr_pool.Pool.Make(Rt).t) =
  struct
    module LL = Runner.Make (Rt) (Smr) (Nbr_ds.Lazy_list.Make (Rt) (Smr))
    module DG = Runner.Make (Rt) (Smr) (Nbr_ds.Dgt_bst.Make (Rt) (Smr))
    module HL = Runner.Make (Rt) (Smr) (Nbr_ds.Harris_list.Make (Rt) (Smr))
    module AB = Runner.Make (Rt) (Smr) (Nbr_ds.Ab_tree.Make (Rt) (Smr))

    module SK = Runner.Make (Rt) (Smr) (Nbr_ds.Skip_list.Make (Rt) (Smr))

    module HS =
      Runner.Make (Rt) (Smr)
        (struct
          module H = Nbr_ds.Hash_set.Make (Rt) (Smr)

          type t = H.t

          let name = H.name
          let data_fields = H.data_fields
          let ptr_fields = H.ptr_fields
          let max_reservations = H.max_reservations
          let create pool = H.create pool
          let contains = H.contains
          let insert = H.insert
          let delete = H.delete
          let size = H.size
        end)

    let runners =
      [
        ("lazy-list", LL.run);
        ("dgt-tree", DG.run);
        ("harris-list", HL.run);
        ("ab-tree", AB.run);
        ("hash-set", HS.run);
        ("skip-list", SK.run);
      ]
  end

  module S_nbr = For_scheme (Nbr_core.Nbr.Make (Rt))
  module S_nbrp = For_scheme (Nbr_core.Nbr_plus.Make (Rt))
  module S_debra = For_scheme (Nbr_core.Debra.Make (Rt))
  module S_qsbr = For_scheme (Nbr_core.Qsbr.Make (Rt))
  module S_rcu = For_scheme (Nbr_core.Rcu.Make (Rt))
  module S_ibr = For_scheme (Nbr_core.Ibr.Make (Rt))
  module S_hp = For_scheme (Nbr_core.Hp.Make (Rt))
  module S_he = For_scheme (Nbr_core.Hazard_eras.Make (Rt))
  module S_leaky = For_scheme (Nbr_core.Leaky.Make (Rt))

  let schemes =
    [
      ("nbr", S_nbr.runners);
      ("nbr+", S_nbrp.runners);
      ("debra", S_debra.runners);
      ("qsbr", S_qsbr.runners);
      ("rcu", S_rcu.runners);
      ("ibr", S_ibr.runners);
      ("hp", S_hp.runners);
      ("he", S_he.runners);
      ("none", S_leaky.runners);
    ]

  let scheme_names = List.map fst schemes

  let structure_names =
    [
      "lazy-list"; "dgt-tree"; "harris-list"; "ab-tree"; "hash-set";
      "skip-list";
    ]

  (* Era/hazard protection cannot cover traversals through unlinked
     records (paper P5), and the rotation-window HP/HE variants here
     cannot keep a skiplist's many cross-level predecessors protected:
     never pair these schemes with those structures.  IBR shares the P5
     half of that: its era ratchet cannot protect a mark-tagged link read
     out of an already-retired record (a thread descheduled mid-traversal
     can wake inside one whose frozen link points at a freed record born
     after its announced upper bound — found by the churn QCheck property),
     so the [read_raw]-traversing structures are off limits to it too.
     IBR's validated [read_ptr] keeps it safe on the remaining structures,
     skiplist included. *)
  let unsupported =
    [
      ("hp", "harris-list"); ("hp", "hash-set"); ("hp", "skip-list");
      ("he", "harris-list"); ("he", "hash-set"); ("he", "skip-list");
      ("ibr", "harris-list"); ("ibr", "hash-set");
    ]

  let supported ~scheme ~structure =
    not (List.mem (scheme, structure) unsupported)

  (** [run ~scheme ~structure cfg] executes one trial.  Raises
      [Invalid_argument] for unknown names; note that HP cannot run the
      mark-traversing structures (harris-list) safely — callers follow the
      paper and never ask for that pairing. *)
  let run ~scheme ~structure cfg =
    match List.assoc_opt scheme schemes with
    | None -> invalid_arg ("Harness.run: unknown scheme " ^ scheme)
    | Some rs -> (
        match List.assoc_opt structure rs with
        | None -> invalid_arg ("Harness.run: unknown structure " ^ structure)
        | Some r -> r cfg)
end
