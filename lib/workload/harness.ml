(** The scheme × structure trial matrix for one runtime.

    Instantiates every sound scheme from {!Registry} against every data
    structure and exposes uniform [run] entry points keyed by name, so
    experiment definitions (and the CLI) can express figures as data. *)

module Make (Rt : Nbr_runtime.Runtime_intf.S) = struct
  module For_scheme
      (Smr : Nbr_core.Smr_intf.S
               with type aint = Rt.aint
                and type pool = Nbr_pool.Pool.Make(Rt).t) =
  struct
    module LL = Runner.Make (Rt) (Smr) (Nbr_ds.Lazy_list.Make (Rt) (Smr))
    module DG = Runner.Make (Rt) (Smr) (Nbr_ds.Dgt_bst.Make (Rt) (Smr))
    module HL = Runner.Make (Rt) (Smr) (Nbr_ds.Harris_list.Make (Rt) (Smr))
    module AB = Runner.Make (Rt) (Smr) (Nbr_ds.Ab_tree.Make (Rt) (Smr))

    module SK = Runner.Make (Rt) (Smr) (Nbr_ds.Skip_list.Make (Rt) (Smr))

    module HS =
      Runner.Make (Rt) (Smr)
        (struct
          module H = Nbr_ds.Hash_set.Make (Rt) (Smr)

          type t = H.t

          let name = H.name
          let data_fields = H.data_fields
          let ptr_fields = H.ptr_fields
          let max_reservations = H.max_reservations
          let create pool = H.create pool
          let contains = H.contains
          let insert = H.insert
          let delete = H.delete
          let size = H.size
        end)

    let runners =
      [
        ("lazy-list", LL.run);
        ("dgt-tree", DG.run);
        ("harris-list", HL.run);
        ("ab-tree", AB.run);
        ("hash-set", HS.run);
        ("skip-list", SK.run);
      ]
  end

  let runners_of (module S : Registry.SCHEME) =
    let module Smr = S.Make (Rt) in
    let module F = For_scheme (Smr) in
    F.runners

  let schemes =
    List.filter_map
      (fun e ->
        if e.Registry.r_foil then None
        else Some (e.Registry.r_name, runners_of e.Registry.r_scheme))
      Registry.all

  let scheme_names = List.map fst schemes
  let structure_names = Registry.structure_names
  let unsupported = Registry.unsupported
  let supported = Registry.supported

  let run ~scheme ~structure cfg =
    match List.assoc_opt scheme schemes with
    | None -> invalid_arg ("Harness.run: unknown scheme " ^ scheme)
    | Some rs -> (
        match List.assoc_opt structure rs with
        | None -> invalid_arg ("Harness.run: unknown structure " ^ structure)
        | Some r -> r cfg)
end
