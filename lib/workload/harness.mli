(** The scheme × structure trial matrix for one runtime: every sound
    scheme from {!Registry} instantiated against every data structure,
    behind uniform name-keyed [run] entry points so experiments and CLIs
    can express figures as data. *)

module Make (_ : Nbr_runtime.Runtime_intf.S) : sig
  val schemes : (string * (string * (Trial.cfg -> Trial.result)) list) list
  (** Per sound scheme, the six structure runners keyed by name. *)

  val scheme_names : string list
  val structure_names : string list

  val unsupported : (string * string) list
  (** (scheme, structure) pairs that are unsafe by construction — see
      {!Registry.unsupported}. *)

  val supported : scheme:string -> structure:string -> bool

  val run : scheme:string -> structure:string -> Trial.cfg -> Trial.result
  (** [run ~scheme ~structure cfg] executes one trial.  Raises
      [Invalid_argument] for unknown names; note that HP cannot run the
      mark-traversing structures (harris-list) safely — callers follow
      the paper and never ask for that pairing. *)
end
