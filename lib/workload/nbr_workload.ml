(** Workload harness: trial runner, scheme×structure registry, and the
    experiment definitions that regenerate the paper's figures. *)

module Trial = Trial
module Registry = Registry
module Traffic = Traffic
module Runner = Runner
module Harness = Harness
module Table = Table
module Experiments = Experiments
