(** The single scheme-name → functor table.

    Every consumer that needs "a reclamation scheme picked at runtime by
    name" — the trial harness, the micro-benchmarks, the KV serving
    layer, the CLIs — goes through this registry instead of hand-rolling
    its own dispatch list.  A scheme is packed as a first-class module
    whose only member is the usual [Make (Rt)] functor, so a consumer
    unpacks it against whichever runtime it is compiled for:

    {[
      let module S = (val entry.r_scheme) in
      let module Smr = S.Make (Rt) in
      ...
    ]}

    The [unsafe-free] foil (frees at retire time, no protection at all —
    the paper's motivation strawman) is carried here too but flagged
    [r_foil]: sweep-style consumers skip foils by default and only run
    them when explicitly asked. *)

module type SCHEME = sig
  module Make (Rt : Nbr_runtime.Runtime_intf.S) :
    Nbr_core.Smr_intf.S
      with type aint = Rt.aint
       and type pool = Nbr_pool.Pool.Make(Rt).t
end

type entry = {
  r_name : string;
  r_foil : bool;
      (** deliberately unsound baseline: excluded from default sweeps *)
  r_scheme : (module SCHEME);
}

let all =
  [
    { r_name = "nbr"; r_foil = false; r_scheme = (module Nbr_core.Nbr) };
    { r_name = "nbr+"; r_foil = false; r_scheme = (module Nbr_core.Nbr_plus) };
    { r_name = "debra"; r_foil = false; r_scheme = (module Nbr_core.Debra) };
    { r_name = "qsbr"; r_foil = false; r_scheme = (module Nbr_core.Qsbr) };
    { r_name = "rcu"; r_foil = false; r_scheme = (module Nbr_core.Rcu) };
    { r_name = "ibr"; r_foil = false; r_scheme = (module Nbr_core.Ibr) };
    { r_name = "hp"; r_foil = false; r_scheme = (module Nbr_core.Hp) };
    {
      r_name = "he";
      r_foil = false;
      r_scheme = (module Nbr_core.Hazard_eras);
    };
    { r_name = "none"; r_foil = false; r_scheme = (module Nbr_core.Leaky) };
    {
      r_name = "unsafe-free";
      r_foil = true;
      r_scheme = (module Nbr_core.Unsafe_free);
    };
  ]

let scheme_names =
  List.filter_map (fun e -> if e.r_foil then None else Some e.r_name) all

let all_scheme_names = List.map (fun e -> e.r_name) all

let find name = List.find_opt (fun e -> e.r_name = name) all

let find_exn name =
  match find name with
  | Some e -> e
  | None -> invalid_arg ("Registry: unknown scheme " ^ name)

let structure_names =
  [ "lazy-list"; "dgt-tree"; "harris-list"; "ab-tree"; "hash-set"; "skip-list" ]

(* Era/hazard protection cannot cover traversals through unlinked
   records (paper P5), and the rotation-window HP/HE variants here
   cannot keep a skiplist's many cross-level predecessors protected:
   never pair these schemes with those structures.  IBR shares the P5
   half of that: its era ratchet cannot protect a mark-tagged link read
   out of an already-retired record (a thread descheduled mid-traversal
   can wake inside one whose frozen link points at a freed record born
   after its announced upper bound — found by the churn QCheck property),
   so the [read_raw]-traversing structures are off limits to it too.
   IBR's validated [read_ptr] keeps it safe on the remaining structures,
   skiplist included. *)
let unsupported =
  [
    ("hp", "harris-list"); ("hp", "hash-set"); ("hp", "skip-list");
    ("he", "harris-list"); ("he", "hash-set"); ("he", "skip-list");
    ("ibr", "harris-list"); ("ibr", "hash-set");
  ]

let supported ~scheme ~structure =
  not (List.mem (scheme, structure) unsupported)
