(** The single scheme-name → functor table shared by every consumer that
    selects a reclamation scheme at runtime (harness, micro-benchmarks,
    KV serving layer, CLIs).  Unpack with
    [let module S = (val e.r_scheme) in let module Smr = S.Make (Rt)]. *)

module type SCHEME = sig
  module Make (Rt : Nbr_runtime.Runtime_intf.S) :
    Nbr_core.Smr_intf.S
      with type aint = Rt.aint
       and type pool = Nbr_pool.Pool.Make(Rt).t
end

type entry = {
  r_name : string;
  r_foil : bool;
      (** deliberately unsound baseline (unsafe-free): excluded from
          default sweeps, runnable only on explicit request *)
  r_scheme : (module SCHEME);
}

val all : entry list
(** All ten schemes, foils included, in canonical display order. *)

val scheme_names : string list
(** Names of the nine sound schemes (foils excluded). *)

val all_scheme_names : string list
(** All ten names, foils included. *)

val find : string -> entry option
val find_exn : string -> entry

val structure_names : string list
(** The six set implementations, in canonical display order. *)

val unsupported : (string * string) list
(** (scheme, structure) pairs that are unsafe by construction (paper P5:
    hazard/era protection cannot cover traversals through unlinked
    records). *)

val supported : scheme:string -> structure:string -> bool
