(** Generic trial runner: one scheme × one structure × one runtime.

    Builds the pool, instantiates the scheme, prefills the structure,
    launches the workers, and collects metrics.  The same code drives
    every cell of every figure, so any scheme/structure pair measured is
    measured identically — the property the paper's Setbench harness
    provides.

    Every trial doubles as a correctness check: successful inserts and
    deletes are counted per thread and the structure's final size must
    equal [prefill + inserts - deletes], and the pool must report zero
    committed use-after-free reads. *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t)
    (Ds : sig
       type t

       val name : string
       val data_fields : int
       val ptr_fields : int
       val max_reservations : int
       val create : Nbr_pool.Pool.Make(Rt).t -> t
       val contains : t -> Smr.ctx -> int -> bool
       val insert : t -> Smr.ctx -> int -> bool
       val delete : t -> Smr.ctx -> int -> bool
       val size : t -> int
     end) =
struct
  module P = Nbr_pool.Pool.Make (Rt)
  module R = Nbr_reclaim.Reclaimer.Make (Rt) (Smr)

  (* Deterministic prefill: insert a seed-shuffled prefix of the key
     space, sequentially, before the clock starts. *)
  let prefill_keys cfg =
    let a = Array.init cfg.Trial.key_range (fun i -> i) in
    let rng = Nbr_sync.Rng.create (cfg.Trial.seed lxor 0xfeed) in
    for i = Array.length a - 1 downto 1 do
      let j = Nbr_sync.Rng.below rng (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 (min cfg.Trial.prefill cfg.Trial.key_range)

  let run (cfg : Trial.cfg) : Trial.result =
    let n = cfg.nthreads in
    (* The background reclaimer is one extra participant: tid [n], a
       domain natively and a fiber in sim, registered with the scheme
       like any worker so epochs/handshakes/watchdogs all count it. *)
    let reclaim_on = cfg.reclaim <> None in
    let total = if reclaim_on then n + 1 else n in
    let pool =
      P.create ~capacity:cfg.pool_capacity ~data_fields:Ds.data_fields
        ~ptr_fields:Ds.ptr_fields ~nthreads:total ()
    in
    let smr_cfg =
      { cfg.smr with Nbr_core.Smr_config.max_reservations = Ds.max_reservations }
    in
    let smr = Smr.create pool ~nthreads:total smr_cfg in
    let ds = Ds.create pool in
    let ctxs = Array.init n (fun tid -> Smr.register smr ~tid) in
    let recl =
      match cfg.reclaim with
      | None -> None
      | Some policy ->
          let faults =
            match cfg.faults with
            | None -> []
            | Some p -> Nbr_fault.Fault_plan.reclaimer_faults p
          in
          let r =
            R.create ~policy
              ~max_backlog:
                (max 64 (2 * smr_cfg.Nbr_core.Smr_config.bag_threshold))
              ~faults smr ~tid:n
          in
          (* Watermarks with hysteresis: the high crossing (3/4 of
             capacity) kicks the reclaimer well before starvation would
             drive on_pressure, and the low mark re-arms the trigger. *)
          let cap = cfg.pool_capacity in
          P.set_watermarks pool ~lo:(cap / 2)
            ~hi:(cap - (cap / 4))
            ~on_high:(fun () -> R.kick r);
          Some r
    in
    Array.iter (fun k -> ignore (Ds.insert ds ctxs.(0) k)) (prefill_keys cfg);
    P.reset_peak pool;
    let inserts = Array.make n 0
    and deletes = Array.make n 0
    and ops = Array.make n 0 in
    (* Latency histograms, per thread (single-writer) when requested:
       index 0/1/2 = insert/delete/contains op latency, 3 = restarts
       per op (via the scheme's live per-context counter). *)
    let lat =
      if cfg.record_latency then
        Some
          (Array.init n (fun _ ->
               Array.init 4 (fun _ -> Nbr_obs.Histogram.create ())))
      else None
    in
    let deadline = Rt.now_ns () + cfg.duration_ns in
    (* A stall pauses inside an operation — and, for phase-based schemes,
       inside a read phase — holding whatever the scheme pins for
       in-flight operations (E2's delayed thread). *)
    let stall_in_op ctx ns =
      let stalled = ref false in
      Smr.begin_op ctx;
      Smr.read_only ctx (fun () ->
          if not !stalled then begin
            stalled := true;
            Rt.stall_ns ns
          end);
      Smr.end_op ctx
    in
    let thread_faults =
      match cfg.faults with
      | None -> false
      | Some p ->
          Nbr_fault.Fault_plan.has_thread_faults p
          (* Reclaimer faults arm the same machinery: a stalled reclaimer
             must be reapable by the workers' watchdogs. *)
          || Nbr_fault.Fault_plan.has_reclaimer_faults p
    in
    (* Injected signal faults live only for the duration of this run: the
       decider is process-global runtime state.  A plan that faults
       threads but leaves signals alone still installs a (pass-through)
       decider: [Rt.fault_injection_active] is what arms the schemes'
       watchdog/recovery machinery, and a plan with stalled or crashed
       threads is exactly when it must be armed. *)
    (match cfg.faults with
    | None -> ()
    | Some p -> (
        match Nbr_fault.Fault_plan.fate_fn p with
        | Some _ as f -> Rt.set_signal_fault f
        | None ->
            if thread_faults then
              Rt.set_signal_fault
                (Some
                   (fun ~sender:_ ~target:_ ->
                     Nbr_runtime.Runtime_intf.Sig_deliver))));
    Fun.protect ~finally:(fun () -> Rt.set_signal_fault None) @@ fun () ->
    let workers_done = Atomic.make 0 in
    Rt.run ~nthreads:total (fun tid ->
        if tid >= n then
          (* The reclaimer role: loops until the last worker stops it (or
             a never-restart crash fault kills it). *)
          (match recl with Some r -> R.run r | None -> ())
        else
        (* A ref so dynamic membership (churn) can swap in the fresh
           context of a re-registration. *)
        let ctx = ref ctxs.(tid) in
        let rng = Nbr_sync.Rng.for_thread ~seed:cfg.seed ~tid in
        (match cfg.stall with
        | Some s when s.stall_tid = tid -> stall_in_op !ctx s.stall_ns
        | _ -> ());
        (* Chaos-plan faults fire between operations, once their trigger
           index is reached. *)
        let faults =
          ref
            (match cfg.faults with
            | None -> []
            | Some p -> Nbr_fault.Fault_plan.faults_for p tid)
        in
        let crashed = ref false in
        let my_ins = ref 0 and my_del = ref 0 and my_ops = ref 0 in
        while (not !crashed) && Rt.now_ns () < deadline do
          try
          (match !faults with
          | f :: rest when Nbr_fault.Fault_plan.fault_op f <= !my_ops -> (
              faults := rest;
              if !Nbr_obs.Trace.on then
                Nbr_obs.Trace.emit ~tid ~ns:(Rt.now_ns ())
                  Nbr_obs.Trace.Fault_action
                  (match f with
                  | Nbr_fault.Fault_plan.Stall _ -> 0
                  | Nbr_fault.Fault_plan.Crash _ -> 1
                  | Nbr_fault.Fault_plan.Hog _ -> 2
                  | Nbr_fault.Fault_plan.Shard_hog _ -> 3)
                  !my_ops;
              match f with
              | Nbr_fault.Fault_plan.Stall { ns; _ } -> stall_in_op !ctx ns
              | Nbr_fault.Fault_plan.Crash _ ->
                  (* Die mid-operation: enter but never leave.  The
                     scheme's in-op state — epoch/interval announcements,
                     the reservations left published by the previous
                     phase, the whole limbo bag — is orphaned forever. *)
                  (Smr.begin_op !ctx [@nbr.allow phase-bracket]);
                  crashed := true
              | Nbr_fault.Fault_plan.Hog { slots; ns; _ }
              | Nbr_fault.Fault_plan.Shard_hog { slots; ns; _ } ->
                  (* Manufactured pool pressure: grab raw slots (no
                     reclamation flush on this path — the hog is the
                     adversary, not an SMR client) and sit on them. *)
                  let held = ref [] in
                  (try
                     for _ = 1 to slots do
                       held := P.alloc pool :: !held
                     done
                   with P.Exhausted _ -> ());
                  Rt.stall_ns ns;
                  List.iter (fun s -> P.free pool s) !held)
          | _ -> ());
          if not !crashed then begin
            let k = Nbr_sync.Rng.below rng cfg.key_range in
            let p = Nbr_sync.Rng.below rng 100 in
            (* Returns the histogram index of the operation performed. *)
            let do_op () =
              if p < cfg.ins_pct then begin
                if Ds.insert ds !ctx k then incr my_ins;
                0
              end
              else if p < cfg.ins_pct + cfg.del_pct then begin
                if Ds.delete ds !ctx k then incr my_del;
                1
              end
              else begin
                ignore (Ds.contains ds !ctx k);
                2
              end
            in
            (match lat with
            | None -> ignore (do_op ())
            | Some hists ->
                let h = hists.(tid) in
                let st = Smr.ctx_stats !ctx in
                let r0 = Nbr_core.Smr_stats.restarts st in
                let t0 = Rt.now_ns () in
                let idx = do_op () in
                Nbr_obs.Histogram.record h.(idx) (Rt.now_ns () - t0);
                Nbr_obs.Histogram.record h.(3)
                  (Nbr_core.Smr_stats.restarts st - r0));
            incr my_ops;
            (* Dynamic membership: leave (orphaning our buffered retires
               for survivors to adopt) and immediately rejoin with a
               fresh context.  Thread 0 stays put so the trial always has
               one stable member. *)
            if cfg.churn_ops > 0 && tid > 0 && !my_ops mod cfg.churn_ops = 0
            then begin
              Smr.deregister !ctx;
              ctx := Smr.register smr ~tid
            end
          end
          with Nbr_core.Smr_intf.Expelled ->
            (* A peer's watchdog declared this thread dead while it was
               frozen past the death threshold (a long stall) and reaped
               its state.  The context is unusable: stop, like a crash —
               completed operations all committed before the expulsion
               point, so the size invariant is unaffected. *)
            crashed := true
        done;
        (* Post-trial drain when membership was dynamic or threads were
           faulted: surviving workers adopt any orphan parcels still on
           the stack and flush, so end-of-trial outstanding garbage is a
           meaningful bounded-reclamation measure (and the chaos tests
           can assert it). *)
        if (not !crashed) && (thread_faults || cfg.churn_ops > 0 || reclaim_on)
        then begin
          (* Stranded handoffs first: parcels exported before a reclaimer
             crash would otherwise never be swept. *)
          ignore (Smr.collect_handoffs !ctx);
          Smr.adopt_orphans !ctx;
          Smr.on_pressure !ctx
        end;
        (* The last worker out (crashed or not) releases the reclaimer;
           it drains what is left and leaves gracefully. *)
        (match recl with
        | Some r when Atomic.fetch_and_add workers_done 1 + 1 = n -> R.stop r
        | _ -> ());
        inserts.(tid) <- !my_ins;
        deletes.(tid) <- !my_del;
        ops.(tid) <- !my_ops);
    let total_ops = Array.fold_left ( + ) 0 ops in
    let ins = Array.fold_left ( + ) 0 inserts
    and del = Array.fold_left ( + ) 0 deletes in
    let ps = P.stats pool in
    {
      Trial.scheme = Smr.scheme_name;
      structure = Ds.name;
      runtime = Rt.name;
      cfg;
      total_ops;
      throughput_mops =
        float_of_int total_ops /. (float_of_int cfg.duration_ns /. 1e9) /. 1e6;
      peak_unreclaimed = ps.P.s_peak_in_use;
      final_in_use = ps.P.s_in_use;
      uaf_reads = ps.P.s_uaf_reads;
      signals = Rt.signals_sent ();
      signals_dropped = Rt.signals_dropped ();
      peak_garbage = ps.P.s_peak_garbage;
      pressure_events = ps.P.s_pressure_events;
      alloc_retries = ps.P.s_alloc_retries;
      smr_stats = Smr.stats smr;
      final_size = Ds.size ds;
      expected_size = cfg.prefill + ins - del;
      latency =
        (match lat with
        | None -> None
        | Some hists ->
            let merged =
              Array.init 4 (fun _ -> Nbr_obs.Histogram.create ())
            in
            Array.iter
              (Array.iteri (fun i h ->
                   Nbr_obs.Histogram.merge_into ~into:merged.(i) h))
              hists;
            Some
              {
                Trial.lat_insert = Nbr_obs.Histogram.summary merged.(0);
                lat_delete = Nbr_obs.Histogram.summary merged.(1);
                lat_contains = Nbr_obs.Histogram.summary merged.(2);
                lat_restarts = Nbr_obs.Histogram.summary merged.(3);
              });
    }
end
