(** Generic trial runner: one scheme × one structure × one runtime.

    Builds the pool, instantiates the scheme, prefills the structure,
    launches the workers, and collects metrics.  The same code drives
    every cell of every figure, so any scheme/structure pair measured is
    measured identically — the property the paper's Setbench harness
    provides.

    Every trial doubles as a correctness check: successful inserts and
    deletes are counted per thread and the structure's final size must
    equal [prefill + inserts − deletes], and the pool must report zero
    committed use-after-free reads. *)

module Make
    (Rt : Nbr_runtime.Runtime_intf.S)
    (Smr : Nbr_core.Smr_intf.S
             with type aint = Rt.aint
              and type pool = Nbr_pool.Pool.Make(Rt).t)
    (Ds : sig
       type t

       val name : string
       val data_fields : int
       val ptr_fields : int
       val max_reservations : int
       val create : Nbr_pool.Pool.Make(Rt).t -> t
       val contains : t -> Smr.ctx -> int -> bool
       val insert : t -> Smr.ctx -> int -> bool
       val delete : t -> Smr.ctx -> int -> bool
       val size : t -> int
     end) : sig
  val run : Trial.cfg -> Trial.result
  (** One complete trial under [Rt.run]: deterministic seed-shuffled
      prefill, [cfg.nthreads] workers (plus one background reclaimer
      role at tid [nthreads] when [cfg.reclaim] is set), fault and
      churn schedules from the config, then drain, validation counters
      and per-thread metric aggregation into the result record. *)
end
