(** Aligned-table printing for experiment output.

    Each figure prints as a matrix — rows are thread counts (or sizes),
    columns are schemes — in both human-aligned and CSV form, so
    EXPERIMENTS.md can quote either. *)

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let print_matrix ~title ~col_header ~cols ~rows ~cell =
  Printf.printf "\n## %s\n" title;
  let w = 11 in
  Printf.printf "%s" (pad w col_header);
  List.iter (fun c -> Printf.printf "%s" (pad w c)) cols;
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "%s" (pad w (fst r));
      List.iter (fun c -> Printf.printf "%s" (pad w (cell (snd r) c))) cols;
      print_newline ())
    rows;
  (* CSV block for machine consumption. *)
  Printf.printf "csv,%s,%s\n" col_header (String.concat "," cols);
  List.iter
    (fun r ->
      Printf.printf "csv,%s,%s\n" (fst r)
        (String.concat "," (List.map (cell (snd r)) cols)))
    rows;
  flush stdout

let f3 x = Printf.sprintf "%.3f" x

(** Latency-quantile table: one row per labelled histogram summary
    (e.g. per operation type, or per scheme), aligned and as CSV like
    {!print_matrix}. *)
let print_latency ~title rows =
  Printf.printf "\n## %s\n" title;
  let w = 11 in
  let cols = [ "count"; "p50"; "p90"; "p99"; "p99.9"; "max" ] in
  let cells (s : Nbr_obs.Histogram.summary) =
    [
      string_of_int s.Nbr_obs.Histogram.s_count;
      Printf.sprintf "%.0f" s.s_p50;
      Printf.sprintf "%.0f" s.s_p90;
      Printf.sprintf "%.0f" s.s_p99;
      Printf.sprintf "%.0f" s.s_p999;
      string_of_int s.s_max;
    ]
  in
  Printf.printf "%s" (pad w "op");
  List.iter (fun c -> Printf.printf "%s" (pad w c)) cols;
  print_newline ();
  List.iter
    (fun (label, s) ->
      Printf.printf "%s" (pad w label);
      List.iter (fun c -> Printf.printf "%s" (pad w c)) (cells s);
      print_newline ())
    rows;
  Printf.printf "csv,op,%s\n" (String.concat "," cols);
  List.iter
    (fun (label, s) ->
      Printf.printf "csv,%s,%s\n" label (String.concat "," (cells s)))
    rows;
  flush stdout
