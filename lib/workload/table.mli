(** Aligned-table printing for experiment output.

    Each figure prints as a matrix — rows are thread counts (or sizes),
    columns are schemes — in both human-aligned and CSV form, so
    EXPERIMENTS.md can quote either. *)

val pad : int -> string -> string
(** [pad w s] right-pads [s] with spaces to width [w] (unchanged when
    already at least that wide). *)

val print_matrix :
  title:string ->
  col_header:string ->
  cols:string list ->
  rows:(string * 'a) list ->
  cell:('a -> string -> string) ->
  unit
(** One aligned matrix under a [## title] heading, followed by the same
    data as [csv,...] lines for machine consumption.  [cell row col]
    renders one cell from the row payload and the column name. *)

val f3 : float -> string
(** Three-decimal rendering for throughput cells. *)

val print_latency :
  title:string -> (string * Nbr_obs.Histogram.summary) list -> unit
(** Latency-quantile table: one row per labelled histogram summary
    (count, p50, p90, p99, p99.9, max), aligned and as CSV like
    {!print_matrix}. *)
