(* Production-shaped traffic for the KV serving layer (DESIGN.md §14).

   Three orthogonal pieces, all pure functions of a SplitMix64 stream so
   a seeded run is bit-identical on both runtimes:

   - key popularity: a Zipfian distribution over keyspaces of millions
     of keys, using Gray et al.'s constant-time inversion (the YCSB
     generator) — the zeta normalization constant is the only O(n) cost
     and is computed once per distribution, shared by every thread;
     ranks are scattered across the keyspace with a multiplicative hash
     so "hot" keys do not cluster in one shard;
   - operation mix: percentage-weighted get/put/delete/scan presets
     (read-heavy, write-heavy, scan-heavy) or custom mixes;
   - arrival shape: a rate multiplier over the trial window (steady,
     flash crowd, diurnal ramp) applied to an open-loop exponential
     interarrival draw, so latency measured from *arrival* captures
     queueing delay when the service falls behind the offered load. *)

(* ------------------------------------------------------------------ *)
(* Zipfian key popularity.                                            *)

module Zipf = struct
  type t = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
    half_pow_theta : float;
  }

  let zeta n theta =
    let z = ref 0.0 in
    for i = 1 to n do
      z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !z

  let make ?(theta = 0.99) ~n () =
    if n < 2 then invalid_arg "Zipf.make: keyspace must have >= 2 keys";
    if theta < 0.0 || theta >= 1.0 then
      invalid_arg "Zipf.make: theta must be in [0, 1)";
    let zetan = zeta n theta in
    let zeta2 = 1.0 +. (1.0 /. Float.pow 2.0 theta) in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; half_pow_theta = Float.pow 0.5 theta }

  let keyspace t = t.n
  let theta t = t.theta

  (* Gray's inversion: rank 0 is the hottest key. *)
  let rank t rng =
    let u = Nbr_sync.Rng.float rng in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else
      let r =
        int_of_float
          (float_of_int t.n
          *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
      in
      if r >= t.n then t.n - 1 else if r < 0 then 0 else r

  (* Fixed rank → key scatter (Fibonacci-style multiplicative hash, as
     in YCSB's scrambled variant): spreads the popular head across the
     keyspace so hot keys land in different shards.  Collisions merge
     two ranks onto one key — harmless for a load generator. *)
  let scatter t r = (r * 0x27220a95) land max_int mod t.n
  let key t rng = scatter t (rank t rng)
end

(* ------------------------------------------------------------------ *)
(* Operation mix.                                                     *)

type op =
  | Get of int
  | Put of int
  | Delete of int
  | Scan of int * int  (** start key, probe count *)

type mix = {
  m_get : int;
  m_put : int;
  m_del : int;
  m_scan : int;
  m_scan_len : int;
}

let mix ?(scan_len = 16) ~get ~put ~del ~scan () =
  if get < 0 || put < 0 || del < 0 || scan < 0 then
    invalid_arg "Traffic.mix: negative percentage";
  if get + put + del + scan <> 100 then
    invalid_arg "Traffic.mix: percentages must sum to 100";
  if scan > 0 && scan_len < 1 then invalid_arg "Traffic.mix: scan_len < 1";
  { m_get = get; m_put = put; m_del = del; m_scan = scan; m_scan_len = scan_len }

let read_heavy = mix ~get:95 ~put:3 ~del:2 ~scan:0 ()
let write_heavy = mix ~get:50 ~put:25 ~del:25 ~scan:0 ()
let scan_heavy = mix ~get:70 ~put:10 ~del:10 ~scan:10 ~scan_len:16 ()

let mix_name m =
  if m = read_heavy then "read-heavy"
  else if m = write_heavy then "write-heavy"
  else if m = scan_heavy then "scan-heavy"
  else
    Printf.sprintf "%dg/%dp/%dd/%ds" m.m_get m.m_put m.m_del m.m_scan

let mix_of_name = function
  | "read-heavy" -> Some read_heavy
  | "write-heavy" -> Some write_heavy
  | "scan-heavy" -> Some scan_heavy
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Arrival shape.                                                     *)

type shape =
  | Steady
  | Flash_crowd of { fc_at_pct : int; fc_len_pct : int; fc_mult : int }
      (** offered load jumps to [fc_mult]× for a window starting at
          [fc_at_pct]% of the trial and lasting [fc_len_pct]% *)
  | Diurnal of { d_cycles : int; d_floor_pct : int }
      (** sinusoidal ramp between [d_floor_pct]% and 100% of the base
          rate, [d_cycles] full cycles over the trial *)

let shape_name = function
  | Steady -> "steady"
  | Flash_crowd { fc_at_pct; fc_len_pct; fc_mult } ->
      Printf.sprintf "flash(%d%%+%d%%,x%d)" fc_at_pct fc_len_pct fc_mult
  | Diurnal { d_cycles; d_floor_pct } ->
      Printf.sprintf "diurnal(%dc,%d%%)" d_cycles d_floor_pct

(* [frac] is elapsed trial time in [0,1]. *)
let rate_mult shape ~frac =
  match shape with
  | Steady -> 1.0
  | Flash_crowd { fc_at_pct; fc_len_pct; fc_mult } ->
      let a = float_of_int fc_at_pct /. 100.0 in
      let l = float_of_int fc_len_pct /. 100.0 in
      if frac >= a && frac < a +. l then float_of_int fc_mult else 1.0
  | Diurnal { d_cycles; d_floor_pct } ->
      let fl = float_of_int d_floor_pct /. 100.0 in
      fl
      +. (1.0 -. fl) *. 0.5
         *. (1.0
            -. Float.cos
                 (2.0 *. Float.pi *. float_of_int d_cycles *. frac))

(* ------------------------------------------------------------------ *)
(* A generator: one immutable bundle, one mutable Rng per thread.      *)

type t = { zipf : Zipf.t; mx : mix; shape : shape; base_gap_ns : int }

let make ?(theta = 0.99) ?(mx = read_heavy) ?(shape = Steady)
    ?(rate_rps = 0) ~keyspace () =
  if rate_rps < 0 then invalid_arg "Traffic.make: negative rate";
  let base_gap_ns =
    if rate_rps = 0 then 0 else max 1 (1_000_000_000 / rate_rps)
  in
  { zipf = Zipf.make ~theta ~n:keyspace (); mx; shape; base_gap_ns }

let open_loop t = t.base_gap_ns > 0

let draw_op t rng =
  let k = Zipf.key t.zipf rng in
  let p = Nbr_sync.Rng.below rng 100 in
  if p < t.mx.m_get then Get k
  else if p < t.mx.m_get + t.mx.m_put then Put k
  else if p < t.mx.m_get + t.mx.m_put + t.mx.m_del then Delete k
  else Scan (k, t.mx.m_scan_len)

(* Exponential interarrival at the shape-modulated instantaneous rate;
   0 under closed-loop configs (the caller issues back-to-back). *)
let next_gap_ns t rng ~frac =
  if t.base_gap_ns = 0 then 0
  else
    let m = rate_mult t.shape ~frac in
    let u = Nbr_sync.Rng.float rng in
    let u = if u < 1e-12 then 1e-12 else u in
    let gap = -.Float.log u *. float_of_int t.base_gap_ns /. m in
    max 1 (int_of_float gap)
