(** Production-shaped traffic for the KV serving layer: Zipfian key
    popularity over millions of keys, weighted operation mixes, and
    arrival shapes (steady / flash crowd / diurnal) driving an open-loop
    interarrival process.  Every draw is a pure function of a
    {!Nbr_sync.Rng} stream, so a seeded run is bit-identical on both
    runtimes. *)

module Zipf : sig
  type t
  (** Immutable distribution: the O(n) zeta normalization is paid once
      in {!make} and shared by every thread. *)

  val make : ?theta:float -> n:int -> unit -> t
  (** Gray et al.'s constant-time Zipfian generator (the YCSB one).
      [theta] in [0, 1), default 0.99; [n >= 2] keys.  Raises
      [Invalid_argument] otherwise. *)

  val keyspace : t -> int
  val theta : t -> float

  val rank : t -> Nbr_sync.Rng.t -> int
  (** Popularity rank in [0, n): rank 0 is the hottest key. *)

  val scatter : t -> int -> int
  (** Fixed multiplicative-hash rank → key permutation-ish scatter, so
      the popular head spreads across shards (collisions merge two
      ranks onto one key — harmless for a load generator). *)

  val key : t -> Nbr_sync.Rng.t -> int
  (** [scatter] of [rank]. *)
end

type op =
  | Get of int
  | Put of int
  | Delete of int
  | Scan of int * int  (** start key, probe count *)

type mix = {
  m_get : int;
  m_put : int;
  m_del : int;
  m_scan : int;
  m_scan_len : int;
}

val mix :
  ?scan_len:int -> get:int -> put:int -> del:int -> scan:int -> unit -> mix
(** Percentages must sum to 100. *)

val read_heavy : mix
(** 95/3/2/0 — the YCSB-B-shaped default. *)

val write_heavy : mix
(** 50/25/25/0 — the paper's E1 update-heavy shape. *)

val scan_heavy : mix
(** 70/10/10/10, scans probing 16 keys. *)

val mix_name : mix -> string
val mix_of_name : string -> mix option

type shape =
  | Steady
  | Flash_crowd of { fc_at_pct : int; fc_len_pct : int; fc_mult : int }
      (** offered load jumps to [fc_mult]× for a window starting at
          [fc_at_pct]% of the trial and lasting [fc_len_pct]% *)
  | Diurnal of { d_cycles : int; d_floor_pct : int }
      (** sinusoidal ramp between [d_floor_pct]% and 100% of the base
          rate, [d_cycles] full cycles over the trial *)

val shape_name : shape -> string

val rate_mult : shape -> frac:float -> float
(** Instantaneous offered-load multiplier at elapsed fraction
    [frac ∈ [0,1]] of the trial. *)

type t
(** One generator: an immutable (zipf, mix, shape, base rate) bundle;
    per-thread state lives entirely in the caller's [Rng]. *)

val make :
  ?theta:float ->
  ?mx:mix ->
  ?shape:shape ->
  ?rate_rps:int ->
  keyspace:int ->
  unit ->
  t
(** [rate_rps] is the per-worker base arrival rate; 0 (default) means
    closed-loop (issue back-to-back, no queueing model). *)

val open_loop : t -> bool

val draw_op : t -> Nbr_sync.Rng.t -> op
(** One request: a Zipf-scattered key under the configured mix. *)

val next_gap_ns : t -> Nbr_sync.Rng.t -> frac:float -> int
(** Exponential interarrival gap at the shape-modulated instantaneous
    rate; 0 when closed-loop. *)
