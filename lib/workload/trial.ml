(** Trial configuration and results for the benchmark harness.

    One {!cfg} describes one data point of a paper figure: a structure,
    a reclamation scheme, a thread count, an operation mix, and a duration.
    The harness runs the workload, validates set-semantics invariants, and
    returns a {!result} with throughput plus every reclamation metric the
    paper's experiments discuss. *)

type stall = {
  stall_tid : int;  (** which worker stalls (usually 1) *)
  stall_ns : int;  (** how long it sleeps inside its operation *)
}
(** E2's delayed thread: the worker enters an operation (and, under
    phase-based schemes, a read phase) and sleeps there, exactly like the
    paper's thread that is "made to sleep within a data-structure
    operation". *)

module Cfg = struct
  type t = {
    nthreads : int;
    duration_ns : int;
        (** measured with the runtime's clock (virtual in sim) *)
    key_range : int;  (** keys are drawn uniformly from [0, key_range) *)
    prefill : int;  (** distinct keys inserted before the clock starts *)
    ins_pct : int;  (** percent of operations that are inserts *)
    del_pct : int;  (** percent deletes; the rest are contains *)
    smr : Nbr_core.Smr_config.t;
    pool_capacity : int;
    seed : int;
    stall : stall option;
    faults : Nbr_fault.Fault_plan.t option;
        (** chaos schedule (multi-thread stalls, crashes, hogs, signal
            faults) interpreted by the runner; [stall] above is the simpler
            fixed-thread E2 knob and composes with it *)
    churn_ops : int;
        (** dynamic membership: when positive, every worker except thread 0
            deregisters from the scheme and re-registers after each
            [churn_ops] completed operations, orphaning whatever it had
            buffered for the survivors to adopt.  0 = static membership. *)
    reclaim : Nbr_reclaim.Reclaimer.policy option;
        (** background reclamation: when set, the runner adds one extra
            thread running the {!Nbr_reclaim.Reclaimer} role under this
            policy, installs pool watermarks wired to its pressure kick,
            and workers export threshold-crossing limbo bags to it instead
            of sweeping inline.  Reclaimer faults in [faults] are
            interpreted by that role.  [None] = classic inline trial. *)
    record_latency : bool;
        (** per-operation latency + restarts-per-op histograms (two clock
            reads and two O(1) histogram inserts per operation while on —
            a single bool check while off) *)
  }

  let make ?(nthreads = 4) ?(duration_ns = 2_000_000) ?(key_range = 1024)
      ?prefill ?(ins_pct = 25) ?(del_pct = 25)
      ?(smr = Nbr_core.Smr_config.default) ?pool_capacity ?(seed = 1) ?stall
      ?faults ?(churn_ops = 0) ?reclaim ?(record_latency = false) () =
    let prefill = match prefill with Some p -> p | None -> key_range / 2 in
    let pool_capacity =
      match pool_capacity with
      | Some c -> c
      | None ->
          (* Room for the live structure plus leaky churn.  Structures
             allocate at most ~2 records per element (tree routers, CoW);
             leaky runs additionally consume a slot per update.  Kept tight
             because pool construction cost is per-trial; trials that
             genuinely need more pass [pool_capacity] explicitly. *)
          (4 * key_range) + 200_000 + (nthreads * 12_000)
    in
    {
      nthreads;
      duration_ns;
      key_range;
      prefill;
      ins_pct;
      del_pct;
      smr;
      pool_capacity;
      seed;
      stall;
      faults;
      churn_ops;
      reclaim;
      record_latency;
    }
end

type cfg = Cfg.t = {
  nthreads : int;
  duration_ns : int;
  key_range : int;
  prefill : int;
  ins_pct : int;
  del_pct : int;
  smr : Nbr_core.Smr_config.t;
  pool_capacity : int;
  seed : int;
  stall : stall option;
  faults : Nbr_fault.Fault_plan.t option;
  churn_ops : int;
  reclaim : Nbr_reclaim.Reclaimer.policy option;
  record_latency : bool;
}
(** Re-export of {!Cfg.t} so existing field accesses ([cfg.key_range])
    keep working; construct via {!Cfg.make}, never by record literal —
    new knobs get defaults there instead of churning every caller. *)

(** Whether the configuration tampers with neutralization signals.
    Delayed handlers open a window in which a reader keeps traversing
    freed slots — counted by the pool, but uncommitted: [end_read] still
    observes the (visible-if-late) signal and restarts, exactly the
    benign native poll-window of DESIGN.md §3.  Dropped signals
    additionally void the delivery guarantee and can commit UAF (their
    point). *)
let signal_faults_injected cfg =
  match cfg.faults with
  | None -> false
  | Some p -> p.Nbr_fault.Fault_plan.signals <> None

(** Per-thread bounded-garbage cap for schemes declaring
    [bounded_garbage].  A threshold-triggered sweep keeps only what peers
    pin: reservation/hazard slots, plus (interval schemes) records whose
    lifetime overlaps a stalled interval — at worst every node alive when
    the peer stalled, ≤ ~2·key_range for our structures.  On top of that
    a bag refills to the threshold before the next sweep.  Anything past
    this bound means garbage tracking a stalled thread's {e duration},
    i.e. the unbounded failure mode.  The bound covers background
    reclamation too: the runner caps the handoff channel ([max_backlog]
    = 2 × threshold) below the slack this formula already carries, so
    the reclaimer's collected-but-unswept garbage stays inside it. *)
let garbage_bound cfg =
  cfg.smr.Nbr_core.Smr_config.bag_threshold
  + (cfg.nthreads * cfg.smr.Nbr_core.Smr_config.max_reservations)
  + (2 * cfg.key_range) + 64

type latency = {
  lat_insert : Nbr_obs.Histogram.summary;
  lat_delete : Nbr_obs.Histogram.summary;
  lat_contains : Nbr_obs.Histogram.summary;
  lat_restarts : Nbr_obs.Histogram.summary;
      (** read-phase restarts per operation (counts, not nanoseconds) *)
}
(** Merged across threads after the run; nanosecond scale (virtual under
    the simulator).  Present iff [cfg.record_latency]. *)

type result = {
  scheme : string;
  structure : string;
  runtime : string;
  cfg : cfg;
  total_ops : int;
  throughput_mops : float;  (** million operations per second *)
  peak_unreclaimed : int;  (** pool high-water mark after prefill *)
  final_in_use : int;
  uaf_reads : int;  (** guarded reads that hit freed slots *)
  signals : int;
  signals_dropped : int;  (** lost to an injected signal fault *)
  peak_garbage : int;  (** pool-wide retired-unfreed high-water mark *)
  pressure_events : int;  (** allocs that entered the exhaustion retry loop *)
  alloc_retries : int;
  smr_stats : Nbr_core.Smr_stats.t;
  final_size : int;
  expected_size : int;  (** prefill + successful inserts - deletes *)
  latency : latency option;
}

(* Validity: set semantics must hold everywhere.  Freedom from reads of
   freed slots is exact only under the simulator's instantaneous signal
   delivery; the native (polling) runtime has the benign
   poll-to-dereference window analysed in DESIGN.md §3 — such reads are
   never committed, but they are counted, so they must not fail native
   trials.  Injected signal faults open the same benign window in sim
   (delays) or void delivery outright (drops), so they relax the
   sim-side check too — set semantics still must hold. *)
let valid r =
  r.final_size = r.expected_size
  && (r.runtime <> "sim" || r.uaf_reads = 0 || signal_faults_injected r.cfg)

let pp_row ppf r =
  Format.fprintf ppf
    "%-12s %-8s n=%-3d %3di/%3dd  %8.3f Mops/s  peak=%-8d sig=%-8d restarts=%-6d %s"
    r.structure r.scheme r.cfg.nthreads r.cfg.ins_pct r.cfg.del_pct
    r.throughput_mops r.peak_unreclaimed r.signals (Nbr_core.Smr_stats.restarts r.smr_stats)
    (if valid r then "" else "INVALID")

(** One line per operation type: count and the latency quantiles the
    paper-style tables quote.  Prints nothing when the trial ran without
    [record_latency]. *)
let pp_latency ppf r =
  match r.latency with
  | None -> ()
  | Some l ->
      let line name (s : Nbr_obs.Histogram.summary) =
        Format.fprintf ppf
          "%-9s n=%-9d p50=%-9.0f p90=%-9.0f p99=%-9.0f p99.9=%-9.0f max=%d@."
          name s.Nbr_obs.Histogram.s_count s.s_p50 s.s_p90 s.s_p99 s.s_p999
          s.s_max
      in
      line "insert" l.lat_insert;
      line "delete" l.lat_delete;
      line "contains" l.lat_contains;
      line "restarts" l.lat_restarts
