(** Trial configuration and results for the benchmark harness.

    One {!Cfg.t} describes one data point of a paper figure: a
    structure, a reclamation scheme, a thread count, an operation mix,
    and a duration.  The harness runs the workload, validates
    set-semantics invariants, and returns a {!result} with throughput
    plus every reclamation metric the paper's experiments discuss.

    Construct configurations with {!Cfg.make} — the labeled smart
    constructor owns every default, so adding a knob never churns
    callers.  The record fields stay exposed (read-only by convention)
    because results embed their [cfg] and reporting code reads it. *)

type stall = {
  stall_tid : int;  (** which worker stalls (usually 1) *)
  stall_ns : int;  (** how long it sleeps inside its operation *)
}
(** E2's delayed thread: the worker enters an operation (and, under
    phase-based schemes, a read phase) and sleeps there, exactly like
    the paper's thread that is "made to sleep within a data-structure
    operation". *)

module Cfg : sig
  type t = {
    nthreads : int;
    duration_ns : int;
        (** measured with the runtime's clock (virtual in sim) *)
    key_range : int;  (** keys are drawn uniformly from [0, key_range) *)
    prefill : int;  (** distinct keys inserted before the clock starts *)
    ins_pct : int;  (** percent of operations that are inserts *)
    del_pct : int;  (** percent deletes; the rest are contains *)
    smr : Nbr_core.Smr_config.t;
    pool_capacity : int;
    seed : int;
    stall : stall option;
    faults : Nbr_fault.Fault_plan.t option;
        (** chaos schedule (multi-thread stalls, crashes, hogs, signal
            faults) interpreted by the runner; [stall] above is the
            simpler fixed-thread E2 knob and composes with it *)
    churn_ops : int;
        (** dynamic membership: when positive, every worker except
            thread 0 deregisters from the scheme and re-registers after
            each [churn_ops] completed operations.  0 = static. *)
    reclaim : Nbr_reclaim.Reclaimer.policy option;
        (** background reclamation: one extra thread runs the
            {!Nbr_reclaim.Reclaimer} role under this policy, with pool
            watermarks wired to its pressure kick.  [None] = inline. *)
    record_latency : bool;
        (** per-operation latency + restarts-per-op histograms *)
  }

  val make :
    ?nthreads:int ->
    ?duration_ns:int ->
    ?key_range:int ->
    ?prefill:int ->
    ?ins_pct:int ->
    ?del_pct:int ->
    ?smr:Nbr_core.Smr_config.t ->
    ?pool_capacity:int ->
    ?seed:int ->
    ?stall:stall ->
    ?faults:Nbr_fault.Fault_plan.t ->
    ?churn_ops:int ->
    ?reclaim:Nbr_reclaim.Reclaimer.policy ->
    ?record_latency:bool ->
    unit ->
    t
  (** Defaults: 4 threads, 2 ms, 1024 keys, prefill [key_range/2],
      25/25/50 ins/del/contains mix, default SMR config, a pool sized
      for the structure plus leaky churn, seed 1, no faults, static
      membership, inline reclamation, latency recording off. *)
end

type cfg = Cfg.t = {
  nthreads : int;
  duration_ns : int;
  key_range : int;
  prefill : int;
  ins_pct : int;
  del_pct : int;
  smr : Nbr_core.Smr_config.t;
  pool_capacity : int;
  seed : int;
  stall : stall option;
  faults : Nbr_fault.Fault_plan.t option;
  churn_ops : int;
  reclaim : Nbr_reclaim.Reclaimer.policy option;
  record_latency : bool;
}
(** Re-export of {!Cfg.t} for field access; construct via {!Cfg.make}. *)

val signal_faults_injected : cfg -> bool
(** Whether the configuration tampers with neutralization signals
    (delays open the benign native-style poll window in sim; drops void
    the delivery guarantee outright). *)

val garbage_bound : cfg -> int
(** Per-thread bounded-garbage cap for schemes declaring
    [bounded_garbage]: threshold + reservations pinned by peers +
    interval-overlap slack (≤ ~2·key_range) + bag refill headroom.
    Anything past this means garbage tracking a stalled thread's
    {e duration} — the unbounded failure mode. *)

type latency = {
  lat_insert : Nbr_obs.Histogram.summary;
  lat_delete : Nbr_obs.Histogram.summary;
  lat_contains : Nbr_obs.Histogram.summary;
  lat_restarts : Nbr_obs.Histogram.summary;
      (** read-phase restarts per operation (counts, not nanoseconds) *)
}
(** Merged across threads after the run; nanosecond scale (virtual under
    the simulator).  Present iff [cfg.record_latency]. *)

type result = {
  scheme : string;
  structure : string;
  runtime : string;
  cfg : cfg;
  total_ops : int;
  throughput_mops : float;  (** million operations per second *)
  peak_unreclaimed : int;  (** pool high-water mark after prefill *)
  final_in_use : int;
  uaf_reads : int;  (** guarded reads that hit freed slots *)
  signals : int;
  signals_dropped : int;  (** lost to an injected signal fault *)
  peak_garbage : int;  (** pool-wide retired-unfreed high-water mark *)
  pressure_events : int;
      (** allocs that entered the exhaustion retry loop *)
  alloc_retries : int;
  smr_stats : Nbr_core.Smr_stats.t;
  final_size : int;
  expected_size : int;  (** prefill + successful inserts - deletes *)
  latency : latency option;
}

val valid : result -> bool
(** Set semantics must hold everywhere; zero UAF reads additionally
    required under the simulator's exact signal delivery (unless signal
    faults were injected). *)

val pp_row : Format.formatter -> result -> unit

val pp_latency : Format.formatter -> result -> unit
(** One line per operation type: count and the latency quantiles the
    paper-style tables quote.  Prints nothing when the trial ran without
    [record_latency]. *)
