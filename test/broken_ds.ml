(* A deliberately protocol-breaking operation, shared between the
   static analyzer's fixture tests and the dynamic sanitizer
   cross-check (DESIGN.md §16): one seeded violation, convicted from
   both ends.

   [broken_lookup] begins an operation, dereferences the root through
   the validated accessor with no phase entered, touches the record it
   found, and returns with the operation still open.  Statically,
   nbr_lint flags the unguarded dereference (R2) and the unclosed
   bracket (R3, in both the helper and its caller).  Dynamically, a
   DFS-explored simulator run with the PR 5 sanitizer attached convicts
   the same protocol: [unguarded_access] for the in-op access outside
   any checkpointed phase, [unbalanced_op] for the operation still open
   at detach.

   This module is compiled into the test binary (for the dynamic run)
   AND parsed from source by [Test_analysis] (for the static run) — do
   not fix it. *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)
module Smr = Nbr_core.Nbr_plus.Make (Sim)

let broken_lookup pool ctx root =
  Smr.begin_op ctx;
  let a = Smr.read_root ctx root in
  if a >= 0 && P.record_read pool a then ignore (P.get_data pool a 0)
(* no Smr.end_op: the operation is left open on every path *)

(* One deterministic schedule is enough: thread 0 installs a record
   properly, then runs the broken lookup over it; thread 1 idles so the
   explorer still has a two-thread universe to enumerate. *)
let run () =
  Sim.set_max_events 100_000;
  let pool =
    P.create ~capacity:8 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 ()
  in
  let smr = Smr.create pool ~nthreads:2 Nbr_core.Smr_config.default in
  let root = Sim.make P.nil in
  let c0 = Smr.register smr ~tid:0 in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Smr.begin_op c0;
        let a = Smr.alloc c0 in
        P.set_data pool a 0 42;
        Sim.store root a;
        Smr.end_op c0;
        broken_lookup pool c0 root
      end)
