(* Idiom fixture: the ported source-idiom rules on the shared findings
   engine — a type-system escape and raw cell addressing. *)

let coerce x = Obj.magic x

let sneak pool h = Rt.load (P.ptr_cell pool h 0)
