(* R1 fixture, clean twin: the same store is legal in the write phase —
   the thread is non-restartable there, so it runs exactly once. *)

let lookup t ctx k =
  Smr.begin_op ctx;
  let hit =
    Smr.phase ctx
      ~read:(fun () -> Smr.read_data ctx ~src:k ~field:0)
      ~write:(fun v ->
        Rt.store t 1;
        v)
  in
  Smr.end_op ctx;
  hit
