(* R1 fixture: a shared-memory write inside a restartable read phase.
   When the reader is neutralized the phase restarts from its
   checkpoint, so the store would be repeated — or torn against the
   writer it was racing. *)

let lookup t ctx k =
  Smr.begin_op ctx;
  let hit =
    Smr.phase ctx
      ~read:(fun () ->
        Rt.store t 1;
        Smr.read_data ctx ~src:k ~field:0)
      ~write:(fun v -> v)
  in
  Smr.end_op ctx;
  hit
