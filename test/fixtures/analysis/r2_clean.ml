(* R2 fixture, clean twin: the dereference sits inside a checkpointed
   read phase of a bracketed operation. *)

let peek t ctx =
  Smr.begin_op ctx;
  let p = Smr.read_only ctx (fun () -> Smr.read_ptr ctx ~src:t ~field:0) in
  Smr.end_op ctx;
  p
