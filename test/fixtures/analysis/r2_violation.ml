(* R2 fixture: a validated dereference with no guard installed — no
   begin_op, no phase entry.  The accessor's generation check has
   nothing to validate against: the scheme never learned this thread
   is reading. *)

let peek t ctx = Smr.read_ptr ctx ~src:t ~field:0
