(* Waiver fixture: the same unguarded dereference as r2_violation, but
   deliberately waived in source — the finding must be counted as
   suppressed, not reported. *)

let peek t ctx = (Smr.read_ptr ctx ~src:t ~field:0 [@nbr.allow unguarded-deref])
