(* R3 fixture, clean twin: every path through the conditional closes
   the operation exactly once. *)

let remove t ctx k =
  Smr.begin_op ctx;
  let v = Smr.read_only ctx (fun () -> Smr.read_data ctx ~src:t ~field:0) in
  Smr.end_op ctx;
  v = k
