(* R3 fixture: an early return leaves the operation open — the miss
   branch never reaches end_op, so the thread's announcements (epoch,
   reservations, checkpoint) stay published forever. *)

let remove t ctx k =
  Smr.begin_op ctx;
  let v = Smr.read_only ctx (fun () -> Smr.read_data ctx ~src:t ~field:0) in
  if v = k then begin
    Smr.end_op ctx;
    true
  end
  else false
