(* R4 fixture, clean twin: the read phase goes through the validated
   accessor; the plain read happens in the write phase, under the lock
   that freezes the window. *)

let find t ctx k =
  Smr.begin_op ctx;
  let hit =
    Smr.phase ctx
      ~read:(fun () -> Smr.read_data ctx ~src:k ~field:0)
      ~write:(fun v ->
        Lock.lock t;
        let w = P.get_data t k 0 in
        Lock.unlock t;
        v + w)
  in
  Smr.end_op ctx;
  hit
