(* R4 fixture: a plain (unvalidated) field read inside a read phase.
   Plain reads are legal only on locked/reserved windows (write phase)
   or in sequential code; in Φread the slot may be recycled
   mid-traversal and the read returns the new occupant's bytes. *)

let find t ctx k =
  Smr.begin_op ctx;
  let hit = Smr.read_only ctx (fun () -> P.get_data t k 0 = 0) in
  Smr.end_op ctx;
  hit
