(* Scheme fixture, clean twin: the ratchet publishes *and* the slot is
   validated against the pool's liveness record before the handle
   escapes — a stale read restarts instead of committing. *)

let scheme_name = "ibr"

let begin_op ctx = Rt.store ctx 1

let end_op ctx = Rt.store ctx 0

let phase ctx ~read ~write =
  Rt.checkpoint ctx;
  let v = read () in
  write v;
  v

let read_only ctx f =
  Rt.checkpoint ctx;
  f ()

let read_ptr ctx ~src ~field =
  ignore field;
  Rt.faa ctx 1;
  let p = Rt.load src in
  if P.live ctx p then p else raise Rt.Neutralized
