(* Scheme fixture: the PR 4 IBR bug class, reintroduced.  [read_ptr]
   ratchets the thread's reservation interval (a shared-memory publish)
   but never validates the slot against it — the reservation protects
   records retired *after* the ratchet, while the record just read may
   already be gone.  R2's Hazard-family closure check requires both the
   publish and the validation. *)

let scheme_name = "ibr"

let begin_op ctx = Rt.store ctx 1

let end_op ctx = Rt.store ctx 0

let phase ctx ~read ~write =
  Rt.checkpoint ctx;
  let v = read () in
  write v;
  v

let read_only ctx f =
  Rt.checkpoint ctx;
  f ()

let read_ptr ctx ~src ~field =
  ignore field;
  Rt.faa ctx 1;
  Rt.load src
