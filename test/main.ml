(* Test driver: all suites under one Alcotest binary. *)

let () =
  Alcotest.run "nbr"
    [
      ("sim-runtime", Test_sim_rt.suite);
      ("treiber", Test_treiber.suite);
      ("pool", Test_pool.suite);
      ("limbo-bag", Test_limbo_bag.suite);
      ("smr-schemes", Test_smr.suite);
      ("ds-sequential", Test_ds_sequential.suite);
      ("ds-concurrent", Test_ds_concurrent.suite);
      ("per-key", Test_per_key.suite);
      ("properties", Test_properties.suite);
      ("fault", Test_fault.suite);
      ("reclaim", Test_reclaim.suite);
      ("lifecycle", Test_lifecycle.suite);
      ("native-runtime", Test_native.suite);
      ("obs", Test_obs.suite);
      ("traffic", Test_traffic.suite);
      ("kv", Test_kv.suite);
      ("guard", Test_guard.suite);
      ("check", Test_check.suite);
      ("analysis", Test_analysis.suite);
    ]
