(* The static phase analyzer (lib/analysis), end to end: each protocol
   rule R1–R4 against a violating/clean fixture pair, the ported idiom
   rules, in-source waivers, allowlist path normalization, SARIF
   emission — and the cross-validation story: one seeded-violation
   module ([Broken_ds]) convicted by BOTH the static pass and a
   DFS-explored dynamic sanitizer run (DESIGN.md §16).

   The rendered findings are asserted byte-for-byte: rule id, file,
   line and message are all part of the analyzer's contract. *)

module D = Nbr_analysis.Driver
module F = Nbr_analysis.Findings
module Sarif = Nbr_analysis.Sarif
module Sim = Nbr_runtime.Sim_rt
module Trace = Nbr_obs.Trace
module Explore = Nbr_check.Explore
module San = Nbr_check.Sanitizer

(* Under `dune runtest` the cwd is the test directory; under
   `dune exec test/main.exe` it is the repo root.  Locate the fixtures
   from either, and build the expected strings from the same prefix so
   the byte-for-byte assertions hold in both. *)
let root = if Sys.file_exists "fixtures/analysis" then "" else "test/"

let fix name = root ^ "fixtures/analysis/" ^ name

let exp name line rest = Printf.sprintf "%s:%d: %s" (fix name) line rest

let strings_of (r : D.result) = List.map F.to_string r.D.findings

let analyze ?allowlist names =
  D.analyze_files ?allowlist ~check_mli:false (List.map fix names)

let check_pair ~violating ~clean ~expected () =
  let r = analyze [ violating ] in
  Alcotest.(check (list string)) "violating fixture flagged" expected
    (strings_of r);
  let rc = analyze [ clean ] in
  Alcotest.(check (list string)) "clean twin silent" [] (strings_of rc);
  Alcotest.(check int) "nothing suppressed" 0 rc.D.suppressed

let test_r1 =
  check_pair ~violating:"r1_violation.ml" ~clean:"r1_clean.ml"
    ~expected:
      [
        exp "r1_violation.ml" 11
          "[read-phase-write] Rt.store: shared-write in read phase";
      ]

let test_r2 =
  check_pair ~violating:"r2_violation.ml" ~clean:"r2_clean.ml"
    ~expected:
      [
        exp "r2_violation.ml" 6
          "[unguarded-deref] Smr.read_ptr: validated dereference outside \
           any phase";
      ]

let test_r3 =
  check_pair ~violating:"r3_violation.ml" ~clean:"r3_clean.ml"
    ~expected:
      [
        exp "r3_violation.ml" 6
          "[phase-bracket] operation can exit without end_op";
      ]

let test_r4 =
  check_pair ~violating:"r4_violation.ml" ~clean:"r4_clean.ml"
    ~expected:
      [
        exp "r4_violation.ml" 8
          "[write-phase-read] P.get_data: plain shared read in read phase \
           (use a validated accessor)";
      ]

(* The acceptance criterion from PR 4: an IBR-family read_ptr that
   ratchets its reservation interval but never validates the slot must
   be caught statically by R2's scheme-closure check. *)
let test_scheme_ibr =
  check_pair ~violating:"scheme_ibr_violation.ml" ~clean:"scheme_ibr_clean.ml"
    ~expected:
      [
        exp "scheme_ibr_violation.ml" 24
          "[unguarded-deref] scheme ibr: read_ptr publishes without \
           validating slot liveness";
      ]

let test_idiom () =
  let r = analyze [ "idiom_violation.ml" ] in
  Alcotest.(check (list string))
    "both idiom rules fire on the shared engine"
    [
      exp "idiom_violation.ml" 4
        "[obj-magic] Obj.magic defeats the type system; find another way";
      exp "idiom_violation.ml" 6
        "[pool-raw-index] raw cell addressing bypasses generation \
         validation: go through the scheme's validated accessors \
         (read_data / read_ptr / peek_ptr), or grandfather a deliberate \
         use in the allowlist";
    ]
    (strings_of r)

let test_waiver () =
  let r = analyze [ "r2_waived.ml" ] in
  Alcotest.(check (list string)) "waived finding not reported" []
    (strings_of r);
  Alcotest.(check int) "but counted as suppressed" 1 r.D.suppressed

(* ------------------------------------------------------------------ *)
(* Allowlist path normalization (the satellite fix): one file cannot
   hide under two spellings, and duplicate spellings are warned on.    *)

let test_normalize_path () =
  let n = F.normalize_path in
  Alcotest.(check string) "double slash" "lib/ds/foo.ml" (n "lib//ds/foo.ml");
  Alcotest.(check string) "dot segments" "lib/ds/foo.ml" (n "./lib/./ds/foo.ml");
  Alcotest.(check string) "trailing separator" "lib/ds" (n "lib/ds/");
  Alcotest.(check string) "absolute path keeps its root" "/tmp/x.ml"
    (n "//tmp//x.ml");
  Alcotest.(check string) "root alone" "/" (n "/")

let with_temp_allowlist lines f =
  let file = Filename.temp_file "nbr_allowlist" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      f (F.Allowlist.load file))

let test_allowlist_normalization () =
  with_temp_allowlist
    [
      "# comment";
      ("unguarded-deref:" ^ root ^ "fixtures//analysis/./r2_violation.ml");
      ("unguarded-deref:" ^ root ^ "fixtures/analysis/r2_violation.ml/");
    ]
  @@ fun (allowlist, warnings) ->
  Alcotest.(check int) "second spelling warned as duplicate" 1
    (List.length warnings);
  Alcotest.(check bool) "normalized spelling matches" true
    (F.Allowlist.mem allowlist ~rule:"unguarded-deref"
       ~file:(fix "r2_violation.ml"));
  let r = analyze ~allowlist [ "r2_violation.ml" ] in
  Alcotest.(check (list string)) "allowlisted finding dropped" []
    (strings_of r);
  Alcotest.(check int) "and counted as suppressed" 1 r.D.suppressed

let test_sarif () =
  let r = analyze [ "r1_violation.ml" ] in
  let s = Sarif.to_string r.D.findings in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "sarif version" true (contains "\"version\": \"2.1.0\"");
  Alcotest.(check bool) "rule id present" true
    (contains "\"ruleId\": \"read-phase-write\"");
  Alcotest.(check bool) "location present" true
    (contains (fix "r1_violation.ml"));
  Alcotest.(check bool) "start line present" true (contains "\"startLine\": 11")

(* ------------------------------------------------------------------ *)
(* Cross-validation: the same seeded violation, convicted from both
   ends.  Statically, nbr_lint flags Broken_ds's unguarded dereference
   (R2) and unclosed bracket (R3).  Dynamically, a DFS-explored
   simulator run of [Broken_ds.run] with the sanitizer attached
   convicts unguarded_access and unbalanced_op. *)

let test_broken_ds_static () =
  let path = root ^ "broken_ds.ml" in
  let expb line rest = Printf.sprintf "%s:%d: %s" path line rest in
  let r = D.analyze_files ~check_mli:false [ path ] in
  Alcotest.(check (list string))
    "R2 and R3 both fire on the seeded-violation module"
    [
      expb 25 "[phase-bracket] operation can exit without end_op";
      expb 26
        "[unguarded-deref] Smr.read_root: validated dereference outside \
         any phase";
      expb 43 "[phase-bracket] operation can exit without end_op";
      expb 48
        "[unguarded-deref] broken_lookup: validated dereference outside \
         any phase";
    ]
    (strings_of r)

let det_config =
  { Sim.default_config with cores = 2; granularity = 1; jitter = 0; seed = 7 }

let with_clean_globals f =
  Fun.protect f ~finally:(fun () ->
      Sim.set_config Sim.default_config;
      Sim.set_max_events 0;
      Trace.subscribe None;
      Trace.set_verbose false;
      if Trace.enabled () then Trace.disable ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let broken_scenario () =
  Sim.set_config det_config;
  let san =
    San.attach { San.family = San.Neutralization; nthreads = 2; garbage_bound = None }
  in
  (try Broken_ds.run () with Sim.Stuck _ -> ());
  San.detach san;
  if Trace.enabled () then Trace.disable ();
  match San.violations san with
  | [] -> None
  | vs -> Some (String.concat "\n" (List.map San.violation_to_string vs))

let test_broken_ds_dynamic () =
  with_clean_globals @@ fun () ->
  let r =
    Explore.dfs ~preemption_bound:1 ~max_schedules:100 ~nthreads:2
      ~run:broken_scenario ()
  in
  match r.Explore.r_violation with
  | None ->
      Alcotest.failf "sanitizer saw nothing in %d schedules of Broken_ds"
        r.r_schedules
  | Some (desc, _) ->
      Alcotest.(check bool) "unguarded access convicted dynamically" true
        (contains desc "unguarded_access");
      Alcotest.(check bool) "unbalanced op convicted dynamically" true
        (contains desc "unbalanced_op")

let suite =
  [
    Alcotest.test_case "R1 read-phase write" `Quick test_r1;
    Alcotest.test_case "R2 unguarded deref" `Quick test_r2;
    Alcotest.test_case "R3 phase bracket" `Quick test_r3;
    Alcotest.test_case "R4 write-phase read" `Quick test_r4;
    Alcotest.test_case "R2 scheme closure (PR 4 IBR bug)" `Quick test_scheme_ibr;
    Alcotest.test_case "idiom rules on the shared engine" `Quick test_idiom;
    Alcotest.test_case "in-source waiver" `Quick test_waiver;
    Alcotest.test_case "path normalization" `Quick test_normalize_path;
    Alcotest.test_case "allowlist normalization" `Quick
      test_allowlist_normalization;
    Alcotest.test_case "sarif emission" `Quick test_sarif;
    Alcotest.test_case "cross-check: static" `Quick test_broken_ds_static;
    Alcotest.test_case "cross-check: dynamic" `Quick test_broken_ds_dynamic;
  ]
