(* The analysis suite (lib/check), end to end: certificate round-trips,
   sanitizer rules on synthetic event streams, schedule-explorer
   negatives — unsafe-free, leaky, and the PR 4 IBR frozen-link bug
   behind the A3 ablation knob — each with byte-for-byte certificate
   replay, and a positive swarm smoke over every supported safe
   scheme × structure pair. *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)
module Trace = Nbr_obs.Trace
module Cert = Nbr_check.Certificate
module Explore = Nbr_check.Explore
module San = Nbr_check.Sanitizer

(* Jitter off: scenario executions must be a pure function of the
   decision sequence for certificates to replay byte-for-byte, and a
   fixed jitter seed would do, but zero keeps failures easy to read. *)
let det_config =
  { Sim.default_config with cores = 2; granularity = 1; jitter = 0; seed = 7 }

(* Explorer scenarios mutate process-global simulator and trace state;
   put all of it back so later suites see the defaults they expect. *)
let with_clean_globals f =
  Fun.protect f ~finally:(fun () ->
      Sim.set_config Sim.default_config;
      Sim.set_max_events 0;
      Trace.subscribe None;
      Trace.set_verbose false;
      if Trace.enabled () then Trace.disable ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rules_of san = List.map (fun v -> v.San.v_rule) (San.violations san)

(* Every sanitizer finding of one scenario execution as a single string:
   the negative tests compare this across replays byte-for-byte. *)
let verdict san =
  match San.violations san with
  | [] -> None
  | vs -> Some (String.concat "\n" (List.map San.violation_to_string vs))

(* ------------------------------------------------------------------ *)
(* Certificates.                                                       *)

let cert_example =
  {
    Cert.c_strategy = "dfs";
    c_nthreads = 2;
    c_cores = 2;
    c_granularity = 1;
    c_seed = 24397;
    c_decisions = [| 0; 0; 0; 0; 1; 0; 1; 1; 1; 0 |];
  }

let test_cert_roundtrip () =
  let s = Cert.to_string cert_example in
  let c' = Cert.of_string s in
  Alcotest.(check bool) "round-trips" true (Cert.equal cert_example c');
  Alcotest.(check string) "stable re-encoding" s (Cert.to_string c');
  Alcotest.(check bool) "whitespace tolerated" true
    (Cert.equal cert_example (Cert.of_string ("  " ^ s ^ "\n")));
  let empty = { cert_example with c_decisions = [||] } in
  Alcotest.(check bool) "empty decisions round-trip" true
    (Cert.equal empty (Cert.of_string (Cert.to_string empty)));
  let long =
    { cert_example with c_decisions = Array.init 1000 (fun i -> i / 700) }
  in
  Alcotest.(check bool) "long runs round-trip" true
    (Cert.equal long (Cert.of_string (Cert.to_string long)))

let test_cert_malformed () =
  let rejected s =
    match Cert.of_string s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ (if s = "" then "<empty>" else s))
        true (rejected s))
    [
      "";
      "garbage";
      "nbr-cert/2;dfs;2;2;1;5;0" (* wrong version *);
      "nbr-cert/1;dfs;2;2;1;5" (* missing field *);
      "nbr-cert/1;dfs;two;2;1;5;0" (* non-numeric *);
      "nbr-cert/1;dfs;2;2;1;5;3x" (* truncated run *);
      "nbr-cert/1;dfs;2;2;1;5;0x4" (* zero-length run *);
    ]

(* ------------------------------------------------------------------ *)
(* Sanitizer rules on synthetic event streams: drive Trace.emit by hand
   and check exactly which rules fire.                                 *)

let attach ?garbage_bound family =
  if not (Trace.enabled ()) then Trace.enable ~nthreads:2 ();
  San.attach { San.family; nthreads = 2; garbage_bound }

let test_san_unbalanced () =
  with_clean_globals @@ fun () ->
  let san = attach San.Epoch in
  Trace.emit ~tid:0 ~ns:10 Trace.Begin_op 0 0;
  Trace.emit ~tid:0 ~ns:20 Trace.Begin_op 0 0 (* nested *);
  Trace.emit ~tid:0 ~ns:30 Trace.End_op 0 0;
  Trace.emit ~tid:1 ~ns:40 Trace.End_op 0 0 (* unmatched *);
  Trace.emit ~tid:1 ~ns:50 Trace.Begin_op 0 0 (* left open *);
  San.detach san;
  Alcotest.(check (list string))
    "nested, unmatched, and left-open all flagged"
    [ "unbalanced_op"; "unbalanced_op"; "unbalanced_op" ]
    (rules_of san);
  Alcotest.(check int) "total matches" 3 (San.total_violations san)

let test_san_uaf_and_garbage () =
  with_clean_globals @@ fun () ->
  let san = attach ~garbage_bound:2 San.Epoch in
  Trace.emit ~tid:0 ~ns:1 Trace.Alloc_slot 7 0;
  Trace.emit ~tid:0 ~ns:2 Trace.Access 7 1 (* live: fine *);
  Trace.emit ~tid:0 ~ns:3 Trace.Retire 7 0;
  Trace.emit ~tid:0 ~ns:4 Trace.Access 7 2 (* retired: not UAF *);
  Trace.emit ~tid:0 ~ns:5 Trace.Free_slot 7 0;
  Trace.emit ~tid:1 ~ns:6 Trace.Access 7 0 (* freed: uaf_access *);
  Trace.emit ~tid:1 ~ns:7 Trace.Access 99 0 (* unknown slot: never flagged *);
  (* Bound 2, and slot 7 is already freed: the third concurrently
     retired slot crosses the bound, once (latched). *)
  Trace.emit ~tid:0 ~ns:8 Trace.Alloc_slot 1 0;
  Trace.emit ~tid:0 ~ns:9 Trace.Alloc_slot 2 0;
  Trace.emit ~tid:0 ~ns:10 Trace.Alloc_slot 3 0;
  Trace.emit ~tid:0 ~ns:11 Trace.Retire 1 0;
  Trace.emit ~tid:0 ~ns:12 Trace.Retire 2 0;
  Trace.emit ~tid:0 ~ns:13 Trace.Retire 3 0;
  Trace.emit ~tid:0 ~ns:14 Trace.Retire 3 0 (* dedup: no double count *);
  San.detach san;
  Alcotest.(check (list string))
    "one UAF, one latched garbage-bound"
    [ "uaf_access"; "garbage_bound" ]
    (rules_of san);
  match San.violations san with
  | [ uaf; _ ] ->
      Alcotest.(check int) "UAF blamed on the reader" 1 uaf.San.v_tid;
      Alcotest.(check int) "at the access timestamp" 6 uaf.San.v_ns;
      Alcotest.(check bool) "context captured" true (uaf.San.v_context <> [])
  | _ -> Alcotest.fail "expected exactly two findings"

let test_san_unguarded () =
  with_clean_globals @@ fun () ->
  let san = attach San.Neutralization in
  Trace.emit ~tid:0 ~ns:1 Trace.Begin_op 0 0;
  Trace.emit ~tid:0 ~ns:2 Trace.Access 4 1 (* before checkpoint: flagged *);
  Trace.emit ~tid:0 ~ns:3 Trace.Checkpoint_set 0 0;
  Trace.emit ~tid:0 ~ns:4 Trace.Access 4 1 (* in a read phase: fine *);
  Trace.emit ~tid:0 ~ns:5 Trace.Reservation_publish 1 0;
  Trace.emit ~tid:0 ~ns:6 Trace.Access 4 1 (* after publish: flagged *);
  Trace.emit ~tid:0 ~ns:7 Trace.End_op 0 0;
  San.detach san;
  Alcotest.(check (list string))
    "accesses outside the checkpointed phase flagged"
    [ "unguarded_access"; "unguarded_access" ]
    (rules_of san)

let test_san_handshake () =
  with_clean_globals @@ fun () ->
  (* Broken: victim keeps accessing after an unobserved signal, and the
     sender reclaims anyway. *)
  let san = attach San.Neutralization in
  Trace.emit ~tid:1 ~ns:1 Trace.Begin_op 0 0;
  Trace.emit ~tid:1 ~ns:2 Trace.Checkpoint_set 0 0;
  Trace.emit ~tid:0 ~ns:3 Trace.Signal_sent 1 0;
  Trace.emit ~tid:1 ~ns:4 Trace.Access 5 1;
  Trace.emit ~tid:0 ~ns:5 Trace.Reclaim 3 0;
  Trace.emit ~tid:1 ~ns:6 Trace.End_op 0 0;
  San.detach san;
  Alcotest.(check (list string))
    "reclaim past an unacknowledged signal flagged"
    [ "handshake_incomplete" ] (rules_of san);
  (* Honoured: the victim observes the signal (Neutralized) before the
     sender reclaims — same events otherwise, no finding. *)
  let san2 = attach San.Neutralization in
  Trace.emit ~tid:1 ~ns:1 Trace.Begin_op 0 0;
  Trace.emit ~tid:1 ~ns:2 Trace.Checkpoint_set 0 0;
  Trace.emit ~tid:0 ~ns:3 Trace.Signal_sent 1 0;
  Trace.emit ~tid:1 ~ns:4 Trace.Access 5 1;
  Trace.emit ~tid:1 ~ns:5 Trace.Neutralized 0 0;
  Trace.emit ~tid:0 ~ns:6 Trace.Reclaim 3 0;
  Trace.emit ~tid:1 ~ns:7 Trace.Checkpoint_set 0 0 (* restart re-arms *);
  Trace.emit ~tid:1 ~ns:8 Trace.End_op 0 0;
  San.detach san2;
  Alcotest.(check (list string)) "observed handshake is clean" []
    (rules_of san2)

(* ------------------------------------------------------------------ *)
(* Schedule explorer: a race-free scenario exhausts its bounded space
   with no finding.                                                    *)

let trivial_scenario () =
  Sim.set_config det_config;
  Sim.set_max_events 100_000;
  let x = Sim.make 0 and y = Sim.make 0 in
  (try
     Sim.run ~nthreads:2 (fun tid ->
         if tid = 0 then begin
           Sim.store x 1;
           ignore (Sim.load y)
         end
         else begin
           Sim.store y 1;
           ignore (Sim.load x)
         end)
   with Sim.Stuck _ -> ());
  None

let test_dfs_exhausts_clean () =
  with_clean_globals @@ fun () ->
  let r =
    Explore.dfs ~preemption_bound:1 ~max_schedules:500 ~nthreads:2
      ~run:trivial_scenario ()
  in
  Alcotest.(check bool) "no violation" true (r.Explore.r_violation = None);
  Alcotest.(check bool) "explored several schedules" true (r.r_schedules > 1);
  Alcotest.(check bool) "bounded space exhausted before the cap" true
    (r.r_schedules < 500)

(* ------------------------------------------------------------------ *)
(* Negative: unsafe-free.  The foil frees on retire with no protection;
   a single preemption lets the writer free a still-linked record
   between the reader starting its operation and traversing.           *)

module U = Nbr_core.Unsafe_free.Make (Sim)

let unsafe_free_scenario () =
  Sim.set_config det_config;
  Sim.set_max_events 500_000;
  let pool = P.create ~capacity:32 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
  let smr = U.create pool ~nthreads:2 Nbr_core.Smr_config.default in
  let root = Sim.make P.nil in
  let c0 = U.register smr ~tid:0 and c1 = U.register smr ~tid:1 in
  let san =
    San.attach
      {
        San.family = San.family_of_scheme U.scheme_name;
        nthreads = 2;
        garbage_bound = None;
      }
  in
  (try
     Sim.run ~nthreads:2 (fun tid ->
         if tid = 0 then begin
           (* Reader: root, then one hop. *)
           U.begin_op c0;
           U.read_only c0 (fun () ->
               let a = U.read_root c0 root in
               if a >= 0 then ignore (U.read_ptr c0 ~src:a ~field:0));
           U.end_op c0
         end
         else begin
           (* Writer: publish A -> B, then free B while still linked. *)
           U.begin_op c1;
           let a = U.alloc c1 in
           let b = U.alloc c1 in
           P.set_ptr pool a 0 b;
           Sim.store root a;
           U.end_op c1;
           U.begin_op c1;
           U.retire c1 b;
           U.end_op c1
         end)
   with Sim.Stuck _ -> ());
  San.detach san;
  if Trace.enabled () then Trace.disable ();
  verdict san

let test_unsafe_free_negative () =
  with_clean_globals @@ fun () ->
  let r =
    Explore.dfs ~preemption_bound:1 ~nthreads:2 ~run:unsafe_free_scenario ()
  in
  match r.Explore.r_violation with
  | None ->
      Alcotest.failf "no violation in %d schedules of an unsafe scheme"
        r.r_schedules
  | Some (desc, cert) ->
      Alcotest.(check bool) "flagged as a UAF access" true
        (contains desc "uaf_access");
      Alcotest.(check bool) "took more than the sequential schedule" true
        (r.r_schedules > 1);
      (* The certificate survives its own wire format, and replaying it
         reproduces the identical findings, byte for byte, twice. *)
      let cert = Cert.of_string (Cert.to_string cert) in
      let r1 = Explore.replay cert ~run:unsafe_free_scenario in
      let r2 = Explore.replay cert ~run:unsafe_free_scenario in
      Alcotest.(check (option string)) "replay reproduces" (Some desc) r1;
      Alcotest.(check (option string)) "replay is deterministic" r1 r2

(* ------------------------------------------------------------------ *)
(* Negative: leaky breaches a configured garbage bound on any schedule
   (PCT finds it on its first), and the certificate replays.           *)

module Lk = Nbr_core.Leaky.Make (Sim)

let leaky_scenario () =
  Sim.set_config det_config;
  Sim.set_max_events 500_000;
  let pool = P.create ~capacity:64 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
  let smr = Lk.create pool ~nthreads:2 Nbr_core.Smr_config.default in
  let c0 = Lk.register smr ~tid:0 and c1 = Lk.register smr ~tid:1 in
  let san =
    San.attach
      {
        San.family = San.family_of_scheme Lk.scheme_name;
        nthreads = 2;
        garbage_bound = Some 4;
      }
  in
  (try
     Sim.run ~nthreads:2 (fun tid ->
         if tid = 0 then begin
           Lk.begin_op c0;
           for _ = 1 to 8 do
             Lk.retire c0 (Lk.alloc c0)
           done;
           Lk.end_op c0
         end
         else begin
           Lk.begin_op c1;
           Lk.retire c1 (Lk.alloc c1);
           Lk.end_op c1
         end)
   with Sim.Stuck _ -> ());
  San.detach san;
  if Trace.enabled () then Trace.disable ();
  verdict san

let test_leaky_negative () =
  with_clean_globals @@ fun () ->
  let r =
    Explore.pct ~schedules:2 ~seed:3 ~nthreads:2 ~run:leaky_scenario ()
  in
  match r.Explore.r_violation with
  | None -> Alcotest.fail "leaky never breached its garbage bound"
  | Some (desc, cert) ->
      Alcotest.(check bool) "flagged as a garbage-bound breach" true
        (contains desc "garbage_bound");
      let cert = Cert.of_string (Cert.to_string cert) in
      let r1 = Explore.replay cert ~run:leaky_scenario in
      let r2 = Explore.replay cert ~run:leaky_scenario in
      Alcotest.(check (option string)) "replay reproduces" (Some desc) r1;
      Alcotest.(check (option string)) "replay is deterministic" r1 r2

(* ------------------------------------------------------------------ *)
(* Regression: the PR 4 IBR frozen-link bug, re-found from first
   principles.  With [unsafe_ibr_no_validate] (ablation A3) the era
   ratchet returns the frozen link of a retired source, which can name a
   record born after the reader's announced upper bound and already
   swept.  One preemption: the reader resolves the root, the writer
   replaces and retires everything (epoch_freq/bag_threshold 1 make
   every retire sweep), the reader follows the frozen link.            *)

module I = Nbr_core.Ibr.Make (Sim)

let ibr_scenario ~validate () =
  Sim.set_config det_config;
  Sim.set_max_events 500_000;
  let pool = P.create ~capacity:32 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
  let scfg =
    {
      Nbr_core.Smr_config.default with
      epoch_freq = 1;
      bag_threshold = 1;
      lo_watermark = 1;
      unsafe_ibr_no_validate = not validate;
    }
  in
  let smr = I.create pool ~nthreads:2 scfg in
  let root = Sim.make P.nil in
  let c0 = I.register smr ~tid:0 and c1 = I.register smr ~tid:1 in
  (* Prefill (outside the fibers): one record A published at the root. *)
  let a = I.alloc c1 in
  P.set_ptr pool a 0 P.nil;
  Sim.store root a;
  let san =
    San.attach
      {
        San.family = San.family_of_scheme I.scheme_name;
        nthreads = 2;
        garbage_bound = None;
      }
  in
  (try
     Sim.run ~nthreads:2 (fun tid ->
         if tid = 0 then begin
           (* Reader: root, then one hop — the hop follows A's link. *)
           I.begin_op c0;
           I.read_only c0 (fun () ->
               let x = I.read_root c0 root in
               if x >= 0 then ignore (I.read_ptr c0 ~src:x ~field:0));
           I.end_op c0
         end
         else begin
           (* Writer: replace A with C and retire both.  A stays pinned
              by the reader's interval with its link frozen at C; C is
              born after the reader's upper bound, so the sweep frees
              it. *)
           I.begin_op c1;
           let c = I.alloc c1 in
           P.set_ptr pool c 0 P.nil;
           P.set_ptr pool a 0 c;
           Sim.store root c;
           I.retire c1 a;
           Sim.store root P.nil;
           I.retire c1 c;
           I.end_op c1
         end)
   with Sim.Stuck _ -> ());
  San.detach san;
  if Trace.enabled () then Trace.disable ();
  verdict san

let test_ibr_regression () =
  with_clean_globals @@ fun () ->
  let r =
    Explore.dfs ~preemption_bound:1 ~nthreads:2
      ~run:(ibr_scenario ~validate:false)
      ()
  in
  match r.Explore.r_violation with
  | None ->
      Alcotest.failf "DFS did not re-find the IBR frozen-link bug (%d schedules)"
        r.r_schedules
  | Some (desc, cert) ->
      Alcotest.(check bool) "frozen link read as a UAF access" true
        (contains desc "uaf_access");
      let cert = Cert.of_string (Cert.to_string cert) in
      let r1 = Explore.replay cert ~run:(ibr_scenario ~validate:false) in
      let r2 = Explore.replay cert ~run:(ibr_scenario ~validate:false) in
      Alcotest.(check (option string)) "replay reproduces" (Some desc) r1;
      Alcotest.(check (option string)) "replay is deterministic" r1 r2;
      (* The PR 4 fix: the same schedule with source validation on
         neutralizes the reader instead of handing it the frozen link. *)
      Alcotest.(check (option string)) "validation closes the window" None
        (Explore.replay cert ~run:(ibr_scenario ~validate:true))

(* ------------------------------------------------------------------ *)
(* Ablation A4: generation checks off.  A validated read through a
   stale handle then *commits* the recycled slot's memory — a raw UAF
   traced as an [Access] the sanitizer convicts.  With checks on (the
   default; schemes wire [Smr_config.unsafe_no_generation_check] to
   [P.set_generation_check] at create) the same schedule surfaces as a
   typed [Stale] result: no freed memory crosses over, no finding.     *)

let gen_check_scenario ~gen_check () =
  Sim.set_config det_config;
  Sim.set_max_events 500_000;
  let pool = P.create ~capacity:16 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
  P.set_generation_check pool gen_check;
  let root = Sim.make P.nil in
  let san =
    San.attach { San.family = San.Epoch; nthreads = 2; garbage_bound = None }
  in
  (try
     Sim.run ~nthreads:2 (fun tid ->
         if tid = 0 then begin
           (* Reader: pick up the published handle, then read through it
              with no protection at all — the knob alone decides whether
              the read can commit freed memory. *)
           let a = Sim.load root in
           if a >= 0 then ignore (P.read_data pool a 0)
         end
         else begin
           (* Writer: publish A, free it, recycle the slot (same index,
              bumped generation) so the reader's handle goes stale. *)
           let a = P.alloc pool in
           P.set_data pool a 0 1;
           Sim.store root a;
           P.free pool a;
           let b = P.alloc pool in
           P.set_data pool b 0 2;
           P.free pool b
         end)
   with Sim.Stuck _ -> ());
  San.detach san;
  if Trace.enabled () then Trace.disable ();
  verdict san

let test_gen_check_ablation () =
  with_clean_globals @@ fun () ->
  let r =
    Explore.dfs ~preemption_bound:1 ~nthreads:2
      ~run:(gen_check_scenario ~gen_check:false)
      ()
  in
  match r.Explore.r_violation with
  | None ->
      Alcotest.failf "DFS did not catch the unchecked stale read (%d schedules)"
        r.r_schedules
  | Some (desc, cert) ->
      Alcotest.(check bool) "committed stale read is a UAF access" true
        (contains desc "uaf_access");
      let cert = Cert.of_string (Cert.to_string cert) in
      let r1 = Explore.replay cert ~run:(gen_check_scenario ~gen_check:false) in
      let r2 = Explore.replay cert ~run:(gen_check_scenario ~gen_check:false) in
      Alcotest.(check (option string)) "replay reproduces" (Some desc) r1;
      Alcotest.(check (option string)) "replay is deterministic" r1 r2;
      (* The tentpole invariant: the identical schedule with generation
         checks on fails type-safely instead. *)
      Alcotest.(check (option string)) "generation check closes the window"
        None
        (Explore.replay cert ~run:(gen_check_scenario ~gen_check:true))

(* ------------------------------------------------------------------ *)
(* Positive: every supported safe scheme × structure pair runs a tiny
   trial under a PCT schedule with the sanitizer attached and produces
   zero findings (and a valid trial).                                  *)

module H = Nbr_workload.Harness.Make (Sim)

let smoke_scenario ~scheme ~structure () =
  Sim.set_config det_config;
  Sim.set_max_events 5_000_000;
  let cfg =
    Nbr_workload.Trial.Cfg.make ~nthreads:2 ~duration_ns:20_000 ~key_range:16
      ~seed:11 ()
  in
  let san =
    San.attach
      {
        San.family = San.family_of_scheme scheme;
        nthreads = 2;
        (* The sanitizer's count is pool-wide; the trial bound is
           per-thread.  Scale and add headroom — the negative tests
           cover tightness, this guards against unbounded blowup. *)
        garbage_bound = Some (4 * Nbr_workload.Trial.garbage_bound cfg);
      }
  in
  let result =
    try Some (H.run ~scheme ~structure cfg) with Sim.Stuck _ -> None
  in
  (* A schedule that starves a lock holder (PCT keeps running the
     spinner) hits the event budget mid-operation: protocol findings up
     to the truncation point stand, but detach's still-inside-an-op
     report is an artifact of the cut, not a bug. *)
  let runtime_verdict = verdict san in
  San.detach san;
  if Trace.enabled () then Trace.disable ();
  match result with
  | None -> runtime_verdict
  | Some r -> (
      match verdict san with
      | Some v -> Some v
      | None ->
          if Nbr_workload.Trial.valid r then None else Some "trial invalid")

let run_smoke scheme structure () =
  with_clean_globals @@ fun () ->
  let r =
    Explore.pct ~schedules:1 ~seed:17 ~nthreads:2
      ~run:(smoke_scenario ~scheme ~structure)
      ()
  in
  match r.Explore.r_violation with
  | None -> ()
  | Some (desc, cert) ->
      Alcotest.failf "%s/%s under %s:\n%s" scheme structure
        (Cert.to_string cert) desc

let safe_schemes = [ "nbr"; "nbr+"; "debra"; "qsbr"; "rcu"; "ibr"; "hp"; "he" ]

let smoke_tests =
  List.concat_map
    (fun scheme ->
      List.filter_map
        (fun structure ->
          if H.supported ~scheme ~structure then
            Some
              (Alcotest.test_case
                 (Printf.sprintf "swarm smoke %s/%s" scheme structure)
                 `Quick (run_smoke scheme structure))
          else None)
        H.structure_names)
    safe_schemes

let suite =
  [
    Alcotest.test_case "certificate round-trip" `Quick test_cert_roundtrip;
    Alcotest.test_case "certificate malformed" `Quick test_cert_malformed;
    Alcotest.test_case "sanitizer unbalanced ops" `Quick test_san_unbalanced;
    Alcotest.test_case "sanitizer UAF + garbage bound" `Quick
      test_san_uaf_and_garbage;
    Alcotest.test_case "sanitizer unguarded access" `Quick test_san_unguarded;
    Alcotest.test_case "sanitizer writers' handshake" `Quick test_san_handshake;
    Alcotest.test_case "dfs exhausts a clean scenario" `Quick
      test_dfs_exhausts_clean;
    Alcotest.test_case "negative: unsafe-free UAF + replay" `Quick
      test_unsafe_free_negative;
    Alcotest.test_case "negative: leaky garbage bound + replay" `Quick
      test_leaky_negative;
    Alcotest.test_case "regression: IBR frozen link (A3) + replay" `Quick
      test_ibr_regression;
    Alcotest.test_case "ablation: unchecked stale read (A4) + replay" `Quick
      test_gen_check_ablation;
  ]
  @ smoke_tests
