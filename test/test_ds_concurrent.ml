(* Concurrent correctness tests on the deterministic simulator.

   Each case runs a multi-threaded mixed workload over many seeds
   (different interleavings) at fine scheduling granularity, checking:
   - the structure's final contents equal prefill + inserts - deletes,
   - no committed use-after-free reads,
   - bounded-garbage schemes keep peak unreclaimed memory bounded under
     an adversarially stalled thread, while DEBRA/RCU visibly grow (the
     paper's figure 4c as a property). *)

module Sim = Nbr_runtime.Sim_rt
module H = Nbr_workload.Harness.Make (Sim)
module T = Nbr_workload.Trial

let run_combo ~scheme ~structure ~seed ?(nthreads = 5) ?(key_range = 128)
    ?(threshold = 48) ?stall ?(duration_ns = 400_000) () =
  Sim.set_config
    {
      Sim.default_config with
      cores = 3 (* fewer cores than threads: real preemption *);
      granularity = 1;
      seed;
    };
  Sim.set_max_events 80_000_000;
  Fun.protect
    ~finally:(fun () -> Sim.set_max_events 0)
    (fun () ->
      let cfg =
        T.Cfg.make ~nthreads ~duration_ns ~key_range
          ~smr:
            (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
               threshold)
          ~seed ?stall ()
      in
      H.run ~scheme ~structure cfg)

let seeds = [ 3; 17; 101 ]

let check_combo ~scheme ~structure () =
  List.iter
    (fun seed ->
      let r = run_combo ~scheme ~structure ~seed () in
      if r.T.final_size <> r.T.expected_size then
        Alcotest.failf "%s/%s seed=%d: size %d, expected %d (ops=%d)" scheme
          structure seed r.T.final_size r.T.expected_size r.T.total_ops;
      if r.T.uaf_reads <> 0 then
        Alcotest.failf "%s/%s seed=%d: %d use-after-free reads" scheme
          structure seed r.T.uaf_reads;
      if r.T.total_ops < 100 then
        Alcotest.failf "%s/%s seed=%d: suspiciously few ops (%d)" scheme
          structure seed r.T.total_ops)
    seeds

let combos =
  List.concat_map
    (fun structure ->
      List.filter_map
        (fun scheme ->
          if H.supported ~scheme ~structure then Some (scheme, structure)
          else None)
        H.scheme_names)
    H.structure_names

(* ------------------------------------------------------------------ *)
(* Bounded garbage under a stalled thread (E2 as a property).           *)

let stalled_peak ~scheme () =
  let duration_ns = 1_500_000 in
  let r =
    run_combo ~scheme ~structure:"dgt-tree" ~seed:11 ~nthreads:6
      ~key_range:512 ~threshold:64
      ~stall:{ T.stall_tid = 1; stall_ns = duration_ns }
      ~duration_ns ()
  in
  if r.T.final_size <> r.T.expected_size then
    Alcotest.failf "%s stalled run: size mismatch" scheme;
  r.T.peak_unreclaimed

let test_bounded_garbage_under_stall () =
  (* Live structure ~256 keys -> ~512 live records + bags.  A bounded
     scheme's peak should stay near (live + threads*threshold); DEBRA and
     RCU, pinned by the staller, grow far beyond it. *)
  let bound = 512 + (6 * 64 * 4) in
  List.iter
    (fun scheme ->
      let p = stalled_peak ~scheme () in
      Alcotest.(check bool)
        (Printf.sprintf "%s peak %d within bound %d under stall" scheme p
           bound)
        true (p <= bound))
    [ "nbr"; "nbr+"; "hp"; "ibr" ];
  let p_nbrp = stalled_peak ~scheme:"nbr+" () in
  List.iter
    (fun scheme ->
      let p = stalled_peak ~scheme () in
      Alcotest.(check bool)
        (Printf.sprintf
           "%s grows under stall (peak %d vs nbr+ %d)" scheme p p_nbrp)
        true
        (p > 2 * p_nbrp))
    [ "debra"; "rcu" ]

(* Without a stall, every reclaiming scheme should stay modest. *)
let test_no_stall_memory_flat () =
  List.iter
    (fun scheme ->
      let r =
        run_combo ~scheme ~structure:"dgt-tree" ~seed:13 ~nthreads:6
          ~key_range:512 ~threshold:64 ~duration_ns:1_500_000 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s peak %d reasonable without stall" scheme
           r.T.peak_unreclaimed)
        true
        (r.T.peak_unreclaimed <= 512 + (6 * 64 * 6)))
    [ "nbr"; "nbr+"; "debra"; "qsbr"; "rcu"; "ibr"; "hp" ]

(* NBR's restarts actually happen in contended runs (the neutralization
   path is exercised, not just compiled). *)
let test_neutralization_exercised () =
  let r =
    run_combo ~scheme:"nbr" ~structure:"lazy-list" ~seed:3 ~nthreads:6
      ~key_range:64 ~threshold:24 ~duration_ns:800_000 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "restarts observed (%d), signals sent (%d)"
       (Nbr_core.Smr_stats.restarts r.T.smr_stats) r.T.signals)
    true
    ((Nbr_core.Smr_stats.restarts r.T.smr_stats) > 0 && r.T.signals > 0)

(* NBR+ opportunistic reclamation fires in steady state. *)
let test_nbrp_lo_reclaims_exercised () =
  let r =
    run_combo ~scheme:"nbr+" ~structure:"dgt-tree" ~seed:9 ~nthreads:6
      ~key_range:256 ~threshold:48 ~duration_ns:1_200_000 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "lo-watermark reclaims observed (%d)"
       (Nbr_core.Smr_stats.lo_reclaims r.T.smr_stats))
    true
    ((Nbr_core.Smr_stats.lo_reclaims r.T.smr_stats) > 0)

let suite =
  List.map
    (fun (scheme, structure) ->
      Alcotest.test_case
        (Printf.sprintf "%s/%s: 3 seeds, 5 threads" scheme structure)
        `Slow
        (check_combo ~scheme ~structure))
    combos
  @ [
      Alcotest.test_case "bounded garbage under stalled thread (fig 4c)"
        `Slow test_bounded_garbage_under_stall;
      Alcotest.test_case "memory flat without stall (fig 4d)" `Slow
        test_no_stall_memory_flat;
      Alcotest.test_case "neutralization path exercised" `Quick
        test_neutralization_exercised;
      Alcotest.test_case "nbr+ lo-watermark path exercised" `Quick
        test_nbrp_lo_reclaims_exercised;
    ]
