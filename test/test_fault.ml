(* Fault-injection layer tests: seeded chaos plans (multi-thread stalls,
   a crashed thread, delayed signals) against every scheme, the
   bounded-garbage invariant (paper P2), the runtime's signal-fate
   plumbing, and the pool's graceful-exhaustion retry path. *)

module Sim = Nbr_runtime.Sim_rt
module Nat = Nbr_runtime.Native_rt
module HS = Nbr_workload.Harness.Make (Sim)
module HN = Nbr_workload.Harness.Make (Nat)
module T = Nbr_workload.Trial
module FP = Nbr_fault.Fault_plan
module P = Nbr_pool.Pool.Make (Sim)

(* Restates each scheme's [bounded_garbage] flag (the harness is
   string-keyed). *)
let claims_bounded = function
  | "nbr" | "nbr+" | "ibr" | "hp" | "he" -> true
  | _ -> false

(* HP/HE cannot run mark-traversing structures (paper P5). *)
let structure_for scheme =
  if HS.supported ~scheme ~structure:"harris-list" then "harris-list"
  else "lazy-list"

let delay_signal = { FP.delay_pct = 25; delay_ns = 10_000; drop_pct = 0 }

(* ---------------- plan generation ---------------- *)

(* The chaos generator must honour its own contract: requested fault
   counts, no fault on thread 0, deterministic for a given seed. *)
let test_plan_shape () =
  List.iter
    (fun seed ->
      let p =
        FP.chaos ~seed ~nthreads:6 ~stalls:2 ~crashes:1 ~stall_ns:1000
          ~signal:delay_signal ()
      in
      Alcotest.(check int)
        "two stalled threads" 2
        (List.length (FP.stalled_tids p));
      Alcotest.(check int) "one crashed thread" 1 (List.length (FP.crashed_tids p));
      List.iter
        (fun tid -> if tid = 0 then Alcotest.fail "thread 0 must never fault")
        (FP.stalled_tids p @ FP.crashed_tids p);
      (* Same seed, same plan. *)
      let p' =
        FP.chaos ~seed ~nthreads:6 ~stalls:2 ~crashes:1 ~stall_ns:1000
          ~signal:delay_signal ()
      in
      Alcotest.(check string)
        "deterministic plan"
        (Format.asprintf "%a" FP.pp p)
        (Format.asprintf "%a" FP.pp p'))
    [ 1; 2; 3; 4; 5 ]

(* The victim pool resets between fault kinds: across seeds, some plan
   must put a stall AND the crash on the same thread (the paper's worst
   case — a delayed thread that then dies), which the old
   draw-without-replacement-across-kinds generator could never emit. *)
let test_plan_same_tid_collision () =
  let found = ref false in
  for seed = 1 to 200 do
    let p = FP.chaos ~seed ~nthreads:4 ~stalls:2 ~crashes:1 ~stall_ns:1000 () in
    let stalled = FP.stalled_tids p and crashed = FP.crashed_tids p in
    if List.exists (fun t -> List.mem t stalled) crashed then found := true
  done;
  Alcotest.(check bool) "some seed stalls and crashes one thread" true !found

(* Per-thread fault lists are ordered by trigger op, and a Crash ties
   after other kinds at the same op: everything after a crash is
   unreachable, so the runner must see the stall first. *)
let test_plan_fault_order () =
  for seed = 1 to 100 do
    let p =
      FP.chaos ~seed ~nthreads:4 ~stalls:3 ~crashes:3 ~stall_ns:1000
        ~ops_window:3 ()
    in
    Array.iteri
      (fun tid _ ->
        let rec check = function
          | a :: (b :: _ as rest) ->
              if FP.fault_op a > FP.fault_op b then
                Alcotest.failf "seed %d t%d: faults out of op order" seed tid;
              (match (a, b) with
              | FP.Crash { at_op }, f when FP.fault_op f = at_op ->
                  Alcotest.failf "seed %d t%d: crash ordered before a \
                                  same-op fault" seed tid
              | _ -> ());
              check rest
          | _ -> ()
        in
        check (FP.faults_for p tid))
      p.FP.threads
  done

(* Two deciders built from the same plan must hand out identical fates:
   chaos trials stay replayable. *)
let test_fate_deterministic () =
  let plan =
    FP.chaos ~seed:42 ~nthreads:4
      ~signal:{ FP.delay_pct = 30; delay_ns = 5_000; drop_pct = 20 }
      ()
  in
  let f1 = Option.get (FP.fate_fn plan)
  and f2 = Option.get (FP.fate_fn plan) in
  for i = 0 to 199 do
    let sender = i mod 4 and target = (i + 1) mod 4 in
    if f1 ~sender ~target <> f2 ~sender ~target then
      Alcotest.failf "fate diverged at send %d" i
  done

(* ---------------- runtime signal-fate plumbing ---------------- *)

(* A dropped signal is never delivered but is counted. *)
let test_drop_counted () =
  Sim.set_config { Sim.default_config with cores = 2; granularity = 1; seed = 9 };
  Sim.set_signal_fault
    (Some (fun ~sender:_ ~target:_ -> Nbr_runtime.Runtime_intf.Sig_drop));
  Fun.protect ~finally:(fun () -> Sim.set_signal_fault None) @@ fun () ->
  let sent = ref false and saw = ref false in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Sim.send_signal 1;
        sent := true
      end
      else begin
        while not !sent do
          Sim.stall_ns 100
        done;
        saw := Sim.consume_pending_t tid
      end);
  Alcotest.(check int) "counted as dropped" 1 (Sim.signals_dropped ());
  Alcotest.(check bool) "never visible" false !saw

(* A delayed signal suppresses the *handler*, but stays visible to
   [consume_pending_t] from the moment it is sent — the property the
   writers' handshake (signal_all/end_read) depends on. *)
let test_delay_visible () =
  Sim.set_config { Sim.default_config with cores = 2; granularity = 1; seed = 9 };
  Sim.set_signal_fault
    (Some
       (fun ~sender:_ ~target:_ -> Nbr_runtime.Runtime_intf.Sig_delay 5_000_000));
  Fun.protect ~finally:(fun () -> Sim.set_signal_fault None) @@ fun () ->
  let sent = ref false and saw = ref false in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Sim.send_signal 1;
        sent := true
      end
      else begin
        while not !sent do
          Sim.stall_ns 100
        done;
        saw := Sim.consume_pending_t tid
      end);
  Alcotest.(check bool) "visible while delayed" true !saw;
  Alcotest.(check int) "not dropped" 0 (Sim.signals_dropped ())

(* ---------------- chaos trials (sim) ---------------- *)

let chaos_trial ~seed ~signal scheme =
  let nthreads = 6 in
  let duration = 800_000 in
  let plan =
    FP.chaos ~seed ~nthreads ~stalls:2 ~crashes:1 ~stall_ns:(duration / 2)
      ~ops_window:100 ?signal ()
  in
  let structure = structure_for scheme in
  Sim.set_config { Sim.default_config with cores = 8; granularity = 400; seed };
  let cfg =
    T.Cfg.make ~nthreads ~duration_ns:duration ~key_range:128 ~ins_pct:50 ~del_pct:50
      ~smr:(Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 32)
      ~seed ~faults:plan ()
  in
  let r = HS.run ~scheme ~structure cfg in
  if not (T.valid r) then
    Alcotest.failf "%s/%s seed %d: invalid (size %d expected %d, uaf %d)"
      scheme structure seed r.T.final_size r.T.expected_size r.T.uaf_reads;
  if r.T.total_ops = 0 then Alcotest.fail "no operations completed";
  if claims_bounded scheme then begin
    let bound = T.garbage_bound cfg in
    let mg = Nbr_core.Smr_stats.max_garbage r.T.smr_stats in
    if mg > bound then
      Alcotest.failf "%s seed %d: max_garbage %d > bound %d (P2 violated)"
        scheme seed mg bound
  end

(* Without signal faults the simulator's delivery is exact, so [T.valid]
   additionally demands zero reads of freed slots: stalls and a crashed
   thread alone must never induce UAF. *)
let chaos_sim_case scheme =
  Alcotest.test_case (scheme ^ " chaos (stall+crash)") `Quick (fun () ->
      chaos_trial ~seed:21 ~signal:None scheme)

(* With delayed handlers the reads-of-freed check is relaxed (the delay
   window is the benign native-style window), but set semantics and the
   garbage bound still must hold. *)
let chaos_sim_delay_case scheme =
  Alcotest.test_case (scheme ^ " chaos (+signal delay)") `Quick (fun () ->
      chaos_trial ~seed:22 ~signal:(Some delay_signal) scheme)

(* ---------------- chaos trial (native) ---------------- *)

let chaos_native_case scheme =
  Alcotest.test_case (scheme ^ " chaos native") `Quick (fun () ->
      let nthreads = 4 in
      let duration = 30_000_000 in
      let plan =
        FP.chaos ~seed:31 ~nthreads ~stalls:2 ~crashes:1
          ~stall_ns:(duration / 3) ~ops_window:50 ~signal:delay_signal ()
      in
      let structure = structure_for scheme in
      let cfg =
        T.Cfg.make ~nthreads ~duration_ns:duration ~key_range:128 ~ins_pct:50
          ~del_pct:50
          ~smr:
            (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 32)
          ~seed:31 ~faults:plan ()
      in
      let r = HN.run ~scheme ~structure cfg in
      if not (T.valid r) then
        Alcotest.failf "%s/%s native: invalid (size %d expected %d)" scheme
          structure r.T.final_size r.T.expected_size;
      if r.T.total_ops = 0 then Alcotest.fail "no operations completed")

(* ---------------- crash recovery: outstanding garbage ---------------- *)

(* End-state reclamation under a crash, not just the high-water mark.
   The trial outlives the watchdog death threshold by an order of
   magnitude, so the crashed thread is declared dead, its published
   state retracted and its limbo bag adopted and freed; survivors flush
   their own bags in the post-trial drain.  Aggregate outstanding
   garbage (retires − frees) must then be near zero: for pointer-
   reservation schemes (nbr/nbr+/hp) only records pinned by survivors'
   final published reservations may remain; era schemes (ibr/he)
   additionally keep records whose lifetime overlaps a survivor's stale
   final interval, so they get the interval slack.  Without the
   lifecycle layer the crashed thread's bag and reservations leaked
   permanently and every worker's bag was abandoned at the deadline —
   far past the pointer-scheme bound. *)
let chaos_outstanding_case scheme =
  Alcotest.test_case (scheme ^ " chaos recovery: outstanding") `Quick
    (fun () ->
      let nthreads = 6 in
      let duration = 3_000_000 in
      (* Short stalls (well under the 600us death threshold) plus one
         crash: the staller recovers and must not be expelled; the
         crasher must be reaped. *)
      let plan =
        FP.chaos ~seed:17 ~nthreads ~stalls:1 ~crashes:1 ~stall_ns:50_000
          ~ops_window:60 ()
      in
      let structure = structure_for scheme in
      Sim.set_config
        { Sim.default_config with cores = 8; granularity = 400; seed = 17 };
      let cfg =
        T.Cfg.make ~nthreads ~duration_ns:duration ~key_range:128 ~ins_pct:50
          ~del_pct:50
          ~smr:
            (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
               128)
          ~seed:17 ~faults:plan ()
      in
      let r = HS.run ~scheme ~structure cfg in
      if not (T.valid r) then
        Alcotest.failf "%s/%s: invalid (size %d expected %d, uaf %d)" scheme
          structure r.T.final_size r.T.expected_size r.T.uaf_reads;
      let st = r.T.smr_stats in
      let outstanding =
        Nbr_core.Smr_stats.retires st - Nbr_core.Smr_stats.freed st
      in
      let max_res = if structure = "harris-list" then 3 else 2 in
      let tight = (nthreads * max_res) + 64 in
      let bound =
        match scheme with
        | "nbr" | "nbr+" | "hp" -> tight
        | _ -> tight + (2 * cfg.T.key_range)
      in
      if outstanding > bound then
        Alcotest.failf
          "%s: %d records still outstanding after recovery (bound %d, \
           retired %d freed %d)"
          scheme outstanding bound
          (Nbr_core.Smr_stats.retires st)
          (Nbr_core.Smr_stats.freed st))

(* ---------------- graceful pool exhaustion ---------------- *)

(* A starving allocator must succeed — not raise [Exhausted] — when a
   competing thread frees capacity during its backoff: the free is
   rerouted to the shared overflow stack and picked up by the retry
   loop. *)
let test_exhaustion_retry () =
  Sim.set_config { Sim.default_config with cores = 2; granularity = 1; seed = 3 };
  let pool = P.create ~capacity:8 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
  let held = ref [] in
  let drained = ref false in
  let freed_slot = ref (-1) in
  let got = ref (-1) in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        for _ = 1 to 8 do
          held := P.alloc pool :: !held
        done;
        drained := true;
        (* The 9th alloc starves; it must return the slot thread 1 frees
           mid-backoff rather than raise. *)
        got := P.alloc pool
      end
      else begin
        while not !drained do
          Sim.stall_ns 500
        done;
        (* Wait until thread 0 is inside the pressure loop, so the free
           demonstrably crosses threads via the overflow stack. *)
        while (P.stats pool).P.s_pressure_events = 0 do
          Sim.stall_ns 500
        done;
        let s = List.hd !held in
        freed_slot := s;
        P.free pool s
      end);
  (* The retry hands back the same slot under a re-minted handle: the
     index survives, the generation is fresh. *)
  Alcotest.(check int) "recovered the freed slot"
    (Nbr_pool.Pool.Handle.index !freed_slot)
    (Nbr_pool.Pool.Handle.index !got);
  Alcotest.(check bool) "freed handle is stale" false (P.valid pool !freed_slot);
  let st = P.stats pool in
  Alcotest.(check int) "one pressure event" 1 st.P.s_pressure_events;
  Alcotest.(check bool) "retried at least once" true (st.P.s_alloc_retries >= 1)

let suite =
  [
    Alcotest.test_case "chaos plan shape + determinism" `Quick test_plan_shape;
    Alcotest.test_case "chaos plan same-tid stall+crash reachable" `Quick
      test_plan_same_tid_collision;
    Alcotest.test_case "chaos plan per-thread fault order" `Quick
      test_plan_fault_order;
    Alcotest.test_case "signal fates deterministic" `Quick
      test_fate_deterministic;
    Alcotest.test_case "dropped signal counted, invisible" `Quick
      test_drop_counted;
    Alcotest.test_case "delayed signal stays visible" `Quick test_delay_visible;
    Alcotest.test_case "exhaustion retry picks up freed slot" `Quick
      test_exhaustion_retry;
  ]
  @ List.map chaos_sim_case HS.scheme_names
  @ List.map chaos_sim_delay_case HS.scheme_names
  @ List.map chaos_outstanding_case
      (List.filter claims_bounded HS.scheme_names)
  @ List.map chaos_native_case HN.scheme_names
