(* Overload-protection tests: the breaker state machine driven
   deterministically (it is runtime-free, so no scheduler is needed),
   the brownout ladder's trace order, and the request-ledger invariant
   as a QCheck property over schemes × arrival shapes on guarded
   simulator service runs. *)

module Sim = Nbr_runtime.Sim_rt
module Svc = Nbr_kv.Service.Make (Sim)
module Guard = Nbr_kv.Guard
module Breaker = Guard.Breaker
module Trace = Nbr_obs.Trace
module Traffic = Nbr_workload.Traffic
module Registry = Nbr_workload.Registry

let b () = Breaker.create ~unhealthy_for:2 ~recover_for:2 ~open_ns:1_000 ~probes:2 ()

let climb_to_open br =
  (* 2 bad polls per rung: 0 -> 1 -> 2 -> open. *)
  let last = ref None in
  for i = 1 to 6 do
    last := Breaker.note_health br ~now:(10 * i) ~healthy:false
  done;
  !last

let test_ladder_and_round_trip () =
  let br = b () in
  Alcotest.(check int) "starts closed" 0 (Breaker.state_code br);
  Alcotest.(check bool) "one bad poll moves nothing" true
    (Breaker.note_health br ~now:1 ~healthy:false = None);
  Alcotest.(check bool) "second bad poll browns out to 1" true
    (Breaker.note_health br ~now:2 ~healthy:false
    = Some (Breaker.Brownout_to 1));
  Alcotest.(check bool) "two more reach level 2" true
    (Breaker.note_health br ~now:3 ~healthy:false = None
    && Breaker.note_health br ~now:4 ~healthy:false
       = Some (Breaker.Brownout_to 2));
  Alcotest.(check bool) "two more open" true
    (Breaker.note_health br ~now:5 ~healthy:false = None
    && Breaker.note_health br ~now:6 ~healthy:false = Some Breaker.Opened);
  Alcotest.(check int) "open" 3 (Breaker.state_code br);
  Alcotest.(check bool) "polls ignored while open" true
    (Breaker.note_health br ~now:7 ~healthy:true = None);
  (* Cooldown not yet elapsed: everything rejected. *)
  Alcotest.(check bool) "rejects reads before cooldown" true
    (Breaker.admit br ~now:500 ~cls:Guard.Read = (Breaker.Reject, None));
  (* Cooldown elapsed: the winning admit becomes the first probe. *)
  (match Breaker.admit br ~now:2_000 ~cls:Guard.Read with
  | Breaker.Probe, Some Breaker.Half_opened -> ()
  | _ -> Alcotest.fail "expected first probe + Half_opened");
  Alcotest.(check int) "half-open" 4 (Breaker.state_code br);
  (* probes = 2: one token left, then reject. *)
  (match Breaker.admit br ~now:2_001 ~cls:Guard.Write with
  | Breaker.Probe, None -> ()
  | _ -> Alcotest.fail "expected second probe");
  Alcotest.(check bool) "probe budget exhausted" true
    (Breaker.admit br ~now:2_002 ~cls:Guard.Read = (Breaker.Reject, None));
  (* Both probes succeed: reclosed at level 0. *)
  Alcotest.(check bool) "first success keeps half-open" true
    (Breaker.note_probe br ~now:2_010 ~ok:true = None);
  Alcotest.(check bool) "second success recloses" true
    (Breaker.note_probe br ~now:2_011 ~ok:true = Some Breaker.Reclosed);
  Alcotest.(check int) "closed at level 0" 0 (Breaker.state_code br)

let test_probe_failure_reopens () =
  let br = b () in
  Alcotest.(check bool) "climbed to open" true
    (climb_to_open br = Some Breaker.Opened);
  (match Breaker.admit br ~now:5_000 ~cls:Guard.Read with
  | Breaker.Probe, Some Breaker.Half_opened -> ()
  | _ -> Alcotest.fail "expected half-open probe");
  Alcotest.(check bool) "failed probe reopens" true
    (Breaker.note_probe br ~now:5_010 ~ok:false = Some Breaker.Opened);
  Alcotest.(check int) "open again" 3 (Breaker.state_code br);
  (* The cooldown restarted at the reopen. *)
  Alcotest.(check bool) "cooldown restarted" true
    (Breaker.admit br ~now:5_020 ~cls:Guard.Read = (Breaker.Reject, None))

let test_return_probe () =
  let br = b () in
  ignore (climb_to_open br);
  ignore (Breaker.admit br ~now:5_000 ~cls:Guard.Read);
  ignore (Breaker.admit br ~now:5_001 ~cls:Guard.Read);
  Alcotest.(check bool) "budget spent" true
    (Breaker.admit br ~now:5_002 ~cls:Guard.Read = (Breaker.Reject, None));
  (* A probe whose request timed out before executing says nothing
     about shard health — its token comes back. *)
  Breaker.return_probe br;
  (match Breaker.admit br ~now:5_003 ~cls:Guard.Read with
  | Breaker.Probe, None -> ()
  | _ -> Alcotest.fail "returned token not reusable")

let test_recovery_ladder () =
  let br = b () in
  for i = 1 to 4 do
    ignore (Breaker.note_health br ~now:i ~healthy:false)
  done;
  Alcotest.(check int) "at level 2" 2 (Breaker.state_code br);
  Alcotest.(check bool) "two good polls step down" true
    (Breaker.note_health br ~now:10 ~healthy:true = None
    && Breaker.note_health br ~now:11 ~healthy:true
       = Some (Breaker.Brownout_to 1));
  (* A bad poll resets the good streak. *)
  ignore (Breaker.note_health br ~now:12 ~healthy:false);
  Alcotest.(check bool) "streak broken, one good not enough" true
    (Breaker.note_health br ~now:13 ~healthy:true = None);
  Alcotest.(check bool) "fresh streak steps down to 0" true
    (Breaker.note_health br ~now:14 ~healthy:true
    = Some (Breaker.Brownout_to 0));
  Alcotest.(check int) "healthy again" 0 (Breaker.state_code br)

(* The shed order is the ladder's point: scans go first, then writes,
   and reads pass until the breaker is fully open. *)
let test_class_gating () =
  let br = b () in
  let adm cls = fst (Breaker.admit br ~now:1 ~cls) in
  Alcotest.(check bool) "level 0 admits all" true
    (adm Guard.Read = Breaker.Proceed
    && adm Guard.Write = Breaker.Proceed
    && adm Guard.Scan = Breaker.Proceed);
  ignore (Breaker.note_health br ~now:1 ~healthy:false);
  ignore (Breaker.note_health br ~now:2 ~healthy:false);
  Alcotest.(check bool) "level 1 sheds scans only" true
    (adm Guard.Read = Breaker.Proceed
    && adm Guard.Write = Breaker.Proceed
    && adm Guard.Scan = Breaker.Reject);
  ignore (Breaker.note_health br ~now:3 ~healthy:false);
  ignore (Breaker.note_health br ~now:4 ~healthy:false);
  Alcotest.(check bool) "level 2 sheds writes too, reads pass" true
    (adm Guard.Read = Breaker.Proceed
    && adm Guard.Write = Breaker.Reject
    && adm Guard.Scan = Breaker.Reject)

let test_hard_trip () =
  let br = b () in
  Alcotest.(check bool) "trip from closed opens" true
    (Breaker.trip br ~now:100 = Some Breaker.Opened);
  Alcotest.(check bool) "trip while open is a no-op" true
    (Breaker.trip br ~now:101 = None);
  Alcotest.(check int) "open" 3 (Breaker.state_code br)

let test_healthy_of () =
  let h = Guard.healthy_of in
  Alcotest.(check bool) "all clear" true
    (h ~occupancy:10 ~capacity:100 ~pressured:false ~degraded:false
       ~hs_timed_out:false);
  Alcotest.(check bool) "watermark excursion" false
    (h ~occupancy:10 ~capacity:100 ~pressured:true ~degraded:false
       ~hs_timed_out:false);
  Alcotest.(check bool) "offload degraded" false
    (h ~occupancy:10 ~capacity:100 ~pressured:false ~degraded:true
       ~hs_timed_out:false);
  Alcotest.(check bool) "fresh handshake timeout" false
    (h ~occupancy:10 ~capacity:100 ~pressured:false ~degraded:false
       ~hs_timed_out:true);
  Alcotest.(check bool) "occupancy backstop at 3/4 capacity" false
    (h ~occupancy:75 ~capacity:100 ~pressured:false ~degraded:false
       ~hs_timed_out:false)

(* The guard traces every transition it performs: drive one shard's
   breaker through the full ladder and recovery and assert the trace
   shows brownout(1) -> brownout(2) -> open -> half-open -> close in
   time order. *)
let test_brownout_trace_order () =
  Trace.enable ~capacity:1024 ~nthreads:1 ();
  let g = Guard.create ~cfg:(Guard.Cfg.make ~unhealthy_for:2 ~open_ns:100 ~probes:1 ()) ~nshards:2 () in
  for i = 1 to 6 do
    Guard.poll g ~now:(10 * i) ~tid:0 ~shard:1 ~healthy:false
  done;
  (* Past the cooldown an admitted read becomes the probe; completing
     it recloses (probes = 1). *)
  (match Guard.admit g ~now:200 ~tid:0 ~shard:1 ~cls:Guard.Read ~arrival:190 with
  | Guard.Admitted { probe = true } ->
      Guard.complete g ~now:210 ~tid:0 ~shard:1 ~probe:true
  | _ -> Alcotest.fail "expected the probe admission");
  let names =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.e_kind with
        | Trace.Brownout -> Some (Printf.sprintf "brownout%d" e.Trace.e_b)
        | Trace.Breaker_open -> Some "open"
        | Trace.Breaker_half_open -> Some "half-open"
        | Trace.Breaker_close -> Some "close"
        | _ -> None)
      (List.sort (fun a b -> compare a.Trace.e_ns b.Trace.e_ns)
         (Trace.events ()))
  in
  Trace.clear ();
  Alcotest.(check (list string))
    "ladder order"
    [ "brownout1"; "brownout2"; "open"; "half-open"; "close" ]
    names;
  let s = Guard.snapshot g in
  Alcotest.(check bool) "counters match the trace" true
    (s.Guard.slo_brownouts = 2 && s.Guard.slo_opens = 1
    && s.Guard.slo_half_opens = 1 && s.Guard.slo_closes = 1)

(* Ledger property: under any scheme and any arrival shape, a guarded
   service run admits each request into exactly one terminal state. *)
let run_guarded ~scheme ~shape ~seed =
  Sim.set_config { Sim.default_config with cores = 4; seed };
  let keyspace = 4096 in
  let structure =
    if Registry.supported ~scheme ~structure:"hash-set" then "hash-set"
    else "ab-tree"
  in
  let st =
    Svc.St.create
      (Svc.St.Cfg.make ~structure ~nshards:2 ~keyspace ~shard_capacity:4096
         ~scheme ~nthreads:4 ())
  in
  let traffic =
    Traffic.make ~mx:(Option.get (Traffic.mix_of_name "write-heavy")) ~shape
      ~rate_rps:2_000_000 ~keyspace ()
  in
  Svc.run st
    (Svc.Cfg.make ~duration_ns:300_000 ~seed ~prefill:500
       ~guard:
         (Guard.Cfg.make ~deadline_ns:60_000 ~inflight:24 ~max_retries:2 ())
       ~traffic ())

let shapes =
  [
    ("steady", Traffic.Steady);
    ( "flash",
      Traffic.Flash_crowd { fc_at_pct = 30; fc_len_pct = 30; fc_mult = 10 } );
    ("diurnal", Traffic.Diurnal { d_cycles = 2; d_floor_pct = 20 });
  ]

let prop_ledger_balances =
  QCheck.Test.make ~count:24 ~name:"guarded run: admitted = completed + shed + timed-out"
    QCheck.(
      triple
        (oneofl Registry.all_scheme_names)
        (oneofl (List.map fst shapes))
        small_nat)
    (fun (scheme, shape_name, seed) ->
      let shape = List.assoc shape_name shapes in
      let rep = run_guarded ~scheme ~shape ~seed:(1 + seed) in
      let s = rep.Nbr_kv.Service.rep_slo in
      if not (Guard.slo_ok s) then
        QCheck.Test.fail_reportf "%s/%s/seed%d: ledger broken: %a" scheme
          shape_name seed Guard.pp_slo s;
      if s.Guard.slo_admitted = 0 then
        QCheck.Test.fail_reportf "%s/%s/seed%d: nothing admitted" scheme
          shape_name seed;
      (* Goodput is what the throughput figure reports. *)
      if rep.Nbr_kv.Service.rep_requests <> s.Guard.slo_completed then
        QCheck.Test.fail_reportf
          "%s/%s/seed%d: rep_requests %d <> completed %d" scheme shape_name
          seed rep.Nbr_kv.Service.rep_requests s.Guard.slo_completed;
      true)

let suite =
  [
    Alcotest.test_case "breaker-ladder-round-trip" `Quick
      test_ladder_and_round_trip;
    Alcotest.test_case "breaker-probe-failure-reopens" `Quick
      test_probe_failure_reopens;
    Alcotest.test_case "breaker-return-probe" `Quick test_return_probe;
    Alcotest.test_case "breaker-recovery-ladder" `Quick test_recovery_ladder;
    Alcotest.test_case "breaker-class-gating" `Quick test_class_gating;
    Alcotest.test_case "breaker-hard-trip" `Quick test_hard_trip;
    Alcotest.test_case "healthy-of" `Quick test_healthy_of;
    Alcotest.test_case "brownout-trace-order" `Quick
      test_brownout_trace_order;
    QCheck_alcotest.to_alcotest prop_ledger_balances;
  ]
