(* KV serving-layer tests on the deterministic simulator.

   The oracle trick: each worker owns the keys congruent to its tid, so
   every key's operation sequence is single-threaded and replaying the
   per-thread logs sequentially gives the exact expected final
   membership — while the shards themselves still see full concurrency
   (threads collide on buckets, SMR phases, and the pool, just never on
   the same key).  Runs over every registered scheme, asserting zero
   committed UAF for the sound ones. *)

module Sim = Nbr_runtime.Sim_rt
module St = Nbr_kv.Store.Make (Sim)
module Svc = Nbr_kv.Service.Make (Sim)
module Registry = Nbr_workload.Registry
module Traffic = Nbr_workload.Traffic
module Rng = Nbr_sync.Rng

let nthreads = 4
let nshards = 2
let keyspace = 2048
let ops_per_thread = 1500

(* Pre-drawn per-thread op logs (deterministic), shared by the
   concurrent run and the sequential oracle. *)
let op_logs seed =
  Array.init nthreads (fun tid ->
      let rng = Rng.for_thread ~seed ~tid in
      Array.init ops_per_thread (fun _ ->
          (* Key owned by this tid; ~45% insert / 35% delete / 20% get. *)
          let k = (Rng.below rng (keyspace / nthreads) * nthreads) + tid in
          match Rng.below rng 100 with
          | r when r < 45 -> Traffic.Put k
          | r when r < 80 -> Traffic.Delete k
          | _ -> Traffic.Get k))

let oracle logs =
  let present = Hashtbl.create 256 in
  Array.iter
    (fun (ops : Traffic.op array) ->
      Array.iter
        (function
          | Traffic.Put k -> Hashtbl.replace present k ()
          | Traffic.Delete k -> Hashtbl.remove present k
          | Traffic.Get _ | Traffic.Scan _ -> ())
        ops)
    logs;
  present

let run_store ~scheme ~seed =
  Sim.set_config
    { Sim.default_config with cores = 3; granularity = 1; seed };
  let structure =
    if Registry.supported ~scheme ~structure:"hash-set" then "hash-set"
    else "ab-tree"
  in
  let st =
    St.create
      (St.Cfg.make ~structure ~nshards ~keyspace ~shard_capacity:8192
         ~scheme ~nthreads ())
  in
  let logs = op_logs seed in
  Sim.run ~nthreads (fun tid ->
      Array.iter
        (fun op ->
          match op with
          | Traffic.Put k -> ignore (St.put st ~tid k)
          | Traffic.Delete k -> ignore (St.delete st ~tid k)
          | Traffic.Get k -> ignore (St.get st ~tid k)
          | Traffic.Scan _ -> ())
        logs.(tid);
      St.drain st ~tid);
  (st, logs)

let test_scheme_oracle scheme () =
  List.iter
    (fun seed ->
      let st, logs = run_store ~scheme ~seed in
      let expected = oracle logs in
      Alcotest.(check int)
        (Printf.sprintf "%s/seed%d: size matches oracle" scheme seed)
        (Hashtbl.length expected) (St.size st);
      (* Spot-check membership key by key through the read path. *)
      for k = 0 to keyspace - 1 do
        let want = Hashtbl.mem expected k in
        let got = St.get st ~tid:0 k in
        if want <> got then
          Alcotest.failf "%s/seed%d: key %d expected %b got %b" scheme seed
            k want got
      done;
      let s = St.stats st in
      Alcotest.(check int)
        (Printf.sprintf "%s/seed%d: zero committed UAF" scheme seed)
        0 s.Nbr_kv.Store.st_committed_uaf;
      (* Exact signal delivery and no fault injection: even transient
         UAF reads must be absent. *)
      Alcotest.(check int)
        (Printf.sprintf "%s/seed%d: zero UAF reads" scheme seed)
        0 s.Nbr_kv.Store.st_uaf_reads)
    [ 3; 17 ]

(* The unsound foil frees retired slots immediately; the run must still
   terminate, but no state assertion is meaningful once slots recycle
   under live readers. *)
let test_foil_runs () =
  let st, _ = run_store ~scheme:"unsafe-free" ~seed:3 in
  Alcotest.(check bool) "foil store survives" true (St.size st >= 0)

(* Service pipeline: flash-crowd open-loop traffic with per-shard
   background reclaimers; the report must validate (set semantics, no
   UAF) and respect the bounded-garbage claim, and the crowd's queueing
   has to surface in the tail (p99.9 >= p50 with real traffic). *)
let test_service_flash_crowd () =
  Sim.set_config { Sim.default_config with cores = 8; seed = 21 };
  let keyspace = 1 lsl 16 in
  let st =
    Svc.St.create
      (Svc.St.Cfg.make ~nshards:4 ~keyspace ~scheme:"nbr+" ~nthreads:8
         ~reclaim:Nbr_reclaim.Reclaimer.On_pressure ())
  in
  let traffic =
    Traffic.make
      ~shape:(Traffic.Flash_crowd { fc_at_pct = 40; fc_len_pct = 20; fc_mult = 8 })
      ~rate_rps:1_000_000 ~keyspace ()
  in
  let rep =
    Svc.run st
      (Svc.Cfg.make ~duration_ns:1_000_000 ~seed:21 ~prefill:4_000 ~traffic ())
  in
  Alcotest.(check bool) "requests flowed" true
    (rep.Nbr_kv.Service.rep_requests > 1_000);
  Alcotest.(check bool) "report validates" true (Nbr_kv.Service.valid rep);
  Alcotest.(check bool) "garbage bounded" true (Nbr_kv.Service.bounded_ok rep);
  let g = rep.Nbr_kv.Service.rep_latency.Nbr_kv.Service.l_get in
  Alcotest.(check bool) "tail at or above median" true
    (g.Nbr_obs.Histogram.s_p999 >= g.Nbr_obs.Histogram.s_p50)

(* Same service config, same seed: the sim must reproduce the report
   bit for bit. *)
let test_service_deterministic () =
  let go () =
    Sim.set_config { Sim.default_config with cores = 4; seed = 9 };
    let st =
      Svc.St.create
        (Svc.St.Cfg.make ~nshards:2 ~keyspace:4096 ~shard_capacity:8192
           ~scheme:"nbr" ~nthreads:4 ())
    in
    let traffic = Traffic.make ~rate_rps:2_000_000 ~keyspace:4096 () in
    Svc.run st
      (Svc.Cfg.make ~duration_ns:300_000 ~seed:9 ~prefill:500 ~traffic ())
  in
  let a = go () and b = go () in
  Alcotest.(check int) "same requests" a.Nbr_kv.Service.rep_requests
    b.Nbr_kv.Service.rep_requests;
  Alcotest.(check int) "same size" a.Nbr_kv.Service.rep_stats.Nbr_kv.Store.st_size
    b.Nbr_kv.Service.rep_stats.Nbr_kv.Store.st_size;
  Alcotest.(check (float 0.0)) "same p99"
    a.Nbr_kv.Service.rep_latency.Nbr_kv.Service.l_get.Nbr_obs.Histogram.s_p99
    b.Nbr_kv.Service.rep_latency.Nbr_kv.Service.l_get.Nbr_obs.Histogram.s_p99

let test_cfg_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown scheme rejected" true
    (raises (fun () -> St.Cfg.make ~scheme:"epoch9000" ~nthreads:2 ()));
  Alcotest.(check bool) "P5-unsafe pairing rejected" true
    (raises (fun () ->
         St.Cfg.make ~structure:"hash-set" ~scheme:"hp" ~nthreads:2 ()));
  Alcotest.(check bool) "hp on ab-tree accepted" true
    (match St.Cfg.make ~structure:"ab-tree" ~scheme:"hp" ~nthreads:2 () with
    | _ -> true
    | exception Invalid_argument _ -> false)

let suite =
  List.map
    (fun scheme ->
      Alcotest.test_case
        (Printf.sprintf "oracle-%s" scheme)
        `Quick (test_scheme_oracle scheme))
    Registry.scheme_names
  @ [
      Alcotest.test_case "foil-runs" `Quick test_foil_runs;
      Alcotest.test_case "service-flash-crowd" `Quick test_service_flash_crowd;
      Alcotest.test_case "service-deterministic" `Quick
        test_service_deterministic;
      Alcotest.test_case "cfg-validation" `Quick test_cfg_validation;
    ]
