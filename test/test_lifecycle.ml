(* Thread-lifecycle tests: clean departure (deregister), orphan adoption,
   re-registration, watchdog reaping of a crashed thread (trace-asserted),
   and a QCheck property that dynamic join/leave churn never double-frees
   or breaks set semantics. *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)
module HS = Nbr_workload.Harness.Make (Sim)
module T = Nbr_workload.Trial
module FP = Nbr_fault.Fault_plan

let cfg threshold =
  Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default threshold

let sim_cfg seed =
  Sim.set_config { Sim.default_config with cores = 4; granularity = 1; seed }

(* ------------------------------------------------------------------ *)
(* Per-scheme: a departing thread's buffered retires are orphaned, a
   survivor adopts them, and they are actually freed.                  *)

module DeregAdopt
    (S : Nbr_core.Smr_intf.S with type aint = Sim.aint and type pool = P.t) =
struct
  (* Thread 1 buffers [retired] records (threshold high enough that none
     are freed early), departs, and thread 0 adopts and flushes.  All
     [retired] records must end up freed and the pool must drain back to
     zero slots in use — nothing may leak with the departed thread, and
     nothing may be freed twice (the pool's seqno discipline would trip
     UAF/validation on a double free). *)
  let test_dereg_adopt () =
    sim_cfg 7;
    let retired = 20 in
    let pool = P.create ~capacity:4096 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
    let smr = S.create pool ~nthreads:2 (cfg 64) in
    let c0 = S.register smr ~tid:0 and c1 = S.register smr ~tid:1 in
    let departed = ref false in
    Sim.run ~nthreads:2 (fun tid ->
        if tid = 1 then begin
          S.begin_op c1;
          for _ = 1 to retired do
            let s = S.alloc c1 in
            S.retire c1 s
          done;
          S.end_op c1;
          S.deregister c1;
          departed := true
        end
        else begin
          while not !departed do
            Sim.stall_ns 200
          done;
          S.adopt_orphans c0;
          (* Epoch-based schemes need a few clean operations from the
             only remaining member before their grace periods elapse. *)
          for _ = 1 to 3 do
            S.begin_op c0;
            S.end_op c0;
            S.on_pressure c0
          done
        end);
    let st = S.stats smr in
    Alcotest.(check int)
      "all retires accounted" retired
      (Nbr_core.Smr_stats.retires st);
    Alcotest.(check int) "all freed exactly once" retired
      (Nbr_core.Smr_stats.freed st);
    Alcotest.(check int) "pool drained" 0 (P.stats pool).P.s_in_use;
    Alcotest.(check int) "no UAF" 0 (P.stats pool).P.s_uaf_reads

  (* Departure is not death: a deregistered thread may re-register under
     the same tid and keep operating, and the scheme's aggregate stats
     survive the round trip. *)
  let test_rejoin () =
    sim_cfg 8;
    let pool = P.create ~capacity:4096 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
    let smr = S.create pool ~nthreads:2 (cfg 64) in
    let c0 = S.register smr ~tid:0 in
    ignore c0;
    Sim.run ~nthreads:1 (fun _ ->
        let c1 = ref (S.register smr ~tid:1) in
        for _ = 1 to 3 do
          S.begin_op !c1;
          let s = S.alloc !c1 in
          S.retire !c1 s;
          S.end_op !c1;
          S.deregister !c1;
          c1 := S.register smr ~tid:1
        done;
        (* The final incarnation is fully functional. *)
        S.begin_op !c1;
        let s = S.alloc !c1 in
        S.retire !c1 s;
        S.end_op !c1);
    Alcotest.(check int)
      "retires accumulate across incarnations" 4
      (Nbr_core.Smr_stats.retires (S.stats smr))

  let cases name =
    [
      Alcotest.test_case (name ^ " deregister/adopt frees orphans") `Quick
        test_dereg_adopt;
      Alcotest.test_case (name ^ " deregister + re-register round trip")
        `Quick test_rejoin;
    ]
end

(* Leaky reclamation never buffers, so departure has nothing to orphan —
   but the lifecycle round trip must still work. *)
module Leaky = Nbr_core.Leaky.Make (Sim)

let test_leaky_lifecycle () =
  sim_cfg 9;
  let pool = P.create ~capacity:4096 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
  let smr = Leaky.create pool ~nthreads:2 (cfg 64) in
  let c1 = Leaky.register smr ~tid:1 in
  Sim.run ~nthreads:1 (fun _ ->
      Leaky.begin_op c1;
      let s = Leaky.alloc c1 in
      Leaky.retire c1 s;
      Leaky.end_op c1;
      Leaky.deregister c1;
      let c1' = Leaky.register smr ~tid:1 in
      Leaky.adopt_orphans c1' (* no-op: nothing is ever buffered *));
  Alcotest.(check int) "leaked record stays in use" 1
    (P.stats pool).P.s_in_use;
  Alcotest.(check int)
    "stats survive departure" 1
    (Nbr_core.Smr_stats.retires (Leaky.stats smr))

module D_nbr = DeregAdopt (Nbr_core.Nbr.Make (Sim))
module D_nbrp = DeregAdopt (Nbr_core.Nbr_plus.Make (Sim))
module D_debra = DeregAdopt (Nbr_core.Debra.Make (Sim))
module D_qsbr = DeregAdopt (Nbr_core.Qsbr.Make (Sim))
module D_rcu = DeregAdopt (Nbr_core.Rcu.Make (Sim))
module D_ibr = DeregAdopt (Nbr_core.Ibr.Make (Sim))
module D_hp = DeregAdopt (Nbr_core.Hp.Make (Sim))
module D_he = DeregAdopt (Nbr_core.Hazard_eras.Make (Sim))

(* ------------------------------------------------------------------ *)
(* A departing thread's magazine caches are handed back to the depot,
   not leaked: with the whole pool cycled through thread 1's magazines,
   thread 0 can still allocate every slot after the departure.  If
   deregister dropped the magazines, these allocs would exhaust.       *)

module NBRP = Nbr_core.Nbr_plus.Make (Sim)

let test_departed_magazines_adopted () =
  sim_cfg 11;
  let capacity = 32 in
  let pool =
    P.create ~capacity ~data_fields:1 ~ptr_fields:1 ~nthreads:2 ()
  in
  let smr = NBRP.create pool ~nthreads:2 (cfg 64) in
  let c0 = NBRP.register smr ~tid:0 and c1 = NBRP.register smr ~tid:1 in
  ignore c0;
  let departed = ref false in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        (* Cycle most of the pool through this thread's magazine: the
           frees are cached locally, invisible to thread 0 until the
           departure flush. *)
        let slots = Array.init 24 (fun _ -> P.alloc pool) in
        Array.iter (P.free pool) slots;
        Alcotest.(check bool) "frees cached locally before departure" true
          (P.magazine_fill pool ~cls:0 ~tid:1 > 0);
        NBRP.deregister c1;
        Alcotest.(check int) "departure empties the magazine" 0
          (P.magazine_fill pool ~cls:0 ~tid:1);
        departed := true
      end
      else begin
        while not !departed do
          Sim.stall_ns 200
        done;
        (* The survivor can reach every slot the departed thread cached. *)
        for _ = 1 to capacity do
          ignore (P.alloc pool)
        done
      end);
  Alcotest.(check int) "full capacity reachable after departure" capacity
    (P.stats pool).P.s_in_use

(* ------------------------------------------------------------------ *)
(* Watchdog: a crashed thread is declared dead, reaped, and its orphans
   adopted — observed through the trace events the recovery layer emits. *)

let test_watchdog_reaps_crashed () =
  let nthreads = 4 in
  let duration = 2_000_000 in
  (* Crash-only plan: no signal policy, so this also pins down that the
     runner arms the fault machinery (and with it the watchdog) for
     thread-fault-only plans. *)
  let plan =
    FP.chaos ~seed:5 ~nthreads ~stalls:0 ~crashes:1 ~ops_window:30 ()
  in
  Sim.set_config
    { Sim.default_config with cores = 4; granularity = 400; seed = 5 };
  Nbr_obs.Trace.enable ~nthreads ();
  Fun.protect ~finally:Nbr_obs.Trace.clear @@ fun () ->
  let cfg =
    T.Cfg.make ~nthreads ~duration_ns:duration ~key_range:64 ~ins_pct:50 ~del_pct:50
      ~smr:(Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 16)
      ~seed:5 ~faults:plan ()
  in
  let r = HS.run ~scheme:"nbr+" ~structure:"harris-list" cfg in
  if not (T.valid r) then
    Alcotest.failf "invalid trial (size %d expected %d, uaf %d)"
      r.T.final_size r.T.expected_size r.T.uaf_reads;
  let deaths = ref 0 and adoptions = ref 0 and timeouts = ref 0 in
  let crashed_tid = List.hd (FP.crashed_tids plan) in
  List.iter
    (fun e ->
      match e.Nbr_obs.Trace.e_kind with
      | Nbr_obs.Trace.Peer_declared_dead ->
          incr deaths;
          Alcotest.(check int)
            "the declared-dead peer is the crashed thread" crashed_tid
            e.Nbr_obs.Trace.e_a
      | Nbr_obs.Trace.Orphan_adopted ->
          incr adoptions;
          Alcotest.(check int)
            "adopted parcel originates from the crashed thread" crashed_tid
            e.Nbr_obs.Trace.e_a
      | Nbr_obs.Trace.Heartbeat_timeout -> incr timeouts
      | _ -> ())
    (Nbr_obs.Trace.events ());
  Alcotest.(check int) "crashed thread declared dead exactly once" 1 !deaths;
  Alcotest.(check bool)
    (Printf.sprintf "escalation rounds preceded the verdict (%d)" !timeouts)
    true (!timeouts >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "orphans adopted (%d parcels)" !adoptions)
    true (!adoptions >= 1)

(* ------------------------------------------------------------------ *)
(* QCheck: join/leave churn never double-frees.                        *)

(* Random scheme, churn period, thread count and seed; a sim trial with
   dynamic membership must preserve set semantics, commit no UAF read
   (which is what a double free surfaces as under the pool's seqno
   discipline), and raise nothing.  [Trial.valid] checks all of it. *)
let churn_never_double_frees =
  QCheck.Test.make ~count:15 ~name:"churn trials stay valid (no double free)"
    QCheck.(
      quad (int_range 0 7) (* scheme *)
        (int_range 2 6) (* threads *)
        (int_range 8 80) (* churn period *)
        (int_range 1 1000) (* seed *))
    (fun (si, nthreads, churn_ops, seed) ->
      let scheme =
        List.nth
          [ "nbr+"; "nbr"; "debra"; "qsbr"; "rcu"; "ibr"; "hp"; "he" ]
          si
      in
      let structure =
        if HS.supported ~scheme ~structure:"harris-list" then "harris-list"
        else "lazy-list"
      in
      Sim.set_config
        { Sim.default_config with cores = 4; granularity = 200; seed };
      let cfg =
        T.Cfg.make ~nthreads ~duration_ns:400_000 ~key_range:64 ~ins_pct:40
          ~del_pct:40
          ~smr:
            (Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default
               16)
          ~seed ~churn_ops ()
      in
      let r = HS.run ~scheme ~structure cfg in
      T.valid r)

let suite =
  D_nbr.cases "nbr" @ D_nbrp.cases "nbr+" @ D_debra.cases "debra"
  @ D_qsbr.cases "qsbr" @ D_rcu.cases "rcu" @ D_ibr.cases "ibr"
  @ D_hp.cases "hp" @ D_he.cases "he"
  @ [
      Alcotest.test_case "leaky lifecycle round trip" `Quick
        test_leaky_lifecycle;
      Alcotest.test_case "departed thread's magazines adopted" `Quick
        test_departed_magazines_adopted;
      Alcotest.test_case "watchdog reaps a crashed thread (traced)" `Quick
        test_watchdog_reaps_crashed;
      QCheck_alcotest.to_alcotest churn_never_double_frees;
    ]
