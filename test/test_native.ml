(* Native-runtime tests: the library on real OCaml domains.

   The container may have a single core, so parallelism is time-sliced;
   these runs still exercise real atomics, real cross-domain signal
   counters, and the polling neutralization protocol end to end. *)

module Nat = Nbr_runtime.Native_rt
module H = Nbr_workload.Harness.Make (Nat)
module T = Nbr_workload.Trial

let run ~scheme ~structure =
  let cfg =
    T.Cfg.make ~nthreads:4 ~duration_ns:200_000_000 ~key_range:128
      ~smr:(Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 48)
      ~seed:5 ()
  in
  H.run ~scheme ~structure cfg

let check ~scheme ~structure () =
  let r = run ~scheme ~structure in
  if r.T.final_size <> r.T.expected_size then
    Alcotest.failf "%s/%s: size %d expected %d" scheme structure
      r.T.final_size r.T.expected_size;
  if r.T.total_ops < 100 then
    Alcotest.failf "%s/%s: too few ops (%d)" scheme structure r.T.total_ops

let test_runtime_basics () =
  let c = Nat.make 0 in
  Nat.run ~nthreads:4 (fun _ ->
      for _ = 1 to 10_000 do
        ignore (Nat.faa c 1)
      done);
  Alcotest.(check int) "faa across domains" 40_000 (Nat.load c)

let test_signal_counters () =
  let seen = Atomic.make 0 in
  Nat.run ~nthreads:2 (fun tid ->
      if tid = 0 then Nat.send_signal 1
      else begin
        (* Poll until the signal lands; consume it while restartable to
           observe Neutralized. *)
        Nat.checkpoint (fun () ->
            Nat.set_restartable_t tid true;
            let deadline = Nat.now_ns () + 2_000_000_000 in
            (try
               while Nat.now_ns () < deadline do
                 Nat.poll_t tid
               done
             with Nat.Neutralized ->
               Nat.set_restartable_t tid false;
               Atomic.incr seen);
            Nat.set_restartable_t tid false)
      end);
  Alcotest.(check int) "neutralization delivered" 1 (Atomic.get seen)

let combos =
  [
    ("nbr", "lazy-list");
    ("nbr+", "dgt-tree");
    ("nbr+", "harris-list");
    ("debra", "ab-tree");
    ("hp", "lazy-list");
    ("ibr", "dgt-tree");
  ]

(* ------------------------------------------------------------------ *)
(* Sim/native parity stress: the same workload must satisfy the same
   invariants under both runtimes.  Set semantics and bounded garbage are
   runtime-independent; zero reads-of-freed is exact only under the sim's
   instantaneous delivery (natively the benign poll window of DESIGN.md §3
   can count reads that are then thrown away by the restart). *)

module Sim = Nbr_runtime.Sim_rt
module HS = Nbr_workload.Harness.Make (Sim)

let bounded_schemes = [ "nbr"; "nbr+"; "ibr"; "hp"; "he" ]

let check_parity ~scheme ~structure () =
  let cfg =
    T.Cfg.make ~nthreads:4 ~duration_ns:100_000_000 ~key_range:128
      ~smr:(Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 48)
      ~seed:11 ()
  in
  let bound = T.garbage_bound cfg in
  let check_one (r : T.result) =
    if not (T.valid r) then
      Alcotest.failf "%s/%s (%s): invalid (size %d expected %d, uaf %d)"
        scheme structure r.T.runtime r.T.final_size r.T.expected_size
        r.T.uaf_reads;
    (* Per-thread buffered-garbage high-water mark, like the E2 chaos
       suite: the bound caps each thread's limbo buffer, not the pool-wide
       sum across threads. *)
    let mg = Nbr_core.Smr_stats.max_garbage r.T.smr_stats in
    if List.mem scheme bounded_schemes && mg > bound then
      Alcotest.failf "%s/%s (%s): max_garbage %d exceeds bound %d" scheme
        structure r.T.runtime mg bound
  in
  let rs = HS.run ~scheme ~structure cfg in
  check_one rs;
  Alcotest.(check int)
    (Printf.sprintf "%s/%s sim uaf_reads" scheme structure)
    0 rs.T.uaf_reads;
  check_one (H.run ~scheme ~structure cfg)

let parity_combos =
  [
    ("nbr", "lazy-list");
    ("nbr+", "dgt-tree");
    ("ibr", "lazy-list");
    ("hp", "lazy-list");
    ("he", "dgt-tree");
  ]

let suite =
  [
    Alcotest.test_case "atomics across domains" `Quick test_runtime_basics;
    Alcotest.test_case "signal delivery via polling" `Quick
      test_signal_counters;
  ]
  @ List.map
      (fun (scheme, structure) ->
        Alcotest.test_case
          (Printf.sprintf "%s/%s on domains" scheme structure)
          `Slow
          (check ~scheme ~structure))
      combos
  @ List.map
      (fun (scheme, structure) ->
        Alcotest.test_case
          (Printf.sprintf "%s/%s sim/native parity" scheme structure)
          `Slow
          (check_parity ~scheme ~structure))
      parity_combos
