(* Observability-layer tests: histogram math, trace-ring mechanics, the
   deterministic neutralization timeline under the simulator, and the
   per-scheme pool-pressure recovery story as seen through the trace.

   The trace is a process-wide singleton, so every test that enables it
   clears it on the way out; Alcotest runs cases sequentially, so there
   is no cross-test interleaving to worry about. *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)
module Tr = Nbr_obs.Trace
module Hist = Nbr_obs.Histogram

let cfg threshold =
  Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default threshold

(* ------------------------------------------------------------------ *)
(* Histogram unit tests.                                               *)

let test_hist_basic () =
  let h = Hist.create () in
  for v = 1 to 1000 do
    Hist.record h v
  done;
  Alcotest.(check int) "count" 1000 (Hist.count h);
  let s = Hist.summary h in
  Alcotest.(check int) "max is exact" 1000 s.Hist.s_max;
  (* Log buckets: p50 of 1..1000 (true 500) lands in bucket [512,1024)
     or [256,512); either way within the <=2x relative-error contract. *)
  Alcotest.(check bool)
    (Printf.sprintf "p50 within 2x of 500 (%.0f)" s.s_p50)
    true
    (s.s_p50 >= 250.0 && s.s_p50 <= 1000.0);
  Alcotest.(check bool)
    (Printf.sprintf "p99 above p50 (%.0f vs %.0f)" s.s_p99 s.s_p50)
    true (s.s_p99 >= s.s_p50)

let test_hist_empty_and_zero () =
  let h = Hist.create () in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Hist.quantile h 0.5);
  Hist.record h 0;
  Hist.record h (-5);
  (* negatives clamp to 0 *)
  Alcotest.(check int) "count includes clamped" 2 (Hist.count h);
  Alcotest.(check int) "max 0" 0 (Hist.summary h).Hist.s_max

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () and into = Hist.create () in
  for _ = 1 to 100 do
    Hist.record a 10
  done;
  for _ = 1 to 100 do
    Hist.record b 100_000
  done;
  Hist.merge_into ~into a;
  Hist.merge_into ~into b;
  Alcotest.(check int) "merged count" 200 (Hist.count into);
  let s = Hist.summary into in
  Alcotest.(check int) "merged max" 100_000 s.Hist.s_max;
  Alcotest.(check bool)
    (Printf.sprintf "p90 in the upper mode (%.0f)" s.s_p90)
    true (s.s_p90 > 1000.0)

(* ------------------------------------------------------------------ *)
(* Trace-ring mechanics.                                               *)

let test_trace_ring_drop_oldest () =
  Tr.enable ~capacity:16 ~nthreads:1 ();
  for i = 1 to 40 do
    Tr.emit ~tid:0 ~ns:i Tr.Bag_push i 0
  done;
  Tr.disable ();
  let evs = Tr.events () in
  Alcotest.(check int) "ring keeps capacity" 16 (List.length evs);
  Alcotest.(check int) "drop count" 24 (Tr.dropped ());
  (* Drop-oldest: the survivors are the last 16 emissions, in order. *)
  let first = List.hd evs and last = List.nth evs 15 in
  Alcotest.(check int) "oldest survivor" 25 first.Tr.e_a;
  Alcotest.(check int) "newest survivor" 40 last.Tr.e_a;
  Tr.clear ();
  Alcotest.(check int) "clear drops rings" 0 (List.length (Tr.events ()))

let test_trace_disabled_is_off () =
  (* After [clear] the gate is down and emission is a no-op. *)
  Tr.clear ();
  Alcotest.(check bool) "gate down" false !Tr.on;
  Tr.emit ~tid:0 ~ns:1 Tr.Reclaim 1 0;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Tr.events ()))

let test_trace_merge_sorted () =
  Tr.enable ~capacity:64 ~nthreads:3 ();
  (* Interleaved timestamps across threads; merged timeline must come
     back sorted by ns with per-thread order preserved. *)
  Tr.emit ~tid:0 ~ns:30 Tr.Reclaim 0 0;
  Tr.emit ~tid:1 ~ns:10 Tr.Reclaim 1 0;
  Tr.emit ~tid:2 ~ns:20 Tr.Reclaim 2 0;
  Tr.emit ~tid:1 ~ns:40 Tr.Reclaim 3 0;
  Tr.disable ();
  let ns_order = List.map (fun e -> e.Tr.e_ns) (Tr.events ()) in
  Alcotest.(check (list int)) "sorted by ns" [ 10; 20; 30; 40 ] ns_order;
  Tr.clear ()

let test_trace_chrome_json_shape () =
  Tr.enable ~capacity:16 ~nthreads:1 ();
  Tr.emit ~tid:0 ~ns:1500 Tr.Signal_sent 1 0;
  Tr.disable ();
  let js = Tr.to_chrome_json () in
  Tr.clear ();
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "traceEvents key" true (contains "\"traceEvents\"" js);
  Alcotest.(check bool) "instant phase" true (contains "\"ph\":\"i\"" js);
  (* ts is microseconds: 1500 ns -> 1.5 *)
  Alcotest.(check bool) "us timestamp" true (contains "1.5" js);
  Alcotest.(check bool) "object braces" true
    (String.length js > 2 && js.[0] = '{' && js.[String.length js - 1] = '\n')

(* ------------------------------------------------------------------ *)
(* The acceptance timeline: a neutralized reader's four events arrive   *)
(* in causal order under the deterministic simulator.                   *)

module N = Nbr_core.Nbr.Make (Sim)

let test_sim_neutralization_timeline () =
  Tr.enable ~nthreads:2 ();
  let pool = P.create ~capacity:4096 ~data_fields:1 ~ptr_fields:1 ~nthreads:2 () in
  let smr = N.create pool ~nthreads:2 (cfg 4) in
  let c0 = N.register smr ~tid:0 and c1 = N.register smr ~tid:1 in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        N.begin_op c1;
        let attempts = ref 0 in
        N.read_only c1 (fun () ->
            incr attempts;
            if !attempts = 1 then begin
              (* Linger in the read phase long enough to eat a signal. *)
              let spin = Sim.make 0 in
              for _ = 1 to 3_000 do
                ignore (Sim.load spin)
              done
            end);
        N.end_op c1
      end
      else begin
        N.begin_op c0;
        for _ = 1 to 40 do
          let s = N.alloc c0 in
          N.retire c0 s
        done;
        N.end_op c0
      end);
  Tr.disable ();
  let victim = List.filter (fun e -> e.Tr.e_tid = 1) (Tr.events ()) in
  Tr.clear ();
  (* Index of the first event of each kind in the victim's own stream:
     delivery must precede the neutralization, which precedes the replay
     (Restart), which precedes the successful publication. *)
  let first_index k =
    let rec go i = function
      | [] -> Alcotest.failf "no %s event for the victim" (Tr.kind_name k)
      | e :: _ when e.Tr.e_kind = k -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 victim
  in
  let d = first_index Tr.Signal_delivered in
  let n = first_index Tr.Neutralized in
  let r = first_index Tr.Restart in
  let p = first_index Tr.Reservation_publish in
  Alcotest.(check bool)
    (Printf.sprintf "delivered(%d) < neutralized(%d) < restart(%d) < publish(%d)"
       d n r p)
    true
    (d < n && n < r && r < p)

(* ------------------------------------------------------------------ *)
(* Pool pressure through each scheme's [on_pressure] flush: a starved   *)
(* pool must recover (no [Exhausted]), and the trace must show both the *)
(* starvation and the reclamation that resolved it.                     *)

(* One thread, a pool much smaller than the retire volume, a bag
   threshold chosen per scheme: every op allocates and retires a burst,
   so in-use grows until [alloc] starves and the scheme's flush is the
   only way forward.  Epoch-based schemes (DEBRA, RCU, IBR) can only
   free records retired in *earlier* epochs, so the op loop is what
   lets their clocks advance between pressure events. *)
let pressure_recovery (type c s)
    (module S : Nbr_core.Smr_intf.S
      with type aint = Sim.aint
       and type pool = P.t
       and type ctx = c
       and type t = s) ~threshold ~epoch_freq () =
  (* Capacity of exactly one burst: each op's first alloc finds the pool
     full of the previous burst's garbage, so every scheme starves at
     every op boundary — and recovery only needs the *previous* op's
     records to be freeable, which holds even for the epoch schemes
     (their clocks advanced at the op boundary). *)
  let capacity = 8 and burst = 8 and ops = 30 in
  let pool =
    P.create ~capacity ~data_fields:1 ~ptr_fields:1 ~nthreads:1 ()
  in
  let smr_cfg = { (cfg threshold) with Nbr_core.Smr_config.epoch_freq } in
  let smr = S.create pool ~nthreads:1 smr_cfg in
  let c = S.register smr ~tid:0 in
  Tr.enable ~nthreads:1 ();
  Sim.run ~nthreads:1 (fun _ ->
      for _ = 1 to ops do
        S.begin_op c;
        for _ = 1 to burst do
          let s = S.alloc c in
          S.retire c s
        done;
        S.end_op c
      done);
  Tr.disable ();
  let evs = Tr.events () in
  Tr.clear ();
  let count k = List.length (List.filter (fun e -> e.Tr.e_kind = k) evs) in
  let ps = P.stats pool in
  Alcotest.(check bool)
    (Printf.sprintf "pool actually starved (%d pressure events)"
       ps.P.s_pressure_events)
    true
    (ps.P.s_pressure_events > 0);
  Alcotest.(check bool)
    (Printf.sprintf "starvation traced (%d)" (count Tr.Pool_starvation))
    true
    (count Tr.Pool_starvation > 0);
  Alcotest.(check bool)
    (Printf.sprintf "reclaim traced (%d)" (count Tr.Reclaim))
    true
    (count Tr.Reclaim > 0);
  (* Recovery means the loop completed: every burst got its slots. *)
  Alcotest.(check int) "all bursts allocated" (ops * burst) ps.P.s_allocs

(* Threshold far above the pool for schemes whose flush can free
   everything on the spot; RCU's flush is what advances its epoch, so it
   keeps the default-ish threshold and earns freeable (older-epoch)
   records across ops.  IBR/HE want a fast era clock for the same
   reason; it is harmless to the rest. *)
let test_pressure_nbr () =
  pressure_recovery (module Nbr_core.Nbr.Make (Sim)) ~threshold:1000
    ~epoch_freq:4 ()

let test_pressure_nbrp () =
  pressure_recovery (module Nbr_core.Nbr_plus.Make (Sim)) ~threshold:1000
    ~epoch_freq:4 ()

let test_pressure_debra () =
  pressure_recovery (module Nbr_core.Debra.Make (Sim)) ~threshold:1000
    ~epoch_freq:4 ()

let test_pressure_qsbr () =
  pressure_recovery (module Nbr_core.Qsbr.Make (Sim)) ~threshold:1000
    ~epoch_freq:4 ()

let test_pressure_rcu () =
  pressure_recovery (module Nbr_core.Rcu.Make (Sim)) ~threshold:8
    ~epoch_freq:4 ()

let test_pressure_ibr () =
  pressure_recovery (module Nbr_core.Ibr.Make (Sim)) ~threshold:1000
    ~epoch_freq:4 ()

let test_pressure_hp () =
  pressure_recovery (module Nbr_core.Hp.Make (Sim)) ~threshold:1000
    ~epoch_freq:4 ()

let test_pressure_he () =
  pressure_recovery (module Nbr_core.Hazard_eras.Make (Sim)) ~threshold:1000
    ~epoch_freq:4 ()

let suite =
  [
    Alcotest.test_case "histogram: basics" `Quick test_hist_basic;
    Alcotest.test_case "histogram: empty/zero" `Quick test_hist_empty_and_zero;
    Alcotest.test_case "histogram: merge" `Quick test_hist_merge;
    Alcotest.test_case "trace: drop-oldest ring" `Quick
      test_trace_ring_drop_oldest;
    Alcotest.test_case "trace: disabled is off" `Quick test_trace_disabled_is_off;
    Alcotest.test_case "trace: merged timeline sorted" `Quick
      test_trace_merge_sorted;
    Alcotest.test_case "trace: chrome json shape" `Quick
      test_trace_chrome_json_shape;
    Alcotest.test_case "sim: neutralization timeline order" `Quick
      test_sim_neutralization_timeline;
    Alcotest.test_case "pressure: nbr recovers" `Quick test_pressure_nbr;
    Alcotest.test_case "pressure: nbr+ recovers" `Quick test_pressure_nbrp;
    Alcotest.test_case "pressure: debra recovers" `Quick test_pressure_debra;
    Alcotest.test_case "pressure: qsbr recovers" `Quick test_pressure_qsbr;
    Alcotest.test_case "pressure: rcu recovers" `Quick test_pressure_rcu;
    Alcotest.test_case "pressure: ibr recovers" `Quick test_pressure_ibr;
    Alcotest.test_case "pressure: hp recovers" `Quick test_pressure_hp;
    Alcotest.test_case "pressure: he recovers" `Quick test_pressure_he;
  ]
