(* Unit and property tests for the record pool (simulated manual memory). *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)

let mk ?(capacity = 64) () =
  P.create ~capacity ~data_fields:2 ~ptr_fields:2 ~nthreads:1 ()

let test_alloc_free_cycle () =
  let p = mk () in
  let a = P.alloc p in
  Alcotest.(check bool) "live after alloc" true (P.state p a = P.Live);
  P.set_data p a 0 42;
  Alcotest.(check int) "field roundtrip" 42 (P.get_data p a 0);
  P.note_retired p a;
  Alcotest.(check bool) "retired" true (P.state p a = P.Retired);
  P.free p a;
  Alcotest.(check bool) "free" true (P.state p a = P.Free);
  let b = P.alloc p in
  Alcotest.(check int) "slot recycled from free list"
    (Nbr_pool.Pool.Handle.index a)
    (Nbr_pool.Pool.Handle.index b);
  Alcotest.(check bool) "recycled handle carries a fresh generation" true
    (Nbr_pool.Pool.Handle.gen b <> Nbr_pool.Pool.Handle.gen a)

let test_seqno_bumps () =
  let p = mk () in
  let a = P.alloc p in
  let s0 = P.seqno p a in
  P.free p a;
  Alcotest.(check int) "seqno bumped on free" (s0 + 1) (P.seqno p a)

let test_double_free_raises () =
  let p = mk () in
  let a = P.alloc p in
  P.free p a;
  Alcotest.check_raises "double free"
    (Invalid_argument
       (Printf.sprintf "Pool.free: stale or double free of handle %d" a))
    (fun () -> P.free p a)

let test_exhaustion () =
  let p = mk ~capacity:4 () in
  for _ = 1 to 4 do
    ignore (P.alloc p)
  done;
  match P.alloc p with
  | _ -> Alcotest.fail "alloc beyond capacity should raise Exhausted"
  | exception P.Exhausted x ->
      Alcotest.(check int) "capacity in diagnosis" 4 x.Nbr_pool.Pool.x_capacity;
      Alcotest.(check int) "in_use in diagnosis" 4 x.Nbr_pool.Pool.x_in_use;
      Alcotest.(check bool)
        "retried before giving up" true
        (x.Nbr_pool.Pool.x_attempts >= 1)

let test_in_use_accounting () =
  let p = mk () in
  let slots = List.init 10 (fun _ -> P.alloc p) in
  let st = P.stats p in
  Alcotest.(check int) "in_use" 10 st.P.s_in_use;
  Alcotest.(check int) "peak" 10 st.P.s_peak_in_use;
  List.iteri (fun i s -> if i < 7 then P.free p s) slots;
  let st = P.stats p in
  Alcotest.(check int) "in_use after frees" 3 st.P.s_in_use;
  Alcotest.(check int) "peak unchanged" 10 st.P.s_peak_in_use;
  P.reset_peak p;
  Alcotest.(check int) "peak reset" 3 (P.stats p).P.s_peak_in_use

let test_uaf_detection () =
  let p = mk () in
  let a = P.alloc p in
  Alcotest.(check bool) "live read not a hit" false (P.record_read p a);
  Alcotest.(check int) "live read not UAF" 0 (P.stats p).P.s_uaf_reads;
  P.free p a;
  Alcotest.(check bool) "freed read is a hit" true (P.record_read p a);
  Alcotest.(check int) "freed read counted" 1 (P.stats p).P.s_uaf_reads

let test_ptr_fields_nil_initialized () =
  let p = mk () in
  let a = P.alloc p in
  Alcotest.(check int) "ptr0 nil" P.nil (P.get_ptr p a 0);
  Alcotest.(check int) "ptr1 nil" P.nil (P.get_ptr p a 1)

(* ------------------------------------------------------------------ *)
(* Generational handles: codec and size-class routing.                 *)

module H = Nbr_pool.Pool.Handle

(* Property: pack/unpack round-trips for every representable
   (class, index, generation) triple, and packed handles survive the
   Harris list's mark-tagging ([h lsl 1]) inside OCaml's 63-bit int. *)
let prop_handle_roundtrip =
  QCheck.Test.make ~count:500 ~name:"handle pack/unpack round-trip"
    QCheck.(
      triple (int_bound (H.max_classes - 1))
        (int_bound (H.max_capacity - 1))
        (map (fun g -> g land H.gen_mask) (int_bound max_int)))
    (fun (cls, index, gen) ->
      let h = H.pack ~cls ~index ~gen in
      h >= 0
      && H.cls h = cls
      && H.index h = index
      && H.gen h = gen
      && h lsl 1 asr 1 = h)

let classed () =
  P.create_classed
    ~classes:
      [|
        { Nbr_pool.Pool.cc_capacity = 16; cc_data_fields = 1; cc_ptr_fields = 1 };
        { Nbr_pool.Pool.cc_capacity = 8; cc_data_fields = 3; cc_ptr_fields = 0 };
        { Nbr_pool.Pool.cc_capacity = 4; cc_data_fields = 1; cc_ptr_fields = 4 };
      |]
    ~nthreads:1 ()

let test_size_class_routing () =
  let p = classed () in
  Alcotest.(check int) "nclasses" 3 (P.nclasses p);
  Alcotest.(check int) "total capacity" 28 (P.capacity p);
  Alcotest.(check int) "class 1 capacity" 8 (P.class_capacity p 1);
  let a = P.alloc p and b = P.alloc ~cls:1 p and c = P.alloc ~cls:2 p in
  Alcotest.(check int) "default routes to class 0" 0 (H.cls a);
  Alcotest.(check int) "cls:1 routes to class 1" 1 (H.cls b);
  Alcotest.(check int) "cls:2 routes to class 2" 2 (H.cls c);
  (* Per-class field shapes are independent. *)
  P.set_data p b 2 7;
  Alcotest.(check int) "wide data field in class 1" 7 (P.get_data p b 2);
  P.set_ptr p c 3 a;
  Alcotest.(check int) "wide ptr field in class 2" a (P.get_ptr p c 3);
  (* uids are dense and disjoint across classes. *)
  let ua = P.uid p a and ub = P.uid p b and uc = P.uid p c in
  Alcotest.(check bool) "uids within [0, capacity)" true
    (List.for_all (fun u -> u >= 0 && u < 28) [ ua; ub; uc ]);
  Alcotest.(check bool) "uids disjoint" true
    (ua <> ub && ub <> uc && ua <> uc);
  (* Per-class accounting sees exactly its own traffic. *)
  let k = P.class_stats p 1 in
  Alcotest.(check int) "class 1 allocs" 1 k.P.k_allocs;
  Alcotest.(check int) "class 1 in_use" 1 k.P.k_in_use;
  Alcotest.(check int) "class 0 in_use" 1 (P.class_stats p 0).P.k_in_use

let test_magazine_and_depot () =
  let p = mk ~capacity:256 () in
  (* A burst of frees loads the thread's magazine... *)
  let slots = Array.init 24 (fun _ -> P.alloc p) in
  Array.iter (P.free p) slots;
  let filled = P.magazine_fill p ~cls:0 ~tid:0 in
  Alcotest.(check bool)
    (Printf.sprintf "frees cached in the magazine (%d)" filled)
    true (filled > 0);
  (* ...allocs drain it again without touching shared state... *)
  let before = (P.stats p).P.s_depot_exchanges in
  let again = Array.init filled (fun _ -> P.alloc p) in
  Alcotest.(check int) "allocs served from the magazine" before
    (P.stats p).P.s_depot_exchanges;
  Alcotest.(check int) "magazine drained" 0 (P.magazine_fill p ~cls:0 ~tid:0);
  Array.iter (P.free p) again;
  (* ...and a departing thread's flush empties the cache back to the
     depot with nothing lost: accounting stays exact. *)
  P.flush_thread p ~tid:0;
  Alcotest.(check int) "flush empties the magazine" 0
    (P.magazine_fill p ~cls:0 ~tid:0);
  Alcotest.(check int) "nothing leaked" 0 (P.stats p).P.s_in_use;
  Alcotest.(check bool) "flush exchanged with the depot" true
    ((P.stats p).P.s_depot_exchanges > before)

let test_depot_exchange_roundtrip () =
  let p = mk ~capacity:512 () in
  (* Free far more than one magazine holds: full magazines must be
     pushed to the depot... *)
  let slots = Array.init 200 (fun _ -> P.alloc p) in
  Array.iter (P.free p) slots;
  let st = P.stats p in
  Alcotest.(check bool)
    (Printf.sprintf "depot exchanges happened (%d)" st.P.s_depot_exchanges)
    true
    (st.P.s_depot_exchanges > 0);
  (* ...and allocation pulls them back without ever minting a handle
     twice. *)
  let seen = Hashtbl.create 256 in
  for _ = 1 to 200 do
    let s = P.alloc p in
    Alcotest.(check bool) "no live handle handed out twice" false
      (Hashtbl.mem seen s);
    Hashtbl.add seen s ()
  done;
  Alcotest.(check int) "all 200 back in use" 200 (P.stats p).P.s_in_use

(* Property: under any alloc/free trace, the pool never hands out a slot
   that is currently live, and in_use always equals |allocated \ freed|. *)
let prop_alloc_free_trace =
  QCheck.Test.make ~count:200 ~name:"pool alloc/free trace invariants"
    QCheck.(list (option (int_bound 31)))
    (fun script ->
      let p = mk ~capacity:32 () in
      let live = Hashtbl.create 32 in
      let ok = ref true in
      (try
         List.iter
           (fun step ->
             match step with
             | None ->
                 (* alloc *)
                 let s = P.alloc p in
                 if Hashtbl.mem live s then ok := false;
                 Hashtbl.add live s ()
             | Some i ->
                 (* free the i-th live slot, if any *)
                 let keys = Hashtbl.fold (fun k () acc -> k :: acc) live [] in
                 let keys = List.sort compare keys in
                 if keys <> [] then begin
                   let s = List.nth keys (i mod List.length keys) in
                   Hashtbl.remove live s;
                   P.free p s
                 end)
           script
       with P.Exhausted _ -> ());
      let st = P.stats p in
      !ok && st.P.s_in_use = Hashtbl.length live)

let suite =
  [
    Alcotest.test_case "alloc/free lifecycle" `Quick test_alloc_free_cycle;
    Alcotest.test_case "seqno bumps on free" `Quick test_seqno_bumps;
    Alcotest.test_case "double free raises" `Quick test_double_free_raises;
    Alcotest.test_case "exhaustion raises" `Quick test_exhaustion;
    Alcotest.test_case "in-use/peak accounting" `Quick test_in_use_accounting;
    Alcotest.test_case "UAF read detection" `Quick test_uaf_detection;
    Alcotest.test_case "pointer fields nil" `Quick
      test_ptr_fields_nil_initialized;
    QCheck_alcotest.to_alcotest prop_handle_roundtrip;
    Alcotest.test_case "size-class routing" `Quick test_size_class_routing;
    Alcotest.test_case "magazine load/drain/flush" `Quick
      test_magazine_and_depot;
    Alcotest.test_case "depot exchange round-trip" `Quick
      test_depot_exchange_roundtrip;
    QCheck_alcotest.to_alcotest prop_alloc_free_trace;
  ]
