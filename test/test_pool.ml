(* Unit and property tests for the record pool (simulated manual memory). *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)

let mk ?(capacity = 64) () =
  P.create ~capacity ~data_fields:2 ~ptr_fields:2 ~nthreads:1 ()

let test_alloc_free_cycle () =
  let p = mk () in
  let a = P.alloc p in
  Alcotest.(check bool) "live after alloc" true (P.state p a = P.Live);
  P.set_data p a 0 42;
  Alcotest.(check int) "field roundtrip" 42 (P.get_data p a 0);
  P.note_retired p a;
  Alcotest.(check bool) "retired" true (P.state p a = P.Retired);
  P.free p a;
  Alcotest.(check bool) "free" true (P.state p a = P.Free);
  let b = P.alloc p in
  Alcotest.(check int) "slot recycled from free list" a b

let test_seqno_bumps () =
  let p = mk () in
  let a = P.alloc p in
  let s0 = P.seqno p a in
  P.free p a;
  Alcotest.(check int) "seqno bumped on free" (s0 + 1) (P.seqno p a)

let test_double_free_raises () =
  let p = mk () in
  let a = P.alloc p in
  P.free p a;
  Alcotest.check_raises "double free"
    (Invalid_argument (Printf.sprintf "Pool.free: double free of slot %d" a))
    (fun () -> P.free p a)

let test_exhaustion () =
  let p = mk ~capacity:4 () in
  for _ = 1 to 4 do
    ignore (P.alloc p)
  done;
  match P.alloc p with
  | _ -> Alcotest.fail "alloc beyond capacity should raise Exhausted"
  | exception P.Exhausted x ->
      Alcotest.(check int) "capacity in diagnosis" 4 x.Nbr_pool.Pool.x_capacity;
      Alcotest.(check int) "in_use in diagnosis" 4 x.Nbr_pool.Pool.x_in_use;
      Alcotest.(check bool)
        "retried before giving up" true
        (x.Nbr_pool.Pool.x_attempts >= 1)

let test_in_use_accounting () =
  let p = mk () in
  let slots = List.init 10 (fun _ -> P.alloc p) in
  let st = P.stats p in
  Alcotest.(check int) "in_use" 10 st.P.s_in_use;
  Alcotest.(check int) "peak" 10 st.P.s_peak_in_use;
  List.iteri (fun i s -> if i < 7 then P.free p s) slots;
  let st = P.stats p in
  Alcotest.(check int) "in_use after frees" 3 st.P.s_in_use;
  Alcotest.(check int) "peak unchanged" 10 st.P.s_peak_in_use;
  P.reset_peak p;
  Alcotest.(check int) "peak reset" 3 (P.stats p).P.s_peak_in_use

let test_uaf_detection () =
  let p = mk () in
  let a = P.alloc p in
  Alcotest.(check bool) "live read not a hit" false (P.record_read p a);
  Alcotest.(check int) "live read not UAF" 0 (P.stats p).P.s_uaf_reads;
  P.free p a;
  Alcotest.(check bool) "freed read is a hit" true (P.record_read p a);
  Alcotest.(check int) "freed read counted" 1 (P.stats p).P.s_uaf_reads

let test_ptr_fields_nil_initialized () =
  let p = mk () in
  let a = P.alloc p in
  Alcotest.(check int) "ptr0 nil" P.nil (P.get_ptr p a 0);
  Alcotest.(check int) "ptr1 nil" P.nil (P.get_ptr p a 1)

(* Property: under any alloc/free trace, the pool never hands out a slot
   that is currently live, and in_use always equals |allocated \ freed|. *)
let prop_alloc_free_trace =
  QCheck.Test.make ~count:200 ~name:"pool alloc/free trace invariants"
    QCheck.(list (option (int_bound 31)))
    (fun script ->
      let p = mk ~capacity:32 () in
      let live = Hashtbl.create 32 in
      let ok = ref true in
      (try
         List.iter
           (fun step ->
             match step with
             | None ->
                 (* alloc *)
                 let s = P.alloc p in
                 if Hashtbl.mem live s then ok := false;
                 Hashtbl.add live s ()
             | Some i ->
                 (* free the i-th live slot, if any *)
                 let keys = Hashtbl.fold (fun k () acc -> k :: acc) live [] in
                 let keys = List.sort compare keys in
                 if keys <> [] then begin
                   let s = List.nth keys (i mod List.length keys) in
                   Hashtbl.remove live s;
                   P.free p s
                 end)
           script
       with P.Exhausted _ -> ());
      let st = P.stats p in
      !ok && st.P.s_in_use = Hashtbl.length live)

let suite =
  [
    Alcotest.test_case "alloc/free lifecycle" `Quick test_alloc_free_cycle;
    Alcotest.test_case "seqno bumps on free" `Quick test_seqno_bumps;
    Alcotest.test_case "double free raises" `Quick test_double_free_raises;
    Alcotest.test_case "exhaustion raises" `Quick test_exhaustion;
    Alcotest.test_case "in-use/peak accounting" `Quick test_in_use_accounting;
    Alcotest.test_case "UAF read detection" `Quick test_uaf_detection;
    Alcotest.test_case "pointer fields nil" `Quick
      test_ptr_fields_nil_initialized;
    QCheck_alcotest.to_alcotest prop_alloc_free_trace;
  ]
