(* Property-based tests of the NBR-specific invariants (qcheck over
   randomized schedules on the deterministic simulator). *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)
module NP = Nbr_core.Nbr_plus.Make (Sim)
module N = Nbr_core.Nbr.Make (Sim)
module HE = Nbr_core.Hazard_eras.Make (Sim)

let cfg threshold =
  Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default threshold

(* Lemma 10 as a property: for random thread counts, thresholds,
   reservation patterns and stall schedules, a bounded scheme never holds
   more than live + n*(threshold + R + 1) unreclaimed records.  Threads
   continuously allocate, sometimes briefly reserve-and-hold, retire, and
   may stall mid-phase. *)
let bounded_garbage_nbr_plus =
  QCheck.Test.make ~count:20 ~name:"nbr+ bounded garbage (Lemma 10)"
    QCheck.(
      quad (int_range 2 6) (* threads *)
        (int_range 8 64) (* threshold *)
        (int_range 50 400) (* retires per thread *)
        (int_range 0 3) (* stalled thread count *))
    (fun (n, threshold, iters, stallers) ->
      Sim.set_config
        { Sim.default_config with cores = 4; granularity = 1; seed = n * 131 };
      let pool =
        P.create ~capacity:200_000 ~data_fields:1 ~ptr_fields:1 ~nthreads:n ()
      in
      let smr = NP.create pool ~nthreads:n (cfg threshold) in
      let ctxs = Array.init n (fun tid -> NP.register smr ~tid) in
      Sim.run ~nthreads:n (fun tid ->
          let c = ctxs.(tid) in
          let rng = Nbr_sync.Rng.for_thread ~seed:99 ~tid in
          for i = 1 to iters do
            NP.begin_op c;
            (* Occasionally hold a reservation through a write phase. *)
            if Nbr_sync.Rng.below rng 4 = 0 then begin
              let s = NP.alloc c in
              NP.phase c
                ~read:(fun () -> ((), [| s |]))
                ~write:(fun () -> NP.retire c s)
            end
            else begin
              let s = NP.alloc c in
              NP.retire c s
            end;
            (* A few threads stall mid-run, inside an operation. *)
            if tid < stallers && i = iters / 2 then
              NP.read_only c (fun () -> Sim.stall_ns 2_000_000);
            NP.end_op c
          done);
      let st = P.stats pool in
      let r = Nbr_core.Smr_config.(default.max_reservations) in
      st.P.s_in_use <= n * (threshold + r + 1))

(* The same harness must show unbounded behaviour is *possible* for leaky
   reclamation (sanity check that the property above is not vacuous). *)
let leaky_unbounded =
  QCheck.Test.make ~count:5 ~name:"leaky reclamation exceeds the NBR bound"
    QCheck.(int_range 100 300)
    (fun iters ->
      Sim.set_config
        { Sim.default_config with cores = 4; granularity = 1; seed = 5 };
      let module L = Nbr_core.Leaky.Make (Sim) in
      let n = 4 and threshold = 16 in
      let pool =
        P.create ~capacity:200_000 ~data_fields:1 ~ptr_fields:1 ~nthreads:n ()
      in
      let smr = L.create pool ~nthreads:n (cfg threshold) in
      let ctxs = Array.init n (fun tid -> L.register smr ~tid) in
      Sim.run ~nthreads:n (fun tid ->
          let c = ctxs.(tid) in
          for _ = 1 to iters do
            let s = L.alloc c in
            L.retire c s
          done);
      let st = P.stats pool in
      st.P.s_in_use = n * iters
      && st.P.s_in_use
         > n * (threshold + Nbr_core.Smr_config.(default.max_reservations) + 1))

(* Determinism of whole trials: same seed -> identical results, different
   seed -> (almost certainly) different interleaving observable in ops. *)
module H = Nbr_workload.Harness.Make (Sim)

let trial_deterministic =
  QCheck.Test.make ~count:8 ~name:"sim trials are seed-deterministic"
    QCheck.(pair (int_range 1 1000) (int_range 0 3))
    (fun (seed, which) ->
      let structure = List.nth [ "lazy-list"; "dgt-tree"; "hash-set"; "skip-list" ] which in
      let run () =
        Sim.set_config
          { Sim.default_config with cores = 3; granularity = 1; seed };
        let cfg =
          Nbr_workload.Trial.Cfg.make ~nthreads:4 ~duration_ns:120_000 ~key_range:64
            ~seed ()
        in
        let r = H.run ~scheme:"nbr+" ~structure cfg in
        (r.Nbr_workload.Trial.total_ops, r.Nbr_workload.Trial.final_size)
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Tentpole property: a held stale handle never yields live data.
   After a record is freed and its slot recycled, every scheme's
   validated read path either refuses outright (restart via
   [Neutralized]: NBR family, HP, HE) or hands back the recycled
   occupant's memory with the staleness detected and counted (epoch
   family and foils) — and the pool-level read itself always fails with
   [Stale], never [Value].  Checked across all ten schemes. *)

module type SCHEME =
  Nbr_core.Smr_intf.S with type aint = Sim.aint and type pool = P.t

module D = Nbr_core.Debra.Make (Sim)
module Q = Nbr_core.Qsbr.Make (Sim)
module R = Nbr_core.Rcu.Make (Sim)
module I = Nbr_core.Ibr.Make (Sim)
module HP = Nbr_core.Hp.Make (Sim)
module LK = Nbr_core.Leaky.Make (Sim)
module UF = Nbr_core.Unsafe_free.Make (Sim)

let all_schemes : (string * (module SCHEME)) list =
  [
    ("nbr", (module N));
    ("nbr+", (module NP));
    ("debra", (module D));
    ("qsbr", (module Q));
    ("rcu", (module R));
    ("ibr", (module I));
    ("hp", (module HP));
    ("he", (module HE));
    ("leaky", (module LK));
    ("unsafe-free", (module UF));
  ]

let stale_never_live (name, (module S : SCHEME)) (v_old, v_new) =
  Sim.set_config
    { Sim.default_config with cores = 1; granularity = 1; seed = 23 };
  let pool = P.create ~capacity:8 ~data_fields:1 ~ptr_fields:1 ~nthreads:1 () in
  let smr = S.create pool ~nthreads:1 Nbr_core.Smr_config.default in
  let c = S.register smr ~tid:0 in
  let ok = ref false in
  Sim.run ~nthreads:1 (fun _ ->
      S.begin_op c;
      let s = S.alloc c in
      P.set_data pool s 0 v_old;
      S.end_op c;
      (* The record dies and its slot is recycled behind our back. *)
      P.free pool s;
      let s' = P.alloc pool in
      P.set_data pool s' 0 v_new;
      (* Pool level: always a typed failure carrying the memory's
         *current* contents — never the dead record's data as [Value]. *)
      let pool_ok =
        match P.read_data pool s 0 with
        | P.Stale v -> v = v_new
        | P.Value _ -> false
      in
      S.begin_op c;
      let scheme_ok =
        match S.read_data c ~src:s ~field:0 with
        | v -> v = v_new
        | exception Sim.Neutralized -> true
      in
      (try S.end_op c with Sim.Neutralized -> ());
      ok := pool_ok && scheme_ok && not (P.valid pool s));
  if not !ok then QCheck.Test.fail_reportf "%s yielded live/stale data" name;
  (P.stats pool).P.s_uaf_reads > 0

let stale_handle_never_live =
  QCheck.Test.make ~count:40
    ~name:"stale handle never yields live data (10 schemes)"
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      let v_old = a and v_new = b + 1_000_000 in
      List.for_all (fun sch -> stale_never_live sch (v_old, v_new)) all_schemes)

(* Rng sanity: below stays in range; for_thread decorrelates threads. *)
let rng_bounds =
  QCheck.Test.make ~count:200 ~name:"rng below stays in bounds"
    QCheck.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Nbr_sync.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Nbr_sync.Rng.below rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      bounded_garbage_nbr_plus;
      leaky_unbounded;
      trial_deterministic;
      stale_handle_never_live;
      rng_bounds;
    ]
