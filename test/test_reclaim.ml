(* Background-reclamation tests (DESIGN.md §12): healthy offload
   (handoff → collect → async sweep visible in the trace), graceful
   degradation when the reclaimer stalls (workers detect the backlog and
   fall back to inline sweeps), the degrade → restore cycle around a
   reclaimer crash with restart, and the QCheck property that the P2
   garbage bound survives every reclaimer fate. *)

module Sim = Nbr_runtime.Sim_rt
module HS = Nbr_workload.Harness.Make (Sim)
module T = Nbr_workload.Trial
module FP = Nbr_fault.Fault_plan
module Tr = Nbr_obs.Trace
module R = Nbr_reclaim.Reclaimer

let claims_bounded = function
  | "nbr" | "nbr+" | "ibr" | "hp" | "he" -> true
  | _ -> false

(* Schemes that buffer retires: the only ones that can hand a bag off. *)
let buffers = function "none" | "unsafe-free" -> false | _ -> true

let structure_for scheme =
  if HS.supported ~scheme ~structure:"harris-list" then "harris-list"
  else "lazy-list"

let count_kind k evs =
  List.length (List.filter (fun e -> e.Tr.e_kind = k) evs)

let first_ns k evs =
  List.find_map
    (fun e -> if e.Tr.e_kind = k then Some e.Tr.e_ns else None)
    evs

(* One sim trial with the reclaimer role on, update-heavy so bags fill,
   returning (result, traced events).  [reclaimer_faults] rides in via
   an otherwise-empty plan; [thread_faults] land on tid 1. *)
let reclaim_trial ?(nthreads = 4) ?(duration = 800_000) ?(seed = 7)
    ?(policy = R.On_pressure) ?(reclaimer_faults = []) ?(thread_faults = [])
    scheme =
  let structure = structure_for scheme in
  Sim.set_config { Sim.default_config with cores = 8; granularity = 400; seed };
  let faults =
    if reclaimer_faults = [] && thread_faults = [] then None
    else begin
      let p = { (FP.none ~nthreads) with FP.reclaimer = reclaimer_faults } in
      p.FP.threads.(1) <- thread_faults;
      Some p
    end
  in
  let cfg =
    T.Cfg.make ~nthreads ~duration_ns:duration ~key_range:128 ~ins_pct:50 ~del_pct:50
      ~smr:(Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 32)
      ~seed ?faults ~reclaim:policy ()
  in
  Tr.enable ~capacity:65536 ~nthreads:(nthreads + 1) ();
  let r = HS.run ~scheme ~structure cfg in
  Tr.disable ();
  let evs = Tr.events () in
  Tr.clear ();
  (cfg, r, evs)

let check_valid scheme (cfg, r, _) =
  if not (T.valid r) then
    Alcotest.failf "%s: invalid (size %d expected %d, uaf %d)" scheme
      r.T.final_size r.T.expected_size r.T.uaf_reads;
  if r.T.total_ops = 0 then Alcotest.failf "%s: no operations completed" scheme;
  if claims_bounded scheme then begin
    let bound = T.garbage_bound cfg in
    let mg = Nbr_core.Smr_stats.max_garbage r.T.smr_stats in
    if mg > bound then
      Alcotest.failf "%s: max_garbage %d > bound %d (P2 violated)" scheme mg
        bound
  end

(* ---------------- healthy reclaimer ---------------- *)

(* With a live reclaimer, threshold crossings export instead of sweeping
   inline: the trace must show the full pipeline — handoffs accepted,
   parcels collected, async sweeps freeing them — and no degrade.
   DEBRA is exempt from the handoff assertions: it frees by epoch, so a
   healthy trial keeps its bags below the sweep threshold and its
   offload trigger (rightly) never fires — the pinned-epoch test below
   covers its export path instead. *)
let healthy_case scheme =
  Alcotest.test_case (scheme ^ " healthy offload") `Quick (fun () ->
      let ((_, _, evs) as out) = reclaim_trial scheme in
      check_valid scheme out;
      if buffers scheme && scheme <> "debra" then begin
        if count_kind Tr.Bag_handoff evs = 0 then
          Alcotest.failf "%s: no bag handoffs traced" scheme;
        if count_kind Tr.Handoff_collect evs = 0 then
          Alcotest.failf "%s: no handoff collections traced" scheme;
        if count_kind Tr.Async_sweep evs = 0 then
          Alcotest.failf "%s: no async sweeps traced" scheme
      end
      else begin
        (* Foil schemes buffer nothing: externalization must stay inert. *)
        Alcotest.(check int)
          (scheme ^ " hands nothing off")
          0
          (count_kind Tr.Bag_handoff evs)
      end;
      Alcotest.(check int)
        (scheme ^ " never degrades when healthy")
        0 (count_kind Tr.Degrade evs))

(* DEBRA's export path needs a pinned epoch to matter: a worker stalled
   inside an operation freezes the epoch, the survivors' bags pile past
   the sweep threshold, and the backlog sheds to the reclaimer (whose
   begin_op cadence also helps the epoch along once the stall ends). *)
let test_debra_pinned_epoch_offloads () =
  let ((_, _, evs) as out) =
    reclaim_trial "debra"
      ~thread_faults:[ FP.Stall { at_op = 10; ns = 300_000 } ]
  in
  check_valid "debra" out;
  if count_kind Tr.Bag_handoff evs = 0 then
    Alcotest.fail "debra: pinned epoch never forced a bag handoff";
  if count_kind Tr.Handoff_collect evs = 0 then
    Alcotest.fail "debra: exported parcels never collected"

(* ---------------- stalled reclaimer: inline fallback ---------------- *)

(* A reclaimer that sleeps through the whole trial stops draining; the
   handoff backlog crosses max_backlog and the next threshold-crossing
   worker flips the degrade switch (reason 0 = backlog-detected) — after
   which everything is inline reclamation and the trial still finishes
   validly.  This is the graceful-degradation contract. *)
let test_stall_degrades () =
  let ((_, _, evs) as out) =
    reclaim_trial "nbr+"
      ~reclaimer_faults:[ FP.R_stall { at_iter = 1; ns = 1_000_000 } ]
  in
  check_valid "nbr+" out;
  if count_kind Tr.Bag_handoff evs = 0 then
    Alcotest.fail "no handoffs before the stall took effect";
  let degrades =
    List.filter (fun e -> e.Tr.e_kind = Tr.Degrade) evs
  in
  if degrades = [] then
    Alcotest.fail "stalled reclaimer never triggered a degrade";
  List.iter
    (fun e ->
      Alcotest.(check int) "degrade reason is backlog-detected (worker)" 0
        e.Tr.e_a)
    degrades;
  (* Inline fallback visibly engaged: reclamation continued (the trial
     is valid and ops completed), with handoffs refused after the
     degrade — no Bag_handoff may follow the first Degrade. *)
  let d0 = Option.get (first_ns Tr.Degrade evs) in
  List.iter
    (fun e ->
      if e.Tr.e_kind = Tr.Bag_handoff && e.Tr.e_ns > d0 then
        Alcotest.failf "handoff accepted at %dns after degrade at %dns"
          e.Tr.e_ns d0)
    evs

(* ---------------- crash + restart: degrade → restore ---------------- *)

let test_crash_restart_restores () =
  let ((_, _, evs) as out) =
    reclaim_trial "nbr+" ~duration:1_500_000
      ~reclaimer_faults:
        [ FP.R_crash { at_iter = 20; restart_ns = 100_000 } ]
  in
  check_valid "nbr+" out;
  (match (first_ns Tr.Degrade evs, first_ns Tr.Restore evs) with
  | None, _ -> Alcotest.fail "crash never traced a degrade"
  | _, None -> Alcotest.fail "restarted reclaimer never traced a restore"
  | Some d, Some r ->
      if r <= d then
        Alcotest.failf "restore at %dns not after degrade at %dns" r d);
  let crash_degrade =
    List.exists (fun e -> e.Tr.e_kind = Tr.Degrade && e.Tr.e_a = 1) evs
  in
  Alcotest.(check bool) "crash announces itself (reason 1)" true crash_degrade

(* A reclaimer that dies for good leaves the trial in permanent inline
   mode: no restore, but the trial still completes validly and within
   the garbage bound. *)
let test_crash_forever_falls_back () =
  let ((_, _, evs) as out) =
    reclaim_trial "nbr"
      ~reclaimer_faults:[ FP.R_crash { at_iter = 20; restart_ns = -1 } ]
  in
  check_valid "nbr" out;
  if first_ns Tr.Degrade evs = None then
    Alcotest.fail "permanent crash never traced a degrade";
  Alcotest.(check int) "no restore after a permanent crash" 0
    (count_kind Tr.Restore evs)

(* ---------------- watermark plumbing ---------------- *)

(* The runner installs pool watermarks (high mark = 3/4 capacity) wired
   to the reclaimer kick.  An allocation hog squatting on 400 of 600
   slots pushes occupancy deterministically over the mark; the trial
   must trace the crossing and still finish without exhaustion. *)
let test_watermarks_trip () =
  let nthreads = 4 in
  Sim.set_config
    { Sim.default_config with cores = 8; granularity = 400; seed = 11 };
  let plan = FP.none ~nthreads in
  plan.FP.threads.(1) <- [ FP.Hog { at_op = 20; slots = 400; ns = 150_000 } ];
  let cfg =
    T.Cfg.make ~nthreads ~duration_ns:800_000 ~key_range:64 ~ins_pct:50 ~del_pct:50
      ~smr:(Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default 16)
      ~pool_capacity:600 ~seed:11 ~faults:plan ~reclaim:R.On_pressure ()
  in
  Tr.enable ~capacity:65536 ~nthreads:(nthreads + 1) ();
  let r = HS.run ~scheme:"nbr+" ~structure:"harris-list" cfg in
  Tr.disable ();
  let evs = Tr.events () in
  Tr.clear ();
  if not (T.valid r) then Alcotest.fail "pressure trial invalid";
  if count_kind Tr.Watermark_high evs = 0 then
    Alcotest.fail "high watermark never tripped under hog pressure"

(* ---------------- policies ---------------- *)

let policy_case policy name =
  Alcotest.test_case ("policy " ^ name) `Quick (fun () ->
      let ((_, _, evs) as out) = reclaim_trial "nbr+" ~policy in
      check_valid "nbr+" out;
      if count_kind Tr.Async_sweep evs = 0 then
        Alcotest.failf "policy %s: reclaimer never swept" name)

(* ---------------- QCheck: P2 under every reclaimer fate ---------------- *)

(* The paper's bounded-garbage property must be indifferent to the
   reclaimer's fate: healthy, stalled, crashed-and-restarted, or dead,
   every bounded scheme keeps max_garbage within the trial bound and the
   trial valid. *)
let prop_bound_under_reclaimer_fates =
  let gen =
    QCheck.Gen.(
      let* seed = 1 -- 10_000 in
      let* scheme = oneofl [ "nbr"; "nbr+"; "ibr"; "hp"; "he" ] in
      let* fate = 0 -- 3 in
      return (seed, scheme, fate))
  in
  let print (seed, scheme, fate) =
    Printf.sprintf "seed=%d scheme=%s fate=%d" seed scheme fate
  in
  QCheck.Test.make ~count:12 ~name:"P2 bound holds under reclaimer fates"
    (QCheck.make ~print gen)
    (fun (seed, scheme, fate) ->
      let reclaimer_faults =
        match fate with
        | 0 -> []
        | 1 -> [ FP.R_stall { at_iter = 5; ns = 400_000 } ]
        | 2 -> [ FP.R_crash { at_iter = 15; restart_ns = 80_000 } ]
        | _ -> [ FP.R_crash { at_iter = 15; restart_ns = -1 } ]
      in
      let cfg, r, _ =
        reclaim_trial scheme ~seed ~duration:500_000 ~reclaimer_faults
      in
      T.valid r
      && Nbr_core.Smr_stats.max_garbage r.T.smr_stats <= T.garbage_bound cfg)

let suite =
  List.map healthy_case HS.scheme_names
  @ [
      Alcotest.test_case "stalled reclaimer degrades to inline" `Quick
        test_stall_degrades;
      Alcotest.test_case "crash+restart traces degrade then restore" `Quick
        test_crash_restart_restores;
      Alcotest.test_case "permanent crash stays inline" `Quick
        test_crash_forever_falls_back;
      Alcotest.test_case "debra offloads under a pinned epoch" `Quick
        test_debra_pinned_epoch_offloads;
      Alcotest.test_case "pool watermarks trip and kick" `Quick
        test_watermarks_trip;
      policy_case (R.Periodic { interval_ns = 20_000 }) "periodic";
      policy_case (R.After_n_retires { n = 64 }) "after-n-retires";
      QCheck_alcotest.to_alcotest prop_bound_under_reclaimer_fates;
    ]
