(* Unit tests for the simulated-multicore runtime: scheduling,
   determinism, virtual time, signal delivery and checkpoint semantics. *)

module Sim = Nbr_runtime.Sim_rt

let with_config ?(cores = 4) ?(granularity = 1) ?(jitter = 8) ?(seed = 1) f =
  let saved = Sim.get_config () in
  Sim.set_config { Sim.default_config with cores; granularity; jitter; seed };
  Fun.protect ~finally:(fun () -> Sim.set_config saved) f

let test_runs_all_threads () =
  with_config (fun () ->
      let hits = Array.make 8 0 in
      Sim.run ~nthreads:8 (fun tid -> hits.(tid) <- hits.(tid) + 1);
      Alcotest.(check (list int))
        "each thread ran once" (List.init 8 (fun _ -> 1))
        (Array.to_list hits))

let test_atomics_interleave () =
  with_config (fun () ->
      (* n threads × k increments via CAS loop = exactly n*k. *)
      let c = Sim.make 0 in
      Sim.run ~nthreads:6 (fun _ ->
          for _ = 1 to 500 do
            let rec incr () =
              let v = Sim.load c in
              if not (Sim.cas c v (v + 1)) then incr ()
            in
            incr ()
          done);
      Alcotest.(check int) "cas total" 3000 (Sim.load c))

let test_faa_xchg () =
  with_config (fun () ->
      let c = Sim.make 0 in
      Sim.run ~nthreads:4 (fun _ ->
          for _ = 1 to 1000 do
            ignore (Sim.faa c 2)
          done);
      Alcotest.(check int) "faa total" 8000 (Sim.load c);
      let d = Sim.make 5 in
      Sim.run ~nthreads:1 (fun _ ->
          Alcotest.(check int) "xchg returns old" 5 (Sim.xchg d 9));
      Alcotest.(check int) "xchg stored" 9 (Sim.load d))

let test_determinism () =
  let trace () =
    with_config ~seed:42 (fun () ->
        let c = Sim.make 0 in
        let order = ref [] in
        Sim.run ~nthreads:5 (fun tid ->
            for _ = 1 to 50 do
              ignore (Sim.faa c 1);
              order := tid :: !order
            done);
        (!order, Sim.load c))
  in
  let a = trace () and b = trace () in
  Alcotest.(check bool) "identical schedules" true (a = b)

let test_virtual_time_advances () =
  with_config (fun () ->
      let final = ref 0 in
      Sim.run ~nthreads:1 (fun _ ->
          let t0 = Sim.now_ns () in
          let c = Sim.make 0 in
          for _ = 1 to 1000 do
            ignore (Sim.load c)
          done;
          final := Sim.now_ns () - t0);
      Alcotest.(check bool)
        (Printf.sprintf "1000 loads cost >0 virtual ns (got %d)" !final)
        true (!final > 0))

let test_stall_advances_clock () =
  with_config (fun () ->
      let elapsed = ref 0 in
      Sim.run ~nthreads:1 (fun _ ->
          let t0 = Sim.now_ns () in
          Sim.stall_ns 5_000_000;
          elapsed := Sim.now_ns () - t0);
      Alcotest.(check bool)
        (Printf.sprintf "stall >= 5ms (got %d)" !elapsed)
        true
        (!elapsed >= 5_000_000))

let test_signal_restarts_restartable () =
  with_config (fun () ->
      (* Thread 1 loops in a checkpointed restartable section; thread 0
         signals it; thread 1 must observe a restart. *)
      let restarts = ref 0 in
      let flag = Sim.make 0 in
      Sim.run ~nthreads:2 (fun tid ->
          if tid = 0 then begin
            while Sim.load flag = 0 do
              Sim.cpu_relax ()
            done;
            Sim.send_signal 1;
            Sim.store flag 2
          end
          else begin
            let attempts = ref 0 in
            Sim.checkpoint (fun () ->
                incr attempts;
                Sim.set_restartable_t tid true;
                if Sim.load flag = 0 then Sim.store flag 1;
                (* Wait in restartable mode until the signal arrives;
                   the replay sees flag = 2 and falls straight through. *)
                while Sim.load flag <> 2 do
                  Sim.cpu_relax ()
                done;
                Sim.set_restartable_t tid false);
            restarts := !attempts - 1
          end);
      Alcotest.(check bool)
        (Printf.sprintf "restarted at least once (%d)" !restarts)
        true (!restarts >= 1))

let test_signal_ignored_when_non_restartable () =
  with_config (fun () ->
      let finished = ref false in
      Sim.run ~nthreads:2 (fun tid ->
          if tid = 0 then Sim.send_signal 1
          else begin
            Sim.set_restartable_t tid false;
            let c = Sim.make 0 in
            for _ = 1 to 200 do
              ignore (Sim.load c)
            done;
            finished := true
          end);
      Alcotest.(check bool) "non-restartable thread unharmed" true !finished)

let test_signals_counted () =
  with_config (fun () ->
      Sim.run ~nthreads:4 (fun tid ->
          if tid = 0 then
            for t = 1 to 3 do
              Sim.send_signal t
            done);
      Alcotest.(check int) "3 signals" 3 (Sim.signals_sent ()))

let test_checkpoint_nesting () =
  with_config (fun () ->
      (* An inner checkpoint absorbs the neutralization; the outer one
         never replays (k-NBR: restart innermost read phase only). *)
      let outer = ref 0 and inner = ref 0 in
      let ready = Sim.make 0 and finished = Sim.make 0 in
      Sim.run ~nthreads:2 (fun tid ->
          if tid = 0 then begin
            while Sim.load ready = 0 do
              Sim.cpu_relax ()
            done;
            Sim.send_signal 1;
            Sim.store finished 1
          end
          else
            Sim.checkpoint (fun () ->
                incr outer;
                Sim.set_restartable_t tid false;
                Sim.checkpoint (fun () ->
                    incr inner;
                    Sim.set_restartable_t tid true;
                    if Sim.load finished = 0 then begin
                      Sim.store ready 1;
                      while Sim.load finished = 0 do
                        Sim.cpu_relax ()
                      done
                    end;
                    Sim.set_restartable_t tid false)));
      Alcotest.(check int) "outer ran once" 1 !outer;
      Alcotest.(check bool)
        (Printf.sprintf "inner restarted (%d)" !inner)
        true (!inner >= 2))

let test_exception_propagates () =
  with_config (fun () ->
      Alcotest.check_raises "worker exception surfaces" (Failure "boom")
        (fun () -> Sim.run ~nthreads:3 (fun tid ->
             if tid = 2 then failwith "boom")))

let test_oversubscription_slows_wall_clock () =
  (* With 2 cores and 8 threads, per-thread wall time for the same work
     should exceed the 2-thread case (time-slice waiting). *)
  let run_threads n =
    let worst = ref 0 in
    with_config ~cores:2 ~jitter:0 (fun () ->
        Sim.run ~nthreads:n (fun _ ->
            let c = Sim.make 0 in
            (* Enough work to cross several scheduling quanta. *)
            for _ = 1 to 300_000 do
              ignore (Sim.load c)
            done;
            worst := max !worst (Sim.now_ns ())));
    !worst
  in
  let t2 = run_threads 2 and t8 = run_threads 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 threads on 2 cores slower per-thread (t2=%d t8=%d)" t2
       t8)
    true (t8 > t2)

let test_stuck_watchdog () =
  with_config (fun () ->
      Sim.set_max_events 1_000;
      Fun.protect
        ~finally:(fun () -> Sim.set_max_events 0)
        (fun () ->
          match
            Sim.run ~nthreads:1 (fun _ ->
                let c = Sim.make 0 in
                while true do
                  ignore (Sim.load c)
                done)
          with
          | () -> Alcotest.fail "expected Stuck"
          | exception Sim.Stuck _ -> ()))

let suite =
  [
    Alcotest.test_case "runs all threads" `Quick test_runs_all_threads;
    Alcotest.test_case "cas interleaving" `Quick test_atomics_interleave;
    Alcotest.test_case "faa and xchg" `Quick test_faa_xchg;
    Alcotest.test_case "deterministic given seed" `Quick test_determinism;
    Alcotest.test_case "virtual time advances" `Quick test_virtual_time_advances;
    Alcotest.test_case "stall advances clock" `Quick test_stall_advances_clock;
    Alcotest.test_case "signal restarts restartable thread" `Quick
      test_signal_restarts_restartable;
    Alcotest.test_case "signal ignored when non-restartable" `Quick
      test_signal_ignored_when_non_restartable;
    Alcotest.test_case "signals counted" `Quick test_signals_counted;
    Alcotest.test_case "checkpoint nesting (k-NBR)" `Quick
      test_checkpoint_nesting;
    Alcotest.test_case "worker exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "oversubscription slows wall clock" `Quick
      test_oversubscription_slows_wall_clock;
    Alcotest.test_case "stuck watchdog fires" `Quick test_stuck_watchdog;
  ]
