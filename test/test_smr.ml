(* Scheme-level unit tests: the handshakes and bookkeeping of each
   reclamation algorithm, exercised directly against the pool (no data
   structure in the way). *)

module Sim = Nbr_runtime.Sim_rt
module P = Nbr_pool.Pool.Make (Sim)

let cfg threshold =
  Nbr_core.Smr_config.with_threshold Nbr_core.Smr_config.default threshold

let mk_pool ?(capacity = 4096) ?(nthreads = 2) () =
  P.create ~capacity ~data_fields:1 ~ptr_fields:1 ~nthreads ()

(* ------------------------------------------------------------------ *)
(* NBR: reservations protect records across reclamation events.        *)

module N = Nbr_core.Nbr.Make (Sim)

let test_nbr_reservation_protects () =
  let pool = mk_pool () in
  let smr = N.create pool ~nthreads:2 (cfg 8) in
  let c0 = N.register smr ~tid:0 and c1 = N.register smr ~tid:1 in
  let shared = Sim.make P.nil in
  let protected_slot = ref (-1) in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        (* Reserve one record and sit in a write phase while thread 0
           retires that very record and churns through many reclamation
           events: the reservation (writers' handshake) must keep the
           slot unfreed throughout. *)
        N.begin_op c1;
        let slot = N.alloc c1 in
        protected_slot := slot;
        N.phase c1
          ~read:(fun () -> ((), [| slot |]))
          ~write:(fun () ->
            Sim.store shared slot;
            let spin = Sim.make 0 in
            for _ = 1 to 4_000 do
              ignore (Sim.load spin)
            done);
        N.end_op c1
      end
      else begin
        N.begin_op c0;
        let rec wait () = if Sim.load shared = P.nil then wait () in
        wait ();
        (* Retire the reserved record on the reclaimer side, then churn. *)
        N.retire c0 (Sim.load shared);
        for _ = 1 to 100 do
          let s = N.alloc c0 in
          N.retire c0 s
        done;
        N.end_op c0
      end);
  (* Reservations persist until the next read phase clears them, so the
     slot can never have been freed (a free bumps the seqno). *)
  Alcotest.(check int) "reserved slot never recycled" 0
    (P.seqno pool !protected_slot);
  Alcotest.(check int) "no UAF" 0 (P.stats pool).P.s_uaf_reads

let test_nbr_reclaims_at_threshold () =
  let pool = mk_pool ~nthreads:1 () in
  let smr = N.create pool ~nthreads:1 (cfg 16) in
  let c = N.register smr ~tid:0 in
  Sim.run ~nthreads:1 (fun _ ->
      for _ = 1 to 100 do
        let s = N.alloc c in
        N.retire c s
      done);
  let st = N.stats smr in
  Alcotest.(check bool)
    (Printf.sprintf "reclaim events happened (%d)" (Nbr_core.Smr_stats.reclaim_events st))
    true ((Nbr_core.Smr_stats.reclaim_events st) >= 5);
  Alcotest.(check bool)
    (Printf.sprintf "most records freed (%d/100)" (Nbr_core.Smr_stats.freed st))
    true
    ((Nbr_core.Smr_stats.freed st) >= 64)

let test_nbr_neutralizes_readers () =
  let pool = mk_pool () in
  let smr = N.create pool ~nthreads:2 (cfg 4) in
  let c0 = N.register smr ~tid:0 and c1 = N.register smr ~tid:1 in
  let restarted = ref 0 in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        N.begin_op c1;
        let attempts = ref 0 in
        N.read_only c1 (fun () ->
            incr attempts;
            if !attempts = 1 then begin
              (* Linger in the read phase long enough to eat a signal. *)
              let spin = Sim.make 0 in
              for _ = 1 to 3_000 do
                ignore (Sim.load spin)
              done
            end);
        restarted := !attempts - 1;
        N.end_op c1
      end
      else begin
        N.begin_op c0;
        for _ = 1 to 40 do
          let s = N.alloc c0 in
          N.retire c0 s
        done;
        N.end_op c0
      end);
  Alcotest.(check bool)
    (Printf.sprintf "reader neutralized (%d restarts)" !restarted)
    true (!restarted >= 1)

(* ------------------------------------------------------------------ *)
(* NBR+: RGP detection allows signal-free reclamation.                 *)

module NP = Nbr_core.Nbr_plus.Make (Sim)

let test_nbrp_lo_watermark_reclaims_without_signalling () =
  let pool = mk_pool () in
  let smr = NP.create pool ~nthreads:2 (cfg 64) in
  let c0 = NP.register smr ~tid:0 and c1 = NP.register smr ~tid:1 in
  Sim.run ~nthreads:2 (fun tid ->
      let c = if tid = 0 then c0 else c1 in
      (* Thread 0 churns hard (many HiWm broadcasts); thread 1 retires
         slowly, crossing only its LoWatermark, and should piggyback on
         thread 0's RGPs. *)
      let iters = if tid = 0 then 2_000 else 45 in
      for _ = 1 to iters do
        let s = NP.alloc c in
        NP.retire c s;
        if tid = 1 then begin
          let spin = Sim.make 0 in
          for _ = 1 to 50 do
            ignore (Sim.load spin)
          done
        end
      done);
  let st = NP.stats smr in
  Alcotest.(check bool)
    (Printf.sprintf "LoWatermark reclaims happened (%d)" (Nbr_core.Smr_stats.lo_reclaims st))
    true ((Nbr_core.Smr_stats.lo_reclaims st) >= 1)

let test_nbrp_signals_fewer_than_nbr () =
  (* Same retire-churn workload under NBR and NBR+: the + variant must
     send measurably fewer signals (the O(n²) -> O(n) claim of §5). *)
  (* Threads must be phase-desynchronized: in lockstep everyone reaches
     the HiWatermark simultaneously and nobody can piggyback on anyone
     else's grace period (also true of the real algorithm — NBR+ pays off
     when threads cross their watermarks at different moments, which any
     real workload guarantees).  Stagger thread start phases by a fraction
     of the broadcast period and add per-retire jitter. *)
  let spin_cell = Sim.make 0 in
  let pace rng _tid =
    for _ = 1 to Nbr_sync.Rng.below rng 400 do
      ignore (Sim.load spin_cell)
    done
  in
  let stagger tid = Sim.work (tid * 11_000) in
  let sig_nbr =
    let pool = mk_pool ~capacity:16_384 ~nthreads:4 () in
    let smr = N.create pool ~nthreads:4 (cfg 32) in
    let ctxs = Array.init 4 (fun tid -> N.register smr ~tid) in
    Sim.run ~nthreads:4 (fun tid ->
        let c = ctxs.(tid) in
        let rng = Nbr_sync.Rng.for_thread ~seed:77 ~tid in
        stagger tid;
        for _ = 1 to 1_000 do
          let s = N.alloc c in
          N.retire c s;
          pace rng tid
        done);
    Sim.signals_sent ()
  in
  let sig_nbrp =
    let pool = mk_pool ~capacity:16_384 ~nthreads:4 () in
    (* scan_period = 1: Algorithm 2 verbatim (scan on every retire past
       the LoWatermark). *)
    (* Algorithm 2 verbatim (scan every retire) with the paper's
       quarter-full LoWatermark, which widens the RGP detection window. *)
    let smr =
      NP.create pool ~nthreads:4
        { (cfg 32) with scan_period = 1; lo_watermark = 8 }
    in
    let ctxs = Array.init 4 (fun tid -> NP.register smr ~tid) in
    Sim.run ~nthreads:4 (fun tid ->
        let c = ctxs.(tid) in
        let rng = Nbr_sync.Rng.for_thread ~seed:77 ~tid in
        stagger tid;
        for _ = 1 to 1_000 do
          let s = NP.alloc c in
          NP.retire c s;
          pace rng tid
        done);
    (Sim.signals_sent (), NP.stats smr)
  in
  let sig_nbrp, stp = sig_nbrp in
  (* The magnitude of the saving depends on how collective the steady
     state gets (paper: best case O(n), worst O(n²) — the A1 ablation
     bench charts it); the unit-level claim is that the LoWatermark path
     fires and strictly reduces signal traffic at equal reclamation. *)
  Alcotest.(check bool)
    (Printf.sprintf "nbr+ sends fewer signals (nbr=%d nbr+=%d, lo=%d)"
       sig_nbr sig_nbrp (Nbr_core.Smr_stats.lo_reclaims stp))
    true
    (sig_nbrp * 10 <= sig_nbr * 9 && (Nbr_core.Smr_stats.lo_reclaims stp) > 0)

(* The parity round-up: an odd snapshot must not accept the completion of
   the in-flight broadcast plus the start of the next as an RGP. *)
let test_nbrp_parity_rounding () =
  let pool = mk_pool () in
  let smr = NP.create pool ~nthreads:2 (cfg 64) in
  let _c0 = NP.register smr ~tid:0 in
  ignore smr;
  (* White-box via the base module is not exposed; validated behaviourally
     by the sweep above and the concurrent suite.  Here we check the
     arithmetic used: snapshot rounding. *)
  let round v = v + (v land 1) in
  Alcotest.(check int) "even stays" 4 (round 4);
  Alcotest.(check int) "odd rounds up" 6 (round 5);
  (* With snapshot 5 (in-flight), value 7 = end(6)+begin(7): not an RGP. *)
  Alcotest.(check bool) "7 rejected for snapshot 5" false (7 >= round 5 + 2);
  (* Value 8 = end(6)+begin(7)+end(8): a complete post-snapshot RGP. *)
  Alcotest.(check bool) "8 accepted for snapshot 5" true (8 >= round 5 + 2)

(* ------------------------------------------------------------------ *)
(* DEBRA: epoch rotation frees two-epoch-old bags; a stalled thread     *)
(* blocks the epoch.                                                    *)

module D = Nbr_core.Debra.Make (Sim)

let test_debra_epoch_reclamation () =
  let pool = mk_pool ~nthreads:1 () in
  let smr = D.create pool ~nthreads:1 (cfg 16) in
  let c = D.register smr ~tid:0 in
  Sim.run ~nthreads:1 (fun _ ->
      for _ = 1 to 300 do
        D.begin_op c;
        let s = D.alloc c in
        D.retire c s;
        D.end_op c
      done);
  let st = D.stats smr in
  Alcotest.(check bool)
    (Printf.sprintf "epoch advance freed records (%d)" (Nbr_core.Smr_stats.freed st))
    true ((Nbr_core.Smr_stats.freed st) >= 200)

let test_debra_stalled_thread_blocks () =
  let pool = mk_pool ~capacity:65_536 () in
  let smr = D.create pool ~nthreads:2 (cfg 16) in
  let c0 = D.register smr ~tid:0 and c1 = D.register smr ~tid:1 in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        (* Enter an operation and stall: pins the epoch. *)
        D.begin_op c1;
        Sim.stall_ns 50_000_000;
        D.end_op c1
      end
      else
        for _ = 1 to 3_000 do
          D.begin_op c0;
          let s = D.alloc c0 in
          D.retire c0 s;
          D.end_op c0
        done);
  let st = D.stats smr in
  Alcotest.(check bool)
    (Printf.sprintf "stalled thread froze reclamation (freed=%d of %d)"
       (Nbr_core.Smr_stats.freed st) (Nbr_core.Smr_stats.retires st))
    true
    ((Nbr_core.Smr_stats.freed st) < (Nbr_core.Smr_stats.retires st) / 2)

(* ------------------------------------------------------------------ *)
(* IBR: a stalled thread pins only its interval (bounded garbage).      *)

module I = Nbr_core.Ibr.Make (Sim)

let test_ibr_bounded_under_stall () =
  let pool = mk_pool ~capacity:65_536 () in
  let smr = I.create pool ~nthreads:2 (cfg 16) in
  let c0 = I.register smr ~tid:0 and c1 = I.register smr ~tid:1 in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        I.begin_op c1;
        Sim.stall_ns 50_000_000;
        I.end_op c1
      end
      else
        for _ = 1 to 3_000 do
          I.begin_op c0;
          let s = I.alloc c0 in
          I.retire c0 s;
          I.end_op c0
        done);
  let st = I.stats smr in
  Alcotest.(check bool)
    (Printf.sprintf "IBR kept reclaiming despite stall (freed=%d of %d)"
       (Nbr_core.Smr_stats.freed st) (Nbr_core.Smr_stats.retires st))
    true
    ((Nbr_core.Smr_stats.freed st) > (Nbr_core.Smr_stats.retires st) / 2)

(* ------------------------------------------------------------------ *)
(* HP: hazard announcement protects; validation failure restarts.       *)

module H = Nbr_core.Hp.Make (Sim)

let test_hp_hazard_protects () =
  let pool = mk_pool () in
  let smr = H.create pool ~nthreads:2 (cfg 4) in
  let c0 = H.register smr ~tid:0 and c1 = H.register smr ~tid:1 in
  let root = Sim.make P.nil in
  let target = ref (-1) in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        H.begin_op c1;
        let s = H.alloc c1 in
        target := s;
        Sim.store root s;
        (* Protect it via the root, then let thread 0 retire-and-churn. *)
        let got = H.read_root c1 root in
        Alcotest.(check int) "protected what root held" s got;
        let spin = Sim.make 0 in
        for _ = 1 to 3_000 do
          ignore (Sim.load spin)
        done;
        H.end_op c1
      end
      else begin
        H.begin_op c0;
        (* Wait until the target is published, then retire it and churn
           enough to trigger several scans. *)
        let rec wait () = if Sim.load root = P.nil then wait () in
        wait ();
        let s = Sim.load root in
        H.retire c0 s;
        for _ = 1 to 60 do
          let x = H.alloc c0 in
          H.retire c0 x
        done;
        H.end_op c0
      end);
  Alcotest.(check int) "hazard-protected slot never recycled" 0
    (P.seqno pool !target);
  Alcotest.(check int) "no UAF" 0 (P.stats pool).P.s_uaf_reads

let test_hp_validation_failure_restarts () =
  let pool = mk_pool () in
  let smr = H.create pool ~nthreads:2 (cfg 64) in
  let _c0 = H.register smr ~tid:0 and c1 = H.register smr ~tid:1 in
  let root = Sim.make P.nil in
  let s1 = P.alloc pool and s2 = P.alloc pool in
  Sim.store root s1;
  let attempts = ref 0 in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        H.begin_op c1;
        H.read_only c1 (fun () ->
            incr attempts;
            if !attempts = 1 then begin
              (* First attempt: flip the root mid-protection by letting
                 thread 0 run between load and validate — simulate by
                 burning cycles; thread 0 flips the root repeatedly. *)
              let spin = Sim.make 0 in
              for _ = 1 to 500 do
                ignore (Sim.load spin)
              done
            end;
            ignore (H.read_root c1 root));
        H.end_op c1
      end
      else
        for i = 1 to 3_000 do
          Sim.store root (if i land 1 = 0 then s1 else s2)
        done);
  (* The flipping root forces protect/validate retries internally; the
     operation still completes (bounded retries then checkpoint restart,
     or inline success). *)
  Alcotest.(check bool) "completed under churn" true (!attempts >= 1)

(* ------------------------------------------------------------------ *)
(* QSBR / RCU sanity.                                                   *)

module Q = Nbr_core.Qsbr.Make (Sim)

let test_qsbr_reclaims () =
  let pool = mk_pool ~nthreads:2 () in
  let smr = Q.create pool ~nthreads:2 (cfg 16) in
  let ctxs = [| Q.register smr ~tid:0; Q.register smr ~tid:1 |] in
  Sim.run ~nthreads:2 (fun tid ->
      let c = ctxs.(tid) in
      for _ = 1 to 500 do
        Q.begin_op c;
        let s = Q.alloc c in
        Q.retire c s;
        Q.end_op c
      done);
  let st = Q.stats smr in
  Alcotest.(check bool)
    (Printf.sprintf "qsbr freed (%d)" (Nbr_core.Smr_stats.freed st))
    true ((Nbr_core.Smr_stats.freed st) > 0)

module R = Nbr_core.Rcu.Make (Sim)

let test_rcu_reclaims () =
  let pool = mk_pool ~nthreads:2 () in
  let smr = R.create pool ~nthreads:2 (cfg 16) in
  let ctxs = [| R.register smr ~tid:0; R.register smr ~tid:1 |] in
  Sim.run ~nthreads:2 (fun tid ->
      let c = ctxs.(tid) in
      for _ = 1 to 500 do
        R.begin_op c;
        let s = R.alloc c in
        R.retire c s;
        R.end_op c
      done);
  let st = R.stats smr in
  Alcotest.(check bool)
    (Printf.sprintf "rcu freed (%d)" (Nbr_core.Smr_stats.freed st))
    true ((Nbr_core.Smr_stats.freed st) > 0)

(* ------------------------------------------------------------------ *)
(* Hazard eras: protection + bounded under stall.                       *)

module HE = Nbr_core.Hazard_eras.Make (Sim)

let test_he_bounded_under_stall () =
  let pool = mk_pool ~capacity:65_536 () in
  let smr = HE.create pool ~nthreads:2 (cfg 16) in
  let c0 = HE.register smr ~tid:0 and c1 = HE.register smr ~tid:1 in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        HE.begin_op c1;
        Sim.stall_ns 50_000_000;
        HE.end_op c1
      end
      else
        for _ = 1 to 3_000 do
          HE.begin_op c0;
          let s = HE.alloc c0 in
          HE.retire c0 s;
          HE.end_op c0
        done);
  let st = HE.stats smr in
  Alcotest.(check bool)
    (Printf.sprintf "HE kept reclaiming despite stall (freed=%d of %d)"
       (Nbr_core.Smr_stats.freed st) (Nbr_core.Smr_stats.retires st))
    true
    ((Nbr_core.Smr_stats.freed st) > (Nbr_core.Smr_stats.retires st) / 2)

let test_he_era_protects () =
  let pool = mk_pool () in
  let smr = HE.create pool ~nthreads:2 (cfg 4) in
  let c0 = HE.register smr ~tid:0 and c1 = HE.register smr ~tid:1 in
  let root = Sim.make P.nil in
  let target = ref (-1) in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 1 then begin
        HE.begin_op c1;
        let s = HE.alloc c1 in
        target := s;
        Sim.store root s;
        let got = HE.read_root c1 root in
        Alcotest.(check int) "protected what root held" s got;
        let spin = Sim.make 0 in
        for _ = 1 to 3_000 do
          ignore (Sim.load spin)
        done;
        HE.end_op c1
      end
      else begin
        HE.begin_op c0;
        let rec wait () = if Sim.load root = P.nil then wait () in
        wait ();
        HE.retire c0 (Sim.load root);
        for _ = 1 to 60 do
          let x = HE.alloc c0 in
          HE.retire c0 x
        done;
        HE.end_op c0
      end);
  Alcotest.(check int) "era-protected slot never recycled" 0
    (P.seqno pool !target)

(* Leaky never frees. *)
module L = Nbr_core.Leaky.Make (Sim)

let test_leaky_never_frees () =
  let pool = mk_pool ~nthreads:1 () in
  let smr = L.create pool ~nthreads:1 (cfg 4) in
  let c = L.register smr ~tid:0 in
  Sim.run ~nthreads:1 (fun _ ->
      for _ = 1 to 100 do
        let s = L.alloc c in
        L.retire c s
      done);
  Alcotest.(check int) "nothing freed" 0 (P.stats pool).P.s_frees;
  Alcotest.(check int) "all unreclaimed" 100 (P.stats pool).P.s_in_use

(* Unsafe free demonstrates the problem SMR solves. *)
module U = Nbr_core.Unsafe_free.Make (Sim)

let test_unsafe_free_causes_uaf () =
  let pool = mk_pool () in
  let smr = U.create pool ~nthreads:2 (cfg 4) in
  let c0 = U.register smr ~tid:0 and c1 = U.register smr ~tid:1 in
  let root = Sim.make P.nil in
  Sim.run ~nthreads:2 (fun tid ->
      if tid = 0 then
        for _ = 1 to 500 do
          let s = U.alloc c0 in
          Sim.store root s;
          U.retire c0 s (* freed immediately, while published! *)
        done
      else
        for _ = 1 to 500 do
          let s = U.read_root c1 root in
          ignore s
        done);
  Alcotest.(check bool)
    (Printf.sprintf "use-after-free observed (%d)"
       (P.stats pool).P.s_uaf_reads)
    true
    ((P.stats pool).P.s_uaf_reads > 0)

let suite =
  [
    Alcotest.test_case "nbr: reservation protects" `Quick
      test_nbr_reservation_protects;
    Alcotest.test_case "nbr: reclaims at threshold" `Quick
      test_nbr_reclaims_at_threshold;
    Alcotest.test_case "nbr: neutralizes readers" `Quick
      test_nbr_neutralizes_readers;
    Alcotest.test_case "nbr+: LoWm reclaims via RGP" `Quick
      test_nbrp_lo_watermark_reclaims_without_signalling;
    Alcotest.test_case "nbr+: fewer signals than nbr" `Quick
      test_nbrp_signals_fewer_than_nbr;
    Alcotest.test_case "nbr+: odd-snapshot parity rounding" `Quick
      test_nbrp_parity_rounding;
    Alcotest.test_case "debra: epoch reclamation" `Quick
      test_debra_epoch_reclamation;
    Alcotest.test_case "debra: stalled thread blocks epochs" `Quick
      test_debra_stalled_thread_blocks;
    Alcotest.test_case "ibr: bounded under stall" `Quick
      test_ibr_bounded_under_stall;
    Alcotest.test_case "hp: hazard protects" `Quick test_hp_hazard_protects;
    Alcotest.test_case "hp: survives root churn" `Quick
      test_hp_validation_failure_restarts;
    Alcotest.test_case "he: bounded under stall" `Quick
      test_he_bounded_under_stall;
    Alcotest.test_case "he: era protects" `Quick test_he_era_protects;
    Alcotest.test_case "qsbr: reclaims" `Quick test_qsbr_reclaims;
    Alcotest.test_case "rcu: reclaims" `Quick test_rcu_reclaims;
    Alcotest.test_case "leaky: never frees" `Quick test_leaky_never_frees;
    Alcotest.test_case "unsafe-free: UAF observed" `Quick
      test_unsafe_free_causes_uaf;
  ]
