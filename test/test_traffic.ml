(* Traffic-generator tests: the Zipfian frequency shape (statistical,
   fixed seed), seed determinism, mix proportions, arrival shapes, and
   constructor validation.

   The generator draws only from [Nbr_sync.Rng] — no runtime clock, no
   atomics — so one draw sequence is bit-identical wherever it runs;
   the determinism test pins that property down. *)

module Traffic = Nbr_workload.Traffic
module Rng = Nbr_sync.Rng

(* ------------------------------------------------------------------ *)
(* Zipf distribution shape.                                            *)

(* With theta = 0.99 over 1024 keys the head is heavy: rank 0 alone
   carries ~7% of the mass and the top 16 ranks a solid third.  Check
   the shape statistically on a fixed seed rather than exact counts, so
   the test documents the distribution instead of the PRNG. *)
let test_zipf_shape () =
  let n = 1024 in
  let z = Traffic.Zipf.make ~theta:0.99 ~n () in
  let rng = Rng.create 7 in
  let draws = 200_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Traffic.Zipf.rank z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < n);
    counts.(r) <- counts.(r) + 1
  done;
  let top k =
    let s = ref 0 in
    for i = 0 to k - 1 do
      s := !s + counts.(i)
    done;
    float_of_int !s /. float_of_int draws
  in
  Alcotest.(check bool)
    (Printf.sprintf "rank 0 is hot (%.3f)" (top 1))
    true
    (top 1 > 0.06 && top 1 < 0.20);
  Alcotest.(check bool)
    (Printf.sprintf "top 16 ranks carry >= 25%% (%.3f)" (top 16))
    true (top 16 >= 0.25);
  Alcotest.(check bool)
    (Printf.sprintf "top 16 ranks carry <= 60%% (%.3f)" (top 16))
    true (top 16 <= 0.60);
  (* Monotone head: each of the first few ranks at least as popular as
     the one after next (adjacent ranks can swap on sampling noise). *)
  for i = 0 to 6 do
    Alcotest.(check bool)
      (Printf.sprintf "head decreasing at rank %d" i)
      true
      (counts.(i) + (draws / 1000) >= counts.(i + 2))
  done;
  (* The tail is still alive: a heavy head must not collapse the
     distribution onto a handful of keys. *)
  let distinct = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts in
  Alcotest.(check bool)
    (Printf.sprintf "tail coverage (%d distinct ranks)" distinct)
    true (distinct > n / 2)

let test_zipf_scatter () =
  let n = 1 lsl 20 in
  let z = Traffic.Zipf.make ~n () in
  let rng = Rng.create 3 in
  (* Scattered keys stay in range and the hot head does not map to a
     single dense prefix (the point of scattering: popular keys spread
     across shards). *)
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    let k = Traffic.Zipf.key z rng in
    Alcotest.(check bool) "key in range" true (k >= 0 && k < n);
    Hashtbl.replace seen (k * 8 / n) ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hot keys span octants (%d)" (Hashtbl.length seen))
    true
    (Hashtbl.length seen >= 4)

(* ------------------------------------------------------------------ *)
(* Determinism.                                                        *)

let test_seed_determinism () =
  let mk () = Traffic.make ~mx:Traffic.scan_heavy ~rate_rps:500_000 ~keyspace:65_536 () in
  let t1 = mk () and t2 = mk () in
  let r1 = Rng.for_thread ~seed:11 ~tid:3
  and r2 = Rng.for_thread ~seed:11 ~tid:3 in
  for i = 1 to 10_000 do
    let o1 = Traffic.draw_op t1 r1 and o2 = Traffic.draw_op t2 r2 in
    if o1 <> o2 then
      Alcotest.failf "draw %d diverged under equal seeds" i;
    let frac = float_of_int (i mod 100) /. 100.0 in
    let g1 = Traffic.next_gap_ns t1 r1 ~frac
    and g2 = Traffic.next_gap_ns t2 r2 ~frac in
    Alcotest.(check int) "gap deterministic" g1 g2
  done;
  (* Different tid, same seed: a different stream. *)
  let r3 = Rng.for_thread ~seed:11 ~tid:4 in
  let diverged = ref false in
  for _ = 1 to 100 do
    if Traffic.draw_op t1 r1 <> Traffic.draw_op t2 r3 then diverged := true
  done;
  Alcotest.(check bool) "per-thread streams differ" true !diverged

(* ------------------------------------------------------------------ *)
(* Mix proportions.                                                    *)

let test_mix_proportions () =
  let t = Traffic.make ~mx:Traffic.write_heavy ~keyspace:4096 () in
  let rng = Rng.create 5 in
  let gets = ref 0 and puts = ref 0 and dels = ref 0 and scans = ref 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    match Traffic.draw_op t rng with
    | Traffic.Get _ -> incr gets
    | Traffic.Put _ -> incr puts
    | Traffic.Delete _ -> incr dels
    | Traffic.Scan _ -> incr scans
  done;
  let pct x = 100 * !x / draws in
  Alcotest.(check bool)
    (Printf.sprintf "gets ~50%% (%d%%)" (pct gets))
    true
    (abs (pct gets - 50) <= 2);
  Alcotest.(check bool)
    (Printf.sprintf "puts ~25%% (%d%%)" (pct puts))
    true
    (abs (pct puts - 25) <= 2);
  Alcotest.(check bool)
    (Printf.sprintf "dels ~25%% (%d%%)" (pct dels))
    true
    (abs (pct dels - 25) <= 2);
  Alcotest.(check int) "no scans in write-heavy" 0 !scans

(* ------------------------------------------------------------------ *)
(* Arrival shapes.                                                     *)

let test_rate_mult () =
  let close a b = abs_float (a -. b) < 1e-9 in
  Alcotest.(check bool) "steady is flat" true
    (close (Traffic.rate_mult Traffic.Steady ~frac:0.0) 1.0
    && close (Traffic.rate_mult Traffic.Steady ~frac:0.9) 1.0);
  let fc =
    Traffic.Flash_crowd { fc_at_pct = 40; fc_len_pct = 20; fc_mult = 8 }
  in
  Alcotest.(check bool) "before crowd" true
    (close (Traffic.rate_mult fc ~frac:0.30) 1.0);
  Alcotest.(check bool) "inside crowd" true
    (close (Traffic.rate_mult fc ~frac:0.50) 8.0);
  Alcotest.(check bool) "after crowd" true
    (close (Traffic.rate_mult fc ~frac:0.70) 1.0);
  let d = Traffic.Diurnal { d_cycles = 2; d_floor_pct = 20 } in
  let mn = ref infinity and mx = ref neg_infinity in
  for i = 0 to 100 do
    let m = Traffic.rate_mult d ~frac:(float_of_int i /. 100.0) in
    if m < !mn then mn := m;
    if m > !mx then mx := m
  done;
  Alcotest.(check bool)
    (Printf.sprintf "diurnal floor %.2f" !mn)
    true
    (!mn >= 0.19 && !mn <= 0.35);
  Alcotest.(check bool)
    (Printf.sprintf "diurnal peak %.2f" !mx)
    true
    (!mx >= 0.9 && !mx <= 1.01)

let test_gaps () =
  let closed = Traffic.make ~keyspace:1024 () in
  let rng = Rng.create 2 in
  Alcotest.(check bool) "closed loop flagged" false (Traffic.open_loop closed);
  Alcotest.(check int) "closed loop: zero gap" 0
    (Traffic.next_gap_ns closed rng ~frac:0.5);
  let open_t = Traffic.make ~rate_rps:1_000_000 ~keyspace:1024 () in
  Alcotest.(check bool) "open loop flagged" true (Traffic.open_loop open_t);
  (* Mean exponential gap at 1M rps is 1000 ns; sampling 10k draws puts
     the empirical mean well within 2x. *)
  let sum = ref 0 in
  let draws = 10_000 in
  for _ = 1 to draws do
    let g = Traffic.next_gap_ns open_t rng ~frac:0.1 in
    Alcotest.(check bool) "gap positive" true (g >= 1);
    sum := !sum + g
  done;
  let mean = float_of_int !sum /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap ~1000ns (%.0f)" mean)
    true
    (mean > 500.0 && mean < 2000.0)

(* ------------------------------------------------------------------ *)
(* Validation.                                                         *)

let test_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "theta >= 1 rejected" true
    (raises (fun () -> Traffic.Zipf.make ~theta:1.0 ~n:10 ()));
  Alcotest.(check bool) "n < 2 rejected" true
    (raises (fun () -> Traffic.Zipf.make ~n:1 ()));
  Alcotest.(check bool) "mix must sum to 100" true
    (raises (fun () -> Traffic.mix ~get:50 ~put:10 ~del:10 ~scan:10 ()));
  Alcotest.(check bool) "named mixes round-trip" true
    (Traffic.mix_of_name (Traffic.mix_name Traffic.read_heavy)
    = Some Traffic.read_heavy)

let suite =
  [
    Alcotest.test_case "zipf-shape" `Quick test_zipf_shape;
    Alcotest.test_case "zipf-scatter" `Quick test_zipf_scatter;
    Alcotest.test_case "seed-determinism" `Quick test_seed_determinism;
    Alcotest.test_case "mix-proportions" `Quick test_mix_proportions;
    Alcotest.test_case "rate-mult" `Quick test_rate_mult;
    Alcotest.test_case "gaps" `Quick test_gaps;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
